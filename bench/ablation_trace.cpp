// Ablation: runtime-wide tracing — overhead, determinism, attribution.
//
// The datasched-style workload (hot shards resident on delta, cold
// shards staged over the WAN, 32-core 5 s analysis tasks submitted as
// one batch) runs three ways:
//
//   base  — tracing disabled (the default); the untraced baseline.
//   off   — tracing disabled again; the same configuration re-measured,
//           bounding measurement noise so the "on" gate is meaningful.
//   on    — tracing + counters + gauge sampling enabled.
//
// Gates, all enforced at exit:
//   1. Wall-clock overhead (min over reps, small absolute epsilon):
//      off <= 2% of base, on <= 5% of base.
//   2. Observation only: the traced run's sim makespan and jobs-done
//      equal the untraced run's bit for bit.
//   3. Determinism: the span-log FNV hash is identical across same-seed
//      reruns and across scheduler shard counts {1, 4}.
//   4. Attribution: the CriticalPath buckets sum to the measured
//      makespan within 1%.
//   5. Artifact: the Chrome trace JSON round-trips through
//      common::json, and bench_out/ablation_trace.trace.json is
//      written for CI upload (load it in https://ui.perfetto.dev).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "ripple/common/shard_executor.hpp"
#include "ripple/metrics/chrome_trace.hpp"
#include "ripple/metrics/critical_path.hpp"

namespace {

using namespace ripple;

struct TraceRun {
  double makespan = 0.0;  ///< from the completion callback, not now()
  std::size_t jobs_done = 0;
  std::uint64_t span_hash = 0;
  std::size_t spans = 0;
  std::size_t samples = 0;
  double wall_ms = 0.0;
  bool round_trip_ok = true;
  metrics::Breakdown breakdown;
};

/// One full workload at the given shard count, traced or not. Writes
/// the Chrome trace artifact when `trace_path` is non-empty.
TraceRun run_case(bool tracing, std::size_t shards, std::size_t hot,
                  std::size_t cold, std::uint64_t seed,
                  const std::string& trace_path = "") {
  const auto wall_begin = std::chrono::steady_clock::now();
  common::ShardExecutor exec(shards);
  core::Session session(
      {.seed = seed, .tracing = tracing, .gauge_tick = 2.0});
  session.add_platform(platform::delta_profile(4));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 4});
  if (shards > 1) session.scheduler().set_shard_executor(&exec);

  session.runtime().network().register_host("lab:x", "lab");
  session.data().add_store("delta",
                           4e9 * static_cast<double>(hot + cold + 1));
  session.data().set_bandwidth("lab", "delta", 1e9);
  session.data().set_setup_latency(common::Distribution::constant(0.2));
  // Hot shards are resident; cold shards cross the WAN on stage-in, so
  // the trace shows real data-wait alongside queue-wait and compute.
  std::vector<std::string> datasets;
  for (std::size_t i = 0; i < cold; ++i) {
    const std::string name = "cold-" + std::to_string(i);
    session.data().register_dataset(name, 4e9, "lab");
    datasets.push_back(name);
  }
  for (std::size_t i = 0; i < hot; ++i) {
    const std::string name = "hot-" + std::to_string(i);
    session.data().register_dataset(name, 4e9, "delta");
    session.data().register_dataset(name, 4e9, "lab");
    datasets.push_back(name);
  }

  // Several readers per shard: 4 nodes fit eight 32-core jobs at once,
  // so later waves accrue real queue-wait for the critical path to
  // attribute.
  const std::size_t readers = 1 + cold / 2;
  std::vector<core::TaskDescription> batch;
  for (std::size_t r = 0; r < readers; ++r) {
    for (const std::string& dataset : datasets) {
      core::TaskDescription desc;
      desc.name = dataset + "-job" + std::to_string(r);
      desc.kind = "modeled";
      desc.cores = 32;
      desc.duration = common::Distribution::constant(5.0);
      desc.staging = {core::StagingDirective::in(dataset)};
      batch.push_back(std::move(desc));
    }
  }

  TraceRun out;
  const auto uids = session.tasks().submit_all(pilot, batch);
  session.tasks().when_done(
      uids, [&out, &session](bool) { out.makespan = session.now(); });
  session.run();
  // The overhead gate measures the run itself; trace analysis/export
  // below is post-processing a consumer pays for explicitly.
  out.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_begin)
          .count();
  out.jobs_done = session.tasks().count_in_state(core::TaskState::done);

  if (tracing) {
    out.span_hash = session.tracer().span_log_hash();
    out.spans = session.tracer().spans().size();
    out.samples = session.counters().samples().size();
    out.breakdown =
        metrics::critical_path(session.tracer(), 0.0, out.makespan);
    const json::Value doc =
        metrics::chrome_trace_json(session.tracer(), &session.counters());
    out.round_trip_ok = json::Value::parse(doc.dump()) == doc;
    if (!trace_path.empty()) {
      metrics::write_chrome_trace(trace_path, session.tracer(),
                                  &session.counters());
    }
  }
  return out;
}

/// Min-of-reps wall time for one arm (the other fields come from the
/// last rep; they are identical across reps by the determinism gates).
TraceRun best_of(std::size_t reps, bool tracing, std::size_t shards,
                 std::size_t hot, std::size_t cold, std::uint64_t seed) {
  TraceRun best;
  double wall = 1e300;
  for (std::size_t i = 0; i < reps; ++i) {
    TraceRun run = run_case(tracing, shards, hot, cold, seed);
    wall = std::min(wall, run.wall_ms);
    best = std::move(run);
  }
  best.wall_ms = wall;
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bench;
  const bool smoke = smoke_mode(argc, argv);
  const std::size_t hot = 4;
  const std::size_t cold = smoke ? 3 : 6;
  const std::size_t reps = smoke ? 2 : 5;
  const std::uint64_t seed = 808;
  // Wall-clock gates use min-of-reps plus a small absolute epsilon so
  // a few-ms sim does not fail on scheduler jitter alone.
  const double eps_ms = 5.0;

  std::cout << "Ablation: runtime-wide tracing\n";
  bool pass = true;

  // --- overhead ------------------------------------------------------------
  const TraceRun base = best_of(reps, false, 1, hot, cold, seed);
  const TraceRun off = best_of(reps, false, 1, hot, cold, seed);
  const TraceRun on = best_of(reps, true, 1, hot, cold, seed);

  const auto overhead_pct = [&](double arm) {
    return 100.0 * (arm - base.wall_ms) / base.wall_ms;
  };
  metrics::Table overhead_table(
      {"tracing", "wall_ms", "overhead_pct", "spans", "samples"});
  overhead_table.add_row({"base(off)",
                          strutil::format_fixed(base.wall_ms, 3), "0.00",
                          "0", "0"});
  overhead_table.add_row({"off", strutil::format_fixed(off.wall_ms, 3),
                          strutil::format_fixed(overhead_pct(off.wall_ms), 2),
                          "0", "0"});
  overhead_table.add_row({"on", strutil::format_fixed(on.wall_ms, 3),
                          strutil::format_fixed(overhead_pct(on.wall_ms), 2),
                          std::to_string(on.spans),
                          std::to_string(on.samples)});
  std::cout << metrics::banner(
      "Tracing overhead (min over " + std::to_string(reps) + " reps)");
  std::cout << overhead_table.to_string();
  overhead_table.write_csv(output_dir() + "/ablation_trace_overhead.csv");
  overhead_table.write_json(output_dir() + "/ablation_trace_overhead.json");

  if (off.wall_ms > base.wall_ms * 1.02 + eps_ms) {
    std::cout << "FAIL: tracing-off overhead exceeds 2%\n";
    pass = false;
  }
  if (on.wall_ms > base.wall_ms * 1.05 + eps_ms) {
    std::cout << "FAIL: tracing-on overhead exceeds 5%\n";
    pass = false;
  }

  // --- observation only ----------------------------------------------------
  if (on.makespan != base.makespan || on.jobs_done != base.jobs_done) {
    std::cout << "FAIL: tracing perturbed the simulation (makespan "
              << on.makespan << " vs " << base.makespan << ")\n";
    pass = false;
  }
  if (on.spans == 0 || on.samples == 0) {
    std::cout << "FAIL: traced run produced no spans/samples\n";
    pass = false;
  }

  // --- determinism: reruns and shard counts --------------------------------
  const TraceRun rerun = run_case(true, 1, hot, cold, seed);
  const TraceRun sharded = run_case(true, 4, hot, cold, seed);
  metrics::Table det_table({"run", "shards", "spans", "span_hash"});
  const auto hash_row = [&](const char* label, std::size_t shards,
                            const TraceRun& run) {
    det_table.add_row({label, std::to_string(shards),
                       std::to_string(run.spans),
                       strutil::cat(run.span_hash)});
  };
  hash_row("on", 1, on);
  hash_row("rerun", 1, rerun);
  hash_row("sharded", 4, sharded);
  std::cout << metrics::banner("Span-log determinism");
  std::cout << det_table.to_string();

  if (rerun.span_hash != on.span_hash) {
    std::cout << "FAIL: same-seed rerun changed the span log\n";
    pass = false;
  }
  if (sharded.span_hash != on.span_hash) {
    std::cout << "FAIL: shards=4 changed the span log\n";
    pass = false;
  }

  // --- critical-path attribution -------------------------------------------
  std::cout << metrics::banner("Critical-path attribution of the makespan");
  std::cout << on.breakdown.table().to_string();
  std::cout << "path: ";
  for (std::size_t i = 0; i < on.breakdown.path.size(); ++i) {
    std::cout << (i > 0 ? " -> " : "") << on.breakdown.path[i];
  }
  std::cout << "\n";
  on.breakdown.table().write_csv(output_dir() +
                                 "/ablation_trace_breakdown.csv");

  const double attributed = on.breakdown.total();
  if (std::abs(attributed - on.makespan) > 0.01 * on.makespan) {
    std::cout << "FAIL: breakdown sums to " << attributed
              << ", makespan is " << on.makespan << "\n";
    pass = false;
  }

  // --- artifact ------------------------------------------------------------
  const std::string trace_path = output_dir() + "/ablation_trace.trace.json";
  const TraceRun artifact = run_case(true, 1, hot, cold, seed, trace_path);
  if (!artifact.round_trip_ok || !on.round_trip_ok) {
    std::cout << "FAIL: Chrome trace JSON does not round-trip\n";
    pass = false;
  }
  std::cout << "\ntrace artifact: " << trace_path << " ("
            << artifact.spans << " spans, " << artifact.samples
            << " counter samples)\n";

  std::cout << (pass ? "\nPASS" : "\nFAIL") << ": tracing cost "
            << strutil::format_fixed(overhead_pct(on.wall_ms), 2)
            << "% wall clock, attributed "
            << strutil::format_fixed(
                   100.0 * (attributed - on.breakdown.other) / attributed, 1)
            << "% of the makespan to traced phases\n";
  return pass ? 0 : 1;
}
