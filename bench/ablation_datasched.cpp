// Ablation: contention-aware data scheduling.
//
// Two experiments, both bit-reproducible across same-seed reruns:
//
// 1. Multi-source striping. One 30 GB dataset with replicas in three
//    zones, disjoint 1 GB/s links to the destination. A single-source
//    transfer rides one link; a striped transfer splits the bytes
//    across all three and commits when the last stripe lands. Expected:
//    striping >= 1.5x faster (ideal here is 3x).
//
// 2. Data-aware backfill. One 64-core node runs 32-core analysis jobs
//    against a 20 GB store that holds four 4 GB "hot" shards; six 4 GB
//    "cold" shards live in the lab zone. Cold jobs are submitted ahead
//    of hot ones. The data-blind scheduler grants in submission order:
//    cold stage-ins evict every hot shard before its reader runs, so
//    the hot jobs re-fetch what was already local. The data-aware
//    scheduler (Scheduler::set_locality_oracle, wired by Session to
//    the replica catalog) grants resident-input jobs first within the
//    priority class. Expected: strictly fewer bytes over the WAN and
//    no worse makespan.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "ripple/data/transfer_engine.hpp"

namespace {

using namespace ripple;

std::uint64_t fnv1a(std::uint64_t hash, const std::string& text) {
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

// ---------------------------------------------------------------------------
// Experiment 1: striped vs single-source transfer time
// ---------------------------------------------------------------------------

struct StripeResult {
  double seconds = 0.0;
  std::uint64_t stripes = 0;
  bool ok = false;
};

StripeResult run_transfer(bool striped, double gigabytes,
                          std::uint64_t seed) {
  sim::EventLoop loop;
  common::Rng rng(seed);
  data::TransferEngine engine(loop, rng);
  engine.set_setup_latency(common::Distribution::constant(0.5));
  engine.set_bandwidth("r1", "hub", 1e9);
  engine.set_bandwidth("r2", "hub", 1e9);
  engine.set_bandwidth("r3", "hub", 1e9);

  StripeResult result;
  const auto on_done = [&](bool ok, sim::Duration elapsed) {
    result.ok = ok;
    result.seconds = elapsed;
  };
  if (striped) {
    engine.transfer_striped("payload", {"r1", "r2", "r3"}, "hub",
                            gigabytes * 1e9, on_done);
  } else {
    engine.transfer("payload", "r1", "hub", gigabytes * 1e9, on_done);
  }
  loop.run();
  result.stripes = engine.stripes_started();
  return result;
}

// ---------------------------------------------------------------------------
// Experiment 2: data-aware vs data-blind backfill
// ---------------------------------------------------------------------------

struct BackfillResult {
  double bytes_moved_gb = 0.0;
  double makespan = 0.0;
  std::uint64_t evictions = 0;
  std::size_t jobs_done = 0;
  std::uint64_t trace_hash = 0;
};

BackfillResult run_backfill(bool data_aware, std::size_t hot,
                            std::size_t cold, std::uint64_t seed) {
  core::Session session({.seed = seed});
  session.add_platform(platform::delta_profile(1));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 1});
  if (!data_aware) session.scheduler().set_locality_oracle({});

  session.runtime().network().register_host("lab:x", "lab");
  session.data().add_store("delta", 4e9 * static_cast<double>(hot + 1));
  session.data().set_bandwidth("lab", "delta", 1e9);
  session.data().set_setup_latency(common::Distribution::constant(0.2));
  // Hot shards are resident (with a lab replica to re-fetch from once
  // evicted); cold shards must cross the WAN.
  std::vector<std::string> jobs;
  for (std::size_t i = 0; i < hot; ++i) {
    const std::string name = "hot-" + std::to_string(i);
    session.data().register_dataset(name, 4e9, "delta");
    session.data().register_dataset(name, 4e9, "lab");
  }
  for (std::size_t i = 0; i < cold; ++i) {
    const std::string name = "cold-" + std::to_string(i);
    session.data().register_dataset(name, 4e9, "lab");
  }
  // Cold readers enter the queue first: a data-blind scan services
  // them first and their stage-ins evict the hot shards before the
  // hot readers run.
  for (std::size_t i = 0; i < cold; ++i) {
    jobs.push_back("cold-" + std::to_string(i));
  }
  for (std::size_t i = 0; i < hot; ++i) {
    jobs.push_back("hot-" + std::to_string(i));
  }

  BackfillResult result;
  auto& sched = session.scheduler();
  // A minimal task model driven straight through the scheduler: a
  // granted job stages its shard into the pilot zone (instant when
  // resident), computes 5 s, and releases its slot.
  for (const std::string& dataset : jobs) {
    core::ScheduleRequest request;
    request.uid = dataset + "-job";
    request.cores = 32;
    request.input_datasets = {dataset};
    request.input_bytes =
        session.data().bytes_required({dataset}, "delta");
    request.granted = [&session, &sched, &pilot, &result, dataset](
                          platform::Slot slot, platform::Node*) {
      const auto compute = [&session, &sched, &pilot, &result,
                            slot = std::move(slot)] {
        session.loop().call_after(5.0, [&sched, &pilot, &result, slot] {
          ++result.jobs_done;
          sched.release(pilot.uid(), slot);
        });
      };
      if (session.data().available_in(dataset, "delta")) {
        session.data().catalog().touch(dataset, "delta");
        compute();
      } else {
        session.data().stage(dataset, "delta",
                             [compute](bool ok, sim::Duration) {
                               if (ok) compute();
                             });
      }
    };
    sched.submit(pilot.uid(), std::move(request));
  }
  session.run();

  result.bytes_moved_gb = session.data().bytes_moved() / 1e9;
  result.makespan = session.now();
  result.evictions = session.data().catalog().evictions();
  std::uint64_t hash = 14695981039346656037ull;
  for (const auto& name : session.data().engine().completion_log()) {
    hash = fnv1a(hash, name);
  }
  for (const auto& name : session.data().catalog().eviction_log()) {
    hash = fnv1a(hash, name);
  }
  hash = fnv1a(hash, strutil::format_fixed(result.makespan, 9));
  result.trace_hash = hash;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bench;
  const bool smoke = smoke_mode(argc, argv);
  const double gigabytes = smoke ? 12.0 : 30.0;
  const std::size_t hot = 4;
  const std::size_t cold = smoke ? 4 : 6;
  const std::uint64_t seed = 505;

  std::cout << "Ablation: contention-aware data scheduling\n";
  bool pass = true;

  // --- striping ------------------------------------------------------------
  const StripeResult single = run_transfer(false, gigabytes, seed);
  const StripeResult striped = run_transfer(true, gigabytes, seed);
  const StripeResult striped_rerun = run_transfer(true, gigabytes, seed);

  metrics::Table stripe_table(
      {"sources", "stripes", "transfer_s", "speedup", "ok"});
  stripe_table.add_row({"single", std::to_string(single.stripes),
                        strutil::format_fixed(single.seconds, 2), "1.00",
                        single.ok ? "yes" : "NO"});
  stripe_table.add_row(
      {"striped-3", std::to_string(striped.stripes),
       strutil::format_fixed(striped.seconds, 2),
       strutil::format_fixed(single.seconds / striped.seconds, 2),
       striped.ok ? "yes" : "NO"});
  std::cout << metrics::banner("Multi-source striping (3 replicas, "
                               "disjoint 1 GB/s links)");
  std::cout << stripe_table.to_string();
  stripe_table.write_csv(output_dir() + "/ablation_datasched_striping.csv");
  stripe_table.write_json(output_dir() +
                          "/ablation_datasched_striping.json");

  if (!(single.ok && striped.ok)) {
    std::cout << "FAIL: a transfer failed\n";
    pass = false;
  }
  if (!(single.seconds >= 1.5 * striped.seconds)) {
    std::cout << "FAIL: striping is not >= 1.5x faster ("
              << single.seconds << " vs " << striped.seconds << ")\n";
    pass = false;
  }
  if (striped_rerun.seconds != striped.seconds) {
    std::cout << "FAIL: same-seed striped rerun diverged\n";
    pass = false;
  }

  // --- data-aware backfill -------------------------------------------------
  const BackfillResult blind = run_backfill(false, hot, cold, seed);
  const BackfillResult aware = run_backfill(true, hot, cold, seed);
  const BackfillResult aware_rerun = run_backfill(true, hot, cold, seed);

  metrics::Table backfill_table({"backfill", "bytes_moved_gb", "evictions",
                                 "makespan_s", "jobs"});
  backfill_table.add_row(
      {"data-blind", strutil::format_fixed(blind.bytes_moved_gb, 2),
       std::to_string(blind.evictions),
       strutil::format_fixed(blind.makespan, 1),
       std::to_string(blind.jobs_done)});
  backfill_table.add_row(
      {"data-aware", strutil::format_fixed(aware.bytes_moved_gb, 2),
       std::to_string(aware.evictions),
       strutil::format_fixed(aware.makespan, 1),
       std::to_string(aware.jobs_done)});
  std::cout << metrics::banner("Data-aware backfill (cold queue ahead of "
                               "resident readers, finite store)");
  std::cout << backfill_table.to_string();
  backfill_table.write_csv(output_dir() +
                           "/ablation_datasched_backfill.csv");
  backfill_table.write_json(output_dir() +
                            "/ablation_datasched_backfill.json");

  std::cout << "\nExpected: the data-blind grant order lets cold stage-ins "
               "evict resident shards before their readers run, paying "
               "re-fetches the data-aware order never needs.\n";

  if (blind.jobs_done != hot + cold || aware.jobs_done != hot + cold) {
    std::cout << "FAIL: not every job completed\n";
    pass = false;
  }
  if (!(aware.bytes_moved_gb < blind.bytes_moved_gb)) {
    std::cout << "FAIL: data-aware backfill did not move strictly fewer "
                 "bytes\n";
    pass = false;
  }
  if (!(aware.makespan <= blind.makespan)) {
    std::cout << "FAIL: data-aware makespan exceeds data-blind\n";
    pass = false;
  }
  if (aware_rerun.trace_hash != aware.trace_hash) {
    std::cout << "FAIL: same-seed backfill rerun diverged\n";
    pass = false;
  }

  std::cout << (pass ? "\nPASS" : "\nFAIL")
            << ": striping "
            << strutil::format_fixed(single.seconds / striped.seconds, 2)
            << "x faster; data-aware backfill saved "
            << strutil::format_fixed(
                   blind.bytes_moved_gb - aware.bytes_moved_gb, 2)
            << " GB over the WAN\n";
  return pass ? 0 : 1;
}
