// Micro-benchmarks of the runtime substrate (google-benchmark).
//
// These quantify the infrastructure costs underneath the paper's
// metrics: event-loop throughput, JSON round-trips (the RPC payload
// format), router/RPC hops, scheduler grant/release cycles and slot
// pool churn. They back the claim that architectural overheads are
// "minimal" relative to the modeled network and model costs.

#include <benchmark/benchmark.h>

#include <functional>
#include <future>
#include <memory>
#include <vector>

#include "ripple/common/json.hpp"
#include "ripple/common/thread_pool.hpp"
#include "ripple/common/random.hpp"
#include "ripple/common/statistics.hpp"
#include "ripple/core/session.hpp"
#include "ripple/ml/install.hpp"
#include "ripple/msg/rpc.hpp"
#include "ripple/platform/profiles.hpp"
#include "ripple/sim/event_loop.hpp"
#include "ripple/sim/resource.hpp"

namespace {

using namespace ripple;

void BM_EventLoopPostRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    for (int i = 0; i < 1000; ++i) {
      loop.call_after(static_cast<double>(i) * 1e-6, [] {});
    }
    benchmark::DoNotOptimize(loop.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventLoopPostRun);

// The event-loop Callback is a small-buffer-optimized move-only type
// (sim::UniqueCallback): captures up to 64 bytes live inline in the
// event, where std::function heap-allocates anything beyond its tiny
// SBO. The pair below measures the delta on a ~40-byte capture — the
// runtime's typical "this + uid string" closure — posted through the
// loop: the first stores it directly (inline, no allocation), the
// second routes the same lambda through a std::function first (the old
// Callback type), paying the per-event allocation.
struct FatCapture {
  double* sink;
  double a, b, c, d;
};

void BM_EventLoopCallbackInline(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    double sink = 0.0;
    const FatCapture fat{&sink, 1.0, 2.0, 3.0, 4.0};
    for (int i = 0; i < 1000; ++i) {
      loop.post([fat] { *fat.sink += fat.a + fat.b + fat.c + fat.d; });
    }
    benchmark::DoNotOptimize(loop.run());
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventLoopCallbackInline);

void BM_EventLoopCallbackStdFunction(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    double sink = 0.0;
    const FatCapture fat{&sink, 1.0, 2.0, 3.0, 4.0};
    for (int i = 0; i < 1000; ++i) {
      std::function<void()> boxed = [fat] {
        *fat.sink += fat.a + fat.b + fat.c + fat.d;
      };
      loop.post(std::move(boxed));
    }
    benchmark::DoNotOptimize(loop.run());
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventLoopCallbackStdFunction);

// ThreadPool::submit used to box every task as a
// shared_ptr<packaged_task> inside a copyable std::function — two heap
// allocations plus refcounting per task. It now moves the
// packaged_task straight into the queue's move-only inline-storage
// wrapper (common::UniqueFunction), so the only allocation left is the
// future's shared state. The pair measures the delta on the runtime's
// typical small-capture task; the second variant reconstructs the old
// idiom in-bench.
void BM_ThreadPoolSubmitInline(benchmark::State& state) {
  common::ThreadPool pool(2);
  for (auto _ : state) {
    std::vector<std::future<double>> futures;
    futures.reserve(256);
    const FatCapture fat{nullptr, 1.0, 2.0, 3.0, 4.0};
    for (int i = 0; i < 256; ++i) {
      futures.push_back(
          pool.submit([fat] { return fat.a + fat.b + fat.c + fat.d; }));
    }
    double sink = 0.0;
    for (auto& future : futures) sink += future.get();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_ThreadPoolSubmitInline);

void BM_ThreadPoolSubmitSharedPtrTask(benchmark::State& state) {
  common::ThreadPool pool(2);
  for (auto _ : state) {
    std::vector<std::future<double>> futures;
    futures.reserve(256);
    const FatCapture fat{nullptr, 1.0, 2.0, 3.0, 4.0};
    for (int i = 0; i < 256; ++i) {
      // The old submit(): shared_ptr so the std::function stays
      // copyable, then a second boxing into the queue's callable.
      auto task = std::make_shared<std::packaged_task<double()>>(
          [fat] { return fat.a + fat.b + fat.c + fat.d; });
      futures.push_back(task->get_future());
      std::function<void()> boxed = [task] { (*task)(); };
      pool.submit(std::move(boxed));
    }
    double sink = 0.0;
    for (auto& future : futures) sink += future.get();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_ThreadPoolSubmitSharedPtrTask);

void BM_JsonParseDump(benchmark::State& state) {
  const std::string text = R"({"uid":"task.000001","cores":4,"gpus":1,
    "payload":{"endpoints":["svc.0","svc.1"],"requests":1024,
    "concurrency":4,"series":"rt"},"priority":10,"tags":[1,2,3,4,5]})";
  for (auto _ : state) {
    json::Value value = json::Value::parse(text);
    benchmark::DoNotOptimize(value.dump());
  }
}
BENCHMARK(BM_JsonParseDump);

void BM_RpcRoundTrip(benchmark::State& state) {
  sim::EventLoop loop;
  common::Rng rng(1);
  sim::Network network(loop, rng.fork("net"));
  network.register_host("a", "z");
  network.register_host("b", "z");
  network.set_link("z", "z",
                   sim::LinkModel{common::Distribution::constant(1e-6), 0});
  msg::Router router(loop, network);
  msg::RpcServer server(router, "server", "a");
  server.bind_method("echo", [](std::shared_ptr<msg::Responder> responder) {
    responder->reply(json::Value::object({{"ok", true}}));
  });
  msg::RpcClient client(router, "client", "b");
  for (auto _ : state) {
    bool completed = false;
    client.call("server", "echo", json::Value::object(),
                [&](msg::CallResult) { completed = true; });
    loop.run();
    benchmark::DoNotOptimize(completed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RpcRoundTrip);

void BM_SlotPoolChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    sim::SlotPool pool(loop, "gpus", 8);
    int granted = 0;
    for (int i = 0; i < 256; ++i) {
      pool.acquire(1, [&](sim::SlotPool::Grant grant) {
        ++granted;
        loop.call_after(1e-3, [&pool, grant] { pool.release(grant); });
      });
    }
    loop.run();
    benchmark::DoNotOptimize(granted);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_SlotPoolChurn);

void BM_SchedulerCycle(benchmark::State& state) {
  for (auto _ : state) {
    core::Session session({.seed = 3});
    session.add_platform(platform::delta_profile(4));
    auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 4});
    int done = 0;
    for (int i = 0; i < 128; ++i) {
      core::TaskDescription desc;
      desc.cores = 8;
      desc.duration = common::Distribution::constant(0.01);
      const auto uid = session.tasks().submit(pilot, desc);
      session.tasks().when_done({uid}, [&](bool) { ++done; });
    }
    session.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_SchedulerCycle);

void BM_SummaryQuantiles(benchmark::State& state) {
  common::Rng rng(9);
  common::Summary summary;
  for (int i = 0; i < 10000; ++i) summary.add(rng.lognormal(1.0, 0.5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(summary.quantile(0.95));
  }
}
BENCHMARK(BM_SummaryQuantiles);

void BM_NetworkDeliver(benchmark::State& state) {
  sim::EventLoop loop;
  common::Rng rng(5);
  sim::Network network(loop, rng.fork("net"));
  network.register_host("a", "x");
  network.register_host("b", "y");
  network.set_link("x", "y",
                   sim::LinkModel{
                       common::Distribution::normal(0.47e-3, 0.04e-3, 1e-6),
                       1.25e9});
  for (auto _ : state) {
    int arrived = 0;
    for (int i = 0; i < 100; ++i) {
      network.deliver("a", "b", 512, [&] { ++arrived; });
    }
    loop.run();
    benchmark::DoNotOptimize(arrived);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_NetworkDeliver);

}  // namespace

BENCHMARK_MAIN();
