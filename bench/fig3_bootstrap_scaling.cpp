// Reproduces Fig. 3: Service Bootstrap Times on Frontier.
//
// Experiment 1 of the paper: launch 1..640 llama-8b service instances
// (one GPU each) inside a Frontier pilot and decompose the bootstrap
// time into launch / init / publish per instance count. Expected shape:
//   * launch roughly constant up to 160 instances, growing beyond
//     (MPI/PRRTE startup contention);
//   * init (model load) dominating everywhere;
//   * publish always below launch.

#include <algorithm>
#include <iostream>

#include "bench_util.hpp"

namespace {

using namespace ripple;

struct BootstrapPoint {
  std::size_t instances = 0;
  common::Summary launch;
  common::Summary init;
  common::Summary publish;
  common::Summary total;
  double wall = 0.0;  ///< time until all instances were RUNNING
};

BootstrapPoint run_point(std::size_t n_instances, std::uint64_t seed) {
  core::Session session({.seed = seed});
  ml::install(session);
  // 80 Frontier nodes x 8 GPUs = 640 one-GPU service slots.
  session.add_platform(platform::frontier_profile(80));
  auto& pilot = session.submit_pilot({.platform = "frontier", .nodes = 80});

  std::vector<std::string> uids;
  uids.reserve(n_instances);
  for (std::size_t i = 0; i < n_instances; ++i) {
    uids.push_back(
        session.services().submit(pilot, bench::inference_service("llama-8b")));
  }
  double ready_at = 0.0;
  session.services().when_ready(uids, [&](bool ok) {
    if (!ok) std::cerr << "bootstrap failed at n=" << n_instances << "\n";
    ready_at = session.now();
    session.services().stop_all();
  });
  session.run();

  BootstrapPoint point;
  point.instances = n_instances;
  point.wall = ready_at;
  for (const auto& record : session.metrics().bootstraps()) {
    point.launch.add(record.launch);
    point.init.add(record.init);
    point.publish.add(record.publish);
    point.total.add(record.total());
  }
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke_mode(argc, argv);
  std::cout << "Fig. 3 reproduction: service bootstrap time decomposition "
               "(Frontier, llama-8b via ollama-like hosting)\n";

  std::vector<std::size_t> counts = {1, 2, 4, 8, 20, 40, 80, 160, 320,
                                     640};
  if (smoke) counts = {1, 8, 160, 640};
  metrics::Table table({"instances", "launch_s", "launch_std", "init_s",
                        "init_std", "publish_s", "publish_std", "total_s",
                        "all_ready_s"});
  std::vector<BootstrapPoint> points;
  for (const std::size_t n : counts) {
    BootstrapPoint point = run_point(n, 42);
    table.add_row({std::to_string(point.instances),
                   strutil::format_fixed(point.launch.mean(), 3),
                   strutil::format_fixed(point.launch.stddev(), 3),
                   strutil::format_fixed(point.init.mean(), 3),
                   strutil::format_fixed(point.init.stddev(), 3),
                   strutil::format_fixed(point.publish.mean(), 3),
                   strutil::format_fixed(point.publish.stddev(), 3),
                   strutil::format_fixed(point.total.mean(), 3),
                   strutil::format_fixed(point.wall, 3)});
    points.push_back(std::move(point));
  }
  std::cout << metrics::banner("Bootstrap time components vs instance count");
  std::cout << table.to_string();
  table.write_csv(bench::output_dir() + "/fig3_bootstrap.csv");

  // Shape checks mirroring the paper's observations.
  const auto& first = points.front();
  const auto at160_it =
      std::find_if(points.begin(), points.end(),
                   [](const BootstrapPoint& p) { return p.instances == 160; });
  const auto& at160 = at160_it != points.end() ? *at160_it : points.back();
  const auto& at640 = points.back();
  std::cout << "\nShape checks (paper section IV-B):\n";
  std::cout << "  launch flat to 160 instances:   "
            << strutil::format_fixed(at160.launch.mean() /
                                         first.launch.mean(),
                                     2)
            << "x ratio (expect ~1)\n";
  std::cout << "  launch grows by 640 instances:  "
            << strutil::format_fixed(at640.launch.mean() /
                                         first.launch.mean(),
                                     2)
            << "x ratio (expect > 2)\n";
  std::cout << "  init dominates at 640:          "
            << strutil::format_fixed(
                   at640.init.mean() /
                       (at640.launch.mean() + at640.publish.mean()),
                   2)
            << "x (expect > 1)\n";
  std::cout << "  publish < launch everywhere:    "
            << (([&] {
                 for (const auto& p : points) {
                   if (p.publish.mean() >= p.launch.mean()) return "NO";
                 }
                 return "yes";
               })())
            << "\n";
  return 0;
}
