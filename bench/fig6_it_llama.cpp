// Reproduces Fig. 6: Service Response Times for LLAMA inference calls —
// and extends it with the throughput half of the story: batched,
// autoscaled serving versus the paper's single-threaded baseline.
//
// Experiment 3: the same sweep as Experiment 2 but with real model
// costs (llama-8b, ~4 s per generation). Expected shape:
//   * inference dominates every other component by orders of magnitude,
//     so model locality (local vs remote) stops mattering;
//   * strong scaling with few services shows deep request queues (the
//     `service` component inflates with queue wait: "the backend is too
//     slow");
//   * weak scaling is flat at roughly the pure inference time.
//
// Serving-layer extension: at saturation (16 eager clients against one
// initial replica), adaptive micro-batching plus queue-depth-driven
// autoscaling must deliver >= 2x the baseline's request throughput, and
// the whole elastic run must stay bit-deterministic (same seed => same
// event count, served count and per-replica batch-size traces).

#include <cstdint>
#include <iostream>

#include "bench_util.hpp"
#include "ripple/ml/autoscaler.hpp"
#include "ripple/ml/inference_service.hpp"

namespace {

using namespace ripple;

struct ServingPoint {
  double throughput = 0.0;  ///< ok requests per second at saturation
  double makespan = 0.0;
  std::uint64_t ok = 0;
  std::uint64_t scale_ups = 0;
  std::size_t final_replicas = 0;
  std::uint64_t events = 0;
  std::uint64_t trace_hash = 0;  ///< FNV-1a over batch traces + counters
};

void hash_mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= 1099511628211ULL;
}

/// One saturation point: `clients` eager clients against an elastic
/// llama-8b pool. baseline = 1 fixed unbatched replica; serving = batch
/// of 8 with a 50 ms window, autoscaled 1..4 replicas.
ServingPoint run_serving_point(bool batched, bool autoscaled,
                               std::size_t clients,
                               std::size_t requests_per_client,
                               std::uint64_t seed) {
  core::Session session({.seed = seed});
  ml::install(session);
  session.add_platform(platform::delta_profile(4));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 4});

  core::ServiceDescription replica = bench::inference_service("llama-8b");
  replica.name = "llm";
  if (batched) {
    replica.config.set("max_batch", 8);
    replica.config.set("batch_window", 0.05);
  }

  ml::AutoscalerConfig scaling;
  scaling.min_replicas = 1;
  scaling.max_replicas = autoscaled ? 4 : 1;
  scaling.scale_up_outstanding = 8.0;
  scaling.scale_down_outstanding = 1.0;
  scaling.poll_interval = 0.25;
  scaling.cooldown = 2.0;
  ml::Autoscaler scaler(session, pilot, replica, scaling);

  ServingPoint point;
  double start = 0.0;
  scaler.start([&](bool ok) {
    if (!ok) {
      std::cerr << "serving bootstrap failed\n";
      session.loop().stop();
      return;
    }
    start = session.now();
    std::vector<std::string> task_uids;
    for (std::size_t c = 0; c < clients; ++c) {
      core::TaskDescription task = bench::client_task(
          scaler.endpoints(), requests_per_client, "serving", 4,
          "least_outstanding");
      task.payload.set("watch", "llm");
      task.payload.set("max_retries", 8);
      task.payload.set("retry_backoff", 0.05);
      task_uids.push_back(session.tasks().submit(pilot, task));
    }
    session.tasks().when_done(task_uids, [&](bool) {
      point.makespan = session.now() - start;
      // Snapshot per-replica batch traces before the programs drain.
      for (const auto& uid : scaler.replicas()) {
        if (!session.services().exists(uid)) continue;
        auto* program = dynamic_cast<ml::InferenceProgram*>(
            session.services().program(uid));
        if (program == nullptr || program->server() == nullptr) continue;
        hash_mix(point.trace_hash, program->server()->served());
        hash_mix(point.trace_hash, program->server()->rejected());
        hash_mix(point.trace_hash, program->server()->batch_trace_hash());
      }
      point.final_replicas = scaler.running_replicas();
      point.scale_ups = scaler.scale_ups();
      scaler.stop();
    });
  });
  session.run();

  if (session.metrics().has_series("serving")) {
    point.ok = session.metrics().series("serving").count();
  }
  point.events = session.loop().events_processed();
  hash_mix(point.trace_hash, point.ok);
  hash_mix(point.trace_hash, point.events);
  point.throughput =
      point.makespan > 0 ? static_cast<double>(point.ok) / point.makespan
                         : 0.0;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bench;
  const bool smoke = smoke_mode(argc, argv);
  std::cout << "Fig. 6 reproduction: LLAMA-8b inference response time "
               "(local Delta and remote R3 services)\n";

  const std::vector<std::size_t> service_counts =
      smoke ? std::vector<std::size_t>{1, 4}
            : std::vector<std::size_t>{1, 2, 4, 8, 16};

  RtExperimentConfig remote;
  remote.model = "llama-8b";
  remote.remote = true;
  remote.requests_per_client = smoke ? 16 : 128;  // 4 s/inference

  std::vector<ScalingPoint> strong;
  for (const std::size_t services : service_counts) {
    strong.push_back(run_rt_point(16, services, remote));
  }
  print_scaling_table(
      "Remote, strong scaling (16 clients, 1..16 llama services)", strong,
      "fig6_it_remote_strong.csv");

  RtExperimentConfig weak_config = remote;
  weak_config.pair_clients = true;
  std::vector<ScalingPoint> weak;
  for (const std::size_t n : service_counts) {
    weak.push_back(run_rt_point(n, n, weak_config));
  }
  print_scaling_table("Remote, weak scaling (N clients, N llama services)",
                      weak, "fig6_it_remote_weak.csv");

  RtExperimentConfig local = weak_config;
  local.remote = false;
  const std::size_t top = service_counts.back();
  const ScalingPoint local16 = run_rt_point(top, top, local);
  const ScalingPoint remote16 = weak.back();

  std::cout << "\nShape checks (paper section IV-D):\n";
  std::cout << "  inference dominates (weak " << top << "/" << top << "): "
            << ripple::strutil::format_fixed(
                   remote16.inference_mean /
                       std::max(remote16.communication_mean +
                                    remote16.service_mean,
                                1e-12),
                   0)
            << "x communication+service (expect >> 1)\n";
  std::cout << "  model locality secondary: |local-remote| total = "
            << ripple::strutil::format_fixed(
                   std::abs(local16.total_mean - remote16.total_mean) /
                       remote16.total_mean * 100.0,
                   2)
            << "% (expect small)\n";
  std::cout << "  strong scaling queueing (16 clients / 1 service): "
            << "service component "
            << ripple::strutil::format_fixed(
                   strong.front().service_mean / strong.back().service_mean,
                   0)
            << "x the " << top << "-service case (expect >> 1)\n";

  // --- The serving layer at saturation -----------------------------------
  const std::size_t clients = 16;
  const std::size_t requests = smoke ? 16 : 64;
  const ServingPoint baseline =
      run_serving_point(false, false, clients, requests, 7);
  const ServingPoint served =
      run_serving_point(true, true, clients, requests, 7);
  const ServingPoint rerun =
      run_serving_point(true, true, clients, requests, 7);

  metrics::Table serving_table({"config", "throughput_req_s", "makespan_s",
                                "ok", "scale_ups", "replicas"});
  serving_table.add_row(
      {"single-threaded baseline",
       strutil::format_fixed(baseline.throughput, 3),
       strutil::format_fixed(baseline.makespan, 1),
       std::to_string(baseline.ok), std::to_string(baseline.scale_ups),
       std::to_string(baseline.final_replicas)});
  serving_table.add_row(
      {"batched + autoscaled", strutil::format_fixed(served.throughput, 3),
       strutil::format_fixed(served.makespan, 1), std::to_string(served.ok),
       std::to_string(served.scale_ups),
       std::to_string(served.final_replicas)});
  std::cout << metrics::banner(
      "Serving layer at saturation (16 eager clients, llama-8b)");
  std::cout << serving_table.to_string();
  serving_table.write_csv(output_dir() + "/fig6_serving_throughput.csv");

  const double gain = served.throughput / std::max(baseline.throughput, 1e-12);
  const bool deterministic = served.events == rerun.events &&
                             served.ok == rerun.ok &&
                             served.trace_hash == rerun.trace_hash &&
                             served.makespan == rerun.makespan;
  std::cout << "\nServing-layer acceptance:\n";
  std::cout << "  throughput gain at saturation: "
            << strutil::format_fixed(gain, 2) << "x (require >= 2x)\n";
  std::cout << "  same-seed rerun bit-identical: "
            << (deterministic ? "yes" : "NO") << " (events " << served.events
            << ", served " << served.ok << ")\n";
  if (gain < 2.0 || !deterministic) {
    std::cerr << "FAIL: serving-layer acceptance not met\n";
    return 1;
  }
  return 0;
}
