// Reproduces Fig. 6: Service Response Times for LLAMA inference calls.
//
// Experiment 3: the same sweep as Experiment 2 but with real model
// costs (llama-8b, ~4 s per generation). Expected shape:
//   * inference dominates every other component by orders of magnitude,
//     so model locality (local vs remote) stops mattering;
//   * strong scaling with few services shows deep request queues (the
//     `service` component inflates with queue wait: "the backend is too
//     slow");
//   * weak scaling is flat at roughly the pure inference time.

#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace bench;
  std::cout << "Fig. 6 reproduction: LLAMA-8b inference response time "
               "(local Delta and remote R3 services)\n";

  const std::vector<std::size_t> service_counts = {1, 2, 4, 8, 16};

  RtExperimentConfig remote;
  remote.model = "llama-8b";
  remote.remote = true;
  remote.requests_per_client = 128;  // 4 s/inference: keep runs bounded

  std::vector<ScalingPoint> strong;
  for (const std::size_t services : service_counts) {
    strong.push_back(run_rt_point(16, services, remote));
  }
  print_scaling_table(
      "Remote, strong scaling (16 clients, 1..16 llama services)", strong,
      "fig6_it_remote_strong.csv");

  RtExperimentConfig weak_config = remote;
  weak_config.pair_clients = true;
  std::vector<ScalingPoint> weak;
  for (const std::size_t n : service_counts) {
    weak.push_back(run_rt_point(n, n, weak_config));
  }
  print_scaling_table("Remote, weak scaling (N clients, N llama services)",
                      weak, "fig6_it_remote_weak.csv");

  RtExperimentConfig local = weak_config;
  local.remote = false;
  const ScalingPoint local16 = run_rt_point(16, 16, local);
  const ScalingPoint remote16 = weak.back();

  std::cout << "\nShape checks (paper section IV-D):\n";
  std::cout << "  inference dominates (weak 16/16): "
            << ripple::strutil::format_fixed(
                   remote16.inference_mean /
                       std::max(remote16.communication_mean +
                                    remote16.service_mean,
                                1e-12),
                   0)
            << "x communication+service (expect >> 1)\n";
  std::cout << "  model locality secondary: |local-remote| total = "
            << ripple::strutil::format_fixed(
                   std::abs(local16.total_mean - remote16.total_mean) /
                       remote16.total_mean * 100.0,
                   2)
            << "% (expect small)\n";
  std::cout << "  strong scaling queueing (16 clients / 1 service): "
            << "service component "
            << ripple::strutil::format_fixed(
                   strong.front().service_mean / strong.back().service_mean,
                   0)
            << "x the 16-service case (expect >> 1: requests queue)\n";
  return 0;
}
