// Ablation: the multi-tenant runtime (shared dataset cache + weighted
// fair-share arbitration).
//
// Three tenants run the same graph workload over a common corpus whose
// parts are registered per-tenant under private names but shared
// content ids. Two arms:
//
// 1. Shared. One session hosts all three tenants: the first tenant to
//    touch a part pays the transfer, the others hit the warm replica
//    in the content-addressed catalog. Gate: >= 30% fewer bytes moved
//    than the isolated arm.
// 2. Isolated. Each tenant gets its own session (the pre-multi-tenant
//    deployment: one runtime per campaign) and re-transfers every part
//    it consumes.
//
// Fairness gate: at equal weights the per-tenant p95 turnaround spread
// (max/min) in the shared arm must stay <= 1.25x — fair-share keeps
// symmetric tenants symmetric even while they race for the cache.
// Determinism gate: the shared arm's full trace fingerprint (grant
// order, transfer completions, per-graph event streams) is
// bit-identical across same-seed reruns and scheduler shard counts
// {1, 4}. Output: bench_out/ablation_tenants.{csv,json}.
//
// Usage: bench_ablation_tenants [--smoke]

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "ripple/common/hash.hpp"
#include "ripple/common/shard_executor.hpp"
#include "ripple/wf/graph.hpp"
#include "ripple/wf/workflow_manager.hpp"

namespace {

using namespace ripple;

constexpr std::uint64_t kSeed = 42;

std::string to_hex(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xf];
    value >>= 4;
  }
  return out;
}

core::TaskDescription modeled(double seconds) {
  core::TaskDescription desc;
  desc.kind = "modeled";
  desc.cores = 4;
  desc.duration = common::Distribution::constant(seconds);
  return desc;
}

struct TenantsConfig {
  std::size_t tenants = 3;
  std::size_t parts = 6;            ///< distinct content ids in the corpus
  double part_bytes = 4e9;
  std::size_t graphs_per_tenant = 8;
  double task_seconds = 4.0;
};

struct ArmResult {
  double makespan = 0.0;
  double bytes_moved = 0.0;
  std::uint64_t transfers = 0;
  std::vector<double> p95_turnaround;  ///< per tenant
  std::uint64_t trace_hash = 0;
};

std::string tenant_name(std::size_t t) {
  return "tenant" + std::to_string(t);
}

std::string part_name(std::size_t t, std::size_t p) {
  return "t" + std::to_string(t) + "/part" + std::to_string(p);
}

/// Registers tenant `t`'s private names for the corpus. Content ids
/// collapse them onto shared replicas in the shared arm; in the
/// isolated arm each session only ever sees one tenant's names, so the
/// aliasing is inert and every part transfers again.
void register_corpus(core::Session& session, const TenantsConfig& config,
                     std::size_t t) {
  for (std::size_t p = 0; p < config.parts; ++p) {
    session.data().register_dataset(part_name(t, p), config.part_bytes,
                                    "archive",
                                    "cid:part" + std::to_string(p));
  }
}

/// Submits tenant `t`'s graphs and records completion turnarounds.
/// Graph g consumes parts (g % parts) and ((g + 1) % parts) — every
/// tenant sweeps the same corpus in the same order, so the workload is
/// symmetric across tenants by construction.
void submit_workload(core::Session& session, wf::WorkflowManager& workflows,
                     core::Pilot& pilot, const TenantsConfig& config,
                     std::size_t t, std::vector<double>& turnarounds,
                     std::uint64_t& graph_hash) {
  for (std::size_t g = 0; g < config.graphs_per_tenant; ++g) {
    wf::Stage stage;
    stage.name = "consume";
    stage.consumes = {part_name(t, g % config.parts),
                      part_name(t, (g + 1) % config.parts)};
    stage.tasks = {modeled(config.task_seconds)};
    wf::Graph graph("g" + std::to_string(g) + "-" + tenant_name(t));
    graph.tenant = tenant_name(t);
    graph.add(stage);
    workflows.run_graph(graph, pilot,
                        [&turnarounds, &graph_hash,
                         &session](const wf::GraphResult& r) {
                          turnarounds.push_back(session.now());
                          graph_hash =
                              common::fnv1a(graph_hash, r.graph);
                          graph_hash =
                              common::fnv1a(graph_hash, r.event_hash);
                        });
  }
}

double p95(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t index =
      static_cast<std::size_t>(0.95 * static_cast<double>(values.size()));
  return values[std::min(index, values.size() - 1)];
}

/// One session, all tenants, equal weights: the shared-cache arm.
ArmResult run_shared(const TenantsConfig& config, std::size_t shards) {
  common::ShardExecutor exec(shards);
  core::Session session{core::SessionConfig{.seed = kSeed}};
  session.add_platform(platform::delta_profile(4));
  core::Pilot& pilot =
      session.submit_pilot({.platform = "delta", .nodes = 4});
  if (shards > 1) session.scheduler().set_shard_executor(&exec);

  for (std::size_t t = 0; t < config.tenants; ++t) {
    session.set_tenant_weight(tenant_name(t), 1.0);
    register_corpus(session, config, t);
  }

  wf::WorkflowManager workflows(session);
  std::vector<std::vector<double>> turnarounds(config.tenants);
  std::uint64_t graph_hash = common::kFnvOffsetBasis;
  for (std::size_t t = 0; t < config.tenants; ++t) {
    submit_workload(session, workflows, pilot, config, t, turnarounds[t],
                    graph_hash);
  }
  session.run();

  ArmResult result;
  result.makespan = session.now();
  result.bytes_moved = session.data().engine().bytes_moved();
  result.transfers = session.data().engine().transfers_completed();
  for (auto& per_tenant : turnarounds) {
    result.p95_turnaround.push_back(p95(per_tenant));
  }
  result.trace_hash = common::fnv1a(
      common::fnv1a(graph_hash, session.scheduler().grant_log_hash()),
      session.data().engine().transfers_completed());
  for (const auto& line : session.data().engine().completion_log()) {
    result.trace_hash = common::fnv1a(result.trace_hash, line);
  }
  return result;
}

/// One session per tenant: the pre-multi-tenant baseline. Makespan is
/// the slowest campaign; bytes are summed across sessions.
ArmResult run_isolated(const TenantsConfig& config) {
  ArmResult result;
  std::uint64_t graph_hash = common::kFnvOffsetBasis;
  for (std::size_t t = 0; t < config.tenants; ++t) {
    core::Session session{core::SessionConfig{.seed = kSeed}};
    session.add_platform(platform::delta_profile(4));
    core::Pilot& pilot =
        session.submit_pilot({.platform = "delta", .nodes = 4});
    register_corpus(session, config, t);
    wf::WorkflowManager workflows(session);
    std::vector<double> turnarounds;
    submit_workload(session, workflows, pilot, config, t, turnarounds,
                    graph_hash);
    session.run();
    result.makespan = std::max(result.makespan, session.now());
    result.bytes_moved += session.data().engine().bytes_moved();
    result.transfers += session.data().engine().transfers_completed();
    result.p95_turnaround.push_back(p95(turnarounds));
  }
  result.trace_hash = graph_hash;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke_mode(argc, argv);

  TenantsConfig config;
  if (smoke) config = {3, 3, 2e9, 3, 2.0};

  const ArmResult shared = run_shared(config, 1);
  const ArmResult shared_rerun = run_shared(config, 1);
  const ArmResult shared_sharded = run_shared(config, 4);
  const ArmResult isolated = run_isolated(config);
  const ArmResult isolated_rerun = run_isolated(config);

  const double bytes_saved =
      isolated.bytes_moved > 0.0
          ? 1.0 - shared.bytes_moved / isolated.bytes_moved
          : 0.0;
  const auto [min_it, max_it] =
      std::minmax_element(shared.p95_turnaround.begin(),
                          shared.p95_turnaround.end());
  const double fairness_spread = *min_it > 0.0 ? *max_it / *min_it : 0.0;

  bool pass = true;
  if (shared.trace_hash != shared_rerun.trace_hash ||
      shared.makespan != shared_rerun.makespan) {
    std::cerr << "FAIL: same-seed shared-arm rerun diverged\n";
    pass = false;
  }
  if (shared.trace_hash != shared_sharded.trace_hash ||
      shared.makespan != shared_sharded.makespan) {
    std::cerr << "FAIL: shared arm diverged at shards=4\n";
    pass = false;
  }
  if (isolated.trace_hash != isolated_rerun.trace_hash) {
    std::cerr << "FAIL: same-seed isolated-arm rerun diverged\n";
    pass = false;
  }
  if (bytes_saved < 0.30) {
    std::cerr << "FAIL: shared cache saved only "
              << strutil::format_fixed(100.0 * bytes_saved, 1)
              << "% of bytes vs isolated, target >= 30%\n";
    pass = false;
  }
  if (fairness_spread > 1.25) {
    std::cerr << "FAIL: p95 turnaround spread "
              << strutil::format_fixed(fairness_spread, 3)
              << "x at equal weights, target <= 1.25x\n";
    pass = false;
  }

  metrics::Table table({"arm", "makespan_s", "bytes_moved_gb", "transfers",
                        "p95_spread", "trace_hash"});
  table.add_row({"shared", strutil::format_fixed(shared.makespan, 2),
                 strutil::format_fixed(shared.bytes_moved / 1e9, 1),
                 std::to_string(shared.transfers),
                 strutil::format_fixed(fairness_spread, 3),
                 to_hex(shared.trace_hash)});
  table.add_row({"isolated", strutil::format_fixed(isolated.makespan, 2),
                 strutil::format_fixed(isolated.bytes_moved / 1e9, 1),
                 std::to_string(isolated.transfers), "-",
                 to_hex(isolated.trace_hash)});

  std::cout << metrics::banner(
      "Multi-tenant runtime (shared content-addressed cache vs isolated "
      "sessions)");
  std::cout << table.to_string();
  std::cout << "\nbytes_saved="
            << strutil::format_fixed(100.0 * bytes_saved, 1)
            << "% (gate >= 30%)  fairness_spread="
            << strutil::format_fixed(fairness_spread, 3)
            << "x (gate <= 1.25x)\n";

  table.write_csv(bench::output_dir() + "/ablation_tenants.csv");

  json::Value report = json::Value::object();
  report.set("smoke", smoke);
  report.set("tenants", config.tenants);
  report.set("parts", config.parts);
  report.set("graphs_per_tenant", config.graphs_per_tenant);
  report.set("shared_bytes", shared.bytes_moved);
  report.set("isolated_bytes", isolated.bytes_moved);
  report.set("bytes_saved_fraction", bytes_saved);
  report.set("shared_makespan", shared.makespan);
  report.set("isolated_makespan", isolated.makespan);
  report.set("fairness_spread", fairness_spread);
  report.set("trace_hash", to_hex(shared.trace_hash));
  std::ofstream file(bench::output_dir() + "/ablation_tenants.json");
  file << report.dump(2) << "\n";

  std::cout << (pass ? "\nPASS" : "\nFAIL")
            << ": shared cache cuts bytes >= 30%, equal-weight p95 spread "
               "<= 1.25x, same-seed traces bit-identical across reruns "
               "and shards {1, 4}\n";
  return pass ? 0 : 1;
}
