// Reproduces Table II: the experiment setup matrix, executed.
//
// Each row of the paper's Table II is run at a representative
// configuration and reported with its headline metric:
//   1  Frontier  n/a   llama-8b  local   1-640 models  weak    -> BT
//   2  Delta     NOOP  noop      local   1-16 / 1-16   s/w     -> RT
//      Delta+R3  NOOP  noop      remote  1-16 / 1-16   s/w     -> RT
//   3  Delta     inf   llama-8b  local   1-16 / 1-16   s/w     -> IT
//      Delta+R3  inf   llama-8b  remote  1-16 / 1-16   s/w     -> IT

#include <iostream>

#include "bench_util.hpp"

namespace {

using namespace ripple;

/// Runs a compact Experiment-1 point: n llama services on Frontier.
double bootstrap_total_mean(std::size_t n_instances) {
  core::Session session({.seed = 7});
  ml::install(session);
  session.add_platform(platform::frontier_profile(80));
  auto& pilot = session.submit_pilot({.platform = "frontier", .nodes = 80});
  std::vector<std::string> uids;
  for (std::size_t i = 0; i < n_instances; ++i) {
    uids.push_back(
        session.services().submit(pilot, bench::inference_service("llama-8b")));
  }
  session.services().when_ready(
      uids, [&](bool) { session.services().stop_all(); });
  session.run();
  return session.metrics().bootstrap_component("total").mean();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bench;
  const bool smoke = smoke_mode(argc, argv);
  std::cout << "Table II reproduction: experiment setup matrix with "
               "measured headline metrics\n";

  metrics::Table table({"id", "platform", "task_type", "model",
                        "deployment", "tasks", "models", "cores", "gpus",
                        "scaling", "metric", "value"});

  // Row 1: Experiment 1, weak scaling of bootstrap on Frontier.
  for (const std::size_t n :
       smoke ? std::vector<std::size_t>{1, 64}
             : std::vector<std::size_t>{1, 640}) {
    const double bt = bootstrap_total_mean(n);
    table.add_row({"1", "frontier", "n/a", "llama-8b", "local", "n/a",
                   std::to_string(n), "5120", "640", "weak", "BT_mean_s",
                   strutil::format_fixed(bt, 2)});
  }

  // Rows 2-3: Experiments 2 and 3, strong (16/16) and weak (16/16
  // paired) endpoints of each sweep.
  struct Row {
    const char* id;
    const char* platform;
    const char* task_type;
    const char* model;
    bool remote;
    std::size_t requests;
  };
  const std::size_t noop_requests = smoke ? 64 : 1024;
  const std::size_t llama_requests = smoke ? 16 : 128;
  const Row rows[] = {
      {"2", "delta", "NOOP", "noop", false, noop_requests},
      {"2", "delta+r3", "NOOP", "noop", true, noop_requests},
      {"3", "delta", "inference", "llama-8b", false, llama_requests},
      {"3", "delta+r3", "inference", "llama-8b", true, llama_requests},
  };
  for (const Row& row : rows) {
    RtExperimentConfig config;
    config.model = row.model;
    config.remote = row.remote;
    config.requests_per_client = row.requests;

    const ScalingPoint strong = run_rt_point(16, 1, config);
    RtExperimentConfig weak_config = config;
    weak_config.pair_clients = true;
    const ScalingPoint weak = run_rt_point(16, 16, weak_config);

    const char* metric =
        std::string(row.model) == "noop" ? "RT_mean_ms" : "IT_mean_ms";
    const double strong_value = std::string(row.model) == "noop"
                                    ? strong.total_mean * 1e3
                                    : strong.inference_mean * 1e3;
    const double weak_value = std::string(row.model) == "noop"
                                  ? weak.total_mean * 1e3
                                  : weak.inference_mean * 1e3;
    table.add_row({row.id, row.platform, row.task_type, row.model,
                   row.remote ? "remote" : "local", "16", "1", "256", "16",
                   "strong", metric, strutil::format_fixed(strong_value, 3)});
    table.add_row({row.id, row.platform, row.task_type, row.model,
                   row.remote ? "remote" : "local", "16", "16", "256", "16",
                   "weak", metric, strutil::format_fixed(weak_value, 3)});
  }

  std::cout << metrics::banner("Experiment matrix (measured)");
  std::cout << table.to_string();
  table.write_csv(output_dir() + "/table2_matrix.csv");
  return 0;
}
