// Ablation: continuous batching and SLO-driven autoscaling.
//
// Two claims, both asserted:
//
//  1. Hot path — at saturation (a deep closed-loop request stream
//     against one llama-8b worker), vLLM-style continuous batching cuts
//     p95 request latency by >= 1.3x versus fixed micro-batching at the
//     same max_batch: short sequences reply when *they* finish instead
//     of waiting for the longest sequence in their batch, and admission
//     at step boundaries keeps the decode loop full instead of
//     re-windowing between batches.
//
//  2. Policy — on a bursty trace whose queue depth never crosses the
//     queue-depth policy's per-replica threshold, the latency-SLO
//     autoscaler (windowed p95 vs target) still scales out and holds
//     client p95 under the target; the queue-depth policy sits at one
//     replica and blows through it. Latency is what the SLO sees;
//     queue depth is only a proxy, and a slow model breaks the proxy
//     long before the backlog looks deep.
//
// Both experiments rerun under the same seed and must be bit-identical
// (event counts, served counts, batch/completion hashes, p95s).

#include <cstdint>
#include <functional>
#include <iostream>

#include "bench_util.hpp"
#include "ripple/ml/autoscaler.hpp"
#include "ripple/ml/inference_service.hpp"

namespace {

using namespace ripple;

void hash_mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= 1099511628211ULL;
}

// --- 1. continuous vs fixed micro-batching at saturation -------------------

struct SaturationPoint {
  double p50 = 0.0;
  double p95 = 0.0;
  double mean = 0.0;
  double makespan = 0.0;
  double throughput = 0.0;
  std::uint64_t served = 0;
  std::uint64_t trace_hash = 0;
};

/// A closed-loop stream of `concurrency` in-flight requests against one
/// worker (one GPU) until `requests` have completed.
SaturationPoint run_saturation(bool continuous, std::size_t requests,
                               std::size_t concurrency,
                               std::uint64_t seed) {
  sim::EventLoop loop;
  common::Rng rng(seed);
  sim::Network net(loop, rng.fork("net"));
  msg::Router router(loop, net);
  net.register_host("s", "z");
  net.register_host("c", "z");
  net.set_link("z", "z",
               sim::LinkModel{common::Distribution::constant(1e-4), 0});
  msg::RpcServer rpc_server(router, "svc", "s");
  msg::RpcClient rpc_client(router, "cli", "c");

  ml::ServerConfig config;
  config.max_batch = 8;
  if (continuous) {
    config.continuous = true;
  } else {
    config.batch_window = 0.05;
  }
  ml::InferenceServer server(loop, rng.fork("server"),
                             ml::llama_8b_model(), config);
  rpc_server.bind_method("infer", [&](std::shared_ptr<msg::Responder> r) {
    server.handle(std::move(r));
  });

  common::Summary latencies;
  std::size_t sent = 0;
  std::function<void()> send_one = [&] {
    if (sent >= requests) return;
    ++sent;
    const double sent_at = loop.now();
    rpc_client.call("svc", "infer", json::Value::object(),
                    [&, sent_at](msg::CallResult r) {
                      if (r.ok) latencies.add(loop.now() - sent_at);
                      send_one();
                    });
  };
  for (std::size_t i = 0; i < concurrency; ++i) send_one();
  loop.run();

  SaturationPoint point;
  point.p50 = latencies.median();
  point.p95 = latencies.p95();
  point.mean = latencies.mean();
  point.makespan = loop.now();
  point.served = server.served();
  point.throughput = point.makespan > 0
                         ? static_cast<double>(point.served) / point.makespan
                         : 0.0;
  hash_mix(point.trace_hash, server.batch_trace_hash());
  hash_mix(point.trace_hash, server.completion_hash());
  hash_mix(point.trace_hash, server.served());
  hash_mix(point.trace_hash, loop.events_processed());
  return point;
}

// --- 2. SLO vs queue-depth autoscaling on a bursty trace -------------------

struct PolicyPoint {
  double p95 = 0.0;
  double makespan = 0.0;
  std::uint64_t ok = 0;
  std::uint64_t scale_ups = 0;
  std::size_t final_replicas = 0;
  std::uint64_t events = 0;
  std::uint64_t trace_hash = 0;
};

/// Bursty load: two back-to-back bursts of `clients` closed-loop
/// clients, each thinking between requests. Queue depth stays under the
/// queue policy's per-replica scale-up threshold the whole time — only
/// the latency signal sees the trouble. The first burst is the ramp
/// (its latencies land in the "ramp" series and necessarily include
/// the ~32 s llama model load no policy can skip); the judged p95 is
/// the second burst ("abl"), which hits whatever capacity the policy
/// managed to stand up.
PolicyPoint run_policy_point(bool slo, double target_p95,
                             std::size_t clients,
                             std::size_t requests_per_client,
                             std::uint64_t seed) {
  core::Session session({.seed = seed});
  ml::install(session);
  session.add_platform(platform::delta_profile(4));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 4});

  core::ServiceDescription replica = bench::inference_service("llama-8b");
  replica.name = "llm";
  replica.config.set("continuous", true);
  replica.config.set("max_batch", 4);
  replica.config.set("latency_window", 10.0);

  ml::AutoscalerConfig scaling;
  scaling.min_replicas = 1;
  scaling.max_replicas = 6;
  scaling.poll_interval = 0.25;
  scaling.cooldown = 2.0;
  if (slo) {
    scaling.target_p95 = target_p95;
    scaling.headroom_fraction = 0.5;
    scaling.down_sustain = 4;
  } else {
    // The queue-depth policy the serving layer shipped with: per-replica
    // backlog thresholds. The bursty trace below never reaches 8
    // outstanding per replica, so this policy never scales.
    scaling.scale_up_outstanding = 8.0;
    scaling.scale_down_outstanding = 1.0;
  }
  ml::Autoscaler scaler(session, pilot, replica, scaling);

  PolicyPoint point;
  double start = 0.0;
  auto spawn_wave = [&](std::size_t wave_clients, const char* series,
                        std::function<void(bool)> on_wave_done) {
    std::vector<std::string> task_uids;
    for (std::size_t c = 0; c < wave_clients; ++c) {
      core::TaskDescription task = bench::client_task(
          scaler.endpoints(), requests_per_client, series, 1,
          "least_outstanding");
      task.payload.set("watch", "llm");
      task.payload.set("think_time", 0.3);
      task.payload.set("max_retries", 8);
      task.payload.set("retry_backoff", 0.05);
      task_uids.push_back(session.tasks().submit(pilot, task));
    }
    session.tasks().when_done(task_uids, std::move(on_wave_done));
  };
  scaler.start([&](bool ok) {
    if (!ok) {
      std::cerr << "policy bootstrap failed\n";
      session.loop().stop();
      return;
    }
    start = session.now();
    spawn_wave(clients, "ramp", [&](bool) {
      // Second burst right as the first drains: the SLO pool is already
      // scaled and absorbs it; the queue-depth pool queues again.
      spawn_wave(clients, "abl", [&](bool) {
        point.makespan = session.now() - start;
        for (const auto& uid : session.services().uids()) {
          auto* program = dynamic_cast<ml::InferenceProgram*>(
              session.services().program(uid));
          if (program == nullptr || program->server() == nullptr) continue;
          hash_mix(point.trace_hash, program->server()->served());
          hash_mix(point.trace_hash,
                   program->server()->batch_trace_hash());
          hash_mix(point.trace_hash,
                   program->server()->completion_hash());
        }
        point.final_replicas = scaler.running_replicas();
        point.scale_ups = scaler.scale_ups();
        scaler.stop();
      });
    });
  });
  session.run();

  if (session.metrics().has_series("abl")) {
    point.ok = session.metrics().series("abl").count();
    point.p95 = session.metrics().series("abl").total.p95();
  }
  point.events = session.loop().events_processed();
  hash_mix(point.trace_hash, point.ok);
  hash_mix(point.trace_hash, point.events);
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bench;
  const bool smoke = smoke_mode(argc, argv);
  std::cout << "Ablation: continuous batching + SLO-driven autoscaling\n";

  // --- continuous vs fixed at saturation --------------------------------
  const std::size_t requests = smoke ? 160 : 400;
  const std::size_t concurrency = 32;
  const SaturationPoint fixed =
      run_saturation(false, requests, concurrency, 11);
  const SaturationPoint continuous =
      run_saturation(true, requests, concurrency, 11);
  const SaturationPoint rerun =
      run_saturation(true, requests, concurrency, 11);

  metrics::Table batching({"config", "p50_s", "p95_s", "mean_s",
                           "throughput_req_s", "served"});
  batching.add_row({"fixed micro-batch (8, 50 ms window)",
                    strutil::format_fixed(fixed.p50, 2),
                    strutil::format_fixed(fixed.p95, 2),
                    strutil::format_fixed(fixed.mean, 2),
                    strutil::format_fixed(fixed.throughput, 3),
                    std::to_string(fixed.served)});
  batching.add_row({"continuous batching (8)",
                    strutil::format_fixed(continuous.p50, 2),
                    strutil::format_fixed(continuous.p95, 2),
                    strutil::format_fixed(continuous.mean, 2),
                    strutil::format_fixed(continuous.throughput, 3),
                    std::to_string(continuous.served)});
  std::cout << metrics::banner(
      "Saturation (32-deep closed loop, llama-8b, one worker)");
  std::cout << batching.to_string();
  batching.write_csv(output_dir() + "/ablation_continuous_batching.csv");
  batching.write_json(output_dir() + "/ablation_continuous_batching.json");

  const double p95_gain = fixed.p95 / std::max(continuous.p95, 1e-12);
  const bool batching_deterministic =
      continuous.trace_hash == rerun.trace_hash &&
      continuous.p95 == rerun.p95 &&
      continuous.makespan == rerun.makespan;
  std::cout << "\n  p95 cut: " << strutil::format_fixed(p95_gain, 2)
            << "x (require >= 1.3x); same-seed rerun bit-identical: "
            << (batching_deterministic ? "yes" : "NO") << "\n";

  // --- SLO vs queue-depth on a bursty trace -----------------------------
  const double target_p95 = 9.0;
  const std::size_t clients = 7;
  const std::size_t per_client = smoke ? 8 : 16;
  const PolicyPoint queue_policy =
      run_policy_point(false, target_p95, clients, per_client, 23);
  const PolicyPoint slo_policy =
      run_policy_point(true, target_p95, clients, per_client, 23);
  const PolicyPoint slo_rerun =
      run_policy_point(true, target_p95, clients, per_client, 23);

  metrics::Table policy({"policy", "p95_s", "target_s", "scale_ups",
                         "final_replicas", "ok", "makespan_s"});
  policy.add_row({"queue-depth (8/replica)",
                  strutil::format_fixed(queue_policy.p95, 2),
                  strutil::format_fixed(target_p95, 1),
                  std::to_string(queue_policy.scale_ups),
                  std::to_string(queue_policy.final_replicas),
                  std::to_string(queue_policy.ok),
                  strutil::format_fixed(queue_policy.makespan, 1)});
  policy.add_row({"latency SLO (p95 <= 9 s)",
                  strutil::format_fixed(slo_policy.p95, 2),
                  strutil::format_fixed(target_p95, 1),
                  std::to_string(slo_policy.scale_ups),
                  std::to_string(slo_policy.final_replicas),
                  std::to_string(slo_policy.ok),
                  strutil::format_fixed(slo_policy.makespan, 1)});
  std::cout << metrics::banner(
      "Bursty serving (2 bursts x 7 clients, llama-8b, continuous; "
      "p95 of the second burst)");
  std::cout << policy.to_string();
  policy.write_csv(output_dir() + "/ablation_continuous_slo.csv");
  policy.write_json(output_dir() + "/ablation_continuous_slo.json");

  const bool slo_deterministic =
      slo_policy.events == slo_rerun.events &&
      slo_policy.trace_hash == slo_rerun.trace_hash &&
      slo_policy.p95 == slo_rerun.p95;
  std::cout << "\n  SLO p95 " << strutil::format_fixed(slo_policy.p95, 2)
            << " s vs queue-depth "
            << strutil::format_fixed(queue_policy.p95, 2)
            << " s (target " << strutil::format_fixed(target_p95, 1)
            << " s); SLO rerun bit-identical: "
            << (slo_deterministic ? "yes" : "NO") << "\n";

  bool ok = true;
  if (p95_gain < 1.3) {
    std::cerr << "FAIL: continuous batching p95 gain < 1.3x\n";
    ok = false;
  }
  if (!batching_deterministic || !slo_deterministic) {
    std::cerr << "FAIL: same-seed rerun diverged\n";
    ok = false;
  }
  if (slo_policy.p95 > target_p95) {
    std::cerr << "FAIL: SLO policy missed its target p95\n";
    ok = false;
  }
  if (queue_policy.p95 <= target_p95) {
    std::cerr << "FAIL: queue-depth policy unexpectedly met the target "
                 "(trace not bursty enough to discriminate)\n";
    ok = false;
  }
  if (queue_policy.scale_ups != 0) {
    std::cerr << "FAIL: queue-depth policy scaled on this trace\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
