// Ablation: runtime survival under seeded node failures.
//
// The paper's pilot runtime is built for long-running campaigns on
// real machines, where nodes die mid-run; RADICAL-Pilot's answer is to
// re-place work rather than abort the run. This bench sweeps the
// per-task node-failure probability {0%, 2%, 5%, 10%} over a fixed
// modeled workload and compares three runtimes: the zero-failure
// baseline, a fail-stop runtime (no restart budget), and the
// recovering runtime (restart budget 3 with backoff). Failure streams
// come from the seeded FailureInjector, so every row is reproduced
// bit-identically on a rerun — the bench checks that too.
//
// Gate: at the 5% failure rate the recovering runtime must complete
// 100% of tasks with <= 2x makespan inflation over the zero-failure
// baseline, and every configuration's event/recovery/grant hashes
// must match across a same-seed rerun.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "ripple/core/failure_coordinator.hpp"
#include "ripple/sim/failure_injector.hpp"

namespace {

using namespace ripple;

constexpr std::size_t kNodes = 8;
constexpr std::size_t kTaskCores = 32;
constexpr double kTaskSeconds = 6.0;
constexpr double kMttr = 5.0;

core::TaskDescription modeled(double seconds, std::size_t cores) {
  core::TaskDescription desc;
  desc.kind = "modeled";
  desc.cores = cores;
  desc.duration = common::Distribution::constant(seconds);
  return desc;
}

struct RunResult {
  std::size_t done = 0;
  std::size_t failed = 0;
  std::size_t restarts = 0;
  std::size_t events = 0;
  double makespan = 0.0;
  std::uint64_t event_hash = 0;
  std::uint64_t recovery_hash = 0;
  std::uint64_t grant_hash = 0;
};

/// One full session: `tasks` modeled tasks on a delta pilot, node
/// crashes armed so that the expected crash count over the baseline
/// makespan is `rate * tasks`, and the restart budget picking between
/// fail-stop and recovering behaviour.
RunResult run_case(std::size_t tasks, double rate, std::size_t max_restarts,
                   double baseline_makespan) {
  core::Session session{core::SessionConfig{.seed = 4242}};
  session.add_platform(platform::delta_profile(kNodes));
  core::Pilot& pilot =
      session.submit_pilot({.platform = "delta", .nodes = kNodes});
  session.tasks().set_restart_policy(
      {.max_restarts = max_restarts, .backoff = 0.5});

  if (rate > 0.0) {
    sim::FailureInjector::Schedule crashes;
    crashes.mean_interarrival =
        baseline_makespan / (rate * static_cast<double>(tasks));
    crashes.mean_time_to_repair = kMttr;
    // Stop injecting once the healthy-run horizon has passed; recovery
    // tails run on undisturbed, like a real incident window.
    crashes.horizon = 2.0 * baseline_makespan;
    session.failures().arm_node_crashes("delta", crashes);
  }

  std::vector<core::TaskDescription> batch(tasks,
                                           modeled(kTaskSeconds, kTaskCores));
  (void)session.tasks().submit_all(pilot, batch);
  session.run();

  RunResult out;
  out.done = session.tasks().count_in_state(core::TaskState::done);
  out.failed = session.tasks().count_in_state(core::TaskState::failed);
  out.restarts = session.tasks().restarts_total();
  out.events = session.failures().injector().event_log().size();
  out.makespan = session.now();
  out.event_hash = session.failures().injector().event_log_hash();
  out.recovery_hash = session.tasks().recovery_log_hash();
  out.grant_hash = session.scheduler().grant_log_hash();
  return out;
}

bool same_hashes(const RunResult& a, const RunResult& b) {
  return a.event_hash == b.event_hash && a.recovery_hash == b.recovery_hash &&
         a.grant_hash == b.grant_hash && a.done == b.done &&
         a.failed == b.failed && a.makespan == b.makespan;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bench;
  const bool smoke = smoke_mode(argc, argv);
  const std::size_t tasks = smoke ? 24 : 64;
  const std::vector<double> rates =
      smoke ? std::vector<double>{0.05} : std::vector<double>{0.02, 0.05, 0.10};

  std::cout << "Ablation: seeded node failures vs runtime recovery ("
            << tasks << " x " << kTaskCores << "-core modeled tasks, "
            << kNodes << " delta nodes, MTTR " << kMttr << "s)\n";

  // The zero-failure baseline fixes the makespan that both the MTBF
  // derivation and the inflation gate are measured against.
  const RunResult baseline = run_case(tasks, 0.0, 0, 0.0);

  metrics::Table table({"fail_rate", "mode", "done", "failed", "restarts",
                        "events", "makespan_s", "inflation_x",
                        "rerun_identical"});
  auto add_row = [&](double rate, const std::string& mode, const RunResult& r,
                     bool identical) {
    table.add_row({strutil::format_fixed(rate * 100.0, 0) + "%", mode,
                   std::to_string(r.done), std::to_string(r.failed),
                   std::to_string(r.restarts), std::to_string(r.events),
                   strutil::format_fixed(r.makespan, 1),
                   strutil::format_fixed(r.makespan / baseline.makespan, 2),
                   identical ? "yes" : "NO"});
  };

  bool pass = true;
  add_row(0.0, "baseline", baseline,
          same_hashes(baseline, run_case(tasks, 0.0, 0, 0.0)));
  for (const double rate : rates) {
    const RunResult failstop =
        run_case(tasks, rate, 0, baseline.makespan);
    const RunResult failstop_rerun =
        run_case(tasks, rate, 0, baseline.makespan);
    const RunResult recover =
        run_case(tasks, rate, 3, baseline.makespan);
    const RunResult recover_rerun =
        run_case(tasks, rate, 3, baseline.makespan);
    const bool fs_identical = same_hashes(failstop, failstop_rerun);
    const bool rc_identical = same_hashes(recover, recover_rerun);
    add_row(rate, "fail-stop", failstop, fs_identical);
    add_row(rate, "recovering", recover, rc_identical);
    pass = pass && fs_identical && rc_identical;
    if (rate >= 0.05 - 1e-9 && rate <= 0.05 + 1e-9) {
      // The headline gate: full completion at 5% with bounded slowdown.
      const bool complete = recover.done == tasks && recover.failed == 0;
      const bool bounded = recover.makespan <= 2.0 * baseline.makespan;
      if (!complete) {
        std::cout << "GATE: recovering runtime lost tasks at 5% ("
                  << recover.done << "/" << tasks << " done)\n";
      }
      if (!bounded) {
        std::cout << "GATE: makespan inflation "
                  << strutil::format_fixed(
                         recover.makespan / baseline.makespan, 2)
                  << "x exceeds 2x at 5%\n";
      }
      pass = pass && complete && bounded;
    }
  }

  std::cout << metrics::banner("Failure ablation");
  std::cout << table.to_string();
  table.write_csv(output_dir() + "/ablation_failures.csv");
  table.write_json(output_dir() + "/ablation_failures.json");
  std::cout << (pass ? "PASS" : "FAIL")
            << ": recovery + determinism gates\n";
  return pass ? 0 : 1;
}
