// Ablation: load-balancing policy across heterogeneous services.
//
// The paper employs "only a rudimentary load balancing" and names
// "dynamically rerouting requests to less used service instances" as
// future work. This bench quantifies the gap on a heterogeneous pool:
// 4 llama-8b services where one instance is 4x slower (e.g. a shared
// or downclocked GPU). 16 clients x 64 requests, 2 in flight each.

#include <iostream>

#include "bench_util.hpp"
#include "ripple/ml/autoscaler.hpp"
#include "ripple/ml/model.hpp"

namespace {

using namespace ripple;

struct LbResult {
  double total_mean = 0.0;
  double total_p95 = 0.0;
  double makespan = 0.0;
};

LbResult run_case(const std::string& balancer, std::size_t requests) {
  // A degraded llama variant: 4x slower token generation.
  ml::ModelSpec slow = ml::llama_8b_model();
  slow.name = "llama-8b-slow";
  slow.per_token_s *= 4.0;
  ml::ModelRegistry::global().add(slow);

  core::Session session({.seed = 31});
  ml::install(session);
  session.add_platform(platform::delta_profile(4));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 4});

  std::vector<std::string> service_uids;
  for (int i = 0; i < 4; ++i) {
    service_uids.push_back(session.services().submit(
        pilot,
        bench::inference_service(i == 0 ? "llama-8b-slow" : "llama-8b")));
  }

  LbResult result;
  double start = 0.0;
  session.services().when_ready(service_uids, [&](bool ok) {
    if (!ok) return;
    start = session.now();
    std::vector<std::string> endpoints;
    for (const auto& uid : service_uids) {
      endpoints.push_back(session.services().get(uid).endpoint());
    }
    std::vector<std::string> task_uids;
    for (int c = 0; c < 16; ++c) {
      task_uids.push_back(session.tasks().submit(
          pilot,
          bench::client_task(endpoints, requests, "lb", 2, balancer)));
    }
    session.tasks().when_done(task_uids, [&](bool) {
      result.makespan = session.now() - start;
      session.services().stop_all();
    });
  });
  session.run();

  const auto& series = session.metrics().series("lb");
  result.total_mean = series.total.mean();
  result.total_p95 = series.total.p95();
  return result;
}

/// Elastic pool: a llama pool that autoscales 2..4 replicas under 16
/// eager clients. With `follow_endpoints` the clients watch the
/// ServiceManager's endpoint events and reroute onto scaled-up
/// replicas; without it they keep hammering the initial two — the
/// quantified value of dynamic rerouting.
LbResult run_elastic(bool follow_endpoints, std::size_t requests) {
  core::Session session({.seed = 47});
  ml::install(session);
  session.add_platform(platform::delta_profile(4));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 4});

  core::ServiceDescription replica = bench::inference_service("llama-8b");
  replica.name = "llm-pool";
  replica.config.set("max_batch", 4);
  replica.config.set("batch_window", 0.05);

  ml::AutoscalerConfig scaling;
  scaling.min_replicas = 2;
  scaling.max_replicas = 4;
  scaling.scale_up_outstanding = 6.0;
  scaling.cooldown = 2.0;
  ml::Autoscaler scaler(session, pilot, replica, scaling);

  LbResult result;
  double start = 0.0;
  scaler.start([&](bool ok) {
    if (!ok) {
      std::cerr << "elastic pool bootstrap failed\n";
      session.loop().stop();  // the poll timer would keep run() alive
      return;
    }
    start = session.now();
    std::vector<std::string> task_uids;
    for (int c = 0; c < 16; ++c) {
      core::TaskDescription task = bench::client_task(
          scaler.endpoints(), requests, "lb-elastic", 2,
          "least_outstanding");
      if (follow_endpoints) task.payload.set("watch", "llm-pool");
      task.payload.set("max_retries", 6);
      task_uids.push_back(session.tasks().submit(pilot, task));
    }
    session.tasks().when_done(task_uids, [&](bool) {
      result.makespan = session.now() - start;
      scaler.stop();
    });
  });
  session.run();

  const auto& series = session.metrics().series("lb-elastic");
  result.total_mean = series.total.mean();
  result.total_p95 = series.total.p95();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bench;
  const bool smoke = smoke_mode(argc, argv);
  const std::size_t requests = smoke ? 16 : 64;
  std::cout << "Ablation: load balancing across heterogeneous services "
               "(3 fast + 1 4x-slow llama-8b, 16 clients x " << requests
            << " reqs)\n";

  metrics::Table table(
      {"balancer", "total_mean_s", "total_p95_s", "makespan_s"});
  for (const std::string balancer :
       {"round_robin", "random", "least_outstanding"}) {
    const LbResult r = run_case(balancer, requests);
    table.add_row({balancer, strutil::format_fixed(r.total_mean, 2),
                   strutil::format_fixed(r.total_p95, 2),
                   strutil::format_fixed(r.makespan, 1)});
  }
  std::cout << metrics::banner("Load balancing ablation");
  std::cout << table.to_string();
  table.write_csv(output_dir() + "/ablation_loadbalance.csv");
  std::cout << "\nExpected: least_outstanding routes around the slow "
               "instance, cutting p95 response time and makespan versus "
               "the paper's rudimentary round-robin.\n";

  // --- Elastic pool: does following endpoint events pay? ------------------
  metrics::Table elastic({"clients_follow_endpoints", "total_mean_s",
                          "total_p95_s", "makespan_s"});
  const LbResult frozen = run_elastic(false, requests);
  const LbResult following = run_elastic(true, requests);
  elastic.add_row({"no (static endpoint set)",
                   strutil::format_fixed(frozen.total_mean, 2),
                   strutil::format_fixed(frozen.total_p95, 2),
                   strutil::format_fixed(frozen.makespan, 1)});
  elastic.add_row({"yes (watch endpoint events)",
                   strutil::format_fixed(following.total_mean, 2),
                   strutil::format_fixed(following.total_p95, 2),
                   strutil::format_fixed(following.makespan, 1)});
  std::cout << metrics::banner(
      "Elastic llama pool (autoscaled 2..4 replicas, 16 eager clients)");
  std::cout << elastic.to_string();
  elastic.write_csv(output_dir() + "/ablation_loadbalance_elastic.csv");
  std::cout << "\nExpected: clients that follow endpoint events spread "
               "onto scaled-up replicas and finish sooner; frozen clients "
               "leave the new replicas idle.\n";
  return 0;
}
