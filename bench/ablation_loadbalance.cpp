// Ablation: load-balancing policy across heterogeneous services.
//
// The paper employs "only a rudimentary load balancing" and names
// "dynamically rerouting requests to less used service instances" as
// future work. This bench quantifies the gap on a heterogeneous pool:
// 4 llama-8b services where one instance is 4x slower (e.g. a shared
// or downclocked GPU). 16 clients x 64 requests, 2 in flight each.

#include <iostream>

#include "bench_util.hpp"
#include "ripple/ml/model.hpp"

namespace {

using namespace ripple;

struct LbResult {
  double total_mean = 0.0;
  double total_p95 = 0.0;
  double makespan = 0.0;
};

LbResult run_case(const std::string& balancer) {
  // A degraded llama variant: 4x slower token generation.
  ml::ModelSpec slow = ml::llama_8b_model();
  slow.name = "llama-8b-slow";
  slow.per_token_s *= 4.0;
  ml::ModelRegistry::global().add(slow);

  core::Session session({.seed = 31});
  ml::install(session);
  session.add_platform(platform::delta_profile(4));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 4});

  std::vector<std::string> service_uids;
  for (int i = 0; i < 4; ++i) {
    service_uids.push_back(session.services().submit(
        pilot,
        bench::inference_service(i == 0 ? "llama-8b-slow" : "llama-8b")));
  }

  LbResult result;
  double start = 0.0;
  session.services().when_ready(service_uids, [&](bool ok) {
    if (!ok) return;
    start = session.now();
    std::vector<std::string> endpoints;
    for (const auto& uid : service_uids) {
      endpoints.push_back(session.services().get(uid).endpoint());
    }
    std::vector<std::string> task_uids;
    for (int c = 0; c < 16; ++c) {
      task_uids.push_back(session.tasks().submit(
          pilot,
          bench::client_task(endpoints, 64, "lb", 2, balancer)));
    }
    session.tasks().when_done(task_uids, [&](bool) {
      result.makespan = session.now() - start;
      session.services().stop_all();
    });
  });
  session.run();

  const auto& series = session.metrics().series("lb");
  result.total_mean = series.total.mean();
  result.total_p95 = series.total.p95();
  return result;
}

}  // namespace

int main() {
  using namespace bench;
  std::cout << "Ablation: load balancing across heterogeneous services "
               "(3 fast + 1 4x-slow llama-8b, 16 clients x 64 reqs)\n";

  metrics::Table table(
      {"balancer", "total_mean_s", "total_p95_s", "makespan_s"});
  for (const std::string balancer :
       {"round_robin", "random", "least_outstanding"}) {
    const LbResult r = run_case(balancer);
    table.add_row({balancer, strutil::format_fixed(r.total_mean, 2),
                   strutil::format_fixed(r.total_p95, 2),
                   strutil::format_fixed(r.makespan, 1)});
  }
  std::cout << metrics::banner("Load balancing ablation");
  std::cout << table.to_string();
  table.write_csv(output_dir() + "/ablation_loadbalance.csv");
  std::cout << "\nExpected: least_outstanding routes around the slow "
               "instance, cutting p95 response time and makespan versus "
               "the paper's rudimentary round-robin.\n";
  return 0;
}
