// Reproduces Fig. 5: Service Response Times for remote NOOP inference.
//
// Experiment 2 (remote): client tasks run in a Delta pilot; NOOP
// services are persistent instances on the R3 cloud host reached over
// 0.47 ms links. No bootstrap is measured (remote services are
// persistent). Expected shape: same as Fig. 4 but with communication
// roughly 7x larger, still dominating service and inference.

#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  const bool smoke = smoke_mode(argc, argv);
  std::cout << "Fig. 5 reproduction: remote NOOP service response time "
               "(Delta clients -> R3 services, 0.47 ms links)\n";

  RtExperimentConfig config;
  config.model = "noop";
  config.remote = true;
  config.requests_per_client = smoke ? 64 : 1024;

  const std::vector<std::size_t> service_counts =
      smoke ? std::vector<std::size_t>{1, 4, 16}
            : std::vector<std::size_t>{1, 2, 4, 8, 16};

  std::vector<ScalingPoint> strong;
  for (const std::size_t services : service_counts) {
    strong.push_back(run_rt_point(16, services, config));
  }
  print_scaling_table("Strong scaling (16 clients, 1..16 remote services)",
                      strong, "fig5_rt_remote_strong.csv");

  RtExperimentConfig weak_config = config;
  weak_config.pair_clients = true;
  std::vector<ScalingPoint> weak;
  for (const std::size_t n : service_counts) {
    weak.push_back(run_rt_point(n, n, weak_config));
  }
  print_scaling_table("Weak scaling (N clients, N remote services)", weak,
                      "fig5_rt_remote_weak.csv");

  // Local comparison point for the remote/local latency ratio.
  RtExperimentConfig local = config;
  local.remote = false;
  const ScalingPoint local_point = run_rt_point(16, 16, local);

  std::cout << "\nShape checks (paper section IV-C):\n";
  std::cout << "  remote/local communication ratio: "
            << ripple::strutil::format_fixed(
                   strong.back().communication_mean /
                       local_point.communication_mean,
                   1)
            << "x (paper: 0.47 ms vs 0.063 ms => ~7x)\n";
  std::cout << "  communication dominates: "
            << ripple::strutil::format_fixed(
                   strong.back().communication_mean /
                       std::max(strong.back().service_mean +
                                    strong.back().inference_mean,
                                1e-12),
                   1)
            << "x service+inference (expect >> 1)\n";
  return 0;
}
