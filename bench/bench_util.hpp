#pragma once

/// \file bench_util.hpp
/// Shared harness pieces for the figure/table reproduction benches.
///
/// Each bench builds a fresh Session per configuration point (like the
/// paper's per-run experiments), drives it to completion and extracts
/// the metric series. Output is printed as aligned tables whose rows
/// match the paper's plotted series, plus CSV files under ./bench_out.

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "ripple/common/strutil.hpp"
#include "ripple/core/session.hpp"
#include "ripple/metrics/report.hpp"
#include "ripple/ml/install.hpp"
#include "ripple/platform/profiles.hpp"

namespace bench {

using namespace ripple;

/// True when the bench was invoked with --smoke: run a shrunk sweep
/// that exercises every code path in seconds. CTest registers each
/// bench with this flag under the "smoke" label so bench code is built
/// and run on every CI pass instead of bit-rotting.
inline bool smoke_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") return true;
  }
  return false;
}

/// Where CSV outputs land; created on demand.
inline std::string output_dir() {
  const std::string dir = "bench_out";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

inline core::ServiceDescription inference_service(const std::string& model,
                                                  bool preloaded = false) {
  core::ServiceDescription desc;
  desc.name = model + "-svc";
  desc.program = "inference";
  desc.config = json::Value::object({{"model", model}});
  if (preloaded) desc.config.set("preloaded", true);
  desc.cores = 1;
  desc.gpus = 1;
  return desc;
}

inline core::TaskDescription client_task(
    const std::vector<std::string>& endpoints, std::size_t requests,
    const std::string& series, std::size_t concurrency = 1,
    const std::string& balancer = "round_robin") {
  core::TaskDescription desc;
  desc.name = "client";
  desc.kind = "inference_client";
  desc.cores = 1;
  json::Value endpoint_array = json::Value::array();
  for (const auto& e : endpoints) endpoint_array.push_back(e);
  desc.payload = json::Value::object({{"endpoints", endpoint_array},
                                      {"requests", requests},
                                      {"concurrency", concurrency},
                                      {"series", series},
                                      {"balancer", balancer}});
  return desc;
}

/// Result of one scaling point of an RT/IT experiment.
struct ScalingPoint {
  std::size_t clients = 0;
  std::size_t services = 0;
  double communication_mean = 0.0;
  double service_mean = 0.0;
  double inference_mean = 0.0;
  double total_mean = 0.0;
  double total_p95 = 0.0;
  std::size_t requests = 0;
  double makespan = 0.0;
};

struct RtExperimentConfig {
  std::string model = "noop";
  bool remote = false;          ///< services on R3 instead of the pilot
  std::size_t requests_per_client = 1024;
  std::size_t concurrency = 1;  ///< in-flight requests per client
  std::uint64_t seed = 42;

  /// Weak-scaling pairing: when clients == services, client i talks only
  /// to service i (one dedicated model instance per task, the paper's
  /// weak-scaling setup). Otherwise every client balances over all
  /// services.
  bool pair_clients = false;
};

/// Runs one (clients, services) point of Experiment 2/3 and returns the
/// aggregated component means — one bar of Figs. 4-6.
inline ScalingPoint run_rt_point(std::size_t n_clients,
                                 std::size_t n_services,
                                 const RtExperimentConfig& config) {
  core::Session session({.seed = config.seed});
  ml::install(session);
  session.add_platform(platform::delta_profile(4));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 4});

  std::vector<std::string> service_uids;
  if (config.remote) {
    auto& r3 = session.add_platform(platform::r3_profile(2));
    for (std::size_t i = 0; i < n_services; ++i) {
      auto desc = inference_service(config.model, /*preloaded=*/true);
      service_uids.push_back(session.services().register_remote(
          r3, desc, i % r3.node_count()));
    }
  } else {
    for (std::size_t i = 0; i < n_services; ++i) {
      service_uids.push_back(
          session.services().submit(pilot, inference_service(config.model)));
    }
  }

  const std::string series = "rt";
  double start_time = 0.0;
  double end_time = 0.0;
  session.services().when_ready(service_uids, [&](bool ok) {
    if (!ok) {
      std::cerr << "service bootstrap failed\n";
      session.loop().stop();
      return;
    }
    start_time = session.now();
    std::vector<std::string> endpoints;
    for (const auto& uid : service_uids) {
      endpoints.push_back(session.services().get(uid).endpoint());
    }
    const bool paired = config.pair_clients && n_clients == n_services;
    std::vector<std::string> task_uids;
    for (std::size_t c = 0; c < n_clients; ++c) {
      const std::vector<std::string> targets =
          paired ? std::vector<std::string>{endpoints[c]} : endpoints;
      task_uids.push_back(session.tasks().submit(
          pilot, client_task(targets, config.requests_per_client, series,
                             config.concurrency)));
    }
    session.tasks().when_done(task_uids, [&](bool) {
      end_time = session.now();
      session.services().stop_all();
    });
  });
  session.run();

  ScalingPoint point;
  point.clients = n_clients;
  point.services = n_services;
  point.makespan = end_time - start_time;
  if (session.metrics().has_series(series)) {
    const auto& s = session.metrics().series(series);
    point.communication_mean = s.communication.mean();
    point.service_mean = s.service.mean();
    point.inference_mean = s.inference.mean();
    point.total_mean = s.total.mean();
    point.total_p95 = s.total.p95();
    point.requests = s.count();
  }
  return point;
}

/// Prints a strong- or weak-scaling series as a component table.
inline void print_scaling_table(const std::string& title,
                                const std::vector<ScalingPoint>& points,
                                const std::string& csv_name) {
  std::cout << metrics::banner(title);
  metrics::Table table({"clients", "services", "requests", "comm_ms",
                        "service_ms", "inference_ms", "total_ms",
                        "p95_ms", "makespan_s"});
  for (const auto& p : points) {
    table.add_row({std::to_string(p.clients), std::to_string(p.services),
                   std::to_string(p.requests),
                   strutil::format_fixed(p.communication_mean * 1e3, 4),
                   strutil::format_fixed(p.service_mean * 1e3, 4),
                   strutil::format_fixed(p.inference_mean * 1e3, 4),
                   strutil::format_fixed(p.total_mean * 1e3, 4),
                   strutil::format_fixed(p.total_p95 * 1e3, 4),
                   strutil::format_fixed(p.makespan, 2)});
  }
  std::cout << table.to_string();
  table.write_csv(output_dir() + "/" + csv_name);
}

}  // namespace bench
