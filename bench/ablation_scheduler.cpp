// Ablation: service/task priority relations and scheduling policy.
//
// The paper "extended the existing Scheduler to enact priority
// relations between services and tasks" — services must start before
// the tasks that call them. This bench quantifies that design choice:
// a mixed workload (16 llama services + 64 compute tasks) is submitted
// at once on a pilot too small to hold everything, under
//   (a) service priority on  (services 100, tasks 0)  [the paper]
//   (b) service priority off (all priority 0)
// and under FIFO vs backfill queue policies. Reported: time until all
// services are RUNNING and total workload makespan.

#include <iostream>

#include "bench_util.hpp"

namespace {

using namespace ripple;

struct AblationResult {
  double services_ready = 0.0;
  double makespan = 0.0;
  bool ok = true;
};

AblationResult run_case(bool service_priority,
                        core::SchedulerPolicy policy) {
  core::Session session(
      {.seed = 99, .scheduler_policy = policy});
  ml::install(session);
  // Small pilot: 2 nodes x 4 GPUs = 8 GPU slots shared by 4 resident
  // services and 64 GPU compute tasks; contention forces ordering
  // decisions.
  session.add_platform(platform::delta_profile(2));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});

  AblationResult result;

  // A backlog of compute tasks is already queued when the workflow
  // reaches the stage that needs ML services — the situation the
  // paper's priority relations exist for.
  std::vector<std::string> task_uids;
  for (int i = 0; i < 64; ++i) {
    core::TaskDescription desc;
    desc.name = "compute";
    desc.cores = 1;
    desc.gpus = 1;
    desc.duration = common::Distribution::lognormal(120.0, 0.2, 30.0);
    desc.priority = 0;
    task_uids.push_back(session.tasks().submit(pilot, desc));
  }
  std::vector<std::string> service_uids;
  for (int i = 0; i < 4; ++i) {
    auto desc = bench::inference_service("llama-8b");
    desc.priority = service_priority ? 100 : 0;
    desc.ready_timeout = 36000.0;
    service_uids.push_back(session.services().submit(pilot, desc));
  }

  session.services().when_ready(service_uids, [&](bool ok) {
    result.ok = result.ok && ok;
    result.services_ready = session.now();
    // Services are only needed until tasks complete; free their slots
    // as soon as the compute workload has drained.
  });
  session.tasks().when_done(task_uids, [&](bool ok) {
    result.ok = result.ok && ok;
    result.makespan = session.now();
    session.services().stop_all();
  });
  session.run();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bench;
  const bool smoke = smoke_mode(argc, argv);
  std::cout << "Ablation: scheduler priority relations and queue policy "
               "(4 llama services + 64 GPU tasks on 8 GPU slots)\n";

  metrics::Table table({"service_priority", "policy", "services_ready_s",
                        "makespan_s", "ok"});
  for (const bool priority : smoke ? std::vector<bool>{true}
                                   : std::vector<bool>{true, false}) {
    for (const auto policy :
         {core::SchedulerPolicy::backfill, core::SchedulerPolicy::fifo}) {
      const AblationResult r = run_case(priority, policy);
      table.add_row(
          {priority ? "on" : "off",
           policy == core::SchedulerPolicy::backfill ? "backfill" : "fifo",
           strutil::format_fixed(r.services_ready, 1),
           strutil::format_fixed(r.makespan, 1), r.ok ? "yes" : "NO"});
    }
  }
  std::cout << metrics::banner("Priority relations ablation");
  std::cout << table.to_string();
  table.write_csv(output_dir() + "/ablation_scheduler.csv");
  std::cout << "\nExpected: with priority ON services are ready early "
               "(they jump the 64-task queue); with priority OFF services "
               "wait behind minutes of compute tasks, delaying every "
               "client that needs them.\n";
  return 0;
}
