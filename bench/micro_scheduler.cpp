// Micro-benchmark of the indexed scheduler placement core.
//
// Fig.-3-style sweep over (pilots × nodes × queued requests): each point
// drives the same seeded request stream through
//  * the indexed Scheduler (capacity segment tree + balanced-tree wait
//    queue), and
//  * an in-bench reimplementation of the seed's first-fit scheduler
//    (std::deque waiting queue, O(waiting × nodes) rescan on every
//    submit and release) — the baseline this PR replaced,
// then asserts the two grant orders are bit-identical (same-seed `fifo`
// and `backfill` runs) and reports the wall-clock ratio. Output is a
// JSON array on stdout, mirrored to bench_out/micro_scheduler.json, so
// the placement-throughput trajectory is tracked from this PR onward.
//
// A second sweep drives the same workloads through the *sharded* batch
// path (submit_batch/release_batch on a common::ShardExecutor) at
// shard counts 1, 2, 4, … up to --threads, asserting the grant order
// and grant-log hash stay bit-identical to shards=1 and reporting
// `shards` / `speedup_vs_serial` per row.
//
// Usage: bench_micro_scheduler [--quick] [--threads N]
//   --quick drops the flagship 256-node × 10k-request points (the
//   legacy baseline alone needs tens of seconds there).
//   --threads N widens the shard sweep (default 1: batch path only).

#include <chrono>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "ripple/common/random.hpp"
#include "ripple/common/shard_executor.hpp"
#include "ripple/core/runtime.hpp"
#include "ripple/core/scheduler.hpp"
#include "ripple/platform/cluster.hpp"

namespace {

using namespace ripple;
using core::SchedulerPolicy;

struct RequestSpec {
  std::string uid;
  std::size_t pilot = 0;
  std::size_t cores = 1;
  std::size_t gpus = 0;
  double mem_gb = 0.0;
  int priority = 0;
};

struct SweepPoint {
  std::size_t pilots = 1;
  std::size_t nodes = 16;
  std::size_t queued = 1000;
};

constexpr std::size_t kCoresPerNode = 64;
constexpr std::size_t kGpusPerNode = 8;
constexpr double kMemPerNode = 512.0;
constexpr std::uint64_t kSeed = 42;

/// Same-seed request stream shared by both schedulers: a heavy mix of
/// node-filling requests with smaller backfill candidates, three
/// priority classes (services over tasks over background).
std::vector<RequestSpec> make_workload(const SweepPoint& point) {
  common::Rng rng(kSeed);
  std::vector<RequestSpec> out;
  out.reserve(point.queued);
  for (std::size_t i = 0; i < point.queued; ++i) {
    RequestSpec spec;
    spec.uid = "r" + std::to_string(i);
    spec.pilot = i % point.pilots;
    const std::int64_t shape = rng.uniform_int(0, 9);
    if (shape < 7) {
      spec.cores = kCoresPerNode;  // node-filling
      spec.mem_gb = kMemPerNode;
    } else if (shape < 9) {
      spec.cores = 8;
      spec.gpus = 1;  // small GPU backfill candidate
      spec.mem_gb = 32.0;
    } else {
      spec.cores = 1;  // tiny core-only backfill candidate
      spec.mem_gb = 4.0;
    }
    spec.priority = static_cast<int>(rng.uniform_int(0, 2));
    out.push_back(std::move(spec));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Legacy baseline: the seed's scheduler, verbatim semantics.
// ---------------------------------------------------------------------------

struct LegacyNode {
  std::size_t free_cores = kCoresPerNode;
  std::size_t free_gpus = kGpusPerNode;
  double free_mem = kMemPerNode;

  [[nodiscard]] bool can_fit(const RequestSpec& r) const noexcept {
    return r.cores <= free_cores && r.gpus <= free_gpus &&
           r.mem_gb <= free_mem;
  }
};

struct LegacySlot {
  std::size_t node = 0;
  std::size_t cores = 0;
  std::size_t gpus = 0;
  double mem_gb = 0.0;
};

struct LegacyWaiting {
  RequestSpec request;
  std::uint64_t sequence = 0;
};

/// One pilot of the seed scheduler: deque ordered by (priority desc,
/// sequence), first-fit rescan of all nodes for every waiting entry on
/// every submit and release.
struct LegacyPilot {
  std::vector<LegacyNode> nodes;
  std::deque<LegacyWaiting> waiting;
};

class LegacyScheduler {
 public:
  LegacyScheduler(std::size_t pilots, std::size_t nodes_per_pilot,
                  SchedulerPolicy policy)
      : policy_(policy), pilots_(pilots) {
    for (auto& pilot : pilots_) pilot.nodes.resize(nodes_per_pilot);
  }

  void submit(const RequestSpec& request) {
    LegacyPilot& pilot = pilots_[request.pilot];
    LegacyWaiting waiting{request, next_sequence_++};
    auto position = std::find_if(
        pilot.waiting.begin(), pilot.waiting.end(),
        [&](const LegacyWaiting& w) {
          return w.request.priority < waiting.request.priority;
        });
    pilot.waiting.insert(position, std::move(waiting));
    try_schedule(request.pilot);
  }

  void release(std::size_t pilot_index, const LegacySlot& slot) {
    LegacyNode& node = pilots_[pilot_index].nodes[slot.node];
    node.free_cores += slot.cores;
    node.free_gpus += slot.gpus;
    node.free_mem += slot.mem_gb;
    try_schedule(pilot_index);
  }

  /// Grant log per pilot: (uid, slot) in grant order.
  std::vector<std::vector<std::pair<std::string, LegacySlot>>> grants_ =
      {};

 private:
  void try_schedule(std::size_t pilot_index) {
    LegacyPilot& pilot = pilots_[pilot_index];
    if (grants_.size() < pilots_.size()) grants_.resize(pilots_.size());
    auto it = pilot.waiting.begin();
    while (it != pilot.waiting.end()) {
      std::size_t placed = pilot.nodes.size();
      for (std::size_t n = 0; n < pilot.nodes.size(); ++n) {
        if (pilot.nodes[n].can_fit(it->request)) {
          placed = n;
          break;
        }
      }
      if (placed == pilot.nodes.size()) {
        if (policy_ == SchedulerPolicy::fifo) return;  // head blocks
        ++it;
        continue;
      }
      LegacyNode& node = pilot.nodes[placed];
      node.free_cores -= it->request.cores;
      node.free_gpus -= it->request.gpus;
      node.free_mem -= it->request.mem_gb;
      grants_[pilot_index].emplace_back(
          it->request.uid, LegacySlot{placed, it->request.cores,
                                      it->request.gpus, it->request.mem_gb});
      it = pilot.waiting.erase(it);
    }
  }

  SchedulerPolicy policy_;
  std::vector<LegacyPilot> pilots_;
  std::uint64_t next_sequence_ = 0;
};

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

struct RunResult {
  double seconds = 0.0;
  std::size_t grants = 0;
  /// Per-pilot uid sequences, for the bit-identical comparison.
  std::vector<std::vector<std::string>> order;
};

std::size_t release_budget(const SweepPoint& point) {
  return 2 * point.pilots * point.nodes;
}

RunResult run_legacy(const SweepPoint& point,
                     const std::vector<RequestSpec>& workload,
                     SchedulerPolicy policy) {
  const auto start = std::chrono::steady_clock::now();
  LegacyScheduler scheduler(point.pilots, point.nodes, policy);
  for (const RequestSpec& request : workload) scheduler.submit(request);
  std::vector<std::size_t> released(point.pilots, 0);
  for (std::size_t r = 0; r < release_budget(point); ++r) {
    const std::size_t p = r % point.pilots;
    if (released[p] >= scheduler.grants_[p].size()) continue;
    scheduler.release(p, scheduler.grants_[p][released[p]].second);
    ++released[p];
  }
  const auto end = std::chrono::steady_clock::now();

  RunResult result;
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.order.resize(point.pilots);
  for (std::size_t p = 0; p < point.pilots; ++p) {
    for (const auto& [uid, slot] : scheduler.grants_[p]) {
      result.order[p].push_back(uid);
      ++result.grants;
    }
  }
  return result;
}

RunResult run_indexed(const SweepPoint& point,
                      const std::vector<RequestSpec>& workload,
                      SchedulerPolicy policy) {
  const auto start = std::chrono::steady_clock::now();
  core::Runtime runtime(kSeed);
  platform::PlatformProfile profile;
  profile.name = "bench";
  profile.node = platform::NodeSpec{kCoresPerNode, kGpusPerNode,
                                    kMemPerNode};
  profile.max_nodes = point.pilots * point.nodes;
  platform::Cluster cluster(runtime.loop(), runtime.network(), profile,
                            runtime.rng().fork("cluster"));
  core::Scheduler scheduler(runtime, policy);

  std::vector<std::unique_ptr<core::Pilot>> pilots;
  // Per-pilot grant log: (uid, slot) appended as callbacks fire.
  std::vector<std::vector<std::pair<std::string, platform::Slot>>> grants(
      point.pilots);
  for (std::size_t p = 0; p < point.pilots; ++p) {
    core::PilotDescription desc;
    desc.platform = profile.name;
    desc.nodes = point.nodes;
    pilots.push_back(std::make_unique<core::Pilot>(
        "pilot." + std::to_string(p), desc, &cluster));
    pilots.back()->nodes() = cluster.reserve_nodes(point.nodes);
    scheduler.add_pilot(*pilots.back());
  }

  for (const RequestSpec& spec : workload) {
    core::ScheduleRequest request;
    request.uid = spec.uid;
    request.cores = spec.cores;
    request.gpus = spec.gpus;
    request.mem_gb = spec.mem_gb;
    request.priority = spec.priority;
    const std::size_t p = spec.pilot;
    request.granted = [&grants, p, uid = spec.uid](platform::Slot slot,
                                                   platform::Node*) {
      grants[p].emplace_back(uid, std::move(slot));
    };
    scheduler.submit(pilots[p]->uid(), std::move(request));
  }
  runtime.loop().run();

  std::vector<std::size_t> released(point.pilots, 0);
  for (std::size_t r = 0; r < release_budget(point); ++r) {
    const std::size_t p = r % point.pilots;
    if (released[p] >= grants[p].size()) continue;
    scheduler.release(pilots[p]->uid(), grants[p][released[p]].second);
    ++released[p];
    runtime.loop().run();
  }
  const auto end = std::chrono::steady_clock::now();

  RunResult result;
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.order.resize(point.pilots);
  for (std::size_t p = 0; p < point.pilots; ++p) {
    for (const auto& [uid, slot] : grants[p]) {
      result.order[p].push_back(uid);
      ++result.grants;
    }
  }
  return result;
}

/// Sharded batch-path driver: one submit_batch for the whole workload
/// (requests grouped per pilot, input order preserved), then
/// release_batch waves. Returns the grant order plus the scheduler's
/// grant-log hash — both must be invariant under `shards`.
RunResult run_sharded(const SweepPoint& point,
                      const std::vector<RequestSpec>& workload,
                      SchedulerPolicy policy, std::size_t shards,
                      std::uint64_t* hash_out) {
  common::ShardExecutor executor(shards);
  const auto start = std::chrono::steady_clock::now();
  core::Runtime runtime(kSeed);
  platform::PlatformProfile profile;
  profile.name = "bench";
  profile.node = platform::NodeSpec{kCoresPerNode, kGpusPerNode,
                                    kMemPerNode};
  profile.max_nodes = point.pilots * point.nodes;
  platform::Cluster cluster(runtime.loop(), runtime.network(), profile,
                            runtime.rng().fork("cluster"));
  core::Scheduler scheduler(runtime, policy);
  if (shards > 1) scheduler.set_shard_executor(&executor);

  std::vector<std::unique_ptr<core::Pilot>> pilots;
  std::vector<std::vector<std::pair<std::string, platform::Slot>>> grants(
      point.pilots);
  std::vector<core::Scheduler::PilotBatch> batches(point.pilots);
  for (std::size_t p = 0; p < point.pilots; ++p) {
    core::PilotDescription desc;
    desc.platform = profile.name;
    desc.nodes = point.nodes;
    pilots.push_back(std::make_unique<core::Pilot>(
        "pilot." + std::to_string(p), desc, &cluster));
    pilots.back()->nodes() = cluster.reserve_nodes(point.nodes);
    scheduler.add_pilot(*pilots.back());
    batches[p].pilot_uid = pilots[p]->uid();
  }

  for (const RequestSpec& spec : workload) {
    core::ScheduleRequest request;
    request.uid = spec.uid;
    request.cores = spec.cores;
    request.gpus = spec.gpus;
    request.mem_gb = spec.mem_gb;
    request.priority = spec.priority;
    const std::size_t p = spec.pilot;
    request.granted = [&grants, p, uid = spec.uid](platform::Slot slot,
                                                   platform::Node*) {
      grants[p].emplace_back(uid, std::move(slot));
    };
    batches[p].requests.push_back(std::move(request));
  }
  scheduler.submit_batch(std::move(batches));
  runtime.loop().run();

  std::vector<std::size_t> released(point.pilots, 0);
  std::size_t budget = release_budget(point);
  while (budget > 0) {
    std::vector<std::pair<std::string, platform::Slot>> wave;
    for (std::size_t p = 0; p < point.pilots && budget > 0; ++p) {
      if (released[p] >= grants[p].size()) continue;
      wave.emplace_back(pilots[p]->uid(), grants[p][released[p]].second);
      ++released[p];
      --budget;
    }
    if (wave.empty()) break;
    scheduler.release_batch(wave);
    runtime.loop().run();
  }
  const auto end = std::chrono::steady_clock::now();

  RunResult result;
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.order.resize(point.pilots);
  for (std::size_t p = 0; p < point.pilots; ++p) {
    for (const auto& [uid, slot] : grants[p]) {
      result.order[p].push_back(uid);
      ++result.grants;
    }
  }
  *hash_out = scheduler.grant_log_hash();
  return result;
}

const char* policy_name(SchedulerPolicy policy) {
  return policy == SchedulerPolicy::fifo ? "fifo" : "backfill";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::size_t threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::stoul(argv[i + 1]));
    }
  }
  if (threads == 0) threads = 1;

  std::vector<SweepPoint> sweep = {
      {1, 16, 1000},  {1, 64, 1000},  {4, 16, 1000},
      {1, 64, 10000}, {4, 64, 10000},
  };
  if (!quick) {
    sweep.push_back({1, 256, 10000});  // the acceptance point
    sweep.push_back({4, 256, 10000});
  }

  json::Value report = json::Value::array();
  bool all_identical = true;
  for (const SweepPoint& point : sweep) {
    for (const SchedulerPolicy policy :
         {SchedulerPolicy::backfill, SchedulerPolicy::fifo}) {
      const std::vector<RequestSpec> workload = make_workload(point);
      const RunResult legacy = run_legacy(point, workload, policy);
      const RunResult indexed = run_indexed(point, workload, policy);
      const bool identical = legacy.order == indexed.order;
      all_identical = all_identical && identical;

      json::Value row = json::Value::object();
      row.set("pilots", point.pilots);
      row.set("nodes", point.nodes);
      row.set("queued", point.queued);
      row.set("policy", policy_name(policy));
      row.set("legacy_s", legacy.seconds);
      row.set("indexed_s", indexed.seconds);
      row.set("speedup", indexed.seconds > 0.0
                             ? legacy.seconds / indexed.seconds
                             : 0.0);
      row.set("grants", indexed.grants);
      row.set("grants_legacy", legacy.grants);
      row.set("identical_order", identical);
      row.set("shards", 1);  // the single-submit path is never sharded
      row.set("speedup_vs_serial", 1.0);
      report.push_back(std::move(row));

      std::cerr << point.pilots << " pilot(s) x " << point.nodes
                << " nodes x " << point.queued << " queued ["
                << policy_name(policy) << "]: legacy " << legacy.seconds
                << " s, indexed " << indexed.seconds << " s, speedup "
                << (indexed.seconds > 0.0
                        ? legacy.seconds / indexed.seconds
                        : 0.0)
                << (identical ? "" : "  ORDER MISMATCH") << "\n";
    }
  }

  // --- sharded batch-path sweep ------------------------------------------
  // The multi-pilot points re-run through submit_batch/release_batch at
  // shard counts 1, 2, 4, … ≤ --threads; grant order and hash must not
  // move.
  for (const SweepPoint& point : sweep) {
    if (point.pilots < 2) continue;
    for (const SchedulerPolicy policy :
         {SchedulerPolicy::backfill, SchedulerPolicy::fifo}) {
      const std::vector<RequestSpec> workload = make_workload(point);
      std::uint64_t serial_hash = 0;
      RunResult serial;
      for (std::size_t shards = 1; shards <= threads; shards *= 2) {
        std::uint64_t hash = 0;
        const RunResult sharded =
            run_sharded(point, workload, policy, shards, &hash);
        if (shards == 1) {
          serial = sharded;
          serial_hash = hash;
        }
        const bool identical =
            sharded.order == serial.order && hash == serial_hash;
        all_identical = all_identical && identical;
        const double speedup = sharded.seconds > 0.0
                                   ? serial.seconds / sharded.seconds
                                   : 0.0;

        json::Value row = json::Value::object();
        row.set("pilots", point.pilots);
        row.set("nodes", point.nodes);
        row.set("queued", point.queued);
        row.set("policy", policy_name(policy));
        row.set("batch_path", true);
        row.set("shards", shards);
        row.set("sharded_s", sharded.seconds);
        row.set("speedup_vs_serial", speedup);
        row.set("grants", sharded.grants);
        row.set("identical_order", identical);
        report.push_back(std::move(row));

        std::cerr << point.pilots << " pilot(s) x " << point.nodes
                  << " nodes x " << point.queued << " queued ["
                  << policy_name(policy) << ", shards=" << shards
                  << "]: " << sharded.seconds << " s, speedup_vs_serial "
                  << speedup << (identical ? "" : "  ORDER MISMATCH")
                  << "\n";
      }
    }
  }

  const std::string out = report.dump(2);
  std::cout << out << "\n";
  std::ofstream file(bench::output_dir() + "/micro_scheduler.json");
  file << out << "\n";

  if (!all_identical) {
    std::cerr << "FAIL: grant order diverged from the first-fit "
                 "baseline or across shard counts\n";
    return 1;
  }
  return 0;
}
