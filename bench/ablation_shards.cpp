// Ablation: the sharded runtime core (common::ShardExecutor).
//
// Two experiments, one per sharded control-plane kernel:
//
// 1. Placement. 8 pilots x 32 nodes (256 nodes) x 10k queued requests
//    driven through Scheduler::submit_batch plus release_batch backfill
//    waves, at shards=1 vs shards=8. The per-pilot placement passes run
//    concurrently; grants commit through the deterministic (time,
//    sequence, shard) merge.
// 2. Transfer re-planning. 24 zones (276 zone-pair links) x 40 flowing
//    transfers each; five "telemetry ticks" perturb the default
//    bandwidth and call TransferEngine::replan_all, which shards the
//    per-link fair-share recomputation and commits the timer
//    reschedules through the same merge.
//
// The house rule is parallel==serial: every sharded run must produce a
// grant-order / completion-log FNV fingerprint bit-identical to the
// shards=1 run under the same seed (asserted unconditionally, and
// across same-seed reruns). The >=4x combined-throughput assert only
// activates on hosts with >= 8 cores — on smaller machines (e.g. a
// 1-core CI container) real parallel speedup is physically impossible,
// so the bench only enforces a no-pathological-slowdown floor there.
// Output lands in bench_out/ablation_shards.json.
//
// Usage: bench_ablation_shards [--smoke]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "ripple/common/random.hpp"
#include "ripple/common/shard_executor.hpp"
#include "ripple/core/runtime.hpp"
#include "ripple/core/scheduler.hpp"
#include "ripple/data/transfer_engine.hpp"
#include "ripple/platform/cluster.hpp"

namespace {

using namespace ripple;

constexpr std::uint64_t kSeed = 42;
constexpr std::size_t kCoresPerNode = 64;
constexpr std::size_t kGpusPerNode = 8;
constexpr double kMemPerNode = 512.0;

std::string to_hex(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xf];
    value >>= 4;
  }
  return out;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// ---------------------------------------------------------------------------
// Experiment 1: sharded batch placement
// ---------------------------------------------------------------------------

struct PlacementConfig {
  std::size_t pilots = 8;
  std::size_t nodes = 32;  ///< per pilot: 8 x 32 = 256 total
  std::size_t queued = 10000;
};

struct PlacementResult {
  double seconds = 0.0;
  std::uint64_t grants = 0;
  std::uint64_t hash = 0;
};

PlacementResult run_placement(const PlacementConfig& config,
                              std::size_t shards) {
  common::ShardExecutor executor(shards);

  // Same seeded workload mix as bench_micro_scheduler: mostly
  // node-filling requests with smaller backfill candidates, three
  // priority classes.
  common::Rng rng(kSeed);
  struct Spec {
    std::size_t cores, gpus;
    double mem_gb;
    int priority;
  };
  std::vector<Spec> specs;
  specs.reserve(config.queued);
  for (std::size_t i = 0; i < config.queued; ++i) {
    Spec spec{kCoresPerNode, 0, kMemPerNode, 0};
    const std::int64_t shape = rng.uniform_int(0, 9);
    if (shape >= 7 && shape < 9) {
      spec = {8, 1, 32.0, 0};
    } else if (shape >= 9) {
      spec = {1, 0, 4.0, 0};
    }
    spec.priority = static_cast<int>(rng.uniform_int(0, 2));
    specs.push_back(spec);
  }

  const auto start = std::chrono::steady_clock::now();
  core::Runtime runtime(kSeed);
  platform::PlatformProfile profile;
  profile.name = "bench";
  profile.node = platform::NodeSpec{kCoresPerNode, kGpusPerNode,
                                    kMemPerNode};
  profile.max_nodes = config.pilots * config.nodes;
  platform::Cluster cluster(runtime.loop(), runtime.network(), profile,
                            runtime.rng().fork("cluster"));
  core::Scheduler scheduler(runtime, core::SchedulerPolicy::backfill);
  if (shards > 1) scheduler.set_shard_executor(&executor);

  std::vector<std::unique_ptr<core::Pilot>> pilots;
  std::vector<std::vector<platform::Slot>> grants(config.pilots);
  for (std::size_t p = 0; p < config.pilots; ++p) {
    core::PilotDescription desc;
    desc.platform = profile.name;
    desc.nodes = config.nodes;
    pilots.push_back(std::make_unique<core::Pilot>(
        "pilot." + std::to_string(p), desc, &cluster));
    pilots.back()->nodes() = cluster.reserve_nodes(config.nodes);
    scheduler.add_pilot(*pilots.back());
  }

  std::vector<core::Scheduler::PilotBatch> batches(config.pilots);
  for (std::size_t p = 0; p < config.pilots; ++p) {
    batches[p].pilot_uid = pilots[p]->uid();
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const Spec& spec = specs[i];
    const std::size_t p = i % config.pilots;
    core::ScheduleRequest request;
    request.uid = "r" + std::to_string(i);
    request.cores = spec.cores;
    request.gpus = spec.gpus;
    request.mem_gb = spec.mem_gb;
    request.priority = spec.priority;
    request.granted = [&grants, p](platform::Slot slot, platform::Node*) {
      grants[p].push_back(std::move(slot));
    };
    batches[p].requests.push_back(std::move(request));
  }
  scheduler.submit_batch(std::move(batches));
  runtime.loop().run();

  // Backfill waves: each round frees one granted slot per pilot through
  // the sharded release path, until the budget is spent.
  std::vector<std::size_t> released(config.pilots, 0);
  std::size_t budget = 2 * config.pilots * config.nodes;
  while (budget > 0) {
    std::vector<std::pair<std::string, platform::Slot>> wave;
    for (std::size_t p = 0; p < config.pilots && budget > 0; ++p) {
      if (released[p] >= grants[p].size()) continue;
      wave.emplace_back(pilots[p]->uid(), grants[p][released[p]]);
      ++released[p];
      --budget;
    }
    if (wave.empty()) break;
    scheduler.release_batch(wave);
    runtime.loop().run();
  }

  PlacementResult result;
  result.seconds = seconds_since(start);
  result.grants = scheduler.granted_total();
  result.hash = scheduler.grant_log_hash();
  return result;
}

// ---------------------------------------------------------------------------
// Experiment 2: sharded transfer re-planning
// ---------------------------------------------------------------------------

struct PlanningConfig {
  std::size_t zones = 24;  ///< all pairs: 276 links
  std::size_t per_link = 40;
  std::size_t ticks = 5;
};

struct PlanningResult {
  double tick_seconds = 0.0;  ///< replan_all time only
  std::size_t replanned = 0;
  std::uint64_t hash = 0;
};

PlanningResult run_planning(const PlanningConfig& config,
                            std::size_t shards) {
  common::ShardExecutor executor(shards);
  sim::EventLoop loop;
  data::TransferEngine engine(loop, common::Rng(kSeed));
  if (shards > 1) engine.set_shard_executor(&executor);
  engine.set_setup_latency(common::Distribution::constant(0.01));
  engine.set_default_bandwidth(1e6);
  engine.set_default_concurrency(config.per_link);

  std::size_t done = 0;
  std::size_t total = 0;
  for (std::size_t a = 0; a < config.zones; ++a) {
    for (std::size_t b = a + 1; b < config.zones; ++b) {
      for (std::size_t k = 0; k < config.per_link; ++k) {
        // Sized so nothing completes while the ticks are measured.
        engine.transfer("d" + std::to_string(total++),
                        "z" + std::to_string(a), "z" + std::to_string(b),
                        1e8 + 1e6 * static_cast<double>(k),
                        [&done](bool ok, sim::Duration) { done += ok; });
      }
    }
  }
  loop.run_until(1.0);  // everything past setup, all flowing

  PlanningResult result;
  for (std::size_t t = 0; t < config.ticks; ++t) {
    // Deterministic bandwidth perturbation, then one measured tick.
    engine.set_default_bandwidth(1e6 *
                                 (1.0 + 0.1 * static_cast<double>(t)));
    const auto start = std::chrono::steady_clock::now();
    result.replanned += engine.replan_all();
    result.tick_seconds += seconds_since(start);
    loop.run_until(1.0 + 0.05 * static_cast<double>(t + 1));
  }
  loop.run();
  if (done != total) {
    std::cerr << "FAIL: " << (total - done) << " transfers never landed\n";
    std::exit(1);
  }
  result.hash = engine.completion_hash();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke_mode(argc, argv);
  const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t max_shards = smoke ? 2 : 8;

  PlacementConfig placement_config;
  PlanningConfig planning_config;
  if (smoke) {
    placement_config = {4, 8, 800};
    planning_config = {8, 8, 3};
  }
  std::vector<std::size_t> sweep;
  for (std::size_t s = 1; s <= max_shards; s *= 2) sweep.push_back(s);

  json::Value placement_rows = json::Value::array();
  json::Value planning_rows = json::Value::array();
  metrics::Table table(
      {"shards", "placement_s", "grants", "planning_tick_s", "replanned",
       "combined_speedup", "hash_identical"});

  bool pass = true;
  PlacementResult placement_serial;
  PlanningResult planning_serial;
  double combined_at_max = 1.0;
  for (const std::size_t shards : sweep) {
    const PlacementResult placement =
        run_placement(placement_config, shards);
    const PlanningResult planning = run_planning(planning_config, shards);
    if (shards == 1) {
      placement_serial = placement;
      planning_serial = planning;
    }
    const bool identical = placement.hash == placement_serial.hash &&
                           planning.hash == planning_serial.hash;
    pass = pass && identical;
    const double serial_total =
        placement_serial.seconds + planning_serial.tick_seconds;
    const double sharded_total = placement.seconds + planning.tick_seconds;
    const double combined =
        sharded_total > 0.0 ? serial_total / sharded_total : 0.0;
    if (shards == sweep.back()) combined_at_max = combined;

    json::Value prow = json::Value::object();
    prow.set("shards", shards);
    prow.set("seconds", placement.seconds);
    prow.set("grants", placement.grants);
    prow.set("grant_hash", to_hex(placement.hash));
    placement_rows.push_back(std::move(prow));
    json::Value trow = json::Value::object();
    trow.set("shards", shards);
    trow.set("tick_seconds", planning.tick_seconds);
    trow.set("replanned", planning.replanned);
    trow.set("completion_hash", to_hex(planning.hash));
    planning_rows.push_back(std::move(trow));

    table.add_row({std::to_string(shards),
                   strutil::format_fixed(placement.seconds, 4),
                   std::to_string(placement.grants),
                   strutil::format_fixed(planning.tick_seconds, 4),
                   std::to_string(planning.replanned),
                   strutil::format_fixed(combined, 2),
                   identical ? "yes" : "NO"});
    if (!identical) {
      std::cerr << "FAIL: shards=" << shards
                << " fingerprints diverged from shards=1\n";
    }
  }

  // Same-seed rerun at the widest shard count must reproduce the
  // fingerprints bit-for-bit.
  const PlacementResult placement_rerun =
      run_placement(placement_config, max_shards);
  const PlanningResult planning_rerun =
      run_planning(planning_config, max_shards);
  if (placement_rerun.hash != placement_serial.hash ||
      planning_rerun.hash != planning_serial.hash) {
    std::cerr << "FAIL: same-seed sharded rerun diverged\n";
    pass = false;
  }

  // The throughput target needs real cores; on smaller hosts only a
  // no-pathological-slowdown floor applies.
  const bool gate_active = !smoke && cores >= 8;
  if (gate_active && combined_at_max < 4.0) {
    std::cerr << "FAIL: combined speedup at " << max_shards << " shards is "
              << combined_at_max << "x, target >= 4x\n";
    pass = false;
  }
  if (!gate_active && combined_at_max < 0.15) {
    std::cerr << "FAIL: sharding slowed the control plane "
              << (1.0 / combined_at_max) << "x on a small host\n";
    pass = false;
  }

  std::cout << metrics::banner(
      "Sharded runtime core (parallel placement + transfer planning, "
      "deterministic merge)");
  std::cout << table.to_string();
  std::cout << "\ncores=" << cores << " gate_active="
            << (gate_active ? "yes" : "no (needs >= 8 cores)")
            << " combined_speedup_at_" << max_shards << "_shards="
            << strutil::format_fixed(combined_at_max, 2) << "x\n";

  json::Value report = json::Value::object();
  report.set("cores", cores);
  report.set("smoke", smoke);
  report.set("gate_active", gate_active);
  report.set("max_shards", max_shards);
  report.set("combined_speedup_at_max", combined_at_max);
  report.set("placement", std::move(placement_rows));
  report.set("planning", std::move(planning_rows));
  std::ofstream file(bench::output_dir() + "/ablation_shards.json");
  file << report.dump(2) << "\n";

  std::cout << (pass ? "\nPASS" : "\nFAIL")
            << ": sharded grant order and completion log bit-identical to "
               "shards=1 under the same seed\n";
  return pass ? 0 : 1;
}
