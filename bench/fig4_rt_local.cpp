// Reproduces Fig. 4: Service Response Times for local NOOP inference.
//
// Experiment 2 (local): NOOP services on the same Delta pilot as the
// client tasks. Strong scaling fixes 16 clients and raises the service
// count 1..16; weak scaling keeps clients == services. Each client
// sends 1024 requests. Expected shape: communication (network latency)
// dominates service and inference components; weak-scaling bars are
// flat; strong-scaling queueing shrinks as services are added.

#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  const bool smoke = smoke_mode(argc, argv);
  std::cout << "Fig. 4 reproduction: local NOOP service response time "
               "(Delta, 0.063 ms inter-node latency)\n";

  RtExperimentConfig config;
  config.model = "noop";
  config.remote = false;
  config.requests_per_client = smoke ? 64 : 1024;

  const std::vector<std::size_t> service_counts =
      smoke ? std::vector<std::size_t>{1, 4, 16}
            : std::vector<std::size_t>{1, 2, 4, 8, 16};

  std::vector<ScalingPoint> strong;
  for (const std::size_t services : service_counts) {
    strong.push_back(run_rt_point(16, services, config));
  }
  print_scaling_table("Strong scaling (16 clients, 1..16 services)", strong,
                      "fig4_rt_local_strong.csv");

  RtExperimentConfig weak_config = config;
  weak_config.pair_clients = true;
  std::vector<ScalingPoint> weak;
  for (const std::size_t n : service_counts) {
    weak.push_back(run_rt_point(n, n, weak_config));
  }
  print_scaling_table("Weak scaling (N clients, N services)", weak,
                      "fig4_rt_local_weak.csv");

  std::cout << "\nShape checks (paper section IV-C):\n";
  const auto& weak16 = weak.back();
  std::cout << "  communication >> inference: "
            << ripple::strutil::format_fixed(
                   weak16.communication_mean /
                       std::max(weak16.inference_mean, 1e-12),
                   1)
            << "x (expect >> 1)\n";
  std::cout << "  weak scaling flat: total(16/16)/total(1/1) = "
            << ripple::strutil::format_fixed(
                   weak.back().total_mean / weak.front().total_mean, 2)
            << " (expect ~1)\n";
  std::cout << "  strong scaling relieves queueing: service(16/1)/"
               "service(16/16) = "
            << ripple::strutil::format_fixed(
                   strong.front().service_mean / strong.back().service_mean,
                   2)
            << " (expect > 1: fewer services => more queue wait)\n";
  return 0;
}
