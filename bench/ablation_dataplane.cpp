// Ablation: data-locality-aware placement vs data-blind placement.
//
// A multi-zone analysis workload: shards live half on delta, half on
// frontier; every analysis task reads one shard. Data-blind placement
// submits everything to the first pilot (delta), so half the shards
// must cross the shared WAN link — and the fair-share transfer engine
// makes those concurrent hauls split its bandwidth. Locality-aware
// placement (TaskManager::submit_any over the PlacementAdvisor) sends
// each task to the zone its shard already occupies. Reported: bytes
// over the wire, transfer count, workload makespan, and a trace hash —
// same-seed reruns must be bit-identical.
//
// Expected: locality-aware placement moves ~zero bytes and beats the
// data-blind makespan; the bench exits non-zero if either inversion
// appears or a same-seed rerun diverges.

#include <cstdint>
#include <iostream>
#include <string>

#include "bench_util.hpp"

namespace {

using namespace ripple;

struct CaseResult {
  double bytes_moved_gb = 0.0;
  std::uint64_t transfers = 0;
  double makespan = 0.0;
  bool ok = false;
  std::uint64_t trace_hash = 0;
};

std::uint64_t fnv1a(std::uint64_t hash, const std::string& text) {
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

CaseResult run_case(bool locality, std::size_t shards,
                    std::size_t tasks_per_shard, std::uint64_t seed) {
  core::Session session({.seed = seed});
  session.add_platform(platform::delta_profile(4));
  session.add_platform(platform::frontier_profile(4));
  auto& on_delta = session.submit_pilot({.platform = "delta", .nodes = 4});
  auto& on_frontier =
      session.submit_pilot({.platform = "frontier", .nodes = 4});

  // Shards alternate home zones; sizes drawn from the bench's own rng
  // stream so both placements see identical data.
  common::Rng shaper(seed);
  for (std::size_t i = 0; i < shards; ++i) {
    session.data().register_dataset("shard-" + std::to_string(i),
                                    shaper.uniform(4e9, 10e9),
                                    i % 2 == 0 ? "delta" : "frontier");
  }

  std::vector<std::string> uids;
  for (std::size_t t = 0; t < shards * tasks_per_shard; ++t) {
    core::TaskDescription desc;
    desc.name = "analyze";
    desc.cores = 2;
    desc.duration = common::Distribution::lognormal(20.0, 0.2, 5.0);
    desc.staging.push_back(core::StagingDirective::in(
        "shard-" + std::to_string(t % shards)));
    uids.push_back(locality ? session.tasks().submit_any(
                                  {&on_delta, &on_frontier}, desc)
                            : session.tasks().submit(on_delta, desc));
  }
  CaseResult result;
  session.tasks().when_done(uids,
                            [&](bool all_done) { result.ok = all_done; });
  session.run();

  result.bytes_moved_gb = session.data().bytes_moved() / 1e9;
  result.transfers = session.data().transfers();
  result.makespan = session.now();
  std::uint64_t hash = 14695981039346656037ull;
  for (const auto& name : session.data().engine().completion_log()) {
    hash = fnv1a(hash, name);
  }
  hash = fnv1a(hash, strutil::format_fixed(session.data().bytes_moved(), 3));
  hash = fnv1a(hash, strutil::format_fixed(result.makespan, 9));
  result.trace_hash = hash;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bench;
  const bool smoke = smoke_mode(argc, argv);
  const std::size_t shards = smoke ? 4 : 12;
  const std::size_t tasks_per_shard = smoke ? 1 : 2;
  const std::uint64_t seed = 404;

  std::cout << "Ablation: data plane placement (" << shards
            << " shards split delta/frontier, " << shards * tasks_per_shard
            << " analysis tasks)\n";

  const CaseResult blind = run_case(false, shards, tasks_per_shard, seed);
  const CaseResult local = run_case(true, shards, tasks_per_shard, seed);
  const CaseResult rerun = run_case(true, shards, tasks_per_shard, seed);

  metrics::Table table({"placement", "bytes_moved_gb", "transfers",
                        "makespan_s", "ok"});
  table.add_row({"data-blind", strutil::format_fixed(blind.bytes_moved_gb, 2),
                 std::to_string(blind.transfers),
                 strutil::format_fixed(blind.makespan, 1),
                 blind.ok ? "yes" : "NO"});
  table.add_row({"locality", strutil::format_fixed(local.bytes_moved_gb, 2),
                 std::to_string(local.transfers),
                 strutil::format_fixed(local.makespan, 1),
                 local.ok ? "yes" : "NO"});
  std::cout << metrics::banner("Data-plane placement ablation");
  std::cout << table.to_string();
  table.write_csv(output_dir() + "/ablation_dataplane.csv");

  std::cout << "\nExpected: locality-aware placement sends compute to the "
               "data (near-zero bytes over the WAN); data-blind placement "
               "hauls every frontier shard across the shared link, whose "
               "fair-share bandwidth split stretches the makespan.\n";

  bool pass = blind.ok && local.ok;
  if (!(local.bytes_moved_gb < blind.bytes_moved_gb)) {
    std::cout << "FAIL: locality moved >= bytes of data-blind placement\n";
    pass = false;
  }
  if (!(local.makespan <= blind.makespan)) {
    std::cout << "FAIL: locality makespan exceeds data-blind makespan\n";
    pass = false;
  }
  if (rerun.trace_hash != local.trace_hash) {
    std::cout << "FAIL: same-seed rerun diverged (trace hash "
              << rerun.trace_hash << " != " << local.trace_hash << ")\n";
    pass = false;
  }
  std::cout << (pass ? "\nPASS" : "\nFAIL")
            << ": locality moved " << strutil::format_fixed(
                   blind.bytes_moved_gb - local.bytes_moved_gb, 2)
            << " GB less and same-seed reruns are bit-identical\n";
  return pass ? 0 : 1;
}
