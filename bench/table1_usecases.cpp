// Reproduces Table I: the three LUCID use-case pipelines, their stage
// structure, resource types and service-based implementation — executed
// end-to-end on the runtime with the WorkflowManager.
//
//   ID  Pipeline                    Stage                          Res   Service
//   1   Cell Painting               data pre-processing & augment  CPU   yes
//                                   training + hyperparam optim    GPU   yes
//   2   Signature Detection         data preparation (VEP)         CPU   yes
//                                   mutation detection analysis    CPU   no
//                                   LLM-based signature compare    GPU   yes
//   3   Uncertainty Quantification  data preparation               CPU   yes
//                                   UQ methods (3-level parallel)  GPU   no
//                                   post-processing                GPU   yes
//
// The bench runs all three pipelines concurrently on one Delta pilot
// (as the LUCID project would) and reports per-stage durations.

#include <iostream>

#include "bench_util.hpp"
#include "ripple/wf/workflow_manager.hpp"

namespace {

using namespace ripple;

core::ServiceDescription cpu_service(const std::string& name,
                                     const std::string& model) {
  core::ServiceDescription desc;
  desc.name = name;
  desc.program = "inference";
  desc.config = json::Value::object({{"model", model}});
  desc.cores = 4;
  desc.gpus = 0;
  return desc;
}

core::ServiceDescription gpu_service(const std::string& name,
                                     const std::string& model) {
  core::ServiceDescription desc;
  desc.name = name;
  desc.program = "inference";
  desc.config = json::Value::object({{"model", model}});
  desc.cores = 1;
  desc.gpus = 1;
  return desc;
}

core::TaskDescription modeled_task(const std::string& name, double mean_s,
                                   std::size_t cores, std::size_t gpus) {
  core::TaskDescription desc;
  desc.name = name;
  desc.kind = "modeled";
  desc.cores = cores;
  desc.gpus = gpus;
  desc.duration = common::Distribution::lognormal(mean_s, 0.2, mean_s * 0.3);
  return desc;
}

wf::Pipeline cell_painting() {
  wf::Pipeline p;
  p.name = "cell-painting";

  // Stage 1: CPU pre-processing & augmentation, service-enabled. Eight
  // CPU workers push image batches through an augmentation service.
  wf::Stage prep;
  prep.name = "preprocess-augment";
  prep.services = {cpu_service("augment", "vit-base")};
  for (int i = 0; i < 8; ++i) {
    core::TaskDescription t = bench::client_task({}, 64, "cp-augment");
    t.name = "augment-worker";
    t.cores = 2;
    prep.tasks.push_back(t);
  }
  // Async coupling: training starts once 2 of 8 preprocessing workers
  // have delivered data ("training starts only when sufficient
  // processed data are available").
  prep.unblock_next_after = 2;
  prep.stop_services_after = true;

  // Stage 2: GPU fine-tuning with hyperparameter exploration (12 trials
  // across learning rate / batch size / weight decay / dropout).
  wf::Stage train;
  train.name = "finetune-hpo";
  train.services = {gpu_service("trainer", "vit-base")};
  for (int i = 0; i < 12; ++i) {
    train.tasks.push_back(modeled_task("finetune-trial", 900.0, 2, 1));
  }
  train.stop_services_after = true;

  p.stages = {prep, train};
  return p;
}

wf::Pipeline signature_detection() {
  wf::Pipeline p;
  p.name = "signature-detection";

  // Stage 1: VEP annotation of 15 VCF samples (1-5 min each), exposed
  // as a service with concurrent client invocations.
  wf::Stage vep;
  vep.name = "vep-annotation";
  vep.services = {cpu_service("vep", "vit-base")};
  for (int i = 0; i < 15; ++i) {
    vep.tasks.push_back(modeled_task("vep-sample", 180.0, 2, 0));
  }

  // Stage 2: enrichment analysis (pandas/numpy/scipy-style CPU work,
  // minutes per sample), NOT service-enabled.
  wf::Stage enrich;
  enrich.name = "mutation-analysis";
  for (int i = 0; i < 15; ++i) {
    enrich.tasks.push_back(modeled_task("enrichment", 240.0, 4, 0));
  }

  // Stage 3: LLM-based signature comparison (GPU, service-enabled).
  wf::Stage llm;
  llm.name = "llm-comparison";
  llm.services = {gpu_service("llm", "llama-8b")};
  for (int i = 0; i < 4; ++i) {
    core::TaskDescription t = bench::client_task({}, 16, "sig-llm");
    t.name = "signature-query";
    llm.tasks.push_back(t);
  }
  llm.stop_services_after = true;

  p.stages = {vep, enrich, llm};
  return p;
}

wf::Pipeline uncertainty_quantification() {
  wf::Pipeline p;
  p.name = "uncertainty-quantification";

  // Stage 1: data preparation (tiny CPU cost), service-enabled.
  wf::Stage prep;
  prep.name = "data-preparation";
  prep.services = {cpu_service("uq-prep", "noop")};
  prep.tasks = {modeled_task("prepare-qa-pairs", 30.0, 1, 0)};
  prep.stop_services_after = true;

  // Stage 2: UQ methods, three-level hierarchy (2 LLMs x 3 seeds x 2 UQ
  // methods = 12 GPU fine-tuning tasks), maximal concurrency, NOT
  // service-enabled.
  wf::Stage uq;
  uq.name = "uq-methods";
  for (const char* llm : {"llama", "mistral"}) {
    for (int seed = 0; seed < 3; ++seed) {
      for (const char* method : {"bayesian-lora", "lora-ensemble"}) {
        core::TaskDescription t = modeled_task(
            std::string("uq-") + llm + "-" + method, 1200.0, 2, 1);
        (void)seed;
        uq.tasks.push_back(t);
      }
    }
  }

  // Stage 3: post-processing aggregation (GPU, service-enabled).
  wf::Stage post;
  post.name = "post-processing";
  post.services = {gpu_service("uq-post", "vit-base")};
  post.tasks = {modeled_task("aggregate-metrics", 60.0, 1, 1)};
  post.stop_services_after = true;

  p.stages = {prep, uq, post};
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bench;
  (void)bench::smoke_mode(argc, argv);  // Table I is already seconds-fast.
  std::cout << "Table I reproduction: LUCID use-case pipelines executed on "
               "the service-extended runtime\n";

  metrics::Table structure({"id", "pipeline", "stage", "resource",
                            "service"});
  structure.add_row({"1", "cell-painting", "preprocess-augment", "CPU",
                     "yes"});
  structure.add_row({"1", "cell-painting", "finetune-hpo", "GPU", "yes"});
  structure.add_row({"2", "signature-detection", "vep-annotation", "CPU",
                     "yes"});
  structure.add_row({"2", "signature-detection", "mutation-analysis", "CPU",
                     "no"});
  structure.add_row({"2", "signature-detection", "llm-comparison", "GPU",
                     "yes"});
  structure.add_row({"3", "uncertainty-quantification", "data-preparation",
                     "CPU", "yes"});
  structure.add_row({"3", "uncertainty-quantification", "uq-methods", "GPU",
                     "no"});
  structure.add_row({"3", "uncertainty-quantification", "post-processing",
                     "GPU", "yes"});
  std::cout << metrics::banner("Pipeline / stage / resource / service map");
  std::cout << structure.to_string();

  core::Session session({.seed = 2025});
  ml::install(session);
  session.add_platform(platform::delta_profile(16));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 16});
  wf::WorkflowManager workflows(session);

  // Client tasks in service stages need endpoints; WorkflowManager fills
  // requires_services but payload endpoints must exist. Rewrite: tasks
  // with kind inference_client and no endpoints get them injected by a
  // custom payload factory that resolves at run time.
  session.executor().payloads().register_factory(
      "inference_client_auto", [&session](const core::TaskDescription& desc) {
        core::TaskDescription resolved = desc;
        json::Value endpoint_array = json::Value::array();
        for (const auto& svc : desc.requires_services) {
          endpoint_array.push_back(
              session.services().get(svc).endpoint());
        }
        resolved.payload.set("endpoints", std::move(endpoint_array));
        resolved.kind = "inference_client";
        return session.executor().payloads().create(resolved);
      });

  auto pipelines = {cell_painting(), signature_detection(),
                    uncertainty_quantification()};
  std::size_t remaining = 0;
  for (auto pipeline : pipelines) {
    // Swap bare client tasks to the auto-resolving payload kind.
    for (auto& stage : pipeline.stages) {
      for (auto& task : stage.tasks) {
        if (task.kind == "inference_client") {
          task.kind = "inference_client_auto";
        }
      }
    }
    ++remaining;
    workflows.run_pipeline(pipeline, pilot,
                           [&](const wf::PipelineResult& result) {
                             std::cout << "pipeline " << result.pipeline
                                       << (result.ok ? " ok" : " FAILED")
                                       << "\n";
                             if (--remaining == 0) {
                               session.services().stop_all();
                             }
                           });
  }
  session.run();

  std::cout << metrics::banner("Measured stage durations");
  metrics::Table timing({"pipeline", "stage", "duration", "tasks_done"});
  for (const auto& [name, result] : workflows.results()) {
    for (std::size_t i = 0; i < result.stage_names.size(); ++i) {
      timing.add_row({name, result.stage_names[i],
                      strutil::format_duration(result.stage_durations[i]),
                      "-"});
    }
    timing.add_row({name, "TOTAL (makespan)",
                    strutil::format_duration(result.makespan),
                    std::to_string(result.tasks_done)});
  }
  std::cout << timing.to_string();
  timing.write_csv(output_dir() + "/table1_usecases.csv");
  return 0;
}
