// Ablation: service-side request concurrency.
//
// The paper's services are single-threaded ("they only handle one
// request at a time, queuing further incoming requests") and lifting
// that is named future work ("enhancing service-level request
// concurrency"). This bench sweeps the server's worker slots 1..8 on
// 4 llama services with 16 eager clients (4 requests in flight each),
// measuring throughput and the queueing (service) component.

#include <iostream>

#include "bench_util.hpp"

namespace {

using namespace ripple;

struct ConcurrencyResult {
  double throughput = 0.0;   ///< requests/s across the pool
  double service_mean = 0.0; ///< queue + parse + serialize
  double total_mean = 0.0;
  double makespan = 0.0;
};

ConcurrencyResult run_case(std::size_t max_concurrency) {
  core::Session session({.seed = 77});
  ml::install(session);
  session.add_platform(platform::delta_profile(4));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 4});

  std::vector<std::string> service_uids;
  for (int i = 0; i < 4; ++i) {
    auto desc = bench::inference_service("llama-8b");
    desc.config.set("max_concurrency", max_concurrency);
    service_uids.push_back(session.services().submit(pilot, desc));
  }

  ConcurrencyResult result;
  double start = 0.0;
  std::size_t total_requests = 0;
  session.services().when_ready(service_uids, [&](bool ok) {
    if (!ok) return;
    start = session.now();
    std::vector<std::string> endpoints;
    for (const auto& uid : service_uids) {
      endpoints.push_back(session.services().get(uid).endpoint());
    }
    std::vector<std::string> task_uids;
    for (int c = 0; c < 16; ++c) {
      task_uids.push_back(session.tasks().submit(
          pilot, bench::client_task(endpoints, 32, "conc", 4,
                                    "least_outstanding")));
      total_requests += 32;
    }
    session.tasks().when_done(task_uids, [&](bool) {
      result.makespan = session.now() - start;
      session.services().stop_all();
    });
  });
  session.run();

  const auto& series = session.metrics().series("conc");
  result.service_mean = series.service.mean();
  result.total_mean = series.total.mean();
  result.throughput =
      result.makespan > 0
          ? static_cast<double>(total_requests) / result.makespan
          : 0.0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bench;
  const bool smoke = smoke_mode(argc, argv);
  std::cout << "Ablation: service-side request concurrency "
               "(4 llama services, 16 clients x 32 reqs, 4 in flight)\n";
  std::cout << "Note: GPU token generation is serialized per request in "
               "the model cost; added workers overlap parse/serialize "
               "and drain the queue.\n";

  metrics::Table table({"max_concurrency", "throughput_req_s",
                        "service_mean_s", "total_mean_s", "makespan_s"});
  const std::vector<std::size_t> worker_counts =
      smoke ? std::vector<std::size_t>{1, 4}
            : std::vector<std::size_t>{1, 2, 4, 8};
  for (const std::size_t workers : worker_counts) {
    const ConcurrencyResult r = run_case(workers);
    table.add_row({std::to_string(workers),
                   strutil::format_fixed(r.throughput, 3),
                   strutil::format_fixed(r.service_mean, 2),
                   strutil::format_fixed(r.total_mean, 2),
                   strutil::format_fixed(r.makespan, 1)});
  }
  std::cout << metrics::banner("Service concurrency ablation");
  std::cout << table.to_string();
  table.write_csv(output_dir() + "/ablation_concurrency.csv");
  return 0;
}
