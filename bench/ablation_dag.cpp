// Ablation: the DAG workflow engine (wf::Graph frontier scheduling).
//
// Two experiments:
//
// 1. Diamond. src -> N independent branch nodes -> sink, run twice
//    over the same session shape: once as the DAG (branches released
//    concurrently by the frontier scheduler) and once linearized (the
//    same nodes chained src -> b0 -> ... -> sink, the old pipeline
//    serialization of the same work). Gate: the DAG makespan must be
//    >= 1.5x better — the branches provably overlap.
// 2. Hyperopt sweep. HyperoptGraph runs successive halving as a
//    dynamically spawned graph (seed -> trial fan-out -> rung
//    collector fan-in, per rung); reported against the sum of its
//    node durations as the within-rung overlap factor.
//
// Determinism is asserted unconditionally: same-seed reruns of both
// experiments must reproduce the graph event-stream FNV fingerprints
// bit for bit. The diamond DAG run is traced and exported as a Chrome
// trace artifact. Output: bench_out/ablation_dag.{csv,json} and
// bench_out/ablation_dag.trace.json.
//
// Usage: bench_ablation_dag [--smoke]

#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "ripple/metrics/chrome_trace.hpp"
#include "ripple/wf/graph.hpp"
#include "ripple/wf/hyperopt_graph.hpp"
#include "ripple/wf/workflow_manager.hpp"

namespace {

using namespace ripple;

constexpr std::uint64_t kSeed = 42;

std::string to_hex(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xf];
    value >>= 4;
  }
  return out;
}

core::TaskDescription modeled(double seconds) {
  core::TaskDescription desc;
  desc.kind = "modeled";
  desc.cores = 1;
  desc.duration = common::Distribution::constant(seconds);
  return desc;
}

// ---------------------------------------------------------------------------
// Experiment 1: diamond fan-out/fan-in vs its linearization
// ---------------------------------------------------------------------------

struct DiamondConfig {
  std::size_t branches = 6;
  std::size_t tasks_per_branch = 4;
  double task_seconds = 20.0;
};

struct DiamondResult {
  double makespan = 0.0;
  std::uint64_t event_hash = 0;
  std::size_t tasks_done = 0;
};

/// One diamond run. `linearize` chains the branch nodes instead of
/// fanning them out — same nodes, same tasks, serial dependencies.
DiamondResult run_diamond(const DiamondConfig& config, bool linearize,
                          const std::string& trace_path = "") {
  core::Session session{
      core::SessionConfig{.seed = kSeed, .tracing = !trace_path.empty()}};
  session.add_platform(platform::delta_profile(4));
  core::Pilot& pilot =
      session.submit_pilot({.platform = "delta", .nodes = 4});
  wf::WorkflowManager workflows(session);

  wf::Graph graph(linearize ? "diamond-linear" : "diamond-dag");
  wf::Stage src;
  src.name = "src";
  src.tasks = {modeled(1.0)};
  graph.add(src);
  std::vector<std::string> branch_keys;
  for (std::size_t b = 0; b < config.branches; ++b) {
    wf::Stage branch;
    branch.name = "branch-" + std::to_string(b);
    for (std::size_t t = 0; t < config.tasks_per_branch; ++t) {
      branch.tasks.push_back(modeled(config.task_seconds));
    }
    graph.add(branch);
    branch_keys.push_back(branch.name);
  }
  wf::Stage sink;
  sink.name = "sink";
  sink.tasks = {modeled(1.0)};
  graph.add(sink);
  if (linearize) {
    std::string previous = "src";
    for (const auto& key : branch_keys) {
      graph.depend(previous, key);
      previous = key;
    }
    graph.depend(previous, "sink");
  } else {
    for (const auto& key : branch_keys) {
      graph.depend("src", key);
      graph.depend(key, "sink");
    }
  }

  DiamondResult result;
  workflows.run_graph(graph, pilot, [&](const wf::GraphResult& r) {
    result.makespan = r.makespan;
    result.event_hash = r.event_hash;
    result.tasks_done = r.tasks_done;
  });
  session.run();
  if (!trace_path.empty()) {
    metrics::write_chrome_trace(trace_path, session.tracer(),
                                &session.counters());
  }
  return result;
}

// ---------------------------------------------------------------------------
// Experiment 2: hyperopt sweep as a dynamically spawned graph
// ---------------------------------------------------------------------------

struct SweepConfig {
  std::size_t initial = 8;
  double base_seconds = 30.0;
};

struct SweepResult {
  double makespan = 0.0;
  double serial_seconds = 0.0;  ///< sum of node durations
  std::size_t trials = 0;
  std::size_t rungs = 0;
  double best = 0.0;
  std::uint64_t event_hash = 0;
};

SweepResult run_sweep(const SweepConfig& config) {
  core::Session session{core::SessionConfig{.seed = kSeed}};
  session.add_platform(platform::delta_profile(4));
  core::Pilot& pilot =
      session.submit_pilot({.platform = "delta", .nodes = 4});
  wf::WorkflowManager workflows(session);

  wf::HyperoptGraph::Config hpo;
  hpo.name = "sweep";
  hpo.space = {wf::ParamSpec::log_real("lr", 1e-5, 1e-2),
               wf::ParamSpec::integer("batch", 16, 256),
               wf::ParamSpec::real("dropout", 0.0, 0.5)};
  hpo.initial = config.initial;
  hpo.eta = 2;
  hpo.make_task = [&config](const wf::Trial& trial) {
    // Budget doubles per rung (successive-halving semantics).
    return modeled(config.base_seconds *
                   std::pow(2.0, static_cast<double>(trial.rung)));
  };
  hpo.objective = [](const wf::Trial& trial, const wf::NodeOutcome& outcome) {
    if (!outcome.ok) return 1e9;
    const double lr =
        trial.params.get_or("lr", json::Value(1e-3)).as_double();
    const double dropout =
        trial.params.get_or("dropout", json::Value(0.0)).as_double();
    return std::abs(std::log10(lr) + 3.5) + dropout;
  };

  SweepResult result;
  wf::HyperoptGraph::run(
      workflows, pilot, hpo, session.runtime().rng().fork("hpo"),
      [&](const wf::HyperoptGraph::Report& report) {
        result.makespan = report.graph.makespan;
        result.trials = report.trials.size();
        result.rungs = report.rungs;
        result.best = report.best.value;
        result.event_hash = report.graph.event_hash;
        for (const double d : report.graph.node_durations) {
          result.serial_seconds += d;
        }
      });
  session.run();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke_mode(argc, argv);

  DiamondConfig diamond_config;
  SweepConfig sweep_config;
  if (smoke) {
    diamond_config = {4, 2, 10.0};
    sweep_config = {4, 10.0};
  }

  const std::string trace_path =
      bench::output_dir() + "/ablation_dag.trace.json";
  const DiamondResult dag = run_diamond(diamond_config, false, trace_path);
  const DiamondResult linear = run_diamond(diamond_config, true);
  const DiamondResult dag_rerun = run_diamond(diamond_config, false);
  const double diamond_speedup =
      dag.makespan > 0.0 ? linear.makespan / dag.makespan : 0.0;

  const SweepResult sweep = run_sweep(sweep_config);
  const SweepResult sweep_rerun = run_sweep(sweep_config);
  const double sweep_overlap =
      sweep.makespan > 0.0 ? sweep.serial_seconds / sweep.makespan : 0.0;

  bool pass = true;
  if (dag.event_hash != dag_rerun.event_hash ||
      dag.makespan != dag_rerun.makespan) {
    std::cerr << "FAIL: same-seed diamond rerun diverged\n";
    pass = false;
  }
  if (sweep.event_hash != sweep_rerun.event_hash ||
      sweep.makespan != sweep_rerun.makespan) {
    std::cerr << "FAIL: same-seed sweep rerun diverged\n";
    pass = false;
  }
  if (dag.tasks_done != linear.tasks_done) {
    std::cerr << "FAIL: linearization changed the work ("
              << linear.tasks_done << " vs " << dag.tasks_done
              << " tasks)\n";
    pass = false;
  }
  if (diamond_speedup < 1.5) {
    std::cerr << "FAIL: diamond DAG speedup " << diamond_speedup
              << "x vs linearized, target >= 1.5x\n";
    pass = false;
  }

  metrics::Table table({"experiment", "makespan_s", "speedup",
                        "tasks_done", "event_hash"});
  table.add_row({"diamond-dag", strutil::format_fixed(dag.makespan, 2),
                 strutil::format_fixed(diamond_speedup, 2),
                 std::to_string(dag.tasks_done), to_hex(dag.event_hash)});
  table.add_row({"diamond-linear",
                 strutil::format_fixed(linear.makespan, 2), "1.00",
                 std::to_string(linear.tasks_done),
                 to_hex(linear.event_hash)});
  table.add_row({"hyperopt-sweep", strutil::format_fixed(sweep.makespan, 2),
                 strutil::format_fixed(sweep_overlap, 2),
                 std::to_string(sweep.trials), to_hex(sweep.event_hash)});

  std::cout << metrics::banner(
      "DAG workflow engine (frontier release vs linearized, dynamic "
      "hyperopt sweep)");
  std::cout << table.to_string();
  std::cout << "\ndiamond_speedup="
            << strutil::format_fixed(diamond_speedup, 2)
            << "x (gate >= 1.5x)  sweep: " << sweep.trials << " trials / "
            << sweep.rungs << " rungs, within-rung overlap "
            << strutil::format_fixed(sweep_overlap, 2) << "x, best "
            << strutil::format_fixed(sweep.best, 3) << "\n";

  table.write_csv(bench::output_dir() + "/ablation_dag.csv");

  json::Value report = json::Value::object();
  report.set("smoke", smoke);
  json::Value diamond = json::Value::object();
  diamond.set("branches", diamond_config.branches);
  diamond.set("tasks_per_branch", diamond_config.tasks_per_branch);
  diamond.set("dag_makespan", dag.makespan);
  diamond.set("linear_makespan", linear.makespan);
  diamond.set("speedup", diamond_speedup);
  diamond.set("event_hash", to_hex(dag.event_hash));
  report.set("diamond", std::move(diamond));
  json::Value sweep_row = json::Value::object();
  sweep_row.set("trials", sweep.trials);
  sweep_row.set("rungs", sweep.rungs);
  sweep_row.set("makespan", sweep.makespan);
  sweep_row.set("serial_seconds", sweep.serial_seconds);
  sweep_row.set("overlap", sweep_overlap);
  sweep_row.set("best", sweep.best);
  sweep_row.set("event_hash", to_hex(sweep.event_hash));
  report.set("sweep", std::move(sweep_row));
  std::ofstream file(bench::output_dir() + "/ablation_dag.json");
  file << report.dump(2) << "\n";

  std::cout << (pass ? "\nPASS" : "\nFAIL")
            << ": branches overlap >= 1.5x and same-seed event hashes are "
               "bit-identical\n";
  return pass ? 0 : 1;
}
