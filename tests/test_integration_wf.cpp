// Cross-module integration: workflows over services with staging,
// remote endpoints, failover under fault injection, and end-to-end
// metric consistency — the full stack behaving like the paper's
// execution model.

#include <gtest/gtest.h>

#include "ripple/core/session.hpp"
#include "ripple/ml/install.hpp"
#include "ripple/platform/profiles.hpp"
#include "ripple/wf/workflow_manager.hpp"

namespace {

using namespace ripple;
using namespace ripple::core;

TEST(IntegrationWf, PipelineWithStagedDataAndServiceStage) {
  Session session({.seed = 314});
  ml::install(session);
  session.add_platform(platform::delta_profile(4));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 4});
  wf::WorkflowManager workflows(session);

  // Remote archive holding the input data.
  session.runtime().network().register_host("archive:store", "archive");
  session.data().register_dataset("raw", 20e9, "archive");
  session.data().set_bandwidth("archive", "delta", 2e9);

  wf::Pipeline pipeline;
  pipeline.name = "staged";
  wf::Stage prep;
  prep.name = "prep";
  for (int i = 0; i < 4; ++i) {
    TaskDescription t;
    t.kind = "modeled";
    t.cores = 2;
    t.duration = common::Distribution::constant(30.0);
    t.staging.push_back(StagingDirective::in("raw"));
    t.staging.push_back(
        StagingDirective::out("features-" + std::to_string(i)));
    prep.tasks.push_back(t);
  }
  wf::Stage serve;
  serve.name = "serve";
  ServiceDescription svc;
  svc.program = "inference";
  svc.config = json::Value::object({{"model", "noop"}});
  svc.gpus = 1;
  serve.services = {svc};
  TaskDescription consumer;
  consumer.kind = "modeled";
  consumer.duration = common::Distribution::constant(5.0);
  serve.tasks = {consumer};
  serve.stop_services_after = true;
  pipeline.stages = {prep, serve};

  wf::PipelineResult result;
  workflows.run_pipeline(pipeline, pilot,
                         [&](const wf::PipelineResult& r) { result = r; });
  session.run();

  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.tasks_done, 5u);
  // The 20 GB dataset was transferred once (four tasks piggybacked).
  EXPECT_EQ(session.data().transfers(), 1u);
  EXPECT_TRUE(session.data().available_in("raw", "delta"));
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(session.data().available_in(
        "features-" + std::to_string(i), "delta"));
  }
  // Stage durations recorded as metrics.
  EXPECT_TRUE(session.metrics().has_durations("pipeline.staged.makespan"));
  // Prep stage makespan includes the ~10 s transfer.
  EXPECT_GT(session.metrics()
                .durations("pipeline.staged.stage.prep")
                .mean(),
            40.0);
}

TEST(IntegrationWf, MixedLocalRemoteFleetSurvivesKill) {
  Session session({.seed = 2718});
  ml::install(session);
  session.add_platform(platform::delta_profile(4));
  auto& r3 = session.add_platform(platform::r3_profile(2));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 4});

  // One monitored local + one persistent remote service.
  ServiceDescription local;
  local.program = "inference";
  local.config = json::Value::object({{"model", "noop"}});
  local.gpus = 1;
  local.monitor = true;
  local.heartbeat_interval = 2.0;
  local.heartbeat_misses = 2;
  const auto local_uid = session.services().submit(pilot, local);

  ServiceDescription remote = local;
  remote.monitor = false;
  remote.config.set("preloaded", true);
  const auto remote_uid =
      session.services().register_remote(r3, remote, 0);

  std::size_t client_ok = 0;
  std::size_t client_failed = 0;
  session.services().when_ready({local_uid, remote_uid}, [&](bool ok) {
    ASSERT_TRUE(ok);
    json::Value endpoints = json::Value::array(
        {json::Value(session.services().get(local_uid).endpoint()),
         json::Value(session.services().get(remote_uid).endpoint())});
    TaskDescription client;
    client.kind = "inference_client";
    client.payload = json::Value::object({{"endpoints", endpoints},
                                          {"requests", 200},
                                          {"concurrency", 1},
                                          {"timeout", 5.0},
                                          {"think_time", 0.5},
                                          {"series", "failover"}});
    const auto task = session.tasks().submit(pilot, client);
    session.tasks().when_done({task}, [&, task](bool) {
      const auto& result = session.tasks().get(task).result();
      client_ok = static_cast<std::size_t>(result.at("ok").as_int());
      client_failed =
          static_cast<std::size_t>(result.at("failed").as_int());
      session.services().stop_all();
    });
    // Kill the local service mid-run.
    session.loop().call_after(20.0,
                              [&] { session.services().kill(local_uid); });
  });
  session.run();

  // The local service was declared dead by liveness monitoring...
  EXPECT_EQ(session.services().get(local_uid).state(),
            ServiceState::failed);
  // ...some requests to it failed/timed out, but the client finished
  // and the remote endpoint carried the rest.
  EXPECT_GT(client_failed, 0u);
  EXPECT_GT(client_ok, 100u);
  EXPECT_EQ(client_ok + client_failed, 200u);
  EXPECT_EQ(session.metrics().series("failover").count(), client_ok);
}

TEST(IntegrationWf, MultiPlatformSessionSummaryConsistent) {
  Session session({.seed = 1});
  ml::install(session);
  session.add_platform(platform::delta_profile(2));
  session.add_platform(platform::r3_profile(1));
  session.add_platform(platform::frontier_profile(2));
  auto& pilot_d = session.submit_pilot({.platform = "delta", .nodes = 1});
  auto& pilot_f = session.submit_pilot({.platform = "frontier", .nodes = 1});

  TaskDescription t;
  t.kind = "modeled";
  t.duration = common::Distribution::constant(1.0);
  session.tasks().submit(pilot_d, t);
  session.tasks().submit(pilot_f, t);
  session.run();

  EXPECT_EQ(session.pilot_uids().size(), 2u);
  const auto summary = session.summary();
  EXPECT_EQ(summary.at("tasks").at("DONE").as_int(), 2);
  EXPECT_GT(summary.at("events").as_int(), 0);
  EXPECT_TRUE(session.has_cluster("r3"));
  EXPECT_FALSE(session.has_cluster("summit"));
}

TEST(IntegrationWf, ThroughputScalesWithServices) {
  // End-to-end sanity on aggregate throughput: 4x the services should
  // cut the makespan of a fixed request volume by roughly 4x when the
  // service is the bottleneck.
  auto run_with = [](std::size_t services) {
    Session session({.seed = 11});
    ml::install(session);
    session.add_platform(platform::delta_profile(4));
    auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 4});
    std::vector<std::string> uids;
    for (std::size_t i = 0; i < services; ++i) {
      ServiceDescription desc;
      desc.program = "inference";
      desc.config = json::Value::object({{"model", "llama-8b"}});
      desc.gpus = 1;
      uids.push_back(session.services().submit(pilot, desc));
    }
    double start = 0;
    double finish = 0;
    session.services().when_ready(uids, [&](bool ok) {
      ASSERT_TRUE(ok);
      start = session.now();
      json::Value endpoints = json::Value::array();
      for (const auto& uid : uids) {
        endpoints.push_back(session.services().get(uid).endpoint());
      }
      std::vector<std::string> tasks;
      for (int c = 0; c < 4; ++c) {
        TaskDescription client;
        client.kind = "inference_client";
        client.payload = json::Value::object(
            {{"endpoints", endpoints},
             {"requests", 16},
             {"concurrency", 4},
             {"balancer", "least_outstanding"},
             {"series", "tp"}});
        tasks.push_back(session.tasks().submit(pilot, client));
      }
      session.tasks().when_done(tasks, [&](bool) {
        finish = session.now();
        session.services().stop_all();
      });
    });
    session.run();
    return finish - start;
  };
  const double t1 = run_with(1);
  const double t4 = run_with(4);
  EXPECT_GT(t1 / t4, 2.5);
  EXPECT_LT(t1 / t4, 6.0);
}

}  // namespace
