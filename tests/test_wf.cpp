// Tests for the workflow layer: pipelines with sequential and
// asynchronous stage coupling, service stages, and the hyperparameter
// optimizer.

#include <gtest/gtest.h>

#include <functional>

#include "ripple/common/error.hpp"
#include "ripple/core/session.hpp"
#include "ripple/ml/install.hpp"
#include "ripple/ml/model.hpp"
#include "ripple/platform/profiles.hpp"
#include "ripple/wf/hyperopt.hpp"
#include "ripple/wf/workflow_manager.hpp"

namespace {

using namespace ripple;
using namespace ripple::core;
using namespace ripple::wf;

TaskDescription modeled(double seconds) {
  TaskDescription desc;
  desc.kind = "modeled";
  desc.cores = 1;
  desc.duration = common::Distribution::constant(seconds);
  return desc;
}

class WorkflowTest : public ::testing::Test {
 protected:
  Session session{SessionConfig{.seed = 77}};
  Pilot* pilot = nullptr;
  std::unique_ptr<WorkflowManager> workflows;

  void SetUp() override {
    ml::install(session);
    session.add_platform(platform::delta_profile(4));
    pilot = &session.submit_pilot({.platform = "delta", .nodes = 4});
    workflows = std::make_unique<WorkflowManager>(session);
  }
};

TEST_F(WorkflowTest, SequentialStagesRunInOrder) {
  Pipeline pipeline;
  pipeline.name = "seq";
  Stage s1;
  s1.name = "one";
  s1.tasks = {modeled(10.0), modeled(10.0)};
  Stage s2;
  s2.name = "two";
  s2.tasks = {modeled(5.0)};
  pipeline.stages = {s1, s2};

  PipelineResult result;
  workflows->run_pipeline(pipeline, *pilot,
                          [&](const PipelineResult& r) { result = r; });
  session.run();

  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.tasks_done, 3u);
  EXPECT_EQ(result.stage_names,
            (std::vector<std::string>{"one", "two"}));
  // Stage two's single task started only after stage one finished:
  // makespan >= 10 + 5 (+ launches).
  EXPECT_GT(result.makespan, 15.0);
  EXPECT_EQ(workflows->results().at("seq").tasks_failed, 0u);
}

TEST_F(WorkflowTest, AsyncCouplingOverlapsStages) {
  // Stage one: 4 long tasks; next stage releases after ONE is done.
  Pipeline pipeline;
  pipeline.name = "async";
  Stage s1;
  s1.name = "producer";
  s1.tasks = {modeled(10.0), modeled(30.0), modeled(30.0), modeled(30.0)};
  s1.unblock_next_after = 1;
  Stage s2;
  s2.name = "consumer";
  s2.tasks = {modeled(5.0)};
  pipeline.stages = {s1, s2};

  PipelineResult result;
  workflows->run_pipeline(pipeline, *pilot,
                          [&](const PipelineResult& r) { result = r; });
  session.run();

  EXPECT_TRUE(result.ok);
  // Consumer overlapped the long producers: total well below 30+5.
  EXPECT_LT(result.makespan, 36.0);
  // But it did wait for the first producer (10 s) and ran 5 s itself.
  EXPECT_GT(result.makespan, 30.0);  // bounded by slowest producer
}

TEST_F(WorkflowTest, ServiceStageStartsServicesFirst) {
  Pipeline pipeline;
  pipeline.name = "svc-stage";
  Stage stage;
  stage.name = "inference";
  ServiceDescription svc;
  svc.program = "inference";
  svc.config = json::Value::object({{"model", "noop"}});
  svc.gpus = 1;
  stage.services = {svc};
  stage.tasks = {modeled(1.0)};
  stage.stop_services_after = true;
  pipeline.stages = {stage};

  PipelineResult result;
  workflows->run_pipeline(pipeline, *pilot,
                          [&](const PipelineResult& r) { result = r; });
  session.run();
  EXPECT_TRUE(result.ok);
  // The one service was created, used and stopped afterwards.
  EXPECT_EQ(session.services().count_in_state(ServiceState::stopped), 1u);
}

TEST_F(WorkflowTest, StageDeclaresLatencySloAndGroupScalesOnIt) {
  // A stage declares a latency SLO in Stage::autoscale; the
  // WorkflowManager threads it into the group's ml::Autoscaler. A
  // request burst that blows the target must grow the pool while the
  // stage runs, and stop_services_after must drain the scaled-up
  // replica the stage's own uid list never saw.
  ml::ModelSpec model = ml::noop_model();
  model.name = "wf-slo-second";
  model.init = common::Distribution::constant(0.05);
  model.parse = common::Distribution::constant(0.0);
  model.serialize = common::Distribution::constant(0.0);
  model.inference_floor_s = 1.0;
  ml::ModelRegistry::global().add(model);

  Pipeline pipeline;
  pipeline.name = "slo-stage";
  Stage stage;
  stage.name = "elastic";
  ServiceDescription svc;
  svc.name = "wf-slo-pool";
  svc.program = "inference";
  svc.config = json::Value::object(
      {{"model", "wf-slo-second"}, {"continuous", true}});
  svc.gpus = 1;
  stage.services = {svc};
  stage.autoscale.enabled = true;
  stage.autoscale.min_replicas = 1;
  stage.autoscale.max_replicas = 2;
  stage.autoscale.poll_interval = 0.25;
  stage.autoscale.cooldown = 0.5;
  stage.autoscale.target_p95 = 0.5;  // 1 s inferences always violate it
  stage.tasks = {modeled(15.0)};     // keeps the stage alive to scale
  stage.stop_services_after = true;
  pipeline.stages = {stage};

  msg::RpcClient prober(session.runtime().router(), "prober",
                        session.cluster("delta").head_host());
  bool burst_sent = false;
  std::function<void()> controller = [&] {
    const auto endpoints = session.runtime().endpoints_of("wf-slo-pool");
    if (!burst_sent && !endpoints.empty()) {
      burst_sent = true;
      // Five serial one-second requests: windowed p95 >= 1 s > 0.5 s.
      for (int i = 0; i < 5; ++i) {
        prober.call(endpoints.front(), "infer", json::Value::object(),
                    [](msg::CallResult) {});
      }
      return;
    }
    if (!burst_sent && session.now() < 30.0) {
      session.loop().call_after(0.25, controller);
    }
  };
  session.loop().call_after(0.25, controller);

  PipelineResult result;
  workflows->run_pipeline(pipeline, *pilot,
                          [&](const PipelineResult& r) { result = r; });
  session.run();

  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(burst_sent);
  // The SLO scaled the group past its minimum, and the stage teardown
  // drained every replica — including the scaled-up one.
  EXPECT_GE(session.services().uids().size(), 2u);
  EXPECT_EQ(session.services().count_in_state(ServiceState::stopped),
            session.services().uids().size());
}

TEST_F(WorkflowTest, TaskFailureMarksPipelineFailed) {
  Pipeline pipeline;
  pipeline.name = "failing";
  Stage stage;
  stage.name = "bad";
  TaskDescription bad;
  bad.kind = "function";
  bad.payload = json::Value::object({{"fn", "ghost-fn"}});
  stage.tasks = {bad, modeled(1.0)};
  Stage never;
  never.name = "never";
  never.tasks = {modeled(1.0)};
  pipeline.stages = {stage, never};

  PipelineResult result;
  result.ok = true;
  workflows->run_pipeline(pipeline, *pilot,
                          [&](const PipelineResult& r) { result = r; });
  session.run();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.tasks_failed, 1u);
  // The second stage never started.
  EXPECT_EQ(result.stage_names, (std::vector<std::string>{"bad"}));
}

TEST_F(WorkflowTest, RetryBudgetResubmitsFailedTasks) {
  // A function that fails on its first invocation and succeeds after:
  // with a retry budget the pipeline absorbs the transient failure.
  auto calls = std::make_shared<int>(0);
  session.executor().functions().register_fn(
      "flaky", [calls](ExecutionContext&, const json::Value&) -> json::Value {
        if (++*calls == 1) throw std::runtime_error("transient");
        return json::Value::object({{"attempt", *calls}});
      });

  Pipeline pipeline;
  pipeline.name = "retried";
  pipeline.task_retry_budget = 2;
  Stage stage;
  stage.name = "flaky-stage";
  TaskDescription flaky;
  flaky.kind = "function";
  flaky.payload = json::Value::object({{"fn", "flaky"}});
  stage.tasks = {flaky, modeled(1.0)};
  Stage after;
  after.name = "after";
  after.tasks = {modeled(1.0)};
  pipeline.stages = {stage, after};

  PipelineResult result;
  workflows->run_pipeline(pipeline, *pilot,
                          [&](const PipelineResult& r) { result = r; });
  session.run();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.tasks_failed, 0u);
  EXPECT_EQ(result.tasks_retried, 1u);
  EXPECT_EQ(*calls, 2);
  EXPECT_EQ(result.stage_names,
            (std::vector<std::string>{"flaky-stage", "after"}));
}

TEST_F(WorkflowTest, ExhaustedRetryBudgetStillFailsThePipeline) {
  session.executor().functions().register_fn(
      "always-bad", [](ExecutionContext&, const json::Value&) -> json::Value {
        throw std::runtime_error("permanent");
      });

  Pipeline pipeline;
  pipeline.name = "doomed";
  pipeline.task_retry_budget = 2;
  Stage stage;
  stage.name = "bad";
  TaskDescription bad;
  bad.kind = "function";
  bad.payload = json::Value::object({{"fn", "always-bad"}});
  stage.tasks = {bad};
  pipeline.stages = {stage};

  PipelineResult result;
  result.ok = true;
  workflows->run_pipeline(pipeline, *pilot,
                          [&](const PipelineResult& r) { result = r; });
  session.run();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.tasks_failed, 1u);
  EXPECT_EQ(result.tasks_retried, 2u);
}

TEST_F(WorkflowTest, ConcurrentPipelinesShareThePilot) {
  int completed = 0;
  for (int p = 0; p < 3; ++p) {
    Pipeline pipeline;
    pipeline.name = "p" + std::to_string(p);
    Stage stage;
    stage.name = "work";
    stage.tasks = {modeled(5.0), modeled(5.0)};
    pipeline.stages = {stage};
    workflows->run_pipeline(pipeline, *pilot,
                            [&](const PipelineResult& r) {
                              EXPECT_TRUE(r.ok);
                              ++completed;
                            });
  }
  session.run();
  EXPECT_EQ(completed, 3);
  EXPECT_EQ(workflows->results().size(), 3u);
}

TEST_F(WorkflowTest, EmptyPipelineRejected) {
  Pipeline empty;
  EXPECT_THROW(
      workflows->run_pipeline(empty, *pilot, [](const PipelineResult&) {}),
      Error);
}

// ---------------------------------------------------------------------------
// Hyperparameter optimization
// ---------------------------------------------------------------------------

TEST(ParamSpecs, SamplingRespectsBounds) {
  common::Rng rng(13);
  const auto lr = ParamSpec::log_real("lr", 1e-5, 1e-1);
  const auto batch = ParamSpec::integer("batch", 16, 256);
  const auto drop = ParamSpec::real("dropout", 0.0, 0.5);
  const auto opt = ParamSpec::categorical("optimizer", {"adam", "sgd"});
  for (int i = 0; i < 500; ++i) {
    const double lr_v = lr.sample(rng).as_double();
    EXPECT_GE(lr_v, 1e-5);
    EXPECT_LE(lr_v, 1e-1);
    const auto batch_v = batch.sample(rng).as_int();
    EXPECT_GE(batch_v, 16);
    EXPECT_LE(batch_v, 256);
    const double drop_v = drop.sample(rng).as_double();
    EXPECT_GE(drop_v, 0.0);
    EXPECT_LE(drop_v, 0.5);
    const auto opt_v = opt.sample(rng).as_string();
    EXPECT_TRUE(opt_v == "adam" || opt_v == "sgd");
  }
}

TEST(ParamSpecs, LogRealSamplesLowDecades) {
  common::Rng rng(14);
  const auto lr = ParamSpec::log_real("lr", 1e-6, 1.0);
  int below_1e3 = 0;
  for (int i = 0; i < 1000; ++i) {
    if (lr.sample(rng).as_double() < 1e-3) ++below_1e3;
  }
  // Log-uniform: half the samples lie below the geometric midpoint.
  EXPECT_GT(below_1e3, 350);
  EXPECT_LT(below_1e3, 650);
}

TEST(ParamSpecs, Validation) {
  EXPECT_THROW((void)ParamSpec::real("x", 2.0, 1.0), Error);
  EXPECT_THROW((void)ParamSpec::log_real("x", 0.0, 1.0), Error);
  EXPECT_THROW((void)ParamSpec::integer("x", 5, 4), Error);
  EXPECT_THROW((void)ParamSpec::categorical("x", {}), Error);
}

double quadratic_objective(const json::Value& params) {
  const double x = params.at("x").as_double();
  return (x - 0.3) * (x - 0.3);
}

TEST(RandomSearch, FindsGoodRegion) {
  RandomSearch search({ParamSpec::real("x", 0.0, 1.0)}, common::Rng(15));
  for (int i = 0; i < 64; ++i) {
    const Trial trial = search.suggest();
    search.report(trial.id, quadratic_objective(trial.params));
  }
  EXPECT_EQ(search.completed(), 64u);
  EXPECT_LT(search.best().value, 0.01);
  EXPECT_NEAR(search.best().params.at("x").as_double(), 0.3, 0.12);
}

TEST(RandomSearch, ReportValidation) {
  RandomSearch search({ParamSpec::real("x", 0.0, 1.0)}, common::Rng(16));
  const Trial trial = search.suggest();
  search.report(trial.id, 1.0);
  EXPECT_THROW(search.report(trial.id, 2.0), Error);   // double report
  EXPECT_THROW(search.report(999, 1.0), Error);        // unknown id
  EXPECT_THROW((void)RandomSearch({}, common::Rng(1)), Error);
}

TEST(SuccessiveHalving, PromotesBestAndConverges) {
  SuccessiveHalving search({ParamSpec::real("x", 0.0, 1.0)},
                           common::Rng(17), /*initial=*/8, /*eta=*/2);
  std::size_t rungs = 0;
  while (!search.finished()) {
    for (const Trial& trial : search.pending()) {
      search.report(trial.id, quadratic_objective(trial.params));
    }
    ASSERT_TRUE(search.rung_complete());
    search.advance_rung();
    ++rungs;
    ASSERT_LT(rungs, 10u);
  }
  EXPECT_EQ(rungs, 4u);  // 8 -> 4 -> 2 -> 1 -> finished
  EXPECT_LT(search.best().value, 0.05);
  // Total trials: 8 + 4 + 2 + 1 = 15.
  EXPECT_EQ(search.all_trials().size(), 15u);
  std::size_t pruned = 0;
  for (const auto& trial : search.all_trials()) {
    if (trial.pruned) ++pruned;
  }
  EXPECT_EQ(pruned, 7u);  // 4 + 2 + 1 losers across the rungs
}

TEST(SuccessiveHalving, AdvanceBeforeCompleteThrows) {
  SuccessiveHalving search({ParamSpec::real("x", 0.0, 1.0)},
                           common::Rng(18), 4);
  EXPECT_FALSE(search.rung_complete());
  EXPECT_THROW((void)search.advance_rung(), Error);
}

}  // namespace
