// Unit tests for the platform substrate: nodes, launch models,
// clusters and the calibrated profiles.

#include <gtest/gtest.h>

#include <algorithm>

#include "ripple/common/error.hpp"
#include "ripple/platform/cluster.hpp"
#include "ripple/platform/launcher.hpp"
#include "ripple/platform/node.hpp"
#include "ripple/platform/profiles.hpp"

namespace {

using namespace ripple;

TEST(Node, AllocateAndRelease) {
  platform::Node node("n0", platform::NodeSpec{8, 2, 64.0}, "host0");
  EXPECT_TRUE(node.can_fit(8, 2, 64.0));
  const auto slot = node.allocate(4, 1, 16.0);
  EXPECT_EQ(node.free_cores(), 4u);
  EXPECT_EQ(node.free_gpus(), 1u);
  EXPECT_DOUBLE_EQ(node.free_mem_gb(), 48.0);
  node.release(slot);
  EXPECT_EQ(node.free_cores(), 8u);
  EXPECT_EQ(node.free_gpus(), 2u);
}

TEST(Node, OverAllocationThrows) {
  platform::Node node("n0", platform::NodeSpec{4, 1, 32.0}, "host0");
  EXPECT_THROW((void)node.allocate(5, 0, 0.0), Error);
  EXPECT_THROW((void)node.allocate(1, 2, 0.0), Error);
  EXPECT_THROW((void)node.allocate(1, 0, 64.0), Error);
}

TEST(Node, DoubleReleaseDetected) {
  platform::Node node("n0", platform::NodeSpec{4, 1, 32.0}, "host0");
  const auto slot = node.allocate(2, 0, 0.0);
  node.release(slot);
  EXPECT_THROW(node.release(slot), Error);
  // Releasing a slot from a different node is rejected too.
  platform::Node other("n1", platform::NodeSpec{4, 1, 32.0}, "host1");
  const auto slot2 = other.allocate(1, 0, 0.0);
  EXPECT_THROW(node.release(slot2), Error);
}

TEST(LaunchModel, FlatBelowThresholdGrowingAbove) {
  platform::LaunchModel model;
  model.base = common::Distribution::constant(2.0);
  model.contention_threshold = 160;
  model.contention_coeff = 0.016;
  EXPECT_DOUBLE_EQ(model.mean(1), 2.0);
  EXPECT_DOUBLE_EQ(model.mean(160), 2.0);
  EXPECT_NEAR(model.mean(640), 2.0 + 0.016 * 480.0, 1e-12);
  EXPECT_GT(model.mean(640), 2.0 * model.mean(160));  // Fig. 3 elbow
}

TEST(LaunchMethod, NamesRoundTrip) {
  for (const auto method :
       {platform::LaunchMethod::fork, platform::LaunchMethod::ssh,
        platform::LaunchMethod::mpiexec, platform::LaunchMethod::prrte}) {
    EXPECT_EQ(platform::launch_method_from_string(
                  platform::to_string(method)),
              method);
  }
  EXPECT_THROW((void)platform::launch_method_from_string("teleport"),
               Error);
}

TEST(Launcher, TracksInFlightAndUsesHint) {
  sim::EventLoop loop;
  platform::LaunchModel model;
  model.base = common::Distribution::constant(1.0);
  model.contention_threshold = 2;
  model.contention_coeff = 1.0;
  platform::Launcher launcher(loop, common::Rng(1), model);

  std::vector<double> durations;
  // Three launches at once: in-flight grows 1, 2, 3.
  for (int i = 0; i < 3; ++i) {
    launcher.launch([&](sim::Duration d) { durations.push_back(d); });
  }
  EXPECT_EQ(launcher.in_flight(), 3u);
  loop.run();
  EXPECT_EQ(launcher.in_flight(), 0u);
  EXPECT_EQ(launcher.completed(), 3u);
  ASSERT_EQ(durations.size(), 3u);
  // First launch saw concurrency 1 (no contention), third saw 3.
  EXPECT_DOUBLE_EQ(durations[0], 1.0);
  EXPECT_DOUBLE_EQ(durations[2], 2.0);

  // A wave hint raises the effective concurrency from the start.
  launcher.launch([&](sim::Duration d) { durations.push_back(d); },
                  /*concurrency_hint=*/10);
  loop.run();
  EXPECT_DOUBLE_EQ(durations.back(), 1.0 + 8.0);
}

TEST(Profiles, BuiltinsExposePaperCalibration) {
  const auto delta = platform::delta_profile();
  EXPECT_EQ(delta.name, "delta");
  EXPECT_EQ(delta.node.gpus, 4u);
  EXPECT_NEAR(delta.internode_latency.mean(), 63e-6, 1e-9);
  EXPECT_NEAR(delta.wan_latency.mean(), 0.47e-3, 1e-9);

  const auto frontier = platform::frontier_profile();
  EXPECT_EQ(frontier.node.gpus, 8u);
  EXPECT_EQ(frontier.max_nodes, 80u);  // 640 one-GPU service slots
  EXPECT_EQ(frontier.launch.contention_threshold, 160u);
  EXPECT_GT(frontier.launch.contention_coeff, 0.0);

  EXPECT_EQ(platform::profile_by_name("r3").name, "r3");
  EXPECT_EQ(platform::profile_by_name("frontier", 4).max_nodes, 4u);
  EXPECT_THROW((void)platform::profile_by_name("summit"), Error);
}

TEST(Profiles, JsonExportContainsModel) {
  const auto j = platform::delta_profile().to_json();
  EXPECT_EQ(j.at("name").as_string(), "delta");
  EXPECT_EQ(j.at("launch_method").as_string(), "mpiexec");
  EXPECT_TRUE(j.contains("internode_latency"));
}

class ClusterTest : public ::testing::Test {
 protected:
  sim::EventLoop loop;
  common::Rng rng{11};
  sim::Network net{loop, rng};
  platform::Cluster cluster{loop, net, platform::delta_profile(4),
                            common::Rng(12)};
};

TEST_F(ClusterTest, RegistersHostsAndLinks) {
  EXPECT_EQ(cluster.node_count(), 4u);
  EXPECT_TRUE(net.has_host("delta:node0000"));
  EXPECT_TRUE(net.has_host(cluster.head_host()));
  // Intra-zone link works.
  const double delay = net.sample_delay("delta:node0000", "delta:node0001", 0);
  EXPECT_GT(delay, 0.0);
  EXPECT_LT(delay, 1e-3);
}

TEST_F(ClusterTest, NodeLocalMessagingIsNotFree) {
  // Zone loopback: node-local messages still pay the TCP stack.
  const double loopback =
      net.sample_delay("delta:node0000", "delta:node0000", 0);
  EXPECT_GT(loopback, 10e-6);
}

TEST_F(ClusterTest, ReserveAndReleaseNodes) {
  const auto nodes = cluster.reserve_nodes(3);
  EXPECT_EQ(nodes.size(), 3u);
  EXPECT_EQ(cluster.free_node_count(), 1u);
  EXPECT_THROW((void)cluster.reserve_nodes(2), Error);
  cluster.release_nodes(nodes);
  EXPECT_EQ(cluster.free_node_count(), 4u);
  EXPECT_THROW((void)cluster.reserve_nodes(0), Error);
}

TEST(ClusterReserve, IndexedReservationMatchesLinearScanReference) {
  // Regression for the indexed free-set: a random reserve/release
  // sequence must grant exactly the nodes the legacy linear scan
  // (lowest free index first) granted, and agree on free counts and
  // capacity errors throughout.
  sim::EventLoop loop;
  common::Rng net_rng{3};
  sim::Network net{loop, net_rng};
  auto profile = platform::delta_profile(32);
  platform::Cluster cluster{loop, net, profile, common::Rng(4)};

  std::vector<bool> reference_reserved(cluster.node_count(), false);
  const auto reference_reserve =
      [&](std::size_t count) -> std::vector<std::string> {
    std::vector<std::string> out;
    for (std::size_t i = 0;
         i < reference_reserved.size() && out.size() < count; ++i) {
      if (!reference_reserved[i]) {
        reference_reserved[i] = true;
        out.push_back(cluster.node(i).id());
      }
    }
    return out;
  };

  common::Rng rng(99);
  std::vector<std::vector<platform::Node*>> held;
  for (int op = 0; op < 500; ++op) {
    const std::size_t free_reference = static_cast<std::size_t>(
        std::count(reference_reserved.begin(), reference_reserved.end(),
                   false));
    ASSERT_EQ(cluster.free_node_count(), free_reference);
    if (rng.chance(0.6)) {
      const auto count =
          static_cast<std::size_t>(rng.uniform_int(1, 8));
      if (count > free_reference) {
        EXPECT_THROW((void)cluster.reserve_nodes(count), Error);
        continue;
      }
      const std::vector<platform::Node*> got =
          cluster.reserve_nodes(count);
      const std::vector<std::string> expected = reference_reserve(count);
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i]->id(), expected[i]) << "op " << op;
      }
      held.push_back(got);
    } else if (!held.empty()) {
      const std::size_t index = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(held.size()) - 1));
      for (const platform::Node* node : held[index]) {
        for (std::size_t i = 0; i < cluster.node_count(); ++i) {
          if (cluster.node(i).id() == node->id()) {
            reference_reserved[i] = false;
          }
        }
      }
      cluster.release_nodes(held[index]);
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(index));
    }
  }
}

TEST_F(ClusterTest, FindNode) {
  EXPECT_NE(cluster.find_node("delta:node0002"), nullptr);
  EXPECT_EQ(cluster.find_node("delta:node9999"), nullptr);
  EXPECT_THROW((void)cluster.node(99), Error);
}

TEST(ConnectClusters, WanLinksUseConservativeModel) {
  sim::EventLoop loop;
  common::Rng rng(7);
  sim::Network net(loop, rng);
  platform::Cluster delta(loop, net, platform::delta_profile(2),
                          common::Rng(1));
  platform::Cluster r3(loop, net, platform::r3_profile(1), common::Rng(2));
  platform::connect_clusters(net, {&delta, &r3});
  common::OnlineStats stats;
  for (int i = 0; i < 2000; ++i) {
    stats.add(net.sample_delay("delta:node0000", "r3:node0000", 0));
  }
  EXPECT_NEAR(stats.mean(), 0.47e-3, 2e-5);  // paper: Delta<->R3 0.47 ms
}

}  // namespace
