// Tests for the ML substrate: model specs, the single-threaded
// inference server, load balancers, the client payload config and the
// latency-SLO autoscaler policy.

#include <gtest/gtest.h>

#include <functional>

#include "ripple/common/error.hpp"
#include "ripple/core/session.hpp"
#include "ripple/ml/autoscaler.hpp"
#include "ripple/ml/client.hpp"
#include "ripple/ml/inference_server.hpp"
#include "ripple/ml/install.hpp"
#include "ripple/ml/load_balancer.hpp"
#include "ripple/ml/model.hpp"
#include "ripple/msg/rpc.hpp"
#include "ripple/platform/profiles.hpp"

namespace {

using namespace ripple;
using namespace ripple::ml;

TEST(ModelRegistry, BuiltinsPresent) {
  auto& registry = ModelRegistry::global();
  for (const char* name :
       {"noop", "llama-8b", "llama-70b", "mistral-7b", "vit-base"}) {
    EXPECT_TRUE(registry.has(name)) << name;
  }
  EXPECT_FALSE(registry.has("gpt-12"));
  EXPECT_THROW((void)registry.get("gpt-12"), Error);
  EXPECT_GE(registry.names().size(), 5u);
}

TEST(ModelRegistry, AddReplacesByName) {
  ModelRegistry registry;
  ModelSpec custom = noop_model();
  custom.name = "custom";
  custom.per_token_s = 1.0;
  registry.add(custom);
  custom.per_token_s = 2.0;
  registry.add(custom);
  EXPECT_DOUBLE_EQ(registry.get("custom").per_token_s, 2.0);
}

TEST(ModelSpec, NoopRepliesNearInstantly) {
  common::Rng rng(1);
  const auto noop = noop_model();
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(noop.sample_inference(rng), 1e-4);
  }
}

TEST(ModelSpec, LlamaInferenceIsSeconds) {
  common::Rng rng(2);
  const auto llama = llama_8b_model();
  common::OnlineStats stats;
  for (int i = 0; i < 2000; ++i) {
    stats.add(llama.sample_inference(rng));
  }
  // ~120 tokens x 35 ms: seconds-scale, dominating everything else.
  EXPECT_GT(stats.mean(), 2.0);
  EXPECT_LT(stats.mean(), 8.0);
  EXPECT_NEAR(stats.mean(), llama.mean_inference(), 0.5);
}

TEST(ModelSpec, InitContentionMultiplier) {
  common::Rng rng(3);
  const auto llama = llama_8b_model();
  common::OnlineStats base;
  common::OnlineStats contended;
  for (int i = 0; i < 500; ++i) {
    base.add(llama.sample_init(rng, 1, 0.0006, 64));
    contended.add(llama.sample_init(rng, 640, 0.0006, 64));
  }
  EXPECT_GT(contended.mean(), base.mean() * 1.2);
}

// ---------------------------------------------------------------------------
// InferenceServer: queueing semantics
// ---------------------------------------------------------------------------

class ServerFixture : public ::testing::Test {
 protected:
  sim::EventLoop loop;
  common::Rng rng{5};
  sim::Network net{loop, rng};
  msg::Router router{loop, net};
  std::unique_ptr<msg::RpcServer> rpc_server;
  std::unique_ptr<msg::RpcClient> rpc_client;
  std::unique_ptr<InferenceServer> server;

  void SetUp() override {
    net.register_host("s", "z");
    net.register_host("c", "z");
    net.set_link("z", "z",
                 sim::LinkModel{common::Distribution::constant(1e-4), 0});
    rpc_server = std::make_unique<msg::RpcServer>(router, "svc", "s");
    rpc_client = std::make_unique<msg::RpcClient>(router, "cli", "c");
  }

  void make_server(ModelSpec model, ServerConfig config = {}) {
    server = std::make_unique<InferenceServer>(loop, common::Rng(6),
                                               std::move(model), config);
    rpc_server->bind_method("infer",
                            [this](std::shared_ptr<msg::Responder> r) {
                              server->handle(std::move(r));
                            });
  }
};

TEST_F(ServerFixture, SingleThreadedQueuesRequests) {
  // Deterministic 1 s inferences.
  ModelSpec model = noop_model();
  model.inference_floor_s = 1.0;
  model.parse = common::Distribution::constant(0.0);
  model.serialize = common::Distribution::constant(0.0);
  make_server(model);

  std::vector<double> completion_times;
  for (int i = 0; i < 4; ++i) {
    rpc_client->call("svc", "infer", json::Value::object(),
                     [&](msg::CallResult r) {
                       ASSERT_TRUE(r.ok);
                       completion_times.push_back(loop.now());
                     });
  }
  loop.run();
  ASSERT_EQ(completion_times.size(), 4u);
  // Strictly serialized: completions ~1 s apart.
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_NEAR(completion_times[i] - completion_times[i - 1], 1.0, 1e-3);
  }
  EXPECT_EQ(server->served(), 4u);
  EXPECT_EQ(server->peak_queue(), 3u);
}

TEST_F(ServerFixture, ConcurrencyTwoHalvesMakespan) {
  ModelSpec model = noop_model();
  model.inference_floor_s = 1.0;
  model.parse = common::Distribution::constant(0.0);
  model.serialize = common::Distribution::constant(0.0);
  make_server(model, ServerConfig{.max_concurrency = 2, .max_queue = 0});

  int completed = 0;
  for (int i = 0; i < 4; ++i) {
    rpc_client->call("svc", "infer", json::Value::object(),
                     [&](msg::CallResult) { ++completed; });
  }
  loop.run();
  EXPECT_EQ(completed, 4);
  EXPECT_NEAR(loop.now(), 2.0, 0.01);  // 4 x 1 s on 2 workers
}

TEST_F(ServerFixture, BoundedQueueRejectsOverflow) {
  ModelSpec model = noop_model();
  model.inference_floor_s = 10.0;
  make_server(model, ServerConfig{.max_concurrency = 1, .max_queue = 2});

  int ok_count = 0;
  int rejected = 0;
  for (int i = 0; i < 5; ++i) {
    rpc_client->call("svc", "infer", json::Value::object(),
                     [&](msg::CallResult r) {
                       if (r.ok) {
                         ++ok_count;
                       } else {
                         EXPECT_NE(r.error.find("queue full"),
                                   std::string::npos);
                         ++rejected;
                       }
                     });
  }
  loop.run();
  EXPECT_EQ(ok_count, 3);  // 1 executing + 2 queued
  EXPECT_EQ(rejected, 2);
  EXPECT_EQ(server->rejected(), 2u);
}

TEST_F(ServerFixture, StatsReportServedAndQueue) {
  make_server(noop_model());
  rpc_client->call("svc", "infer", json::Value::object(),
                   [](msg::CallResult) {});
  loop.run();
  const auto stats = server->stats();
  EXPECT_EQ(stats.at("served").as_int(), 1);
  EXPECT_EQ(stats.at("model").as_string(), "noop");
  EXPECT_EQ(stats.at("busy").as_int(), 0);
}

TEST_F(ServerFixture, InvalidConfigRejected) {
  EXPECT_THROW(InferenceServer(loop, common::Rng(1), noop_model(),
                               ServerConfig{.max_concurrency = 0,
                                            .max_queue = 0}),
               Error);
}

// ---------------------------------------------------------------------------
// Load balancers
// ---------------------------------------------------------------------------

TEST(LoadBalancer, RoundRobinCycles) {
  RoundRobinBalancer balancer({"a", "b", "c"});
  EXPECT_EQ(balancer.pick(), "a");
  EXPECT_EQ(balancer.pick(), "b");
  EXPECT_EQ(balancer.pick(), "c");
  EXPECT_EQ(balancer.pick(), "a");
}

TEST(LoadBalancer, RandomCoversAllEndpoints) {
  RandomBalancer balancer({"a", "b", "c"}, common::Rng(4));
  std::map<std::string, int> counts;
  for (int i = 0; i < 300; ++i) ++counts[balancer.pick()];
  EXPECT_EQ(counts.size(), 3u);
  for (const auto& [endpoint, count] : counts) EXPECT_GT(count, 50);
}

TEST(LoadBalancer, LeastOutstandingAvoidsBusyEndpoint) {
  LeastOutstandingBalancer balancer({"a", "b"});
  const std::string first = balancer.pick();   // a: 1 in flight
  const std::string second = balancer.pick();  // b: 1 in flight
  EXPECT_NE(first, second);
  // Complete b's request: next pick must be b (a still busy).
  balancer.on_complete("b");
  EXPECT_EQ(balancer.pick(), "b");
  EXPECT_EQ(balancer.outstanding("a"), 1u);
  EXPECT_EQ(balancer.outstanding("b"), 1u);
}

TEST(LoadBalancer, FactoryAndValidation) {
  auto rr = make_balancer("round_robin", {"x"}, common::Rng(1));
  EXPECT_STREQ(rr->name(), "round_robin");
  auto rnd = make_balancer("random", {"x"}, common::Rng(1));
  EXPECT_STREQ(rnd->name(), "random");
  auto lo = make_balancer("least_outstanding", {"x"}, common::Rng(1));
  EXPECT_STREQ(lo->name(), "least_outstanding");
  EXPECT_THROW((void)make_balancer("psychic", {"x"}, common::Rng(1)),
               Error);
  EXPECT_THROW((void)make_balancer("random", {}, common::Rng(1)), Error);
}

// ---------------------------------------------------------------------------
// Latency-SLO autoscaler policy
// ---------------------------------------------------------------------------

/// Registers (or refreshes) a fully deterministic model: constant
/// `floor_s`-second inferences, zero parse/serialize, instant load.
/// Every request latency is then queue wait + floor_s exactly.
ModelSpec slo_model(const std::string& name, double floor_s) {
  ModelSpec model = noop_model();
  model.name = name;
  model.init = common::Distribution::constant(0.05);
  model.parse = common::Distribution::constant(0.0);
  model.serialize = common::Distribution::constant(0.0);
  model.tokens_out = common::Distribution::constant(0.0);
  model.per_token_s = 0.0;
  model.inference_floor_s = floor_s;
  model.batch_cost_slope = 0.0;
  ModelRegistry::global().add(model);
  return model;
}

core::ServiceDescription slo_replica(const std::string& group,
                                     const std::string& model,
                                     double latency_window) {
  core::ServiceDescription replica;
  replica.name = group;
  replica.program = "inference";
  replica.config = json::Value::object({{"model", model},
                                        {"continuous", true},
                                        {"latency_window", latency_window}});
  replica.gpus = 1;
  return replica;
}

TEST(AutoscalerSlo, ValidatesConfig) {
  core::Session session({.seed = 1});
  ml::install(session);
  session.add_platform(platform::delta_profile(1));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 1});
  core::ServiceDescription replica;
  replica.program = "inference";

  AutoscalerConfig bad;
  bad.target_p95 = 1.0;
  bad.headroom_fraction = 1.0;  // must leave a band below the target
  EXPECT_THROW(Autoscaler(session, pilot, replica, bad), Error);
  bad = {};
  bad.target_p95 = 1.0;
  bad.down_sustain = 0;
  EXPECT_THROW(Autoscaler(session, pilot, replica, bad), Error);
}

TEST(AutoscalerSlo, ScalesUpWhenWindowedP95ExceedsTarget) {
  core::Session session({.seed = 31});
  ml::install(session);
  session.add_platform(platform::delta_profile(3));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 3});
  slo_model("slo-second", 1.0);

  AutoscalerConfig scaling;
  scaling.min_replicas = 1;
  scaling.max_replicas = 3;
  scaling.poll_interval = 0.25;
  scaling.cooldown = 0.5;
  scaling.target_p95 = 0.5;
  Autoscaler scaler(session, pilot,
                    slo_replica("slo-up", "slo-second", 30.0), scaling);

  msg::RpcClient prober(session.runtime().router(), "prober",
                        session.cluster("delta").head_host());
  scaler.start([&](bool ok) {
    ASSERT_TRUE(ok);
    // Four serial one-second requests: completed latencies 1..4 s, all
    // far over the 0.5 s target for the whole 30 s window.
    for (int i = 0; i < 4; ++i) {
      prober.call(scaler.endpoints().front(), "infer",
                  json::Value::object(), [](msg::CallResult) {});
    }
  });
  session.run_until(12.0);
  EXPECT_GE(scaler.scale_ups(), 1u);
  ASSERT_FALSE(scaler.decisions().empty());
  EXPECT_TRUE(scaler.decisions().front().up);
  // The decision recorded the violating signal, not a queue depth.
  EXPECT_GT(scaler.decisions().front().p95, scaling.target_p95);
  EXPECT_EQ(scaler.scale_downs(), 0u);  // the window is still hot
  scaler.stop();
  session.run();
}

TEST(AutoscalerSlo, HysteresisBandHoldsThenSustainedHeadroomScalesDown) {
  core::Session session({.seed = 37});
  ml::install(session);
  session.add_platform(platform::delta_profile(2));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});
  slo_model("slo-hold", 1.0);

  AutoscalerConfig scaling;
  scaling.min_replicas = 1;
  scaling.max_replicas = 2;
  scaling.poll_interval = 0.25;
  scaling.cooldown = 0.5;
  scaling.target_p95 = 1.2;        // band: (0.36, 1.2]
  scaling.headroom_fraction = 0.3;
  scaling.down_sustain = 3;
  Autoscaler scaler(session, pilot,
                    slo_replica("slo-hold-pool", "slo-hold", 3.0),
                    scaling);

  msg::RpcClient prober(session.runtime().router(), "prober",
                        session.cluster("delta").head_host());
  std::string endpoint;
  scaler.start([&](bool ok) {
    ASSERT_TRUE(ok);
    endpoint = scaler.endpoints().front();
    // Burst: five queued one-second requests, latencies 1..5 s — the
    // p95 breaks the 1.2 s target and forces a scale-up.
    for (int i = 0; i < 5; ++i) {
      prober.call(endpoint, "infer", json::Value::object(),
                  [](msg::CallResult) {});
    }
  });

  // Controller tick: once the pool reaches two running replicas, send
  // one non-overlapping request every 1.5 s for 10 s. Each completes in
  // exactly 1.0 s — inside the hysteresis band, below the target but
  // above the headroom threshold — so the oscillating load must hold
  // the pool at two replicas. Going silent afterwards empties the 3 s
  // window and only then may the sustained-headroom streak drain one.
  double hold_until = -1.0;
  double next_send = -1.0;
  std::size_t decisions_at_hold = 0;
  bool hold_checked = false;
  std::function<void()> controller = [&] {
    if (hold_until < 0.0 && scaler.running_replicas() == 2) {
      hold_until = session.now() + 10.0;
      next_send = session.now();
      decisions_at_hold = scaler.decisions().size();
    }
    if (hold_until > 0.0 && session.now() <= hold_until &&
        session.now() >= next_send) {
      prober.call(endpoint, "infer", json::Value::object(),
                  [](msg::CallResult) {});
      next_send = session.now() + 1.5;
    }
    if (hold_until > 0.0 && !hold_checked && session.now() > hold_until) {
      hold_checked = true;
      // The whole oscillating phase made no scaling decision.
      EXPECT_EQ(scaler.decisions().size(), decisions_at_hold);
      EXPECT_EQ(scaler.running_replicas(), 2u);
    }
    if (session.now() < 60.0 && scaler.scale_downs() == 0) {
      session.loop().call_after(0.25, controller);
    }
  };
  session.loop().call_after(0.25, controller);
  session.run_until(60.0);

  EXPECT_TRUE(hold_checked);
  EXPECT_EQ(scaler.scale_ups(), 1u);
  EXPECT_EQ(scaler.scale_downs(), 1u);
  EXPECT_EQ(scaler.running_replicas(), 1u);
  scaler.stop();
  session.run();
}

TEST(AutoscalerSlo, SaturatedPoolWithEmptyWindowHoldsScaleDown) {
  // Latency samples land only at reply time, so a pool whose in-flight
  // requests all outlive the window shows an EMPTY window while
  // drowning. That must read as "no signal", not as headroom: scaling
  // down here would deepen the overload. Only after the backlog drains
  // to zero may the idle-window streak shed the extra replica.
  core::Session session({.seed = 43});
  ml::install(session);
  session.add_platform(platform::delta_profile(2));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});
  slo_model("slo-slow", 5.0);

  AutoscalerConfig scaling;
  scaling.min_replicas = 1;
  scaling.max_replicas = 2;
  scaling.poll_interval = 0.25;
  scaling.cooldown = 0.5;
  scaling.target_p95 = 0.5;
  scaling.headroom_fraction = 0.5;
  scaling.down_sustain = 3;
  // 1 s window << 5 s inferences: between two completions the window
  // spends seconds empty while several requests are in flight.
  Autoscaler scaler(session, pilot,
                    slo_replica("slo-saturated", "slo-slow", 1.0),
                    scaling);

  msg::RpcClient prober(session.runtime().router(), "prober",
                        session.cluster("delta").head_host());
  bool storm_sent = false;
  bool mid_storm_checked = false;
  scaler.start([&](bool ok) {
    ASSERT_TRUE(ok);
    // Three queued 5 s requests: their completions put p95 >= 5 s into
    // the window and scale the pool up.
    for (int i = 0; i < 3; ++i) {
      prober.call(scaler.endpoints().front(), "infer",
                  json::Value::object(), [](msg::CallResult) {});
    }
  });
  std::function<void()> controller = [&] {
    if (!storm_sent && scaler.running_replicas() == 2) {
      storm_sent = true;
      // Saturate both replicas: four 5 s requests each. For the next
      // ~20 s most polls see an empty window with a deep backlog.
      const auto endpoints = scaler.endpoints();
      ASSERT_EQ(endpoints.size(), 2u);
      for (const auto& endpoint : endpoints) {
        for (int i = 0; i < 4; ++i) {
          prober.call(endpoint, "infer", json::Value::object(),
                      [](msg::CallResult) {});
        }
      }
      session.loop().call_after(10.0, [&] {
        mid_storm_checked = true;
        // Deep into the storm: an unfixed policy would have counted the
        // empty-window polls as headroom and drained a replica by now.
        EXPECT_EQ(scaler.scale_downs(), 0u);
        EXPECT_EQ(scaler.running_replicas(), 2u);
      });
      return;
    }
    if (!storm_sent && session.now() < 30.0) {
      session.loop().call_after(0.25, controller);
    }
  };
  session.loop().call_after(0.25, controller);
  session.run_until(70.0);

  EXPECT_TRUE(storm_sent);
  EXPECT_TRUE(mid_storm_checked);
  // Once the backlog fully drained, the idle empty window counted as
  // sustained headroom again and shed the extra replica.
  EXPECT_EQ(scaler.scale_downs(), 1u);
  EXPECT_EQ(scaler.running_replicas(), 1u);
  scaler.stop();
  session.run();
}

TEST(AutoscalerSlo, SloScaleDownDrainsLeastLoadedReplica) {
  core::Session session({.seed = 41});
  ml::install(session);
  session.add_platform(platform::delta_profile(2));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});
  slo_model("slo-fast", 0.05);

  AutoscalerConfig scaling;
  scaling.min_replicas = 1;
  scaling.max_replicas = 2;
  scaling.poll_interval = 0.25;
  scaling.cooldown = 0.5;
  scaling.target_p95 = 0.5;
  // Headroom threshold 0.45 s: the trickle below stays under it even
  // with three requests in flight, so the SLO sees sustained headroom
  // while the NEWEST replica carries all the traffic.
  scaling.headroom_fraction = 0.9;
  scaling.down_sustain = 3;
  Autoscaler scaler(session, pilot,
                    slo_replica("slo-drain", "slo-fast", 1.0), scaling);

  msg::RpcClient prober(session.runtime().router(), "prober",
                        session.cluster("delta").head_host());
  std::string old_uid;
  std::string new_uid;
  std::string new_endpoint;
  bool keep_sending = false;
  std::function<void()> send_loop = [&] {
    if (!keep_sending) return;
    prober.call(new_endpoint, "infer", json::Value::object(),
                [&](msg::CallResult) { send_loop(); });
  };
  scaler.start([&](bool ok) {
    ASSERT_TRUE(ok);
    old_uid = scaler.replicas().front();
    // Queue burst on the first replica: latencies up to ~1.5 s violate
    // the target and scale the pool up.
    for (int i = 0; i < 30; ++i) {
      prober.call(scaler.endpoints().front(), "infer",
                  json::Value::object(), [](msg::CallResult) {});
    }
  });
  std::function<void()> controller = [&] {
    if (new_endpoint.empty() && scaler.running_replicas() == 2) {
      for (const auto& uid : scaler.replicas()) {
        if (uid != old_uid) new_uid = uid;
      }
      ASSERT_FALSE(new_uid.empty());
      new_endpoint = session.services().get(new_uid).endpoint();
      // Pin three closed-loop request streams onto the NEWEST replica
      // only; the oldest idles. The legacy policy always drained the
      // newest — exactly the replica carrying all the load.
      keep_sending = true;
      for (int i = 0; i < 3; ++i) send_loop();
    }
    if (scaler.scale_downs() > 0) {
      keep_sending = false;
      return;
    }
    if (session.now() < 60.0) session.loop().call_after(0.1, controller);
  };
  session.loop().call_after(0.1, controller);
  session.run_until(60.0);

  EXPECT_EQ(scaler.scale_downs(), 1u);
  ASSERT_FALSE(new_uid.empty());
  // The loaded (newest) replica survived; the idle oldest was drained.
  EXPECT_EQ(session.services().get(new_uid).state(),
            core::ServiceState::running);
  EXPECT_NE(session.services().get(old_uid).state(),
            core::ServiceState::running);
  scaler.stop();
  session.run();
}

// ---------------------------------------------------------------------------
// Client config
// ---------------------------------------------------------------------------

TEST(ClientConfig, JsonRoundTrip) {
  ClientConfig config;
  config.endpoints = {"svc.0", "svc.1"};
  config.requests = 1024;
  config.concurrency = 4;
  config.series = "exp2";
  config.balancer = "least_outstanding";
  config.timeout = 30.0;
  const auto restored = ClientConfig::from_json(config.to_json());
  EXPECT_EQ(restored.endpoints, config.endpoints);
  EXPECT_EQ(restored.requests, 1024u);
  EXPECT_EQ(restored.concurrency, 4u);
  EXPECT_EQ(restored.series, "exp2");
  EXPECT_EQ(restored.balancer, "least_outstanding");
  EXPECT_DOUBLE_EQ(restored.timeout, 30.0);
}

TEST(ClientConfig, DefaultsApplied) {
  const auto config = ClientConfig::from_json(json::Value::object());
  EXPECT_TRUE(config.endpoints.empty());
  EXPECT_EQ(config.requests, 16u);
  EXPECT_EQ(config.concurrency, 1u);
  EXPECT_EQ(config.balancer, "round_robin");
}

// Regression: a request sleeping through its retry backoff must
// re-reconcile with the endpoint directory before the next attempt.
// The directory changes here without any pub/sub event (a replacement
// registered directly), so only the retry path's reconcile can see it;
// before the fix the client kept hammering its dead configured
// endpoint until the budget drained and the task failed.
TEST(ClientWatch, RetryReconcilesDirectoryDriftMidBackoff) {
  core::Session session({.seed = 21});
  ml::install(session);
  session.add_platform(platform::delta_profile(2));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});

  // A live server published under a *different* service name: its
  // pub/sub events carry name="other" and are invisible to watch="grp".
  core::ServiceDescription svc;
  svc.name = "other";
  svc.program = "inference";
  svc.config = json::Value::object({{"model", "noop"}});
  svc.gpus = 1;
  const std::string server = session.services().submit(pilot, svc);

  std::string task_uid;
  session.services().when_ready({server}, [&](bool ok) {
    ASSERT_TRUE(ok);
    const std::string live = session.services().get(server).endpoint();
    core::TaskDescription task;
    task.kind = "inference_client";
    task.payload = json::Value::object(
        {{"endpoints", json::Value::array({std::string("svc.ghost")})},
         {"requests", 4},
         {"concurrency", 1},
         {"series", "drift"},
         {"watch", "grp"},
         {"max_retries", 8},
         {"retry_backoff", 0.5}});
    task_uid = session.tasks().submit(pilot, task);
    // While the first request backs off from the unreachable endpoint,
    // the watched group gains a member — directory only, no event.
    session.loop().call_after(3.0, [&session, live] {
      session.runtime().register_endpoint("grp", live);
    });
    session.tasks().when_done(
        {task_uid}, [&](bool) { session.services().stop_all(); });
  });
  session.run();

  const core::Task& task = session.tasks().get(task_uid);
  ASSERT_EQ(task.state(), core::TaskState::done);
  EXPECT_EQ(task.result().get_or("ok", json::Value(0)).as_int(), 4);
  EXPECT_GT(task.result().get_or("retried", json::Value(0)).as_int(), 0);
}

}  // namespace
