// Tests for the ML substrate: model specs, the single-threaded
// inference server, load balancers and the client payload config.

#include <gtest/gtest.h>

#include "ripple/common/error.hpp"
#include "ripple/ml/client.hpp"
#include "ripple/ml/inference_server.hpp"
#include "ripple/ml/load_balancer.hpp"
#include "ripple/ml/model.hpp"
#include "ripple/msg/rpc.hpp"

namespace {

using namespace ripple;
using namespace ripple::ml;

TEST(ModelRegistry, BuiltinsPresent) {
  auto& registry = ModelRegistry::global();
  for (const char* name :
       {"noop", "llama-8b", "llama-70b", "mistral-7b", "vit-base"}) {
    EXPECT_TRUE(registry.has(name)) << name;
  }
  EXPECT_FALSE(registry.has("gpt-12"));
  EXPECT_THROW((void)registry.get("gpt-12"), Error);
  EXPECT_GE(registry.names().size(), 5u);
}

TEST(ModelRegistry, AddReplacesByName) {
  ModelRegistry registry;
  ModelSpec custom = noop_model();
  custom.name = "custom";
  custom.per_token_s = 1.0;
  registry.add(custom);
  custom.per_token_s = 2.0;
  registry.add(custom);
  EXPECT_DOUBLE_EQ(registry.get("custom").per_token_s, 2.0);
}

TEST(ModelSpec, NoopRepliesNearInstantly) {
  common::Rng rng(1);
  const auto noop = noop_model();
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(noop.sample_inference(rng), 1e-4);
  }
}

TEST(ModelSpec, LlamaInferenceIsSeconds) {
  common::Rng rng(2);
  const auto llama = llama_8b_model();
  common::OnlineStats stats;
  for (int i = 0; i < 2000; ++i) {
    stats.add(llama.sample_inference(rng));
  }
  // ~120 tokens x 35 ms: seconds-scale, dominating everything else.
  EXPECT_GT(stats.mean(), 2.0);
  EXPECT_LT(stats.mean(), 8.0);
  EXPECT_NEAR(stats.mean(), llama.mean_inference(), 0.5);
}

TEST(ModelSpec, InitContentionMultiplier) {
  common::Rng rng(3);
  const auto llama = llama_8b_model();
  common::OnlineStats base;
  common::OnlineStats contended;
  for (int i = 0; i < 500; ++i) {
    base.add(llama.sample_init(rng, 1, 0.0006, 64));
    contended.add(llama.sample_init(rng, 640, 0.0006, 64));
  }
  EXPECT_GT(contended.mean(), base.mean() * 1.2);
}

// ---------------------------------------------------------------------------
// InferenceServer: queueing semantics
// ---------------------------------------------------------------------------

class ServerFixture : public ::testing::Test {
 protected:
  sim::EventLoop loop;
  common::Rng rng{5};
  sim::Network net{loop, rng};
  msg::Router router{loop, net};
  std::unique_ptr<msg::RpcServer> rpc_server;
  std::unique_ptr<msg::RpcClient> rpc_client;
  std::unique_ptr<InferenceServer> server;

  void SetUp() override {
    net.register_host("s", "z");
    net.register_host("c", "z");
    net.set_link("z", "z",
                 sim::LinkModel{common::Distribution::constant(1e-4), 0});
    rpc_server = std::make_unique<msg::RpcServer>(router, "svc", "s");
    rpc_client = std::make_unique<msg::RpcClient>(router, "cli", "c");
  }

  void make_server(ModelSpec model, ServerConfig config = {}) {
    server = std::make_unique<InferenceServer>(loop, common::Rng(6),
                                               std::move(model), config);
    rpc_server->bind_method("infer",
                            [this](std::shared_ptr<msg::Responder> r) {
                              server->handle(std::move(r));
                            });
  }
};

TEST_F(ServerFixture, SingleThreadedQueuesRequests) {
  // Deterministic 1 s inferences.
  ModelSpec model = noop_model();
  model.inference_floor_s = 1.0;
  model.parse = common::Distribution::constant(0.0);
  model.serialize = common::Distribution::constant(0.0);
  make_server(model);

  std::vector<double> completion_times;
  for (int i = 0; i < 4; ++i) {
    rpc_client->call("svc", "infer", json::Value::object(),
                     [&](msg::CallResult r) {
                       ASSERT_TRUE(r.ok);
                       completion_times.push_back(loop.now());
                     });
  }
  loop.run();
  ASSERT_EQ(completion_times.size(), 4u);
  // Strictly serialized: completions ~1 s apart.
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_NEAR(completion_times[i] - completion_times[i - 1], 1.0, 1e-3);
  }
  EXPECT_EQ(server->served(), 4u);
  EXPECT_EQ(server->peak_queue(), 3u);
}

TEST_F(ServerFixture, ConcurrencyTwoHalvesMakespan) {
  ModelSpec model = noop_model();
  model.inference_floor_s = 1.0;
  model.parse = common::Distribution::constant(0.0);
  model.serialize = common::Distribution::constant(0.0);
  make_server(model, ServerConfig{.max_concurrency = 2, .max_queue = 0});

  int completed = 0;
  for (int i = 0; i < 4; ++i) {
    rpc_client->call("svc", "infer", json::Value::object(),
                     [&](msg::CallResult) { ++completed; });
  }
  loop.run();
  EXPECT_EQ(completed, 4);
  EXPECT_NEAR(loop.now(), 2.0, 0.01);  // 4 x 1 s on 2 workers
}

TEST_F(ServerFixture, BoundedQueueRejectsOverflow) {
  ModelSpec model = noop_model();
  model.inference_floor_s = 10.0;
  make_server(model, ServerConfig{.max_concurrency = 1, .max_queue = 2});

  int ok_count = 0;
  int rejected = 0;
  for (int i = 0; i < 5; ++i) {
    rpc_client->call("svc", "infer", json::Value::object(),
                     [&](msg::CallResult r) {
                       if (r.ok) {
                         ++ok_count;
                       } else {
                         EXPECT_NE(r.error.find("queue full"),
                                   std::string::npos);
                         ++rejected;
                       }
                     });
  }
  loop.run();
  EXPECT_EQ(ok_count, 3);  // 1 executing + 2 queued
  EXPECT_EQ(rejected, 2);
  EXPECT_EQ(server->rejected(), 2u);
}

TEST_F(ServerFixture, StatsReportServedAndQueue) {
  make_server(noop_model());
  rpc_client->call("svc", "infer", json::Value::object(),
                   [](msg::CallResult) {});
  loop.run();
  const auto stats = server->stats();
  EXPECT_EQ(stats.at("served").as_int(), 1);
  EXPECT_EQ(stats.at("model").as_string(), "noop");
  EXPECT_EQ(stats.at("busy").as_int(), 0);
}

TEST_F(ServerFixture, InvalidConfigRejected) {
  EXPECT_THROW(InferenceServer(loop, common::Rng(1), noop_model(),
                               ServerConfig{.max_concurrency = 0,
                                            .max_queue = 0}),
               Error);
}

// ---------------------------------------------------------------------------
// Load balancers
// ---------------------------------------------------------------------------

TEST(LoadBalancer, RoundRobinCycles) {
  RoundRobinBalancer balancer({"a", "b", "c"});
  EXPECT_EQ(balancer.pick(), "a");
  EXPECT_EQ(balancer.pick(), "b");
  EXPECT_EQ(balancer.pick(), "c");
  EXPECT_EQ(balancer.pick(), "a");
}

TEST(LoadBalancer, RandomCoversAllEndpoints) {
  RandomBalancer balancer({"a", "b", "c"}, common::Rng(4));
  std::map<std::string, int> counts;
  for (int i = 0; i < 300; ++i) ++counts[balancer.pick()];
  EXPECT_EQ(counts.size(), 3u);
  for (const auto& [endpoint, count] : counts) EXPECT_GT(count, 50);
}

TEST(LoadBalancer, LeastOutstandingAvoidsBusyEndpoint) {
  LeastOutstandingBalancer balancer({"a", "b"});
  const std::string first = balancer.pick();   // a: 1 in flight
  const std::string second = balancer.pick();  // b: 1 in flight
  EXPECT_NE(first, second);
  // Complete b's request: next pick must be b (a still busy).
  balancer.on_complete("b");
  EXPECT_EQ(balancer.pick(), "b");
  EXPECT_EQ(balancer.outstanding("a"), 1u);
  EXPECT_EQ(balancer.outstanding("b"), 1u);
}

TEST(LoadBalancer, FactoryAndValidation) {
  auto rr = make_balancer("round_robin", {"x"}, common::Rng(1));
  EXPECT_STREQ(rr->name(), "round_robin");
  auto rnd = make_balancer("random", {"x"}, common::Rng(1));
  EXPECT_STREQ(rnd->name(), "random");
  auto lo = make_balancer("least_outstanding", {"x"}, common::Rng(1));
  EXPECT_STREQ(lo->name(), "least_outstanding");
  EXPECT_THROW((void)make_balancer("psychic", {"x"}, common::Rng(1)),
               Error);
  EXPECT_THROW((void)make_balancer("random", {}, common::Rng(1)), Error);
}

// ---------------------------------------------------------------------------
// Client config
// ---------------------------------------------------------------------------

TEST(ClientConfig, JsonRoundTrip) {
  ClientConfig config;
  config.endpoints = {"svc.0", "svc.1"};
  config.requests = 1024;
  config.concurrency = 4;
  config.series = "exp2";
  config.balancer = "least_outstanding";
  config.timeout = 30.0;
  const auto restored = ClientConfig::from_json(config.to_json());
  EXPECT_EQ(restored.endpoints, config.endpoints);
  EXPECT_EQ(restored.requests, 1024u);
  EXPECT_EQ(restored.concurrency, 4u);
  EXPECT_EQ(restored.series, "exp2");
  EXPECT_EQ(restored.balancer, "least_outstanding");
  EXPECT_DOUBLE_EQ(restored.timeout, 30.0);
}

TEST(ClientConfig, DefaultsApplied) {
  const auto config = ClientConfig::from_json(json::Value::object());
  EXPECT_TRUE(config.endpoints.empty());
  EXPECT_EQ(config.requests, 16u);
  EXPECT_EQ(config.concurrency, 1u);
  EXPECT_EQ(config.balancer, "round_robin");
}

}  // namespace
