// Unit tests for the messaging layer: envelope/timing, router, RPC,
// pub/sub.

#include <gtest/gtest.h>

#include "ripple/common/error.hpp"
#include "ripple/msg/message.hpp"
#include "ripple/msg/pubsub.hpp"
#include "ripple/msg/router.hpp"
#include "ripple/msg/rpc.hpp"

namespace {

using namespace ripple;

TEST(Message, RequestFactorySetsFields) {
  const auto m = msg::Message::request("infer", "client.0", "svc.0",
                                       json::Value::object({{"x", 1}}));
  EXPECT_EQ(m.kind, msg::MessageKind::request);
  EXPECT_EQ(m.method, "infer");
  EXPECT_EQ(m.sender, "client.0");
  EXPECT_EQ(m.target, "svc.0");
  EXPECT_FALSE(m.uid.empty());
  EXPECT_GT(m.wire_size(), 96u);
}

TEST(Message, ReplySwapsAddressesAndCorrelates) {
  const auto request = msg::Message::request("m", "a", "b", json::Value());
  const auto reply = msg::Message::reply_to(request, json::Value(1));
  EXPECT_EQ(reply.kind, msg::MessageKind::reply);
  EXPECT_EQ(reply.sender, "b");
  EXPECT_EQ(reply.target, "a");
  EXPECT_EQ(reply.corr_id, request.uid);
  EXPECT_TRUE(reply.ok);

  const auto failure = msg::Message::fail_reply_to(request, "broken");
  EXPECT_FALSE(failure.ok);
  EXPECT_EQ(failure.error, "broken");
}

TEST(RequestTiming, DecomposesStamps) {
  msg::Timestamps ts;
  ts.sent = 1.0;
  ts.received = 1.2;          // 0.2 out
  ts.compute_start = 1.5;     // 0.3 queue+parse
  ts.compute_end = 3.5;       // 2.0 inference
  ts.reply_sent = 3.6;        // 0.1 serialize
  ts.reply_received = 3.9;    // 0.3 back
  const auto timing = msg::RequestTiming::from(ts);
  EXPECT_NEAR(timing.communication, 0.5, 1e-12);
  EXPECT_NEAR(timing.service, 0.4, 1e-12);
  EXPECT_NEAR(timing.inference, 2.0, 1e-12);
  EXPECT_NEAR(timing.total, 2.9, 1e-12);
  EXPECT_NEAR(timing.total,
              timing.communication + timing.service + timing.inference,
              1e-12);
}

TEST(RequestTiming, MissingStampThrows) {
  msg::Timestamps ts;
  ts.sent = 1.0;
  EXPECT_THROW((void)msg::RequestTiming::from(ts), Error);
}

TEST(Timestamps, JsonRoundTrip) {
  msg::Timestamps ts;
  ts.sent = 0.5;
  ts.reply_received = 2.25;
  const auto restored = msg::Timestamps::from_json(ts.to_json());
  EXPECT_DOUBLE_EQ(restored.sent, 0.5);
  EXPECT_DOUBLE_EQ(restored.reply_received, 2.25);
  EXPECT_DOUBLE_EQ(restored.compute_start, -1.0);
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

class RouterTest : public ::testing::Test {
 protected:
  sim::EventLoop loop;
  common::Rng rng{3};
  sim::Network net{loop, rng};
  msg::Router router{loop, net};

  void SetUp() override {
    net.register_host("h0", "z");
    net.register_host("h1", "z");
    net.set_link("z", "z",
                 sim::LinkModel{common::Distribution::constant(1e-3), 0});
  }
};

TEST_F(RouterTest, DeliversWithLinkLatencyAndStamps) {
  msg::Message received;
  router.bind("dest", "h1", [&](msg::Message m) { received = std::move(m); });
  auto m = msg::Message::request("ping", "src", "dest", json::Value());
  EXPECT_TRUE(router.send("h0", std::move(m)));
  loop.run();
  EXPECT_EQ(received.method, "ping");
  EXPECT_DOUBLE_EQ(received.ts.sent, 0.0);
  EXPECT_DOUBLE_EQ(received.ts.received, 1e-3);
  EXPECT_EQ(router.sent(), 1u);
}

TEST_F(RouterTest, UnknownTargetDropsAndReturnsFalse) {
  auto m = msg::Message::request("x", "src", "nowhere", json::Value());
  EXPECT_FALSE(router.send("h0", std::move(m)));
  EXPECT_EQ(router.dropped(), 1u);
}

TEST_F(RouterTest, UnbindWhileInFlightDropsAtArrival) {
  int handled = 0;
  router.bind("dest", "h1", [&](msg::Message) { ++handled; });
  router.send("h0",
              msg::Message::request("x", "src", "dest", json::Value()));
  router.unbind("dest");
  loop.run();
  EXPECT_EQ(handled, 0);
  EXPECT_EQ(router.dropped(), 1u);
}

TEST_F(RouterTest, RebindReplacesHandler) {
  int first = 0;
  int second = 0;
  router.bind("dest", "h1", [&](msg::Message) { ++first; });
  router.bind("dest", "h1", [&](msg::Message) { ++second; });
  router.send("h0", msg::Message::request("x", "s", "dest", json::Value()));
  loop.run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
  EXPECT_EQ(router.host_of("dest"), "h1");
  EXPECT_THROW((void)router.host_of("gone"), Error);
}

TEST_F(RouterTest, BindValidation) {
  EXPECT_THROW(router.bind("", "h0", [](msg::Message) {}), Error);
  EXPECT_THROW(router.bind("a", "unknown-host", [](msg::Message) {}),
               Error);
  EXPECT_THROW(router.bind("a", "h0", nullptr), Error);
}

// ---------------------------------------------------------------------------
// RPC
// ---------------------------------------------------------------------------

class RpcTest : public RouterTest {
 protected:
  std::unique_ptr<msg::RpcServer> server;
  std::unique_ptr<msg::RpcClient> client;

  void SetUp() override {
    RouterTest::SetUp();
    server = std::make_unique<msg::RpcServer>(router, "svc", "h0");
    client = std::make_unique<msg::RpcClient>(router, "cli", "h1");
  }
};

TEST_F(RpcTest, EchoRoundTripWithTiming) {
  server->bind_method("echo", [](std::shared_ptr<msg::Responder> r) {
    r->reply(r->request().payload);
  });
  msg::CallResult result;
  client->call("svc", "echo", json::Value::object({{"v", 7}}),
               [&](msg::CallResult r) { result = std::move(r); });
  loop.run();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.payload.at("v").as_int(), 7);
  const auto timing = result.timing();
  EXPECT_NEAR(timing.communication, 2e-3, 1e-9);  // two 1 ms hops
  EXPECT_NEAR(timing.total,
              timing.communication + timing.service + timing.inference,
              1e-12);
}

TEST_F(RpcTest, AsyncHandlerWithComputeStamps) {
  server->bind_method("slow", [this](std::shared_ptr<msg::Responder> r) {
    loop.call_after(0.5, [r] {
      r->begin_compute();
      // inference takes 2 s
      r->end_compute();
      r->reply(json::Value::object());
    });
    // note: begin/end_compute at same instant -> inference 0; use timers
  });
  // A more realistic async pattern:
  server->bind_method("compute", [this](std::shared_ptr<msg::Responder> r) {
    loop.call_after(0.1, [this, r] {
      r->begin_compute();
      loop.call_after(2.0, [r] {
        r->end_compute();
        r->reply(json::Value::object());
      });
    });
  });
  msg::CallResult result;
  client->call("svc", "compute", json::Value::object(),
               [&](msg::CallResult r) { result = std::move(r); });
  loop.run();
  ASSERT_TRUE(result.ok);
  const auto timing = result.timing();
  EXPECT_NEAR(timing.inference, 2.0, 1e-9);
  EXPECT_NEAR(timing.service, 0.1, 1e-9);  // queue before compute
}

TEST_F(RpcTest, UnknownMethodFailsGracefully) {
  msg::CallResult result;
  client->call("svc", "nope", json::Value::object(),
               [&](msg::CallResult r) { result = std::move(r); });
  loop.run();
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("unknown method"), std::string::npos);
}

TEST_F(RpcTest, UnreachableTargetFails) {
  msg::CallResult result;
  client->call("ghost", "echo", json::Value::object(),
               [&](msg::CallResult r) { result = std::move(r); });
  loop.run();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, "target unreachable");
}

TEST_F(RpcTest, TimeoutFiresOnceAndLateReplyIsDropped) {
  server->bind_method("late", [this](std::shared_ptr<msg::Responder> r) {
    loop.call_after(5.0, [r] { r->reply(json::Value::object()); });
  });
  int callbacks = 0;
  msg::CallResult result;
  client->call(
      "svc", "late", json::Value::object(),
      [&](msg::CallResult r) {
        ++callbacks;
        result = std::move(r);
      },
      /*timeout=*/1.0);
  loop.run();
  EXPECT_EQ(callbacks, 1);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, "timeout");
  EXPECT_EQ(client->timed_out(), 1u);
  EXPECT_EQ(client->late_replies(), 1u);
}

TEST_F(RpcTest, ResponderRepliesExactlyOnce) {
  server->bind_method("dup", [](std::shared_ptr<msg::Responder> r) {
    r->reply(json::Value::object());
    EXPECT_THROW(r->reply(json::Value::object()), Error);
    EXPECT_THROW(r->fail("x"), Error);
  });
  int callbacks = 0;
  client->call("svc", "dup", json::Value::object(),
               [&](msg::CallResult) { ++callbacks; });
  loop.run();
  EXPECT_EQ(callbacks, 1);
}

TEST_F(RpcTest, ManyOutstandingCallsCorrelateCorrectly) {
  server->bind_method("id", [](std::shared_ptr<msg::Responder> r) {
    r->reply(r->request().payload);
  });
  std::vector<int> answers(64, -1);
  for (int i = 0; i < 64; ++i) {
    client->call("svc", "id", json::Value::object({{"i", i}}),
                 [&, i](msg::CallResult r) {
                   ASSERT_TRUE(r.ok);
                   answers[i] = static_cast<int>(r.payload.at("i").as_int());
                 });
  }
  EXPECT_EQ(client->outstanding(), 64u);
  loop.run();
  EXPECT_EQ(client->outstanding(), 0u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(answers[i], i);
}

// ---------------------------------------------------------------------------
// PubSub
// ---------------------------------------------------------------------------

TEST(PubSub, TopicAndWildcardDelivery) {
  sim::EventLoop loop;
  msg::PubSub bus(loop);
  int topic_events = 0;
  int all_events = 0;
  bus.subscribe("state", [&](const std::string& topic, const json::Value&) {
    EXPECT_EQ(topic, "state");
    ++topic_events;
  });
  bus.subscribe_all(
      [&](const std::string&, const json::Value&) { ++all_events; });
  bus.publish("state", json::Value::object());
  bus.publish("other", json::Value::object());
  loop.run();
  EXPECT_EQ(topic_events, 1);
  EXPECT_EQ(all_events, 2);
  EXPECT_EQ(bus.published(), 2u);
}

TEST(PubSub, UnsubscribeStopsDelivery) {
  sim::EventLoop loop;
  msg::PubSub bus(loop);
  int events = 0;
  const auto id = bus.subscribe(
      "t", [&](const std::string&, const json::Value&) { ++events; });
  bus.publish("t", json::Value::object());
  loop.run();
  bus.unsubscribe(id);
  bus.publish("t", json::Value::object());
  loop.run();
  EXPECT_EQ(events, 1);
}

TEST(PubSub, PublishFromSubscriberDoesNotRecurse) {
  sim::EventLoop loop;
  msg::PubSub bus(loop);
  int depth = 0;
  int events = 0;
  bus.subscribe("t", [&](const std::string&, const json::Value&) {
    ++events;
    ASSERT_LT(events, 4);
    ++depth;
    EXPECT_EQ(depth, 1);  // no re-entrant delivery
    if (events == 1) bus.publish("t", json::Value::object());
    --depth;
  });
  bus.publish("t", json::Value::object());
  loop.run();
  EXPECT_EQ(events, 2);
}

}  // namespace
