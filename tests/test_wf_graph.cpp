// Tests for the DAG workflow engine: graph validation, frontier
// release with overlapping branches, conditional pruning with lineage
// release, dynamic expansion (including idempotent spawn under
// injected failures), hyperopt-as-a-graph, and the determinism of the
// graph event hash across reruns and scheduler shard counts.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "ripple/common/error.hpp"
#include "ripple/common/shard_executor.hpp"
#include "ripple/core/failure_coordinator.hpp"
#include "ripple/core/session.hpp"
#include "ripple/sim/failure_injector.hpp"
#include "ripple/platform/profiles.hpp"
#include "ripple/wf/graph.hpp"
#include "ripple/wf/hyperopt_graph.hpp"
#include "ripple/wf/workflow_manager.hpp"

namespace {

using namespace ripple;
using namespace ripple::core;
using namespace ripple::wf;

TaskDescription modeled(double seconds) {
  TaskDescription desc;
  desc.kind = "modeled";
  desc.cores = 1;
  desc.duration = common::Distribution::constant(seconds);
  return desc;
}

Stage task_stage(const std::string& name, double seconds,
                 std::size_t tasks = 1) {
  Stage stage;
  stage.name = name;
  for (std::size_t i = 0; i < tasks; ++i) {
    stage.tasks.push_back(modeled(seconds));
  }
  return stage;
}

class GraphTest : public ::testing::Test {
 protected:
  Session session{SessionConfig{.seed = 77}};
  Pilot* pilot = nullptr;
  std::unique_ptr<WorkflowManager> workflows;

  void SetUp() override {
    session.add_platform(platform::delta_profile(4));
    pilot = &session.submit_pilot({.platform = "delta", .nodes = 4});
    workflows = std::make_unique<WorkflowManager>(session);
  }
};

// --- validation ------------------------------------------------------------

TEST(GraphValidate, RejectsDependencyCycleWithPath) {
  Graph graph("cyclic");
  graph.add(task_stage("a", 1.0));
  graph.add(task_stage("b", 1.0));
  graph.add(task_stage("c", 1.0));
  graph.depend("a", "b");
  graph.depend("b", "c");
  graph.depend("c", "a");
  try {
    graph.validate();
    FAIL() << "expected a cycle error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("dependency cycle"), std::string::npos) << what;
    EXPECT_NE(what.find("a -> b -> c -> a"), std::string::npos) << what;
  }
}

TEST(GraphValidate, RejectsConsumedDatasetNoAncestorProduces) {
  Graph graph("orphan");
  Stage produce = task_stage("produce", 1.0);
  produce.produces = {"features"};
  graph.add(produce);
  Stage train = task_stage("train", 1.0);
  train.consumes = {"labels"};  // nobody produces this
  graph.add(train);
  graph.depend("produce", "train");
  try {
    graph.validate();
    FAIL() << "expected a missing-producer error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("consumes 'labels'"), std::string::npos) << what;
    EXPECT_NE(what.find("produce -> train"), std::string::npos) << what;
  }

  // The same dataset admitted as external (e.g. already registered
  // with the session) passes.
  graph.validate([](const std::string&) { return true; });

  // And an ancestor-produced dataset passes without the predicate.
  Graph ok("ok");
  ok.add(produce);
  Stage consume = task_stage("consume", 1.0);
  consume.consumes = {"features"};
  ok.add(consume);
  ok.depend("produce", "consume");
  ok.validate();
}

TEST(GraphValidate, ApiGuards) {
  Graph graph("guards");
  graph.add(task_stage("a", 1.0));
  EXPECT_THROW(graph.add(task_stage("a", 1.0)), Error);  // duplicate key
  EXPECT_THROW(graph.depend("a", "a"), Error);           // self-edge
  EXPECT_THROW(graph.depend("a", "missing"), Error);     // unknown node
}

TEST(GraphValidate, FromPipelineBuildsLinearChain) {
  Pipeline pipeline;
  pipeline.name = "chain";
  Stage s1 = task_stage("one", 1.0, 4);
  s1.unblock_next_after = 2;
  pipeline.stages = {s1, task_stage("two", 1.0), task_stage("two", 1.0)};

  const Graph graph = Graph::from_pipeline(pipeline);
  ASSERT_EQ(graph.nodes().size(), 3u);
  ASSERT_EQ(graph.edges().size(), 2u);
  EXPECT_EQ(graph.edges()[0].after_tasks, 2u);  // one's threshold
  EXPECT_EQ(graph.edges()[1].after_tasks, kAfterAllTasks);
  // Duplicate stage names are re-keyed but keep their reported name.
  EXPECT_EQ(graph.nodes()[2].stage.name, "two#2");
  EXPECT_EQ(graph.nodes()[2].display, "two");
}

// --- frontier execution ----------------------------------------------------

TEST_F(GraphTest, DiamondBranchesOverlap) {
  Graph graph("diamond");
  graph.add(task_stage("src", 1.0));
  graph.add(task_stage("left", 10.0));
  graph.add(task_stage("right", 10.0));
  graph.add(task_stage("sink", 1.0));
  graph.depend("src", "left");
  graph.depend("src", "right");
  graph.depend("left", "sink");
  graph.depend("right", "sink");

  GraphResult result;
  workflows->run_graph(graph, *pilot,
                       [&](const GraphResult& r) { result = r; });
  session.run();

  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.tasks_done, 4u);
  ASSERT_EQ(result.node_names.size(), 4u);
  // left and right ran concurrently: far below the 22 s (plus launch
  // overheads) their serialization would cost.
  EXPECT_LT(result.makespan, 19.0);
  // But the sink joined on BOTH branches: above one branch's 11 s.
  EXPECT_GT(result.makespan, 11.0);
  EXPECT_FALSE(result.event_log.empty());
  EXPECT_EQ(workflows->graph_results().at("diamond").event_hash,
            result.event_hash);
}

TEST_F(GraphTest, EmptyGraphRejected) {
  GraphResult result;
  EXPECT_THROW(workflows->run_graph(Graph("empty"), *pilot,
                                    [&](const GraphResult& r) { result = r; }),
               Error);
}

TEST_F(GraphTest, ConditionalPruneReleasesSubtreeLineage) {
  session.data().register_dataset("branch-input", 1e9, "archive");
  session.data().catalog().pin("branch-input", "archive");

  Graph graph("choose");
  Stage chooser = task_stage("chooser", 2.0);
  GraphNode chooser_node;
  chooser_node.stage = chooser;
  chooser_node.select = [](const NodeOutcome&) {
    return std::vector<std::string>{"win"};
  };
  graph.add(std::move(chooser_node));
  graph.add(task_stage("win", 2.0));
  Stage lose = task_stage("lose", 2.0);
  lose.consumes = {"branch-input"};
  graph.add(lose);
  Stage lose_child = task_stage("lose-child", 2.0);
  lose_child.consumes = {"branch-input"};
  graph.add(lose_child);
  graph.depend("chooser", "win", {.conditional = true});
  graph.depend("chooser", "lose", {.conditional = true});
  graph.depend("lose", "lose-child");

  GraphResult result;
  workflows->run_graph(graph, *pilot,
                       [&](const GraphResult& r) { result = r; });
  // Both losing nodes hold lineage references until the run resolves.
  EXPECT_EQ(session.data().catalog().consumers_left("branch-input"), 2u);
  session.run();

  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.nodes_pruned, 2u);  // lose + its dependent child
  EXPECT_EQ(result.node_names,
            (std::vector<std::string>{"chooser", "win"}));
  // The pruned subtree released its refs: the dataset is evictable
  // again once its explicit pin drops.
  EXPECT_EQ(session.data().catalog().consumers_left("branch-input"), 0u);
  session.data().catalog().unpin("branch-input", "archive");
  EXPECT_EQ(session.data().catalog().pins("branch-input", "archive"), 0u);
}

TEST_F(GraphTest, PruneAbandonsInFlightFrontierPrefetch) {
  // Regression: the frontier prefetch fired for a conditional successor
  // used to keep flying after the successor was pruned — the bytes
  // landed in the compute zone for a consumer that no longer existed,
  // with the source pins and store reservation held for the whole
  // transfer. A prune must abandon the in-flight speculation.
  session.data().register_dataset("pruned-input", 10e9, "archive");

  Graph graph("choose-prefetch");
  GraphNode chooser_node;
  chooser_node.stage = task_stage("chooser", 2.0);
  chooser_node.select = [](const NodeOutcome&) {
    return std::vector<std::string>{"win"};
  };
  graph.add(std::move(chooser_node));
  graph.add(task_stage("win", 2.0));
  Stage lose = task_stage("lose", 2.0);
  lose.consumes = {"pruned-input"};
  graph.add(lose);
  graph.depend("chooser", "win", {.conditional = true});
  graph.depend("chooser", "lose", {.conditional = true});

  GraphResult result;
  workflows->run_graph(graph, *pilot,
                       [&](const GraphResult& r) { result = r; });
  session.run();

  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.nodes_pruned, 1u);
  // The 8 s prefetch toward delta was still in flight when the 2 s
  // chooser pruned its consumer: it was cancelled, not landed.
  EXPECT_GE(session.data().prefetches_started(), 1u);
  EXPECT_GE(session.data().cancelled_transfers(), 1u);
  EXPECT_FALSE(session.data().available_in("pruned-input", "delta"));
  // Its source pin and destination reservation were returned.
  EXPECT_EQ(session.data().catalog().pins("pruned-input", "archive"), 0u);
  EXPECT_DOUBLE_EQ(session.data().catalog().store("delta").reserved, 0.0);
  // And the revocation is part of the deterministic event stream.
  bool saw_abandon = false;
  for (const auto& line : result.event_log) {
    if (line.find("abandon_prefetch pruned-input delta") !=
        std::string::npos) {
      saw_abandon = true;
    }
  }
  EXPECT_TRUE(saw_abandon);
}

TEST_F(GraphTest, FailureReleasesUnstartedLineage) {
  session.data().register_dataset("late-input", 1e9, "archive");

  Graph graph("failing");
  Stage bad = task_stage("bad", 1.0);
  bad.tasks[0].kind = "function";
  bad.tasks[0].payload =
      json::Value::object({{"fn", "no-such-function"}});
  graph.add(bad);
  Stage never = task_stage("never", 1.0);
  never.consumes = {"late-input"};
  graph.add(never);
  graph.depend("bad", "never");

  GraphResult result;
  workflows->run_graph(graph, *pilot,
                       [&](const GraphResult& r) { result = r; });
  EXPECT_EQ(session.data().catalog().consumers_left("late-input"), 1u);
  session.run();

  EXPECT_FALSE(result.ok);
  // 'never' never released, but its lineage refs were still dropped.
  EXPECT_EQ(session.data().catalog().consumers_left("late-input"), 0u);
}

// --- dynamic expansion -----------------------------------------------------

TEST_F(GraphTest, RunningNodeSpawnsChildren) {
  // The seed's hook runs inside session.run(), after run_graph has
  // returned the handle it captures.
  std::shared_ptr<WorkflowManager::Handle> handle;
  Graph spawned("spawned");
  GraphNode seed;
  seed.stage = task_stage("seed", 1.0);
  seed.on_complete = [&](const NodeOutcome&) {
    handle->spawn("seed", GraphNode{.stage = task_stage("child-a", 2.0)},
                  {"seed"});
    handle->spawn("seed", GraphNode{.stage = task_stage("child-b", 2.0)},
                  {"seed"});
    handle->spawn("seed", GraphNode{.stage = task_stage("collect", 1.0)},
                  {"child-a", "child-b"});
  };
  spawned.add(std::move(seed));
  GraphResult spawned_result;
  handle = workflows->run_graph(
      spawned, *pilot, [&](const GraphResult& r) { spawned_result = r; });
  session.run();

  EXPECT_TRUE(spawned_result.ok);
  EXPECT_EQ(spawned_result.nodes_spawned, 3u);
  EXPECT_EQ(spawned_result.tasks_done, 4u);
  EXPECT_EQ(spawned_result.node_names,
            (std::vector<std::string>{"seed", "child-a", "child-b",
                                      "collect"}));
  // Spawning into a finished graph is an error.
  EXPECT_TRUE(handle->finished());
  EXPECT_THROW(
      handle->spawn("seed", GraphNode{.stage = task_stage("late", 1.0)}),
      Error);
}

struct FailureRunOutcome {
  GraphResult result;
  std::size_t restarts = 0;
  std::uint64_t recovery_hash = 0;
};

/// A spawning node killed mid-task and restarted re-runs its function
/// payload — the spawn must be idempotent.
FailureRunOutcome run_spawner_under_failure() {
  Session session{SessionConfig{.seed = 31}};
  session.add_platform(platform::delta_profile(2));
  Pilot& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});
  session.tasks().set_restart_policy({.max_restarts = 3});
  WorkflowManager workflows(session);

  std::shared_ptr<WorkflowManager::Handle> handle;
  session.executor().functions().register_fn(
      "spawn-children",
      [&handle](ExecutionContext&, const json::Value&) {
        handle->spawn("spawner",
                      GraphNode{.stage = task_stage("child-a", 3.0)});
        handle->spawn("spawner",
                      GraphNode{.stage = task_stage("child-b", 3.0)});
        return json::Value::object();
      });

  Graph graph("respawn");
  Stage spawner;
  spawner.name = "spawner";
  TaskDescription task = modeled(10.0);
  task.kind = "function";
  task.payload = json::Value::object({{"fn", "spawn-children"}});
  spawner.tasks = {task};
  graph.add(Stage(spawner));

  FailureRunOutcome out;
  handle = workflows.run_graph(
      graph, pilot, [&](const GraphResult& r) { out.result = r; });

  // Kill every node mid-spawner-task; capacity returns at t=6 and the
  // restarted task re-runs its payload, re-spawning the same keys.
  auto& injector = session.failures().injector();
  for (std::size_t i = 0; i < 2; ++i) {
    const std::string id = session.cluster("delta").node(i).id();
    injector.inject_at(2.0, sim::FailureKind::node_crash, id);
    injector.inject_at(6.0, sim::FailureKind::node_restore, id);
  }
  session.run();
  out.restarts = session.tasks().restarts_total();
  out.recovery_hash = session.tasks().recovery_log_hash();
  return out;
}

TEST(GraphFailures, RestartedSpawnerDoesNotDoubleSpawn) {
  const FailureRunOutcome first = run_spawner_under_failure();
  EXPECT_TRUE(first.result.ok);
  EXPECT_GE(first.restarts, 1u);
  // The payload ran at least twice, but only two children exist.
  EXPECT_EQ(first.result.nodes_spawned, 2u);
  EXPECT_EQ(first.result.node_names,
            (std::vector<std::string>{"spawner", "child-a", "child-b"}));
  EXPECT_EQ(first.result.tasks_done, 3u);

  // Same seed, same injected failures: bit-identical recovery log and
  // graph event stream.
  const FailureRunOutcome second = run_spawner_under_failure();
  EXPECT_EQ(first.recovery_hash, second.recovery_hash);
  EXPECT_EQ(first.result.event_hash, second.result.event_hash);
  EXPECT_EQ(first.result.event_log, second.result.event_log);
}

// --- hyperopt as a dynamically-spawned graph -------------------------------

HyperoptGraph::Report run_hyperopt(std::uint64_t seed) {
  Session session{SessionConfig{.seed = seed}};
  session.add_platform(platform::delta_profile(4));
  Pilot& pilot = session.submit_pilot({.platform = "delta", .nodes = 4});
  WorkflowManager workflows(session);

  HyperoptGraph::Config config;
  config.name = "hpo";
  config.space = {ParamSpec::log_real("lr", 1e-5, 1e-2),
                  ParamSpec::real("dropout", 0.0, 0.5)};
  config.initial = 8;
  config.eta = 2;
  config.make_task = [](const Trial& trial) {
    // Budget doubles per rung (successive-halving semantics).
    return modeled(5.0 * std::pow(2.0, static_cast<double>(trial.rung)));
  };
  config.objective = [](const Trial& trial, const NodeOutcome& outcome) {
    if (!outcome.ok) return 1e9;
    const double lr =
        trial.params.get_or("lr", json::Value(1e-3)).as_double();
    const double dropout =
        trial.params.get_or("dropout", json::Value(0.0)).as_double();
    return std::abs(std::log10(lr) + 3.5) + dropout;
  };

  HyperoptGraph::Report report;
  HyperoptGraph::run(workflows, pilot, config,
                     session.runtime().rng().fork("hpo"),
                     [&](const HyperoptGraph::Report& r) { report = r; });
  session.run();
  return report;
}

TEST(GraphHyperopt, RunsAsDynamicallySpawnedGraph) {
  const HyperoptGraph::Report report = run_hyperopt(101);
  EXPECT_TRUE(report.ok);
  EXPECT_TRUE(report.graph.ok);
  // 8 -> 4 -> 2 -> 1 configs across four rungs.
  EXPECT_EQ(report.rungs, 4u);
  EXPECT_EQ(report.trials.size(), 15u);
  // 15 trial nodes + 4 rung collectors, all spawned at runtime.
  EXPECT_EQ(report.graph.nodes_spawned, 19u);
  EXPECT_EQ(report.graph.tasks_done, 16u);  // 15 trials + seed task
  EXPECT_TRUE(report.best.completed);
  EXPECT_LT(report.best.value, 2.0);  // the bowl minimum is near 0

  // Same seed: identical expansion, identical event stream.
  const HyperoptGraph::Report rerun = run_hyperopt(101);
  EXPECT_EQ(report.graph.event_hash, rerun.graph.event_hash);
  EXPECT_EQ(report.best.value, rerun.best.value);
}

// --- determinism across reruns and shard counts ----------------------------

GraphResult run_sharded_diamond(std::size_t shards) {
  common::ShardExecutor exec(shards);
  Session session{SessionConfig{.seed = 67}};
  session.add_platform(platform::delta_profile(4));
  Pilot& pilot = session.submit_pilot({.platform = "delta", .nodes = 4});
  if (shards > 1) session.scheduler().set_shard_executor(&exec);
  WorkflowManager workflows(session);

  Graph graph("sharded-diamond");
  graph.add(task_stage("src", 1.0, 2));
  graph.add(task_stage("left", 8.0, 3));
  graph.add(task_stage("right", 6.0, 3));
  graph.add(task_stage("sink", 1.0));
  graph.depend("src", "left");
  graph.depend("src", "right");
  graph.depend("left", "sink");
  graph.depend("right", "sink");

  GraphResult result;
  workflows.run_graph(graph, pilot,
                      [&](const GraphResult& r) { result = r; });
  session.run();
  return result;
}

TEST(GraphDeterminism, EventHashBitIdenticalAcrossRerunsAndShards) {
  const GraphResult one = run_sharded_diamond(1);
  const GraphResult one_again = run_sharded_diamond(1);
  const GraphResult four = run_sharded_diamond(4);

  EXPECT_TRUE(one.ok);
  EXPECT_EQ(one.event_hash, one_again.event_hash);
  EXPECT_EQ(one.event_log, one_again.event_log);
  EXPECT_EQ(one.event_hash, four.event_hash);
  EXPECT_EQ(one.event_log, four.event_log);
  EXPECT_EQ(one.makespan, four.makespan);
}

}  // namespace
