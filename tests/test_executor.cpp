// Tests for the executor abstractions: payload/program/function
// registries, the built-in payloads, and execution contexts.

#include <gtest/gtest.h>

#include "ripple/common/error.hpp"
#include "ripple/core/executor.hpp"
#include "ripple/core/runtime.hpp"
#include "ripple/platform/cluster.hpp"
#include "ripple/platform/profiles.hpp"

namespace {

using namespace ripple;
using namespace ripple::core;

class ExecutorTest : public ::testing::Test {
 protected:
  Runtime runtime{31};
  Executor executor{runtime};
};

TEST_F(ExecutorTest, BuiltinPayloadKindsRegistered) {
  EXPECT_TRUE(executor.payloads().has("modeled"));
  EXPECT_TRUE(executor.payloads().has("function"));
  EXPECT_FALSE(executor.payloads().has("quantum"));
  TaskDescription desc;
  desc.kind = "quantum";
  EXPECT_THROW((void)executor.payloads().create(desc), Error);
}

TEST_F(ExecutorTest, ModeledPayloadCompletesAfterSampledDuration) {
  runtime.network().register_host("h", "z");
  TaskDescription desc;
  desc.kind = "modeled";
  desc.duration = common::Distribution::constant(3.5);
  auto payload = executor.payloads().create(desc);
  auto ctx = executor.make_context("task.t", "h", desc.payload);

  double finished_at = -1;
  json::Value result;
  payload->run(
      *std::make_unique<ExecutionContext>(std::move(ctx)).get(),
      [&](json::Value r) {
        finished_at = runtime.loop().now();
        result = std::move(r);
      },
      [](const std::string&) { FAIL() << "should not fail"; });
  // Note: context must outlive run's async completion; for the modeled
  // payload the callback captures everything it needs.
  runtime.loop().run();
  EXPECT_DOUBLE_EQ(finished_at, 3.5);
  EXPECT_DOUBLE_EQ(result.at("runtime").as_double(), 3.5);
}

TEST_F(ExecutorTest, FunctionRegistryDispatch) {
  executor.functions().register_fn(
      "double", [](ExecutionContext&, const json::Value& args) {
        return json::Value(args.at("x").as_double() * 2.0);
      });
  EXPECT_TRUE(executor.functions().has("double"));
  EXPECT_FALSE(executor.functions().has("triple"));
  EXPECT_THROW((void)executor.functions().get("triple"), Error);
  EXPECT_THROW(executor.functions().register_fn("bad", nullptr), Error);

  runtime.network().register_host("h", "z");
  ExecutionContext ctx = executor.make_context("t", "h", json::Value());
  const auto result = executor.functions().get("double")(
      ctx, json::Value::object({{"x", 21}}));
  EXPECT_DOUBLE_EQ(result.as_double(), 42.0);
}

TEST_F(ExecutorTest, ContextCarriesForkedRngAndConfig) {
  runtime.network().register_host("h", "z");
  auto ctx_a = executor.make_context(
      "unit.a", "h", json::Value::object({{"k", 1}}));
  auto ctx_b = executor.make_context("unit.b", "h", json::Value::object());
  EXPECT_EQ(ctx_a.uid, "unit.a");
  EXPECT_EQ(ctx_a.host, "h");
  EXPECT_EQ(ctx_a.config.at("k").as_int(), 1);
  // Different units get decorrelated random streams.
  EXPECT_NE(ctx_a.rng.uniform(0, 1), ctx_b.rng.uniform(0, 1));
  EXPECT_EQ(ctx_a.data, nullptr);
}

TEST_F(ExecutorTest, ProgramRegistryValidation) {
  EXPECT_FALSE(executor.programs().has("inference"));  // ml not installed
  ServiceDescription desc;
  desc.program = "inference";
  EXPECT_THROW((void)executor.programs().create(desc), Error);

  struct NullProgram final : ServiceProgram {
    void init(ExecutionContext&, DoneFn done, FailFn) override { done(); }
    void bind(msg::RpcServer&) override {}
  };
  executor.programs().register_factory(
      "null", [](const ServiceDescription&) {
        return std::make_unique<NullProgram>();
      });
  desc.program = "null";
  auto program = executor.programs().create(desc);
  EXPECT_NE(program, nullptr);
  EXPECT_EQ(program->outstanding(), 0u);
  EXPECT_TRUE(program->stats().is_object());
}

TEST_F(ExecutorTest, LaunchCountsAndDelegatesToCluster) {
  platform::Cluster cluster(runtime.loop(), runtime.network(),
                            platform::delta_profile(1), common::Rng(3));
  double launched_after = -1;
  executor.launch(cluster, 0,
                  [&](sim::Duration d) { launched_after = d; });
  runtime.loop().run();
  EXPECT_GT(launched_after, 0.0);
  EXPECT_EQ(executor.launches(), 1u);
  EXPECT_EQ(cluster.launcher().completed(), 1u);
}

}  // namespace
