// Tests for the metrics layer: registry (BT/RT/IT series), timeline,
// table/CSV reporting and the sliding-window quantile accumulator.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <utility>

#include "ripple/common/error.hpp"
#include "ripple/common/json.hpp"
#include "ripple/common/statistics.hpp"
#include "ripple/metrics/chrome_trace.hpp"
#include "ripple/metrics/counters.hpp"
#include "ripple/metrics/critical_path.hpp"
#include "ripple/metrics/registry.hpp"
#include "ripple/metrics/report.hpp"
#include "ripple/metrics/timeline.hpp"
#include "ripple/metrics/tracer.hpp"
#include "ripple/metrics/window_quantile.hpp"

namespace {

using namespace ripple;
using namespace ripple::metrics;

msg::RequestTiming timing(double comm, double service, double inference) {
  msg::RequestTiming t;
  t.communication = comm;
  t.service = service;
  t.inference = inference;
  t.total = comm + service + inference;
  return t;
}

TEST(Registry, BootstrapComponents) {
  Registry registry;
  registry.add_bootstrap({"svc.0", 2.0, 30.0, 0.2, 4});
  registry.add_bootstrap({"svc.1", 2.4, 34.0, 0.3, 4});
  EXPECT_EQ(registry.bootstraps().size(), 2u);
  EXPECT_NEAR(registry.bootstrap_component("launch").mean(), 2.2, 1e-12);
  EXPECT_NEAR(registry.bootstrap_component("init").mean(), 32.0, 1e-12);
  EXPECT_NEAR(registry.bootstrap_component("publish").mean(), 0.25, 1e-12);
  EXPECT_NEAR(registry.bootstrap_component("total").mean(), 34.45, 1e-12);
  EXPECT_THROW((void)registry.bootstrap_component("warp"), Error);
}

TEST(Registry, RequestSeriesAggregation) {
  Registry registry;
  registry.add_request("exp2", timing(1e-4, 2e-5, 1e-6));
  registry.add_request("exp2", timing(1.2e-4, 2.2e-5, 1e-6));
  registry.add_request("exp3", timing(1e-3, 1e-2, 4.5));
  EXPECT_TRUE(registry.has_series("exp2"));
  EXPECT_FALSE(registry.has_series("exp9"));
  EXPECT_EQ(registry.series("exp2").count(), 2u);
  EXPECT_EQ(registry.series("exp3").count(), 1u);
  EXPECT_NEAR(registry.series("exp2").communication.mean(), 1.1e-4, 1e-12);
  EXPECT_EQ(registry.series_names(),
            (std::vector<std::string>{"exp2", "exp3"}));
  EXPECT_THROW((void)registry.series("exp9"), Error);
}

TEST(Registry, DurationSeriesAndClear) {
  Registry registry;
  registry.add_duration("stage.one", 10.0);
  registry.add_duration("stage.one", 20.0);
  EXPECT_TRUE(registry.has_durations("stage.one"));
  EXPECT_DOUBLE_EQ(registry.durations("stage.one").mean(), 15.0);
  EXPECT_THROW((void)registry.durations("stage.two"), Error);
  registry.clear();
  EXPECT_FALSE(registry.has_durations("stage.one"));
  EXPECT_TRUE(registry.bootstraps().empty());
}

TEST(Registry, JsonExportShape) {
  Registry registry;
  registry.add_bootstrap({"svc.0", 2.0, 30.0, 0.2, 1});
  registry.add_request("rt", timing(1, 2, 3));
  registry.add_duration("d", 5.0);
  const auto j = registry.to_json();
  EXPECT_EQ(j.at("bootstrap").at("count").as_int(), 1);
  EXPECT_TRUE(j.at("requests").contains("rt"));
  EXPECT_DOUBLE_EQ(
      j.at("requests").at("rt").at("total").at("mean").as_double(), 6.0);
  EXPECT_TRUE(j.at("durations").contains("d"));
}

TEST(Timeline, RecordsAndQueries) {
  sim::EventLoop loop;
  msg::PubSub bus(loop);
  Timeline timeline(bus);
  timeline.record({"task.0", "task", "RUNNING", 5.0});
  timeline.record({"task.0", "task", "DONE", 8.0});
  timeline.record({"task.1", "task", "RUNNING", 6.0});
  EXPECT_DOUBLE_EQ(timeline.state_time("task.0", "RUNNING"), 5.0);
  EXPECT_DOUBLE_EQ(timeline.duration("task.0", "RUNNING", "DONE"), 3.0);
  EXPECT_DOUBLE_EQ(timeline.state_time("task.9", "RUNNING"), -1.0);
  EXPECT_THROW((void)timeline.duration("task.1", "RUNNING", "DONE"), Error);
  EXPECT_EQ(timeline.count("task", "RUNNING"), 2u);
  EXPECT_EQ(timeline.entities_in("task", "RUNNING"),
            (std::vector<std::string>{"task.0", "task.1"}));
  timeline.clear();
  EXPECT_TRUE(timeline.records().empty());
}

TEST(Timeline, FirstEntryWins) {
  sim::EventLoop loop;
  msg::PubSub bus(loop);
  Timeline timeline(bus);
  timeline.record({"svc.0", "service", "SCHEDULING", 1.0});
  timeline.record({"svc.0", "service", "SCHEDULING", 9.0});  // restart
  EXPECT_DOUBLE_EQ(timeline.state_time("svc.0", "SCHEDULING"), 1.0);
  EXPECT_EQ(timeline.records().size(), 2u);  // both kept in the log
}

TEST(Timeline, ReentryHistoryIsKept) {
  // Regression: restarted tasks enter RUNNING more than once; the
  // first-entry index used to be the only record queryable.
  sim::EventLoop loop;
  msg::PubSub bus(loop);
  Timeline timeline(bus);
  timeline.record({"task.0", "task", "RUNNING", 5.0});
  timeline.record({"task.0", "task", "RUNNING", 9.0});  // after a crash
  EXPECT_DOUBLE_EQ(timeline.state_time("task.0", "RUNNING"), 5.0);
  EXPECT_DOUBLE_EQ(timeline.last_state_time("task.0", "RUNNING"), 9.0);
  EXPECT_EQ(timeline.entry_count("task.0", "RUNNING"), 2u);
  EXPECT_EQ(timeline.state_times("task.0", "RUNNING"),
            (std::vector<double>{5.0, 9.0}));
  EXPECT_TRUE(timeline.state_times("task.0", "DONE").empty());
  EXPECT_DOUBLE_EQ(timeline.last_state_time("task.0", "DONE"), -1.0);
  EXPECT_EQ(timeline.entry_count("task.9", "RUNNING"), 0u);
}

TEST(Timeline, SubscribesToStateTopic) {
  sim::EventLoop loop;
  msg::PubSub bus(loop);
  Timeline timeline(bus);
  json::Value event = json::Value::object();
  event.set("kind", "task");
  event.set("uid", "task.7");
  event.set("state", "DONE");
  event.set("time", 3.25);
  bus.publish("state", event);
  loop.run();
  EXPECT_DOUBLE_EQ(timeline.state_time("task.7", "DONE"), 3.25);
}

TEST(Table, AlignmentAndCsv) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22222"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);

  const std::string csv = table.to_csv();
  EXPECT_EQ(csv, "name,value\nalpha,1\nb,22222\n");
  EXPECT_THROW(table.add_row({"only-one-cell"}), Error);
  EXPECT_THROW(Table({}), Error);
}

TEST(Table, CsvEscaping) {
  Table table({"a"});
  table.add_row({"with,comma"});
  table.add_row({"with\"quote"});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, WriteCsvToDisk) {
  Table table({"x", "y"});
  table.add_row_values({1.5, 2.5}, 1);
  const std::string path = "/tmp/ripple_test_table.csv";
  table.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1.5,2.5");
  std::remove(path.c_str());
  EXPECT_THROW(table.write_csv("/nonexistent-dir/x.csv"), Error);
}

// ---------------------------------------------------------------------------
// WindowQuantile: the SLO autoscaler's latency window
// ---------------------------------------------------------------------------

TEST(WindowQuantile, ExactQuantilesOnSmallWindows) {
  // Quantiles over a small window must match common::Summary exactly
  // (same linear-interpolation convention), including the interpolated
  // positions between samples.
  WindowQuantile window(100.0);
  common::Summary reference;
  const std::vector<double> values = {5.0, 1.0, 9.0, 3.0, 7.0};
  double t = 0.0;
  for (const double v : values) {
    window.add(t, v);
    reference.add(v);
    t += 1.0;
  }
  EXPECT_EQ(window.count(t), values.size());
  for (const double q : {0.0, 0.25, 0.5, 0.75, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(window.quantile(t, q), reference.quantile(q)) << q;
  }
  // A single live sample is every quantile.
  WindowQuantile single(10.0);
  single.add(0.0, 42.0);
  EXPECT_DOUBLE_EQ(single.quantile(0.0, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(single.quantile(0.0, 0.95), 42.0);
}

TEST(WindowQuantile, EvictsExpiredSamples) {
  WindowQuantile window(10.0);
  window.add(0.0, 100.0);
  window.add(5.0, 1.0);
  // Both alive: the old outlier dominates the p95.
  EXPECT_EQ(window.count(9.0), 2u);
  EXPECT_GT(window.quantile(9.0, 0.95), 90.0);
  // A sample stamped at t stays live through now == t + window
  // (inclusive boundary) and is gone just after.
  EXPECT_EQ(window.count(10.0), 2u);
  EXPECT_EQ(window.count(10.5), 1u);
  EXPECT_DOUBLE_EQ(window.quantile(10.5, 0.95), 1.0);
  // Everything expires eventually; an empty window throws (callers use
  // count() for the no-signal sentinel).
  EXPECT_EQ(window.count(20.0), 0u);
  EXPECT_THROW((void)window.quantile(20.0, 0.5), Error);
  // collect() appends only live values.
  window.add(21.0, 2.0);
  window.add(22.0, 3.0);
  std::vector<double> live;
  window.collect(31.5, live);
  EXPECT_EQ(live, (std::vector<double>{3.0}));
}

TEST(WindowQuantile, MonotoneClockEnforced) {
  // Event-loop time never goes backwards; the deque eviction depends on
  // it, so a regressing timestamp is a caller bug worth throwing at.
  WindowQuantile window(10.0);
  window.add(5.0, 1.0);
  window.add(5.0, 2.0);  // equal timestamps are fine (same-time events)
  EXPECT_THROW(window.add(4.999, 3.0), Error);
  // clear() resets the monotonicity guard along with the samples.
  window.clear();
  EXPECT_EQ(window.count(100.0), 0u);
  window.add(0.0, 7.0);
  EXPECT_DOUBLE_EQ(window.quantile(0.0, 0.5), 7.0);
  // Invalid construction and queries.
  EXPECT_THROW(WindowQuantile(0.0), Error);
  EXPECT_THROW((void)window.quantile(0.0, 1.5), Error);
}

// ---------------------------------------------------------------------------
// Tracer: deterministic sim-time spans
// ---------------------------------------------------------------------------

TEST(Tracer, DisabledIsInert) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.begin("run", "compute", "task.0", 1.0), 0u);
  tracer.end(0, 2.0);
  tracer.arg(0, "k", "v");
  tracer.instant("mark", "task", "task.0", 1.0);
  (void)tracer.complete("run", "compute", "task.0", 1.0, 2.0);
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_EQ(tracer.open_spans(), 0u);
}

TEST(Tracer, NestedSpansCarryParentAndArgs) {
  Tracer tracer;
  tracer.set_enabled(true);
  const SpanId root = tracer.begin("task", "task", "task.0", 1.0);
  ASSERT_NE(root, 0u);
  const SpanId child =
      tracer.begin("run", "compute", "task.0", 2.0, root, {{"node", "n0"}});
  tracer.arg(child, "attempt", "1");
  EXPECT_EQ(tracer.open_spans(), 2u);
  tracer.end(child, 5.0);
  tracer.end(root, 6.0);
  EXPECT_EQ(tracer.open_spans(), 0u);
  ASSERT_EQ(tracer.spans().size(), 2u);
  const Span& r = tracer.spans()[0];
  const Span& c = tracer.spans()[1];
  EXPECT_EQ(r.parent, 0u);
  EXPECT_DOUBLE_EQ(r.end, 6.0);
  EXPECT_EQ(c.parent, root);
  EXPECT_DOUBLE_EQ(c.begin, 2.0);
  EXPECT_DOUBLE_EQ(c.end, 5.0);
  ASSERT_EQ(c.args.size(), 2u);
  EXPECT_EQ(c.args[0], (std::pair<std::string, std::string>{"node", "n0"}));
  EXPECT_EQ(c.args[1],
            (std::pair<std::string, std::string>{"attempt", "1"}));
  // Unknown ids are tolerated (span may predate enabling).
  tracer.end(0xdeadbeef, 7.0);
  tracer.arg(0xdeadbeef, "k", "v");
  EXPECT_EQ(tracer.spans().size(), 2u);
}

TEST(Tracer, HashFingerprintsContent) {
  const auto build = [](const char* arg_value) {
    auto tracer = std::make_unique<Tracer>();
    tracer->set_enabled(true);
    const SpanId id =
        tracer->begin("run", "compute", "task.0", 1.0, 0, {{"k", arg_value}});
    tracer->end(id, 2.0);
    tracer->instant("mark", "task", "task.0", 1.5);
    return tracer;
  };
  const auto a = build("x");
  const auto b = build("x");
  const auto c = build("y");
  EXPECT_EQ(a->span_log_hash(), b->span_log_hash());
  EXPECT_NE(a->span_log_hash(), c->span_log_hash());
  const std::uint64_t before = a->span_log_hash();
  a->clear();
  EXPECT_TRUE(a->spans().empty());
  EXPECT_NE(a->span_log_hash(), before);
}

TEST(Tracer, LanesCommitInMergeKeyOrder) {
  // Lane records written out of order across two lanes must land in the
  // log in (time, sequence, shard) order — the ShardExecutor contract.
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.begin_lanes(2);
  tracer.lane_complete(1, common::MergeKey{2.0, 0, 1}, "c", "xfer", "l3",
                       2.0, 2.5);
  tracer.lane_complete(0, common::MergeKey{1.0, 1, 0}, "b", "xfer", "l2",
                       1.0, 1.5);
  tracer.lane_complete(0, common::MergeKey{1.0, 0, 0}, "a", "xfer", "l1",
                       1.0, 1.2);
  tracer.commit_lanes();
  ASSERT_EQ(tracer.spans().size(), 3u);
  EXPECT_EQ(tracer.spans()[0].name, "a");
  EXPECT_EQ(tracer.spans()[1].name, "b");
  EXPECT_EQ(tracer.spans()[2].name, "c");
}

// ---------------------------------------------------------------------------
// Counters: monotonic counters, gauges, sampling tick
// ---------------------------------------------------------------------------

TEST(Counters, DisabledIsInert) {
  Counters counters;
  counters.add("task.done");
  counters.set_value("ml.batch_fill", 8.0);
  counters.sample(1.0);
  EXPECT_EQ(counters.value("task.done"), 0.0);
  EXPECT_TRUE(counters.samples().empty());
}

TEST(Counters, AddSetAndSample) {
  Counters counters;
  counters.set_enabled(true);
  counters.add("task.done");
  counters.add("task.done", 2.0);
  counters.set_value("ml.batch_fill", 8.0);
  double depth = 3.0;
  counters.register_gauge("loop.pending", [&depth] { return depth; });
  counters.sample(1.0);
  depth = 5.0;
  counters.sample(2.0);
  EXPECT_DOUBLE_EQ(counters.value("task.done"), 3.0);
  EXPECT_DOUBLE_EQ(counters.value("ml.batch_fill"), 8.0);
  EXPECT_DOUBLE_EQ(counters.value("never.touched"), 0.0);
  // Each sample snapshots two values plus the gauge.
  ASSERT_EQ(counters.samples().size(), 6u);
  const std::uint64_t hash = counters.sample_log_hash();
  counters.sample(3.0);
  EXPECT_NE(counters.sample_log_hash(), hash);
}

TEST(Counters, SamplingTickDrainsWithTheLoop) {
  // The tick re-arms only while the loop has other pending events, so
  // an enabled session drains instead of spinning on its telemetry.
  sim::EventLoop loop;
  Counters counters;
  counters.set_enabled(true);
  counters.register_gauge("loop.pending",
                          [&loop] { return static_cast<double>(loop.pending()); });
  loop.call_after(2.5, [] {});
  counters.arm_sampling(loop, 1.0);
  loop.run();
  EXPECT_FALSE(counters.samples().empty());
  // The loop drained: at most one interval past the last workload event.
  EXPECT_LE(loop.now(), 3.5 + 1e-9);
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

TEST(ChromeTrace, ShapeAndJsonRoundTrip) {
  Tracer tracer;
  tracer.set_enabled(true);
  const SpanId root = tracer.begin("task", "task", "task.0", 0.0);
  const SpanId run = tracer.begin("run", "compute", "task.0", 1.0, root,
                                  {{"node", "n0"}});
  tracer.end(run, 3.0);
  tracer.end(root, 4.0);
  const SpanId open = tracer.begin("queue-wait", "queue", "task.1", 2.0);
  (void)open;  // deliberately left open: export clamps it

  Counters counters;
  counters.set_enabled(true);
  counters.add("task.done");
  counters.sample(4.0);

  const json::Value doc = chrome_trace_json(tracer, &counters);
  const auto& events = doc.at("traceEvents");
  // 3 thread-name metadata events (task:task.0, compute:task.0,
  // queue:task.1), 3 span events, 1 counter sample.
  ASSERT_EQ(events.size(), 7u);
  std::size_t spans = 0;
  std::size_t meta = 0;
  std::size_t samples = 0;
  bool saw_clamped_open = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& event = events.at(i);
    const std::string ph = event.at("ph").as_string();
    if (ph == "X") {
      ++spans;
      EXPECT_GE(event.at("dur").as_double(), 0.0);
      if (event.at("args").contains("open")) saw_clamped_open = true;
    } else if (ph == "M") {
      ++meta;
    } else if (ph == "C") {
      ++samples;
    }
  }
  EXPECT_EQ(spans, 3u);
  EXPECT_EQ(meta, 3u);
  EXPECT_EQ(samples, 1u);
  EXPECT_TRUE(saw_clamped_open);

  // The artifact contract: dump() text parses back to the same value.
  EXPECT_EQ(json::Value::parse(doc.dump()), doc);
}

// ---------------------------------------------------------------------------
// Critical-path attribution
// ---------------------------------------------------------------------------

TEST(CriticalPath, BucketsPartitionTheWindowExactly) {
  // Two tasks chained back-to-back; phase spans overlap inside task A
  // (stage-in overlapping queue-wait) so the priority sweep is
  // exercised, and the buckets must still partition [0, 20] exactly.
  Tracer tracer;
  tracer.set_enabled(true);
  const SpanId a = tracer.begin("t", "task", "task.a", 0.0);
  tracer.end(tracer.begin("queue-wait", "queue", "task.a", 0.0, a), 4.0);
  tracer.end(tracer.begin("stage-in", "data", "task.a", 3.0, a), 6.0);
  tracer.end(tracer.begin("run", "compute", "task.a", 6.0, a), 10.0);
  tracer.end(a, 10.0);
  const SpanId b = tracer.begin("t", "task", "task.b", 8.0);
  tracer.end(tracer.begin("queue-wait", "queue", "task.b", 8.0, b), 12.0);
  tracer.end(tracer.begin("run", "compute", "task.b", 12.0, b), 20.0);
  tracer.end(b, 20.0);

  const Breakdown breakdown = critical_path(tracer, 0.0, 20.0);
  // Backward walk: task.b owns [8, 20] (queue 4 s, compute 8 s);
  // task.a owns [0, 8] (queue 3 s, data 3 s — data outranks the
  // overlapped queue tail — compute 2 s).
  EXPECT_EQ(breakdown.path,
            (std::vector<std::string>{"task.a", "task.b"}));
  EXPECT_NEAR(breakdown.queue_wait, 7.0, 1e-9);
  EXPECT_NEAR(breakdown.data_wait, 3.0, 1e-9);
  EXPECT_NEAR(breakdown.compute, 10.0, 1e-9);
  EXPECT_NEAR(breakdown.recovery, 0.0, 1e-9);
  EXPECT_NEAR(breakdown.other, 0.0, 1e-9);
  EXPECT_NEAR(breakdown.total(), 20.0, 1e-9);

  const Table table = breakdown.table();
  EXPECT_EQ(table.rows(), 6u);  // four buckets + other + total
}

TEST(CriticalPath, UncoveredTimeLandsInOther) {
  Tracer tracer;
  tracer.set_enabled(true);
  const SpanId a = tracer.begin("t", "task", "task.a", 2.0);
  tracer.end(tracer.begin("run", "compute", "task.a", 2.0, a), 5.0);
  tracer.end(a, 5.0);
  // Window [0, 8]: [0,2) has no task (idle before), (5,8] idle after.
  const Breakdown breakdown = critical_path(tracer, 0.0, 8.0);
  EXPECT_NEAR(breakdown.compute, 3.0, 1e-9);
  EXPECT_NEAR(breakdown.other, 5.0, 1e-9);
  EXPECT_NEAR(breakdown.total(), 8.0, 1e-9);
  // An empty log is all "other".
  Tracer empty;
  const Breakdown none = critical_path(empty, 0.0, 4.0);
  EXPECT_NEAR(none.other, 4.0, 1e-9);
  EXPECT_TRUE(none.path.empty());
}

TEST(Report, MeanPmStdAndBanner) {
  common::Summary summary;
  EXPECT_EQ(mean_pm_std(summary), "n/a");
  summary.add(1.0);
  summary.add(3.0);
  const std::string text = mean_pm_std(summary);
  EXPECT_NE(text.find("2.00 s"), std::string::npos);
  EXPECT_NE(text.find("+/-"), std::string::npos);
  EXPECT_EQ(banner("T"), "\n== T ==\n");
}

}  // namespace
