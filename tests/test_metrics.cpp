// Tests for the metrics layer: registry (BT/RT/IT series), timeline,
// table/CSV reporting and the sliding-window quantile accumulator.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "ripple/common/error.hpp"
#include "ripple/common/statistics.hpp"
#include "ripple/metrics/registry.hpp"
#include "ripple/metrics/report.hpp"
#include "ripple/metrics/timeline.hpp"
#include "ripple/metrics/window_quantile.hpp"

namespace {

using namespace ripple;
using namespace ripple::metrics;

msg::RequestTiming timing(double comm, double service, double inference) {
  msg::RequestTiming t;
  t.communication = comm;
  t.service = service;
  t.inference = inference;
  t.total = comm + service + inference;
  return t;
}

TEST(Registry, BootstrapComponents) {
  Registry registry;
  registry.add_bootstrap({"svc.0", 2.0, 30.0, 0.2, 4});
  registry.add_bootstrap({"svc.1", 2.4, 34.0, 0.3, 4});
  EXPECT_EQ(registry.bootstraps().size(), 2u);
  EXPECT_NEAR(registry.bootstrap_component("launch").mean(), 2.2, 1e-12);
  EXPECT_NEAR(registry.bootstrap_component("init").mean(), 32.0, 1e-12);
  EXPECT_NEAR(registry.bootstrap_component("publish").mean(), 0.25, 1e-12);
  EXPECT_NEAR(registry.bootstrap_component("total").mean(), 34.45, 1e-12);
  EXPECT_THROW((void)registry.bootstrap_component("warp"), Error);
}

TEST(Registry, RequestSeriesAggregation) {
  Registry registry;
  registry.add_request("exp2", timing(1e-4, 2e-5, 1e-6));
  registry.add_request("exp2", timing(1.2e-4, 2.2e-5, 1e-6));
  registry.add_request("exp3", timing(1e-3, 1e-2, 4.5));
  EXPECT_TRUE(registry.has_series("exp2"));
  EXPECT_FALSE(registry.has_series("exp9"));
  EXPECT_EQ(registry.series("exp2").count(), 2u);
  EXPECT_EQ(registry.series("exp3").count(), 1u);
  EXPECT_NEAR(registry.series("exp2").communication.mean(), 1.1e-4, 1e-12);
  EXPECT_EQ(registry.series_names(),
            (std::vector<std::string>{"exp2", "exp3"}));
  EXPECT_THROW((void)registry.series("exp9"), Error);
}

TEST(Registry, DurationSeriesAndClear) {
  Registry registry;
  registry.add_duration("stage.one", 10.0);
  registry.add_duration("stage.one", 20.0);
  EXPECT_TRUE(registry.has_durations("stage.one"));
  EXPECT_DOUBLE_EQ(registry.durations("stage.one").mean(), 15.0);
  EXPECT_THROW((void)registry.durations("stage.two"), Error);
  registry.clear();
  EXPECT_FALSE(registry.has_durations("stage.one"));
  EXPECT_TRUE(registry.bootstraps().empty());
}

TEST(Registry, JsonExportShape) {
  Registry registry;
  registry.add_bootstrap({"svc.0", 2.0, 30.0, 0.2, 1});
  registry.add_request("rt", timing(1, 2, 3));
  registry.add_duration("d", 5.0);
  const auto j = registry.to_json();
  EXPECT_EQ(j.at("bootstrap").at("count").as_int(), 1);
  EXPECT_TRUE(j.at("requests").contains("rt"));
  EXPECT_DOUBLE_EQ(
      j.at("requests").at("rt").at("total").at("mean").as_double(), 6.0);
  EXPECT_TRUE(j.at("durations").contains("d"));
}

TEST(Timeline, RecordsAndQueries) {
  sim::EventLoop loop;
  msg::PubSub bus(loop);
  Timeline timeline(bus);
  timeline.record({"task.0", "task", "RUNNING", 5.0});
  timeline.record({"task.0", "task", "DONE", 8.0});
  timeline.record({"task.1", "task", "RUNNING", 6.0});
  EXPECT_DOUBLE_EQ(timeline.state_time("task.0", "RUNNING"), 5.0);
  EXPECT_DOUBLE_EQ(timeline.duration("task.0", "RUNNING", "DONE"), 3.0);
  EXPECT_DOUBLE_EQ(timeline.state_time("task.9", "RUNNING"), -1.0);
  EXPECT_THROW((void)timeline.duration("task.1", "RUNNING", "DONE"), Error);
  EXPECT_EQ(timeline.count("task", "RUNNING"), 2u);
  EXPECT_EQ(timeline.entities_in("task", "RUNNING"),
            (std::vector<std::string>{"task.0", "task.1"}));
  timeline.clear();
  EXPECT_TRUE(timeline.records().empty());
}

TEST(Timeline, FirstEntryWins) {
  sim::EventLoop loop;
  msg::PubSub bus(loop);
  Timeline timeline(bus);
  timeline.record({"svc.0", "service", "SCHEDULING", 1.0});
  timeline.record({"svc.0", "service", "SCHEDULING", 9.0});  // restart
  EXPECT_DOUBLE_EQ(timeline.state_time("svc.0", "SCHEDULING"), 1.0);
  EXPECT_EQ(timeline.records().size(), 2u);  // both kept in the log
}

TEST(Timeline, SubscribesToStateTopic) {
  sim::EventLoop loop;
  msg::PubSub bus(loop);
  Timeline timeline(bus);
  json::Value event = json::Value::object();
  event.set("kind", "task");
  event.set("uid", "task.7");
  event.set("state", "DONE");
  event.set("time", 3.25);
  bus.publish("state", event);
  loop.run();
  EXPECT_DOUBLE_EQ(timeline.state_time("task.7", "DONE"), 3.25);
}

TEST(Table, AlignmentAndCsv) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22222"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);

  const std::string csv = table.to_csv();
  EXPECT_EQ(csv, "name,value\nalpha,1\nb,22222\n");
  EXPECT_THROW(table.add_row({"only-one-cell"}), Error);
  EXPECT_THROW(Table({}), Error);
}

TEST(Table, CsvEscaping) {
  Table table({"a"});
  table.add_row({"with,comma"});
  table.add_row({"with\"quote"});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, WriteCsvToDisk) {
  Table table({"x", "y"});
  table.add_row_values({1.5, 2.5}, 1);
  const std::string path = "/tmp/ripple_test_table.csv";
  table.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1.5,2.5");
  std::remove(path.c_str());
  EXPECT_THROW(table.write_csv("/nonexistent-dir/x.csv"), Error);
}

// ---------------------------------------------------------------------------
// WindowQuantile: the SLO autoscaler's latency window
// ---------------------------------------------------------------------------

TEST(WindowQuantile, ExactQuantilesOnSmallWindows) {
  // Quantiles over a small window must match common::Summary exactly
  // (same linear-interpolation convention), including the interpolated
  // positions between samples.
  WindowQuantile window(100.0);
  common::Summary reference;
  const std::vector<double> values = {5.0, 1.0, 9.0, 3.0, 7.0};
  double t = 0.0;
  for (const double v : values) {
    window.add(t, v);
    reference.add(v);
    t += 1.0;
  }
  EXPECT_EQ(window.count(t), values.size());
  for (const double q : {0.0, 0.25, 0.5, 0.75, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(window.quantile(t, q), reference.quantile(q)) << q;
  }
  // A single live sample is every quantile.
  WindowQuantile single(10.0);
  single.add(0.0, 42.0);
  EXPECT_DOUBLE_EQ(single.quantile(0.0, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(single.quantile(0.0, 0.95), 42.0);
}

TEST(WindowQuantile, EvictsExpiredSamples) {
  WindowQuantile window(10.0);
  window.add(0.0, 100.0);
  window.add(5.0, 1.0);
  // Both alive: the old outlier dominates the p95.
  EXPECT_EQ(window.count(9.0), 2u);
  EXPECT_GT(window.quantile(9.0, 0.95), 90.0);
  // A sample stamped at t stays live through now == t + window
  // (inclusive boundary) and is gone just after.
  EXPECT_EQ(window.count(10.0), 2u);
  EXPECT_EQ(window.count(10.5), 1u);
  EXPECT_DOUBLE_EQ(window.quantile(10.5, 0.95), 1.0);
  // Everything expires eventually; an empty window throws (callers use
  // count() for the no-signal sentinel).
  EXPECT_EQ(window.count(20.0), 0u);
  EXPECT_THROW((void)window.quantile(20.0, 0.5), Error);
  // collect() appends only live values.
  window.add(21.0, 2.0);
  window.add(22.0, 3.0);
  std::vector<double> live;
  window.collect(31.5, live);
  EXPECT_EQ(live, (std::vector<double>{3.0}));
}

TEST(WindowQuantile, MonotoneClockEnforced) {
  // Event-loop time never goes backwards; the deque eviction depends on
  // it, so a regressing timestamp is a caller bug worth throwing at.
  WindowQuantile window(10.0);
  window.add(5.0, 1.0);
  window.add(5.0, 2.0);  // equal timestamps are fine (same-time events)
  EXPECT_THROW(window.add(4.999, 3.0), Error);
  // clear() resets the monotonicity guard along with the samples.
  window.clear();
  EXPECT_EQ(window.count(100.0), 0u);
  window.add(0.0, 7.0);
  EXPECT_DOUBLE_EQ(window.quantile(0.0, 0.5), 7.0);
  // Invalid construction and queries.
  EXPECT_THROW(WindowQuantile(0.0), Error);
  EXPECT_THROW((void)window.quantile(0.0, 1.5), Error);
}

TEST(Report, MeanPmStdAndBanner) {
  common::Summary summary;
  EXPECT_EQ(mean_pm_std(summary), "n/a");
  summary.add(1.0);
  summary.add(3.0);
  const std::string text = mean_pm_std(summary);
  EXPECT_NE(text.find("2.00 s"), std::string::npos);
  EXPECT_NE(text.find("+/-"), std::string::npos);
  EXPECT_EQ(banner("T"), "\n== T ==\n");
}

}  // namespace
