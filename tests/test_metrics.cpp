// Tests for the metrics layer: registry (BT/RT/IT series), timeline and
// table/CSV reporting.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "ripple/common/error.hpp"
#include "ripple/metrics/registry.hpp"
#include "ripple/metrics/report.hpp"
#include "ripple/metrics/timeline.hpp"

namespace {

using namespace ripple;
using namespace ripple::metrics;

msg::RequestTiming timing(double comm, double service, double inference) {
  msg::RequestTiming t;
  t.communication = comm;
  t.service = service;
  t.inference = inference;
  t.total = comm + service + inference;
  return t;
}

TEST(Registry, BootstrapComponents) {
  Registry registry;
  registry.add_bootstrap({"svc.0", 2.0, 30.0, 0.2, 4});
  registry.add_bootstrap({"svc.1", 2.4, 34.0, 0.3, 4});
  EXPECT_EQ(registry.bootstraps().size(), 2u);
  EXPECT_NEAR(registry.bootstrap_component("launch").mean(), 2.2, 1e-12);
  EXPECT_NEAR(registry.bootstrap_component("init").mean(), 32.0, 1e-12);
  EXPECT_NEAR(registry.bootstrap_component("publish").mean(), 0.25, 1e-12);
  EXPECT_NEAR(registry.bootstrap_component("total").mean(), 34.45, 1e-12);
  EXPECT_THROW((void)registry.bootstrap_component("warp"), Error);
}

TEST(Registry, RequestSeriesAggregation) {
  Registry registry;
  registry.add_request("exp2", timing(1e-4, 2e-5, 1e-6));
  registry.add_request("exp2", timing(1.2e-4, 2.2e-5, 1e-6));
  registry.add_request("exp3", timing(1e-3, 1e-2, 4.5));
  EXPECT_TRUE(registry.has_series("exp2"));
  EXPECT_FALSE(registry.has_series("exp9"));
  EXPECT_EQ(registry.series("exp2").count(), 2u);
  EXPECT_EQ(registry.series("exp3").count(), 1u);
  EXPECT_NEAR(registry.series("exp2").communication.mean(), 1.1e-4, 1e-12);
  EXPECT_EQ(registry.series_names(),
            (std::vector<std::string>{"exp2", "exp3"}));
  EXPECT_THROW((void)registry.series("exp9"), Error);
}

TEST(Registry, DurationSeriesAndClear) {
  Registry registry;
  registry.add_duration("stage.one", 10.0);
  registry.add_duration("stage.one", 20.0);
  EXPECT_TRUE(registry.has_durations("stage.one"));
  EXPECT_DOUBLE_EQ(registry.durations("stage.one").mean(), 15.0);
  EXPECT_THROW((void)registry.durations("stage.two"), Error);
  registry.clear();
  EXPECT_FALSE(registry.has_durations("stage.one"));
  EXPECT_TRUE(registry.bootstraps().empty());
}

TEST(Registry, JsonExportShape) {
  Registry registry;
  registry.add_bootstrap({"svc.0", 2.0, 30.0, 0.2, 1});
  registry.add_request("rt", timing(1, 2, 3));
  registry.add_duration("d", 5.0);
  const auto j = registry.to_json();
  EXPECT_EQ(j.at("bootstrap").at("count").as_int(), 1);
  EXPECT_TRUE(j.at("requests").contains("rt"));
  EXPECT_DOUBLE_EQ(
      j.at("requests").at("rt").at("total").at("mean").as_double(), 6.0);
  EXPECT_TRUE(j.at("durations").contains("d"));
}

TEST(Timeline, RecordsAndQueries) {
  sim::EventLoop loop;
  msg::PubSub bus(loop);
  Timeline timeline(bus);
  timeline.record({"task.0", "task", "RUNNING", 5.0});
  timeline.record({"task.0", "task", "DONE", 8.0});
  timeline.record({"task.1", "task", "RUNNING", 6.0});
  EXPECT_DOUBLE_EQ(timeline.state_time("task.0", "RUNNING"), 5.0);
  EXPECT_DOUBLE_EQ(timeline.duration("task.0", "RUNNING", "DONE"), 3.0);
  EXPECT_DOUBLE_EQ(timeline.state_time("task.9", "RUNNING"), -1.0);
  EXPECT_THROW((void)timeline.duration("task.1", "RUNNING", "DONE"), Error);
  EXPECT_EQ(timeline.count("task", "RUNNING"), 2u);
  EXPECT_EQ(timeline.entities_in("task", "RUNNING"),
            (std::vector<std::string>{"task.0", "task.1"}));
  timeline.clear();
  EXPECT_TRUE(timeline.records().empty());
}

TEST(Timeline, FirstEntryWins) {
  sim::EventLoop loop;
  msg::PubSub bus(loop);
  Timeline timeline(bus);
  timeline.record({"svc.0", "service", "SCHEDULING", 1.0});
  timeline.record({"svc.0", "service", "SCHEDULING", 9.0});  // restart
  EXPECT_DOUBLE_EQ(timeline.state_time("svc.0", "SCHEDULING"), 1.0);
  EXPECT_EQ(timeline.records().size(), 2u);  // both kept in the log
}

TEST(Timeline, SubscribesToStateTopic) {
  sim::EventLoop loop;
  msg::PubSub bus(loop);
  Timeline timeline(bus);
  json::Value event = json::Value::object();
  event.set("kind", "task");
  event.set("uid", "task.7");
  event.set("state", "DONE");
  event.set("time", 3.25);
  bus.publish("state", event);
  loop.run();
  EXPECT_DOUBLE_EQ(timeline.state_time("task.7", "DONE"), 3.25);
}

TEST(Table, AlignmentAndCsv) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22222"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);

  const std::string csv = table.to_csv();
  EXPECT_EQ(csv, "name,value\nalpha,1\nb,22222\n");
  EXPECT_THROW(table.add_row({"only-one-cell"}), Error);
  EXPECT_THROW(Table({}), Error);
}

TEST(Table, CsvEscaping) {
  Table table({"a"});
  table.add_row({"with,comma"});
  table.add_row({"with\"quote"});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, WriteCsvToDisk) {
  Table table({"x", "y"});
  table.add_row_values({1.5, 2.5}, 1);
  const std::string path = "/tmp/ripple_test_table.csv";
  table.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1.5,2.5");
  std::remove(path.c_str());
  EXPECT_THROW(table.write_csv("/nonexistent-dir/x.csv"), Error);
}

TEST(Report, MeanPmStdAndBanner) {
  common::Summary summary;
  EXPECT_EQ(mean_pm_std(summary), "n/a");
  summary.add(1.0);
  summary.add(3.0);
  const std::string text = mean_pm_std(summary);
  EXPECT_NE(text.find("2.00 s"), std::string::npos);
  EXPECT_NE(text.find("+/-"), std::string::npos);
  EXPECT_EQ(banner("T"), "\n== T ==\n");
}

}  // namespace
