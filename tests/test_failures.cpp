// Failure as a first-class scenario: the seeded sim::FailureInjector
// event streams, and the runtime surviving what they dispatch — node
// crashes re-placed with backoff, pilot preemption re-bound to
// survivors, stragglers beaten by speculation, store crashes repaired
// from surviving replicas, link failures terminal for in-flight
// attempts. Same seed, bit-identical failure/recovery/repair logs.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ripple/common/random.hpp"
#include "ripple/core/failure_coordinator.hpp"
#include "ripple/core/session.hpp"
#include "ripple/platform/profiles.hpp"
#include "ripple/sim/event_loop.hpp"
#include "ripple/sim/failure_injector.hpp"

namespace {

using namespace ripple;
using namespace ripple::core;
using sim::FailureKind;

// ---------------------------------------------------------------------------
// Injector determinism
// ---------------------------------------------------------------------------

struct InjectorRun {
  std::vector<std::string> log;
  std::uint64_t hash = 0;
  std::size_t injected = 0;
};

InjectorRun run_injector(std::uint64_t seed) {
  sim::EventLoop loop;
  sim::FailureInjector injector(loop, common::Rng(seed));
  sim::FailureInjector::Schedule crashes;
  crashes.mean_interarrival = 5.0;
  crashes.mean_time_to_repair = 8.0;
  crashes.horizon = 200.0;
  injector.arm(FailureKind::node_crash, {"n0", "n1", "n2", "n3"}, crashes);
  sim::FailureInjector::Schedule slow;
  slow.mean_interarrival = 11.0;
  slow.mean_time_to_repair = 6.0;
  slow.horizon = 200.0;
  slow.magnitude = common::Distribution::uniform(2.0, 8.0);
  injector.arm(FailureKind::slow_node, {"n0", "n1", "n2", "n3"}, slow);
  loop.run_until(300.0);
  return {injector.event_log(), injector.event_log_hash(),
          injector.injected()};
}

TEST(FailureInjector, SameSeedBitIdenticalEventStream) {
  const InjectorRun first = run_injector(1234);
  const InjectorRun rerun = run_injector(1234);
  EXPECT_GT(first.injected, 0u);
  EXPECT_EQ(first.log, rerun.log);
  EXPECT_EQ(first.hash, rerun.hash);
  const InjectorRun other = run_injector(1235);
  EXPECT_NE(first.log, other.log);
}

TEST(FailureInjector, DownTargetsAreNotRepicked) {
  sim::EventLoop loop;
  sim::FailureInjector injector(loop, common::Rng(7));
  sim::FailureInjector::Schedule crashes;
  crashes.mean_interarrival = 1.0;
  crashes.mean_time_to_repair = 0.0;  // permanent: one crash per target
  injector.arm(FailureKind::node_crash, {"a", "b"}, crashes);
  loop.run();
  EXPECT_EQ(injector.injected(), 2u);
}

// ---------------------------------------------------------------------------
// Runtime survival
// ---------------------------------------------------------------------------

TaskDescription modeled_task(double seconds, std::size_t cores = 1) {
  TaskDescription desc;
  desc.name = "t";
  desc.kind = "modeled";
  desc.cores = cores;
  desc.duration = common::Distribution::constant(seconds);
  return desc;
}

TEST(FailureRecovery, NodeCrashReplacesTaskAndCompletes) {
  Session session{SessionConfig{.seed = 11}};
  session.add_platform(platform::delta_profile(2));
  Pilot& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});
  session.tasks().set_restart_policy({.max_restarts = 3});

  const auto uid = session.tasks().submit(pilot, modeled_task(10.0));
  // Both nodes die mid-run, wherever the task landed; capacity comes
  // back at t=6 and the backed-off re-placement must pick it up.
  auto& injector = session.failures().injector();
  for (std::size_t i = 0; i < 2; ++i) {
    const std::string id = session.cluster("delta").node(i).id();
    injector.inject_at(2.0, FailureKind::node_crash, id);
    injector.inject_at(6.0, FailureKind::node_restore, id);
  }
  bool done = false;
  session.tasks().when_done({uid}, [&](bool ok) { done = ok; });
  session.run();

  EXPECT_TRUE(done);
  EXPECT_EQ(session.tasks().get(uid).state(), TaskState::done);
  EXPECT_EQ(session.tasks().restarts_total(), 1u);
  ASSERT_FALSE(session.tasks().recovery_log().empty());
  EXPECT_NE(session.tasks().recovery_log().front().find("restart1"),
            std::string::npos);
  // The interrupted attempt's 2 s were lost: completion is later than
  // the unfailed 10 s makespan.
  EXPECT_GT(session.now(), 10.0);
}

TEST(FailureRecovery, TracedCrashRecoveryIsDeterministic) {
  // The same crash-and-restart scenario with tracing on: the span log
  // must show the restart (two RUNNING entries, a recovery span, fault
  // instants) and be bit-identical across same-seed reruns.
  const auto run = [] {
    struct Out {
      std::uint64_t span_hash = 0;
      bool saw_recovery = false;
      bool saw_fault = false;
      std::size_t running_entries = 0;
      double restarts = 0.0;
      double injected = 0.0;
      double repaired = 0.0;
      bool done = false;
    } out;
    Session session{SessionConfig{.seed = 11, .tracing = true}};
    session.add_platform(platform::delta_profile(2));
    Pilot& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});
    session.tasks().set_restart_policy({.max_restarts = 3});
    const auto uid = session.tasks().submit(pilot, modeled_task(10.0));
    auto& injector = session.failures().injector();
    // Crash at t=5, well into the 10 s compute, so the first attempt is
    // RUNNING when interrupted and the restart re-enters RUNNING.
    for (std::size_t i = 0; i < 2; ++i) {
      const std::string id = session.cluster("delta").node(i).id();
      injector.inject_at(5.0, FailureKind::node_crash, id);
      injector.inject_at(9.0, FailureKind::node_restore, id);
    }
    session.tasks().when_done({uid}, [&](bool ok) { out.done = ok; });
    session.run();
    out.span_hash = session.tracer().span_log_hash();
    for (const auto& span : session.tracer().spans()) {
      out.saw_recovery |= span.category == "recovery";
      out.saw_fault |= span.category == "fault";
    }
    // The fixed Timeline keeps every RUNNING entry, not just the first.
    out.running_entries = session.timeline().state_times(uid, "RUNNING").size();
    out.restarts = session.counters().value("task.restarts");
    out.injected = session.counters().value("fault.injected");
    out.repaired = session.counters().value("fault.repaired");
    return out;
  };
  const auto first = run();
  EXPECT_TRUE(first.done);
  EXPECT_TRUE(first.saw_recovery);
  EXPECT_TRUE(first.saw_fault);
  EXPECT_GE(first.running_entries, 2u);
  EXPECT_GE(first.restarts, 1.0);
  EXPECT_GE(first.injected, 2.0);  // both nodes crashed
  EXPECT_GE(first.repaired, 2.0);  // and came back
  const auto rerun = run();
  EXPECT_EQ(rerun.span_hash, first.span_hash);
  EXPECT_EQ(rerun.running_entries, first.running_entries);
}

TEST(FailureRecovery, FailStopWithoutRestartBudget) {
  Session session{SessionConfig{.seed = 11}};
  session.add_platform(platform::delta_profile(2));
  Pilot& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});
  // Default policy: max_restarts = 0, any interrupt is fatal.
  const auto uid = session.tasks().submit(pilot, modeled_task(10.0));
  auto& injector = session.failures().injector();
  for (std::size_t i = 0; i < 2; ++i) {
    injector.inject_at(2.0, FailureKind::node_crash,
                       session.cluster("delta").node(i).id());
  }
  session.run();
  const auto& task = session.tasks().get(uid);
  EXPECT_EQ(task.state(), TaskState::failed);
  EXPECT_NE(task.error().find("restart budget"), std::string::npos);
}

TEST(FailureRecovery, PilotPreemptionRebindsToSurvivor) {
  Session session{SessionConfig{.seed = 19}};
  session.add_platform(platform::delta_profile(4));
  Pilot& a = session.submit_pilot({.platform = "delta", .nodes = 2});
  Pilot& b = session.submit_pilot({.platform = "delta", .nodes = 2});
  session.tasks().set_restart_policy({.max_restarts = 2});

  const auto uid = session.tasks().submit(a, modeled_task(10.0));
  session.failures().injector().inject_at(2.0, FailureKind::pilot_preempt,
                                          a.uid());
  bool done = false;
  session.tasks().when_done({uid}, [&](bool ok) { done = ok; });
  session.run();

  EXPECT_EQ(a.state(), PilotState::failed);
  EXPECT_EQ(b.state(), PilotState::active);
  EXPECT_TRUE(done);
  EXPECT_EQ(session.tasks().get(uid).state(), TaskState::done);
  EXPECT_EQ(session.tasks().restarts_total(), 1u);
}

TEST(FailureRecovery, PreemptionWithoutSurvivorFailsTasks) {
  Session session{SessionConfig{.seed = 19}};
  session.add_platform(platform::delta_profile(2));
  Pilot& only = session.submit_pilot({.platform = "delta", .nodes = 2});
  session.tasks().set_restart_policy({.max_restarts = 5});
  const auto uid = session.tasks().submit(only, modeled_task(10.0));
  session.failures().injector().inject_at(2.0, FailureKind::pilot_preempt,
                                          only.uid());
  session.run();
  EXPECT_EQ(session.tasks().get(uid).state(), TaskState::failed);
}

TEST(FailureRecovery, SpeculationBeatsStraggler) {
  Session session{SessionConfig{.seed = 23}};
  session.add_platform(platform::delta_profile(2));
  Pilot& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});
  session.tasks().set_speculation(
      {.enabled = true, .latency_multiple = 2.0, .min_delay = 0.5});

  // The first-fit node is 10x slow before the task launches: the 4 s
  // full-node task would take 40 s. Speculation arms at 8 s of RUNNING
  // and the duplicate — full-node, so it cannot pack onto the
  // straggler — lands on the healthy node and wins at ~13 s.
  session.failures().injector().inject_at(
      0.0, FailureKind::slow_node, session.cluster("delta").node(0).id(),
      10.0);
  const auto uid = session.tasks().submit(pilot, modeled_task(4.0, 64));
  bool done = false;
  session.tasks().when_done({uid}, [&](bool ok) { done = ok; });
  session.run();

  EXPECT_TRUE(done);
  EXPECT_EQ(session.tasks().speculations(), 1u);
  EXPECT_EQ(session.tasks().speculation_wins(), 1u);
  // The task finished far below the 40 s straggler horizon (the final
  // loop time still drains the loser's uncancellable payload event).
  EXPECT_LT(session.tasks().get(uid).state_time(TaskState::done), 20.0);
}

TEST(FailureRecovery, StoreCrashRepairsFromSurvivingReplica) {
  Session session{SessionConfig{.seed = 29}};
  auto& data = session.data();
  data.set_default_bandwidth(1e8);
  data.add_store("a", 1e9);
  data.add_store("b", 1e9);
  data.add_store("c", 2e9);
  data.register_dataset("d", 1e8, "a");
  bool staged = false;
  data.stage("d", "b", [&](bool ok, sim::Duration) { staged = ok; });

  // Store "a" dies after the copy into "b" has landed; the repair must
  // re-stripe from the survivor into "c" (most free bytes). Later the
  // store rejoins, empty, at its old capacity.
  auto& injector = session.failures().injector();
  injector.inject_at(30.0, FailureKind::store_crash, "a");
  injector.inject_at(100.0, FailureKind::store_restore, "a");
  session.run();

  EXPECT_TRUE(staged);
  EXPECT_FALSE(data.available_in("d", "a"));
  EXPECT_TRUE(data.available_in("d", "b"));
  EXPECT_TRUE(data.available_in("d", "c"));
  EXPECT_EQ(data.repairs_started(), 1u);
  EXPECT_EQ(data.repairs_completed(), 1u);
  ASSERT_GE(data.repair_log().size(), 3u);
  EXPECT_NE(data.repair_log()[0].find("store_failed a lost=1"),
            std::string::npos);
  EXPECT_NE(data.repair_log()[1].find("repair d -> c"), std::string::npos);
  // store_restore re-declared the store at its old capacity, empty.
  EXPECT_DOUBLE_EQ(session.data().catalog().store("a").capacity, 1e9);
  EXPECT_DOUBLE_EQ(session.data().catalog().store("a").used, 0.0);
}

TEST(FailureRecovery, StoreCrashWithoutSurvivorLosesDataset) {
  Session session{SessionConfig{.seed = 29}};
  auto& data = session.data();
  data.add_store("a", 1e9);
  data.add_store("b", 1e9);
  data.register_dataset("solo", 1e8, "a");
  session.failures().injector().inject_at(1.0, FailureKind::store_crash,
                                          "a");
  session.run();
  EXPECT_EQ(data.repairs_started(), 0u);
  EXPECT_FALSE(data.has("solo") && data.available_in("solo", "a"));
  ASSERT_EQ(data.repair_log().size(), 2u);
  EXPECT_NE(data.repair_log()[1].find("lost solo"), std::string::npos);
}

TEST(FailureRecovery, LinkDownIsTerminalUntilRestored) {
  Session session{SessionConfig{.seed = 31}};
  auto& data = session.data();
  data.set_default_bandwidth(1e8);
  data.add_store("a", 1e9);
  data.add_store("b", 1e9);
  data.register_dataset("d", 1e8, "a");
  session.failures().injector().inject_at(0.0, FailureKind::link_down,
                                          "a|b");

  bool first_ok = true;
  data.stage("d", "b", [&](bool ok, sim::Duration) { first_ok = ok; });
  session.run();
  // Terminal: the attempt died on the downed link without burning the
  // retry budget, and the waiter saw the failure.
  EXPECT_FALSE(first_ok);
  EXPECT_FALSE(data.available_in("d", "b"));

  session.failures().injector().inject_at(session.now() + 1.0,
                                          FailureKind::link_up, "a|b");
  bool second_ok = false;
  data.stage("d", "b", [&](bool ok, sim::Duration) { second_ok = ok; });
  session.run();
  EXPECT_TRUE(second_ok);
  EXPECT_TRUE(data.available_in("d", "b"));
}

// ---------------------------------------------------------------------------
// End-to-end determinism of a failing run
// ---------------------------------------------------------------------------

struct FailingRun {
  std::vector<std::string> events;
  std::uint64_t event_hash = 0;
  std::uint64_t recovery_hash = 0;
  std::uint64_t grant_hash = 0;
  std::size_t done = 0;
  std::size_t failed = 0;
};

FailingRun run_failing_workload(std::uint64_t seed) {
  Session session{SessionConfig{.seed = seed}};
  session.add_platform(platform::delta_profile(4));
  Pilot& pilot = session.submit_pilot({.platform = "delta", .nodes = 4});
  session.tasks().set_restart_policy({.max_restarts = 3});

  sim::FailureInjector::Schedule crashes;
  crashes.mean_interarrival = 15.0;
  crashes.mean_time_to_repair = 10.0;
  crashes.horizon = 120.0;
  session.failures().arm_node_crashes("delta", crashes);

  std::vector<TaskDescription> batch(24, modeled_task(6.0, 32));
  (void)session.tasks().submit_all(pilot, batch);
  session.run();

  FailingRun out;
  out.events = session.failures().injector().event_log();
  out.event_hash = session.failures().injector().event_log_hash();
  out.recovery_hash = session.tasks().recovery_log_hash();
  out.grant_hash = session.scheduler().grant_log_hash();
  out.done = session.tasks().count_in_state(TaskState::done);
  out.failed = session.tasks().count_in_state(TaskState::failed);
  return out;
}

TEST(FailureRecovery, SameSeedSameOutcomeAcrossReruns) {
  const FailingRun first = run_failing_workload(77);
  const FailingRun rerun = run_failing_workload(77);
  EXPECT_GT(first.events.size(), 0u);
  EXPECT_EQ(first.done + first.failed, 24u);
  EXPECT_EQ(first.events, rerun.events);
  EXPECT_EQ(first.event_hash, rerun.event_hash);
  EXPECT_EQ(first.recovery_hash, rerun.recovery_hash);
  EXPECT_EQ(first.grant_hash, rerun.grant_hash);
  EXPECT_EQ(first.done, rerun.done);
  EXPECT_EQ(first.failed, rerun.failed);
}

}  // namespace
