// Tests for the sharded runtime core: ShardExecutor semantics, the
// deterministic MergeKey/merge_shards commit order, sharded scheduler
// placement (submit_batch/release_batch) and sharded transfer
// re-planning (replan_all) — all asserting the house parallel==serial
// rule: a shards=N run is bit-identical to shards=1 under the same
// seed.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "ripple/common/random.hpp"
#include "ripple/common/shard_executor.hpp"
#include "ripple/core/failure_coordinator.hpp"
#include "ripple/core/scheduler.hpp"
#include "ripple/core/session.hpp"
#include "ripple/data/transfer_engine.hpp"
#include "ripple/platform/profiles.hpp"
#include "ripple/sim/event_loop.hpp"
#include "ripple/sim/failure_injector.hpp"

namespace {

using namespace ripple;
using namespace ripple::core;

// ---------------------------------------------------------------------------
// ShardExecutor
// ---------------------------------------------------------------------------

TEST(ShardExecutor, RunsEveryTaskInlineWhenSingleSharded) {
  common::ShardExecutor exec(1);
  EXPECT_EQ(exec.shards(), 1u);
  std::vector<int> hits(8, 0);
  exec.run(hits.size(), [&](std::size_t s) { ++hits[s]; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ShardExecutor, RunsEveryTaskAcrossWorkers) {
  common::ShardExecutor exec(4);
  EXPECT_EQ(exec.shards(), 4u);
  std::vector<std::atomic<int>> hits(16);
  exec.run(hits.size(), [&](std::size_t s) { ++hits[s]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  exec.run(0, [&](std::size_t) { FAIL() << "no tasks, no calls"; });
}

TEST(ShardExecutor, RethrowsLowestIndexedShardException) {
  common::ShardExecutor exec(4);
  try {
    exec.run(6, [](std::size_t s) {
      if (s == 5) throw std::runtime_error("five");
      if (s == 2) throw std::runtime_error("two");
    });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& error) {
    // Deterministic regardless of which worker faulted first.
    EXPECT_STREQ(error.what(), "two");
  }
}

TEST(ShardExecutor, MergeShardsOrdersByTimeSequenceShard) {
  struct Record {
    common::MergeKey key;
    int value = 0;
  };
  std::vector<std::vector<Record>> buffers(2);
  buffers[0] = {{{2.0, 5, 0}, 1}, {{1.0, 9, 0}, 2}};
  buffers[1] = {{{1.0, 3, 1}, 3}, {{2.0, 5, 1}, 4}};
  const auto merged = common::merge_shards(
      std::move(buffers), [](const Record& r) { return r.key; });
  ASSERT_EQ(merged.size(), 4u);
  // (1,3,1) < (1,9,0) < (2,5,0) < (2,5,1): time, then sequence, then
  // the shard tiebreak.
  EXPECT_EQ(merged[0].value, 3);
  EXPECT_EQ(merged[1].value, 2);
  EXPECT_EQ(merged[2].value, 1);
  EXPECT_EQ(merged[3].value, 4);
}

// ---------------------------------------------------------------------------
// Sharded scheduler placement
// ---------------------------------------------------------------------------

struct BatchRun {
  std::vector<std::string> order;
  std::uint64_t hash = 0;
  std::uint64_t granted = 0;
};

/// One full batch workload — submit_batch over 4 pilots, then a
/// release_batch wave — at the given shard count.
BatchRun run_batch(std::size_t shards) {
  common::ShardExecutor exec(shards);
  Session session{SessionConfig{.seed = 31}};
  session.add_platform(platform::delta_profile(8));
  std::vector<Pilot*> pilots;
  for (int p = 0; p < 4; ++p) {
    pilots.push_back(
        &session.submit_pilot({.platform = "delta", .nodes = 2}));
  }
  auto& sched = session.scheduler();
  if (shards > 1) sched.set_shard_executor(&exec);

  BatchRun out;
  std::vector<std::pair<std::string, platform::Slot>> held;
  std::vector<Scheduler::PilotBatch> batches;
  for (std::size_t p = 0; p < pilots.size(); ++p) {
    Scheduler::PilotBatch batch;
    batch.pilot_uid = pilots[p]->uid();
    for (int r = 0; r < 12; ++r) {
      ScheduleRequest request;
      request.uid = "p" + std::to_string(p) + "-r" + std::to_string(r);
      request.cores = r % 3 == 0 ? 64 : 24;
      request.priority = r % 2;
      request.granted = [&out, &held, uid = request.uid,
                         pilot_uid = batch.pilot_uid](platform::Slot slot,
                                                      platform::Node*) {
        out.order.push_back(uid);
        held.emplace_back(pilot_uid, slot);
      };
      batch.requests.push_back(std::move(request));
    }
    batches.push_back(std::move(batch));
  }
  sched.submit_batch(std::move(batches));
  session.run();
  // Free the first wave through the sharded release path; backfill
  // grants a second wave.
  const auto first_wave = held;
  held.clear();
  sched.release_batch(first_wave);
  session.run();
  out.hash = sched.grant_log_hash();
  out.granted = sched.granted_total();
  return out;
}

TEST(ShardedScheduler, GrantOrderInvariantAcrossShardCounts) {
  const BatchRun serial = run_batch(1);
  EXPECT_GT(serial.granted, 0u);
  EXPECT_EQ(serial.order.size(), serial.granted);
  for (const std::size_t shards : {2, 4}) {
    const BatchRun sharded = run_batch(shards);
    EXPECT_EQ(sharded.order, serial.order) << "shards=" << shards;
    EXPECT_EQ(sharded.hash, serial.hash) << "shards=" << shards;
    EXPECT_EQ(sharded.granted, serial.granted) << "shards=" << shards;
  }
  const BatchRun rerun = run_batch(1);  // same-seed reproducibility
  EXPECT_EQ(rerun.order, serial.order);
  EXPECT_EQ(rerun.hash, serial.hash);
}

TEST(ShardedScheduler, BatchMatchesPerPilotSubmitAll) {
  // Uniform priorities: the batch path's merged commit order (enqueue
  // time, then sequence) coincides with the per-pilot pass order, so
  // submit_batch must reproduce sequential submit_all calls exactly.
  const auto build = [](bool batched) {
    Session session{SessionConfig{.seed = 7}};
    session.add_platform(platform::delta_profile(4));
    Pilot* a = &session.submit_pilot({.platform = "delta", .nodes = 2});
    Pilot* b = &session.submit_pilot({.platform = "delta", .nodes = 2});
    std::vector<std::string> order;
    const auto make = [&order](const std::string& uid, std::size_t cores) {
      ScheduleRequest request;
      request.uid = uid;
      request.cores = cores;
      request.granted = [&order, uid](platform::Slot, platform::Node*) {
        order.push_back(uid);
      };
      return request;
    };
    std::vector<Scheduler::PilotBatch> batches(2);
    batches[0].pilot_uid = a->uid();
    batches[1].pilot_uid = b->uid();
    for (int r = 0; r < 6; ++r) {
      batches[0].requests.push_back(
          make("a" + std::to_string(r), r % 2 == 0 ? 64 : 16));
      batches[1].requests.push_back(
          make("b" + std::to_string(r), r % 2 == 0 ? 48 : 32));
    }
    auto& sched = session.scheduler();
    if (batched) {
      sched.submit_batch(std::move(batches));
    } else {
      for (auto& batch : batches) {
        sched.submit_all(batch.pilot_uid, std::move(batch.requests));
      }
    }
    session.run();
    return order;
  };
  const auto batch_order = build(true);
  const auto serial_order = build(false);
  EXPECT_FALSE(batch_order.empty());
  EXPECT_EQ(batch_order, serial_order);
}

// ---------------------------------------------------------------------------
// Sharded transfer re-planning
// ---------------------------------------------------------------------------

struct TickRun {
  std::vector<std::string> log;
  std::uint64_t hash = 0;
};

/// Transfers over 28 links with two mid-flight "telemetry ticks" that
/// change the default bandwidth and replan every link, at the given
/// shard count.
TickRun run_ticks(std::size_t shards) {
  common::ShardExecutor exec(shards);
  sim::EventLoop loop;
  data::TransferEngine engine(loop, common::Rng(99));
  if (shards > 1) engine.set_shard_executor(&exec);
  engine.set_setup_latency(common::Distribution::constant(0.05));
  engine.set_default_bandwidth(100.0);

  constexpr int kZones = 8;
  int done = 0;
  int id = 0;
  for (int a = 0; a < kZones; ++a) {
    for (int b = a + 1; b < kZones; ++b) {
      for (int k = 0; k < 3; ++k) {
        engine.transfer("d" + std::to_string(id++), "z" + std::to_string(a),
                        "z" + std::to_string(b), 500.0 + 40.0 * k,
                        [&done](bool ok, sim::Duration) { done += ok; });
      }
    }
  }
  loop.run_until(2.0);
  engine.set_default_bandwidth(150.0);
  engine.replan_all();
  loop.run_until(4.0);
  engine.set_default_bandwidth(80.0);
  engine.replan_all();
  loop.run();
  EXPECT_EQ(done, id);
  return TickRun{engine.completion_log(), engine.completion_hash()};
}

TEST(ShardedReplan, CompletionLogInvariantAcrossShardCounts) {
  const TickRun serial = run_ticks(1);
  EXPECT_FALSE(serial.log.empty());
  for (const std::size_t shards : {2, 4}) {
    const TickRun sharded = run_ticks(shards);
    EXPECT_EQ(sharded.log, serial.log) << "shards=" << shards;
    EXPECT_EQ(sharded.hash, serial.hash) << "shards=" << shards;
  }
  const TickRun rerun = run_ticks(1);  // same-seed reproducibility
  EXPECT_EQ(rerun.log, serial.log);
  EXPECT_EQ(rerun.hash, serial.hash);
}

// ---------------------------------------------------------------------------
// Failure determinism under sharding
// ---------------------------------------------------------------------------

struct FailureShardRun {
  std::uint64_t event_hash = 0;
  std::uint64_t recovery_hash = 0;
  std::uint64_t repair_hash = 0;
  std::uint64_t grant_hash = 0;
  std::uint64_t span_hash = 0;
  std::size_t spans = 0;
  std::size_t done = 0;
};

/// A workload that exercises every recovery path — seeded node crashes
/// interrupting re-placed tasks plus a store crash repaired from a
/// surviving replica — with the scheduler sharded at the given width.
/// With `tracing` the full span/counter pipeline rides along, so the
/// span log's shard-invariance is asserted under fault injection too.
FailureShardRun run_failure_shards(std::size_t shards,
                                   bool tracing = false) {
  common::ShardExecutor exec(shards);
  Session session{SessionConfig{.seed = 67}};
  if (tracing) session.enable_tracing(/*gauge_tick=*/2.0);
  session.add_platform(platform::delta_profile(4));
  Pilot& pilot = session.submit_pilot({.platform = "delta", .nodes = 4});
  if (shards > 1) session.scheduler().set_shard_executor(&exec);
  session.tasks().set_restart_policy({.max_restarts = 3});

  auto& data = session.data();
  data.set_default_bandwidth(1e8);
  data.add_store("sa", 1e9);
  data.add_store("sb", 1e9);
  data.add_store("sc", 2e9);
  data.register_dataset("d", 1e8, "sa");
  data.stage("d", "sb", [](bool, sim::Duration) {});

  sim::FailureInjector::Schedule crashes;
  crashes.mean_interarrival = 12.0;
  crashes.mean_time_to_repair = 8.0;
  crashes.horizon = 100.0;
  session.failures().arm_node_crashes("delta", crashes);
  session.failures().injector().inject_at(
      20.0, sim::FailureKind::store_crash, "sa");

  std::vector<TaskDescription> batch;
  for (int i = 0; i < 16; ++i) {
    TaskDescription desc;
    desc.name = "t";
    desc.kind = "modeled";
    desc.cores = 32;
    desc.duration = common::Distribution::constant(5.0);
    batch.push_back(desc);
  }
  (void)session.tasks().submit_all(pilot, batch);
  session.run();

  FailureShardRun out;
  out.event_hash = session.failures().injector().event_log_hash();
  out.recovery_hash = session.tasks().recovery_log_hash();
  out.repair_hash = session.data().repair_log_hash();
  out.grant_hash = session.scheduler().grant_log_hash();
  out.span_hash = session.tracer().span_log_hash();
  out.spans = session.tracer().spans().size();
  out.done = session.tasks().count_in_state(TaskState::done);
  return out;
}

TEST(ShardedFailures, RecoveryLogsInvariantAcrossShardCounts) {
  const FailureShardRun serial = run_failure_shards(1);
  EXPECT_GT(serial.done, 0u);
  const FailureShardRun sharded = run_failure_shards(4);
  EXPECT_EQ(sharded.event_hash, serial.event_hash);
  EXPECT_EQ(sharded.recovery_hash, serial.recovery_hash);
  EXPECT_EQ(sharded.repair_hash, serial.repair_hash);
  EXPECT_EQ(sharded.grant_hash, serial.grant_hash);
  EXPECT_EQ(sharded.done, serial.done);
  const FailureShardRun rerun = run_failure_shards(1);
  EXPECT_EQ(rerun.event_hash, serial.event_hash);
  EXPECT_EQ(rerun.recovery_hash, serial.recovery_hash);
  EXPECT_EQ(rerun.repair_hash, serial.repair_hash);
  EXPECT_EQ(rerun.grant_hash, serial.grant_hash);
}

TEST(ShardedFailures, SpanLogInvariantAcrossShardCounts) {
  // The tentpole determinism oracle: with tracing enabled and faults
  // armed, the span log (task phases, recovery episodes, placement
  // passes, fault instants) is bit-identical across shard counts and
  // same-seed reruns.
  const FailureShardRun serial = run_failure_shards(1, /*tracing=*/true);
  EXPECT_GT(serial.spans, 0u);
  const FailureShardRun sharded = run_failure_shards(4, /*tracing=*/true);
  EXPECT_EQ(sharded.span_hash, serial.span_hash);
  EXPECT_EQ(sharded.spans, serial.spans);
  EXPECT_EQ(sharded.grant_hash, serial.grant_hash);
  const FailureShardRun rerun = run_failure_shards(1, /*tracing=*/true);
  EXPECT_EQ(rerun.span_hash, serial.span_hash);
  // Tracing is observation only: the traced run's recovery/grant logs
  // match the untraced baseline bit for bit.
  const FailureShardRun untraced = run_failure_shards(1);
  EXPECT_EQ(untraced.event_hash, serial.event_hash);
  EXPECT_EQ(untraced.recovery_hash, serial.recovery_hash);
  EXPECT_EQ(untraced.repair_hash, serial.repair_hash);
  EXPECT_EQ(untraced.grant_hash, serial.grant_hash);
  EXPECT_EQ(untraced.done, serial.done);
}

TEST(ShardedReplan, ReplanAllReRatesLiveFlows) {
  sim::EventLoop loop;
  data::TransferEngine engine(loop, common::Rng(1));
  engine.set_setup_latency(common::Distribution::constant(0.0));
  engine.set_bandwidth("a", "b", 100.0);
  double elapsed = -1.0;
  engine.transfer("d", "a", "b", 1000.0, [&](bool ok, sim::Duration e) {
    if (ok) elapsed = e;
  });
  EXPECT_EQ(engine.replan_all(), 0u);  // still in setup, nothing flowing
  loop.run_until(5.0);  // 500 of 1000 bytes moved at 100 B/s
  engine.set_bandwidth("a", "b", 250.0);
  EXPECT_EQ(engine.replan_all(), 1u);
  loop.run();
  // Bandwidth setters are config-only; the tick is what re-rated the
  // flow: 5 s at 100 B/s, then 500 bytes at 250 B/s.
  EXPECT_NEAR(elapsed, 7.0, 1e-9);
}

}  // namespace
