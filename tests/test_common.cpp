// Unit tests for common utilities: strings, ids, config, logging,
// statistics and random distributions.

#include <gtest/gtest.h>

#include <cmath>

#include "ripple/common/config.hpp"
#include "ripple/common/error.hpp"
#include "ripple/common/ids.hpp"
#include "ripple/common/json.hpp"
#include "ripple/common/logging.hpp"
#include "ripple/common/random.hpp"
#include "ripple/common/statistics.hpp"
#include "ripple/common/strutil.hpp"

namespace {

using namespace ripple;
using common::Distribution;
using common::Rng;

// ---------------------------------------------------------------------------
// strutil
// ---------------------------------------------------------------------------

TEST(Strutil, SplitKeepsEmptyFields) {
  EXPECT_EQ(strutil::split("a.b..c", '.'),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(strutil::split("", '.'), (std::vector<std::string>{""}));
  EXPECT_EQ(strutil::split("one", '.'), (std::vector<std::string>{"one"}));
}

TEST(Strutil, JoinInvertsSplit) {
  const std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(strutil::join(parts, "."), "a.b.c");
  EXPECT_EQ(strutil::split(strutil::join(parts, ","), ','), parts);
  EXPECT_EQ(strutil::join({}, "."), "");
}

TEST(Strutil, Trim) {
  EXPECT_EQ(strutil::trim("  a b  "), "a b");
  EXPECT_EQ(strutil::trim("\t\n x \r"), "x");
  EXPECT_EQ(strutil::trim("   "), "");
  EXPECT_EQ(strutil::trim(""), "");
}

TEST(Strutil, StartsEndsWith) {
  EXPECT_TRUE(strutil::starts_with("task.000001", "task."));
  EXPECT_FALSE(strutil::starts_with("task", "task."));
  EXPECT_TRUE(strutil::ends_with("file.csv", ".csv"));
  EXPECT_FALSE(strutil::ends_with("csv", ".csv"));
}

TEST(Strutil, Padding) {
  EXPECT_EQ(strutil::pad_left("ab", 5), "   ab");
  EXPECT_EQ(strutil::pad_right("ab", 5), "ab   ");
  EXPECT_EQ(strutil::pad_left("abcdef", 3), "abcdef");
  EXPECT_EQ(strutil::zero_pad(42, 6), "000042");
}

TEST(Strutil, FormatDurationAdaptiveUnits) {
  EXPECT_EQ(strutil::format_duration(2.5e-9), "2.5 ns");
  EXPECT_EQ(strutil::format_duration(63e-6), "63.0 us");
  EXPECT_EQ(strutil::format_duration(0.47e-3), "470.0 us");
  EXPECT_EQ(strutil::format_duration(4.7e-3), "4.70 ms");
  EXPECT_EQ(strutil::format_duration(32.0), "32.00 s");
  EXPECT_EQ(strutil::format_duration(600.0), "10.0 min");
  EXPECT_EQ(strutil::format_duration(7200.0), "2.00 h");
}

TEST(Strutil, FormatBytes) {
  EXPECT_EQ(strutil::format_bytes(512), "512 B");
  EXPECT_EQ(strutil::format_bytes(2048), "2.0 KiB");
  EXPECT_EQ(strutil::format_bytes(1.6e12), "1.5 TiB");
}

// ---------------------------------------------------------------------------
// error
// ---------------------------------------------------------------------------

TEST(ErrorHandling, CodeAndMessage) {
  try {
    raise(Errc::not_found, "thing is missing");
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::not_found);
    EXPECT_NE(std::string(e.what()).find("not_found"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("thing is missing"),
              std::string::npos);
  }
}

TEST(ErrorHandling, EnsurePassesAndThrows) {
  EXPECT_NO_THROW(ensure(true, Errc::internal, "fine"));
  EXPECT_THROW(ensure(false, Errc::capacity, "nope"), Error);
}

// ---------------------------------------------------------------------------
// ids
// ---------------------------------------------------------------------------

TEST(Ids, MonotonicPerPrefix) {
  common::IdGenerator gen;
  EXPECT_EQ(gen.next("task"), "task.000000");
  EXPECT_EQ(gen.next("task"), "task.000001");
  EXPECT_EQ(gen.next("svc"), "svc.000000");
  EXPECT_EQ(gen.count("task"), 2u);
  gen.reset();
  EXPECT_EQ(gen.next("task"), "task.000000");
}

// ---------------------------------------------------------------------------
// logging
// ---------------------------------------------------------------------------

TEST(Logging, MemorySinkCapturesAboveThreshold) {
  auto sink = std::make_shared<common::MemorySink>();
  common::LogConfig::global().set_sink(sink);
  common::LogConfig::global().set_level(common::LogLevel::info);

  common::Logger log("test", [] { return 12.5; });
  log.debug("hidden");
  log.info("visible");
  log.error("loud");

  EXPECT_EQ(sink->count(common::LogLevel::debug), 0u);
  EXPECT_EQ(sink->count(common::LogLevel::info), 1u);
  EXPECT_EQ(sink->count(common::LogLevel::error), 1u);
  EXPECT_DOUBLE_EQ(sink->records().front().time, 12.5);
  EXPECT_EQ(sink->records().front().logger, "test");

  common::LogConfig::global().set_sink(nullptr);
  common::LogConfig::global().set_level(common::LogLevel::warn);
}

TEST(Logging, JsonLinesSinkEmitsParsableRecords) {
  auto sink = std::make_shared<common::JsonLinesSink>();
  common::LogConfig::global().set_sink(sink);
  common::LogConfig::global().set_level(common::LogLevel::info);

  common::Logger log("tracer", [] { return 3.75; });
  log.info("span opened");
  log.warn(R"(quotes " and \ backslashes survive)");

  const auto lines = sink->lines();
  ASSERT_EQ(lines.size(), 2u);
  ASSERT_EQ(sink->size(), 2u);
  const auto first = json::Value::parse(lines[0]);
  EXPECT_DOUBLE_EQ(first.at("time").as_double(), 3.75);
  EXPECT_EQ(first.at("level").as_string(), "INFO");
  EXPECT_EQ(first.at("logger").as_string(), "tracer");
  EXPECT_EQ(first.at("message").as_string(), "span opened");
  // Every line must round-trip: escaping is the whole point of the
  // JSON-lines format.
  const auto second = json::Value::parse(lines[1]);
  EXPECT_EQ(second.at("message").as_string(),
            R"(quotes " and \ backslashes survive)");
  sink->clear();
  EXPECT_EQ(sink->size(), 0u);

  common::LogConfig::global().set_sink(nullptr);
  common::LogConfig::global().set_level(common::LogLevel::warn);
}

// ---------------------------------------------------------------------------
// config
// ---------------------------------------------------------------------------

TEST(Config, DottedPathLookups) {
  const auto config = common::Config::from_string(
      R"({"platform": {"network": {"latency_ms": 0.063, "up": true},
          "name": "delta"}, "count": 4})");
  EXPECT_DOUBLE_EQ(config.get_double("platform.network.latency_ms", -1),
                   0.063);
  EXPECT_TRUE(config.get_bool("platform.network.up", false));
  EXPECT_EQ(config.get_string("platform.name", "?"), "delta");
  EXPECT_EQ(config.get_int("count", -1), 4);
  EXPECT_EQ(config.get_int("missing.path", 7), 7);
  EXPECT_TRUE(config.has("platform.network"));
  EXPECT_FALSE(config.has("platform.storage"));
}

TEST(Config, SetCreatesIntermediateObjects) {
  common::Config config;
  config.set("a.b.c", json::Value(3));
  EXPECT_EQ(config.get_int("a.b.c", -1), 3);
  config.set("a.b.c", json::Value(4));
  EXPECT_EQ(config.get_int("a.b.c", -1), 4);
}

TEST(Config, DeepMergeOverlay) {
  auto base = common::Config::from_string(
      R"({"a": {"x": 1, "y": 2}, "keep": "base"})");
  const auto overlay = common::Config::from_string(
      R"({"a": {"y": 20, "z": 30}, "new": true})");
  base.merge(overlay);
  EXPECT_EQ(base.get_int("a.x", -1), 1);
  EXPECT_EQ(base.get_int("a.y", -1), 20);
  EXPECT_EQ(base.get_int("a.z", -1), 30);
  EXPECT_EQ(base.get_string("keep", ""), "base");
  EXPECT_TRUE(base.get_bool("new", false));
}

TEST(Config, RejectsNonObjectRoot) {
  EXPECT_THROW((void)common::Config::from_string("[1,2]"), Error);
  EXPECT_THROW((void)common::Config::from_file("/nonexistent/x.json"),
               Error);
}

// ---------------------------------------------------------------------------
// statistics
// ---------------------------------------------------------------------------

TEST(OnlineStats, WelfordMatchesClosedForm) {
  common::OnlineStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(x);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(OnlineStats, MergeEqualsSequential) {
  common::OnlineStats a;
  common::OnlineStats b;
  common::OnlineStats both;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 2.0);
    (i % 2 == 0 ? a : b).add(x);
    both.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_NEAR(a.mean(), both.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), both.variance(), 1e-9);
}

TEST(Summary, QuantilesInterpolate) {
  common::Summary summary;
  for (int i = 1; i <= 100; ++i) summary.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(summary.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(summary.quantile(1.0), 100.0);
  EXPECT_NEAR(summary.median(), 50.5, 1e-9);
  EXPECT_NEAR(summary.p95(), 95.05, 1e-9);
  EXPECT_THROW((void)summary.quantile(1.5), Error);
  EXPECT_THROW((void)common::Summary().quantile(0.5), Error);
}

TEST(Summary, JsonExport) {
  common::Summary summary;
  summary.add(1.0);
  summary.add(3.0);
  const auto j = summary.to_json();
  EXPECT_EQ(j.at("count").as_int(), 2);
  EXPECT_DOUBLE_EQ(j.at("mean").as_double(), 2.0);
}

TEST(Histogram, BinsAndSaturation) {
  common::Histogram hist(0.0, 10.0, 5);
  hist.add(-1.0);   // clamps to bin 0
  hist.add(0.5);
  hist.add(5.0);
  hist.add(99.0);   // clamps to last bin
  EXPECT_EQ(hist.total(), 4u);
  EXPECT_EQ(hist.count(0), 2u);
  EXPECT_EQ(hist.count(2), 1u);
  EXPECT_EQ(hist.count(4), 1u);
  EXPECT_DOUBLE_EQ(hist.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(hist.bin_hi(1), 4.0);
  EXPECT_THROW((void)hist.count(9), Error);
  EXPECT_THROW(common::Histogram(1.0, 1.0, 4), Error);
}

// ---------------------------------------------------------------------------
// random
// ---------------------------------------------------------------------------

TEST(Random, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Random, ForkDecorrelatesStreams) {
  Rng parent(5);
  Rng child_a = parent.fork("alpha");
  Rng child_b = parent.fork("beta");
  Rng child_a2 = Rng(5).fork("alpha");
  EXPECT_DOUBLE_EQ(child_a.uniform(0, 1), child_a2.uniform(0, 1));
  // Different tags give different streams (overwhelmingly likely).
  EXPECT_NE(child_a.uniform(0, 1), child_b.uniform(0, 1));
}

TEST(Random, WeightedIndexRespectsWeights) {
  Rng rng(9);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 3000; ++i) {
    ++counts[rng.weighted_index({1.0, 0.0, 3.0})];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0]);
  EXPECT_THROW((void)rng.weighted_index({}), Error);
  EXPECT_THROW((void)rng.weighted_index({0.0, 0.0}), Error);
}

struct DistCase {
  const char* name;
  Distribution dist;
  double expected_mean;
  double tolerance;
};

class DistributionSampling : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributionSampling, EmpiricalMeanMatchesAnalytic) {
  const auto& param = GetParam();
  Rng rng(2024);
  common::OnlineStats stats;
  for (int i = 0; i < 20000; ++i) {
    const double x = param.dist.sample(rng);
    EXPECT_GE(x, 0.0) << "durations must be non-negative";
    stats.add(x);
  }
  EXPECT_NEAR(stats.mean(), param.expected_mean,
              param.tolerance * param.expected_mean);
  EXPECT_NEAR(param.dist.mean(), param.expected_mean,
              param.tolerance * param.expected_mean);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, DistributionSampling,
    ::testing::Values(
        DistCase{"constant", Distribution::constant(4.2), 4.2, 1e-9},
        DistCase{"uniform", Distribution::uniform(2.0, 6.0), 4.0, 0.02},
        DistCase{"normal", Distribution::normal(10.0, 1.0), 10.0, 0.02},
        DistCase{"lognormal", Distribution::lognormal(8.0, 0.25),
                 8.0 * std::exp(0.25 * 0.25 / 2.0), 0.03},
        DistCase{"exponential", Distribution::exponential(3.0), 3.0, 0.05}),
    [](const ::testing::TestParamInfo<DistCase>& info) {
      return info.param.name;
    });

TEST(Distribution, JsonRoundTrip) {
  const auto original = Distribution::normal(0.063e-3, 0.014e-3, 1e-6);
  const auto reparsed = Distribution::from_json(original.to_json());
  Rng a(1);
  Rng b(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(original.sample(a), reparsed.sample(b));
  }
}

TEST(Distribution, FromJsonScalarShorthand) {
  const auto d = Distribution::from_json(json::Value(2.5));
  EXPECT_EQ(d.kind(), Distribution::Kind::constant);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(d.sample(rng), 2.5);
}

TEST(Distribution, FromJsonRejectsUnknownKind) {
  EXPECT_THROW((void)Distribution::from_json(json::Value::parse(
                   R"({"kind":"zipf","a":1})")),
               Error);
}

TEST(Distribution, NormalClampedAtFloor) {
  const auto d = Distribution::normal(0.0, 1.0, 0.5);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(d.sample(rng), 0.5);
  }
}

TEST(Distribution, ScaledScalesMean) {
  const auto d = Distribution::normal(10.0, 2.0).scaled(0.5);
  EXPECT_DOUBLE_EQ(d.mean(), 5.0);
  EXPECT_THROW((void)d.scaled(0.0), Error);
  const auto log_scaled = Distribution::lognormal(8.0, 0.3).scaled(2.0);
  EXPECT_NEAR(log_scaled.mean(),
              16.0 * std::exp(0.3 * 0.3 / 2.0), 1e-9);
}

TEST(Distribution, ValidationErrors) {
  EXPECT_THROW((void)Distribution::uniform(5.0, 1.0), Error);
  EXPECT_THROW((void)Distribution::normal(1.0, -1.0), Error);
  EXPECT_THROW((void)Distribution::lognormal(0.0, 0.3), Error);
  EXPECT_THROW((void)Distribution::exponential(0.0), Error);
}

}  // namespace
