// Tests for the ServiceManager: bootstrap pipeline, readiness barriers,
// timeouts, liveness/heartbeats, kill/restart, draining and remote
// registration.

#include <gtest/gtest.h>

#include "ripple/common/error.hpp"
#include "ripple/core/session.hpp"
#include "ripple/msg/rpc.hpp"
#include "ripple/ml/install.hpp"
#include "ripple/platform/profiles.hpp"

namespace {

using namespace ripple;
using namespace ripple::core;

ServiceDescription svc_desc(const std::string& model = "noop") {
  ServiceDescription desc;
  desc.name = "svc";
  desc.program = "inference";
  desc.config = json::Value::object({{"model", model}});
  desc.gpus = 1;
  return desc;
}

class ServiceManagerTest : public ::testing::Test {
 protected:
  Session session{SessionConfig{.seed = 42}};
  Pilot* pilot = nullptr;

  void SetUp() override {
    ml::install(session);
    session.add_platform(platform::delta_profile(4));
    pilot = &session.submit_pilot({.platform = "delta", .nodes = 4});
  }
};

TEST_F(ServiceManagerTest, BootstrapWalksAllStates) {
  const auto uid = session.services().submit(*pilot, svc_desc());
  session.services().when_ready(
      {uid}, [&](bool ok) {
        EXPECT_TRUE(ok);
        session.services().stop_all();
      });
  session.run();

  const auto& svc = session.services().get(uid);
  EXPECT_EQ(svc.state(), ServiceState::stopped);
  // Every bootstrap state was visited, in order.
  double last = -1;
  for (const auto state :
       {ServiceState::scheduling, ServiceState::scheduled,
        ServiceState::launching, ServiceState::initializing,
        ServiceState::publishing, ServiceState::running,
        ServiceState::stopped}) {
    const double t = svc.state_time(state);
    EXPECT_GE(t, last) << to_string(state);
    last = t;
  }
  EXPECT_TRUE(svc.bootstrap().complete());
  EXPECT_EQ(svc.endpoint(), uid);
}

TEST_F(ServiceManagerTest, TimelineReceivesTransitions) {
  const auto uid = session.services().submit(*pilot, svc_desc());
  session.services().when_ready(
      {uid}, [&](bool) { session.services().stop_all(); });
  session.run();
  auto& timeline = session.timeline();
  EXPECT_GE(timeline.records().size(), 7u);
  EXPECT_GE(timeline.state_time(uid, "RUNNING"), 0.0);
  EXPECT_DOUBLE_EQ(
      timeline.duration(uid, "LAUNCHING", "RUNNING"),
      session.services().get(uid).bootstrap().total());
}

TEST_F(ServiceManagerTest, WhenReadyFiresImmediatelyIfAlreadyRunning) {
  const auto uid = session.services().submit(*pilot, svc_desc());
  bool first = false;
  session.services().when_ready({uid}, [&](bool ok) { first = ok; });
  session.run();
  EXPECT_TRUE(first);
  // Second watcher on an already-running service fires right away.
  bool second = false;
  session.services().when_ready({uid}, [&](bool ok) { second = ok; });
  session.run();
  EXPECT_TRUE(second);
  session.services().stop_all();
  session.run();
}

TEST_F(ServiceManagerTest, ReadyTimeoutFailsService) {
  auto desc = svc_desc("llama-8b");  // ~35 s init
  desc.ready_timeout = 5.0;          // far too short
  const auto uid = session.services().submit(*pilot, desc);
  bool ready_result = true;
  session.services().when_ready({uid},
                                [&](bool ok) { ready_result = ok; });
  session.run();
  EXPECT_FALSE(ready_result);
  EXPECT_EQ(session.services().get(uid).state(), ServiceState::failed);
  EXPECT_NE(session.services().get(uid).error().find("ready timeout"),
            std::string::npos);
}

TEST_F(ServiceManagerTest, UnknownProgramAndModelFail) {
  auto bad_program = svc_desc();
  bad_program.program = "warp-drive";
  EXPECT_THROW((void)session.services().submit(*pilot, bad_program), Error);

  auto bad_model = svc_desc("gpt-17");
  const auto uid = session.services().submit(*pilot, bad_model);
  bool ok = true;
  session.services().when_ready({uid}, [&](bool r) { ok = r; });
  session.run();
  EXPECT_FALSE(ok);
  EXPECT_EQ(session.services().get(uid).state(), ServiceState::failed);
}

TEST_F(ServiceManagerTest, EndpointsFilterByNameAndState) {
  auto named = svc_desc();
  named.name = "alpha";
  const auto a = session.services().submit(*pilot, named);
  named.name = "beta";
  const auto b = session.services().submit(*pilot, named);
  session.services().when_ready({a, b}, [&](bool) {});
  session.run();
  EXPECT_EQ(session.services().endpoints().size(), 2u);
  EXPECT_EQ(session.services().endpoints("alpha").size(), 1u);
  EXPECT_EQ(session.services().running("beta"), std::vector<std::string>{b});
  session.services().stop(a);
  session.run();
  EXPECT_EQ(session.services().endpoints().size(), 1u);
  session.services().stop_all();
  session.run();
}

TEST_F(ServiceManagerTest, StopDuringBootstrapCancels) {
  auto slow = svc_desc("llama-8b");
  const auto uid = session.services().submit(*pilot, slow);
  session.run_until(10.0);  // mid-init
  EXPECT_EQ(session.services().get(uid).state(),
            ServiceState::initializing);
  bool stopped = false;
  session.services().stop(uid, [&] { stopped = true; });
  session.run();
  EXPECT_TRUE(stopped);
  EXPECT_EQ(session.services().get(uid).state(), ServiceState::canceled);
  // Slot returned: all GPUs free again.
  EXPECT_EQ(pilot->cluster().node(0).free_gpus(), 4u);
}

TEST_F(ServiceManagerTest, DrainWaitsForOutstandingRequests) {
  const auto uid = session.services().submit(*pilot, svc_desc("llama-8b"));
  bool request_done = false;
  bool drain_done = false;
  double drained_at = -1;
  std::unique_ptr<msg::RpcClient> rpc;
  session.services().when_ready({uid}, [&](bool ok) {
    ASSERT_TRUE(ok);
    // Fire a slow inference directly at the service, then stop it while
    // the request is still being generated (several seconds of llama).
    rpc = std::make_unique<msg::RpcClient>(
        session.runtime().router(), "probe", pilot->cluster().head_host());
    rpc->call(session.services().get(uid).endpoint(), "infer",
              json::Value::object(),
              [&](msg::CallResult r) { request_done = r.ok; });
    session.loop().call_after(0.5, [&, uid] {
      ASSERT_GT(session.services().program(uid)->outstanding(), 0u);
      session.services().stop(uid, [&] {
        drain_done = true;
        drained_at = session.now();
      });
    });
  });
  session.run();
  EXPECT_TRUE(request_done);  // the in-flight request completed
  EXPECT_TRUE(drain_done);
  EXPECT_EQ(session.services().get(uid).state(), ServiceState::stopped);
  // Draining had to outlast the multi-second llama inference.
  const double running_at =
      session.services().get(uid).state_time(ServiceState::running);
  EXPECT_GT(drained_at - running_at, 1.0);
}

TEST_F(ServiceManagerTest, KillDetectedByLivenessAndRestarted) {
  auto desc = svc_desc();
  desc.monitor = true;
  desc.heartbeat_interval = 5.0;
  desc.heartbeat_misses = 2;
  desc.restart_on_failure = true;
  desc.max_restarts = 1;
  const auto uid = session.services().submit(*pilot, desc);

  int ready_count = 0;
  session.services().when_ready({uid}, [&](bool ok) {
    ASSERT_TRUE(ok);
    ++ready_count;
    // Crash it silently shortly after it came up. The liveness window
    // is heartbeat_interval * misses = 10 s; re-watch after the manager
    // has detected the crash and begun the restart.
    session.loop().call_after(3.0, [&, uid] {
      session.services().kill(uid);
      session.loop().call_after(12.0, [&, uid] {
        EXPECT_FALSE(is_terminal(session.services().get(uid).state()))
            << "restart should be in flight";
        session.services().when_ready({uid}, [&](bool ok2) {
          EXPECT_TRUE(ok2);
          ++ready_count;
          session.services().stop_all();
        });
      });
    });
  });
  session.run();
  EXPECT_EQ(ready_count, 2);
  EXPECT_EQ(session.services().get(uid).restarts(), 1);
  EXPECT_EQ(session.services().get(uid).state(), ServiceState::stopped);
}

TEST_F(ServiceManagerTest, KillWithoutRestartStaysFailed) {
  auto desc = svc_desc();
  desc.monitor = true;
  desc.heartbeat_interval = 2.0;
  desc.heartbeat_misses = 2;
  const auto uid = session.services().submit(*pilot, desc);
  session.services().when_ready({uid}, [&](bool ok) {
    ASSERT_TRUE(ok);
    session.services().kill(uid);
  });
  session.run();
  EXPECT_EQ(session.services().get(uid).state(), ServiceState::failed);
  EXPECT_NE(session.services().get(uid).error().find("liveness"),
            std::string::npos);
  // GPU slot released on failure.
  std::size_t free_gpus = 0;
  for (std::size_t n = 0; n < 4; ++n) {
    free_gpus += pilot->cluster().node(n).free_gpus();
  }
  EXPECT_EQ(free_gpus, 16u);
}

TEST_F(ServiceManagerTest, HeartbeatsKeepHealthyServiceAlive) {
  auto desc = svc_desc();
  desc.monitor = true;
  desc.heartbeat_interval = 1.0;
  desc.heartbeat_misses = 2;
  const auto uid = session.services().submit(*pilot, desc);
  session.services().when_ready({uid}, [&](bool ok) {
    ASSERT_TRUE(ok);
    // Let many heartbeat periods elapse, then stop cleanly.
    session.loop().call_after(20.0,
                              [&] { session.services().stop_all(); });
  });
  session.run();
  EXPECT_EQ(session.services().get(uid).state(), ServiceState::stopped);
  EXPECT_GT(session.services().get(uid).last_heartbeat(), 15.0);
}

TEST_F(ServiceManagerTest, RemoteServiceSkipsBootstrap) {
  auto& r3 = session.add_platform(platform::r3_profile(2));
  auto desc = svc_desc();
  desc.config.set("preloaded", true);
  const auto uid = session.services().register_remote(r3, desc, 1);
  session.services().when_ready({uid}, [&](bool ok) { EXPECT_TRUE(ok); });
  session.run();
  const auto& svc = session.services().get(uid);
  EXPECT_TRUE(svc.remote());
  EXPECT_EQ(svc.state(), ServiceState::running);
  EXPECT_FALSE(svc.bootstrap().complete());  // no BT for remote (paper)
  EXPECT_EQ(session.metrics().bootstraps().size(), 0u);
  EXPECT_DOUBLE_EQ(svc.state_time(ServiceState::running), 0.0);
  session.services().stop_all();
  session.run();
}

TEST_F(ServiceManagerTest, StatsExposeProgramCounters) {
  const auto uid = session.services().submit(*pilot, svc_desc());
  session.services().when_ready({uid}, [&](bool) {});
  session.run();
  const auto stats = session.services().stats(uid);
  EXPECT_EQ(stats.at("state").as_string(), "RUNNING");
  EXPECT_TRUE(stats.contains("bootstrap"));
  EXPECT_EQ(stats.at("program").at("model").as_string(), "noop");
  session.services().stop_all();
  session.run();
}

TEST_F(ServiceManagerTest, BootstrapCohortRecorded) {
  std::vector<std::string> uids;
  for (int i = 0; i < 6; ++i) {
    uids.push_back(session.services().submit(*pilot, svc_desc()));
  }
  session.services().when_ready(uids,
                                [&](bool) { session.services().stop_all(); });
  session.run();
  ASSERT_EQ(session.metrics().bootstraps().size(), 6u);
  for (const auto& record : session.metrics().bootstraps()) {
    EXPECT_GE(record.cohort, 1u);
    EXPECT_LE(record.cohort, 6u);
  }
}

}  // namespace
