// Multi-tenant runtime tests: weighted fair-share grant arbitration
// (DRF-style dominant shares over priority classes), the cross-tenant
// priority-tie ordering audit, per-tenant store and link quotas,
// content-addressed replica sharing between tenants, and the
// per-tenant accounting the Session-level APIs wire up.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ripple/common/error.hpp"
#include "ripple/common/shard_executor.hpp"
#include "ripple/core/session.hpp"
#include "ripple/data/catalog.hpp"
#include "ripple/data/transfer_engine.hpp"
#include "ripple/platform/profiles.hpp"
#include "ripple/wf/workflow_manager.hpp"

namespace {

using namespace ripple;
using namespace ripple::core;

ScheduleRequest one_core(const std::string& uid, const std::string& tenant,
                         std::vector<std::string>* order) {
  ScheduleRequest request;
  request.uid = uid;
  request.cores = 1;
  request.tenant = tenant;
  request.granted = [order, uid](platform::Slot, platform::Node*) {
    order->push_back(uid);
  };
  return request;
}

// ---------------------------------------------------------------------------
// Weighted fair-share scheduling
// ---------------------------------------------------------------------------

TEST(TenantsTest, FairShareGrantsFollowWeights) {
  Session session{SessionConfig{.seed = 11}};
  session.add_platform(platform::delta_profile(1));
  Pilot& pilot = session.submit_pilot({.platform = "delta", .nodes = 1});
  auto& sched = session.scheduler();
  sched.set_tenant_weight("heavy", 2.0);
  sched.set_tenant_weight("light", 1.0);

  // Fill the single 64-core node with one-core fillers so capacity can
  // be handed back one core at a time — each release runs one
  // fair-share pass granting exactly one queued request, with the
  // dominant-share ledger updated between passes.
  std::vector<platform::Slot> filler_slots;
  for (int i = 0; i < 64; ++i) {
    ScheduleRequest filler;
    filler.uid = "filler" + std::to_string(i);
    filler.cores = 1;
    filler.granted = [&](platform::Slot slot, platform::Node*) {
      filler_slots.push_back(slot);
    };
    sched.submit(pilot.uid(), std::move(filler));
  }
  session.run();
  ASSERT_EQ(filler_slots.size(), 64u);

  std::vector<std::string> order;
  for (int i = 0; i < 4; ++i) {
    sched.submit(pilot.uid(),
                 one_core("h" + std::to_string(i), "heavy", &order));
    sched.submit(pilot.uid(),
                 one_core("l" + std::to_string(i), "light", &order));
  }
  session.run();
  ASSERT_TRUE(order.empty());  // still full

  for (int i = 0; i < 8; ++i) {
    sched.release(pilot.uid(), filler_slots[i]);
    session.run();
    ASSERT_EQ(order.size(), static_cast<std::size_t>(i) + 1);
  }

  // Dominant shares replay the weights. Per grant the heavy tenant is
  // charged f/2 and the light tenant f (f = 1/64 of the pilot's
  // cores); the lowest accumulated share goes first, ties resolved by
  // global submission order. That walk is h0 l0 h1 l1 h2 h3 l2 l3 —
  // two heavy grants per light grant once the ledgers separate.
  EXPECT_EQ(order, (std::vector<std::string>{"h0", "l0", "h1", "l1", "h2",
                                             "h3", "l2", "l3"}));
  EXPECT_GT(sched.tenant_share("light"), sched.tenant_share("heavy"));
  EXPECT_TRUE(sched.fair_share());
}

TEST(TenantsTest, FairShareKeepsPriorityClassesAbsolute) {
  // Fair-share reorders only within a priority class; a higher-priority
  // request from the most-served tenant still outranks everyone.
  Session session{SessionConfig{.seed = 12}};
  session.add_platform(platform::delta_profile(1));
  Pilot& pilot = session.submit_pilot({.platform = "delta", .nodes = 1});
  auto& sched = session.scheduler();
  sched.set_tenant_weight("a", 1.0);
  sched.set_tenant_weight("b", 1.0);

  std::vector<platform::Slot> filler_slots;
  ScheduleRequest filler;
  filler.uid = "filler";
  filler.cores = 64;
  filler.granted = [&](platform::Slot slot, platform::Node*) {
    filler_slots.push_back(slot);
  };
  sched.submit(pilot.uid(), std::move(filler));
  session.run();

  std::vector<std::string> order;
  sched.submit(pilot.uid(), one_core("a-low", "a", &order));
  sched.submit(pilot.uid(), one_core("b-low", "b", &order));
  ScheduleRequest urgent = one_core("a-high", "a", &order);
  urgent.priority = 5;
  sched.submit(pilot.uid(), std::move(urgent));
  session.run();

  sched.release(pilot.uid(), filler_slots.front());
  session.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order.front(), "a-high");
}

// ---------------------------------------------------------------------------
// Cross-tenant priority-tie ordering (the WaitQueue audit)
// ---------------------------------------------------------------------------

struct TieRun {
  std::vector<std::string> order;
  std::uint64_t hash = 0;
};

TieRun run_tie_break(std::size_t shards) {
  common::ShardExecutor exec(shards);
  Session session{SessionConfig{.seed = 21}};
  session.add_platform(platform::delta_profile(1));
  Pilot& pilot = session.submit_pilot({.platform = "delta", .nodes = 1});
  auto& sched = session.scheduler();
  if (shards > 1) sched.set_shard_executor(&exec);

  TieRun out;
  std::vector<platform::Slot> filler_slots;
  ScheduleRequest filler;
  filler.uid = "filler";
  filler.cores = 64;
  filler.granted = [&](platform::Slot slot, platform::Node*) {
    filler_slots.push_back(slot);
  };
  sched.submit(pilot.uid(), std::move(filler));
  session.run();

  // Two tenants interleave equal-priority submissions. No weights are
  // registered: grants must follow global (time, sequence) submission
  // order, never per-tenant or per-session insertion order.
  for (int i = 0; i < 6; ++i) {
    const std::string tenant = i % 2 == 0 ? "sessionA" : "sessionB";
    sched.submit(pilot.uid(),
                 one_core("r" + std::to_string(i), tenant, &out.order));
  }
  session.run();
  sched.release(pilot.uid(), filler_slots.front());
  session.run();
  out.hash = sched.grant_log_hash();
  return out;
}

TEST(TenantsTest, CrossTenantTieBreak) {
  const TieRun serial = run_tie_break(1);
  EXPECT_EQ(serial.order, (std::vector<std::string>{"r0", "r1", "r2", "r3",
                                                    "r4", "r5"}));
  for (const std::size_t shards : {4}) {
    const TieRun sharded = run_tie_break(shards);
    EXPECT_EQ(sharded.order, serial.order) << "shards=" << shards;
    EXPECT_EQ(sharded.hash, serial.hash) << "shards=" << shards;
  }
  const TieRun rerun = run_tie_break(1);
  EXPECT_EQ(rerun.hash, serial.hash);
}

// ---------------------------------------------------------------------------
// Weighted links and link quotas
// ---------------------------------------------------------------------------

TEST(TenantsTest, WeightedLinkSharesSplitBandwidthByWeight) {
  sim::EventLoop loop;
  common::Rng rng(7);
  data::TransferEngine engine(loop, rng);
  engine.set_default_bandwidth(1e9);
  engine.set_setup_latency(common::Distribution::constant(0.0));
  engine.set_tenant_weight("heavy", 3.0);
  engine.set_tenant_weight("light", 1.0);

  double done_heavy = -1.0;
  double done_light = -1.0;
  engine.transfer(
      "a", "src", "dst", 10e9,
      [&](bool ok, sim::Duration) {
        EXPECT_TRUE(ok);
        done_heavy = loop.now();
      },
      "heavy");
  engine.transfer(
      "b", "src", "dst", 10e9,
      [&](bool ok, sim::Duration) {
        EXPECT_TRUE(ok);
        done_light = loop.now();
      },
      "light");
  loop.run();

  // heavy flows at 750 MB/s while sharing -> done at 13.33 s; light
  // then owns the link for its remaining 6.67 GB -> done at 20 s.
  EXPECT_NEAR(done_heavy, 10e9 / 0.75e9, 0.1);
  EXPECT_NEAR(done_light, 20.0, 0.1);
  EXPECT_LT(done_heavy, done_light);
}

TEST(TenantsTest, LinkQuotaSerializesOverCapTenant) {
  sim::EventLoop loop;
  common::Rng rng(7);
  data::TransferEngine engine(loop, rng);
  engine.set_default_bandwidth(1e9);
  engine.set_setup_latency(common::Distribution::constant(0.0));
  engine.set_tenant_link_quota("capped", 10e9);

  std::vector<double> done;
  for (int i = 0; i < 3; ++i) {
    engine.transfer(
        "d" + std::to_string(i), "src", "dst", 8e9,
        [&](bool ok, sim::Duration) {
          EXPECT_TRUE(ok);
          done.push_back(loop.now());
        },
        "capped");
  }
  loop.run();

  // 8 GB in flight is within the 10 GB quota; a second 8 GB transfer
  // would exceed it, so the three serialize at 8 s each instead of
  // fair-sharing to a common 24 s finish.
  ASSERT_EQ(done.size(), 3u);
  EXPECT_NEAR(done[0], 8.0, 0.1);
  EXPECT_NEAR(done[1], 16.0, 0.1);
  EXPECT_NEAR(done[2], 24.0, 0.1);
}

TEST(TenantsTest, LinkQuotaNeverStarvesSoloTransfer) {
  sim::EventLoop loop;
  common::Rng rng(7);
  data::TransferEngine engine(loop, rng);
  engine.set_default_bandwidth(1e9);
  engine.set_setup_latency(common::Distribution::constant(0.0));
  // Quota below the transfer's own size: with nothing of its in
  // flight, the tenant is admitted anyway (quotas bound concurrency,
  // they must not deadlock a single oversized transfer).
  engine.set_tenant_link_quota("capped", 1e9);

  bool finished = false;
  engine.transfer(
      "big", "src", "dst", 8e9, [&](bool ok, sim::Duration) { finished = ok; },
      "capped");
  loop.run();
  EXPECT_TRUE(finished);
}

// ---------------------------------------------------------------------------
// Shared content-addressed cache across tenants
// ---------------------------------------------------------------------------

TEST(TenantsTest, SecondTenantHitsFirstTenantsWarmReplica) {
  Session session{SessionConfig{.seed = 33}};
  session.add_platform(platform::delta_profile(2));
  (void)session.submit_pilot({.platform = "delta", .nodes = 1});
  auto& data = session.data();
  data.add_store("delta", 1e12);
  // Both tenants register their own name for the same content.
  data.register_dataset("t0/corpus", 4e9, "archive", "cid:corpus");
  data.register_dataset("t1/corpus", 4e9, "archive", "cid:corpus");

  bool first = false;
  bool second = false;
  data.stage(
      "t0/corpus", "delta", [&](bool ok, sim::Duration) { first = ok; },
      "tenant0");
  session.run();
  ASSERT_TRUE(first);
  const double moved_after_first = data.bytes_moved();
  EXPECT_GT(moved_after_first, 0.0);

  // The second tenant's differently-named stage resolves to the warm
  // canonical replica: no second transfer, no extra bytes.
  data.stage(
      "t1/corpus", "delta", [&](bool ok, sim::Duration) { second = ok; },
      "tenant1");
  session.run();
  EXPECT_TRUE(second);
  EXPECT_DOUBLE_EQ(data.bytes_moved(), moved_after_first);
  EXPECT_EQ(data.transfers(), 1u);
}

// ---------------------------------------------------------------------------
// Session wiring and per-tenant accounting
// ---------------------------------------------------------------------------

TEST(TenantsTest, SessionApisThreadTenantsThroughWorkflows) {
  Session session{SessionConfig{.seed = 44}};
  session.enable_tracing();  // arm the per-tenant counters
  session.add_platform(platform::delta_profile(2));
  Pilot& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});
  session.set_tenant_weight("wf-tenant", 2.0);
  session.set_tenant_store_quota("delta", "wf-tenant", 1e12);
  session.set_tenant_link_quota("wf-tenant", 1e12);
  session.data().register_dataset("input", 1e9, "archive");
  wf::WorkflowManager workflows(session);

  TaskDescription task;
  task.kind = "modeled";
  task.cores = 1;
  task.duration = common::Distribution::constant(1.0);
  wf::Stage stage;
  stage.name = "consume";
  stage.consumes = {"input"};
  stage.tasks = {task};
  wf::Graph graph("tenant-graph");
  graph.tenant = "wf-tenant";
  graph.add(stage);

  wf::GraphResult result;
  workflows.run_graph(graph, pilot,
                      [&](const wf::GraphResult& r) { result = r; });
  session.run();

  EXPECT_TRUE(result.ok);
  // Every layer accounted the tenant: scheduler grants, transfer
  // counters, and the catalog's per-tenant pins paired up (an
  // unbalanced pin/unpin pair would have thrown mid-run).
  EXPECT_GE(session.counters().value("sched.grants.wf-tenant"), 1);
  EXPECT_GE(session.counters().value("data.transfers.wf-tenant"), 1);
  EXPECT_GT(session.scheduler().tenant_share("wf-tenant"), 0.0);
  EXPECT_EQ(session.data().catalog().pins("input", "delta"), 0u);
}

TEST(TenantsTest, ApiGuards) {
  Session session{SessionConfig{.seed = 55}};
  EXPECT_THROW(session.set_tenant_weight("", 1.0), Error);
  EXPECT_THROW(session.set_tenant_weight("t", 0.0), Error);
  EXPECT_THROW(session.set_tenant_link_quota("t", -1.0), Error);
  data::ReplicaCatalog catalog;
  catalog.add_store("z", 100.0);
  catalog.register_dataset("d", 10.0, "z");
  catalog.pin("d", "z", "a");
  // Unpinning under the wrong tenant must not touch tenant a's count.
  EXPECT_THROW(catalog.unpin("d", "z", "b"), Error);
  catalog.unpin("d", "z", "a");
}

}  // namespace
