// Data-plane tests: replica catalog (finite stores, LRU eviction,
// pinning, lineage), fair-share transfer engine (shared links,
// concurrency caps, retries), the DataManager facade (stage_all batch
// cancellation), locality-aware placement, and workflow dataset wiring.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ripple/common/error.hpp"
#include "ripple/core/session.hpp"
#include "ripple/data/catalog.hpp"
#include "ripple/data/placement_advisor.hpp"
#include "ripple/data/transfer_engine.hpp"
#include "ripple/ml/install.hpp"
#include "ripple/platform/profiles.hpp"
#include "ripple/wf/workflow_manager.hpp"

namespace {

using namespace ripple;
using namespace ripple::core;

// ---------------------------------------------------------------------------
// ReplicaCatalog
// ---------------------------------------------------------------------------

TEST(Catalog, FiniteStoreEvictsLeastRecentlyUsed) {
  data::ReplicaCatalog catalog;
  catalog.add_store("z", 100.0);
  catalog.register_dataset("a", 40.0, "z");
  catalog.register_dataset("b", 40.0, "z");
  catalog.touch("a", "z");  // b is now the LRU replica

  catalog.register_dataset("c", 40.0, "z");  // needs 40, free is 20
  EXPECT_FALSE(catalog.available_in("b", "z"));
  EXPECT_TRUE(catalog.available_in("a", "z"));
  EXPECT_TRUE(catalog.available_in("c", "z"));
  EXPECT_EQ(catalog.evictions(), 1u);
  EXPECT_EQ(catalog.eviction_log(),
            (std::vector<std::string>{"z/b"}));
  EXPECT_DOUBLE_EQ(catalog.store("z").used, 80.0);
}

TEST(Catalog, PinnedReplicasSurviveEvictionPressure) {
  data::ReplicaCatalog catalog;
  catalog.add_store("z", 100.0);
  catalog.register_dataset("a", 40.0, "z");
  catalog.register_dataset("b", 40.0, "z");
  catalog.pin("a", "z");

  // 70 bytes needed: only b (40) is evictable -> impossible, and the
  // pinned a is skipped despite being the LRU replica. The failed
  // attempt leaves a partial eviction trail (b is gone).
  EXPECT_THROW(catalog.register_dataset("big", 70.0, "z"), Error);
  EXPECT_TRUE(catalog.available_in("a", "z"));
  EXPECT_FALSE(catalog.available_in("b", "z"));
  // 60 bytes now fit next to the pinned 40.
  catalog.register_dataset("c", 60.0, "z");
  EXPECT_TRUE(catalog.available_in("a", "z"));

  catalog.unpin("a", "z");
  EXPECT_THROW(catalog.unpin("a", "z"), Error);  // not pinned anymore
}

TEST(Catalog, LineageConsumersProtectIntermediates) {
  data::ReplicaCatalog catalog;
  catalog.add_store("z", 100.0);
  // Lineage may be declared before the dataset exists.
  catalog.add_consumers("mid", 2);
  catalog.register_dataset("mid", 60.0, "z");
  EXPECT_EQ(catalog.consumers_left("mid"), 2u);

  // Protected: eviction pressure cannot reclaim it.
  EXPECT_THROW(catalog.register_dataset("big", 80.0, "z"), Error);

  catalog.consume_done("mid");
  EXPECT_THROW(catalog.register_dataset("big", 80.0, "z"), Error);
  catalog.consume_done("mid");  // last consumer finished
  catalog.register_dataset("big", 80.0, "z");
  EXPECT_FALSE(catalog.available_in("mid", "z"));
  EXPECT_THROW(catalog.consume_done("mid"), Error);
}

TEST(Catalog, ReservationsHoldSpaceUntilCommitOrRelease) {
  data::ReplicaCatalog catalog;
  catalog.add_store("z", 100.0);
  catalog.register_dataset("in-flight", 60.0, "elsewhere");

  EXPECT_TRUE(catalog.reserve("z", 60.0));
  EXPECT_DOUBLE_EQ(catalog.store("z").reserved, 60.0);
  EXPECT_FALSE(catalog.reserve("z", 50.0));  // 40 free, nothing to evict

  catalog.commit_replica("in-flight", "z");
  EXPECT_TRUE(catalog.available_in("in-flight", "z"));
  EXPECT_DOUBLE_EQ(catalog.store("z").reserved, 0.0);
  EXPECT_DOUBLE_EQ(catalog.store("z").used, 60.0);

  EXPECT_TRUE(catalog.reserve("z", 30.0));
  catalog.release_reservation("z", 30.0);
  EXPECT_DOUBLE_EQ(catalog.store("z").reserved, 0.0);
}

// ---------------------------------------------------------------------------
// TransferEngine
// ---------------------------------------------------------------------------

TEST(TransferEngineTest, FairShareSplitsLinkBandwidth) {
  sim::EventLoop loop;
  common::Rng rng(7);
  data::TransferEngine engine(loop, rng);
  engine.set_default_bandwidth(1e9);
  engine.set_setup_latency(common::Distribution::constant(0.0));

  double done_a = -1.0;
  double done_b = -1.0;
  engine.transfer("a", "src", "dst", 10e9, [&](bool ok, sim::Duration) {
    EXPECT_TRUE(ok);
    done_a = loop.now();
  });
  loop.call_after(5.0, [&] {
    engine.transfer("b", "src", "dst", 10e9, [&](bool ok, sim::Duration) {
      EXPECT_TRUE(ok);
      done_b = loop.now();
    });
  });
  loop.run();
  // a runs alone for 5 s (5 GB), shares for 10 s (5 GB) -> done at 15;
  // b then has the link to itself for its remaining 5 GB -> done at 20.
  EXPECT_NEAR(done_a, 15.0, 1e-9);
  EXPECT_NEAR(done_b, 20.0, 1e-9);
  EXPECT_EQ(engine.transfers_completed(), 2u);
  EXPECT_DOUBLE_EQ(engine.bytes_moved(), 20e9);
}

TEST(TransferEngineTest, ConcurrencyCapQueuesExcessTransfers) {
  sim::EventLoop loop;
  common::Rng rng(7);
  data::TransferEngine engine(loop, rng);
  engine.set_default_bandwidth(1e9);
  engine.set_setup_latency(common::Distribution::constant(0.0));
  engine.set_link_concurrency("src", "dst", 1);

  double done_a = -1.0;
  double done_b = -1.0;
  engine.transfer("a", "src", "dst", 1e9,
                  [&](bool, sim::Duration) { done_a = loop.now(); });
  engine.transfer("b", "src", "dst", 1e9,
                  [&](bool, sim::Duration) { done_b = loop.now(); });
  EXPECT_EQ(engine.active_on("src", "dst"), 1u);
  EXPECT_EQ(engine.queued_on("src", "dst"), 1u);
  loop.run();
  // Serialized at full bandwidth instead of halved in parallel.
  EXPECT_NEAR(done_a, 1.0, 1e-9);
  EXPECT_NEAR(done_b, 2.0, 1e-9);
}

TEST(TransferEngineTest, FailuresRetryUpToBudget) {
  sim::EventLoop loop;
  common::Rng rng(11);
  data::TransferEngine engine(loop, rng);
  engine.set_default_bandwidth(1e9);
  engine.set_setup_latency(common::Distribution::constant(0.1));
  engine.set_failure(0.97, 2);

  int fired = 0;
  engine.transfer("flaky", "src", "dst", 1e9,
                  [&](bool, sim::Duration) { ++fired; });
  loop.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.transfers_started(), 1u);
  EXPECT_EQ(engine.transfers_completed() + engine.transfers_failed(), 1u);
  if (engine.transfers_failed() == 1) {
    EXPECT_EQ(engine.retries(), 2u);  // budget exhausted before giving up
  }
}

TEST(TransferEngineTest, CancelStopsTransferWithoutCallback) {
  sim::EventLoop loop;
  common::Rng rng(3);
  data::TransferEngine engine(loop, rng);
  engine.set_default_bandwidth(1e9);
  engine.set_setup_latency(common::Distribution::constant(0.0));

  bool fired = false;
  const auto id = engine.transfer(
      "doomed", "src", "dst", 10e9,
      [&](bool, sim::Duration) { fired = true; });
  loop.call_after(1.0, [&] { EXPECT_TRUE(engine.cancel(id)); });
  loop.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(engine.transfers_cancelled(), 1u);
  EXPECT_EQ(engine.transfers_completed(), 0u);
}

// ---------------------------------------------------------------------------
// DataManager facade
// ---------------------------------------------------------------------------

class DataPlaneFacadeTest : public ::testing::Test {
 protected:
  Runtime runtime{17};
  DataManager data{runtime};
};

TEST_F(DataPlaneFacadeTest, StageEvictsIntoFiniteStore) {
  data.add_store("delta", 10e9);
  data.register_dataset("old1", 4e9, "delta");
  data.register_dataset("old2", 4e9, "delta");
  data.register_dataset("incoming", 8e9, "lab");
  data.set_bandwidth("lab", "delta", 1e9);

  bool ok = false;
  data.stage("incoming", "delta",
             [&](bool result, sim::Duration) { ok = result; });
  runtime.loop().run();
  EXPECT_TRUE(ok);
  EXPECT_TRUE(data.available_in("incoming", "delta"));
  EXPECT_FALSE(data.available_in("old1", "delta"));
  EXPECT_FALSE(data.available_in("old2", "delta"));
  EXPECT_EQ(data.catalog().eviction_log(),
            (std::vector<std::string>{"delta/old1", "delta/old2"}));
}

TEST_F(DataPlaneFacadeTest, StageFailsWhenStoreCannotFit) {
  data.add_store("tiny", 1e9);
  data.register_dataset("blob", 8e9, "lab");
  bool ok = true;
  data.stage("blob", "tiny",
             [&](bool result, sim::Duration) { ok = result; });
  runtime.loop().run();
  EXPECT_FALSE(ok);
  EXPECT_EQ(data.transfers(), 0u);
}

TEST_F(DataPlaneFacadeTest, SourceReplicaPinnedDuringFlight) {
  data.add_store("lab", 10e9);
  data.register_dataset("feed", 8e9, "lab");
  data.set_bandwidth("lab", "delta", 1e9);
  bool staged = false;
  data.stage("feed", "delta",
             [&](bool ok, sim::Duration) { staged = ok; });
  runtime.loop().run_until(1.0);
  // Mid-flight: the source replica must resist eviction pressure.
  EXPECT_GT(data.catalog().pins("feed", "lab"), 0u);
  EXPECT_THROW(data.register_dataset("other", 4e9, "lab"), Error);
  runtime.loop().run();
  EXPECT_TRUE(staged);
  EXPECT_EQ(data.catalog().pins("feed", "lab"), 0u);
}

TEST_F(DataPlaneFacadeTest, StageAllFailureCancelsSiblingsButNotSharers) {
  data.register_dataset("shared", 10e9, "lab");
  data.register_dataset("solo", 10e9, "lab");
  data.set_bandwidth("lab", "delta", 1e9);

  int batch_a_calls = 0;
  std::string batch_a_failed;
  data.stage_all({"missing", "shared", "solo"}, "delta",
                 [&](bool ok, const std::string& failed) {
                   ++batch_a_calls;
                   EXPECT_FALSE(ok);
                   batch_a_failed = failed;
                 });
  int batch_b_calls = 0;
  data.stage_all({"shared"}, "delta",
                 [&](bool ok, const std::string&) {
                   ++batch_b_calls;
                   EXPECT_TRUE(ok);
                 });
  runtime.loop().run();

  EXPECT_EQ(batch_a_calls, 1);
  EXPECT_EQ(batch_a_failed, "missing");
  EXPECT_EQ(batch_b_calls, 1);
  // The shared transfer survived for batch B; the batch-private solo
  // transfer was cancelled instead of running on untracked.
  EXPECT_TRUE(data.available_in("shared", "delta"));
  EXPECT_FALSE(data.available_in("solo", "delta"));
  EXPECT_EQ(data.transfers(), 2u);
  EXPECT_EQ(data.cancelled_transfers(), 1u);
}

TEST_F(DataPlaneFacadeTest, StageFailsCleanlyWhenLastReplicaEvicted) {
  data.add_store("lab", 10e9);
  data.register_dataset("victim", 6e9, "lab");
  data.register_dataset("squatter", 8e9, "elsewhere");
  // Staging squatter into lab evicts victim's only replica.
  bool squatter_ok = false;
  data.stage("squatter", "lab",
             [&](bool ok, sim::Duration) { squatter_ok = ok; });
  runtime.loop().run();
  ASSERT_TRUE(squatter_ok);
  ASSERT_TRUE(data.dataset("victim").zones.empty());

  // A stage of the orphaned dataset fails via its callback — no throw.
  bool victim_ok = true;
  data.stage("victim", "delta",
             [&](bool ok, sim::Duration) { victim_ok = ok; });
  runtime.loop().run();
  EXPECT_FALSE(victim_ok);
}

TEST_F(DataPlaneFacadeTest, CancelBatchAbortsInFlightTransfers) {
  data.register_dataset("bulk", 10e9, "lab");
  data.set_bandwidth("lab", "delta", 1e9);
  bool fired = false;
  const DataManager::BatchHandle batch = data.stage_all_tracked(
      {"bulk"}, "delta",
      [&](bool, const std::string&) { fired = true; });
  runtime.loop().run_until(1.0);
  data.cancel_batch(batch);
  runtime.loop().run();
  EXPECT_FALSE(fired);  // abandoned batches never call back
  EXPECT_EQ(data.cancelled_transfers(), 1u);
  EXPECT_FALSE(data.available_in("bulk", "delta"));
  // The reservation and the source pin were returned.
  EXPECT_DOUBLE_EQ(data.catalog().store("delta").reserved, 0.0);
  EXPECT_EQ(data.catalog().pins("bulk", "lab"), 0u);
}

// ---------------------------------------------------------------------------
// Locality-aware placement
// ---------------------------------------------------------------------------

TEST(PlacementAdvisorTest, RanksZonesByBytesToMove) {
  data::ReplicaCatalog catalog;
  catalog.register_dataset("big", 10e9, "frontier");
  catalog.register_dataset("small", 1e9, "delta");
  const data::PlacementAdvisor advisor(catalog);
  EXPECT_DOUBLE_EQ(
      advisor.bytes_to_move({"big", "small"}, "frontier"), 1e9);
  EXPECT_DOUBLE_EQ(advisor.bytes_to_move({"big", "small"}, "delta"), 10e9);
  EXPECT_DOUBLE_EQ(advisor.bytes_to_move({"unknown"}, "delta"), 0.0);
}

TEST(TaskLocality, SubmitAnyRunsWhereTheDataLives) {
  Session session({.seed = 3});
  session.add_platform(platform::delta_profile(2));
  session.add_platform(platform::frontier_profile(2));
  auto& on_delta = session.submit_pilot({.platform = "delta", .nodes = 2});
  auto& on_frontier =
      session.submit_pilot({.platform = "frontier", .nodes = 2});
  session.data().register_dataset("blob", 5e9, "frontier");

  TaskDescription desc;
  desc.duration = common::Distribution::constant(0.5);
  desc.staging.push_back(StagingDirective::in("blob"));
  const auto uid =
      session.tasks().submit_any({&on_delta, &on_frontier}, desc);
  session.run();

  EXPECT_EQ(session.tasks().get(uid).state(), TaskState::done);
  EXPECT_EQ(session.tasks().get(uid).pilot_uid(), on_frontier.uid());
  EXPECT_DOUBLE_EQ(session.data().bytes_moved(), 0.0);
}

TEST(WorkflowData, LocalityPlacementMovesNoBytes) {
  Session session({.seed = 5});
  session.add_platform(platform::delta_profile(2));
  session.add_platform(platform::frontier_profile(2));
  auto& on_delta = session.submit_pilot({.platform = "delta", .nodes = 2});
  auto& on_frontier =
      session.submit_pilot({.platform = "frontier", .nodes = 2});
  session.data().register_dataset("shard-d", 8e9, "delta");
  session.data().register_dataset("shard-f", 8e9, "frontier");
  wf::WorkflowManager workflows(session);

  TaskDescription work;
  work.duration = common::Distribution::constant(1.0);
  wf::Pipeline pipeline;
  pipeline.name = "loc";
  pipeline.placement = wf::Placement::locality;
  wf::Stage first;
  first.name = "near-delta";
  first.consumes = {"shard-d"};
  first.tasks = {work};
  wf::Stage second;
  second.name = "near-frontier";
  second.consumes = {"shard-f"};
  second.tasks = {work};
  pipeline.stages = {first, second};

  wf::PipelineResult result;
  workflows.run_pipeline(pipeline, {&on_delta, &on_frontier},
                         [&](const wf::PipelineResult& r) { result = r; });
  session.run();

  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.tasks_done, 2u);
  // Compute went to the data: nothing crossed the WAN.
  EXPECT_DOUBLE_EQ(session.data().bytes_moved(), 0.0);
  // Lineage drained: pins and consumer references are all released.
  EXPECT_EQ(session.data().catalog().consumers_left("shard-d"), 0u);
  EXPECT_EQ(session.data().catalog().consumers_left("shard-f"), 0u);
  EXPECT_EQ(session.data().catalog().pins("shard-d", "delta"), 0u);
  EXPECT_EQ(session.data().catalog().pins("shard-f", "frontier"), 0u);
}

TEST(WorkflowData, DataBlindPlacementPaysTheTransfer) {
  Session session({.seed = 5});
  session.add_platform(platform::delta_profile(2));
  session.add_platform(platform::frontier_profile(2));
  auto& on_delta = session.submit_pilot({.platform = "delta", .nodes = 2});
  auto& on_frontier =
      session.submit_pilot({.platform = "frontier", .nodes = 2});
  session.data().register_dataset("shard-d", 8e9, "delta");
  session.data().register_dataset("shard-f", 8e9, "frontier");
  wf::WorkflowManager workflows(session);

  TaskDescription work;
  work.duration = common::Distribution::constant(1.0);
  wf::Pipeline pipeline;
  pipeline.name = "blind";
  pipeline.placement = wf::Placement::first;
  wf::Stage first;
  first.name = "near-delta";
  first.consumes = {"shard-d"};
  first.tasks = {work};
  wf::Stage second;
  second.name = "far-from-frontier";
  second.consumes = {"shard-f"};
  second.tasks = {work};
  pipeline.stages = {first, second};

  wf::PipelineResult result;
  workflows.run_pipeline(pipeline, {&on_delta, &on_frontier},
                         [&](const wf::PipelineResult& r) { result = r; });
  session.run();

  EXPECT_TRUE(result.ok);
  // Everything ran on the first pilot: shard-f crossed the WAN.
  EXPECT_DOUBLE_EQ(session.data().bytes_moved(), 8e9);
  EXPECT_TRUE(session.data().available_in("shard-f", "delta"));
}

TEST(TaskLocality, CancelDuringOverlappedStageInReclaimsEverything) {
  Session session({.seed = 9});
  session.add_platform(platform::delta_profile(2));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});
  session.runtime().network().register_host("lab:x", "lab");
  session.data().register_dataset("slow-input", 50e9, "lab");
  session.data().set_bandwidth("lab", "delta", 1e9);  // ~50 s transfer

  TaskDescription desc;
  desc.duration = common::Distribution::constant(1.0);
  desc.staging.push_back(StagingDirective::in("slow-input"));
  const auto uid = session.tasks().submit(pilot, desc);
  // The grant lands long before the 50 GB transfer: the task parks in
  // SCHEDULED holding its slot. Cancelling in that window must free
  // the slot and abort the now-unwanted transfer.
  session.run_until(5.0);
  ASSERT_EQ(session.tasks().get(uid).state(), TaskState::scheduled);
  EXPECT_TRUE(session.tasks().cancel(uid));
  session.run();

  EXPECT_EQ(session.tasks().get(uid).state(), TaskState::canceled);
  EXPECT_EQ(session.data().cancelled_transfers(), 1u);
  EXPECT_FALSE(session.data().available_in("slow-input", "delta"));
  // The slot returned to the pool: a follow-up task runs immediately.
  TaskDescription probe;
  probe.cores = 64;  // a whole node: fails if the slot leaked
  probe.duration = common::Distribution::constant(0.5);
  const auto probe_uid = session.tasks().submit(pilot, probe);
  session.run();
  EXPECT_EQ(session.tasks().get(probe_uid).state(), TaskState::done);
}

TEST(TaskLocality, StageOutIntoFullStoreFailsTaskNotRun) {
  Session session({.seed = 14});
  session.add_platform(platform::delta_profile(1));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 1});
  session.data().add_store("delta", 1e9);

  TaskDescription desc;
  desc.duration = common::Distribution::constant(0.5);
  desc.staging.push_back(StagingDirective::out("oversized"));
  desc.payload.set("output_bytes", 5e9);  // cannot ever fit the store
  const auto uid = session.tasks().submit(pilot, desc);
  session.run();  // must not abort on a capacity throw

  EXPECT_EQ(session.tasks().get(uid).state(), TaskState::failed);
  EXPECT_NE(session.tasks().get(uid).error().find("stage-out"),
            std::string::npos);
}

TEST(TaskLocality, ConsumedInputsMakeRoomForOutputsInSameStore) {
  Session session({.seed = 23});
  session.add_platform(platform::delta_profile(1));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 1});
  session.data().add_store("delta", 10e9);
  session.runtime().network().register_host("lab:x", "lab");
  session.data().register_dataset("input", 6e9, "lab");
  session.data().set_bandwidth("lab", "delta", 1e9);

  // Input (6 GB) and output (6 GB) cannot coexist in the 10 GB store;
  // once the payload has read the input, its pin drops and the output
  // may evict it instead of failing the task.
  TaskDescription desc;
  desc.duration = common::Distribution::constant(1.0);
  desc.staging.push_back(StagingDirective::in("input"));
  desc.staging.push_back(StagingDirective::out("output"));
  desc.payload.set("output_bytes", 6e9);
  const auto uid = session.tasks().submit(pilot, desc);
  session.run();

  EXPECT_EQ(session.tasks().get(uid).state(), TaskState::done);
  EXPECT_TRUE(session.data().available_in("output", "delta"));
  EXPECT_FALSE(session.data().available_in("input", "delta"));  // evicted
  EXPECT_EQ(session.data().catalog().evictions(), 1u);
}

TEST(TaskLocality, StageOutFailureCancelsSiblingOutputs) {
  Session session({.seed = 19});
  session.add_platform(platform::delta_profile(1));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 1});
  session.data().add_store("tiny", 1e9);  // can never take a 5 GB output
  session.data().set_bandwidth("delta", "archive", 1e9);  // ~5 s out

  TaskDescription desc;
  desc.duration = common::Distribution::constant(0.5);
  desc.staging.push_back(StagingDirective::out("out-a", "tiny"));
  desc.staging.push_back(StagingDirective::out("out-b", "archive"));
  desc.payload.set("output_bytes", 5e9);
  const auto uid = session.tasks().submit(pilot, desc);
  session.run();

  EXPECT_EQ(session.tasks().get(uid).state(), TaskState::failed);
  // The failed tiny-store output aborted the archive transfer too.
  EXPECT_EQ(session.data().cancelled_transfers(), 1u);
  EXPECT_FALSE(session.data().available_in("out-b", "archive"));
}

TEST(TaskLocality, StagedInputsStayPinnedUntilTaskFinishes) {
  Session session({.seed = 15});
  session.add_platform(platform::delta_profile(1));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 1});
  session.runtime().network().register_host("lab:x", "lab");
  session.data().register_dataset("input", 5e9, "lab");
  session.data().set_bandwidth("lab", "delta", 1e9);  // ~5 s transfer

  // A hog keeps the single node busy so the victim waits granted-less
  // long after its stage-in lands.
  TaskDescription hog;
  hog.cores = 64;
  hog.duration = common::Distribution::constant(20.0);
  session.tasks().submit(pilot, hog);
  TaskDescription victim;
  victim.cores = 64;
  victim.duration = common::Distribution::constant(1.0);
  victim.staging.push_back(StagingDirective::in("input"));
  const auto uid = session.tasks().submit(pilot, victim);

  session.run_until(10.0);  // staged, still queued behind the hog
  ASSERT_EQ(session.tasks().get(uid).state(), TaskState::scheduling);
  ASSERT_TRUE(session.data().available_in("input", "delta"));
  // Pinned while waiting: store pressure cannot evict the input.
  EXPECT_GT(session.data().catalog().pins("input", "delta"), 0u);
  session.run();
  EXPECT_EQ(session.tasks().get(uid).state(), TaskState::done);
  EXPECT_EQ(session.data().catalog().pins("input", "delta"), 0u);
}

TEST(WorkflowData, ServiceFailureAbandonsStageTransfers) {
  Session session({.seed = 16});
  ml::install(session);
  session.add_platform(platform::delta_profile(2));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});
  session.runtime().network().register_host("lab:x", "lab");
  session.data().register_dataset("huge", 50e9, "lab");
  session.data().set_bandwidth("lab", "delta", 1e9);  // ~50 s transfer
  wf::WorkflowManager workflows(session);

  wf::Pipeline pipeline;
  pipeline.name = "cut-short";
  wf::Stage stage;
  stage.name = "doomed";
  stage.consumes = {"huge"};
  ServiceDescription svc;
  svc.program = "inference";
  svc.config = json::Value::object({{"model", "llama-8b"}});
  svc.gpus = 1;
  svc.ready_timeout = 2.0;  // guaranteed bootstrap failure
  stage.services = {svc};
  TaskDescription task;
  task.duration = common::Distribution::constant(1.0);
  stage.tasks = {task};
  pipeline.stages = {stage};

  wf::PipelineResult result;
  workflows.run_pipeline(pipeline, pilot,
                         [&](const wf::PipelineResult& r) { result = r; });
  session.run();

  EXPECT_FALSE(result.ok);
  // The 50 GB transfer was abandoned with the stage, not left running.
  EXPECT_EQ(session.data().cancelled_transfers(), 1u);
  EXPECT_FALSE(session.data().available_in("huge", "delta"));
}

TEST(WorkflowData, MissingDeclaredOutputFailsPipeline) {
  Session session({.seed = 18});
  session.add_platform(platform::delta_profile(2));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});
  wf::WorkflowManager workflows(session);

  wf::Pipeline pipeline;
  pipeline.name = "broken-contract";
  wf::Stage stage;
  stage.name = "claims-too-much";
  stage.produces = {"never-made"};  // no task registers it
  TaskDescription task;
  task.duration = common::Distribution::constant(1.0);
  stage.tasks = {task};
  wf::Stage after;
  after.name = "never-runs";
  TaskDescription task2;
  task2.duration = common::Distribution::constant(1.0);
  after.tasks = {task2};
  pipeline.stages = {stage, after};

  wf::PipelineResult result;
  workflows.run_pipeline(pipeline, pilot,
                         [&](const wf::PipelineResult& r) { result = r; });
  session.run();

  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.stage_names.size(), 1u);  // stage 2 never started
}

TEST(WorkflowData, FailedPipelineReleasesUnstartedStageLineage) {
  Session session({.seed = 12});
  session.add_platform(platform::delta_profile(2));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});
  session.data().register_dataset("early", 1e9, "delta");
  session.data().register_dataset("late", 1e9, "delta");
  wf::WorkflowManager workflows(session);

  wf::Pipeline pipeline;
  pipeline.name = "doomed";
  wf::Stage breaks;
  breaks.name = "breaks";
  breaks.consumes = {"early"};
  TaskDescription bad;
  bad.staging.push_back(StagingDirective::in("no-such-dataset"));
  breaks.tasks = {bad};
  wf::Stage never;
  never.name = "never-starts";
  never.consumes = {"late"};
  TaskDescription fine;
  fine.duration = common::Distribution::constant(1.0);
  never.tasks = {fine};
  pipeline.stages = {breaks, never};

  wf::PipelineResult result;
  workflows.run_pipeline(pipeline, pilot,
                         [&](const wf::PipelineResult& r) { result = r; });
  session.run();

  EXPECT_FALSE(result.ok);
  // Both the failed stage's and the never-started stage's lineage
  // references were dropped — nothing stays evict-proof forever.
  EXPECT_EQ(session.data().catalog().consumers_left("early"), 0u);
  EXPECT_EQ(session.data().catalog().consumers_left("late"), 0u);
}

}  // namespace
