// Data-plane tests: replica catalog (finite stores, LRU eviction,
// pinning, lineage), fair-share transfer engine (shared links,
// concurrency caps, retries), the DataManager facade (stage_all batch
// cancellation), locality-aware placement, and workflow dataset wiring.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ripple/common/error.hpp"
#include "ripple/core/session.hpp"
#include "ripple/data/catalog.hpp"
#include "ripple/data/placement_advisor.hpp"
#include "ripple/data/transfer_engine.hpp"
#include "ripple/ml/install.hpp"
#include "ripple/platform/profiles.hpp"
#include "ripple/wf/workflow_manager.hpp"

namespace {

using namespace ripple;
using namespace ripple::core;

// ---------------------------------------------------------------------------
// ReplicaCatalog
// ---------------------------------------------------------------------------

TEST(Catalog, FiniteStoreEvictsLeastRecentlyUsed) {
  data::ReplicaCatalog catalog;
  catalog.add_store("z", 100.0);
  catalog.register_dataset("a", 40.0, "z");
  catalog.register_dataset("b", 40.0, "z");
  catalog.touch("a", "z");  // b is now the LRU replica

  catalog.register_dataset("c", 40.0, "z");  // needs 40, free is 20
  EXPECT_FALSE(catalog.available_in("b", "z"));
  EXPECT_TRUE(catalog.available_in("a", "z"));
  EXPECT_TRUE(catalog.available_in("c", "z"));
  EXPECT_EQ(catalog.evictions(), 1u);
  EXPECT_EQ(catalog.eviction_log(),
            (std::vector<std::string>{"z/b"}));
  EXPECT_DOUBLE_EQ(catalog.store("z").used, 80.0);
}

TEST(Catalog, PinnedReplicasSurviveEvictionPressure) {
  data::ReplicaCatalog catalog;
  catalog.add_store("z", 100.0);
  catalog.register_dataset("a", 40.0, "z");
  catalog.register_dataset("b", 40.0, "z");
  catalog.pin("a", "z");

  // 70 bytes needed: only b (40) is evictable -> impossible, and the
  // pinned a is skipped despite being the LRU replica. The failed
  // attempt leaves a partial eviction trail (b is gone).
  EXPECT_THROW(catalog.register_dataset("big", 70.0, "z"), Error);
  EXPECT_TRUE(catalog.available_in("a", "z"));
  EXPECT_FALSE(catalog.available_in("b", "z"));
  // 60 bytes now fit next to the pinned 40.
  catalog.register_dataset("c", 60.0, "z");
  EXPECT_TRUE(catalog.available_in("a", "z"));

  catalog.unpin("a", "z");
  EXPECT_THROW(catalog.unpin("a", "z"), Error);  // not pinned anymore
}

TEST(Catalog, LineageConsumersProtectIntermediates) {
  data::ReplicaCatalog catalog;
  catalog.add_store("z", 100.0);
  // Lineage may be declared before the dataset exists.
  catalog.add_consumers("mid", 2);
  catalog.register_dataset("mid", 60.0, "z");
  EXPECT_EQ(catalog.consumers_left("mid"), 2u);

  // Protected: eviction pressure cannot reclaim it.
  EXPECT_THROW(catalog.register_dataset("big", 80.0, "z"), Error);

  catalog.consume_done("mid");
  EXPECT_THROW(catalog.register_dataset("big", 80.0, "z"), Error);
  catalog.consume_done("mid");  // last consumer finished
  catalog.register_dataset("big", 80.0, "z");
  EXPECT_FALSE(catalog.available_in("mid", "z"));
  EXPECT_THROW(catalog.consume_done("mid"), Error);
}

TEST(Catalog, CrossTenantConsumersSurviveOwnersEvictionPressure) {
  // Regression (multi-tenant make_room): a dataset whose only remaining
  // protection belongs to ANOTHER tenant must not be evictable by the
  // owning tenant's store pressure — protection is global, summed over
  // all tenants' pins and lineage references.
  data::ReplicaCatalog catalog;
  catalog.add_store("edge", 100.0);
  catalog.register_dataset("warm", 100.0, "edge");

  // Tenant B pins the replica; tenant A's exact-fit reservation must
  // fail without tearing the replica down.
  catalog.pin("warm", "edge", "tenantB");
  EXPECT_FALSE(catalog.reserve("edge", 100.0, "tenantA"));
  EXPECT_TRUE(catalog.available_in("warm", "edge"));
  catalog.unpin("warm", "edge", "tenantB");

  // A foreign lineage reference alone protects it just the same.
  catalog.add_consumers("warm", 1, "tenantB");
  EXPECT_FALSE(catalog.reserve("edge", 100.0, "tenantA"));
  EXPECT_TRUE(catalog.available_in("warm", "edge"));

  // Once tenant B's consumer finishes, the same exact-fit reservation
  // succeeds by evicting the now-unprotected replica.
  catalog.consume_done("warm", "tenantB");
  EXPECT_TRUE(catalog.reserve("edge", 100.0, "tenantA"));
  EXPECT_FALSE(catalog.available_in("warm", "edge"));
  catalog.release_reservation("edge", 100.0, "tenantA");
}

TEST(Catalog, TenantStoreQuotaFailsReservationWithoutEvicting) {
  data::ReplicaCatalog catalog;
  catalog.add_store("z", 200.0);
  catalog.set_tenant_quota("z", "small", 50.0);
  catalog.register_dataset("other", 100.0, "z");  // someone else's bytes

  // Over-quota: rejected before make_room runs, so the resident
  // replica is untouched even though eviction could have made room.
  EXPECT_FALSE(catalog.reserve("z", 80.0, "small"));
  EXPECT_TRUE(catalog.available_in("other", "z"));

  // Within quota: charged to the tenant through commit.
  EXPECT_TRUE(catalog.reserve("z", 40.0, "small"));
  catalog.register_dataset("mine", 40.0, "elsewhere");
  catalog.commit_replica("mine", "z", "small");
  EXPECT_DOUBLE_EQ(catalog.tenant_usage("z", "small"), 40.0);
  // The next reservation would exceed the 50-byte cap.
  EXPECT_FALSE(catalog.reserve("z", 20.0, "small"));
  // An untenanted caller is not constrained by anyone's quota.
  EXPECT_TRUE(catalog.reserve("z", 20.0));
  catalog.release_reservation("z", 20.0);
}

TEST(Catalog, ContentAddressingSharesReplicasAcrossNames) {
  data::ReplicaCatalog catalog;
  catalog.add_store("z", 100.0);
  // Two tenants publish the same content under their own names: one
  // canonical dataset, two aliases, one replica's worth of bytes.
  catalog.register_dataset("t0/part", 60.0, "z", "cid:part");
  catalog.register_dataset("t1/part", 60.0, "z", "cid:part");
  EXPECT_EQ(catalog.canonical("t1/part"), "t0/part");
  EXPECT_TRUE(catalog.available_in("t1/part", "z"));
  EXPECT_DOUBLE_EQ(catalog.store("z").used, 60.0);

  // Lineage and pins resolve through the alias to the canonical entry.
  catalog.add_consumers("t1/part", 1, "tenant1");
  EXPECT_EQ(catalog.consumers_left("t0/part"), 1u);
  catalog.pin("t1/part", "z", "tenant1");
  catalog.unpin("t0/part", "z", "tenant1");
  catalog.consume_done("t0/part", "tenant1");
  EXPECT_EQ(catalog.consumers_left("t1/part"), 0u);

  // A name bound to one content id cannot re-bind to another.
  EXPECT_THROW(catalog.register_dataset("t1/part", 60.0, "z", "cid:other"),
               Error);
}

TEST(Catalog, ReservationsHoldSpaceUntilCommitOrRelease) {
  data::ReplicaCatalog catalog;
  catalog.add_store("z", 100.0);
  catalog.register_dataset("in-flight", 60.0, "elsewhere");

  EXPECT_TRUE(catalog.reserve("z", 60.0));
  EXPECT_DOUBLE_EQ(catalog.store("z").reserved, 60.0);
  EXPECT_FALSE(catalog.reserve("z", 50.0));  // 40 free, nothing to evict

  catalog.commit_replica("in-flight", "z");
  EXPECT_TRUE(catalog.available_in("in-flight", "z"));
  EXPECT_DOUBLE_EQ(catalog.store("z").reserved, 0.0);
  EXPECT_DOUBLE_EQ(catalog.store("z").used, 60.0);

  EXPECT_TRUE(catalog.reserve("z", 30.0));
  catalog.release_reservation("z", 30.0);
  EXPECT_DOUBLE_EQ(catalog.store("z").reserved, 0.0);
}

// ---------------------------------------------------------------------------
// TransferEngine
// ---------------------------------------------------------------------------

TEST(TransferEngineTest, FairShareSplitsLinkBandwidth) {
  sim::EventLoop loop;
  common::Rng rng(7);
  data::TransferEngine engine(loop, rng);
  engine.set_default_bandwidth(1e9);
  engine.set_setup_latency(common::Distribution::constant(0.0));

  double done_a = -1.0;
  double done_b = -1.0;
  engine.transfer("a", "src", "dst", 10e9, [&](bool ok, sim::Duration) {
    EXPECT_TRUE(ok);
    done_a = loop.now();
  });
  loop.call_after(5.0, [&] {
    engine.transfer("b", "src", "dst", 10e9, [&](bool ok, sim::Duration) {
      EXPECT_TRUE(ok);
      done_b = loop.now();
    });
  });
  loop.run();
  // a runs alone for 5 s (5 GB), shares for 10 s (5 GB) -> done at 15;
  // b then has the link to itself for its remaining 5 GB -> done at 20.
  EXPECT_NEAR(done_a, 15.0, 1e-9);
  EXPECT_NEAR(done_b, 20.0, 1e-9);
  EXPECT_EQ(engine.transfers_completed(), 2u);
  EXPECT_DOUBLE_EQ(engine.bytes_moved(), 20e9);
}

TEST(TransferEngineTest, ConcurrencyCapQueuesExcessTransfers) {
  sim::EventLoop loop;
  common::Rng rng(7);
  data::TransferEngine engine(loop, rng);
  engine.set_default_bandwidth(1e9);
  engine.set_setup_latency(common::Distribution::constant(0.0));
  engine.set_link_concurrency("src", "dst", 1);

  double done_a = -1.0;
  double done_b = -1.0;
  engine.transfer("a", "src", "dst", 1e9,
                  [&](bool, sim::Duration) { done_a = loop.now(); });
  engine.transfer("b", "src", "dst", 1e9,
                  [&](bool, sim::Duration) { done_b = loop.now(); });
  EXPECT_EQ(engine.active_on("src", "dst"), 1u);
  EXPECT_EQ(engine.queued_on("src", "dst"), 1u);
  loop.run();
  // Serialized at full bandwidth instead of halved in parallel.
  EXPECT_NEAR(done_a, 1.0, 1e-9);
  EXPECT_NEAR(done_b, 2.0, 1e-9);
}

TEST(TransferEngineTest, FailuresRetryUpToBudget) {
  sim::EventLoop loop;
  common::Rng rng(11);
  data::TransferEngine engine(loop, rng);
  engine.set_default_bandwidth(1e9);
  engine.set_setup_latency(common::Distribution::constant(0.1));
  engine.set_failure(0.97, 2);

  int fired = 0;
  engine.transfer("flaky", "src", "dst", 1e9,
                  [&](bool, sim::Duration) { ++fired; });
  loop.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.transfers_started(), 1u);
  EXPECT_EQ(engine.transfers_completed() + engine.transfers_failed(), 1u);
  if (engine.transfers_failed() == 1) {
    EXPECT_EQ(engine.retries(), 2u);  // budget exhausted before giving up
  }
}

TEST(TransferEngineTest, CancelStopsTransferWithoutCallback) {
  sim::EventLoop loop;
  common::Rng rng(3);
  data::TransferEngine engine(loop, rng);
  engine.set_default_bandwidth(1e9);
  engine.set_setup_latency(common::Distribution::constant(0.0));

  bool fired = false;
  const auto id = engine.transfer(
      "doomed", "src", "dst", 10e9,
      [&](bool, sim::Duration) { fired = true; });
  loop.call_after(1.0, [&] { EXPECT_TRUE(engine.cancel(id)); });
  loop.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(engine.transfers_cancelled(), 1u);
  EXPECT_EQ(engine.transfers_completed(), 0u);
}

TEST(Catalog, ExactFitReserveSurvivesFloatChurn) {
  // Accounting drift regression: make_room used exact comparisons while
  // release/commit tolerated ULP drift, so after a long commit/drop
  // churn an exact-fit reservation could evict one replica too many (or
  // fail admission outright).
  data::ReplicaCatalog catalog;
  const double unit = 0.1;  // not a binary fraction: every sum rounds
  catalog.add_store("z", 1000 * unit);
  catalog.register_dataset("keep", 400 * unit, "z");
  catalog.register_dataset("churn-a", 333 * unit, "elsewhere");
  catalog.register_dataset("churn-b", 251 * unit, "elsewhere");
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(catalog.reserve("z", 333 * unit));
    catalog.commit_replica("churn-a", "z");
    ASSERT_TRUE(catalog.reserve("z", 251 * unit));
    catalog.commit_replica("churn-b", "z");
    ASSERT_TRUE(catalog.drop_replica("churn-b", "z"));
    ASSERT_TRUE(catalog.drop_replica("churn-a", "z"));
  }
  // Nominally exactly 600 units are free. Whatever ULP dust the churn
  // left behind, the exact-fit reservation must neither fail nor evict
  // the resident replica.
  EXPECT_TRUE(catalog.reserve("z", 600 * unit));
  EXPECT_TRUE(catalog.available_in("keep", "z"));
  EXPECT_EQ(catalog.evictions(), 0u);
}

// ---------------------------------------------------------------------------
// Multi-source striped transfers
// ---------------------------------------------------------------------------

TEST(TransferEngineTest, StripedTransferSplitsAcrossDisjointLinks) {
  sim::EventLoop loop;
  common::Rng rng(7);
  data::TransferEngine engine(loop, rng);
  engine.set_setup_latency(common::Distribution::constant(0.0));
  engine.set_bandwidth("s1", "dst", 1e9);
  engine.set_bandwidth("s2", "dst", 1e9);
  engine.set_bandwidth("s3", "dst", 1e9);

  double done_at = -1.0;
  engine.transfer_striped("wide", {"s1", "s2", "s3"}, "dst", 30e9,
                          [&](bool ok, sim::Duration) {
                            EXPECT_TRUE(ok);
                            done_at = loop.now();
                          });
  EXPECT_EQ(engine.active_on("s1", "dst"), 1u);
  EXPECT_EQ(engine.active_on("s2", "dst"), 1u);
  EXPECT_EQ(engine.active_on("s3", "dst"), 1u);
  loop.run();
  // Three disjoint 1 GB/s links carry 10 GB each: 10 s, not the 30 s a
  // single source would take.
  EXPECT_NEAR(done_at, 10.0, 1e-9);
  EXPECT_EQ(engine.transfers_started(), 1u);
  EXPECT_EQ(engine.transfers_completed(), 1u);
  EXPECT_EQ(engine.stripes_started(), 3u);
  EXPECT_DOUBLE_EQ(engine.bytes_moved(), 30e9);
  // The parent is logged exactly once.
  EXPECT_EQ(engine.completion_log(), (std::vector<std::string>{"wide"}));
}

TEST(TransferEngineTest, StripedSplitIsBandwidthProportional) {
  sim::EventLoop loop;
  common::Rng rng(7);
  data::TransferEngine engine(loop, rng);
  engine.set_setup_latency(common::Distribution::constant(0.0));
  engine.set_bandwidth("fast", "dst", 2e9);
  engine.set_bandwidth("slow", "dst", 1e9);

  double done_at = -1.0;
  engine.transfer_striped("skewed", {"fast", "slow"}, "dst", 30e9,
                          [&](bool, sim::Duration) { done_at = loop.now(); });
  loop.run();
  // Shares proportional to bandwidth (20 GB over 2 GB/s, 10 GB over
  // 1 GB/s): both stripes land at 10 s — the aggregate-rate optimum.
  EXPECT_NEAR(done_at, 10.0, 1e-9);
}

TEST(TransferEngineTest, StripedSplitDiscountsCongestedLinks) {
  // Source A has an idle 1 GB/s link; source B's equal link already
  // carries nine transfers. A bandwidth-proportional 50/50 split would
  // gate the parent on B's 0.1 GB/s fair share (~150 s for 30 GB); the
  // contention-aware split hands B only its achievable share, so the
  // transfer lands close to the idle-link optimum.
  sim::EventLoop loop;
  common::Rng rng(7);
  data::TransferEngine engine(loop, rng);
  engine.set_setup_latency(common::Distribution::constant(0.0));
  engine.set_bandwidth("a", "dst", 1e9);
  engine.set_bandwidth("b", "dst", 1e9);
  for (int i = 0; i < 9; ++i) {
    engine.transfer("noise-" + std::to_string(i), "b", "dst", 500e9,
                    [](bool, sim::Duration) {});
  }
  double done_at = -1.0;
  engine.transfer_striped("hot", {"a", "b"}, "dst", 30e9,
                          [&](bool ok, sim::Duration) {
                            EXPECT_TRUE(ok);
                            done_at = loop.now();
                          });
  loop.run_until(200.0);
  // Effective rates at admission: a = 1 GB/s, b = 0.1 GB/s -> a hauls
  // ~27.3 GB, b ~2.7 GB, both landing near 27.3 s.
  EXPECT_GT(done_at, 0.0);
  EXPECT_LT(done_at, 35.0);
}

TEST(TransferEngineTest, StripeFailureFailsOverToSurvivors) {
  // A dead stripe's share moves to a surviving stripe instead of
  // failing the transfer: replicas must add reliability, not risk.
  // Across seeds, every run must satisfy the invariants, and at least
  // one run must demonstrate a successful failover (one stripe dies,
  // the other carries its bytes, the full payload still commits).
  bool saw_successful_failover = false;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    sim::EventLoop loop;
    common::Rng rng(seed);
    data::TransferEngine engine(loop, rng);
    engine.set_setup_latency(common::Distribution::constant(0.1));
    engine.set_bandwidth("s1", "dst", 1e9);
    engine.set_bandwidth("s2", "dst", 1e9);
    engine.set_failure(0.5, 0);

    int fired = 0;
    bool outcome = false;
    engine.transfer_striped("contested", {"s1", "s2"}, "dst", 10e9,
                            [&](bool ok, sim::Duration) {
                              ++fired;
                              outcome = ok;
                            });
    loop.run();
    EXPECT_EQ(fired, 1) << "seed " << seed;
    EXPECT_EQ(engine.transfers_started(), 1u);
    EXPECT_EQ(engine.transfers_completed() + engine.transfers_failed(), 1u);
    EXPECT_EQ(engine.active_on("s1", "dst"), 0u);
    EXPECT_EQ(engine.active_on("s2", "dst"), 0u);
    if (outcome) {
      // Success must mean the *whole* payload moved, failover or not.
      EXPECT_DOUBLE_EQ(engine.bytes_moved(), 10e9) << "seed " << seed;
      EXPECT_EQ(engine.completion_log(),
                (std::vector<std::string>{"contested"}));
      if (engine.stripe_failovers() > 0) saw_successful_failover = true;
    } else {
      // Failure only when every stripe (and every failover) died.
      EXPECT_TRUE(engine.completion_log().empty()) << "seed " << seed;
    }
  }
  EXPECT_TRUE(saw_successful_failover);
}

TEST(TransferEngineTest, StripedCancelAbortsEveryStripe) {
  sim::EventLoop loop;
  common::Rng rng(3);
  data::TransferEngine engine(loop, rng);
  engine.set_setup_latency(common::Distribution::constant(0.0));
  engine.set_bandwidth("s1", "dst", 1e9);
  engine.set_bandwidth("s2", "dst", 1e9);

  bool fired = false;
  const auto id = engine.transfer_striped(
      "doomed", {"s1", "s2"}, "dst", 20e9,
      [&](bool, sim::Duration) { fired = true; });
  loop.call_after(1.0, [&] { EXPECT_TRUE(engine.cancel(id)); });
  loop.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(engine.transfers_cancelled(), 1u);
  EXPECT_EQ(engine.active_on("s1", "dst"), 0u);
  EXPECT_EQ(engine.active_on("s2", "dst"), 0u);
}

TEST(TransferEngineTest, StripedSingleSourceDegradesToPlainTransfer) {
  sim::EventLoop loop;
  common::Rng rng(7);
  data::TransferEngine engine(loop, rng);
  engine.set_default_bandwidth(1e9);
  engine.set_setup_latency(common::Distribution::constant(0.0));

  double done_at = -1.0;
  engine.transfer_striped("solo", {"src", "src"}, "dst", 5e9,
                          [&](bool ok, sim::Duration) {
                            EXPECT_TRUE(ok);
                            done_at = loop.now();
                          });
  loop.run();
  EXPECT_NEAR(done_at, 5.0, 1e-9);
  EXPECT_EQ(engine.stripes_started(), 0u);  // plain path, no stripes
}

// ---------------------------------------------------------------------------
// DataManager facade
// ---------------------------------------------------------------------------

class DataPlaneFacadeTest : public ::testing::Test {
 protected:
  Runtime runtime{17};
  DataManager data{runtime};
};

TEST_F(DataPlaneFacadeTest, StageEvictsIntoFiniteStore) {
  data.add_store("delta", 10e9);
  data.register_dataset("old1", 4e9, "delta");
  data.register_dataset("old2", 4e9, "delta");
  data.register_dataset("incoming", 8e9, "lab");
  data.set_bandwidth("lab", "delta", 1e9);

  bool ok = false;
  data.stage("incoming", "delta",
             [&](bool result, sim::Duration) { ok = result; });
  runtime.loop().run();
  EXPECT_TRUE(ok);
  EXPECT_TRUE(data.available_in("incoming", "delta"));
  EXPECT_FALSE(data.available_in("old1", "delta"));
  EXPECT_FALSE(data.available_in("old2", "delta"));
  EXPECT_EQ(data.catalog().eviction_log(),
            (std::vector<std::string>{"delta/old1", "delta/old2"}));
}

TEST_F(DataPlaneFacadeTest, StageFailsWhenStoreCannotFit) {
  data.add_store("tiny", 1e9);
  data.register_dataset("blob", 8e9, "lab");
  bool ok = true;
  data.stage("blob", "tiny",
             [&](bool result, sim::Duration) { ok = result; });
  runtime.loop().run();
  EXPECT_FALSE(ok);
  EXPECT_EQ(data.transfers(), 0u);
}

TEST_F(DataPlaneFacadeTest, SourceReplicaPinnedDuringFlight) {
  data.add_store("lab", 10e9);
  data.register_dataset("feed", 8e9, "lab");
  data.set_bandwidth("lab", "delta", 1e9);
  bool staged = false;
  data.stage("feed", "delta",
             [&](bool ok, sim::Duration) { staged = ok; });
  runtime.loop().run_until(1.0);
  // Mid-flight: the source replica must resist eviction pressure.
  EXPECT_GT(data.catalog().pins("feed", "lab"), 0u);
  EXPECT_THROW(data.register_dataset("other", 4e9, "lab"), Error);
  runtime.loop().run();
  EXPECT_TRUE(staged);
  EXPECT_EQ(data.catalog().pins("feed", "lab"), 0u);
}

TEST_F(DataPlaneFacadeTest, StageAllFailureCancelsSiblingsButNotSharers) {
  data.register_dataset("shared", 10e9, "lab");
  data.register_dataset("solo", 10e9, "lab");
  data.set_bandwidth("lab", "delta", 1e9);

  int batch_a_calls = 0;
  std::string batch_a_failed;
  data.stage_all({"missing", "shared", "solo"}, "delta",
                 [&](bool ok, const std::string& failed) {
                   ++batch_a_calls;
                   EXPECT_FALSE(ok);
                   batch_a_failed = failed;
                 });
  int batch_b_calls = 0;
  data.stage_all({"shared"}, "delta",
                 [&](bool ok, const std::string&) {
                   ++batch_b_calls;
                   EXPECT_TRUE(ok);
                 });
  runtime.loop().run();

  EXPECT_EQ(batch_a_calls, 1);
  EXPECT_EQ(batch_a_failed, "missing");
  EXPECT_EQ(batch_b_calls, 1);
  // The shared transfer survived for batch B; the batch-private solo
  // transfer was cancelled instead of running on untracked.
  EXPECT_TRUE(data.available_in("shared", "delta"));
  EXPECT_FALSE(data.available_in("solo", "delta"));
  EXPECT_EQ(data.transfers(), 2u);
  EXPECT_EQ(data.cancelled_transfers(), 1u);
}

TEST_F(DataPlaneFacadeTest, StageFailsCleanlyWhenLastReplicaEvicted) {
  data.add_store("lab", 10e9);
  data.register_dataset("victim", 6e9, "lab");
  data.register_dataset("squatter", 8e9, "elsewhere");
  // Staging squatter into lab evicts victim's only replica.
  bool squatter_ok = false;
  data.stage("squatter", "lab",
             [&](bool ok, sim::Duration) { squatter_ok = ok; });
  runtime.loop().run();
  ASSERT_TRUE(squatter_ok);
  ASSERT_TRUE(data.dataset("victim").zones.empty());

  // A stage of the orphaned dataset fails via its callback — no throw.
  bool victim_ok = true;
  data.stage("victim", "delta",
             [&](bool ok, sim::Duration) { victim_ok = ok; });
  runtime.loop().run();
  EXPECT_FALSE(victim_ok);
}

TEST_F(DataPlaneFacadeTest, CancelBatchAbortsInFlightTransfers) {
  data.register_dataset("bulk", 10e9, "lab");
  data.set_bandwidth("lab", "delta", 1e9);
  bool fired = false;
  const DataManager::BatchHandle batch = data.stage_all_tracked(
      {"bulk"}, "delta",
      [&](bool, const std::string&) { fired = true; });
  runtime.loop().run_until(1.0);
  data.cancel_batch(batch);
  runtime.loop().run();
  EXPECT_FALSE(fired);  // abandoned batches never call back
  EXPECT_EQ(data.cancelled_transfers(), 1u);
  EXPECT_FALSE(data.available_in("bulk", "delta"));
  // The reservation and the source pin were returned.
  EXPECT_DOUBLE_EQ(data.catalog().store("delta").reserved, 0.0);
  EXPECT_EQ(data.catalog().pins("bulk", "lab"), 0u);
}

TEST_F(DataPlaneFacadeTest, StageStripesAcrossEveryReplica) {
  data.register_dataset("wide", 30e9, "lab");
  data.register_dataset("wide", 30e9, "archive");
  data.set_bandwidth("lab", "delta", 1e9);
  data.set_bandwidth("archive", "delta", 1e9);
  data.set_setup_latency(common::Distribution::constant(0.0));

  bool ok = false;
  double done_at = -1.0;
  data.stage("wide", "delta", [&](bool result, sim::Duration) {
    ok = result;
    done_at = runtime.loop().now();
  });
  runtime.loop().run_until(1.0);
  // Mid-flight both source replicas are pinned (each feeds a stripe).
  EXPECT_GT(data.catalog().pins("wide", "lab"), 0u);
  EXPECT_GT(data.catalog().pins("wide", "archive"), 0u);
  runtime.loop().run();
  EXPECT_TRUE(ok);
  // Two disjoint 1 GB/s links: 15 s instead of a single source's 30 s.
  EXPECT_NEAR(done_at, 15.0, 1e-9);
  EXPECT_EQ(data.transfers(), 1u);
  EXPECT_EQ(data.engine().stripes_started(), 2u);
  EXPECT_EQ(data.catalog().pins("wide", "lab"), 0u);
  EXPECT_EQ(data.catalog().pins("wide", "archive"), 0u);
}

// ---------------------------------------------------------------------------
// Replication-ahead prefetch
// ---------------------------------------------------------------------------

TEST_F(DataPlaneFacadeTest, PrefetchUsesIdleLinksOnly) {
  data.register_dataset("busy-feed", 20e9, "lab");
  data.register_dataset("hot", 5e9, "lab");
  data.set_bandwidth("lab", "delta", 1e9);

  bool staged = false;
  data.stage("busy-feed", "delta",
             [&](bool result, sim::Duration) { staged = result; });
  runtime.loop().run_until(3.0);  // demand transfer occupies the link
  EXPECT_EQ(data.prefetch({"hot"}, "delta"), 0u);  // link busy: skip
  runtime.loop().run();
  ASSERT_TRUE(staged);
  EXPECT_EQ(data.prefetch({"hot"}, "delta"), 1u);  // link now idle
  runtime.loop().run();
  EXPECT_TRUE(data.available_in("hot", "delta"));
  EXPECT_EQ(data.prefetches_started(), 1u);
  EXPECT_EQ(data.prefetches_completed(), 1u);
  // An already-resident dataset is not re-prefetched.
  EXPECT_EQ(data.prefetch({"hot"}, "delta"), 0u);
}

TEST_F(DataPlaneFacadeTest, PrefetchNeverEvicts) {
  data.add_store("delta", 10e9);
  data.register_dataset("resident", 8e9, "delta");
  data.register_dataset("spec", 5e9, "lab");
  // A demand stage would evict `resident`; speculation must not.
  EXPECT_EQ(data.prefetch({"spec"}, "delta"), 0u);
  EXPECT_TRUE(data.available_in("resident", "delta"));
  EXPECT_EQ(data.catalog().evictions(), 0u);
}

TEST_F(DataPlaneFacadeTest, PrefetchBudgetBoundsInFlightBytes) {
  data.set_prefetch_budget(6e9);
  data.register_dataset("p1", 4e9, "lab");
  data.register_dataset("p2", 4e9, "lab2");
  data.set_bandwidth("lab", "delta", 1e9);
  data.set_bandwidth("lab2", "delta", 1e9);
  // Both links are idle, but the second prefetch would put 8 GB in
  // flight against a 6 GB budget.
  EXPECT_EQ(data.prefetch({"p1", "p2"}, "delta"), 1u);
  runtime.loop().run();
  EXPECT_TRUE(data.available_in("p1", "delta"));
  EXPECT_FALSE(data.available_in("p2", "delta"));
  // The landed prefetch released its budget: p2 may go now.
  EXPECT_EQ(data.prefetch({"p2"}, "delta"), 1u);
  runtime.loop().run();
  EXPECT_TRUE(data.available_in("p2", "delta"));
}

TEST_F(DataPlaneFacadeTest, DemandStagingReclaimsPrefetchReservations) {
  // A waiterless prefetch holds an 8 GB reservation in a 10 GB store;
  // a 5 GB demand stage that cannot otherwise fit must reclaim the
  // speculation (cancelling its transfer) instead of failing the task.
  data.add_store("delta", 10e9);
  data.register_dataset("spec", 8e9, "lab");
  data.register_dataset("needed", 5e9, "lab2");
  data.set_bandwidth("lab", "delta", 1e9);
  data.set_bandwidth("lab2", "delta", 1e9);
  ASSERT_EQ(data.prefetch({"spec"}, "delta"), 1u);
  runtime.loop().run_until(2.0);  // prefetch mid-flight

  bool ok = false;
  data.stage("needed", "delta",
             [&](bool result, sim::Duration) { ok = result; });
  runtime.loop().run();
  EXPECT_TRUE(ok);
  EXPECT_TRUE(data.available_in("needed", "delta"));
  EXPECT_FALSE(data.available_in("spec", "delta"));
  EXPECT_EQ(data.cancelled_transfers(), 1u);
  // The reclaimed reservation and source pin were fully returned.
  EXPECT_DOUBLE_EQ(data.catalog().store("delta").reserved, 0.0);
  EXPECT_EQ(data.catalog().pins("spec", "lab"), 0u);
}

TEST_F(DataPlaneFacadeTest, DemandStagePiggybacksOnPrefetch) {
  data.register_dataset("warm", 10e9, "lab");
  data.set_bandwidth("lab", "delta", 1e9);
  ASSERT_EQ(data.prefetch({"warm"}, "delta"), 1u);
  runtime.loop().run_until(3.0);  // prefetch mid-flight
  bool ok = false;
  data.stage("warm", "delta",
             [&](bool result, sim::Duration) { ok = result; });
  runtime.loop().run();
  EXPECT_TRUE(ok);
  // The demand stage rode the in-flight prefetch: one transfer total.
  EXPECT_EQ(data.transfers(), 1u);
  EXPECT_TRUE(data.available_in("warm", "delta"));
}

// ---------------------------------------------------------------------------
// Locality-aware placement
// ---------------------------------------------------------------------------

TEST(PlacementAdvisorTest, RanksZonesByBytesToMove) {
  data::ReplicaCatalog catalog;
  catalog.register_dataset("big", 10e9, "frontier");
  catalog.register_dataset("small", 1e9, "delta");
  const data::PlacementAdvisor advisor(catalog);
  EXPECT_DOUBLE_EQ(
      advisor.bytes_to_move({"big", "small"}, "frontier"), 1e9);
  EXPECT_DOUBLE_EQ(advisor.bytes_to_move({"big", "small"}, "delta"), 10e9);
  EXPECT_DOUBLE_EQ(advisor.bytes_to_move({"unknown"}, "delta"), 0.0);
}

TEST(PlacementAdvisorTest, StageInTimeTracksLiveLinkContention) {
  sim::EventLoop loop;
  common::Rng rng(7);
  data::ReplicaCatalog catalog;
  data::TransferEngine engine(loop, rng);
  engine.set_setup_latency(common::Distribution::constant(0.0));
  engine.set_bandwidth("far", "a", 1e9);
  engine.set_bandwidth("far", "b", 1e9);
  catalog.register_dataset("ds", 10e9, "far");

  const data::PlacementAdvisor advisor(catalog, &engine);
  // Idle links: 10 GB over 1 GB/s either way.
  EXPECT_DOUBLE_EQ(advisor.stage_in_time({"ds"}, "a"), 10.0);
  EXPECT_DOUBLE_EQ(advisor.stage_in_time({"ds"}, "b"), 10.0);
  // A transfer flowing on far->b halves the fair share a newcomer
  // would get there; the estimate must see it.
  engine.transfer("noise", "far", "b", 50e9, [](bool, sim::Duration) {});
  EXPECT_DOUBLE_EQ(advisor.stage_in_time({"ds"}, "a"), 10.0);
  EXPECT_DOUBLE_EQ(advisor.stage_in_time({"ds"}, "b"), 20.0);
  // Resident data costs nothing.
  EXPECT_DOUBLE_EQ(advisor.stage_in_time({"ds"}, "far"), 0.0);
}

TEST(PlacementAdvisorTest, StripedSourcesSumTheirFairShares) {
  sim::EventLoop loop;
  common::Rng rng(7);
  data::ReplicaCatalog catalog;
  data::TransferEngine engine(loop, rng);
  engine.set_bandwidth("r1", "dst", 1e9);
  engine.set_bandwidth("r2", "dst", 1e9);
  catalog.register_dataset("wide", 10e9, "r1");
  catalog.register_dataset("wide", 10e9, "r2");

  const data::PlacementAdvisor advisor(catalog, &engine);
  // Two replica links stripe: the achievable rate is their sum.
  EXPECT_DOUBLE_EQ(advisor.stage_in_time({"wide"}, "dst"), 5.0);
}

TEST(TaskLocality, QueueDepthSteersPlacementWhenDataTies) {
  Session session({.seed = 8});
  session.add_platform(platform::delta_profile(1));
  session.add_platform(platform::frontier_profile(1));
  auto& on_delta = session.submit_pilot({.platform = "delta", .nodes = 1});
  auto& on_frontier =
      session.submit_pilot({.platform = "frontier", .nodes = 1});

  // Saturate delta and pile up a queue there.
  std::vector<std::string> uids;
  for (int i = 0; i < 4; ++i) {
    TaskDescription hog;
    hog.cores = 64;
    hog.duration = common::Distribution::constant(5.0);
    uids.push_back(session.tasks().submit(on_delta, hog));
  }
  session.run_until(1.0);
  ASSERT_GT(session.scheduler().queue_length(on_delta.uid()), 0u);

  // No data anywhere: bytes-only ranking would tie and keep the first
  // candidate (delta). The queue-depth penalty must steer to frontier.
  TaskDescription work;
  work.cores = 2;
  work.duration = common::Distribution::constant(0.5);
  const auto uid =
      session.tasks().submit_any({&on_delta, &on_frontier}, work);
  session.run();
  EXPECT_EQ(session.tasks().get(uid).pilot_uid(), on_frontier.uid());
}

TEST(TaskLocality, SubmitAnyRunsWhereTheDataLives) {
  Session session({.seed = 3});
  session.add_platform(platform::delta_profile(2));
  session.add_platform(platform::frontier_profile(2));
  auto& on_delta = session.submit_pilot({.platform = "delta", .nodes = 2});
  auto& on_frontier =
      session.submit_pilot({.platform = "frontier", .nodes = 2});
  session.data().register_dataset("blob", 5e9, "frontier");

  TaskDescription desc;
  desc.duration = common::Distribution::constant(0.5);
  desc.staging.push_back(StagingDirective::in("blob"));
  const auto uid =
      session.tasks().submit_any({&on_delta, &on_frontier}, desc);
  session.run();

  EXPECT_EQ(session.tasks().get(uid).state(), TaskState::done);
  EXPECT_EQ(session.tasks().get(uid).pilot_uid(), on_frontier.uid());
  EXPECT_DOUBLE_EQ(session.data().bytes_moved(), 0.0);
}

TEST(WorkflowData, LocalityPlacementMovesNoBytes) {
  Session session({.seed = 5});
  session.add_platform(platform::delta_profile(2));
  session.add_platform(platform::frontier_profile(2));
  auto& on_delta = session.submit_pilot({.platform = "delta", .nodes = 2});
  auto& on_frontier =
      session.submit_pilot({.platform = "frontier", .nodes = 2});
  session.data().register_dataset("shard-d", 8e9, "delta");
  session.data().register_dataset("shard-f", 8e9, "frontier");
  wf::WorkflowManager workflows(session);

  TaskDescription work;
  work.duration = common::Distribution::constant(1.0);
  wf::Pipeline pipeline;
  pipeline.name = "loc";
  pipeline.placement = wf::Placement::locality;
  wf::Stage first;
  first.name = "near-delta";
  first.consumes = {"shard-d"};
  first.tasks = {work};
  wf::Stage second;
  second.name = "near-frontier";
  second.consumes = {"shard-f"};
  second.tasks = {work};
  pipeline.stages = {first, second};

  wf::PipelineResult result;
  workflows.run_pipeline(pipeline, {&on_delta, &on_frontier},
                         [&](const wf::PipelineResult& r) { result = r; });
  session.run();

  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.tasks_done, 2u);
  // Compute went to the data: nothing crossed the WAN.
  EXPECT_DOUBLE_EQ(session.data().bytes_moved(), 0.0);
  // Lineage drained: pins and consumer references are all released.
  EXPECT_EQ(session.data().catalog().consumers_left("shard-d"), 0u);
  EXPECT_EQ(session.data().catalog().consumers_left("shard-f"), 0u);
  EXPECT_EQ(session.data().catalog().pins("shard-d", "delta"), 0u);
  EXPECT_EQ(session.data().catalog().pins("shard-f", "frontier"), 0u);
}

TEST(WorkflowData, LookaheadPrefetchesNextStageInputs) {
  Session session({.seed = 11});
  session.add_platform(platform::delta_profile(2));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});
  session.runtime().network().register_host("lab:x", "lab");
  session.data().register_dataset("later", 8e9, "lab");
  session.data().set_bandwidth("lab", "delta", 1e9);  // ~8 s transfer
  wf::WorkflowManager workflows(session);

  // Stage 1 computes for 15 s with the lab->delta link idle; stage 2's
  // input must be prefetched during that window so stage 2 starts with
  // its data already resident.
  TaskDescription slow;
  slow.duration = common::Distribution::constant(15.0);
  TaskDescription quick;
  quick.duration = common::Distribution::constant(0.5);
  wf::Pipeline pipeline;
  pipeline.name = "lookahead";
  wf::Stage compute;
  compute.name = "compute";
  compute.tasks = {slow};
  wf::Stage analyze;
  analyze.name = "analyze";
  analyze.consumes = {"later"};
  analyze.tasks = {quick};
  pipeline.stages = {compute, analyze};

  wf::PipelineResult result;
  workflows.run_pipeline(pipeline, pilot,
                         [&](const wf::PipelineResult& r) { result = r; });
  session.run_until(14.0);  // stage 1 still computing
  EXPECT_EQ(session.data().prefetches_started(), 1u);
  EXPECT_TRUE(session.data().available_in("later", "delta"));
  session.run();
  EXPECT_TRUE(result.ok);
  // Stage 2 found its input resident: its staging was instantaneous,
  // so its duration is just the task (well under the 8 s transfer).
  ASSERT_EQ(result.stage_durations.size(), 2u);
  EXPECT_LT(result.stage_durations[1], 4.0);
}

TEST(WorkflowData, DataBlindPlacementPaysTheTransfer) {
  Session session({.seed = 5});
  session.add_platform(platform::delta_profile(2));
  session.add_platform(platform::frontier_profile(2));
  auto& on_delta = session.submit_pilot({.platform = "delta", .nodes = 2});
  auto& on_frontier =
      session.submit_pilot({.platform = "frontier", .nodes = 2});
  session.data().register_dataset("shard-d", 8e9, "delta");
  session.data().register_dataset("shard-f", 8e9, "frontier");
  wf::WorkflowManager workflows(session);

  TaskDescription work;
  work.duration = common::Distribution::constant(1.0);
  wf::Pipeline pipeline;
  pipeline.name = "blind";
  pipeline.placement = wf::Placement::first;
  wf::Stage first;
  first.name = "near-delta";
  first.consumes = {"shard-d"};
  first.tasks = {work};
  wf::Stage second;
  second.name = "far-from-frontier";
  second.consumes = {"shard-f"};
  second.tasks = {work};
  pipeline.stages = {first, second};

  wf::PipelineResult result;
  workflows.run_pipeline(pipeline, {&on_delta, &on_frontier},
                         [&](const wf::PipelineResult& r) { result = r; });
  session.run();

  EXPECT_TRUE(result.ok);
  // Everything ran on the first pilot: shard-f crossed the WAN.
  EXPECT_DOUBLE_EQ(session.data().bytes_moved(), 8e9);
  EXPECT_TRUE(session.data().available_in("shard-f", "delta"));
}

TEST(TaskLocality, CancelDuringOverlappedStageInReclaimsEverything) {
  Session session({.seed = 9});
  session.add_platform(platform::delta_profile(2));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});
  session.runtime().network().register_host("lab:x", "lab");
  session.data().register_dataset("slow-input", 50e9, "lab");
  session.data().set_bandwidth("lab", "delta", 1e9);  // ~50 s transfer

  TaskDescription desc;
  desc.duration = common::Distribution::constant(1.0);
  desc.staging.push_back(StagingDirective::in("slow-input"));
  const auto uid = session.tasks().submit(pilot, desc);
  // The grant lands long before the 50 GB transfer: the task parks in
  // SCHEDULED holding its slot. Cancelling in that window must free
  // the slot and abort the now-unwanted transfer.
  session.run_until(5.0);
  ASSERT_EQ(session.tasks().get(uid).state(), TaskState::scheduled);
  EXPECT_TRUE(session.tasks().cancel(uid));
  session.run();

  EXPECT_EQ(session.tasks().get(uid).state(), TaskState::canceled);
  EXPECT_EQ(session.data().cancelled_transfers(), 1u);
  EXPECT_FALSE(session.data().available_in("slow-input", "delta"));
  // The slot returned to the pool: a follow-up task runs immediately.
  TaskDescription probe;
  probe.cores = 64;  // a whole node: fails if the slot leaked
  probe.duration = common::Distribution::constant(0.5);
  const auto probe_uid = session.tasks().submit(pilot, probe);
  session.run();
  EXPECT_EQ(session.tasks().get(probe_uid).state(), TaskState::done);
}

TEST(TaskLocality, StageOutIntoFullStoreFailsTaskNotRun) {
  Session session({.seed = 14});
  session.add_platform(platform::delta_profile(1));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 1});
  session.data().add_store("delta", 1e9);

  TaskDescription desc;
  desc.duration = common::Distribution::constant(0.5);
  desc.staging.push_back(StagingDirective::out("oversized"));
  desc.payload.set("output_bytes", 5e9);  // cannot ever fit the store
  const auto uid = session.tasks().submit(pilot, desc);
  session.run();  // must not abort on a capacity throw

  EXPECT_EQ(session.tasks().get(uid).state(), TaskState::failed);
  EXPECT_NE(session.tasks().get(uid).error().find("stage-out"),
            std::string::npos);
}

TEST(TaskLocality, ConsumedInputsMakeRoomForOutputsInSameStore) {
  Session session({.seed = 23});
  session.add_platform(platform::delta_profile(1));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 1});
  session.data().add_store("delta", 10e9);
  session.runtime().network().register_host("lab:x", "lab");
  session.data().register_dataset("input", 6e9, "lab");
  session.data().set_bandwidth("lab", "delta", 1e9);

  // Input (6 GB) and output (6 GB) cannot coexist in the 10 GB store;
  // once the payload has read the input, its pin drops and the output
  // may evict it instead of failing the task.
  TaskDescription desc;
  desc.duration = common::Distribution::constant(1.0);
  desc.staging.push_back(StagingDirective::in("input"));
  desc.staging.push_back(StagingDirective::out("output"));
  desc.payload.set("output_bytes", 6e9);
  const auto uid = session.tasks().submit(pilot, desc);
  session.run();

  EXPECT_EQ(session.tasks().get(uid).state(), TaskState::done);
  EXPECT_TRUE(session.data().available_in("output", "delta"));
  EXPECT_FALSE(session.data().available_in("input", "delta"));  // evicted
  EXPECT_EQ(session.data().catalog().evictions(), 1u);
}

TEST(TaskLocality, StageOutFailureCancelsSiblingOutputs) {
  Session session({.seed = 19});
  session.add_platform(platform::delta_profile(1));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 1});
  session.data().add_store("tiny", 1e9);  // can never take a 5 GB output
  session.data().set_bandwidth("delta", "archive", 1e9);  // ~5 s out

  TaskDescription desc;
  desc.duration = common::Distribution::constant(0.5);
  desc.staging.push_back(StagingDirective::out("out-a", "tiny"));
  desc.staging.push_back(StagingDirective::out("out-b", "archive"));
  desc.payload.set("output_bytes", 5e9);
  const auto uid = session.tasks().submit(pilot, desc);
  session.run();

  EXPECT_EQ(session.tasks().get(uid).state(), TaskState::failed);
  // The failed tiny-store output aborted the archive transfer too.
  EXPECT_EQ(session.data().cancelled_transfers(), 1u);
  EXPECT_FALSE(session.data().available_in("out-b", "archive"));
}

TEST(TaskLocality, StagedInputsStayPinnedUntilTaskFinishes) {
  Session session({.seed = 15});
  session.add_platform(platform::delta_profile(1));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 1});
  session.runtime().network().register_host("lab:x", "lab");
  session.data().register_dataset("input", 5e9, "lab");
  session.data().set_bandwidth("lab", "delta", 1e9);  // ~5 s transfer

  // A hog keeps the single node busy so the victim waits granted-less
  // long after its stage-in lands.
  TaskDescription hog;
  hog.cores = 64;
  hog.duration = common::Distribution::constant(20.0);
  session.tasks().submit(pilot, hog);
  TaskDescription victim;
  victim.cores = 64;
  victim.duration = common::Distribution::constant(1.0);
  victim.staging.push_back(StagingDirective::in("input"));
  const auto uid = session.tasks().submit(pilot, victim);

  session.run_until(10.0);  // staged, still queued behind the hog
  ASSERT_EQ(session.tasks().get(uid).state(), TaskState::scheduling);
  ASSERT_TRUE(session.data().available_in("input", "delta"));
  // Pinned while waiting: store pressure cannot evict the input.
  EXPECT_GT(session.data().catalog().pins("input", "delta"), 0u);
  session.run();
  EXPECT_EQ(session.tasks().get(uid).state(), TaskState::done);
  EXPECT_EQ(session.data().catalog().pins("input", "delta"), 0u);
}

TEST(WorkflowData, ServiceFailureAbandonsStageTransfers) {
  Session session({.seed = 16});
  ml::install(session);
  session.add_platform(platform::delta_profile(2));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});
  session.runtime().network().register_host("lab:x", "lab");
  session.data().register_dataset("huge", 50e9, "lab");
  session.data().set_bandwidth("lab", "delta", 1e9);  // ~50 s transfer
  wf::WorkflowManager workflows(session);

  wf::Pipeline pipeline;
  pipeline.name = "cut-short";
  wf::Stage stage;
  stage.name = "doomed";
  stage.consumes = {"huge"};
  ServiceDescription svc;
  svc.program = "inference";
  svc.config = json::Value::object({{"model", "llama-8b"}});
  svc.gpus = 1;
  svc.ready_timeout = 2.0;  // guaranteed bootstrap failure
  stage.services = {svc};
  TaskDescription task;
  task.duration = common::Distribution::constant(1.0);
  stage.tasks = {task};
  pipeline.stages = {stage};

  wf::PipelineResult result;
  workflows.run_pipeline(pipeline, pilot,
                         [&](const wf::PipelineResult& r) { result = r; });
  session.run();

  EXPECT_FALSE(result.ok);
  // The 50 GB transfer was abandoned with the stage, not left running.
  EXPECT_EQ(session.data().cancelled_transfers(), 1u);
  EXPECT_FALSE(session.data().available_in("huge", "delta"));
}

TEST(WorkflowData, MissingDeclaredOutputFailsPipeline) {
  Session session({.seed = 18});
  session.add_platform(platform::delta_profile(2));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});
  wf::WorkflowManager workflows(session);

  wf::Pipeline pipeline;
  pipeline.name = "broken-contract";
  wf::Stage stage;
  stage.name = "claims-too-much";
  stage.produces = {"never-made"};  // no task registers it
  TaskDescription task;
  task.duration = common::Distribution::constant(1.0);
  stage.tasks = {task};
  wf::Stage after;
  after.name = "never-runs";
  TaskDescription task2;
  task2.duration = common::Distribution::constant(1.0);
  after.tasks = {task2};
  pipeline.stages = {stage, after};

  wf::PipelineResult result;
  workflows.run_pipeline(pipeline, pilot,
                         [&](const wf::PipelineResult& r) { result = r; });
  session.run();

  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.stage_names.size(), 1u);  // stage 2 never started
}

TEST(WorkflowData, FailedPipelineReleasesUnstartedStageLineage) {
  Session session({.seed = 12});
  session.add_platform(platform::delta_profile(2));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});
  session.data().register_dataset("early", 1e9, "delta");
  session.data().register_dataset("late", 1e9, "delta");
  wf::WorkflowManager workflows(session);

  wf::Pipeline pipeline;
  pipeline.name = "doomed";
  wf::Stage breaks;
  breaks.name = "breaks";
  breaks.consumes = {"early"};
  TaskDescription bad;
  bad.staging.push_back(StagingDirective::in("no-such-dataset"));
  breaks.tasks = {bad};
  wf::Stage never;
  never.name = "never-starts";
  never.consumes = {"late"};
  TaskDescription fine;
  fine.duration = common::Distribution::constant(1.0);
  never.tasks = {fine};
  pipeline.stages = {breaks, never};

  wf::PipelineResult result;
  workflows.run_pipeline(pipeline, pilot,
                         [&](const wf::PipelineResult& r) { result = r; });
  session.run();

  EXPECT_FALSE(result.ok);
  // Both the failed stage's and the never-started stage's lineage
  // references were dropped — nothing stays evict-proof forever.
  EXPECT_EQ(session.data().catalog().consumers_left("early"), 0u);
  EXPECT_EQ(session.data().catalog().consumers_left("late"), 0u);
}

// ---------------------------------------------------------------------------
// Store accounting tolerance and store failure
// ---------------------------------------------------------------------------

TEST(Catalog, ShrinkToExactFootprintToleratesReservationDust) {
  data::ReplicaCatalog catalog;
  catalog.add_store("z", 1e9);
  // A tiny committed replica next to large transient reservations: the
  // ~7e-9 bytes of rounding dust the reserve/release round-trips leave
  // in the reserved pool is far above one ULP of the footprint.
  catalog.register_dataset("d", 1.0, "z");
  const double third = 1e8 / 3.0;
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(catalog.reserve("z", third));
  for (int i = 0; i < 3; ++i) catalog.release_reservation("z", third);
  EXPECT_GT(catalog.store("z").reserved, 0.0);  // the dust is real
  // Shrinking to the exact nominal footprint must not misfire on it:
  // before the unified ULP tolerance this threw invalid_state.
  EXPECT_NO_THROW(catalog.add_store("z", 1.0));
  EXPECT_DOUBLE_EQ(catalog.store("z").capacity, 1.0);
}

TEST(Catalog, FailStoreDropsReplicasAndToleratesLatePins) {
  data::ReplicaCatalog catalog;
  catalog.add_store("z", 1e9);
  catalog.register_dataset("a", 1e8, "z");
  catalog.register_dataset("b", 1e8, "z");
  catalog.register_dataset("b", 1e8, "w");  // survivor elsewhere
  catalog.pin("a", "z");                    // an in-flight reader

  const auto lost = catalog.fail_store("z");
  EXPECT_EQ(lost, (std::vector<std::string>{"a", "b"}));
  EXPECT_FALSE(catalog.available_in("a", "z"));
  EXPECT_FALSE(catalog.available_in("b", "z"));
  EXPECT_TRUE(catalog.available_in("b", "w"));

  // The reader interrupted by the crash releases its pin late: that is
  // tolerated exactly once per recorded pin.
  EXPECT_NO_THROW(catalog.unpin("a", "z"));
  EXPECT_THROW(catalog.unpin("a", "z"), Error);
  // New pins on the dead zone are still real errors.
  EXPECT_THROW(catalog.pin("b", "z"), Error);
}

TEST(Catalog, StoreZonesSortedAndShrinksWithFailures) {
  data::ReplicaCatalog catalog;
  catalog.add_store("c", 1.0);
  catalog.add_store("a", 1.0);
  catalog.add_store("b", 1.0);
  EXPECT_EQ(catalog.store_zones(),
            (std::vector<std::string>{"a", "b", "c"}));
  (void)catalog.fail_store("b");
  EXPECT_EQ(catalog.store_zones(), (std::vector<std::string>{"a", "c"}));
}

}  // namespace
