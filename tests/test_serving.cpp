// Serving-layer tests: EventLoop now-queue fast path edge cases,
// adaptive micro-batching, client backpressure, and bit-exact
// determinism of the batched server + autoscaler pipeline.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ripple/common/error.hpp"
#include "ripple/core/session.hpp"
#include "ripple/ml/autoscaler.hpp"
#include "ripple/ml/inference_server.hpp"
#include "ripple/ml/inference_service.hpp"
#include "ripple/ml/install.hpp"
#include "ripple/platform/profiles.hpp"

namespace {

using namespace ripple;
using namespace ripple::ml;

// ---------------------------------------------------------------------------
// EventLoop now-queue fast path
// ---------------------------------------------------------------------------

TEST(EventLoopFastPath, PostDuringPostRunsAfterPendingPosts) {
  sim::EventLoop loop;
  std::vector<int> order;
  loop.post([&] {
    order.push_back(1);
    loop.post([&] { order.push_back(3); });
  });
  loop.post([&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoopFastPath, PostInterleavesWithSameTimeHeapEvents) {
  // Mixed call_at(now) and post() at the same timestamp must fire in
  // global posting order — the now-queue must not jump the heap.
  sim::EventLoop loop;
  std::vector<char> order;
  loop.call_at(0.0, [&] { order.push_back('a'); });
  loop.post([&] { order.push_back('b'); });
  loop.call_at(0.0, [&] { order.push_back('c'); });
  loop.post([&] { order.push_back('d'); });
  loop.run();
  EXPECT_EQ(order, (std::vector<char>{'a', 'b', 'c', 'd'}));
}

TEST(EventLoopFastPath, CancelNowQueuedEvent) {
  sim::EventLoop loop;
  bool ran = false;
  const auto handle = loop.post([&] { ran = true; });
  EXPECT_EQ(loop.pending(), 1u);
  EXPECT_TRUE(loop.cancel(handle));
  EXPECT_FALSE(loop.cancel(handle));  // already cancelled
  EXPECT_EQ(loop.pending(), 0u);
  loop.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(loop.cancelled_backlog(), 0u);  // skimmed, no leak
}

TEST(EventLoopFastPath, CancelPostedEventFromEarlierEvent) {
  sim::EventLoop loop;
  bool second_ran = false;
  sim::EventLoop::TimerHandle second;
  loop.post([&] { EXPECT_TRUE(loop.cancel(second)); });
  second = loop.post([&] { second_ran = true; });
  loop.run();
  EXPECT_FALSE(second_ran);
}

TEST(EventLoopFastPath, RunUntilBoundaryIncludesDeadlinePosts) {
  // An event at exactly the deadline runs, and a post() it makes (same
  // time) runs too before run_until returns; now() lands on deadline.
  sim::EventLoop loop;
  std::vector<int> order;
  loop.call_at(2.0, [&] {
    order.push_back(1);
    loop.post([&] { order.push_back(2); });
  });
  loop.call_at(2.5, [&] { order.push_back(99); });
  EXPECT_EQ(loop.run_until(2.0), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(loop.now(), 2.0);
  // The 2.5 event is untouched and runs on the next call.
  EXPECT_EQ(loop.run_until(3.0), 1u);
  EXPECT_EQ(order.back(), 99);
  EXPECT_DOUBLE_EQ(loop.now(), 3.0);
}

TEST(EventLoopFastPath, PendingCountsBothQueues) {
  sim::EventLoop loop;
  const auto a = loop.post([] {});
  loop.post([] {});
  loop.call_after(1.0, [] {});
  EXPECT_EQ(loop.pending(), 3u);
  loop.cancel(a);
  EXPECT_EQ(loop.pending(), 2u);
  loop.run();
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoopFastPath, PostRejectsEmptyCallback) {
  sim::EventLoop loop;
  EXPECT_THROW(loop.post(sim::EventLoop::Callback{}), Error);
}

// ---------------------------------------------------------------------------
// Adaptive micro-batching
// ---------------------------------------------------------------------------

class BatchServerFixture : public ::testing::Test {
 protected:
  sim::EventLoop loop;
  common::Rng rng{5};
  sim::Network net{loop, rng};
  msg::Router router{loop, net};
  std::unique_ptr<msg::RpcServer> rpc_server;
  std::unique_ptr<msg::RpcClient> rpc_client;
  std::unique_ptr<InferenceServer> server;

  void SetUp() override {
    net.register_host("s", "z");
    net.register_host("c", "z");
    net.set_link("z", "z",
                 sim::LinkModel{common::Distribution::constant(1e-4), 0});
    rpc_server = std::make_unique<msg::RpcServer>(router, "svc", "s");
    rpc_client = std::make_unique<msg::RpcClient>(router, "cli", "c");
  }

  /// A deterministic LLM-ish model: 1 s per request, perfect batching.
  static ModelSpec second_model() {
    ModelSpec model = noop_model();
    model.parse = common::Distribution::constant(0.0);
    model.serialize = common::Distribution::constant(0.0);
    model.tokens_out = common::Distribution::constant(100.0);
    model.per_token_s = 0.01;
    model.inference_floor_s = 0.0;
    model.batch_cost_slope = 0.0;
    return model;
  }

  void make_server(ModelSpec model, ServerConfig config) {
    server = std::make_unique<InferenceServer>(loop, common::Rng(6),
                                               std::move(model), config);
    rpc_server->bind_method("infer",
                            [this](std::shared_ptr<msg::Responder> r) {
                              server->handle(std::move(r));
                            });
  }

};

TEST_F(BatchServerFixture, FullBatchDispatchesWithoutWaitingForWindow) {
  make_server(second_model(),
              ServerConfig{.max_concurrency = 1,
                           .max_queue = 0,
                           .max_batch = 2,
                           .batch_window = 10.0});
  int completed = 0;
  for (int i = 0; i < 4; ++i) {
    rpc_client->call("svc", "infer", json::Value::object(),
                     [&](msg::CallResult r) {
                       ASSERT_TRUE(r.ok);
                       ++completed;
                     });
  }
  loop.run();
  EXPECT_EQ(completed, 4);
  EXPECT_EQ(server->batches(), 2u);
  EXPECT_EQ(server->batch_trace(), (std::vector<std::uint32_t>{2, 2}));
  // Two full batches of 1 s each, never the 10 s window.
  EXPECT_LT(loop.now(), 3.0);
}

TEST_F(BatchServerFixture, WindowFlushesPartialBatch) {
  make_server(second_model(),
              ServerConfig{.max_concurrency = 1,
                           .max_queue = 0,
                           .max_batch = 8,
                           .batch_window = 0.05});
  int completed = 0;
  for (int i = 0; i < 3; ++i) {
    rpc_client->call("svc", "infer", json::Value::object(),
                     [&](msg::CallResult r) {
                       ASSERT_TRUE(r.ok);
                       ++completed;
                     });
  }
  loop.run();
  EXPECT_EQ(completed, 3);
  EXPECT_EQ(server->batches(), 1u);
  EXPECT_EQ(server->batch_trace(), (std::vector<std::uint32_t>{3}));
  // One window wait plus one batched second.
  EXPECT_NEAR(loop.now(), 1.05, 0.01);
}

TEST_F(BatchServerFixture, BatchingCollapsesMakespan) {
  // 8 one-second requests: serial = 8 s; batch-of-8 = 1 s (+window).
  make_server(second_model(),
              ServerConfig{.max_concurrency = 1,
                           .max_queue = 0,
                           .max_batch = 8,
                           .batch_window = 0.02});
  int completed = 0;
  for (int i = 0; i < 8; ++i) {
    rpc_client->call("svc", "infer", json::Value::object(),
                     [&](msg::CallResult r) {
                       ASSERT_TRUE(r.ok);
                       ++completed;
                     });
  }
  loop.run();
  EXPECT_EQ(completed, 8);
  EXPECT_EQ(server->batches(), 1u);
  EXPECT_LT(loop.now(), 1.5);
  EXPECT_EQ(server->served(), 8u);
}

TEST_F(BatchServerFixture, BatchCostSlopeStretchesBatch) {
  ModelSpec model = second_model();
  model.batch_cost_slope = 0.25;  // batch of 4: 1.75x a single request
  make_server(model, ServerConfig{.max_concurrency = 1,
                                  .max_queue = 0,
                                  .max_batch = 4,
                                  .batch_window = 0.01});
  for (int i = 0; i < 4; ++i) {
    rpc_client->call("svc", "infer", json::Value::object(),
                     [](msg::CallResult) {});
  }
  loop.run();
  EXPECT_EQ(server->batches(), 1u);
  EXPECT_NEAR(server->inference_times().mean(), 1.75, 1e-9);
}

TEST_F(BatchServerFixture, BoundedQueueRejectsWhileBatching) {
  make_server(second_model(),
              ServerConfig{.max_concurrency = 1,
                           .max_queue = 2,
                           .max_batch = 2,
                           .batch_window = 10.0});
  int ok = 0;
  int rejected = 0;
  for (int i = 0; i < 6; ++i) {
    rpc_client->call("svc", "infer", json::Value::object(),
                     [&](msg::CallResult r) {
                       if (r.ok) {
                         ++ok;
                       } else {
                         EXPECT_NE(r.error.find("queue full"),
                                   std::string::npos);
                         ++rejected;
                       }
                     });
  }
  loop.run();
  EXPECT_EQ(ok + rejected, 6);
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(server->rejected(), static_cast<std::uint64_t>(rejected));
}

TEST_F(BatchServerFixture, DestructionWithPendingWorkIsSafe) {
  // A failed/killed service tears its server down with a batch window
  // armed or an inference in flight; pending callbacks must no-op.
  make_server(second_model(),
              ServerConfig{.max_concurrency = 1,
                           .max_queue = 0,
                           .max_batch = 4,
                           .batch_window = 0.05});
  for (int i = 0; i < 3; ++i) {
    rpc_client->call("svc", "infer", json::Value::object(),
                     [](msg::CallResult) {}, /*timeout=*/5.0);
  }
  loop.run_until(0.01);   // requests queued, batch window armed
  ASSERT_GT(server->queue_depth(), 0u);
  server.reset();         // service died mid-window
  loop.run_until(0.2);    // window event fires into the dead server

  make_server(second_model(),
              ServerConfig{.max_concurrency = 1,
                           .max_queue = 0,
                           .max_batch = 4,
                           .batch_window = 0.02});
  rpc_client->call("svc", "infer", json::Value::object(),
                   [](msg::CallResult) {}, /*timeout=*/5.0);
  loop.run_until(0.5);    // batch dispatched, 1 s inference in flight
  ASSERT_GT(server->busy(), 0u);
  server.reset();         // service died mid-inference
  loop.run();             // inference/serialize callbacks must no-op
  SUCCEED();              // reaching here without UB/crash is the test
}

TEST(EndpointDirectory, TracksRunningServices) {
  core::Session session({.seed = 3});
  ml::install(session);
  session.add_platform(platform::delta_profile(1));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 1});

  core::ServiceDescription svc;
  svc.name = "dir-svc";
  svc.program = "inference";
  svc.config = json::Value::object({{"model", "noop"}});
  svc.gpus = 1;
  const std::string uid = session.services().submit(pilot, svc);

  EXPECT_TRUE(session.runtime().endpoints_of("dir-svc").empty());
  session.services().when_ready({uid}, [&](bool ok) {
    ASSERT_TRUE(ok);
    // Synchronous directory: visible the instant the service RUNs,
    // before any pub/sub event is delivered.
    const auto endpoints = session.runtime().endpoints_of("dir-svc");
    ASSERT_EQ(endpoints.size(), 1u);
    EXPECT_EQ(endpoints[0], session.services().get(uid).endpoint());
    session.services().stop_all();
  });
  session.run();
  EXPECT_TRUE(session.runtime().endpoints_of("dir-svc").empty());
}

// ---------------------------------------------------------------------------
// Continuous batching
// ---------------------------------------------------------------------------

TEST_F(BatchServerFixture, ContinuousRepliesPerSequenceNotAtBatchEnd) {
  // Two staggered one-second requests share the decode loop (slope 0):
  // A finishes at ~1.0 s and replies immediately; B joined at ~0.5 s
  // and finishes at ~1.5 s. Fixed batching would hold A's reply until
  // the batch end.
  make_server(second_model(),
              ServerConfig{.max_concurrency = 1,
                           .max_queue = 0,
                           .max_batch = 8,
                           .batch_window = 0.0,
                           .continuous = true});
  std::vector<double> done_at(2, -1.0);
  rpc_client->call("svc", "infer", json::Value::object(),
                   [&](msg::CallResult r) {
                     ASSERT_TRUE(r.ok);
                     done_at[0] = loop.now();
                   });
  loop.call_at(0.5, [&] {
    rpc_client->call("svc", "infer", json::Value::object(),
                     [&](msg::CallResult r) {
                       ASSERT_TRUE(r.ok);
                       done_at[1] = loop.now();
                     });
  });
  loop.run();
  EXPECT_NEAR(done_at[0], 1.0, 0.01);
  EXPECT_NEAR(done_at[1], 1.5, 0.01);
  // Admission trace: A joined a batch of 1, B grew it to 2.
  EXPECT_EQ(server->batch_trace(), (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(server->completion_order(),
            (std::vector<std::uint64_t>{0, 1}));
  EXPECT_EQ(server->served(), 2u);
}

TEST_F(BatchServerFixture, ContinuousChargesStepFactorPerSegment) {
  // Two simultaneous sequences with batch_cost_slope 0.25 decode at
  // 1/1.25 of solo rate: both finish at 1.25 s, not 1 s (and not the
  // fixed-batch 1.25 s *after a window*). A third request arriving
  // mid-flight re-settles progress at the 3-sequence rate.
  ModelSpec model = second_model();
  model.batch_cost_slope = 0.25;
  make_server(model, ServerConfig{.max_concurrency = 1,
                                  .max_queue = 0,
                                  .max_batch = 8,
                                  .batch_window = 0.0,
                                  .continuous = true});
  std::vector<double> done_at;
  for (int i = 0; i < 2; ++i) {
    rpc_client->call("svc", "infer", json::Value::object(),
                     [&](msg::CallResult r) {
                       ASSERT_TRUE(r.ok);
                       done_at.push_back(loop.now());
                     });
  }
  loop.run();
  ASSERT_EQ(done_at.size(), 2u);
  // Ties complete together at the same boundary, admission order.
  EXPECT_NEAR(done_at[0], 1.25, 0.01);
  EXPECT_NEAR(done_at[1], 1.25, 0.01);
  EXPECT_EQ(server->completion_order(),
            (std::vector<std::uint64_t>{0, 1}));
}

TEST_F(BatchServerFixture, ContinuousAdmitsFreedSlotsAtBoundaries) {
  // max_batch 2 with four simultaneous arrivals: two admitted, two wait
  // queued; the freed slots admit them at the completion boundary. The
  // batch size never exceeds 2 anywhere in the trace.
  make_server(second_model(),
              ServerConfig{.max_concurrency = 1,
                           .max_queue = 0,
                           .max_batch = 2,
                           .batch_window = 0.0,
                           .continuous = true});
  int completed = 0;
  for (int i = 0; i < 4; ++i) {
    rpc_client->call("svc", "infer", json::Value::object(),
                     [&](msg::CallResult r) {
                       ASSERT_TRUE(r.ok);
                       ++completed;
                     });
  }
  loop.run();
  EXPECT_EQ(completed, 4);
  EXPECT_EQ(server->batch_trace(),
            (std::vector<std::uint32_t>{1, 2, 1, 2}));
  for (const std::uint32_t size : server->batch_trace()) {
    EXPECT_LE(size, 2u);
  }
  EXPECT_EQ(server->completion_order(),
            (std::vector<std::uint64_t>{0, 1, 2, 3}));
  EXPECT_NEAR(loop.now(), 2.0, 0.01);
}

TEST_F(BatchServerFixture, ContinuousRecordsLatencyWindow) {
  make_server(second_model(),
              ServerConfig{.max_concurrency = 1,
                           .max_queue = 0,
                           .max_batch = 4,
                           .batch_window = 0.0,
                           .continuous = true,
                           .latency_window = 30.0});
  for (int i = 0; i < 3; ++i) {
    rpc_client->call("svc", "infer", json::Value::object(),
                     [](msg::CallResult) {});
  }
  loop.run();
  // Three simultaneous one-second sequences, slope 0: every latency is
  // ~1 s (arrival -> reply, including the rpc hop) and all sit in the
  // window.
  EXPECT_EQ(server->request_latencies().count(), 3u);
  EXPECT_EQ(server->latency_window().count(loop.now()), 3u);
  EXPECT_NEAR(server->latency_window().quantile(loop.now(), 0.95), 1.0,
              0.05);
}

TEST_F(BatchServerFixture,
       TeardownMidContinuousBatchDoesNotRereplyCompletedSequences) {
  // The liveness-token regression, continuous edition: a server torn
  // down with a *partially completed* running batch — some sequences
  // already replied, others still decoding — must neither reply to the
  // completed sequences a second time (Responder::reply throws on
  // double reply, so that would surface as a crash) nor touch the
  // still-running ones.
  make_server(second_model(),
              ServerConfig{.max_concurrency = 1,
                           .max_queue = 0,
                           .max_batch = 8,
                           .batch_window = 0.0,
                           .continuous = true});
  std::vector<int> replies(3, 0);
  // A finishes at ~1.0 s; B and C (arriving at 0.4/0.6 s) are still
  // decoding when the server dies at 1.2 s.
  rpc_client->call("svc", "infer", json::Value::object(),
                   [&](msg::CallResult r) {
                     ASSERT_TRUE(r.ok);
                     ++replies[0];
                   });
  loop.call_at(0.4, [&] {
    rpc_client->call("svc", "infer", json::Value::object(),
                     [&](msg::CallResult) { ++replies[1]; });
  });
  loop.call_at(0.6, [&] {
    rpc_client->call("svc", "infer", json::Value::object(),
                     [&](msg::CallResult) { ++replies[2]; });
  });
  loop.run_until(1.2);
  ASSERT_EQ(replies[0], 1);             // A completed and replied
  ASSERT_EQ(server->served(), 1u);
  ASSERT_EQ(server->running_sequences(), 2u);  // B, C mid-decode
  server.reset();                       // teardown mid-continuous-batch
  loop.run();                           // pending decode/reply events fire
  EXPECT_EQ(replies[0], 1);             // never re-replied
  EXPECT_EQ(replies[1], 0);             // dropped, like a crashed server
  EXPECT_EQ(replies[2], 0);
}

TEST(ModelBatching, StepFactorAndSequenceWork) {
  const ModelSpec llama = llama_8b_model();
  EXPECT_DOUBLE_EQ(llama.step_factor(1), 1.0);
  EXPECT_DOUBLE_EQ(llama.step_factor(4),
                   1.0 + 3.0 * llama.batch_cost_slope);
  EXPECT_DOUBLE_EQ(llama.sequence_work(120.0),
                   llama.inference_floor_s + 120.0 * llama.per_token_s);
  EXPECT_DOUBLE_EQ(llama.sequence_work(-5.0), llama.inference_floor_s);
}

TEST(ModelBatching, BatchDurationMatchesSingleAtSizeOne) {
  const ModelSpec llama = llama_8b_model();
  EXPECT_DOUBLE_EQ(llama.batch_duration({120.0}),
                   llama.inference_floor_s + 120.0 * llama.per_token_s);
  // Longest sequence governs; slope charges per extra sequence.
  const double batched = llama.batch_duration({60.0, 120.0, 90.0});
  const double expected =
      llama.inference_floor_s +
      120.0 * llama.per_token_s * (1.0 + llama.batch_cost_slope * 2.0);
  EXPECT_DOUBLE_EQ(batched, expected);
  EXPECT_DOUBLE_EQ(llama.batch_duration({}), 0.0);
  // Batching a full batch is far cheaper than serial execution.
  EXPECT_LT(llama.mean_batch_duration(8), 8.0 * llama.mean_inference());
}

// ---------------------------------------------------------------------------
// Serving determinism: batched server + autoscaler + watching clients
// ---------------------------------------------------------------------------

struct ServingTrace {
  std::uint64_t events = 0;
  std::size_t requests = 0;
  double makespan = 0.0;
  std::uint64_t scale_ups = 0;
  std::uint64_t scale_downs = 0;
  std::vector<double> decision_times;
  std::vector<std::uint64_t> served;
  std::vector<std::uint64_t> rejected;
  std::vector<std::uint32_t> batch_sizes;  // concatenated, replica order
  std::vector<std::uint64_t> completion_hashes;  // continuous runs
  std::size_t stopped_services = 0;

  bool operator==(const ServingTrace&) const = default;
};

ServingTrace run_serving(std::uint64_t seed, bool continuous = false) {
  core::Session session({.seed = seed});
  ml::install(session);
  session.add_platform(platform::delta_profile(2));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});

  core::ServiceDescription replica;
  replica.name = "pool";
  replica.program = "inference";
  replica.config = json::Value::object({{"model", "llama-8b"},
                                        {"max_batch", 4},
                                        {"batch_window", 0.02},
                                        {"max_queue", 8}});
  if (continuous) replica.config.set("continuous", true);
  replica.gpus = 1;

  AutoscalerConfig scaling;
  scaling.min_replicas = 1;
  scaling.max_replicas = 3;
  scaling.scale_up_outstanding = 4.0;
  scaling.scale_down_outstanding = 0.5;
  scaling.poll_interval = 0.25;
  scaling.cooldown = 1.0;
  Autoscaler scaler(session, pilot, replica, scaling);

  ServingTrace trace;
  double start = 0.0;
  scaler.start([&](bool ok) {
    if (!ok) {
      ADD_FAILURE() << "serving bootstrap failed";
      session.loop().stop();  // the poll timer would keep run() alive
      return;
    }
    start = session.now();
    std::vector<std::string> task_uids;
    for (int c = 0; c < 6; ++c) {
      core::TaskDescription task;
      task.kind = "inference_client";
      json::Value endpoints = json::Value::array();
      for (const auto& endpoint : scaler.endpoints()) {
        endpoints.push_back(endpoint);
      }
      task.payload = json::Value::object({{"endpoints", endpoints},
                                          {"requests", 12},
                                          {"concurrency", 3},
                                          {"series", "det"},
                                          {"balancer", "least_outstanding"},
                                          {"watch", "pool"},
                                          {"max_retries", 12},
                                          {"retry_backoff", 0.2}});
      task_uids.push_back(session.tasks().submit(pilot, task));
    }
    session.tasks().when_done(task_uids, [&](bool) {
      trace.makespan = session.now() - start;
      // All services in this session belong to the pool; replicas()
      // holds only live uids (terminal ones are pruned each poll), so
      // the drained replicas' counters come from the ServiceManager.
      for (const auto& uid : session.services().uids()) {
        auto* program = dynamic_cast<InferenceProgram*>(
            session.services().program(uid));
        if (program == nullptr || program->server() == nullptr) continue;
        trace.served.push_back(program->server()->served());
        trace.rejected.push_back(program->server()->rejected());
        const auto& batch_trace = program->server()->batch_trace();
        trace.batch_sizes.insert(trace.batch_sizes.end(),
                                 batch_trace.begin(), batch_trace.end());
        trace.completion_hashes.push_back(
            program->server()->completion_hash());
      }
      scaler.stop();
    });
  });
  session.run();

  trace.events = session.loop().events_processed();
  if (session.metrics().has_series("det")) {
    trace.requests = session.metrics().series("det").count();
  }
  trace.scale_ups = scaler.scale_ups();
  trace.scale_downs = scaler.scale_downs();
  for (const auto& decision : scaler.decisions()) {
    trace.decision_times.push_back(decision.time);
  }
  trace.stopped_services =
      session.services().count_in_state(core::ServiceState::stopped);
  return trace;
}

TEST(ServingDeterminism, SameSeedBitIdenticalTraces) {
  const ServingTrace a = run_serving(21);
  const ServingTrace b = run_serving(21);
  EXPECT_EQ(a, b);
  // The run exercised the whole elastic path.
  EXPECT_EQ(a.requests, 6u * 12u);
  EXPECT_GT(a.scale_ups, 0u);
  EXPECT_FALSE(a.batch_sizes.empty());
  // Every replica was drained and stopped at the end.
  EXPECT_EQ(a.stopped_services, a.served.size());
}

TEST(ServingDeterminism, ContinuousSameSeedBitIdenticalTraces) {
  // The whole elastic path again, with continuous batching on every
  // replica: admission traces, per-sequence completion hashes and
  // scaling decisions must all be bit-identical under one seed.
  const ServingTrace a = run_serving(27, /*continuous=*/true);
  const ServingTrace b = run_serving(27, /*continuous=*/true);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.requests, 6u * 12u);
  EXPECT_FALSE(a.batch_sizes.empty());
  // At least one replica actually interleaved sequences (a batch grew
  // past one mid-flight).
  bool interleaved = false;
  for (const std::uint32_t size : a.batch_sizes) {
    if (size > 1) interleaved = true;
  }
  EXPECT_TRUE(interleaved);
}

TEST(ServingDeterminism, DifferentSeedsDiverge) {
  const ServingTrace a = run_serving(21);
  const ServingTrace b = run_serving(22);
  EXPECT_EQ(b.requests, 6u * 12u);  // structure invariant
  EXPECT_NE(a.makespan, b.makespan);  // stochastic draws differ
}

// ---------------------------------------------------------------------------
// Client backpressure
// ---------------------------------------------------------------------------

/// One tiny service with a 2-deep queue, hammered by eager clients.
/// Without retries, rejects surface as failed requests; with bounded
/// backoff every request eventually lands.
struct BackpressureOutcome {
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::size_t retried = 0;
  std::size_t tasks_done = 0;
  std::size_t tasks_failed = 0;
};

BackpressureOutcome run_backpressure(std::size_t max_retries) {
  core::Session session({.seed = 9});
  ml::install(session);
  session.add_platform(platform::delta_profile(2));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});

  core::ServiceDescription svc;
  svc.name = "tiny";
  svc.program = "inference";
  svc.config = json::Value::object(
      {{"model", "llama-8b"}, {"max_queue", 2}});
  svc.gpus = 1;
  const std::string svc_uid = session.services().submit(pilot, svc);

  BackpressureOutcome outcome;
  std::vector<std::string> task_uids;
  session.services().when_ready({svc_uid}, [&](bool ok) {
    ASSERT_TRUE(ok);
    const std::string endpoint = session.services().get(svc_uid).endpoint();
    for (int c = 0; c < 4; ++c) {
      core::TaskDescription task;
      task.kind = "inference_client";
      task.payload = json::Value::object(
          {{"endpoints", json::Value::array({endpoint})},
           {"requests", 8},
           {"concurrency", 4},
           {"series", "bp"},
           {"max_retries", max_retries},
           {"retry_backoff", 0.2},
           {"retry_multiplier", 2.0}});
      task_uids.push_back(session.tasks().submit(pilot, task));
    }
    session.tasks().when_done(
        task_uids, [&](bool) { session.services().stop_all(); });
  });
  session.run();

  for (const auto& uid : task_uids) {
    const core::Task& task = session.tasks().get(uid);
    if (task.state() == core::TaskState::done) {
      ++outcome.tasks_done;
      outcome.ok += static_cast<std::size_t>(
          task.result().get_or("ok", json::Value(0)).as_int());
      outcome.failed += static_cast<std::size_t>(
          task.result().get_or("failed", json::Value(0)).as_int());
      outcome.retried += static_cast<std::size_t>(
          task.result().get_or("retried", json::Value(0)).as_int());
    } else {
      ++outcome.tasks_failed;
    }
  }
  return outcome;
}

TEST(ClientBackpressure, BoundedRetriesAbsorbRejects) {
  const BackpressureOutcome with_retries = run_backpressure(10);
  EXPECT_EQ(with_retries.tasks_done, 4u);
  EXPECT_EQ(with_retries.ok, 4u * 8u);   // everything eventually served
  EXPECT_EQ(with_retries.failed, 0u);
  EXPECT_GT(with_retries.retried, 0u);   // the queue did overflow

  const BackpressureOutcome no_retries = run_backpressure(0);
  const std::size_t no_retry_ok = no_retries.ok;
  // Fail-fast clients lose the overflow rejects (or entire tasks).
  EXPECT_LT(no_retry_ok, 4u * 8u);
}

// ---------------------------------------------------------------------------
// Autoscaler behaviour
// ---------------------------------------------------------------------------

TEST(Autoscaler, ValidatesConfig) {
  core::Session session({.seed = 1});
  ml::install(session);
  session.add_platform(platform::delta_profile(1));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 1});
  core::ServiceDescription replica;
  replica.program = "inference";

  AutoscalerConfig bad;
  bad.min_replicas = 0;
  EXPECT_THROW(Autoscaler(session, pilot, replica, bad), Error);
  bad = {};
  bad.max_replicas = 0;
  EXPECT_THROW(Autoscaler(session, pilot, replica, bad), Error);
  bad = {};
  bad.scale_up_outstanding = 1.0;
  bad.scale_down_outstanding = 2.0;
  EXPECT_THROW(Autoscaler(session, pilot, replica, bad), Error);
}

TEST(Autoscaler, RepairsPoolAfterAllReplicasFail) {
  core::Session session({.seed = 13});
  ml::install(session);
  session.add_platform(platform::delta_profile(2));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});

  core::ServiceDescription replica;
  replica.name = "fragile";
  replica.program = "inference";
  replica.config = json::Value::object({{"model", "noop"}});
  replica.gpus = 1;
  replica.monitor = true;  // liveness detection is what declares death
  replica.heartbeat_interval = 0.5;
  replica.heartbeat_misses = 2;

  AutoscalerConfig scaling;
  scaling.min_replicas = 1;
  scaling.max_replicas = 2;
  scaling.poll_interval = 0.25;
  scaling.cooldown = 0.5;
  Autoscaler scaler(session, pilot, replica, scaling);

  bool killed = false;
  std::string killed_uid;
  scaler.start([&](bool ok) {
    ASSERT_TRUE(ok);
    killed_uid = scaler.replicas().front();
    session.services().kill(killed_uid);
    killed = true;
  });
  // Liveness timeout (~1 s) fails the replica; the next poll after the
  // cooldown must rebuild the pool from zero.
  session.run_until(20.0);
  EXPECT_TRUE(killed);
  EXPECT_GT(scaler.repairs(), 0u);
  EXPECT_EQ(scaler.running_replicas(), 1u);
  // A fresh uid was submitted and the dead one was pruned: the uid
  // list tracks the live pool, not the crash history.
  ASSERT_EQ(scaler.replicas().size(), 1u);
  EXPECT_NE(scaler.replicas().front(), killed_uid);

  bool stopped = false;
  scaler.stop([&] { stopped = true; });
  session.run();
  EXPECT_TRUE(stopped);
}

TEST(Autoscaler, ScaleDownDrainsLeastLoadedReplica) {
  core::Session session({.seed = 21});
  ml::install(session);
  session.add_platform(platform::delta_profile(2));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});

  core::ServiceDescription replica;
  replica.name = "skewed-pool";
  replica.program = "inference";
  replica.config = json::Value::object({{"model", "llama-8b"}});
  replica.gpus = 1;

  AutoscalerConfig scaling;
  scaling.min_replicas = 2;
  scaling.max_replicas = 2;
  Autoscaler scaler(session, pilot, replica, scaling);

  msg::RpcClient prober(session.runtime().router(), "prober",
                        session.cluster("delta").head_host());
  std::string victim;
  scaler.start([&](bool ok) {
    ASSERT_TRUE(ok);
    // Pin slow inferences onto the NEWEST replica only; the oldest
    // replica idles. The legacy policy always drained the newest —
    // exactly the replica carrying all the load.
    const std::string loaded =
        session.services().get(scaler.replicas().back()).endpoint();
    for (int i = 0; i < 3; ++i) {
      prober.call(loaded, "infer", json::Value::object(),
                  [](msg::CallResult) {});
    }
    session.loop().call_after(1.0, [&] {
      victim = scaler.scale_down_victim();
      scaler.stop();
    });
  });
  session.run();

  ASSERT_EQ(scaler.replicas().size(), 2u);
  EXPECT_EQ(victim, scaler.replicas().front());  // the idle one drains
  EXPECT_NE(victim, scaler.replicas().back());
}

TEST(Autoscaler, ScaleDownVictimPrefersNewestWhenIdle) {
  core::Session session({.seed = 22});
  ml::install(session);
  session.add_platform(platform::delta_profile(2));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});

  core::ServiceDescription replica;
  replica.name = "idle-pool";
  replica.program = "inference";
  replica.config = json::Value::object({{"model", "noop"}});
  replica.gpus = 1;

  AutoscalerConfig scaling;
  scaling.min_replicas = 3;
  scaling.max_replicas = 3;
  Autoscaler scaler(session, pilot, replica, scaling);

  std::string victim;
  scaler.start([&](bool ok) {
    ASSERT_TRUE(ok);
    // Evenly idle pool: ties keep the oldest replicas (legacy
    // behaviour), minimizing endpoint churn.
    victim = scaler.scale_down_victim();
    scaler.stop();
  });
  session.run();
  EXPECT_EQ(victim, scaler.replicas().back());
}

TEST(ClientWatch, DeferredRemovalAppliesWhenReplacementArrives) {
  // A watch-mode client whose only endpoint goes down must keep it (no
  // empty pool) but evict it as soon as a replacement publishes —
  // otherwise least-outstanding keeps preferring the dead endpoint.
  core::Session session({.seed = 17});
  ml::install(session);
  session.add_platform(platform::delta_profile(2));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});

  core::ServiceDescription svc;
  svc.name = "grp";
  svc.program = "inference";
  svc.config = json::Value::object({{"model", "noop"}});
  svc.gpus = 1;

  const std::string first = session.services().submit(pilot, svc);
  std::string task_uid;
  session.services().when_ready({first}, [&](bool ok) {
    ASSERT_TRUE(ok);
    core::TaskDescription task;
    task.kind = "inference_client";
    task.payload = json::Value::object(
        {{"endpoints", json::Value::array(
                           {session.services().get(first).endpoint()})},
         {"requests", 24},
         {"concurrency", 1},
         {"think_time", 0.25},
         {"series", "watching"},
         {"balancer", "least_outstanding"},
         {"watch", "grp"},
         {"max_retries", 8},
         {"retry_backoff", 0.1}});
    task_uid = session.tasks().submit(pilot, task);
    // Mid-run: the only replica drains away, then a replacement
    // appears. The down event hits the last-endpoint guard and must be
    // applied when the replacement's up event arrives.
    session.loop().call_after(1.0, [&] { session.services().stop(first); });
    session.loop().call_after(2.0, [&] {
      const std::string second = session.services().submit(pilot, svc);
      session.services().when_ready({second}, [](bool) {});
    });
    session.tasks().when_done(
        {task_uid}, [&](bool) { session.services().stop_all(); });
  });
  session.run();

  const core::Task& task = session.tasks().get(task_uid);
  ASSERT_EQ(task.state(), core::TaskState::done);
  // All requests landed despite the swap, the replacement was added,
  // and the dead endpoint was evicted (deferred removal applied).
  EXPECT_EQ(task.result().get_or("ok", json::Value(0)).as_int(), 24);
  EXPECT_EQ(task.result()
                .get_or("endpoints_added", json::Value(0))
                .as_int(),
            1);
  EXPECT_EQ(task.result()
                .get_or("endpoints_removed", json::Value(0))
                .as_int(),
            1);
}

TEST(Autoscaler, ScalesUpUnderLoadAndDrainsOnStop) {
  const ServingTrace trace = run_serving(33);
  EXPECT_GT(trace.scale_ups, 0u);
  EXPECT_GT(trace.served.size(), 1u);  // more than the initial replica
  // Replicas beyond the first actually took traffic.
  std::size_t replicas_with_traffic = 0;
  for (const std::uint64_t served : trace.served) {
    if (served > 0) ++replicas_with_traffic;
  }
  EXPECT_GT(replicas_with_traffic, 1u);
}

TEST(Autoscaler, PrunesTerminalUidsAcrossRepeatedRepairs) {
  core::Session session({.seed = 29});
  ml::install(session);
  session.add_platform(platform::delta_profile(2));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});

  core::ServiceDescription replica;
  replica.name = "crashy";
  replica.program = "inference";
  replica.config = json::Value::object({{"model", "noop"}});
  replica.gpus = 1;
  replica.monitor = true;  // liveness detection is what declares death
  replica.heartbeat_interval = 0.5;
  replica.heartbeat_misses = 2;

  AutoscalerConfig scaling;
  scaling.min_replicas = 1;
  scaling.max_replicas = 2;
  scaling.poll_interval = 0.25;
  scaling.cooldown = 0.5;
  Autoscaler scaler(session, pilot, replica, scaling);
  scaler.start();

  // A crash loop: whenever a replica is RUNNING, kill it. Every repair
  // submits fresh uids; without pruning the uid list accumulates every
  // uid ever submitted and each poll tick rescans the whole history.
  std::function<void()> crash_loop = [&] {
    for (const auto& uid : scaler.replicas()) {
      if (session.services().exists(uid) &&
          session.services().get(uid).state() ==
              core::ServiceState::running) {
        session.services().kill(uid);
      }
    }
    if (session.now() < 60.0) session.loop().call_after(1.0, crash_loop);
  };
  session.loop().call_after(1.0, crash_loop);
  session.run_until(70.0);

  EXPECT_GT(scaler.repairs(), 3u);
  // The regression: the uid list stays bounded by the pool size no
  // matter how many times the pool was rebuilt.
  EXPECT_LE(scaler.replicas().size(), scaling.max_replicas);
  scaler.stop();
  session.run();
}

TEST_F(BatchServerFixture, ExpiredWindowDispatchesOnFirstFreeWorker) {
  // A request that waits out its batch window while the only worker is
  // busy must dispatch the moment the worker frees — re-windowing it
  // (the old behaviour) doubles its queueing delay.
  make_server(second_model(),
              ServerConfig{.max_concurrency = 1,
                           .max_queue = 0,
                           .max_batch = 2,
                           .batch_window = 0.5});
  // Two requests form a full batch: dispatched immediately, the worker
  // is busy until ~1 s.
  for (int i = 0; i < 2; ++i) {
    rpc_client->call("svc", "infer", json::Value::object(),
                     [](msg::CallResult) {});
  }
  // The straggler arrives at 0.1 s; its 0.5 s window runs out at 0.6 s,
  // long before the worker frees.
  double straggler_done = -1.0;
  loop.call_at(0.1, [&] {
    rpc_client->call("svc", "infer", json::Value::object(),
                     [&](msg::CallResult r) {
                       ASSERT_TRUE(r.ok);
                       straggler_done = loop.now();
                     });
  });
  loop.run();
  EXPECT_EQ(server->batch_trace(), (std::vector<std::uint32_t>{2, 1}));
  // Fixed: dispatch at ~1 s, reply at ~2 s. Re-windowed: ~2.5 s.
  EXPECT_GT(straggler_done, 0.0);
  EXPECT_LT(straggler_done, 2.3);
}

}  // namespace
