// End-to-end integration tests: session + platforms + pilot + services +
// client tasks, local and remote, exercising the public API exactly the
// way the paper's experiments do.

#include <gtest/gtest.h>

#include "ripple/core/session.hpp"
#include "ripple/ml/install.hpp"
#include "ripple/platform/profiles.hpp"

namespace {

using namespace ripple;

core::ServiceDescription noop_service() {
  core::ServiceDescription desc;
  desc.name = "noop-svc";
  desc.program = "inference";
  desc.config = json::Value::object({{"model", "noop"}});
  desc.cores = 1;
  desc.gpus = 1;
  return desc;
}

core::TaskDescription client_task(const std::vector<std::string>& endpoints,
                                  std::size_t requests,
                                  const std::string& series) {
  core::TaskDescription desc;
  desc.name = "client";
  desc.kind = "inference_client";
  desc.cores = 1;
  json::Value endpoint_array = json::Value::array();
  for (const auto& e : endpoints) endpoint_array.push_back(e);
  desc.payload = json::Value::object({{"endpoints", endpoint_array},
                                      {"requests", requests},
                                      {"concurrency", 1},
                                      {"series", series}});
  return desc;
}

TEST(Integration, LocalNoopServicesServeClients) {
  core::Session session({.seed = 11});
  ml::install(session);
  session.add_platform(platform::delta_profile(4));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 4});

  const std::string svc_a = session.services().submit(pilot, noop_service());
  const std::string svc_b = session.services().submit(pilot, noop_service());

  bool services_ready = false;
  std::vector<std::string> task_uids;
  session.services().when_ready({svc_a, svc_b}, [&](bool ok) {
    ASSERT_TRUE(ok);
    services_ready = true;
    const auto endpoints = session.services().endpoints();
    ASSERT_EQ(endpoints.size(), 2u);
    for (int i = 0; i < 4; ++i) {
      task_uids.push_back(session.tasks().submit(
          pilot, client_task(endpoints, 32, "smoke")));
    }
    session.tasks().when_done(task_uids, [&](bool all_ok) {
      EXPECT_TRUE(all_ok);
      session.services().stop_all();
    });
  });

  session.run();

  EXPECT_TRUE(services_ready);
  EXPECT_EQ(session.tasks().count_in_state(core::TaskState::done), 4u);
  EXPECT_EQ(session.services().count_in_state(core::ServiceState::stopped),
            2u);

  // All 4 x 32 requests recorded with a full component decomposition.
  const auto& series = session.metrics().series("smoke");
  EXPECT_EQ(series.count(), 128u);
  // Components must sum to the total for every request (paper Fig. 4).
  for (std::size_t i = 0; i < series.total.samples().size(); ++i) {
    const double total = series.total.samples()[i];
    const double sum = series.communication.samples()[i] +
                       series.service.samples()[i] +
                       series.inference.samples()[i];
    EXPECT_NEAR(total, sum, 1e-12);
  }
  // NOOP: communication dominates inference (section IV-C).
  EXPECT_GT(series.communication.mean(), series.inference.mean());
}

TEST(Integration, RemoteServicesAcrossPlatforms) {
  core::Session session({.seed = 12});
  ml::install(session);
  session.add_platform(platform::delta_profile(4));
  auto& r3 = session.add_platform(platform::r3_profile(2));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});

  core::ServiceDescription remote_desc = noop_service();
  remote_desc.config.set("preloaded", true);
  const std::string svc =
      session.services().register_remote(r3, remote_desc, 0);

  bool done = false;
  session.services().when_ready({svc}, [&](bool ok) {
    ASSERT_TRUE(ok);
    const auto uid = session.tasks().submit(
        pilot, client_task({session.services().get(svc).endpoint()}, 64,
                           "remote"));
    session.tasks().when_done({uid}, [&](bool all_ok) {
      EXPECT_TRUE(all_ok);
      done = true;
      session.services().stop_all();
    });
  });

  session.run();
  ASSERT_TRUE(done);

  const auto& series = session.metrics().series("remote");
  EXPECT_EQ(series.count(), 64u);
  // Remote (0.47 ms links): round-trip communication near ~1 ms, far
  // above what local inter-node latency would produce.
  EXPECT_GT(series.communication.mean(), 0.8e-3);
  EXPECT_LT(series.communication.mean(), 2.0e-3);
}

TEST(Integration, BootstrapTimingRecorded) {
  core::Session session({.seed = 13});
  ml::install(session);
  session.add_platform(platform::frontier_profile(2));
  auto& pilot = session.submit_pilot({.platform = "frontier", .nodes = 2});

  core::ServiceDescription desc = noop_service();
  desc.config.set("model", "llama-8b");
  const std::string svc = session.services().submit(pilot, desc);
  session.services().when_ready(
      {svc}, [&](bool ok) {
        ASSERT_TRUE(ok);
        session.services().stop_all();
      });
  session.run();

  const auto& boots = session.metrics().bootstraps();
  ASSERT_EQ(boots.size(), 1u);
  const auto& b = boots.front();
  EXPECT_GT(b.launch, 0.0);
  EXPECT_GT(b.init, 0.0);
  EXPECT_GT(b.publish, 0.0);
  // Fig. 3 shape: init >> launch > publish.
  EXPECT_GT(b.init, b.launch);
  EXPECT_GT(b.launch, b.publish);

  const auto& svc_entity = session.services().get(svc);
  EXPECT_NEAR(svc_entity.bootstrap().total(), b.total(), 1e-12);
}

}  // namespace
