// Unit tests for the JSON value type, parser and writer.

#include <gtest/gtest.h>

#include "ripple/common/error.hpp"
#include "ripple/common/json.hpp"

namespace {

using ripple::Errc;
using ripple::Error;
namespace json = ripple::json;

TEST(JsonValue, DefaultIsNull) {
  json::Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), json::Type::null);
}

TEST(JsonValue, ScalarConstruction) {
  EXPECT_TRUE(json::Value(true).is_bool());
  EXPECT_TRUE(json::Value(42).is_int());
  EXPECT_TRUE(json::Value(3.5).is_real());
  EXPECT_TRUE(json::Value("text").is_string());
  EXPECT_TRUE(json::Value(std::string("s")).is_string());
}

TEST(JsonValue, NumericConversions) {
  EXPECT_EQ(json::Value(42).as_double(), 42.0);
  EXPECT_EQ(json::Value(2.9).as_int(), 2);
  EXPECT_TRUE(json::Value(42).is_number());
  EXPECT_TRUE(json::Value(4.2).is_number());
}

TEST(JsonValue, TypeMismatchThrows) {
  const json::Value v("text");
  EXPECT_THROW((void)v.as_int(), Error);
  EXPECT_THROW((void)v.as_bool(), Error);
  EXPECT_THROW((void)v.as_array(), Error);
  EXPECT_THROW((void)json::Value(1).as_string(), Error);
}

TEST(JsonValue, ObjectBuilderAndAccess) {
  json::Value v = json::Value::object({{"a", 1}, {"b", "two"}});
  EXPECT_TRUE(v.is_object());
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.at("a").as_int(), 1);
  EXPECT_EQ(v.at("b").as_string(), "two");
  EXPECT_TRUE(v.contains("a"));
  EXPECT_FALSE(v.contains("c"));
  EXPECT_THROW((void)v.at("c"), Error);
}

TEST(JsonValue, GetOrFallback) {
  json::Value v = json::Value::object({{"a", 1}});
  EXPECT_EQ(v.get_or("a", json::Value(9)).as_int(), 1);
  EXPECT_EQ(v.get_or("z", json::Value(9)).as_int(), 9);
  EXPECT_EQ(json::Value(3).get_or("k", json::Value(7)).as_int(), 7);
}

TEST(JsonValue, IndexOperatorAutoVivifiesObjects) {
  json::Value v;
  v["key"] = 5;
  EXPECT_TRUE(v.is_object());
  EXPECT_EQ(v.at("key").as_int(), 5);
}

TEST(JsonValue, PushBackAutoVivifiesArrays) {
  json::Value v;
  v.push_back(1);
  v.push_back("x");
  EXPECT_TRUE(v.is_array());
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.at(std::size_t{0}).as_int(), 1);
  EXPECT_THROW((void)v.at(std::size_t{5}), Error);
}

TEST(JsonValue, EqualityAcrossNumericTypes) {
  EXPECT_EQ(json::Value(2), json::Value(2.0));
  EXPECT_NE(json::Value(2), json::Value(2.5));
  EXPECT_EQ(json::Value("a"), json::Value("a"));
  EXPECT_NE(json::Value("a"), json::Value(1));
}

TEST(JsonDump, CompactScalars) {
  EXPECT_EQ(json::Value().dump(), "null");
  EXPECT_EQ(json::Value(true).dump(), "true");
  EXPECT_EQ(json::Value(false).dump(), "false");
  EXPECT_EQ(json::Value(42).dump(), "42");
  EXPECT_EQ(json::Value("hi").dump(), "\"hi\"");
}

TEST(JsonDump, RealsKeepDecimalMarker) {
  EXPECT_EQ(json::Value(2.0).dump(), "2.0");
  const json::Value round_trip = json::Value::parse(json::Value(2.0).dump());
  EXPECT_TRUE(round_trip.is_real());
}

TEST(JsonDump, DeterministicKeyOrder) {
  json::Value v = json::Value::object({{"z", 1}, {"a", 2}, {"m", 3}});
  EXPECT_EQ(v.dump(), "{\"a\":2,\"m\":3,\"z\":1}");
}

TEST(JsonDump, PrettyIndentation) {
  json::Value v = json::Value::object({{"a", json::Value::array({1, 2})}});
  EXPECT_EQ(v.dump(2), "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
}

TEST(JsonDump, EscapesControlAndQuotes) {
  EXPECT_EQ(json::Value("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(json::Value(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(json::Value::parse("null").is_null());
  EXPECT_EQ(json::Value::parse("true").as_bool(), true);
  EXPECT_EQ(json::Value::parse("-17").as_int(), -17);
  EXPECT_DOUBLE_EQ(json::Value::parse("2.5e3").as_double(), 2500.0);
  EXPECT_EQ(json::Value::parse("\"abc\"").as_string(), "abc");
}

TEST(JsonParse, NestedStructures) {
  const auto v = json::Value::parse(
      R"({"tasks": [{"uid": "t.0", "cores": 4}, {"uid": "t.1"}],
          "meta": {"count": 2}})");
  EXPECT_EQ(v.at("tasks").size(), 2u);
  EXPECT_EQ(v.at("tasks").at(std::size_t{0}).at("uid").as_string(), "t.0");
  EXPECT_EQ(v.at("meta").at("count").as_int(), 2);
}

TEST(JsonParse, WhitespaceTolerant) {
  const auto v = json::Value::parse("  {\n\t\"a\" :\r [ 1 , 2 ]  }  ");
  EXPECT_EQ(v.at("a").size(), 2u);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(json::Value::parse(R"("a\nb")").as_string(), "a\nb");
  EXPECT_EQ(json::Value::parse(R"("A")").as_string(), "A");
  EXPECT_EQ(json::Value::parse(R"("é")").as_string(), "\xc3\xa9");
  EXPECT_EQ(json::Value::parse(R"("\t\r\b\f\/\\")").as_string(),
            "\t\r\b\f/\\");
}

TEST(JsonParse, ErrorsCarryLineAndColumn) {
  try {
    (void)json::Value::parse("{\n  \"a\": ]\n}");
    FAIL() << "expected parse_error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::parse_error);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

struct BadJsonCase {
  const char* name;
  const char* text;
};

class JsonParseRejects : public ::testing::TestWithParam<BadJsonCase> {};

TEST_P(JsonParseRejects, MalformedInput) {
  EXPECT_THROW((void)json::Value::parse(GetParam().text), Error);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, JsonParseRejects,
    ::testing::Values(
        BadJsonCase{"empty", ""}, BadJsonCase{"bare_brace", "{"},
        BadJsonCase{"trailing_comma_array", "[1,2,]"},
        BadJsonCase{"trailing_comma_object", R"({"a":1,})"},
        BadJsonCase{"unquoted_key", "{a:1}"},
        BadJsonCase{"single_quotes", "{'a':1}"},
        BadJsonCase{"unterminated_string", "\"abc"},
        BadJsonCase{"bad_literal", "tru"},
        BadJsonCase{"bad_number", "1."},
        BadJsonCase{"bad_exponent", "1e"},
        BadJsonCase{"control_char", "\"a\x01b\""},
        BadJsonCase{"trailing_garbage", "1 2"},
        BadJsonCase{"lone_minus", "-"},
        BadJsonCase{"bad_escape", R"("\q")"},
        BadJsonCase{"bad_unicode", R"("\u00zz")"}),
    [](const ::testing::TestParamInfo<BadJsonCase>& info) {
      return info.param.name;
    });

class JsonRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonRoundTrip, DumpParseIdentity) {
  const json::Value original = json::Value::parse(GetParam());
  const json::Value reparsed = json::Value::parse(original.dump());
  EXPECT_EQ(original, reparsed);
  // Pretty form round-trips too.
  EXPECT_EQ(json::Value::parse(original.dump(4)), original);
}

INSTANTIATE_TEST_SUITE_P(
    Documents, JsonRoundTrip,
    ::testing::Values(
        "null", "true", "-123", "12.75", "\"string with \\\"quotes\\\"\"",
        "[]", "{}", "[1,[2,[3,[4]]]]",
        R"({"a":{"b":{"c":[true,false,null]}}})",
        R"({"mixed":[1,2.5,"three",{"four":4},[5]],"empty_obj":{},
            "empty_arr":[]})",
        R"({"unicode":"café","escape":"line\nbreak"})"));

TEST(JsonEstimateSize, GrowsWithContent) {
  const auto small = json::Value::object({{"a", 1}});
  auto large = json::Value::object();
  for (int i = 0; i < 50; ++i) {
    large.set("key_" + std::to_string(i), std::string(100, 'x'));
  }
  EXPECT_LT(small.estimate_size(), large.estimate_size());
  EXPECT_GT(large.estimate_size(), 5000u);
}

TEST(JsonParse, DeepNestingRoundTrip) {
  std::string text;
  for (int i = 0; i < 100; ++i) text += "[";
  text += "1";
  for (int i = 0; i < 100; ++i) text += "]";
  const auto v = json::Value::parse(text);
  EXPECT_EQ(json::Value::parse(v.dump()), v);
}

TEST(JsonParse, HugeIntegerFallsBackToReal) {
  const auto v = json::Value::parse("99999999999999999999999999");
  EXPECT_TRUE(v.is_real());
  EXPECT_GT(v.as_double(), 1e25);
}

}  // namespace
