// Tests for the TaskManager: lifecycle, dependencies, service readiness
// relations, staging, cancellation and failure propagation.

#include <gtest/gtest.h>

#include "ripple/common/error.hpp"
#include "ripple/core/session.hpp"
#include "ripple/ml/install.hpp"
#include "ripple/platform/profiles.hpp"

namespace {

using namespace ripple;
using namespace ripple::core;

TaskDescription quick_task(double seconds = 1.0) {
  TaskDescription desc;
  desc.name = "t";
  desc.kind = "modeled";
  desc.cores = 1;
  desc.duration = common::Distribution::constant(seconds);
  return desc;
}

class TaskManagerTest : public ::testing::Test {
 protected:
  Session session{SessionConfig{.seed = 9}};
  Pilot* pilot = nullptr;

  void SetUp() override {
    ml::install(session);
    session.add_platform(platform::delta_profile(2));
    pilot = &session.submit_pilot({.platform = "delta", .nodes = 2});
  }
};

TEST_F(TaskManagerTest, HappyPathStatesAndResult) {
  const auto uid = session.tasks().submit(*pilot, quick_task(2.5));
  bool done = false;
  session.tasks().when_done({uid}, [&](bool ok) { done = ok; });
  session.run();
  EXPECT_TRUE(done);
  const auto& task = session.tasks().get(uid);
  EXPECT_EQ(task.state(), TaskState::done);
  EXPECT_DOUBLE_EQ(task.result().at("runtime").as_double(), 2.5);
  // RUNNING lasted exactly the modeled duration.
  EXPECT_NEAR(task.duration(TaskState::running, TaskState::done), 2.5,
              1e-9);
  // Launch came before running, scheduling before launching.
  EXPECT_LE(task.state_time(TaskState::scheduling),
            task.state_time(TaskState::launching));
}

TEST_F(TaskManagerTest, BatchSubmissionAllComplete) {
  std::vector<TaskDescription> batch(10, quick_task(1.0));
  const auto uids = session.tasks().submit_all(*pilot, batch);
  EXPECT_EQ(uids.size(), 10u);
  bool all_done = false;
  session.tasks().when_done(uids, [&](bool ok) { all_done = ok; });
  session.run();
  EXPECT_TRUE(all_done);
  EXPECT_EQ(session.tasks().count_in_state(TaskState::done), 10u);
}

TEST_F(TaskManagerTest, DependencyOrdering) {
  const auto first = session.tasks().submit(*pilot, quick_task(5.0));
  auto second_desc = quick_task(1.0);
  second_desc.depends_on = {first};
  const auto second = session.tasks().submit(*pilot, second_desc);
  session.run();
  const auto& a = session.tasks().get(first);
  const auto& b = session.tasks().get(second);
  EXPECT_EQ(b.state(), TaskState::done);
  // The dependent could not start scheduling before the dep was DONE.
  EXPECT_GE(b.state_time(TaskState::scheduling),
            a.state_time(TaskState::done));
  // And it visibly WAITED.
  EXPECT_GE(b.state_time(TaskState::waiting), 0.0);
}

TEST_F(TaskManagerTest, DiamondDependencyGraph) {
  const auto root = session.tasks().submit(*pilot, quick_task(2.0));
  auto left_desc = quick_task(3.0);
  left_desc.depends_on = {root};
  auto right_desc = quick_task(1.0);
  right_desc.depends_on = {root};
  const auto left = session.tasks().submit(*pilot, left_desc);
  const auto right = session.tasks().submit(*pilot, right_desc);
  auto join_desc = quick_task(1.0);
  join_desc.depends_on = {left, right};
  const auto join = session.tasks().submit(*pilot, join_desc);
  session.run();
  const auto& j = session.tasks().get(join);
  EXPECT_EQ(j.state(), TaskState::done);
  EXPECT_GE(j.state_time(TaskState::scheduling),
            std::max(session.tasks().get(left).state_time(TaskState::done),
                     session.tasks().get(right).state_time(TaskState::done)));
}

TEST_F(TaskManagerTest, UnknownDependencyRejected) {
  auto desc = quick_task();
  desc.depends_on = {"task.999999"};
  EXPECT_THROW((void)session.tasks().submit(*pilot, desc), Error);
  desc.depends_on.clear();
  desc.requires_services = {"svc.999999"};
  EXPECT_THROW((void)session.tasks().submit(*pilot, desc), Error);
  desc.requires_services.clear();
  desc.kind = "no-such-payload";
  EXPECT_THROW((void)session.tasks().submit(*pilot, desc), Error);
}

TEST_F(TaskManagerTest, DependencyFailurePropagates) {
  auto failing = quick_task();
  failing.kind = "function";
  failing.payload = json::Value::object({{"fn", "does-not-exist"}});
  const auto bad = session.tasks().submit(*pilot, failing);
  auto dependent_desc = quick_task();
  dependent_desc.depends_on = {bad};
  const auto dependent = session.tasks().submit(*pilot, dependent_desc);
  bool all_ok = true;
  session.tasks().when_done({bad, dependent},
                            [&](bool ok) { all_ok = ok; });
  session.run();
  EXPECT_FALSE(all_ok);
  EXPECT_EQ(session.tasks().get(bad).state(), TaskState::failed);
  EXPECT_EQ(session.tasks().get(dependent).state(), TaskState::failed);
  EXPECT_NE(session.tasks().get(dependent).error().find(bad),
            std::string::npos);
}

TEST_F(TaskManagerTest, RequiresServicesGateExecution) {
  auto svc_desc = ServiceDescription{};
  svc_desc.program = "inference";
  svc_desc.config = json::Value::object({{"model", "llama-8b"}});
  svc_desc.gpus = 1;
  const auto svc = session.services().submit(*pilot, svc_desc);

  auto task_desc = quick_task(1.0);
  task_desc.requires_services = {svc};
  const auto task = session.tasks().submit(*pilot, task_desc);
  session.tasks().when_done(
      {task}, [&](bool) { session.services().stop_all(); });
  session.run();

  const auto& t = session.tasks().get(task);
  EXPECT_EQ(t.state(), TaskState::done);
  // The task waited for the full model bootstrap (~35 s).
  EXPECT_GE(t.state_time(TaskState::scheduling),
            session.services().get(svc).state_time(ServiceState::running));
}

TEST_F(TaskManagerTest, ServiceFailureBreaksDependentTask) {
  auto svc_desc = ServiceDescription{};
  svc_desc.program = "inference";
  svc_desc.config = json::Value::object({{"model", "llama-8b"}});
  svc_desc.gpus = 1;
  svc_desc.ready_timeout = 2.0;  // guaranteed bootstrap failure
  const auto svc = session.services().submit(*pilot, svc_desc);

  auto task_desc = quick_task();
  task_desc.requires_services = {svc};
  const auto task = session.tasks().submit(*pilot, task_desc);
  session.run();
  EXPECT_EQ(session.tasks().get(task).state(), TaskState::failed);
}

TEST_F(TaskManagerTest, StagingOverlapsQueueWaitAndGatesLaunch) {
  session.runtime().network().register_host("lab:x", "lab");
  session.data().register_dataset("input-data", 5e9, "lab");
  session.data().set_bandwidth("lab", "delta", 1e9);  // ~5 s transfer

  auto desc = quick_task(1.0);
  desc.staging.push_back(StagingDirective::in("input-data"));
  desc.staging.push_back(StagingDirective::out("result-data"));
  desc.payload.set("output_bytes", 2e6);
  const auto uid = session.tasks().submit(*pilot, desc);
  session.run();

  const auto& task = session.tasks().get(uid);
  EXPECT_EQ(task.state(), TaskState::done);
  EXPECT_GE(task.state_time(TaskState::staging_input), 0.0);
  EXPECT_GE(task.state_time(TaskState::staging_output), 0.0);
  // Staging overlaps the queue wait: the task enters SCHEDULING
  // immediately (no serialization behind the 5 GB transfer)...
  EXPECT_LT(task.duration(TaskState::staging_input, TaskState::scheduling),
            0.5);
  // ...but launch waits for the data: the granted slot is held until
  // the transfer lands, so scheduled -> launching spans it.
  EXPECT_GT(task.duration(TaskState::scheduled, TaskState::launching), 4.0);
  EXPECT_TRUE(session.data().available_in("input-data", "delta"));
  EXPECT_TRUE(session.data().available_in("result-data", "delta"));
}

TEST_F(TaskManagerTest, StageInFailureFailsTask) {
  auto desc = quick_task();
  desc.staging.push_back(StagingDirective::in("missing-data"));
  const auto uid = session.tasks().submit(*pilot, desc);
  session.run();
  EXPECT_EQ(session.tasks().get(uid).state(), TaskState::failed);
  EXPECT_NE(session.tasks().get(uid).error().find("stage-in"),
            std::string::npos);
}

TEST_F(TaskManagerTest, CancelBeforePlacementSucceeds) {
  // Fill the pilot so the victim queues.
  std::vector<TaskDescription> hogs(16, quick_task(50.0));
  for (auto& hog : hogs) hog.cores = 16;
  session.tasks().submit_all(*pilot, hogs);
  const auto victim = session.tasks().submit(*pilot, quick_task());
  session.run_until(5.0);
  EXPECT_EQ(session.tasks().get(victim).state(), TaskState::scheduling);
  EXPECT_TRUE(session.tasks().cancel(victim));
  session.run();
  EXPECT_EQ(session.tasks().get(victim).state(), TaskState::canceled);
}

TEST_F(TaskManagerTest, CancelAfterRunningRefused) {
  const auto uid = session.tasks().submit(*pilot, quick_task(30.0));
  session.run_until(10.0);
  EXPECT_EQ(session.tasks().get(uid).state(), TaskState::running);
  EXPECT_FALSE(session.tasks().cancel(uid));
  session.run();
  EXPECT_EQ(session.tasks().get(uid).state(), TaskState::done);
}

TEST_F(TaskManagerTest, FunctionPayloadRunsRealCode) {
  session.executor().functions().register_fn(
      "square_sum", [](ExecutionContext&, const json::Value& args) {
        double sum = 0;
        for (const auto& v : args.at("values").as_array()) {
          sum += v.as_double() * v.as_double();
        }
        return json::Value::object({{"sum", sum}});
      });
  auto desc = quick_task(0.5);
  desc.kind = "function";
  desc.payload = json::Value::object(
      {{"fn", "square_sum"},
       {"args", json::Value::object(
                    {{"values", json::Value::array({1, 2, 3})}})}});
  const auto uid = session.tasks().submit(*pilot, desc);
  session.run();
  const auto& task = session.tasks().get(uid);
  EXPECT_EQ(task.state(), TaskState::done);
  EXPECT_DOUBLE_EQ(task.result().at("output").at("sum").as_double(), 14.0);
}

TEST_F(TaskManagerTest, FunctionExceptionBecomesTaskFailure) {
  session.executor().functions().register_fn(
      "bomb", [](ExecutionContext&, const json::Value&) -> json::Value {
        throw std::runtime_error("kaboom");
      });
  auto desc = quick_task();
  desc.kind = "function";
  desc.payload = json::Value::object({{"fn", "bomb"}});
  const auto uid = session.tasks().submit(*pilot, desc);
  session.run();
  EXPECT_EQ(session.tasks().get(uid).state(), TaskState::failed);
  EXPECT_NE(session.tasks().get(uid).error().find("kaboom"),
            std::string::npos);
}

TEST_F(TaskManagerTest, SlotsReleasedAfterCompletion) {
  std::vector<TaskDescription> tasks(32, quick_task(1.0));
  for (auto& t : tasks) {
    t.cores = 8;
    t.gpus = 1;
  }
  session.tasks().submit_all(*pilot, tasks);
  session.run();
  EXPECT_EQ(session.tasks().count_in_state(TaskState::done), 32u);
  for (std::size_t n = 0; n < 2; ++n) {
    EXPECT_EQ(pilot->cluster().node(n).free_cores(), 64u);
    EXPECT_EQ(pilot->cluster().node(n).free_gpus(), 4u);
  }
}

TEST_F(TaskManagerTest, ConcurrencyBoundedByResources) {
  // 2 nodes x 4 GPUs: at most 8 single-GPU tasks run concurrently.
  std::vector<TaskDescription> tasks(24, quick_task(10.0));
  for (auto& t : tasks) t.gpus = 1;
  const auto uids = session.tasks().submit_all(*pilot, tasks);
  session.run();
  // Reconstruct maximum concurrency from the timeline.
  std::vector<std::pair<double, int>> events;
  for (const auto& uid : uids) {
    const auto& task = session.tasks().get(uid);
    events.emplace_back(task.state_time(TaskState::running), +1);
    events.emplace_back(task.state_time(TaskState::done), -1);
  }
  std::sort(events.begin(), events.end());
  int concurrent = 0;
  int peak = 0;
  for (const auto& [time, delta] : events) {
    concurrent += delta;
    peak = std::max(peak, concurrent);
  }
  EXPECT_LE(peak, 8);
  EXPECT_GE(peak, 7);  // and the scheduler actually packs the machine
}

}  // namespace
