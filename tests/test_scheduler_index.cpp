// Tests for the indexed scheduler core: capacity-index first-fit
// equivalence, wait-queue ordering, backfill/fifo semantics on the
// indexed path, cancellation of queued vs granted requests, priority
// relations between services and tasks, batch submission, and
// same-seed determinism of grant order.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ripple/common/error.hpp"
#include "ripple/common/random.hpp"
#include "ripple/core/scheduler.hpp"
#include "ripple/core/session.hpp"
#include "ripple/core/wait_queue.hpp"
#include "ripple/ml/install.hpp"
#include "ripple/platform/capacity_index.hpp"
#include "ripple/platform/profiles.hpp"
#include "ripple/sim/event_loop.hpp"

namespace {

using namespace ripple;
using namespace ripple::core;

// ---------------------------------------------------------------------------
// CapacityIndex: first_fit must equal a linear first-fit scan, always.
// ---------------------------------------------------------------------------

class CapacityIndexTest : public ::testing::Test {
 protected:
  std::vector<std::unique_ptr<platform::Node>> owned_;
  std::vector<platform::Node*> nodes_;
  platform::CapacityIndex index_;

  void build(const std::vector<platform::NodeSpec>& specs) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      owned_.push_back(std::make_unique<platform::Node>(
          "n" + std::to_string(i), specs[i], "n" + std::to_string(i)));
      nodes_.push_back(owned_.back().get());
    }
    index_.attach(nodes_);
  }

  platform::Node* linear_first_fit(std::size_t cores, std::size_t gpus,
                                   double mem) {
    for (platform::Node* node : nodes_) {
      if (node->can_fit(cores, gpus, mem)) return node;
    }
    return nullptr;
  }
};

TEST_F(CapacityIndexTest, PicksLowestIndexedFit) {
  build(std::vector<platform::NodeSpec>(5, {8, 2, 64.0}));
  EXPECT_EQ(index_.first_fit(4, 0, 0.0), nodes_[0]);
  (void)nodes_[0]->allocate(8, 0, 0.0);
  EXPECT_EQ(index_.first_fit(4, 0, 0.0), nodes_[1]);
  // GPU-aware secondary filter: node0 still has GPUs but no cores.
  EXPECT_EQ(index_.first_fit(1, 1, 0.0), nodes_[1]);
  (void)nodes_[1]->allocate(0, 2, 0.0);
  EXPECT_EQ(index_.first_fit(1, 1, 0.0), nodes_[2]);
  EXPECT_EQ(index_.first_fit(9, 0, 0.0), nullptr);
}

TEST_F(CapacityIndexTest, MixedDimensionMaximaDoNotFoolTheDescent) {
  // node0 has cores but no GPUs, node1 GPUs but no cores: the subtree
  // maxima (8 cores, 2 gpus) pass a (8c, 2g) probe although neither
  // node fits — the descent must backtrack to node2.
  build({{8, 2, 64.0}, {8, 2, 64.0}, {8, 2, 64.0}});
  (void)nodes_[0]->allocate(0, 2, 0.0);
  (void)nodes_[1]->allocate(8, 0, 0.0);
  EXPECT_EQ(index_.first_fit(8, 2, 0.0), nodes_[2]);
  (void)nodes_[2]->allocate(1, 0, 0.0);
  EXPECT_EQ(index_.first_fit(8, 2, 0.0), nullptr);
}

TEST_F(CapacityIndexTest, ReleaseRestoresFitIncrementally) {
  build(std::vector<platform::NodeSpec>(4, {4, 1, 16.0}));
  std::vector<platform::Slot> slots;
  for (auto* node : nodes_) slots.push_back(node->allocate(4, 1, 16.0));
  EXPECT_EQ(index_.first_fit(1, 0, 0.0), nullptr);
  nodes_[2]->release(slots[2]);
  EXPECT_EQ(index_.first_fit(1, 0, 0.0), nodes_[2]);
  EXPECT_EQ(index_.max_free_cores(), 4u);
}

TEST_F(CapacityIndexTest, FuzzMatchesLinearScan) {
  common::Rng rng(77);
  std::vector<platform::NodeSpec> specs;
  for (int i = 0; i < 37; ++i) {  // non-power-of-two on purpose
    specs.push_back({static_cast<std::size_t>(rng.uniform_int(4, 64)),
                     static_cast<std::size_t>(rng.uniform_int(0, 8)),
                     rng.uniform(16.0, 512.0)});
  }
  build(specs);
  std::vector<platform::Slot> held;
  for (int step = 0; step < 3000; ++step) {
    const std::size_t cores =
        static_cast<std::size_t>(rng.uniform_int(1, 48));
    const std::size_t gpus = static_cast<std::size_t>(rng.uniform_int(0, 6));
    const double mem = rng.uniform(0.0, 256.0);
    platform::Node* expected = linear_first_fit(cores, gpus, mem);
    platform::Node* actual = index_.first_fit(cores, gpus, mem);
    ASSERT_EQ(actual, expected) << "step " << step;
    if (expected != nullptr) {
      held.push_back(expected->allocate(cores, gpus, mem));
    }
    // Random releases keep the load fluctuating.
    while (!held.empty() && rng.uniform(0.0, 1.0) < 0.45) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(held.size()) - 1));
      platform::Slot slot = held[pick];
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(pick));
      for (auto* node : nodes_) {
        if (node->id() == slot.node_id) {
          node->release(slot);
          break;
        }
      }
    }
  }
}

TEST_F(CapacityIndexTest, DetachClearsListeners) {
  build(std::vector<platform::NodeSpec>(3, {8, 2, 64.0}));
  EXPECT_EQ(nodes_[0]->capacity_listener(), &index_);
  index_.detach();
  EXPECT_EQ(nodes_[0]->capacity_listener(), nullptr);
  EXPECT_EQ(index_.size(), 0u);
}

// ---------------------------------------------------------------------------
// WaitQueue
// ---------------------------------------------------------------------------

ScheduleRequest dummy_request(const std::string& uid, int priority = 0) {
  ScheduleRequest request;
  request.uid = uid;
  request.priority = priority;
  request.granted = [](platform::Slot, platform::Node*) {};
  return request;
}

TEST(WaitQueue, OrdersByPriorityThenSequence) {
  WaitQueue queue;
  queue.push({0, 0}, {dummy_request("a", 0), 0.0});
  queue.push({5, 1}, {dummy_request("b", 5), 0.0});
  queue.push({5, 2}, {dummy_request("c", 5), 0.0});
  queue.push({-1, 3}, {dummy_request("d", -1), 0.0});
  std::vector<std::string> order;
  for (const auto& [key, entry] : queue) order.push_back(entry.request.uid);
  EXPECT_EQ(order, (std::vector<std::string>{"b", "c", "a", "d"}));
}

TEST(WaitQueue, EraseByUidAndDuplicateRejected) {
  WaitQueue queue;
  queue.push({0, 0}, {dummy_request("x"), 0.0});
  EXPECT_THROW(queue.push({1, 1}, {dummy_request("x"), 0.0}), Error);
  EXPECT_TRUE(queue.contains_uid("x"));
  EXPECT_TRUE(queue.erase_uid("x"));
  EXPECT_FALSE(queue.erase_uid("x"));
  EXPECT_TRUE(queue.empty());
}

// ---------------------------------------------------------------------------
// Scheduler semantics on the indexed path
// ---------------------------------------------------------------------------

class IndexedSchedulerTest : public ::testing::Test {
 protected:
  Session session{SessionConfig{.seed = 31}};
  Pilot* pilot = nullptr;

  void SetUp() override {
    session.add_platform(platform::delta_profile(2));  // 64c/4g per node
    pilot = &session.submit_pilot({.platform = "delta", .nodes = 2});
  }

  ScheduleRequest request(const std::string& uid, std::size_t cores,
                          std::size_t gpus, int priority,
                          std::vector<std::string>& order) {
    ScheduleRequest r;
    r.uid = uid;
    r.cores = cores;
    r.gpus = gpus;
    r.priority = priority;
    r.granted = [&order, uid](platform::Slot, platform::Node*) {
      order.push_back(uid);
    };
    return r;
  }
};

TEST_F(IndexedSchedulerTest, BackfillOvertakesBlockedHeadOnRelease) {
  std::vector<std::string> order;
  auto& sched = session.scheduler();
  sched.submit(pilot->uid(), request("big1", 64, 0, 0, order));
  sched.submit(pilot->uid(), request("big2", 64, 0, 0, order));
  sched.submit(pilot->uid(), request("blocked", 64, 0, 0, order));
  sched.submit(pilot->uid(), request("small", 8, 0, 0, order));
  session.run();
  ASSERT_EQ(order.size(), 2u);
  // Free 8 cores: the blocked full-node head cannot take them, the
  // small request overtakes it.
  sched.release(pilot->uid(), platform::Slot{"delta:node0000", 8, 0, 0.0});
  session.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[2], "small");
  EXPECT_EQ(sched.queue_length(pilot->uid()), 1u);
}

TEST_F(IndexedSchedulerTest, CancelQueuedVersusGranted) {
  std::vector<std::string> order;
  auto& sched = session.scheduler();
  sched.submit(pilot->uid(), request("granted", 64, 0, 0, order));
  sched.submit(pilot->uid(), request("hog", 64, 0, 0, order));
  sched.submit(pilot->uid(), request("queued", 64, 0, 0, order));
  session.run();
  EXPECT_TRUE(sched.cancel(pilot->uid(), "queued"));
  EXPECT_FALSE(sched.cancel(pilot->uid(), "queued"));   // gone
  EXPECT_FALSE(sched.cancel(pilot->uid(), "granted"));  // holds a slot
  EXPECT_FALSE(sched.cancel(pilot->uid(), "ghost"));    // never existed
  EXPECT_EQ(sched.queue_length(pilot->uid()), 0u);
}

TEST_F(IndexedSchedulerTest, FifoHeadCancelUnblocksQueueOnNextSubmit) {
  session.scheduler().set_policy(SchedulerPolicy::fifo);
  std::vector<std::string> order;
  auto& sched = session.scheduler();
  sched.submit(pilot->uid(), request("hog1", 64, 0, 0, order));
  sched.submit(pilot->uid(), request("hog2", 64, 0, 0, order));
  sched.submit(pilot->uid(), request("blocker", 64, 0, 0, order));
  sched.submit(pilot->uid(), request("small", 1, 0, 0, order));
  session.run();
  EXPECT_EQ(order.size(), 2u);
  // Partial release: under fifo nothing may pass the blocked head.
  sched.release(pilot->uid(), platform::Slot{"delta:node0000", 8, 0, 0.0});
  session.run();
  EXPECT_EQ(order.size(), 2u);
  // Cancelling the head invalidates the fast-path invariant; the next
  // submit must rescan and grant `small` the freed cores.
  EXPECT_TRUE(sched.cancel(pilot->uid(), "blocker"));
  sched.submit(pilot->uid(), request("late", 64, 0, 0, order));
  session.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[2], "small");
}

TEST_F(IndexedSchedulerTest, ServiceRequestsOutrankTaskRequests) {
  // Default priorities: services 100, tasks 0. Saturate the pilot, then
  // queue a task before a service: the service must be granted first
  // once capacity frees up.
  std::vector<std::string> order;
  auto& sched = session.scheduler();
  sched.submit(pilot->uid(), request("hog1", 64, 0, 0, order));
  sched.submit(pilot->uid(), request("hog2", 64, 0, 0, order));
  TaskDescription task;
  ServiceDescription service;
  sched.submit(pilot->uid(),
               request("task", 8, 0, task.priority, order));
  sched.submit(pilot->uid(),
               request("service", 8, 0, service.priority, order));
  session.run();
  ASSERT_EQ(order.size(), 2u);
  sched.release(pilot->uid(), platform::Slot{"delta:node0001", 64, 0, 0.0});
  session.run();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[2], "service");
  EXPECT_EQ(order[3], "task");
}

TEST_F(IndexedSchedulerTest, DataAwareBackfillPrefersResidentInputs) {
  // Oracle: inputs named "cold" still have bytes to move; everything
  // else is resident. Within a priority class, resident requests must
  // overtake earlier-submitted cold ones when both fit.
  session.scheduler().set_locality_oracle(
      [](const std::vector<std::string>& datasets, const std::string&) {
        double bytes = 0.0;
        for (const auto& name : datasets) {
          if (name == "cold") bytes += 1e9;
        }
        return bytes;
      });
  std::vector<std::string> order;
  auto& sched = session.scheduler();
  sched.submit(pilot->uid(), request("hog1", 64, 0, 0, order));
  sched.submit(pilot->uid(), request("hog2", 64, 0, 0, order));
  ScheduleRequest cold = request("cold-task", 8, 0, 0, order);
  cold.input_datasets = {"cold"};
  ScheduleRequest warm = request("warm-task", 8, 0, 0, order);
  warm.input_datasets = {"warm"};
  sched.submit(pilot->uid(), std::move(cold));
  sched.submit(pilot->uid(), std::move(warm));
  session.run();
  ASSERT_EQ(order.size(), 2u);
  // Room for one 8-core request: the resident-input task wins it even
  // though the cold one was submitted first.
  sched.release(pilot->uid(), platform::Slot{"delta:node0000", 8, 0, 0.0});
  session.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[2], "warm-task");
  // More capacity: the cold request backfills right behind.
  sched.release(pilot->uid(), platform::Slot{"delta:node0000", 8, 0, 0.0});
  session.run();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[3], "cold-task");
}

TEST_F(IndexedSchedulerTest, DataAwarenessNeverCrossesPriorityClasses) {
  // A resident low-priority request must NOT overtake a cold
  // higher-priority one: residency is a tie-break within a class only.
  session.scheduler().set_locality_oracle(
      [](const std::vector<std::string>& datasets, const std::string&) {
        return datasets.empty() ? 0.0 : 1e9;
      });
  std::vector<std::string> order;
  auto& sched = session.scheduler();
  sched.submit(pilot->uid(), request("hog1", 64, 0, 0, order));
  sched.submit(pilot->uid(), request("hog2", 64, 0, 0, order));
  ScheduleRequest cold_high = request("cold-high", 8, 0, 5, order);
  cold_high.input_datasets = {"remote"};
  sched.submit(pilot->uid(), std::move(cold_high));
  sched.submit(pilot->uid(), request("warm-low", 8, 0, 0, order));
  session.run();
  ASSERT_EQ(order.size(), 2u);
  sched.release(pilot->uid(), platform::Slot{"delta:node0000", 8, 0, 0.0});
  session.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[2], "cold-high");
}

TEST_F(IndexedSchedulerTest, SubmitAllEnactsPrioritiesAcrossBatch) {
  std::vector<std::string> order;
  auto& sched = session.scheduler();
  std::vector<ScheduleRequest> batch;
  batch.push_back(request("low", 64, 0, 0, order));
  batch.push_back(request("mid", 64, 0, 1, order));
  batch.push_back(request("high", 64, 0, 2, order));
  // Two nodes: only two grants possible. Unlike sequential submits
  // (where `low` would grab a node first), the batch is placed in
  // priority order.
  const std::size_t granted = sched.submit_all(pilot->uid(),
                                               std::move(batch));
  session.run();
  EXPECT_EQ(granted, 2u);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "high");
  EXPECT_EQ(order[1], "mid");
  EXPECT_EQ(sched.queue_length(pilot->uid()), 1u);
}

TEST_F(IndexedSchedulerTest, PolicySwitchForcesRescan) {
  session.scheduler().set_policy(SchedulerPolicy::fifo);
  std::vector<std::string> order;
  auto& sched = session.scheduler();
  sched.submit(pilot->uid(), request("hog1", 64, 0, 0, order));
  sched.submit(pilot->uid(), request("hog2", 64, 0, 0, order));
  sched.submit(pilot->uid(), request("blocker", 64, 0, 0, order));
  sched.submit(pilot->uid(), request("small", 1, 0, 0, order));
  sched.release(pilot->uid(), platform::Slot{"delta:node0000", 8, 0, 0.0});
  session.run();
  EXPECT_EQ(order.size(), 2u);  // fifo: head blocks
  // Under backfill those 8 free cores are usable — the switch must not
  // leave `small` stranded behind the stale fifo invariant.
  sched.set_policy(SchedulerPolicy::backfill);
  sched.submit(pilot->uid(), request("late", 64, 0, 0, order));
  session.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[2], "small");
}

// ---------------------------------------------------------------------------
// Determinism: identical grant order across two same-seed runs.
// ---------------------------------------------------------------------------

enum class OracleMode {
  session_default,  ///< the Session's data-plane oracle (no datasets
                    ///< are registered, so every footprint is zero)
  disabled,         ///< oracle removed: the pre-data-aware scan
  all_zero,         ///< explicit constant-zero oracle
};

std::vector<std::string> grant_trace(
    SchedulerPolicy policy, std::uint64_t seed,
    OracleMode oracle = OracleMode::session_default) {
  Session session{SessionConfig{.seed = seed, .scheduler_policy = policy}};
  session.add_platform(platform::delta_profile(4));
  Pilot& pilot = session.submit_pilot({.platform = "delta", .nodes = 4});
  auto& sched = session.scheduler();
  if (oracle == OracleMode::disabled) {
    sched.set_locality_oracle({});
  } else if (oracle == OracleMode::all_zero) {
    sched.set_locality_oracle(
        [](const std::vector<std::string>&, const std::string&) {
          return 0.0;
        });
  }
  common::Rng rng(seed);

  std::vector<std::string> order;
  std::vector<platform::Slot> held;
  for (int i = 0; i < 400; ++i) {
    ScheduleRequest request;
    request.uid = "t" + std::to_string(i);
    request.cores = static_cast<std::size_t>(rng.uniform_int(1, 64));
    request.gpus = static_cast<std::size_t>(rng.uniform_int(0, 4));
    request.priority = static_cast<int>(rng.uniform_int(0, 2));
    if (i % 3 == 0) {
      // A footprint that resolves to zero bytes either way: unknown
      // datasets cost nothing in the Session's data-plane oracle.
      request.input_datasets = {"unregistered-" + std::to_string(i)};
    }
    request.granted = [&order, &held, uid = request.uid](
                          platform::Slot slot, platform::Node*) {
      order.push_back(uid);
      held.push_back(std::move(slot));
    };
    sched.submit(pilot.uid(), std::move(request));
    session.run();
    // Deterministically churn capacity so later grants depend on the
    // exact placement of earlier ones.
    if (i % 2 == 0 && !held.empty()) {
      sched.release(pilot.uid(), held.front());
      held.erase(held.begin());
      session.run();
    }
  }
  while (!held.empty()) {
    sched.release(pilot.uid(), held.front());
    held.erase(held.begin());
    session.run();
  }
  return order;
}

TEST(SchedulerDeterminism, SameSeedSameGrantOrder) {
  for (const SchedulerPolicy policy :
       {SchedulerPolicy::fifo, SchedulerPolicy::backfill}) {
    const auto first = grant_trace(policy, 1234);
    const auto second = grant_trace(policy, 1234);
    EXPECT_EQ(first, second);
    EXPECT_GT(first.size(), 100u);
  }
}

TEST(SchedulerDeterminism, DataAwareZeroFootprintParity) {
  // The conservative guarantee: with every request footprint zero, the
  // data-aware backfill pass grants in exactly the pre-data-aware
  // order, event for event — across 400 mixed-priority requests with
  // capacity churn.
  for (const std::uint64_t seed : {1234ull, 77ull}) {
    const auto blind =
        grant_trace(SchedulerPolicy::backfill, seed, OracleMode::disabled);
    const auto aware =
        grant_trace(SchedulerPolicy::backfill, seed, OracleMode::all_zero);
    const auto via_session = grant_trace(SchedulerPolicy::backfill, seed,
                                         OracleMode::session_default);
    EXPECT_EQ(blind, aware);
    EXPECT_EQ(blind, via_session);
    EXPECT_GT(blind.size(), 100u);
  }
}

// ---------------------------------------------------------------------------
// Manager batch paths end-to-end
// ---------------------------------------------------------------------------

TEST(ManagerBatch, TasksAndServicesCompleteThroughBatchSubmission) {
  Session session{SessionConfig{.seed = 7}};
  ml::install(session);
  session.add_platform(platform::delta_profile(2));
  Pilot& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});

  std::vector<ServiceDescription> services;
  for (int i = 0; i < 3; ++i) {
    ServiceDescription desc;
    desc.name = "svc";
    desc.program = "inference";
    desc.config = json::Value::object({{"model", "noop"}});
    desc.cores = 1;
    desc.gpus = 1;
    services.push_back(desc);
  }
  const auto svc_uids = session.services().submit_all(pilot, services);
  EXPECT_EQ(svc_uids.size(), 3u);

  TaskDescription task;
  task.name = "t";
  task.kind = "modeled";
  task.cores = 1;
  task.duration = common::Distribution::constant(1.0);
  const auto task_uids =
      session.tasks().submit_all(pilot, {task, task, task, task});

  bool tasks_done = false;
  session.tasks().when_done(task_uids, [&](bool ok) { tasks_done = ok; });
  bool services_up = false;
  session.services().when_ready(svc_uids, [&](bool ok) {
    services_up = ok;
    session.services().stop_all();
  });
  session.run();
  EXPECT_TRUE(services_up);
  EXPECT_TRUE(tasks_done);
  EXPECT_EQ(session.tasks().count_in_state(TaskState::done), 4u);
}

TEST(ManagerBatch, OversizedTaskFailsWithoutStrandingSiblings) {
  Session session{SessionConfig{.seed = 8}};
  ml::install(session);
  session.add_platform(platform::delta_profile(2));
  Pilot& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});

  TaskDescription good;
  good.name = "t";
  good.kind = "modeled";
  good.cores = 1;
  good.duration = common::Distribution::constant(1.0);
  TaskDescription impossible = good;
  impossible.cores = 1000;  // exceeds every node

  const auto uids =
      session.tasks().submit_all(pilot, {good, impossible, good});
  session.run();
  EXPECT_EQ(session.tasks().get(uids[0]).state(), TaskState::done);
  EXPECT_EQ(session.tasks().get(uids[1]).state(), TaskState::failed);
  EXPECT_EQ(session.tasks().get(uids[2]).state(), TaskState::done);
}

TEST(ManagerBatch, MidBatchThrowDoesNotStrandEarlierTasks) {
  Session session{SessionConfig{.seed = 12}};
  ml::install(session);
  session.add_platform(platform::delta_profile(2));
  Pilot& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});

  TaskDescription good;
  good.name = "t";
  good.kind = "modeled";
  good.cores = 1;
  good.duration = common::Distribution::constant(1.0);
  TaskDescription bad = good;
  bad.kind = "no-such-payload";

  EXPECT_THROW(session.tasks().submit_all(pilot, {good, bad}), Error);
  const auto uids = session.tasks().uids();
  ASSERT_EQ(uids.size(), 1u);  // the good task was created before the throw
  session.run();
  EXPECT_EQ(session.tasks().get(uids[0]).state(), TaskState::done);
}

// ---------------------------------------------------------------------------
// EventLoop cancellation bookkeeping regression
// ---------------------------------------------------------------------------

TEST(EventLoopCancel, CancelAfterFireNeitherSucceedsNorLeaks) {
  sim::EventLoop loop;
  std::vector<sim::EventLoop::TimerHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(loop.call_after(0.1 * i, [] {}));
  }
  loop.run();
  // All events fired: cancelling them now must fail and must not park
  // their ids in the cancelled set forever.
  for (const auto& handle : handles) EXPECT_FALSE(loop.cancel(handle));
  EXPECT_EQ(loop.cancelled_backlog(), 0u);
  EXPECT_EQ(loop.pending(), 0u);

  // Live cancellations still work and drain once popped.
  auto keep = loop.call_after(1.0, [] {});
  auto drop = loop.call_after(2.0, [] {});
  EXPECT_TRUE(loop.cancel(drop));
  EXPECT_FALSE(loop.cancel(drop));
  EXPECT_EQ(loop.cancelled_backlog(), 1u);
  loop.run();
  EXPECT_EQ(loop.cancelled_backlog(), 0u);
  (void)keep;
}

}  // namespace
