// Unit tests for the simulation substrate: event loop, slot pool,
// network model.

#include <gtest/gtest.h>

#include "ripple/common/error.hpp"
#include "ripple/sim/event_loop.hpp"
#include "ripple/sim/network.hpp"
#include "ripple/sim/resource.hpp"

namespace {

using namespace ripple;
using sim::EventLoop;

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.call_at(3.0, [&] { order.push_back(3); });
  loop.call_at(1.0, [&] { order.push_back(1); });
  loop.call_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(loop.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(loop.now(), 3.0);
}

TEST(EventLoop, EqualTimesFireInPostingOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.call_at(1.0, [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventLoop, CallAfterAndPost) {
  EventLoop loop;
  double fired_at = -1;
  loop.call_after(2.5, [&] { fired_at = loop.now(); });
  loop.run();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);

  int post_order = 0;
  loop.post([&] { EXPECT_EQ(post_order++, 0); });
  loop.post([&] { EXPECT_EQ(post_order++, 1); });
  loop.run();
  EXPECT_EQ(post_order, 2);
}

TEST(EventLoop, ReentrantSchedulingFromCallback) {
  EventLoop loop;
  std::vector<double> times;
  loop.call_after(1.0, [&] {
    times.push_back(loop.now());
    loop.call_after(1.0, [&] { times.push_back(loop.now()); });
  });
  loop.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const auto handle = loop.call_after(1.0, [&] { ran = true; });
  EXPECT_TRUE(loop.cancel(handle));
  EXPECT_FALSE(loop.cancel(handle));  // already cancelled
  loop.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(loop.events_processed(), 0u);
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int fired = 0;
  loop.call_at(1.0, [&] { ++fired; });
  loop.call_at(5.0, [&] { ++fired; });
  EXPECT_EQ(loop.run_until(3.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(loop.now(), 3.0);  // clock advances to the deadline
  loop.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventLoop, StopHaltsMidRun) {
  EventLoop loop;
  int fired = 0;
  loop.call_at(1.0, [&] {
    ++fired;
    loop.stop();
  });
  loop.call_at(2.0, [&] { ++fired; });
  loop.run();
  EXPECT_EQ(fired, 1);
  loop.reset_stop();
  loop.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventLoop, RejectsPastAndInvalid) {
  EventLoop loop;
  loop.call_at(2.0, [] {});
  loop.run();
  EXPECT_THROW(loop.call_at(1.0, [] {}), Error);
  EXPECT_THROW(loop.call_after(-0.5, [] {}), Error);
  EXPECT_THROW(loop.call_after(1.0, nullptr), Error);
}

TEST(EventLoop, PendingExcludesCancelled) {
  EventLoop loop;
  const auto h1 = loop.call_after(1.0, [] {});
  loop.call_after(2.0, [] {});
  EXPECT_EQ(loop.pending(), 2u);
  loop.cancel(h1);
  EXPECT_EQ(loop.pending(), 1u);
}

// ---------------------------------------------------------------------------
// SlotPool
// ---------------------------------------------------------------------------

TEST(SlotPool, GrantsImmediatelyWhenFree) {
  EventLoop loop;
  sim::SlotPool pool(loop, "gpus", 4);
  int granted = 0;
  pool.acquire(2, [&](sim::SlotPool::Grant) { ++granted; });
  pool.acquire(2, [&](sim::SlotPool::Grant) { ++granted; });
  loop.run();
  EXPECT_EQ(granted, 2);
  EXPECT_EQ(pool.in_use(), 4u);
  EXPECT_EQ(pool.available(), 0u);
}

TEST(SlotPool, FifoNoOvertaking) {
  EventLoop loop;
  sim::SlotPool pool(loop, "slots", 4);
  std::vector<int> order;
  sim::SlotPool::Grant first_grant;
  pool.acquire(4, [&](sim::SlotPool::Grant g) {
    order.push_back(0);
    first_grant = g;
  });
  pool.acquire(3, [&](sim::SlotPool::Grant) { order.push_back(1); });
  pool.acquire(1, [&](sim::SlotPool::Grant) { order.push_back(2); });
  loop.run();
  // Only the head got slots; the 1-slot request must NOT overtake.
  EXPECT_EQ(order, (std::vector<int>{0}));
  EXPECT_EQ(pool.queue_length(), 2u);

  pool.release(first_grant);
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SlotPool, WaitTimesRecorded) {
  EventLoop loop;
  sim::SlotPool pool(loop, "slots", 1);
  sim::SlotPool::Grant held;
  pool.acquire(1, [&](sim::SlotPool::Grant g) { held = g; });
  pool.acquire(1, [&](sim::SlotPool::Grant) {});
  loop.run();
  loop.call_after(5.0, [&] { pool.release(held); });
  loop.run();
  ASSERT_EQ(pool.wait_times().count(), 2u);
  EXPECT_DOUBLE_EQ(pool.wait_times().max(), 5.0);
  EXPECT_DOUBLE_EQ(pool.wait_times().min(), 0.0);
}

TEST(SlotPool, UtilizationIntegral) {
  EventLoop loop;
  sim::SlotPool pool(loop, "slots", 2);
  pool.acquire(2, [&](sim::SlotPool::Grant g) {
    loop.call_after(10.0, [&pool, g] { pool.release(g); });
  });
  loop.run();
  loop.call_after(10.0, [] {});  // idle tail: 10 busy, 10 idle
  loop.run();
  EXPECT_NEAR(pool.mean_utilization(), 0.5, 1e-9);
}

TEST(SlotPool, RejectsImpossibleAndInvalid) {
  EventLoop loop;
  sim::SlotPool pool(loop, "slots", 2);
  EXPECT_THROW(pool.acquire(3, [](sim::SlotPool::Grant) {}), Error);
  EXPECT_THROW(pool.acquire(0, [](sim::SlotPool::Grant) {}), Error);
  EXPECT_THROW(pool.release(sim::SlotPool::Grant{}), Error);
  EXPECT_THROW(sim::SlotPool(loop, "zero", 0), Error);
}

// ---------------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------------

class NetworkTest : public ::testing::Test {
 protected:
  EventLoop loop;
  common::Rng rng{17};
  sim::Network net{loop, rng};

  void SetUp() override {
    net.register_host("d0", "delta");
    net.register_host("d1", "delta");
    net.register_host("r0", "r3");
    net.set_link("delta", "delta",
                 sim::LinkModel{
                     common::Distribution::normal(63e-6, 14e-6, 5e-6), 0});
    net.set_link("delta", "r3",
                 sim::LinkModel{
                     common::Distribution::normal(0.47e-3, 0.04e-3, 1e-5),
                     1.25e9});
  }
};

TEST_F(NetworkTest, ZoneRegistration) {
  EXPECT_TRUE(net.has_host("d0"));
  EXPECT_FALSE(net.has_host("x9"));
  EXPECT_EQ(net.zone_of("r0"), "r3");
  EXPECT_THROW((void)net.zone_of("x9"), Error);
}

TEST_F(NetworkTest, IntraZoneDelayMatchesCalibration) {
  common::OnlineStats stats;
  for (int i = 0; i < 5000; ++i) {
    stats.add(net.sample_delay("d0", "d1", 64));
  }
  EXPECT_NEAR(stats.mean(), 63e-6, 2e-6);     // 0.063 ms (paper IV-C)
  EXPECT_NEAR(stats.stddev(), 14e-6, 2e-6);   // +/- 0.014 ms
}

TEST_F(NetworkTest, WanDelayMatchesCalibration) {
  common::OnlineStats stats;
  for (int i = 0; i < 5000; ++i) {
    stats.add(net.sample_delay("d0", "r0", 0));
  }
  EXPECT_NEAR(stats.mean(), 0.47e-3, 1e-5);   // 0.47 ms (paper IV-C)
}

TEST_F(NetworkTest, BandwidthTermAddsTransferTime) {
  // 1.25 GB at 1.25 GB/s across the WAN link: ~1 s on top of latency.
  const double delay = net.sample_delay("d0", "r0", 1'250'000'000);
  EXPECT_GT(delay, 0.9);
  EXPECT_LT(delay, 1.2);
}

TEST_F(NetworkTest, LoopbackDefaultAndZoneOverride) {
  const double default_loopback = net.sample_delay("d0", "d0", 0);
  EXPECT_DOUBLE_EQ(default_loopback, 1e-6);
  net.set_zone_loopback("delta",
                        sim::LinkModel{
                            common::Distribution::constant(50e-6), 0});
  EXPECT_DOUBLE_EQ(net.sample_delay("d0", "d0", 0), 50e-6);
  // Other zones keep the global default.
  EXPECT_DOUBLE_EQ(net.sample_delay("r0", "r0", 0), 1e-6);
}

TEST_F(NetworkTest, DeliverSchedulesArrival) {
  double arrived_at = -1;
  net.deliver("d0", "r0", 128, [&] { arrived_at = loop.now(); });
  loop.run();
  EXPECT_GT(arrived_at, 0.3e-3);
  EXPECT_LT(arrived_at, 0.7e-3);
  EXPECT_EQ(net.messages_delivered(), 1u);
  EXPECT_EQ(net.bytes_delivered(), 128u);
}

TEST_F(NetworkTest, MissingLinkThrows) {
  net.register_host("f0", "frontier");
  EXPECT_THROW((void)net.sample_delay("d0", "f0", 0), Error);
}

TEST_F(NetworkTest, DelayStatsPerZonePair) {
  (void)net.sample_delay("d0", "d1", 0);
  (void)net.sample_delay("d0", "r0", 0);
  (void)net.sample_delay("d0", "r0", 0);
  const auto& stats = net.delay_stats();
  EXPECT_EQ(stats.at("delta->delta").count(), 1u);
  EXPECT_EQ(stats.at("delta->r3").count(), 2u);
}

}  // namespace
