// Real-thread tests for the concurrent queue and thread pool (these run
// actual std::thread workers, unlike the deterministic control plane).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "ripple/common/concurrent_queue.hpp"
#include "ripple/common/thread_pool.hpp"
#include "ripple/sim/event_loop.hpp"

namespace {

using namespace ripple;

TEST(ConcurrentQueue, FifoSingleThread) {
  common::ConcurrentQueue<int> queue;
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_EQ(queue.pop().value(), 2);
  EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(ConcurrentQueue, CloseDrainsThenSignalsExhaustion) {
  common::ConcurrentQueue<int> queue;
  queue.push(7);
  queue.close();
  EXPECT_FALSE(queue.push(8));
  EXPECT_EQ(queue.pop().value(), 7);  // drains remaining item
  EXPECT_FALSE(queue.pop().has_value());
  EXPECT_TRUE(queue.closed());
}

TEST(ConcurrentQueue, BoundedTryPushFailsWhenFull) {
  common::ConcurrentQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));
  (void)queue.pop();
  EXPECT_TRUE(queue.try_push(3));
}

TEST(ConcurrentQueue, ManyProducersManyConsumers) {
  common::ConcurrentQueue<int> queue;
  constexpr int kProducers = 4;
  constexpr int kItemsEach = 2500;
  std::atomic<long long> total{0};
  std::atomic<int> consumed{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&] {
      while (auto item = queue.pop()) {
        total += *item;
        ++consumed;
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kItemsEach; ++i) {
        queue.push(p * kItemsEach + i);
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();

  const long long n = kProducers * kItemsEach;
  EXPECT_EQ(consumed.load(), n);
  EXPECT_EQ(total.load(), n * (n - 1) / 2);
}

TEST(ConcurrentQueue, BlockingPushWakesOnPop) {
  common::ConcurrentQueue<int> queue(1);
  ASSERT_TRUE(queue.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.push(2));  // parks on the full queue
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());  // capacity 1: still blocked
  EXPECT_EQ(queue.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.pop().value(), 2);
}

TEST(ConcurrentQueue, CloseReleasesFullQueueWaiters) {
  common::ConcurrentQueue<int> queue(1);
  ASSERT_TRUE(queue.push(1));
  std::thread producer([&] {
    EXPECT_FALSE(queue.push(2));  // woken by close(), not by space
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  producer.join();
  EXPECT_EQ(queue.pop().value(), 1);  // close still drains
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(ConcurrentQueue, TryPopDrainsAfterClose) {
  common::ConcurrentQueue<int> queue(2);
  ASSERT_TRUE(queue.push(1));
  ASSERT_TRUE(queue.push(2));
  queue.close();
  EXPECT_FALSE(queue.try_push(3));
  EXPECT_EQ(queue.try_pop().value(), 1);
  EXPECT_EQ(queue.try_pop().value(), 2);
  EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(ThreadPool, SubmitReturnsFutures) {
  common::ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("done"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "done");
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  common::ThreadPool pool(1);
  auto future = pool.submit(
      []() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  common::ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> touched(kN);
  pool.parallel_for(0, kN, [&](std::size_t i) { ++touched[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForEmptyAndSingle) {
  common::ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(5, 6, [&](std::size_t i) {
    EXPECT_EQ(i, 5u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelReductionMatchesSerial) {
  common::ThreadPool pool;
  constexpr std::size_t kN = 100000;
  std::vector<double> data(kN);
  std::iota(data.begin(), data.end(), 0.0);
  std::vector<double> partial(pool.thread_count(), 0.0);
  // Chunked manual reduction through submit().
  std::vector<std::future<double>> futures;
  const std::size_t chunk = kN / 4;
  for (int c = 0; c < 4; ++c) {
    futures.push_back(pool.submit([&, c] {
      double sum = 0;
      const std::size_t hi = c == 3 ? kN : (c + 1) * chunk;
      for (std::size_t i = c * chunk; i < hi; ++i) sum += data[i];
      return sum;
    }));
  }
  double total = 0;
  for (auto& f : futures) total += f.get();
  EXPECT_DOUBLE_EQ(total, kN * (kN - 1) / 2.0);
}

TEST(ThreadPool, SubmitAcceptsMoveOnlyCallables) {
  // The queue stores tasks in a move-only inline-storage wrapper, so
  // submit() no longer needs copyable callables (or the shared_ptr
  // indirection that used to fake them).
  common::ThreadPool pool(1);
  auto future = pool.submit(
      [p = std::make_unique<int>(41)]() mutable { return *p + 1; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ParallelForChunkGranularityBalancesLoad) {
  // 16 items, the first 8 slow. One chunk per worker puts every slow
  // item in the same chunk (8 sleeps back to back on one worker); the
  // default granularity (4 chunks/worker) spreads them across both.
  common::ThreadPool pool(2);
  const auto slow_half = [](std::size_t i) {
    if (i < 8) std::this_thread::sleep_for(std::chrono::milliseconds(30));
  };
  const auto timed = [&](std::size_t chunks_per_worker) {
    const auto start = std::chrono::steady_clock::now();
    pool.parallel_for(0, 16, slow_half, chunks_per_worker);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  const double coarse = timed(1);
  const double fine = timed(4);
  EXPECT_GT(coarse, 0.23);  // all 8 sleeps land on one worker
  EXPECT_LT(fine, 0.21);    // sleeps overlap at finer granularity
}

TEST(EventLoop, PostExternalHandsOffAcrossThreads) {
  sim::EventLoop loop;
  bool ran = false;
  std::thread worker([&] { loop.post_external([&ran] { ran = true; }); });
  worker.join();  // hand-off complete before the loop runs
  EXPECT_EQ(loop.run(), 1u);
  EXPECT_TRUE(ran);
}

TEST(EventLoop, PostExternalMidRunDrainsAtStepBoundary) {
  sim::EventLoop loop;
  std::vector<int> order;
  loop.call_after(1.0, [&] {
    std::thread worker(
        [&] { loop.post_external([&] { order.push_back(2); }); });
    worker.join();  // the external callback is parked before we return
    order.push_back(1);
  });
  loop.call_after(2.0, [&] { order.push_back(3); });
  loop.run();
  // The drained callback runs at the next step boundary (t=1), ahead of
  // the strictly later t=2 timer.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> ran{0};
  {
    common::ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&] { ++ran; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(ran.load(), 64);
}

}  // namespace
