// CI smoke check for trace artifacts: every "*.trace.json" a bench
// emitted under bench_out/ must be well-formed Chrome trace-event JSON
// (parses through common::json, has a traceEvents array whose entries
// carry a phase). The suite passes vacuously when no benches have run
// yet — ctest orders it after the smoke benches so in CI it sees the
// files they wrote.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ripple/common/json.hpp"

namespace {

using namespace ripple;

std::vector<std::string> trace_files(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 11 &&
        name.substr(name.size() - 11) == ".trace.json") {
      files.push_back(entry.path().string());
    }
  }
  return files;
}

TEST(TraceFiles, EveryEmittedTraceParsesAsChromeTrace) {
  const auto files = trace_files("bench_out");
  if (files.empty()) {
    GTEST_SKIP() << "no bench_out/*.trace.json emitted yet";
  }
  for (const auto& path : files) {
    SCOPED_TRACE(path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream text;
    text << in.rdbuf();
    json::Value doc;
    ASSERT_NO_THROW(doc = json::Value::parse(text.str()));
    ASSERT_TRUE(doc.contains("traceEvents"));
    const auto& events = doc.at("traceEvents");
    EXPECT_GT(events.size(), 0u);
    for (std::size_t i = 0; i < events.size(); ++i) {
      const auto& event = events.at(i);
      ASSERT_TRUE(event.contains("ph"));
      ASSERT_TRUE(event.contains("name"));
    }
  }
}

}  // namespace
