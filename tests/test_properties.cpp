// Property-based suites: invariants that must hold across parameter
// sweeps of the whole runtime (the paper's experiment grid, shrunk).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "ripple/common/hash.hpp"
#include "ripple/common/random.hpp"
#include "ripple/common/shard_executor.hpp"
#include "ripple/core/session.hpp"
#include "ripple/data/catalog.hpp"
#include "ripple/data/transfer_engine.hpp"
#include "ripple/ml/inference_server.hpp"
#include "ripple/ml/install.hpp"
#include "ripple/ml/load_balancer.hpp"
#include "ripple/platform/profiles.hpp"
#include "ripple/wf/workflow_manager.hpp"

namespace {

using namespace ripple;
using namespace ripple::core;

struct GridPoint {
  std::size_t clients;
  std::size_t services;
  std::size_t requests;
  std::size_t concurrency;
  bool remote;
  const char* model;
};

std::string grid_name(const ::testing::TestParamInfo<GridPoint>& info) {
  const auto& p = info.param;
  std::string model = p.model;
  model.erase(std::remove(model.begin(), model.end(), '-'), model.end());
  return std::string(p.remote ? "remote" : "local") + "_" + model + "_c" +
         std::to_string(p.clients) + "_s" + std::to_string(p.services) +
         "_r" + std::to_string(p.requests) + "_f" +
         std::to_string(p.concurrency);
}

/// Runs one configuration and returns the session for inspection.
struct RunOutcome {
  std::size_t requests_recorded = 0;
  double comm_mean = 0;
  double service_mean = 0;
  double inference_mean = 0;
  double total_mean = 0;
  bool component_sum_holds = true;
  std::size_t tasks_done = 0;
  std::size_t services_stopped = 0;
  std::uint64_t events = 0;
};

RunOutcome run_grid_point(const GridPoint& p, std::uint64_t seed) {
  Session session({.seed = seed});
  ml::install(session);
  session.add_platform(platform::delta_profile(4));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 4});

  std::vector<std::string> svc_uids;
  if (p.remote) {
    auto& r3 = session.add_platform(platform::r3_profile(2));
    for (std::size_t i = 0; i < p.services; ++i) {
      ServiceDescription desc;
      desc.program = "inference";
      desc.config = json::Value::object(
          {{"model", p.model}, {"preloaded", true}});
      svc_uids.push_back(
          session.services().register_remote(r3, desc, i % 2));
    }
  } else {
    for (std::size_t i = 0; i < p.services; ++i) {
      ServiceDescription desc;
      desc.program = "inference";
      desc.config = json::Value::object({{"model", p.model}});
      desc.gpus = 1;
      svc_uids.push_back(session.services().submit(pilot, desc));
    }
  }

  session.services().when_ready(svc_uids, [&](bool ok) {
    ASSERT_TRUE(ok);
    json::Value endpoints = json::Value::array();
    for (const auto& uid : svc_uids) {
      endpoints.push_back(session.services().get(uid).endpoint());
    }
    std::vector<std::string> task_uids;
    for (std::size_t c = 0; c < p.clients; ++c) {
      TaskDescription task;
      task.kind = "inference_client";
      task.payload = json::Value::object({{"endpoints", endpoints},
                                          {"requests", p.requests},
                                          {"concurrency", p.concurrency},
                                          {"series", "grid"}});
      task_uids.push_back(session.tasks().submit(pilot, task));
    }
    session.tasks().when_done(
        task_uids, [&](bool) { session.services().stop_all(); });
  });
  session.run();

  RunOutcome out;
  out.tasks_done = session.tasks().count_in_state(TaskState::done);
  out.services_stopped =
      session.services().count_in_state(ServiceState::stopped);
  out.events = session.loop().events_processed();
  if (session.metrics().has_series("grid")) {
    const auto& series = session.metrics().series("grid");
    out.requests_recorded = series.count();
    out.comm_mean = series.communication.mean();
    out.service_mean = series.service.mean();
    out.inference_mean = series.inference.mean();
    out.total_mean = series.total.mean();
    for (std::size_t i = 0; i < series.total.samples().size(); ++i) {
      const double sum = series.communication.samples()[i] +
                         series.service.samples()[i] +
                         series.inference.samples()[i];
      if (std::abs(series.total.samples()[i] - sum) > 1e-9) {
        out.component_sum_holds = false;
      }
    }
  }
  return out;
}

class RequestGrid : public ::testing::TestWithParam<GridPoint> {};

TEST_P(RequestGrid, InvariantsHold) {
  const GridPoint& p = GetParam();
  const RunOutcome out = run_grid_point(p, 1234);

  // Every request is recorded, none lost or duplicated.
  EXPECT_EQ(out.requests_recorded, p.clients * p.requests);
  // All clients completed; all services were cleanly stopped.
  EXPECT_EQ(out.tasks_done, p.clients);
  EXPECT_EQ(out.services_stopped, p.services);
  // RT decomposition is exact: total == comm + service + inference.
  EXPECT_TRUE(out.component_sum_holds);
  // Components are non-negative and total positive.
  EXPECT_GT(out.total_mean, 0.0);
  EXPECT_GE(out.comm_mean, 0.0);
  EXPECT_GE(out.service_mean, 0.0);
  EXPECT_GE(out.inference_mean, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RequestGrid,
    ::testing::Values(
        GridPoint{1, 1, 32, 1, false, "noop"},
        GridPoint{4, 2, 16, 1, false, "noop"},
        GridPoint{8, 4, 16, 2, false, "noop"},
        GridPoint{16, 16, 8, 1, false, "noop"},
        GridPoint{16, 1, 8, 4, false, "noop"},
        GridPoint{2, 2, 16, 1, true, "noop"},
        GridPoint{8, 4, 8, 2, true, "noop"},
        GridPoint{4, 4, 4, 1, false, "llama-8b"},
        GridPoint{4, 2, 4, 2, true, "llama-8b"}),
    grid_name);

TEST(Determinism, SameSeedSameTrace) {
  const GridPoint p{8, 4, 16, 2, false, "noop"};
  const RunOutcome a = run_grid_point(p, 99);
  const RunOutcome b = run_grid_point(p, 99);
  EXPECT_EQ(a.events, b.events);
  EXPECT_DOUBLE_EQ(a.total_mean, b.total_mean);
  EXPECT_DOUBLE_EQ(a.comm_mean, b.comm_mean);
  EXPECT_DOUBLE_EQ(a.inference_mean, b.inference_mean);
}

TEST(Determinism, DifferentSeedDifferentSamples) {
  const GridPoint p{4, 2, 16, 1, false, "noop"};
  const RunOutcome a = run_grid_point(p, 1);
  const RunOutcome b = run_grid_point(p, 2);
  EXPECT_EQ(a.requests_recorded, b.requests_recorded);  // same structure
  EXPECT_NE(a.total_mean, b.total_mean);  // different stochastic draws
}

TEST(ScalingShape, WeakScalingIsFlatForNoop) {
  // Weak scaling (paired clients/services, noop): mean RT must not grow
  // meaningfully with scale — the paper's Fig. 4 bottom.
  std::vector<double> totals;
  for (const std::size_t n : {std::size_t{1}, std::size_t{4},
                              std::size_t{16}}) {
    const RunOutcome out = run_grid_point(
        GridPoint{n, n, 64, 1, false, "noop"}, 7);
    totals.push_back(out.total_mean);
  }
  EXPECT_LT(totals[2] / totals[0], 1.6);
}

TEST(ScalingShape, QueueingGrowsWhenServicesScarce) {
  // Strong scaling with a slow model: the service component shrinks as
  // services are added (Fig. 6 top).
  const RunOutcome scarce = run_grid_point(
      GridPoint{8, 1, 4, 2, false, "llama-8b"}, 7);
  const RunOutcome plentiful = run_grid_point(
      GridPoint{8, 8, 4, 2, false, "llama-8b"}, 7);
  EXPECT_GT(scarce.service_mean, plentiful.service_mean * 3.0);
}

TEST(ScalingShape, InferenceDominatesForLlama) {
  const RunOutcome out = run_grid_point(
      GridPoint{4, 4, 8, 1, false, "llama-8b"}, 7);
  // Round-robin convoys inflate queueing, so compare against pure
  // communication (1000x) and against everything combined (1.5x).
  EXPECT_GT(out.inference_mean, out.comm_mean * 1000.0);
  EXPECT_GT(out.inference_mean,
            (out.comm_mean + out.service_mean) * 1.5);
}

TEST(ScalingShape, RemoteCommunicationExceedsLocal) {
  const RunOutcome local = run_grid_point(
      GridPoint{4, 4, 64, 1, false, "noop"}, 7);
  const RunOutcome remote = run_grid_point(
      GridPoint{4, 4, 64, 1, true, "noop"}, 7);
  // Paper: 0.47 ms vs 0.063 ms links -> substantially larger comm.
  EXPECT_GT(remote.comm_mean, local.comm_mean * 4.0);
}

// ---------------------------------------------------------------------------
// Dynamic-endpoint load balancer vs a brute-force reference
// ---------------------------------------------------------------------------

/// Brute-force reference model of a dynamic endpoint pool: a map of
/// endpoint -> in-flight count for active endpoints plus a ledger for
/// removed endpoints that still have requests in flight. The fuzz
/// drives LeastOutstandingBalancer and this model through the same
/// random add/remove/pick/on_complete sequence and checks, at every
/// step, that (a) the pick is least-outstanding per the reference
/// counts, (b) per-endpoint counts agree and (c) no in-flight request
/// is ever lost across removals and re-adds.
struct ReferencePool {
  std::map<std::string, std::size_t> active;
  std::map<std::string, std::size_t> draining;  // removed, still in flight

  void add(const std::string& endpoint) {
    if (active.count(endpoint)) return;
    std::size_t carried = 0;
    const auto it = draining.find(endpoint);
    if (it != draining.end()) {
      carried = it->second;
      draining.erase(it);
    }
    active[endpoint] = carried;
  }

  void remove(const std::string& endpoint) {
    const auto it = active.find(endpoint);
    if (it == active.end()) return;
    if (it->second > 0) draining[endpoint] += it->second;
    active.erase(it);
  }

  void complete(const std::string& endpoint) {
    if (const auto it = active.find(endpoint); it != active.end()) {
      if (it->second > 0) --it->second;
      return;
    }
    if (const auto it = draining.find(endpoint); it != draining.end()) {
      if (--it->second == 0) draining.erase(it);
    }
  }

  [[nodiscard]] std::size_t min_load() const {
    std::size_t lowest = std::numeric_limits<std::size_t>::max();
    for (const auto& [endpoint, load] : active) {
      lowest = std::min(lowest, load);
    }
    return lowest;
  }

  [[nodiscard]] std::size_t total_in_flight() const {
    std::size_t total = 0;
    for (const auto& [endpoint, load] : active) total += load;
    for (const auto& [endpoint, load] : draining) total += load;
    return total;
  }
};

TEST(BalancerProperty, LeastOutstandingInvariantHoldsUnderChurn) {
  for (const std::uint64_t seed : {1ull, 7ull, 1234ull}) {
    common::Rng rng(seed);
    ml::LeastOutstandingBalancer balancer({"ep0"});
    ReferencePool reference;
    reference.add("ep0");
    std::size_t next_endpoint = 1;
    std::vector<std::string> in_flight;  // one entry per open request

    for (int op = 0; op < 4000; ++op) {
      const std::size_t action =
          static_cast<std::size_t>(rng.uniform_int(0, 9));
      if (action == 0) {
        // Add: a fresh endpoint, or (1 in 4) re-add a draining one.
        std::string endpoint;
        if (!reference.draining.empty() && rng.chance(0.25)) {
          endpoint = reference.draining.begin()->first;
        } else {
          endpoint = "ep" + std::to_string(next_endpoint++);
        }
        balancer.add_endpoint(endpoint);
        reference.add(endpoint);
      } else if (action == 1 && reference.active.size() > 1) {
        // Remove a uniformly random active endpoint (never the last).
        const std::size_t index = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(reference.active.size()) - 1));
        auto it = reference.active.begin();
        std::advance(it, static_cast<std::ptrdiff_t>(index));
        const std::string endpoint = it->first;
        EXPECT_TRUE(balancer.remove_endpoint(endpoint));
        reference.remove(endpoint);
      } else if (action <= 6) {
        // Pick: must hit a least-loaded active endpoint.
        const std::string& chosen = balancer.pick();
        ASSERT_TRUE(reference.active.count(chosen))
            << "picked removed endpoint " << chosen;
        EXPECT_EQ(reference.active[chosen], reference.min_load())
            << "seed " << seed << " op " << op;
        ++reference.active[chosen];
        in_flight.push_back(chosen);
      } else if (!in_flight.empty()) {
        // Complete a uniformly random open request.
        const std::size_t index = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(in_flight.size()) - 1));
        const std::string endpoint = in_flight[index];
        in_flight.erase(in_flight.begin() +
                        static_cast<std::ptrdiff_t>(index));
        balancer.on_complete(endpoint);
        reference.complete(endpoint);
      }

      // Bookkeeping must agree exactly after every operation.
      ASSERT_EQ(balancer.endpoints().size(), reference.active.size());
      for (const auto& [endpoint, load] : reference.active) {
        ASSERT_TRUE(balancer.has_endpoint(endpoint));
        ASSERT_EQ(balancer.outstanding(endpoint), load)
            << "seed " << seed << " op " << op << " ep " << endpoint;
      }
      for (const auto& [endpoint, load] : reference.draining) {
        ASSERT_EQ(balancer.outstanding(endpoint), load);
      }
      ASSERT_EQ(reference.total_in_flight(), in_flight.size());
      ASSERT_EQ(balancer.draining_total(),
                [&] {
                  std::size_t total = 0;
                  for (const auto& [endpoint, load] : reference.draining) {
                    total += load;
                  }
                  return total;
                }());
    }
  }
}

TEST(BalancerProperty, RoundRobinCoversAllEndpointsAfterChurn) {
  // After any add/remove churn, size() consecutive picks with no
  // mutations must hit every endpoint exactly once.
  common::Rng rng(5);
  ml::RoundRobinBalancer balancer({"a", "b", "c"});
  std::size_t next_endpoint = 0;
  for (int round = 0; round < 200; ++round) {
    const std::size_t action =
        static_cast<std::size_t>(rng.uniform_int(0, 2));
    if (action == 0) {
      balancer.add_endpoint("rr" + std::to_string(next_endpoint++));
    } else if (action == 1 && balancer.endpoints().size() > 1) {
      const auto& endpoints = balancer.endpoints();
      const std::size_t index = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(endpoints.size()) - 1));
      balancer.remove_endpoint(endpoints[index]);
    }
    std::map<std::string, int> seen;
    const std::size_t n = balancer.endpoints().size();
    for (std::size_t i = 0; i < n; ++i) ++seen[balancer.pick()];
    ASSERT_EQ(seen.size(), n) << "round " << round;
    for (const auto& [endpoint, count] : seen) ASSERT_EQ(count, 1);
  }
}

// ---------------------------------------------------------------------------
// Continuous batching: invariants under random arrival/length traces
// ---------------------------------------------------------------------------

/// One fuzz run of the continuous-batching engine: a server with a
/// randomly drawn batch cap, driven by requests at random arrival times
/// whose sequence lengths come from a heavy-ish lognormal. The trace
/// captures everything order-sensitive.
struct ContinuousTrace {
  std::vector<std::uint32_t> batch_trace;       // size after each admission
  std::vector<std::uint64_t> completion_order;  // sequence ids
  std::uint64_t batch_hash = 0;
  std::uint64_t completion_hash = 0;
  std::uint64_t served = 0;
  std::size_t max_batch = 0;
  double finished_at = 0.0;
  std::size_t replies = 0;
};

ContinuousTrace run_continuous_fuzz(std::uint64_t seed) {
  sim::EventLoop loop;
  common::Rng rng(seed);
  sim::Network net(loop, rng.fork("net"));
  msg::Router router(loop, net);
  net.register_host("s", "z");
  net.register_host("c", "z");
  net.set_link("z", "z",
               sim::LinkModel{common::Distribution::constant(1e-4), 0});
  msg::RpcServer rpc_server(router, "svc", "s");
  msg::RpcClient rpc_client(router, "cli", "c");

  common::Rng driver = rng.fork("driver");
  ml::ModelSpec model = ml::noop_model();
  model.parse = common::Distribution::constant(2e-5);
  model.serialize = common::Distribution::constant(1e-5);
  model.tokens_out = common::Distribution::lognormal(80.0, 0.6, 1.0);
  model.per_token_s = 0.01;
  model.inference_floor_s = 0.05;
  model.batch_cost_slope = 0.12;

  ContinuousTrace trace;
  trace.max_batch =
      static_cast<std::size_t>(driver.uniform_int(2, 8));
  ml::ServerConfig config;
  config.max_batch = trace.max_batch;
  config.continuous = true;
  ml::InferenceServer server(loop, rng.fork("server"), model, config);
  rpc_server.bind_method("infer",
                         [&](std::shared_ptr<msg::Responder> r) {
                           server.handle(std::move(r));
                         });

  constexpr int kRequests = 120;
  for (int i = 0; i < kRequests; ++i) {
    // Clustered arrivals: bursts hammer admission at full batches,
    // gaps let the batch drain to empty and restart.
    const double at = driver.chance(0.3)
                          ? driver.uniform(0.0, 2.0)
                          : driver.uniform(0.0, 40.0);
    loop.call_at(at, [&] {
      rpc_client.call("svc", "infer", json::Value::object(),
                      [&](msg::CallResult r) {
                        ASSERT_TRUE(r.ok);
                        ++trace.replies;
                      });
    });
  }
  loop.run();

  trace.batch_trace = server.batch_trace();
  trace.completion_order = server.completion_order();
  trace.batch_hash = server.batch_trace_hash();
  trace.completion_hash = server.completion_hash();
  trace.served = server.served();
  trace.finished_at = loop.now();
  return trace;
}

TEST(ContinuousBatchingProperty, InvariantsHoldAcrossSeeds) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1234ull, 9001ull}) {
    const ContinuousTrace trace = run_continuous_fuzz(seed);
    // The running batch never exceeds max_batch at any admission point.
    for (const std::uint32_t size : trace.batch_trace) {
      ASSERT_LE(size, trace.max_batch) << "seed " << seed;
    }
    // No admitted sequence starves: every request was admitted (120
    // admissions), every sequence finished decoding exactly once, and
    // every reply landed.
    ASSERT_EQ(trace.batch_trace.size(), 120u) << "seed " << seed;
    ASSERT_EQ(trace.served, 120u) << "seed " << seed;
    ASSERT_EQ(trace.replies, 120u) << "seed " << seed;
    ASSERT_EQ(trace.completion_order.size(), 120u) << "seed " << seed;
    std::vector<std::uint64_t> sorted = trace.completion_order;
    std::sort(sorted.begin(), sorted.end());
    for (std::uint64_t i = 0; i < 120; ++i) {
      ASSERT_EQ(sorted[i], i) << "seed " << seed;
    }
  }
}

TEST(ContinuousBatchingProperty, SameSeedBitIdenticalCompletion) {
  const ContinuousTrace a = run_continuous_fuzz(4242);
  const ContinuousTrace b = run_continuous_fuzz(4242);
  EXPECT_EQ(a.batch_trace, b.batch_trace);
  EXPECT_EQ(a.completion_order, b.completion_order);
  EXPECT_EQ(a.batch_hash, b.batch_hash);
  EXPECT_EQ(a.completion_hash, b.completion_hash);
  EXPECT_DOUBLE_EQ(a.finished_at, b.finished_at);
  // The run exercised real interleaving: sequences completed out of
  // admission order (short ones overtook long ones) and the batch
  // filled to its cap at least once.
  std::vector<std::uint64_t> in_order(120);
  for (std::uint64_t i = 0; i < 120; ++i) in_order[i] = i;
  EXPECT_NE(a.completion_order, in_order);
  EXPECT_EQ(*std::max_element(a.batch_trace.begin(), a.batch_trace.end()),
            a.max_batch);
}

TEST(ContinuousBatchingProperty, DifferentSeedsDiverge) {
  const ContinuousTrace a = run_continuous_fuzz(4242);
  const ContinuousTrace c = run_continuous_fuzz(4243);
  // Different draws, same invariants (checked above); traces diverge.
  EXPECT_TRUE(a.batch_hash != c.batch_hash ||
              a.completion_hash != c.completion_hash);
}

// ---------------------------------------------------------------------------
// Data-plane determinism: fair-share transfers + catalog eviction
// ---------------------------------------------------------------------------

/// One fuzz run of the data plane under concurrent multi-link load:
/// random datasets across four finite stores, random transfer requests
/// at random times (reserve -> transfer -> commit/release, the
/// DataManager flow), capped links and a failure model. The trace
/// captures everything order-sensitive.
struct DataPlaneTrace {
  std::vector<std::string> completions;
  std::vector<std::string> evictions;
  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;
  std::uint64_t stripes = 0;
  double bytes_moved = 0.0;
  double finished_at = 0.0;
  bool stores_within_capacity = true;
  bool pinned_survived = true;
};

DataPlaneTrace run_dataplane_fuzz(std::uint64_t seed) {
  sim::EventLoop loop;
  common::Rng rng(seed);
  data::ReplicaCatalog catalog;
  data::TransferEngine engine(loop, rng.fork("engine"));
  engine.set_default_bandwidth(2e9);
  engine.set_setup_latency(common::Distribution::lognormal(0.3, 0.4, 0.01));
  engine.set_failure(0.15, 2);

  const std::vector<std::string> zones = {"a", "b", "c", "d"};
  for (const auto& zone : zones) catalog.add_store(zone, 60e9);
  engine.set_link_concurrency("a", "b", 2);
  engine.set_link_concurrency("b", "c", 3);
  engine.set_default_concurrency(4);

  common::Rng driver = rng.fork("driver");
  std::vector<std::string> names;
  for (int i = 0; i < 40; ++i) {
    const std::string name = "ds" + std::to_string(i);
    const auto zone =
        zones[static_cast<std::size_t>(driver.uniform_int(0, 3))];
    catalog.register_dataset(name, driver.uniform(1e9, 8e9), zone);
    names.push_back(name);
  }
  // Pin a few replicas in their home zones; they must never be evicted.
  std::vector<std::pair<std::string, std::string>> pinned;
  for (int i = 0; i < 4; ++i) {
    const auto& name = names[static_cast<std::size_t>(i) * 7];
    const std::string zone = *catalog.dataset(name).zones.begin();
    catalog.pin(name, zone);
    pinned.emplace_back(zone, name);
  }

  for (int i = 0; i < 120; ++i) {
    const double at = driver.uniform(0.0, 30.0);
    const auto& name =
        names[static_cast<std::size_t>(driver.uniform_int(0, 39))];
    const auto dst =
        zones[static_cast<std::size_t>(driver.uniform_int(0, 3))];
    // Drawn now (not at event time) so the schedule stays a pure
    // function of the seed.
    const bool stripe = driver.chance(0.5);
    loop.call_at(at, [&catalog, &engine, name, dst, stripe] {
      if (catalog.available_in(name, dst)) return;
      const double bytes = catalog.dataset(name).bytes;
      if (!catalog.reserve(dst, bytes)) return;
      const auto& sources = catalog.dataset(name).zones;
      // Eviction may have reclaimed the last replica (the fuzz drives
      // the raw engine, which does not pin sources like DataManager).
      std::vector<std::string> usable;
      for (const auto& zone : sources) {
        if (zone != dst) usable.push_back(zone);
      }
      if (usable.empty()) {
        catalog.release_reservation(dst, bytes);
        return;
      }
      const auto on_done = [&catalog, name, dst, bytes](bool ok,
                                                        sim::Duration) {
        if (ok) {
          catalog.commit_replica(name, dst);
        } else {
          catalog.release_reservation(dst, bytes);
        }
      };
      if (stripe) {
        engine.transfer_striped(name, usable, dst, bytes, on_done);
      } else {
        engine.transfer(name, usable.front(), dst, bytes, on_done);
      }
    });
  }
  loop.run();

  DataPlaneTrace trace;
  trace.completions = engine.completion_log();
  trace.evictions = catalog.eviction_log();
  trace.started = engine.transfers_started();
  trace.completed = engine.transfers_completed();
  trace.failed = engine.transfers_failed();
  trace.retries = engine.retries();
  trace.stripes = engine.stripes_started();
  trace.bytes_moved = engine.bytes_moved();
  trace.finished_at = loop.now();
  for (const auto& zone : zones) {
    const data::StoreInfo store = catalog.store(zone);
    if (store.used + store.reserved > store.capacity + 1e-6) {
      trace.stores_within_capacity = false;
    }
  }
  for (const auto& [zone, name] : pinned) {
    if (!catalog.available_in(name, zone)) trace.pinned_survived = false;
  }
  return trace;
}

TEST(DataPlaneDeterminism, SameSeedSameCompletionAndEvictionOrder) {
  const DataPlaneTrace a = run_dataplane_fuzz(4242);
  const DataPlaneTrace b = run_dataplane_fuzz(4242);
  // Bit-identical traces: completion order, eviction order, timing.
  EXPECT_EQ(a.completions, b.completions);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.started, b.started);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.stripes, b.stripes);
  EXPECT_DOUBLE_EQ(a.bytes_moved, b.bytes_moved);
  EXPECT_DOUBLE_EQ(a.finished_at, b.finished_at);
  // The run exercised the interesting paths — including multi-source
  // striping (datasets accrete replicas as transfers land, and half
  // the requests stripe across them).
  EXPECT_GT(a.completed, 20u);
  EXPECT_GT(a.retries, 0u);
  EXPECT_GT(a.stripes, 0u);
  EXPECT_FALSE(a.evictions.empty());
  EXPECT_EQ(a.started, a.completed + a.failed);
}

TEST(DataPlaneDeterminism, InvariantsHoldAcrossSeeds) {
  for (const std::uint64_t seed : {1ull, 7ull, 999ull}) {
    const DataPlaneTrace trace = run_dataplane_fuzz(seed);
    EXPECT_TRUE(trace.stores_within_capacity) << "seed " << seed;
    EXPECT_TRUE(trace.pinned_survived) << "seed " << seed;
    EXPECT_EQ(trace.started, trace.completed + trace.failed)
        << "seed " << seed;
    EXPECT_EQ(trace.completions.size(), trace.completed) << "seed " << seed;
  }
}

TEST(DataPlaneDeterminism, DifferentSeedsDivergeButStayConsistent) {
  const DataPlaneTrace a = run_dataplane_fuzz(4242);
  const DataPlaneTrace c = run_dataplane_fuzz(4243);
  EXPECT_NE(a.completions, c.completions);
  EXPECT_EQ(c.started, c.completed + c.failed);
}

/// One multi-stage pipeline whose later stages' inputs are prefetched
/// during earlier stages' compute (replication-ahead) into a finite
/// store under eviction pressure. Everything order-sensitive lands in
/// the trace.
struct PrefetchTrace {
  std::vector<std::string> completions;
  std::vector<std::string> evictions;
  std::uint64_t prefetches_started = 0;
  std::uint64_t prefetches_completed = 0;
  std::uint64_t events = 0;
  double makespan = 0.0;
  bool ok = false;
};

PrefetchTrace run_prefetch_pipeline(std::uint64_t seed) {
  Session session({.seed = seed});
  session.add_platform(platform::delta_profile(2));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 2});
  session.runtime().network().register_host("lab:x", "lab");
  session.data().add_store("delta", 40e9);
  session.data().set_bandwidth("lab", "delta", 2e9);
  for (int i = 0; i < 4; ++i) {
    session.data().register_dataset("stage-in-" + std::to_string(i),
                                    6e9 + 1e9 * i, "lab");
  }
  wf::WorkflowManager workflows(session);

  wf::Pipeline pipeline;
  pipeline.name = "prefetched";
  for (int i = 0; i < 4; ++i) {
    wf::Stage stage;
    stage.name = "s" + std::to_string(i);
    stage.consumes = {"stage-in-" + std::to_string(i)};
    core::TaskDescription work;
    work.duration = common::Distribution::lognormal(6.0, 0.3, 1.0);
    stage.tasks = {work, work};
    pipeline.stages.push_back(stage);
  }
  PrefetchTrace trace;
  workflows.run_pipeline(pipeline, pilot, [&](const wf::PipelineResult& r) {
    trace.ok = r.ok;
    trace.makespan = r.makespan;
  });
  session.run();
  trace.completions = session.data().engine().completion_log();
  trace.evictions = session.data().catalog().eviction_log();
  trace.prefetches_started = session.data().prefetches_started();
  trace.prefetches_completed = session.data().prefetches_completed();
  trace.events = session.loop().events_processed();
  return trace;
}

TEST(DataPlaneDeterminism, PrefetchPipelineIsBitReproducible) {
  const PrefetchTrace a = run_prefetch_pipeline(606);
  const PrefetchTrace b = run_prefetch_pipeline(606);
  EXPECT_EQ(a.completions, b.completions);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.prefetches_started, b.prefetches_started);
  EXPECT_EQ(a.prefetches_completed, b.prefetches_completed);
  EXPECT_EQ(a.events, b.events);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  // The run exercised replication-ahead for real.
  EXPECT_TRUE(a.ok);
  EXPECT_GT(a.prefetches_started, 0u);
  EXPECT_GT(a.prefetches_completed, 0u);
}

TEST(BootstrapShape, LaunchContentionAppearsAtScale) {
  // Mini version of Fig. 3's elbow: mean launch at 320 instances
  // exceeds mean launch at 8 instances on Frontier.
  auto run_wave = [](std::size_t n) {
    Session session({.seed = 5});
    ml::install(session);
    session.add_platform(platform::frontier_profile(40));
    auto& pilot =
        session.submit_pilot({.platform = "frontier", .nodes = 40});
    std::vector<std::string> uids;
    for (std::size_t i = 0; i < n; ++i) {
      ServiceDescription desc;
      desc.program = "inference";
      desc.config = json::Value::object({{"model", "noop"}});
      desc.gpus = 1;
      uids.push_back(session.services().submit(pilot, desc));
    }
    session.services().when_ready(
        uids, [&](bool) { session.services().stop_all(); });
    session.run();
    return session.metrics().bootstrap_component("launch").mean();
  };
  const double launch_small = run_wave(8);
  const double launch_large = run_wave(320);
  EXPECT_GT(launch_large, launch_small * 1.5);
}

// ---------------------------------------------------------------------------
// Transfer-engine counter consistency under cancels and link failures
// ---------------------------------------------------------------------------

// Every admitted transfer must settle into exactly one of
// completed/failed/cancelled (or still be live), under arbitrary
// interleavings of stochastic attempt failures, striped failover,
// caller cancels (including orphaned stripes of cancelled parents),
// and link-down terminal deaths. Guards the idempotent terminal-state
// transitions: double-finishing a stripe or double-counting an
// orphan-stripe cancel breaks the equation.
TEST(TransferEngineCounters, ConsistentUnderCancelAndLinkFailureFuzz) {
  for (const std::uint64_t seed : {3ull, 17ull, 4242ull}) {
    sim::EventLoop loop;
    common::Rng rng(seed);
    data::TransferEngine engine(loop, rng.fork("engine"));
    engine.set_default_bandwidth(1e9);
    engine.set_setup_latency(common::Distribution::constant(0.02));
    engine.set_failure(0.2, 1);
    engine.set_default_concurrency(3);

    const std::vector<std::string> zones = {"a", "b", "c", "d"};
    common::Rng driver = rng.fork("driver");
    std::uint64_t callbacks = 0;
    std::vector<data::TransferEngine::TransferId> ids;
    int name = 0;
    const auto check = [&engine, seed] {
      EXPECT_EQ(engine.transfers_started(),
                engine.transfers_completed() + engine.transfers_failed() +
                    engine.transfers_cancelled() + engine.live())
          << "seed " << seed;
    };

    for (int wave = 0; wave < 6; ++wave) {
      for (int i = 0; i < 12; ++i) {
        const auto& dst =
            zones[static_cast<std::size_t>(driver.uniform_int(0, 3))];
        const double bytes = driver.uniform(2e8, 4e9);
        const auto cb = [&callbacks](bool, sim::Duration) { ++callbacks; };
        if (driver.chance(0.4)) {
          // Striped across every other zone (sources == dst collapse).
          ids.push_back(engine.transfer_striped(
              "s" + std::to_string(name++), zones, dst, bytes, cb));
        } else {
          const auto& src =
              zones[static_cast<std::size_t>(driver.uniform_int(0, 3))];
          if (src == dst) continue;
          ids.push_back(engine.transfer("p" + std::to_string(name++), src,
                                        dst, bytes, cb));
        }
      }
      // A link flaps: in-flight attempts on it die terminally, queued
      // ones fail on admission until the restore drains the queue.
      const auto& za =
          zones[static_cast<std::size_t>(driver.uniform_int(0, 3))];
      const auto& zb =
          zones[static_cast<std::size_t>(driver.uniform_int(0, 3))];
      if (za != zb) {
        if (driver.chance(0.6)) {
          engine.fail_link(za, zb);
        } else {
          engine.restore_link(za, zb);
        }
      }
      for (const auto id : ids) {
        if (driver.chance(0.15)) (void)engine.cancel(id);
      }
      check();
      loop.run_until(loop.now() + driver.uniform(0.5, 3.0));
      check();
    }
    // Heal every link and drain: nothing may stay live.
    for (std::size_t i = 0; i < zones.size(); ++i) {
      for (std::size_t j = i + 1; j < zones.size(); ++j) {
        engine.restore_link(zones[i], zones[j]);
      }
    }
    loop.run();
    check();
    EXPECT_EQ(engine.live(), 0u) << "seed " << seed;
    // Exactly one callback per settled transfer; cancels never fire.
    EXPECT_EQ(callbacks,
              engine.transfers_completed() + engine.transfers_failed())
        << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Multi-tenant determinism: three tenants with distinct weights and
// quotas interleave randomly-timed graph submissions over a shared
// content-addressed corpus while a cramped store forces evictions.
// The full observable trace — grant order, transfer completions,
// eviction order, per-graph event streams — must be bit-identical
// across reruns and across scheduler shard counts {1, 4}.
// ---------------------------------------------------------------------------

struct TenantFuzzTrace {
  std::uint64_t grant_hash = 0;
  std::uint64_t completion_hash = 0;
  std::uint64_t eviction_hash = 0;
  std::uint64_t graph_hash = 0;
  std::uint64_t events = 0;
  std::size_t graphs_done = 0;
  std::size_t transfers = 0;
  std::size_t evictions = 0;

  bool operator==(const TenantFuzzTrace&) const = default;
};

TenantFuzzTrace run_tenant_fuzz(std::uint64_t seed, std::size_t shards) {
  common::ShardExecutor exec(shards);
  Session session{SessionConfig{.seed = seed}};
  session.add_platform(platform::delta_profile(4));
  Pilot& pilot = session.submit_pilot({.platform = "delta", .nodes = 4});
  if (shards > 1) session.scheduler().set_shard_executor(&exec);

  const std::vector<std::string> tenants = {"alpha", "beta", "gamma"};
  session.set_tenant_weight("alpha", 1.0);
  session.set_tenant_weight("beta", 2.0);
  session.set_tenant_weight("gamma", 4.0);
  // One tenant squeezed on the wire, one on the store: the quota
  // rejection/serialization paths are part of the fuzzed trace.
  session.set_tenant_link_quota("gamma", 5e9);
  session.set_tenant_store_quota("delta", "alpha", 12e9);

  // Four distinct 6 GB parts through a 20 GB store: staging the whole
  // corpus cannot fit, so evictions are guaranteed, not incidental.
  session.data().add_store("delta", 20e9);
  session.data().set_bandwidth("archive", "delta", 10e9);
  constexpr int kParts = 4;
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    for (int p = 0; p < kParts; ++p) {
      session.data().register_dataset(
          "t" + std::to_string(t) + "/part" + std::to_string(p), 6e9,
          "archive", "cid:part" + std::to_string(p));
    }
  }

  wf::WorkflowManager workflows(session);
  common::Rng rng(seed);
  common::Rng driver = rng.fork("tenant-driver");

  std::map<std::string, wf::GraphResult> results;  // name-sorted
  for (int g = 0; g < 3; ++g) {
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      const std::string name =
          "g" + std::to_string(g) + "-" + tenants[t];
      // First consume sweeps the corpus deterministically (all four
      // parts are touched across the grid); the second is fuzzed.
      const int part = (g + static_cast<int>(t)) % kParts;
      const int extra =
          static_cast<int>(driver.uniform_int(0, kParts - 1));
      // Spread across the run so lineage from earlier waves drains
      // and cold replicas become evictable under later pressure.
      const double at = driver.uniform(0.0, 30.0) + 15.0 * g;
      session.loop().call_after(at, [&workflows, &results, &pilot,
                                     &tenants, name, t, part, extra] {
        TaskDescription task;
        task.kind = "modeled";
        task.cores = 8;
        task.duration = common::Distribution::constant(1.0 + part);
        wf::Stage stage;
        stage.name = "consume";
        stage.consumes = {"t" + std::to_string(t) + "/part" +
                          std::to_string(part)};
        if (extra != part) {
          stage.consumes.push_back("t" + std::to_string(t) + "/part" +
                                   std::to_string(extra));
        }
        stage.tasks = {task};
        wf::Graph graph(name);
        graph.tenant = tenants[t];
        graph.add(stage);
        workflows.run_graph(
            graph, pilot,
            [&results, name](const wf::GraphResult& r) {
              results[name] = r;
            });
      });
    }
  }
  session.run();

  TenantFuzzTrace trace;
  trace.grant_hash = session.scheduler().grant_log_hash();
  trace.completion_hash = common::kFnvOffsetBasis;
  for (const auto& line : session.data().engine().completion_log()) {
    trace.completion_hash = common::fnv1a(trace.completion_hash, line);
  }
  trace.eviction_hash = common::kFnvOffsetBasis;
  for (const auto& line : session.data().catalog().eviction_log()) {
    trace.eviction_hash = common::fnv1a(trace.eviction_hash, line);
  }
  trace.graph_hash = common::kFnvOffsetBasis;
  for (const auto& [name, result] : results) {
    trace.graph_hash = common::fnv1a(trace.graph_hash, name);
    trace.graph_hash = common::fnv1a(trace.graph_hash, result.event_hash);
  }
  trace.events = session.loop().events_processed();
  trace.graphs_done = results.size();
  trace.transfers = session.data().engine().transfers_completed();
  trace.evictions = session.data().catalog().eviction_log().size();
  return trace;
}

TEST(TenantDeterminism, InterleavedTenantsBitIdenticalAcrossShards) {
  for (const std::uint64_t seed : {11ull, 23ull, 67ull}) {
    const TenantFuzzTrace serial = run_tenant_fuzz(seed, 1);
    // The workload actually exercised the contended paths: every graph
    // settled, data moved, and the cramped store had to evict.
    EXPECT_EQ(serial.graphs_done, 9u) << "seed " << seed;
    EXPECT_GT(serial.transfers, 0u) << "seed " << seed;
    EXPECT_GE(serial.evictions, 1u) << "seed " << seed;

    // Same seed, same trace: across a rerun and across shard counts.
    EXPECT_EQ(run_tenant_fuzz(seed, 1), serial) << "rerun, seed " << seed;
    EXPECT_EQ(run_tenant_fuzz(seed, 4), serial)
        << "shards=4, seed " << seed;
  }
}

}  // namespace
