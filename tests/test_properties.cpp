// Property-based suites: invariants that must hold across parameter
// sweeps of the whole runtime (the paper's experiment grid, shrunk).

#include <gtest/gtest.h>

#include <algorithm>

#include "ripple/core/session.hpp"
#include "ripple/ml/install.hpp"
#include "ripple/platform/profiles.hpp"

namespace {

using namespace ripple;
using namespace ripple::core;

struct GridPoint {
  std::size_t clients;
  std::size_t services;
  std::size_t requests;
  std::size_t concurrency;
  bool remote;
  const char* model;
};

std::string grid_name(const ::testing::TestParamInfo<GridPoint>& info) {
  const auto& p = info.param;
  std::string model = p.model;
  model.erase(std::remove(model.begin(), model.end(), '-'), model.end());
  return std::string(p.remote ? "remote" : "local") + "_" + model + "_c" +
         std::to_string(p.clients) + "_s" + std::to_string(p.services) +
         "_r" + std::to_string(p.requests) + "_f" +
         std::to_string(p.concurrency);
}

/// Runs one configuration and returns the session for inspection.
struct RunOutcome {
  std::size_t requests_recorded = 0;
  double comm_mean = 0;
  double service_mean = 0;
  double inference_mean = 0;
  double total_mean = 0;
  bool component_sum_holds = true;
  std::size_t tasks_done = 0;
  std::size_t services_stopped = 0;
  std::uint64_t events = 0;
};

RunOutcome run_grid_point(const GridPoint& p, std::uint64_t seed) {
  Session session({.seed = seed});
  ml::install(session);
  session.add_platform(platform::delta_profile(4));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 4});

  std::vector<std::string> svc_uids;
  if (p.remote) {
    auto& r3 = session.add_platform(platform::r3_profile(2));
    for (std::size_t i = 0; i < p.services; ++i) {
      ServiceDescription desc;
      desc.program = "inference";
      desc.config = json::Value::object(
          {{"model", p.model}, {"preloaded", true}});
      svc_uids.push_back(
          session.services().register_remote(r3, desc, i % 2));
    }
  } else {
    for (std::size_t i = 0; i < p.services; ++i) {
      ServiceDescription desc;
      desc.program = "inference";
      desc.config = json::Value::object({{"model", p.model}});
      desc.gpus = 1;
      svc_uids.push_back(session.services().submit(pilot, desc));
    }
  }

  session.services().when_ready(svc_uids, [&](bool ok) {
    ASSERT_TRUE(ok);
    json::Value endpoints = json::Value::array();
    for (const auto& uid : svc_uids) {
      endpoints.push_back(session.services().get(uid).endpoint());
    }
    std::vector<std::string> task_uids;
    for (std::size_t c = 0; c < p.clients; ++c) {
      TaskDescription task;
      task.kind = "inference_client";
      task.payload = json::Value::object({{"endpoints", endpoints},
                                          {"requests", p.requests},
                                          {"concurrency", p.concurrency},
                                          {"series", "grid"}});
      task_uids.push_back(session.tasks().submit(pilot, task));
    }
    session.tasks().when_done(
        task_uids, [&](bool) { session.services().stop_all(); });
  });
  session.run();

  RunOutcome out;
  out.tasks_done = session.tasks().count_in_state(TaskState::done);
  out.services_stopped =
      session.services().count_in_state(ServiceState::stopped);
  out.events = session.loop().events_processed();
  if (session.metrics().has_series("grid")) {
    const auto& series = session.metrics().series("grid");
    out.requests_recorded = series.count();
    out.comm_mean = series.communication.mean();
    out.service_mean = series.service.mean();
    out.inference_mean = series.inference.mean();
    out.total_mean = series.total.mean();
    for (std::size_t i = 0; i < series.total.samples().size(); ++i) {
      const double sum = series.communication.samples()[i] +
                         series.service.samples()[i] +
                         series.inference.samples()[i];
      if (std::abs(series.total.samples()[i] - sum) > 1e-9) {
        out.component_sum_holds = false;
      }
    }
  }
  return out;
}

class RequestGrid : public ::testing::TestWithParam<GridPoint> {};

TEST_P(RequestGrid, InvariantsHold) {
  const GridPoint& p = GetParam();
  const RunOutcome out = run_grid_point(p, 1234);

  // Every request is recorded, none lost or duplicated.
  EXPECT_EQ(out.requests_recorded, p.clients * p.requests);
  // All clients completed; all services were cleanly stopped.
  EXPECT_EQ(out.tasks_done, p.clients);
  EXPECT_EQ(out.services_stopped, p.services);
  // RT decomposition is exact: total == comm + service + inference.
  EXPECT_TRUE(out.component_sum_holds);
  // Components are non-negative and total positive.
  EXPECT_GT(out.total_mean, 0.0);
  EXPECT_GE(out.comm_mean, 0.0);
  EXPECT_GE(out.service_mean, 0.0);
  EXPECT_GE(out.inference_mean, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RequestGrid,
    ::testing::Values(
        GridPoint{1, 1, 32, 1, false, "noop"},
        GridPoint{4, 2, 16, 1, false, "noop"},
        GridPoint{8, 4, 16, 2, false, "noop"},
        GridPoint{16, 16, 8, 1, false, "noop"},
        GridPoint{16, 1, 8, 4, false, "noop"},
        GridPoint{2, 2, 16, 1, true, "noop"},
        GridPoint{8, 4, 8, 2, true, "noop"},
        GridPoint{4, 4, 4, 1, false, "llama-8b"},
        GridPoint{4, 2, 4, 2, true, "llama-8b"}),
    grid_name);

TEST(Determinism, SameSeedSameTrace) {
  const GridPoint p{8, 4, 16, 2, false, "noop"};
  const RunOutcome a = run_grid_point(p, 99);
  const RunOutcome b = run_grid_point(p, 99);
  EXPECT_EQ(a.events, b.events);
  EXPECT_DOUBLE_EQ(a.total_mean, b.total_mean);
  EXPECT_DOUBLE_EQ(a.comm_mean, b.comm_mean);
  EXPECT_DOUBLE_EQ(a.inference_mean, b.inference_mean);
}

TEST(Determinism, DifferentSeedDifferentSamples) {
  const GridPoint p{4, 2, 16, 1, false, "noop"};
  const RunOutcome a = run_grid_point(p, 1);
  const RunOutcome b = run_grid_point(p, 2);
  EXPECT_EQ(a.requests_recorded, b.requests_recorded);  // same structure
  EXPECT_NE(a.total_mean, b.total_mean);  // different stochastic draws
}

TEST(ScalingShape, WeakScalingIsFlatForNoop) {
  // Weak scaling (paired clients/services, noop): mean RT must not grow
  // meaningfully with scale — the paper's Fig. 4 bottom.
  std::vector<double> totals;
  for (const std::size_t n : {std::size_t{1}, std::size_t{4},
                              std::size_t{16}}) {
    const RunOutcome out = run_grid_point(
        GridPoint{n, n, 64, 1, false, "noop"}, 7);
    totals.push_back(out.total_mean);
  }
  EXPECT_LT(totals[2] / totals[0], 1.6);
}

TEST(ScalingShape, QueueingGrowsWhenServicesScarce) {
  // Strong scaling with a slow model: the service component shrinks as
  // services are added (Fig. 6 top).
  const RunOutcome scarce = run_grid_point(
      GridPoint{8, 1, 4, 2, false, "llama-8b"}, 7);
  const RunOutcome plentiful = run_grid_point(
      GridPoint{8, 8, 4, 2, false, "llama-8b"}, 7);
  EXPECT_GT(scarce.service_mean, plentiful.service_mean * 3.0);
}

TEST(ScalingShape, InferenceDominatesForLlama) {
  const RunOutcome out = run_grid_point(
      GridPoint{4, 4, 8, 1, false, "llama-8b"}, 7);
  // Round-robin convoys inflate queueing, so compare against pure
  // communication (1000x) and against everything combined (1.5x).
  EXPECT_GT(out.inference_mean, out.comm_mean * 1000.0);
  EXPECT_GT(out.inference_mean,
            (out.comm_mean + out.service_mean) * 1.5);
}

TEST(ScalingShape, RemoteCommunicationExceedsLocal) {
  const RunOutcome local = run_grid_point(
      GridPoint{4, 4, 64, 1, false, "noop"}, 7);
  const RunOutcome remote = run_grid_point(
      GridPoint{4, 4, 64, 1, true, "noop"}, 7);
  // Paper: 0.47 ms vs 0.063 ms links -> substantially larger comm.
  EXPECT_GT(remote.comm_mean, local.comm_mean * 4.0);
}

TEST(BootstrapShape, LaunchContentionAppearsAtScale) {
  // Mini version of Fig. 3's elbow: mean launch at 320 instances
  // exceeds mean launch at 8 instances on Frontier.
  auto run_wave = [](std::size_t n) {
    Session session({.seed = 5});
    ml::install(session);
    session.add_platform(platform::frontier_profile(40));
    auto& pilot =
        session.submit_pilot({.platform = "frontier", .nodes = 40});
    std::vector<std::string> uids;
    for (std::size_t i = 0; i < n; ++i) {
      ServiceDescription desc;
      desc.program = "inference";
      desc.config = json::Value::object({{"model", "noop"}});
      desc.gpus = 1;
      uids.push_back(session.services().submit(pilot, desc));
    }
    session.services().when_ready(
        uids, [&](bool) { session.services().stop_all(); });
    session.run();
    return session.metrics().bootstrap_component("launch").mean();
  };
  const double launch_small = run_wave(8);
  const double launch_large = run_wave(320);
  EXPECT_GT(launch_large, launch_small * 1.5);
}

}  // namespace
