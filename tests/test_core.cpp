// Unit tests for core state machines, descriptions, entities, the
// scheduler and the data manager.

#include <gtest/gtest.h>

#include "ripple/common/error.hpp"
#include "ripple/core/data_manager.hpp"
#include "ripple/core/descriptions.hpp"
#include "ripple/core/entities.hpp"
#include "ripple/core/runtime.hpp"
#include "ripple/core/scheduler.hpp"
#include "ripple/core/session.hpp"
#include "ripple/platform/profiles.hpp"

namespace {

using namespace ripple;
using namespace ripple::core;

// ---------------------------------------------------------------------------
// State machines
// ---------------------------------------------------------------------------

TEST(TaskStates, HappyPathIsLegal) {
  const TaskState path[] = {
      TaskState::created,  TaskState::waiting,   TaskState::staging_input,
      TaskState::scheduling, TaskState::scheduled, TaskState::launching,
      TaskState::running,  TaskState::staging_output, TaskState::done};
  for (std::size_t i = 0; i + 1 < std::size(path); ++i) {
    EXPECT_TRUE(transition_allowed(path[i], path[i + 1]))
        << to_string(path[i]) << " -> " << to_string(path[i + 1]);
  }
}

TEST(TaskStates, ShortcutsAndFailures) {
  EXPECT_TRUE(transition_allowed(TaskState::created, TaskState::scheduling));
  EXPECT_TRUE(transition_allowed(TaskState::running, TaskState::done));
  EXPECT_TRUE(transition_allowed(TaskState::running, TaskState::failed));
  EXPECT_TRUE(transition_allowed(TaskState::created, TaskState::canceled));
  EXPECT_FALSE(transition_allowed(TaskState::done, TaskState::running));
  EXPECT_FALSE(transition_allowed(TaskState::failed, TaskState::done));
  EXPECT_FALSE(
      transition_allowed(TaskState::scheduling, TaskState::running));
  EXPECT_FALSE(transition_allowed(TaskState::done, TaskState::failed));
}

TEST(ServiceStates, BootstrapPipelineIsLegal) {
  const ServiceState path[] = {
      ServiceState::created,      ServiceState::scheduling,
      ServiceState::scheduled,    ServiceState::launching,
      ServiceState::initializing, ServiceState::publishing,
      ServiceState::running,      ServiceState::draining,
      ServiceState::stopped};
  for (std::size_t i = 0; i + 1 < std::size(path); ++i) {
    EXPECT_TRUE(transition_allowed(path[i], path[i + 1]));
  }
}

TEST(ServiceStates, RemoteAndRestartPaths) {
  // Remote persistent services go straight to running.
  EXPECT_TRUE(
      transition_allowed(ServiceState::created, ServiceState::running));
  // Restart: failed services may re-enter scheduling.
  EXPECT_TRUE(
      transition_allowed(ServiceState::failed, ServiceState::scheduling));
  EXPECT_FALSE(
      transition_allowed(ServiceState::stopped, ServiceState::scheduling));
  EXPECT_FALSE(
      transition_allowed(ServiceState::running, ServiceState::launching));
}

TEST(PilotStates, Lifecycle) {
  EXPECT_TRUE(transition_allowed(PilotState::created, PilotState::active));
  EXPECT_TRUE(transition_allowed(PilotState::active, PilotState::done));
  EXPECT_TRUE(transition_allowed(PilotState::created, PilotState::failed));
  EXPECT_FALSE(transition_allowed(PilotState::done, PilotState::active));
  EXPECT_TRUE(is_terminal(PilotState::canceled));
}

// ---------------------------------------------------------------------------
// Descriptions
// ---------------------------------------------------------------------------

TEST(Descriptions, ValidationCatchesNonsense) {
  PilotDescription pilot;
  EXPECT_THROW(pilot.validate(), Error);  // no platform
  pilot.platform = "delta";
  pilot.nodes = 0;
  EXPECT_THROW(pilot.validate(), Error);
  pilot.nodes = 2;
  EXPECT_NO_THROW(pilot.validate());

  TaskDescription task;
  task.cores = 0;
  task.gpus = 0;
  EXPECT_THROW(task.validate(), Error);  // no resources
  task.gpus = 1;
  EXPECT_NO_THROW(task.validate());

  ServiceDescription svc;
  svc.ready_timeout = 0;
  EXPECT_THROW(svc.validate(), Error);
  svc.ready_timeout = 60;
  svc.heartbeat_misses = 0;
  EXPECT_THROW(svc.validate(), Error);
  svc.heartbeat_misses = 3;
  EXPECT_NO_THROW(svc.validate());
}

// ---------------------------------------------------------------------------
// Entities
// ---------------------------------------------------------------------------

TEST(TaskEntity, StateTimestampsAndDurations) {
  Task task("task.x", TaskDescription{});
  task.set_state(TaskState::scheduling, 1.0);
  task.set_state(TaskState::scheduled, 3.0);
  task.set_state(TaskState::launching, 3.0);
  task.set_state(TaskState::running, 5.5);
  EXPECT_DOUBLE_EQ(task.state_time(TaskState::scheduling), 1.0);
  EXPECT_DOUBLE_EQ(task.duration(TaskState::scheduling, TaskState::running),
                   4.5);
  EXPECT_DOUBLE_EQ(task.state_time(TaskState::done), -1.0);
  EXPECT_THROW((void)task.duration(TaskState::created, TaskState::done),
               Error);
}

TEST(TaskEntity, IllegalTransitionThrows) {
  Task task("task.x", TaskDescription{});
  task.set_state(TaskState::scheduling, 0.0);
  EXPECT_THROW(task.set_state(TaskState::running, 1.0), Error);
  task.set_state(TaskState::canceled, 1.0);
  EXPECT_THROW(task.set_state(TaskState::scheduling, 2.0), Error);
}

TEST(ServiceEntity, BootstrapTimingComplete) {
  Service svc("svc.x", ServiceDescription{});
  EXPECT_FALSE(svc.bootstrap().complete());
  svc.bootstrap().launch = 2.0;
  svc.bootstrap().init = 30.0;
  svc.bootstrap().publish = 0.2;
  EXPECT_TRUE(svc.bootstrap().complete());
  EXPECT_DOUBLE_EQ(svc.bootstrap().total(), 32.2);
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

class SchedulerTest : public ::testing::Test {
 protected:
  Session session{SessionConfig{.seed = 5}};
  Pilot* pilot = nullptr;

  void SetUp() override {
    session.add_platform(platform::delta_profile(2));  // 2 nodes, 4 GPUs ea
    pilot = &session.submit_pilot({.platform = "delta", .nodes = 2});
  }

  ScheduleRequest request(const std::string& uid, std::size_t cores,
                          std::size_t gpus, int priority,
                          std::vector<std::string>& order) {
    ScheduleRequest r;
    r.uid = uid;
    r.cores = cores;
    r.gpus = gpus;
    r.priority = priority;
    r.granted = [&order, uid](platform::Slot, platform::Node*) {
      order.push_back(uid);
    };
    return r;
  }
};

TEST_F(SchedulerTest, GrantsByPriorityThenFifo) {
  std::vector<std::string> order;
  auto& sched = session.scheduler();
  // Saturate: each node has 64 cores; take them all.
  sched.submit(pilot->uid(), request("hog1", 64, 0, 0, order));
  sched.submit(pilot->uid(), request("hog2", 64, 0, 0, order));
  sched.submit(pilot->uid(), request("low", 8, 0, 0, order));
  sched.submit(pilot->uid(), request("high", 8, 0, 5, order));
  session.run();
  ASSERT_EQ(order.size(), 2u);  // hogs hold everything
  EXPECT_EQ(sched.queue_length(pilot->uid()), 2u);

  // Free one node: the higher-priority request goes first.
  sched.release(pilot->uid(),
                platform::Slot{"delta:node0000", 64, 0, 0.0});
  session.run();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[2], "high");
  EXPECT_EQ(order[3], "low");
}

TEST_F(SchedulerTest, BackfillOvertakesBlockedHead) {
  std::vector<std::string> order;
  auto& sched = session.scheduler();
  sched.submit(pilot->uid(), request("big1", 64, 0, 0, order));
  sched.submit(pilot->uid(), request("big2", 64, 0, 0, order));
  sched.submit(pilot->uid(), request("big3", 64, 0, 0, order));  // blocked
  sched.submit(pilot->uid(), request("small", 1, 0, 0, order));
  session.run();
  // backfill (default): small overtakes the blocked big3... but only
  // if capacity remains; both nodes are full, so nothing moves.
  EXPECT_EQ(order.size(), 2u);
  sched.release(pilot->uid(), platform::Slot{"delta:node0000", 64, 0, 0.0});
  session.run();
  // big3 takes the freed node; small backfills nothing -> still queued?
  // node0000 is full again; small needs 1 core -> no room. Release 1.
  EXPECT_EQ(order.size(), 3u);
  EXPECT_EQ(order[2], "big3");
  sched.release(pilot->uid(), platform::Slot{"delta:node0001", 64, 0, 0.0});
  session.run();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[3], "small");
}

TEST_F(SchedulerTest, FifoPolicyBlocksQueueBehindHead) {
  session.scheduler().set_policy(SchedulerPolicy::fifo);
  std::vector<std::string> order;
  auto& sched = session.scheduler();
  sched.submit(pilot->uid(), request("big1", 64, 0, 0, order));
  sched.submit(pilot->uid(), request("big2", 64, 0, 0, order));
  sched.submit(pilot->uid(), request("big3", 64, 0, 0, order));
  sched.submit(pilot->uid(), request("small", 1, 0, 0, order));
  session.run();
  EXPECT_EQ(order.size(), 2u);
  EXPECT_EQ(sched.queue_length(pilot->uid()), 2u);
  // Under FIFO, small may NOT run while big3 blocks the head even
  // though a core could be free after a partial release.
  sched.release(pilot->uid(), platform::Slot{"delta:node0000", 8, 0, 0.0});
  session.run();
  EXPECT_EQ(order.size(), 2u);
}

TEST_F(SchedulerTest, CancelQueuedRequest) {
  std::vector<std::string> order;
  auto& sched = session.scheduler();
  sched.submit(pilot->uid(), request("hog", 64, 0, 0, order));
  sched.submit(pilot->uid(), request("hog2", 64, 0, 0, order));
  sched.submit(pilot->uid(), request("victim", 64, 0, 0, order));
  session.run();
  EXPECT_TRUE(sched.cancel(pilot->uid(), "victim"));
  EXPECT_FALSE(sched.cancel(pilot->uid(), "victim"));
  EXPECT_FALSE(sched.cancel(pilot->uid(), "hog"));  // already granted
  EXPECT_EQ(sched.queue_length(pilot->uid()), 0u);
}

TEST_F(SchedulerTest, ImpossibleRequestRejectedUpFront) {
  std::vector<std::string> order;
  EXPECT_THROW(session.scheduler().submit(
                   pilot->uid(), request("huge", 1000, 0, 0, order)),
               Error);
  EXPECT_THROW(session.scheduler().submit(
                   pilot->uid(), request("many-gpu", 1, 16, 0, order)),
               Error);
}

TEST_F(SchedulerTest, NeverOversubscribesNodes) {
  // Property: whatever the arrival pattern, allocated cores/gpus on any
  // node never exceed its spec.
  auto& sched = session.scheduler();
  common::Rng rng(21);
  int active = 0;
  std::function<void(int)> spawn = [&](int i) {
    ScheduleRequest r;
    r.uid = "t" + std::to_string(i);
    r.cores = static_cast<std::size_t>(rng.uniform_int(1, 32));
    r.gpus = static_cast<std::size_t>(rng.uniform_int(0, 4));
    r.granted = [&, r](platform::Slot slot, platform::Node* node) {
      ++active;
      EXPECT_LE(node->spec().cores, 64u);
      // Hold for a random time, then release and check invariants.
      session.loop().call_after(
          rng.uniform(0.1, 5.0), [&, slot] {
            sched.release(pilot->uid(), slot);
            --active;
          });
    };
    sched.submit(pilot->uid(), std::move(r));
  };
  for (int i = 0; i < 200; ++i) spawn(i);
  session.run();
  EXPECT_EQ(active, 0);
  EXPECT_EQ(sched.granted_total(), 200u);
  for (std::size_t n = 0; n < 2; ++n) {
    EXPECT_EQ(pilot->cluster().node(n).free_cores(), 64u);
    EXPECT_EQ(pilot->cluster().node(n).free_gpus(), 4u);
  }
}

// ---------------------------------------------------------------------------
// DataManager
// ---------------------------------------------------------------------------

class DataManagerTest : public ::testing::Test {
 protected:
  Runtime runtime{11};
  DataManager data{runtime};
};

TEST_F(DataManagerTest, RegisterAndQuery) {
  data.register_dataset("images", 1.6e12, "lab");
  EXPECT_TRUE(data.has("images"));
  EXPECT_FALSE(data.has("ghost"));
  EXPECT_TRUE(data.available_in("images", "lab"));
  EXPECT_FALSE(data.available_in("images", "delta"));
  EXPECT_DOUBLE_EQ(data.dataset("images").bytes, 1.6e12);
  EXPECT_THROW((void)data.dataset("ghost"), Error);
}

TEST_F(DataManagerTest, StagePresentIsInstant) {
  data.register_dataset("d", 1e9, "delta");
  bool done = false;
  data.stage("d", "delta", [&](bool ok, sim::Duration t) {
    EXPECT_TRUE(ok);
    EXPECT_DOUBLE_EQ(t, 0.0);
    done = true;
  });
  runtime.loop().run();
  EXPECT_TRUE(done);
  EXPECT_EQ(data.transfers(), 0u);
}

TEST_F(DataManagerTest, TransferTimeFollowsBandwidth) {
  data.register_dataset("blob", 10e9, "lab");
  data.set_bandwidth("lab", "delta", 1e9);  // 10 s of payload time
  double duration = -1;
  data.stage("blob", "delta", [&](bool ok, sim::Duration t) {
    EXPECT_TRUE(ok);
    duration = t;
  });
  runtime.loop().run();
  EXPECT_GT(duration, 10.0);
  EXPECT_LT(duration, 15.0);  // + setup latency
  EXPECT_TRUE(data.available_in("blob", "delta"));
  EXPECT_EQ(data.transfers(), 1u);
  EXPECT_DOUBLE_EQ(data.bytes_moved(), 10e9);
}

TEST_F(DataManagerTest, ConcurrentStagesShareOneTransfer) {
  data.register_dataset("shared", 1e9, "lab");
  int completions = 0;
  for (int i = 0; i < 5; ++i) {
    data.stage("shared", "delta",
               [&](bool ok, sim::Duration) {
                 EXPECT_TRUE(ok);
                 ++completions;
               });
  }
  runtime.loop().run();
  EXPECT_EQ(completions, 5);
  EXPECT_EQ(data.transfers(), 1u);  // piggybacked
}

TEST_F(DataManagerTest, UnknownDatasetFails) {
  bool ok = true;
  data.stage("ghost", "delta", [&](bool result, sim::Duration) {
    ok = result;
  });
  runtime.loop().run();
  EXPECT_FALSE(ok);
}

// ---------------------------------------------------------------------------
// Session-level entity management
// ---------------------------------------------------------------------------

TEST(SessionEntities, PilotLifecycleAndSummary) {
  Session session({.seed = 1});
  session.add_platform(platform::delta_profile(4));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 3});
  EXPECT_EQ(pilot.nodes().size(), 3u);
  EXPECT_EQ(session.cluster("delta").free_node_count(), 1u);
  session.run();
  EXPECT_EQ(pilot.state(), PilotState::active);

  session.close_pilot(pilot.uid());
  EXPECT_EQ(pilot.state(), PilotState::done);
  EXPECT_EQ(session.cluster("delta").free_node_count(), 4u);
  EXPECT_THROW(session.close_pilot(pilot.uid()), Error);

  const auto summary = session.summary();
  EXPECT_EQ(summary.at("seed").as_int(), 1);
  EXPECT_THROW((void)session.cluster("nonexistent"), Error);
  EXPECT_THROW(session.submit_pilot({.platform = "delta", .nodes = 99}),
               Error);
}

TEST(SessionEntities, DuplicatePlatformRejected) {
  Session session({.seed = 2});
  session.add_platform(platform::delta_profile(2));
  EXPECT_THROW(session.add_platform(platform::delta_profile(2)), Error);
}

}  // namespace
