// Hybrid local/remote deployment with failure handling.
//
// Demonstrates the paper's "continuum of local and remote computing
// resources": a Delta pilot hosts two local llama-8b services while two
// persistent services on the R3 cloud host serve the same model. A
// client fleet balances over all four endpoints. Mid-run, one local
// service is hard-killed (fault injection); liveness monitoring detects
// the silent crash via missed heartbeats, the restart policy brings a
// replacement up, and the workload completes.

#include <iostream>

#include "ripple/common/strutil.hpp"
#include "ripple/core/session.hpp"
#include "ripple/metrics/report.hpp"
#include "ripple/ml/install.hpp"
#include "ripple/platform/profiles.hpp"

using namespace ripple;

int main() {
  core::Session session({.seed = 4242});
  ml::install(session);
  session.add_platform(platform::delta_profile(4));
  auto& r3 = session.add_platform(platform::r3_profile(2));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 4});

  // Two monitored local services with restart-on-failure.
  core::ServiceDescription local_desc;
  local_desc.name = "llm";
  local_desc.program = "inference";
  local_desc.config = json::Value::object({{"model", "llama-8b"}});
  local_desc.gpus = 1;
  local_desc.monitor = true;
  local_desc.heartbeat_interval = 10.0;
  local_desc.heartbeat_misses = 3;
  local_desc.restart_on_failure = true;
  local_desc.max_restarts = 1;
  const auto local_a = session.services().submit(pilot, local_desc);
  const auto local_b = session.services().submit(pilot, local_desc);

  // Two persistent remote services on R3 (models already loaded).
  core::ServiceDescription remote_desc = local_desc;
  remote_desc.monitor = false;
  remote_desc.restart_on_failure = false;
  remote_desc.config.set("preloaded", true);
  const auto remote_a =
      session.services().register_remote(r3, remote_desc, 0);
  const auto remote_b =
      session.services().register_remote(r3, remote_desc, 1);

  std::vector<std::string> all = {local_a, local_b, remote_a, remote_b};
  session.services().when_ready(all, [&](bool ok) {
    if (!ok) {
      std::cerr << "bootstrap failed\n";
      session.services().stop_all();
      return;
    }
    std::cout << "4 services ready (2 local, 2 remote) at t="
              << session.now() << " s\n";

    json::Value endpoints = json::Value::array();
    for (const auto& uid : all) {
      endpoints.push_back(session.services().get(uid).endpoint());
    }
    std::vector<std::string> clients;
    for (int c = 0; c < 8; ++c) {
      core::TaskDescription task;
      task.name = "hybrid-client";
      task.kind = "inference_client";
      task.payload =
          json::Value::object({{"endpoints", endpoints},
                               {"requests", 24},
                               {"concurrency", 2},
                               {"balancer", "least_outstanding"},
                               {"timeout", 120.0},
                               {"series", "hybrid"}});
      clients.push_back(session.tasks().submit(pilot, task));
    }
    session.tasks().when_done(clients, [&](bool) {
      std::cout << "client fleet drained at t=" << session.now() << " s\n";
      session.services().stop_all();
    });

    // Fault injection: 90 s into serving, service A dies silently.
    session.loop().call_after(90.0, [&, local_a] {
      if (session.services().get(local_a).state() ==
          core::ServiceState::running) {
        std::cout << "t=" << session.now() << " s: killing " << local_a
                  << " (silent crash)\n";
        session.services().kill(local_a);
      }
    });
  });

  session.run();

  const auto& svc_a = session.services().get(local_a);
  std::cout << "\nService " << local_a
            << ": restarts=" << svc_a.restarts()
            << " final_state=" << core::to_string(svc_a.state()) << "\n";

  const auto& series = session.metrics().series("hybrid");
  std::cout << "completed inferences: " << series.count() << "\n";
  std::cout << "  inference: " << metrics::mean_pm_std(series.inference)
            << "\n";
  std::cout << "  total:     " << metrics::mean_pm_std(series.total)
            << "\n";
  std::cout << "\nTimeline shows FAILED -> SCHEDULING (restart) for the "
               "killed service; clients with timeouts+retry semantics "
               "rode out the failure on the remaining endpoints.\n";
  return 0;
}
