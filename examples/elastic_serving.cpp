// Elastic batched serving end to end: one llama-8b replica group that
// breathes with load.
//
//  1. An Autoscaler bootstraps the group at 1 replica (batch of 8,
//     50 ms batch window) inside a Delta pilot.
//  2. 12 eager clients (4 requests in flight each) saturate the pool;
//     the autoscaler watches the group backlog and grows it to up to
//     4 replicas. Clients follow the ServiceManager's endpoint events
//     ("watch": the group name), so new replicas take traffic the
//     moment they publish, and bounded-backoff retries absorb any
//     rejects along the way.
//  3. When the burst drains, the autoscaler shrinks the pool back and
//     the run reports throughput, scaling decisions and retry counts.

#include <iostream>

#include "ripple/common/strutil.hpp"
#include "ripple/core/session.hpp"
#include "ripple/metrics/report.hpp"
#include "ripple/ml/autoscaler.hpp"
#include "ripple/ml/install.hpp"
#include "ripple/platform/profiles.hpp"

using namespace ripple;

int main() {
  core::Session session({.seed = 11});
  ml::install(session);
  session.add_platform(platform::delta_profile(4));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 4});

  // The replica template: every scaled-up instance is one of these.
  core::ServiceDescription replica;
  replica.name = "llm";
  replica.program = "inference";
  replica.config = json::Value::object({{"model", "llama-8b"},
                                        {"max_batch", 8},
                                        {"batch_window", 0.05},
                                        {"max_queue", 64}});
  replica.cores = 1;
  replica.gpus = 1;

  ml::AutoscalerConfig scaling;
  scaling.min_replicas = 1;
  scaling.max_replicas = 4;
  scaling.scale_up_outstanding = 8.0;   // backlog per replica -> grow
  scaling.scale_down_outstanding = 1.0; // idle replicas -> shrink
  scaling.cooldown = 2.0;
  ml::Autoscaler scaler(session, pilot, replica, scaling);

  double start = 0.0;
  double makespan = 0.0;
  scaler.start([&](bool ok) {
    if (!ok) {
      std::cerr << "bootstrap failed\n";
      session.loop().stop();  // the poll timer would keep run() alive
      return;
    }
    start = session.now();
    std::cout << "pool ready at t=" << start << " s with "
              << scaler.running_replicas() << " replica\n";
    std::vector<std::string> task_uids;
    for (int c = 0; c < 12; ++c) {
      core::TaskDescription task;
      task.name = "chat-client";
      task.kind = "inference_client";
      json::Value endpoints = json::Value::array();
      for (const auto& endpoint : scaler.endpoints()) {
        endpoints.push_back(endpoint);
      }
      task.payload = json::Value::object({{"endpoints", endpoints},
                                          {"requests", 32},
                                          {"concurrency", 4},
                                          {"series", "chat"},
                                          {"balancer", "least_outstanding"},
                                          {"watch", "llm"},
                                          {"max_retries", 8},
                                          {"retry_backoff", 0.05}});
      task_uids.push_back(session.tasks().submit(pilot, task));
    }
    session.tasks().when_done(task_uids, [&](bool) {
      makespan = session.now() - start;
      scaler.stop();
    });
  });
  session.run();

  const auto& chat = session.metrics().series("chat");
  std::cout << "\nserved " << chat.count() << " requests in " << makespan
            << " s (" << chat.count() / makespan << " req/s)\n";
  std::cout << "scaling decisions: +" << scaler.scale_ups() << " / -"
            << scaler.scale_downs() << "\n";
  for (const auto& decision : scaler.decisions()) {
    std::cout << "  t=" << strutil::format_fixed(decision.time, 1) << " s "
              << (decision.up ? "scale-up" : "scale-down") << " to "
              << decision.replicas << " replicas (backlog "
              << decision.outstanding << ")\n";
  }
  std::cout << "mean response " << strutil::format_fixed(chat.total.mean(), 2)
            << " s, p95 " << strutil::format_fixed(chat.total.p95(), 2)
            << " s\n";
  return 0;
}
