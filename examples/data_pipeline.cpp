// Data pipeline walkthrough: the data plane end to end.
//
// A two-platform workflow over a replicated dataset catalog:
//   * delta holds the raw instrument shards, frontier holds a
//     reference model; both zones get finite stores;
//   * stage "featurize" consumes the raw shards — locality-aware
//     placement sends it to delta, where the bytes already live;
//   * stage "train" consumes the features it produced, a large
//     calibration set resident on delta, and the reference model — the
//     contention-aware advisor weighs estimated stage-in time (at live
//     striped fair-share rates) and queue depth, and keeps training on
//     delta: pulling the 30 GB reference beats pushing the 50 GB
//     calibration set the other way;
//   * the reference model is replicated (frontier + an external lab
//     archive), so hauling it stripes across both links at once — and
//     while "featurize" computes, the WorkflowManager prefetches it
//     toward delta (replication-ahead over idle links), so training
//     starts with its data already resident;
//   * lineage reference counts unpin the intermediate features once
//     training finishes, so the finite store can evict them.
//
// Build & run:  ./build/example_data_pipeline

#include <iostream>

#include "ripple/common/strutil.hpp"
#include "ripple/core/session.hpp"
#include "ripple/platform/profiles.hpp"
#include "ripple/wf/workflow_manager.hpp"

using namespace ripple;

int main() {
  core::Session session({.seed = 7});
  session.add_platform(platform::delta_profile(4));
  session.add_platform(platform::frontier_profile(4));
  auto& on_delta = session.submit_pilot({.platform = "delta", .nodes = 4});
  auto& on_frontier =
      session.submit_pilot({.platform = "frontier", .nodes = 4});

  // 1. The catalog: datasets with real sizes, stores with real limits.
  auto& data = session.data();
  data.add_store("delta", 200e9);
  data.add_store("frontier", 200e9);
  for (int i = 0; i < 4; ++i) {
    data.register_dataset("raw-" + std::to_string(i), 20e9, "delta");
  }
  // The calibration set anchors training to delta: moving it would
  // cost more than pulling the reference model in.
  data.register_dataset("calibration", 50e9, "delta");
  // The reference model is replicated: frontier plus an external lab
  // archive the Network does not model (explicit bandwidth override).
  // A transfer that must haul it stripes across both links.
  data.register_dataset("reference", 30e9, "frontier");
  data.register_dataset("reference", 30e9, "lab");
  data.set_bandwidth("lab", "delta", 2e9);
  data.set_bandwidth("lab", "frontier", 2e9);

  // 2. The pipeline declares what each stage reads and writes; the
  //    WorkflowManager stages, pins and releases datasets accordingly.
  wf::Pipeline pipeline;
  pipeline.name = "featurize-train";
  pipeline.placement = wf::Placement::locality;

  wf::Stage featurize;
  featurize.name = "featurize";
  for (int i = 0; i < 4; ++i) {
    featurize.consumes.push_back("raw-" + std::to_string(i));
  }
  featurize.produces = {"features"};
  for (int i = 0; i < 4; ++i) {
    core::TaskDescription task;
    task.name = "featurize-" + std::to_string(i);
    task.cores = 8;
    task.duration = common::Distribution::lognormal(60.0, 0.2, 10.0);
    if (i == 0) {  // one writer registers the shared feature matrix
      task.staging.push_back(core::StagingDirective::out("features"));
      task.payload.set("output_bytes", 8e9);
    }
    featurize.tasks.push_back(task);
  }

  wf::Stage train;
  train.name = "train";
  train.consumes = {"features", "calibration", "reference"};
  core::TaskDescription trainer;
  trainer.name = "train";
  trainer.cores = 16;
  trainer.gpus = 4;
  trainer.duration = common::Distribution::lognormal(120.0, 0.1, 30.0);
  train.tasks = {trainer};
  pipeline.stages = {featurize, train};

  // 3. Multi-pilot run: each stage lands where its bytes are cheapest.
  wf::WorkflowManager workflows(session);
  workflows.run_pipeline(
      pipeline, {&on_delta, &on_frontier},
      [&](const wf::PipelineResult& result) {
        std::cout << "pipeline " << (result.ok ? "completed" : "FAILED")
                  << " in " << strutil::format_duration(result.makespan)
                  << "\n";
        for (std::size_t i = 0; i < result.stage_names.size(); ++i) {
          std::cout << "  stage " << result.stage_names[i] << ": "
                    << strutil::format_duration(result.stage_durations[i])
                    << "\n";
        }
      });
  session.run();

  // 4. What the data plane did.
  std::cout << "\nbytes over the wire: "
            << strutil::format_fixed(data.bytes_moved() / 1e9, 2)
            << " GB in " << data.transfers() << " transfers (mean "
            << strutil::format_fixed(data.transfer_times().mean(), 1)
            << " s), " << data.engine().stripes_started()
            << " stripes\n";
  std::cout << "prefetches: " << data.prefetches_started() << " started, "
            << data.prefetches_completed()
            << " landed ahead of demand\n";
  std::cout << "features consumers left: "
            << data.catalog().consumers_left("features")
            << " (0 = evictable now that training is done)\n";
  std::cout << "delta store: "
            << strutil::format_fixed(data.catalog().store("delta").used / 1e9,
                                     1)
            << " GB used, " << data.catalog().evictions()
            << " evictions\n";
  return 0;
}
