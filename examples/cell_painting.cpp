// Use case II-A: the Cell Painting pipeline.
//
// Classifies radiation dose levels from cell-painting microscopy
// images with a fine-tuned ViT. Two asynchronously coupled stages:
//   1. CPU data processing & augmentation of a ~1.6 TB image dataset
//      (Globus-managed staging through the DataManager); augmentation
//      here is REAL compute on synthetic image tensors (rotation,
//      flipping, contrast), parallelized with the thread pool.
//   2. GPU fine-tuning driven by hyperparameter optimization
//      (successive halving over learning rate / batch size / weight
//      decay / dropout) on a synthetic-but-structured response surface.
// Training starts as soon as the first augmentation batches land
// (unblock_next_after), exactly the async coupling the paper motivates.

#include <cmath>
#include <iostream>
#include <vector>

#include "ripple/common/thread_pool.hpp"
#include "ripple/common/strutil.hpp"
#include "ripple/core/session.hpp"
#include "ripple/metrics/report.hpp"
#include "ripple/ml/install.hpp"
#include "ripple/platform/profiles.hpp"
#include "ripple/wf/hyperopt.hpp"

using namespace ripple;

namespace {

/// Real augmentation work: builds a batch of synthetic 32x32 "images",
/// applies flip + rotation + contrast, and returns a checksum so the
/// compiler cannot elide the work. Runs on the shared thread pool.
json::Value augment_batch(core::ExecutionContext& ctx,
                          const json::Value& args) {
  const auto images = static_cast<std::size_t>(
      args.get_or("images", json::Value(64)).as_int());
  constexpr std::size_t kSide = 32;
  common::ThreadPool workers(4);
  std::vector<double> checksums(images, 0.0);
  const std::uint64_t seed = ctx.rng.uniform_int(1, 1 << 30);
  workers.parallel_for(0, images, [&](std::size_t i) {
    common::Rng rng(seed + i);
    std::vector<float> img(kSide * kSide);
    for (auto& px : img) {
      px = static_cast<float>(rng.uniform(0.0, 1.0));
    }
    // Horizontal flip.
    for (std::size_t r = 0; r < kSide; ++r) {
      for (std::size_t c = 0; c < kSide / 2; ++c) {
        std::swap(img[r * kSide + c], img[r * kSide + (kSide - 1 - c)]);
      }
    }
    // 90-degree rotation into a scratch buffer.
    std::vector<float> rotated(img.size());
    for (std::size_t r = 0; r < kSide; ++r) {
      for (std::size_t c = 0; c < kSide; ++c) {
        rotated[c * kSide + (kSide - 1 - r)] = img[r * kSide + c];
      }
    }
    // Contrast stretch.
    double sum = 0.0;
    for (auto& px : rotated) {
      px = std::clamp((px - 0.5f) * 1.3f + 0.5f, 0.0f, 1.0f);
      sum += px;
    }
    checksums[i] = sum;
  });
  double total = 0.0;
  for (const double c : checksums) total += c;

  json::Value out = json::Value::object();
  out.set("images", images);
  out.set("checksum", total);
  return out;
}

/// Synthetic-but-structured validation loss surface for the HPO stage:
/// a smooth bowl over (log lr, batch, weight decay, dropout) plus noise.
/// Minimum near lr=3e-4, batch=64, wd=1e-4, dropout=0.1.
double validation_loss(const json::Value& params, common::Rng& rng) {
  const double lr = params.at("lr").as_double();
  const double batch = static_cast<double>(params.at("batch").as_int());
  const double wd = params.at("weight_decay").as_double();
  const double dropout = params.at("dropout").as_double();
  const double loss =
      0.35 + std::pow(std::log10(lr) - std::log10(3e-4), 2.0) * 0.08 +
      std::pow(std::log2(batch) - 6.0, 2.0) * 0.01 +
      std::pow(std::log10(wd) - std::log10(1e-4), 2.0) * 0.02 +
      std::pow(dropout - 0.1, 2.0) * 0.9;
  return loss + rng.normal(0.0, 0.01);
}

}  // namespace

int main() {
  core::Session session({.seed = 1606});
  ml::install(session);
  session.add_platform(platform::delta_profile(8));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 8});

  // The raw dataset (~1.6 TB) lives at the "lab" site and is staged to
  // Delta via the Globus-like transfer model before processing starts.
  session.runtime().network().register_host("lab:archive", "lab");
  session.data().register_dataset("cell-painting-raw", 1.6e12, "lab");
  session.data().set_bandwidth("lab", "delta", 5.0e9);  // 40 Gb/s Globus

  session.executor().functions().register_fn("augment_batch",
                                             augment_batch);

  // ---- Stage 1: augmentation workers (CPU) --------------------------
  std::vector<std::string> augment_uids;
  for (int i = 0; i < 8; ++i) {
    core::TaskDescription task;
    task.name = "augment";
    task.kind = "function";
    task.cores = 4;
    task.payload = json::Value::object(
        {{"fn", "augment_batch"}, {"args", json::Value::object({
                                      {"images", 128},
                                  })}});
    // Each worker also models the bulk of its IO/augmentation time.
    task.duration = common::Distribution::lognormal(240.0, 0.25, 60.0);
    task.staging.push_back(core::StagingDirective::in("cell-painting-raw"));
    augment_uids.push_back(session.tasks().submit(pilot, task));
  }

  // ---- Stage 2: HPO-driven fine-tuning (GPU), async-coupled ---------
  // Starts as soon as TWO augmentation workers have delivered batches.
  wf::SuccessiveHalving search(
      {wf::ParamSpec::log_real("lr", 1e-5, 1e-2),
       wf::ParamSpec::integer("batch", 16, 256),
       wf::ParamSpec::log_real("weight_decay", 1e-6, 1e-2),
       wf::ParamSpec::real("dropout", 0.0, 0.5)},
      session.runtime().rng().fork("hpo"), /*initial=*/8, /*eta=*/2);
  common::Rng objective_rng = session.runtime().rng().fork("objective");

  std::size_t trials_run = 0;
  std::function<void()> run_rung = [&] {
    const auto pending = search.pending();
    if (pending.empty()) return;
    auto remaining = std::make_shared<std::size_t>(pending.size());
    for (const auto& trial : pending) {
      core::TaskDescription train;
      train.name = "finetune";
      train.kind = "modeled";
      train.cores = 2;
      train.gpus = 1;
      // Budget grows with the rung (successive halving semantics).
      const double epochs = 2.0 * std::pow(2.0, trial.rung);
      train.duration =
          common::Distribution::lognormal(180.0 * epochs, 0.2, 30.0);
      const auto uid = session.tasks().submit(pilot, train);
      const std::size_t trial_id = trial.id;
      const json::Value params = trial.params;
      session.tasks().when_done({uid}, [&, trial_id, params,
                                        remaining](bool ok) {
        ++trials_run;
        search.report(trial_id,
                      ok ? validation_loss(params, objective_rng) : 1e9);
        if (--(*remaining) == 0) {
          if (search.rung_complete()) search.advance_rung();
          if (!search.finished()) {
            run_rung();
          } else {
            session.services().stop_all();
          }
        }
      });
    }
  };

  std::size_t augmented_done = 0;
  bool training_started = false;
  for (const auto& uid : augment_uids) {
    session.tasks().when_done({uid}, [&](bool ok) {
      if (!ok) {
        std::cerr << "augmentation worker failed\n";
        return;
      }
      ++augmented_done;
      if (augmented_done == 2 && !training_started) {
        training_started = true;
        std::cout << "sufficient processed data at t=" << session.now()
                  << " s -> starting asynchronous HPO training\n";
        run_rung();
      }
    });
  }

  session.run();

  std::cout << "\nCell Painting pipeline complete at t="
            << strutil::format_duration(session.now()) << "\n";
  std::cout << "augmentation workers: " << augmented_done << "/8 done\n";
  std::cout << "HPO trials executed:  " << trials_run << "\n";
  const auto& best = search.best();
  std::cout << "best validation loss: "
            << strutil::format_fixed(best.value, 4)
            << " with params " << best.params.dump() << "\n";
  std::cout << "dataset transfers:    " << session.data().transfers()
            << " (" << strutil::format_bytes(session.data().bytes_moved())
            << " moved)\n";
  return 0;
}
