// Use case II-B: the Signature Detection pipeline.
//
// Analyzes DNA variants from 15 low-dose-radiation samples (~300 MB
// VCF each) in three stages:
//   1. VEP annotation exposed as a SERVICE (clients call it
//      asynchronously while stage 2 consumes finished samples);
//   2. pathway enrichment — REAL compute: a hypergeometric-style
//      over-representation test of synthetic variant gene sets against
//      KEGG-like pathways (CPU, not service-based);
//   3. dose-response aggregation plus LLM-based signature comparison
//      through a llama-8b service.
// Outputs are small CSV-like datasets registered with the DataManager.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <map>
#include <vector>

#include "ripple/common/strutil.hpp"
#include "ripple/core/session.hpp"
#include "ripple/metrics/report.hpp"
#include "ripple/ml/install.hpp"
#include "ripple/platform/profiles.hpp"

using namespace ripple;

namespace {

/// ln C(n, k) via lgamma — the building block of the enrichment test.
double log_choose(double n, double k) {
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
         std::lgamma(n - k + 1.0);
}

/// Hypergeometric upper-tail p-value: probability of >= k hits when
/// drawing `draws` genes from a universe with `hits_in_universe`
/// pathway members out of `universe` genes. Real numerics, small sizes.
double enrichment_pvalue(int universe, int hits_in_universe, int draws,
                         int k) {
  double p = 0.0;
  const int upper = std::min(draws, hits_in_universe);
  for (int i = k; i <= upper; ++i) {
    const double log_p = log_choose(hits_in_universe, i) +
                         log_choose(universe - hits_in_universe,
                                    draws - i) -
                         log_choose(universe, draws);
    p += std::exp(log_p);
  }
  return std::min(1.0, p);
}

/// Stage-2 payload: builds a synthetic variant gene set for the sample,
/// tests it against 40 pathways and returns the significantly enriched
/// ones (p < 0.01). Dose-correlated pathways are planted so the
/// aggregation stage has real signal to find.
json::Value enrich_sample(core::ExecutionContext& ctx,
                          const json::Value& args) {
  const int dose_level =
      static_cast<int>(args.get_or("dose", json::Value(0)).as_int());
  constexpr int kUniverse = 2000;
  constexpr int kPathways = 40;
  constexpr int kDraws = 120;

  json::Value enriched = json::Value::array();
  for (int pathway = 0; pathway < kPathways; ++pathway) {
    const int members =
        40 + static_cast<int>(ctx.rng.uniform_int(0, 40));
    // Planted signal: pathways 0-4 respond to dose.
    const double base_rate =
        static_cast<double>(members) / kUniverse;
    double rate = base_rate;
    if (pathway < 5) rate *= 1.0 + 0.8 * dose_level;
    int hits = 0;
    for (int draw = 0; draw < kDraws; ++draw) {
      if (ctx.rng.chance(rate)) ++hits;
    }
    const double p = enrichment_pvalue(kUniverse, members, kDraws, hits);
    if (p < 0.01) {
      json::Value row = json::Value::object();
      row.set("pathway", pathway);
      row.set("hits", hits);
      row.set("p_value", p);
      enriched.push_back(std::move(row));
    }
  }
  json::Value out = json::Value::object();
  out.set("dose", dose_level);
  out.set("enriched", std::move(enriched));
  return out;
}

}  // namespace

int main() {
  core::Session session({.seed = 303});
  ml::install(session);
  session.add_platform(platform::delta_profile(8));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 8});
  session.executor().functions().register_fn("enrich_sample",
                                             enrich_sample);

  // 15 VCF samples (~300 MB each), already on the platform.
  constexpr int kSamples = 15;
  for (int s = 0; s < kSamples; ++s) {
    session.data().register_dataset("vcf-sample-" + std::to_string(s),
                                    300e6, "delta");
  }

  // ---- Stage 1 service: VEP behind a REST-like API ------------------
  core::ServiceDescription vep;
  vep.name = "vep";
  vep.program = "inference";
  vep.config = json::Value::object({{"model", "vit-base"}});  // CPU-ish cost
  vep.cores = 8;
  vep.gpus = 0;
  const std::string vep_uid = session.services().submit(pilot, vep);

  // ---- Stage 3 service: llama-8b for signature comparison -----------
  core::ServiceDescription llm;
  llm.name = "signature-llm";
  llm.program = "inference";
  llm.config = json::Value::object({{"model", "llama-8b"}});
  llm.gpus = 1;
  const std::string llm_uid = session.services().submit(pilot, llm);

  std::map<int, json::Value> enrichment_results;
  std::size_t aggregated = 0;

  session.services().when_ready({vep_uid}, [&](bool ok) {
    if (!ok) {
      std::cerr << "VEP service failed\n";
      return;
    }
    const std::string vep_endpoint =
        session.services().get(vep_uid).endpoint();

    std::vector<std::string> annotate_uids;
    std::vector<std::string> enrich_uids;
    for (int s = 0; s < kSamples; ++s) {
      // Stage 1: annotate sample via the VEP service (1-5 min, ~3 GB).
      core::TaskDescription annotate;
      annotate.name = "vep-annotate";
      annotate.kind = "inference_client";
      annotate.cores = 1;
      annotate.mem_gb = 3.0;
      annotate.duration = common::Distribution::uniform(60.0, 300.0);
      annotate.payload = json::Value::object(
          {{"endpoints", json::Value::array({vep_endpoint})},
           {"requests", 4},
           {"series", "vep"}});
      annotate.staging.push_back(
          core::StagingDirective::in("vcf-sample-" + std::to_string(s)));
      const auto annotate_uid = session.tasks().submit(pilot, annotate);
      annotate_uids.push_back(annotate_uid);

      // Stage 2: enrichment (CPU, parallel across cores; REAL compute),
      // asynchronously chained per sample — it starts the moment its
      // own annotation finishes, not when all of stage 1 does.
      core::TaskDescription enrich;
      enrich.name = "enrichment";
      enrich.kind = "function";
      enrich.cores = 4;
      enrich.duration = common::Distribution::lognormal(150.0, 0.3, 30.0);
      enrich.payload = json::Value::object(
          {{"fn", "enrich_sample"},
           {"args", json::Value::object({{"dose", s % 3}})},
           {"output_bytes", 64e3}});
      enrich.depends_on = {annotate_uid};
      enrich.staging.push_back(core::StagingDirective::out(
          "dose-response-" + std::to_string(s)));
      const auto enrich_uid = session.tasks().submit(pilot, enrich);
      enrich_uids.push_back(enrich_uid);

      session.tasks().when_done({enrich_uid}, [&, s, enrich_uid](bool ok2) {
        if (ok2) {
          enrichment_results[s] =
              session.tasks().get(enrich_uid).result().at("output");
        }
      });
    }

    // Stage 3: once all enrichments are in, aggregate dose-response and
    // query the LLM service for signature comparison.
    session.tasks().when_done(enrich_uids, [&](bool ok2) {
      if (!ok2) {
        std::cerr << "enrichment stage failed\n";
        session.services().stop_all();
        return;
      }
      // Dose-response aggregation (real reduce over stage-2 output).
      std::map<int, std::map<int, int>> pathway_by_dose;
      for (const auto& [sample, result] : enrichment_results) {
        const int dose = static_cast<int>(result.at("dose").as_int());
        for (const auto& row : result.at("enriched").as_array()) {
          ++pathway_by_dose[static_cast<int>(row.at("pathway").as_int())]
                           [dose];
        }
      }
      std::vector<std::pair<int, int>> ranked;
      for (const auto& [pathway, doses] : pathway_by_dose) {
        int weight = 0;
        for (const auto& [dose, count] : doses) weight += dose * count;
        ranked.emplace_back(weight, pathway);
      }
      std::sort(ranked.rbegin(), ranked.rend());
      std::cout << "dose-correlated pathways (top 5): ";
      for (std::size_t i = 0; i < std::min<std::size_t>(5, ranked.size());
           ++i) {
        std::cout << ranked[i].second << " ";
      }
      std::cout << "\n";
      aggregated = ranked.size();

      session.services().when_ready({llm_uid}, [&](bool ok3) {
        if (!ok3) {
          session.services().stop_all();
          return;
        }
        core::TaskDescription compare;
        compare.name = "signature-compare";
        compare.kind = "inference_client";
        compare.payload = json::Value::object(
            {{"endpoints",
              json::Value::array(
                  {session.services().get(llm_uid).endpoint()})},
             {"requests", 8},
             {"series", "signature-llm"}});
        const auto uid = session.tasks().submit(pilot, compare);
        session.tasks().when_done(
            {uid}, [&](bool) { session.services().stop_all(); });
      });
    });
  });

  session.run();

  std::cout << "\nSignature Detection pipeline complete at t="
            << strutil::format_duration(session.now()) << "\n";
  std::cout << "samples annotated+enriched: " << enrichment_results.size()
            << "/" << kSamples << "\n";
  std::cout << "pathways with dose signal:  " << aggregated << "\n";
  if (session.metrics().has_series("signature-llm")) {
    std::cout << "LLM comparison inferences:  "
              << session.metrics().series("signature-llm").count() << " ("
              << metrics::mean_pm_std(
                     session.metrics().series("signature-llm").inference)
              << " each)\n";
  }
  std::cout << "intermediate CSV datasets:  "
            << kSamples << " dose-response files registered\n";
  return 0;
}
