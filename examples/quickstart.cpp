// Quickstart: the smallest complete Ripple program.
//
// Builds a session on a simulated Delta allocation, starts two llama-8b
// inference services inside a pilot, runs four client tasks against
// them, and prints the response-time decomposition — the paper's
// execution model (Fig. 2) end to end in ~60 lines of user code.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "ripple/common/strutil.hpp"
#include "ripple/core/session.hpp"
#include "ripple/metrics/report.hpp"
#include "ripple/ml/install.hpp"
#include "ripple/platform/profiles.hpp"

using namespace ripple;

int main() {
  // 1. A session seeds every stochastic model: runs are reproducible.
  core::Session session({.seed = 42});
  ml::install(session);  // adds the "inference" program & client payload

  // 2. Platforms are calibrated profiles; pilots acquire their nodes.
  session.add_platform(platform::delta_profile(4));
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 4});

  // 3. Services are first-class schedulable entities.
  core::ServiceDescription svc;
  svc.name = "llm";
  svc.program = "inference";
  svc.config = json::Value::object({{"model", "llama-8b"}});
  svc.gpus = 1;
  const std::string svc_a = session.services().submit(pilot, svc);
  const std::string svc_b = session.services().submit(pilot, svc);

  // 4. Tasks that need the services declare readiness relations; the
  //    when_ready barrier hands us the endpoints.
  session.services().when_ready({svc_a, svc_b}, [&](bool ok) {
    if (!ok) {
      std::cerr << "services failed to bootstrap\n";
      return;
    }
    std::cout << "services ready at t=" << session.now() << " s\n";

    json::Value endpoints = json::Value::array();
    for (const auto& e : session.services().endpoints("llm")) {
      endpoints.push_back(e);
    }
    std::vector<std::string> clients;
    for (int i = 0; i < 4; ++i) {
      core::TaskDescription task;
      task.name = "prompter";
      task.kind = "inference_client";
      task.payload = json::Value::object({{"endpoints", endpoints},
                                          {"requests", 8},
                                          {"concurrency", 2},
                                          {"series", "quickstart"}});
      clients.push_back(session.tasks().submit(pilot, task));
    }
    session.tasks().when_done(clients, [&](bool all_ok) {
      std::cout << "clients " << (all_ok ? "done" : "FAILED") << " at t="
                << session.now() << " s\n";
      session.services().stop_all();  // drain & release GPU slots
    });
  });

  // 5. One call drives the whole event-driven run to completion.
  session.run();

  // 6. Metrics: the same decomposition the paper plots.
  const auto& series = session.metrics().series("quickstart");
  std::cout << "\n32 inferences served:\n";
  std::cout << "  communication: "
            << metrics::mean_pm_std(series.communication) << "\n";
  std::cout << "  service:       " << metrics::mean_pm_std(series.service)
            << "\n";
  std::cout << "  inference:     " << metrics::mean_pm_std(series.inference)
            << "\n";
  std::cout << "  total:         " << metrics::mean_pm_std(series.total)
            << "\n";
  std::cout << "\nsession summary: " << session.summary().dump(2) << "\n";
  return 0;
}
