// Use case II-C: the Uncertainty Quantification workflow, as a DAG.
//
// Evaluates uncertainty of LLM inferences across a three-level
// hierarchy: {LLMs} x {random seeds} x {UQ methods}, with maximal task
// concurrency and load balancing — then aggregates real statistics
// (mean/stddev/expected calibration error) over the per-task scores.
//
// The shape is the natural wf::Graph fan-out/fan-in:
//
//                    +-> uq-llama-8b-bayesian-lora  (4 seed tasks) ->+
//   prepare-data  ---+-> uq-llama-8b-lora-ensemble (4 seed tasks) ->+--> aggregate
//   (qa-pairs)       +-> ... one node per LLM x method ...        ->+
//
// The frontier scheduler releases all six evaluation nodes the moment
// preparation completes; the aggregation node joins on every branch
// and computes calibration statistics from the branches' task results.

#include <cmath>
#include <iostream>
#include <map>
#include <vector>

#include "ripple/common/strutil.hpp"
#include "ripple/core/session.hpp"
#include "ripple/metrics/report.hpp"
#include "ripple/ml/install.hpp"
#include "ripple/platform/profiles.hpp"
#include "ripple/wf/graph.hpp"
#include "ripple/wf/workflow_manager.hpp"

using namespace ripple;

namespace {

/// Evaluation payload: "runs" one fine-tuning-based UQ evaluation and
/// produces a per-method calibration sample: N (confidence, correct)
/// pairs whose miscalibration depends on the method — real data the
/// aggregation node computes real ECE over.
json::Value run_uq_eval(core::ExecutionContext& ctx,
                        const json::Value& args) {
  const std::string method = args.at("method").as_string();
  const std::string llm = args.at("llm").as_string();
  constexpr int kSamples = 512;

  // Method-specific miscalibration: ensembles are better calibrated.
  double overconfidence = 0.15;
  if (method == "lora-ensemble") overconfidence = 0.05;
  if (method == "bayesian-lora") overconfidence = 0.08;
  if (llm == "mistral-7b") overconfidence += 0.02;

  json::Value confidences = json::Value::array();
  json::Value correct = json::Value::array();
  for (int i = 0; i < kSamples; ++i) {
    const double conf = ctx.rng.uniform(0.5, 1.0);
    const double true_accuracy =
        std::clamp(conf - overconfidence, 0.0, 1.0);
    confidences.push_back(conf);
    correct.push_back(ctx.rng.chance(true_accuracy));
  }
  json::Value out = json::Value::object();
  out.set("llm", llm);
  out.set("method", method);
  out.set("confidence", std::move(confidences));
  out.set("correct", std::move(correct));
  return out;
}

/// Expected calibration error over 10 confidence bins — real numerics.
double expected_calibration_error(const json::Value& eval) {
  const auto& conf = eval.at("confidence").as_array();
  const auto& correct = eval.at("correct").as_array();
  constexpr int kBins = 10;
  std::vector<double> bin_conf(kBins, 0.0);
  std::vector<double> bin_acc(kBins, 0.0);
  std::vector<int> bin_n(kBins, 0);
  for (std::size_t i = 0; i < conf.size(); ++i) {
    const double c = conf[i].as_double();
    const int bin = std::min(kBins - 1, static_cast<int>(c * kBins));
    bin_conf[bin] += c;
    bin_acc[bin] += correct[i].as_bool() ? 1.0 : 0.0;
    ++bin_n[bin];
  }
  double ece = 0.0;
  const double total = static_cast<double>(conf.size());
  for (int b = 0; b < kBins; ++b) {
    if (bin_n[b] == 0) continue;
    const double avg_conf = bin_conf[b] / bin_n[b];
    const double avg_acc = bin_acc[b] / bin_n[b];
    ece += (bin_n[b] / total) * std::fabs(avg_conf - avg_acc);
  }
  return ece;
}

}  // namespace

int main() {
  core::Session session({.seed = 777});
  ml::install(session);
  session.add_platform(platform::delta_profile(8));  // 32 GPUs
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 8});
  session.executor().functions().register_fn("run_uq_eval", run_uq_eval);
  wf::WorkflowManager workflows(session);

  // The QA dataset is tiny (~3.4 MB of question-answer pairs).
  session.data().register_dataset("qa-pairs", 3.4e6, "delta");

  // Level definitions (outer: LLMs; middle: seeds; inner: UQ methods).
  const std::vector<std::string> llms = {"llama-8b", "mistral-7b"};
  const std::vector<std::string> methods = {"bayesian-lora",
                                            "lora-ensemble", "map-lora"};
  constexpr int kSeeds = 4;

  wf::Graph graph("uq");

  // ---- prepare-data: the single root ---------------------------------
  wf::Stage prepare;
  prepare.name = "prepare-data";
  prepare.consumes = {"qa-pairs"};
  core::TaskDescription prep_task;
  prep_task.name = "prepare-data";
  prep_task.kind = "modeled";
  prep_task.cores = 1;
  prep_task.duration = common::Distribution::lognormal(20.0, 0.2, 5.0);
  prepare.tasks = {prep_task};
  graph.add(prepare);

  // ---- fan-out: one node per LLM x method, one task per seed ---------
  // Each branch's completion hook records its task uids so the
  // aggregation node can read the per-seed results.
  std::map<std::string, std::vector<std::string>> branch_uids;
  std::vector<std::string> branch_keys;
  for (const auto& llm : llms) {
    for (const auto& method : methods) {
      wf::GraphNode node;
      node.stage.name = "uq-" + llm + "-" + method;
      for (int seed = 0; seed < kSeeds; ++seed) {
        core::TaskDescription task;
        task.name = node.stage.name;
        task.kind = "function";
        task.cores = 2;
        task.gpus = 1;
        // 5-60 GB of GPU memory depending on model/LoRA configuration.
        task.mem_gb = llm == "llama-8b" ? 24.0 : 12.0;
        task.duration = common::Distribution::lognormal(
            method == "lora-ensemble" ? 1500.0 : 900.0, 0.25, 200.0);
        task.payload = json::Value::object(
            {{"fn", "run_uq_eval"},
             {"args", json::Value::object({{"llm", llm},
                                           {"method", method},
                                           {"seed", seed}})}});
        node.stage.tasks.push_back(task);
      }
      const std::string key = node.stage.name;
      node.on_complete = [&branch_uids, key](const wf::NodeOutcome& out) {
        branch_uids[key] = out.task_uids;
      };
      graph.add(std::move(node));
      branch_keys.push_back(key);
      graph.depend("prepare-data", key);
    }
  }

  // ---- fan-in: aggregation joins on every branch ---------------------
  struct Aggregate {
    common::Summary ece;
  };
  std::map<std::string, Aggregate> by_config;  // "llm/method"

  wf::GraphNode aggregate;
  aggregate.stage.name = "aggregate";
  core::TaskDescription agg_task;
  agg_task.name = "aggregate";
  agg_task.kind = "modeled";
  agg_task.cores = 1;
  agg_task.duration = common::Distribution::lognormal(10.0, 0.2, 2.0);
  aggregate.stage.tasks = {agg_task};
  aggregate.on_complete = [&](const wf::NodeOutcome&) {
    for (const auto& [key, uids] : branch_uids) {
      for (const auto& uid : uids) {
        const auto& task = session.tasks().get(uid);
        if (task.state() != core::TaskState::done) continue;
        const json::Value& eval = task.result().at("output");
        const std::string config = eval.at("llm").as_string() + "/" +
                                   eval.at("method").as_string();
        by_config[config].ece.add(expected_calibration_error(eval));
      }
    }
    session.services().stop_all();
  };
  graph.add(std::move(aggregate));
  for (const auto& key : branch_keys) graph.depend(key, "aggregate");

  wf::GraphResult result;
  workflows.run_graph(graph, pilot,
                      [&](const wf::GraphResult& r) { result = r; });
  session.run();

  std::cout << "UQ workflow " << (result.ok ? "complete" : "FAILED")
            << " at t=" << strutil::format_duration(session.now()) << " ("
            << result.node_names.size() << " nodes, " << result.tasks_done
            << " tasks)\n\n";
  metrics::Table table({"llm/method", "runs", "ece_mean", "ece_std"});
  for (const auto& [key, agg] : by_config) {
    table.add_row({key, std::to_string(agg.ece.count()),
                   strutil::format_fixed(agg.ece.mean(), 4),
                   strutil::format_fixed(agg.ece.stddev(), 4)});
  }
  std::cout << table.to_string();
  std::cout << "\nExpected ranking: lora-ensemble < bayesian-lora < "
               "map-lora (ECE, lower is better-calibrated)\n";
  return result.ok ? 0 : 1;
}
