// Use case II-C: the Uncertainty Quantification pipeline.
//
// Evaluates uncertainty of LLM inferences across a three-level
// hierarchy: {LLMs} x {random seeds} x {UQ methods}, with maximal task
// concurrency and load balancing — then aggregates real statistics
// (mean/stddev/expected calibration error) over the per-task scores.
//   Stage 1: data preparation (tiny CPU task, service-enabled);
//   Stage 2: 2 LLMs x 4 seeds x 3 UQ methods = 24 GPU fine-tuning
//            tasks (5-60 GB GPU memory each, NOT service-based);
//   Stage 3: post-processing aggregation (service-enabled).

#include <cmath>
#include <iostream>
#include <map>
#include <vector>

#include "ripple/common/strutil.hpp"
#include "ripple/core/session.hpp"
#include "ripple/metrics/report.hpp"
#include "ripple/ml/install.hpp"
#include "ripple/platform/profiles.hpp"

using namespace ripple;

namespace {

struct UqTaskSpec {
  std::string llm;
  std::string method;
  int seed;
};

/// Stage-2 payload: "runs" one fine-tuning-based UQ evaluation and
/// produces a per-method calibration sample: N (confidence, correct)
/// pairs whose miscalibration depends on the method — real data the
/// aggregation stage computes real ECE over.
json::Value run_uq_eval(core::ExecutionContext& ctx,
                        const json::Value& args) {
  const std::string method = args.at("method").as_string();
  const std::string llm = args.at("llm").as_string();
  constexpr int kSamples = 512;

  // Method-specific miscalibration: ensembles are better calibrated.
  double overconfidence = 0.15;
  if (method == "lora-ensemble") overconfidence = 0.05;
  if (method == "bayesian-lora") overconfidence = 0.08;
  if (llm == "mistral-7b") overconfidence += 0.02;

  json::Value confidences = json::Value::array();
  json::Value correct = json::Value::array();
  for (int i = 0; i < kSamples; ++i) {
    const double conf = ctx.rng.uniform(0.5, 1.0);
    const double true_accuracy =
        std::clamp(conf - overconfidence, 0.0, 1.0);
    confidences.push_back(conf);
    correct.push_back(ctx.rng.chance(true_accuracy));
  }
  json::Value out = json::Value::object();
  out.set("llm", llm);
  out.set("method", method);
  out.set("confidence", std::move(confidences));
  out.set("correct", std::move(correct));
  return out;
}

/// Expected calibration error over 10 confidence bins — real numerics.
double expected_calibration_error(const json::Value& eval) {
  const auto& conf = eval.at("confidence").as_array();
  const auto& correct = eval.at("correct").as_array();
  constexpr int kBins = 10;
  std::vector<double> bin_conf(kBins, 0.0);
  std::vector<double> bin_acc(kBins, 0.0);
  std::vector<int> bin_n(kBins, 0);
  for (std::size_t i = 0; i < conf.size(); ++i) {
    const double c = conf[i].as_double();
    const int bin = std::min(kBins - 1, static_cast<int>(c * kBins));
    bin_conf[bin] += c;
    bin_acc[bin] += correct[i].as_bool() ? 1.0 : 0.0;
    ++bin_n[bin];
  }
  double ece = 0.0;
  const double total = static_cast<double>(conf.size());
  for (int b = 0; b < kBins; ++b) {
    if (bin_n[b] == 0) continue;
    const double avg_conf = bin_conf[b] / bin_n[b];
    const double avg_acc = bin_acc[b] / bin_n[b];
    ece += (bin_n[b] / total) * std::fabs(avg_conf - avg_acc);
  }
  return ece;
}

}  // namespace

int main() {
  core::Session session({.seed = 777});
  ml::install(session);
  session.add_platform(platform::delta_profile(8));  // 32 GPUs
  auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 8});
  session.executor().functions().register_fn("run_uq_eval", run_uq_eval);

  // The QA dataset is tiny (~3.4 MB of question-answer pairs).
  session.data().register_dataset("qa-pairs", 3.4e6, "delta");

  // Level definitions (outer: LLMs; middle: seeds; inner: UQ methods).
  const std::vector<std::string> llms = {"llama-8b", "mistral-7b"};
  const std::vector<std::string> methods = {"bayesian-lora",
                                            "lora-ensemble", "map-lora"};
  constexpr int kSeeds = 4;

  // ---- Stage 1: data preparation ------------------------------------
  core::TaskDescription prepare;
  prepare.name = "prepare-data";
  prepare.kind = "modeled";
  prepare.cores = 1;
  prepare.duration = common::Distribution::lognormal(20.0, 0.2, 5.0);
  prepare.staging.push_back(core::StagingDirective::in("qa-pairs"));
  const auto prep_uid = session.tasks().submit(pilot, prepare);

  // ---- Stage 2: the three-level hierarchy, maximal concurrency ------
  std::vector<UqTaskSpec> specs;
  for (const auto& llm : llms) {
    for (int seed = 0; seed < kSeeds; ++seed) {
      for (const auto& method : methods) {
        specs.push_back({llm, method, seed});
      }
    }
  }
  std::vector<std::string> uq_uids;
  for (const auto& spec : specs) {
    core::TaskDescription task;
    task.name = "uq-" + spec.llm + "-" + spec.method;
    task.kind = "function";
    task.cores = 2;
    task.gpus = 1;
    // 5-60 GB of GPU memory depending on model/LoRA configuration.
    task.mem_gb = spec.llm == "llama-8b" ? 24.0 : 12.0;
    task.duration = common::Distribution::lognormal(
        spec.method == "lora-ensemble" ? 1500.0 : 900.0, 0.25, 200.0);
    task.payload = json::Value::object(
        {{"fn", "run_uq_eval"},
         {"args", json::Value::object({{"llm", spec.llm},
                                       {"method", spec.method},
                                       {"seed", spec.seed}})}});
    task.depends_on = {prep_uid};
    uq_uids.push_back(session.tasks().submit(pilot, task));
  }

  // ---- Stage 3: aggregation ------------------------------------------
  struct Aggregate {
    common::Summary ece;
  };
  std::map<std::string, Aggregate> by_config;  // "llm/method"

  session.tasks().when_done(uq_uids, [&](bool ok) {
    if (!ok) {
      std::cerr << "UQ stage had failures\n";
    }
    for (std::size_t i = 0; i < uq_uids.size(); ++i) {
      const auto& task = session.tasks().get(uq_uids[i]);
      if (task.state() != core::TaskState::done) continue;
      const json::Value& eval = task.result().at("output");
      const std::string key =
          specs[i].llm + "/" + specs[i].method;
      by_config[key].ece.add(expected_calibration_error(eval));
    }
    session.services().stop_all();
  });

  session.run();

  std::cout << "UQ pipeline complete at t="
            << strutil::format_duration(session.now()) << "\n\n";
  metrics::Table table({"llm/method", "runs", "ece_mean", "ece_std"});
  for (const auto& [key, agg] : by_config) {
    table.add_row({key, std::to_string(agg.ece.count()),
                   strutil::format_fixed(agg.ece.mean(), 4),
                   strutil::format_fixed(agg.ece.stddev(), 4)});
  }
  std::cout << table.to_string();
  std::cout << "\nExpected ranking: lora-ensemble < bayesian-lora < "
               "map-lora (ECE, lower is better-calibrated)\n";
  return 0;
}
