#include "ripple/wf/graph.hpp"

#include <algorithm>
#include <deque>
#include <set>

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::wf {

std::size_t Graph::add(GraphNode node) {
  ensure(!node.stage.name.empty(), Errc::invalid_argument,
         strutil::cat("graph '", name, "': node needs a stage name"));
  ensure(index_.find(node.stage.name) == index_.end(), Errc::invalid_argument,
         strutil::cat("graph '", name, "': duplicate node '",
                      node.stage.name, "'"));
  const std::size_t seq = nodes_.size();
  index_.emplace(node.stage.name, seq);
  nodes_.push_back(std::move(node));
  return seq;
}

std::size_t Graph::add(Stage stage) {
  GraphNode node;
  node.stage = std::move(stage);
  return add(std::move(node));
}

void Graph::depend(const std::string& from, const std::string& to,
                   EdgeOptions options) {
  const std::size_t from_seq = index_of(from);
  const std::size_t to_seq = index_of(to);
  ensure(from_seq != to_seq, Errc::invalid_argument,
         strutil::cat("graph '", name, "': node '", from,
                      "' cannot depend on itself"));
  GraphEdge edge;
  edge.from = from_seq;
  edge.to = to_seq;
  edge.after_tasks = options.after_tasks;
  edge.conditional = options.conditional;
  edges_.push_back(edge);
}

bool Graph::has_node(const std::string& key) const {
  return index_.find(key) != index_.end();
}

std::size_t Graph::index_of(const std::string& key) const {
  const auto it = index_.find(key);
  ensure(it != index_.end(), Errc::not_found,
         strutil::cat("graph '", name, "': no node '", key, "'"));
  return it->second;
}

void Graph::validate(
    const std::function<bool(const std::string&)>& external) const {
  std::vector<std::vector<std::size_t>> successors(nodes_.size());
  std::vector<std::size_t> indegree(nodes_.size(), 0);
  for (const auto& edge : edges_) {
    successors[edge.from].push_back(edge.to);
    ++indegree[edge.to];
  }

  // Cycle detection: iterative DFS with a gray/black coloring; a back
  // edge into a gray node names the cycle path off the DFS stack.
  enum class Color { white, gray, black };
  std::vector<Color> color(nodes_.size(), Color::white);
  for (std::size_t root = 0; root < nodes_.size(); ++root) {
    if (color[root] != Color::white) continue;
    // Stack of (node, next successor slot to explore).
    std::vector<std::pair<std::size_t, std::size_t>> stack{{root, 0}};
    color[root] = Color::gray;
    while (!stack.empty()) {
      auto& [node, slot] = stack.back();
      if (slot < successors[node].size()) {
        const std::size_t next = successors[node][slot++];
        if (color[next] == Color::gray) {
          std::string path;
          bool in_cycle = false;
          for (const auto& [frame, unused] : stack) {
            (void)unused;
            in_cycle = in_cycle || frame == next;
            if (!in_cycle) continue;
            path += strutil::cat(nodes_[frame].stage.name, " -> ");
          }
          path += nodes_[next].stage.name;
          raise(Errc::invalid_argument,
                strutil::cat("graph '", name, "' has a dependency cycle: ",
                             path));
        }
        if (color[next] == Color::white) {
          color[next] = Color::gray;
          stack.emplace_back(next, 0);
        }
      } else {
        color[node] = Color::black;
        stack.pop_back();
      }
    }
  }

  // Producer check: in topological order (Kahn over node sequence, so
  // the traversal is deterministic), every consumed dataset must be
  // produced by an ancestor or admitted by the external predicate.
  std::vector<std::set<std::string>> reachable(nodes_.size());
  std::vector<std::size_t> via(nodes_.size(), SIZE_MAX);  // path naming
  std::deque<std::size_t> ready;
  for (std::size_t seq = 0; seq < nodes_.size(); ++seq) {
    if (indegree[seq] == 0) ready.push_back(seq);
  }
  while (!ready.empty()) {
    const std::size_t seq = ready.front();
    ready.pop_front();
    for (const auto& dataset : nodes_[seq].stage.consumes) {
      if (reachable[seq].count(dataset) > 0) continue;
      if (external && external(dataset)) continue;
      std::string path = nodes_[seq].stage.name;
      for (std::size_t at = via[seq]; at != SIZE_MAX; at = via[at]) {
        path = strutil::cat(nodes_[at].stage.name, " -> ", path);
      }
      raise(Errc::invalid_argument,
            strutil::cat("graph '", name, "': node '",
                         nodes_[seq].stage.name, "' (via ", path,
                         ") consumes '", dataset,
                         "', which no ancestor produces"));
    }
    std::set<std::string> downstream = reachable[seq];
    downstream.insert(nodes_[seq].stage.produces.begin(),
                      nodes_[seq].stage.produces.end());
    for (const std::size_t next : successors[seq]) {
      reachable[next].insert(downstream.begin(), downstream.end());
      if (via[next] == SIZE_MAX) via[next] = seq;
      if (--indegree[next] == 0) ready.push_back(next);
    }
  }
}

Graph Graph::from_pipeline(const Pipeline& pipeline) {
  Graph graph(pipeline.name);
  graph.placement = pipeline.placement;
  graph.task_retry_budget = pipeline.task_retry_budget;
  graph.tenant = pipeline.tenant;
  std::string previous;
  std::size_t previous_threshold = kAfterAllTasks;
  for (const Stage& stage : pipeline.stages) {
    GraphNode node;
    node.stage = stage;
    if (graph.has_node(node.stage.name)) {
      // Pipelines never needed unique stage names; key the node
      // uniquely but keep reporting the authored name.
      node.display = stage.name;
      node.stage.name = strutil::cat(stage.name, "#", graph.nodes().size());
    }
    const std::string key = node.stage.name;
    graph.add(std::move(node));
    if (!previous.empty()) {
      graph.depend(previous, key, {.after_tasks = previous_threshold});
    }
    previous = key;
    previous_threshold = stage.unblock_next_after;
  }
  return graph;
}

}  // namespace ripple::wf
