#pragma once

/// \file hyperopt.hpp
/// Hyperparameter optimization (Optuna stand-in, use case II-A).
///
/// The Cell Painting pipeline drives training through "multiple training
/// iterations, exploring various hyperparameter configurations". This
/// module provides the two strategies the example and benches use:
/// random search and successive halving (ASHA-style rungs without the
/// asynchrony). Objectives are minimized.
///
/// These classes are pure search state (suggest / report / promote).
/// To *execute* a successive-halving search as a workflow — one
/// dynamically spawned graph node per trial, a rung-collector join
/// per wave — use wf::HyperoptGraph (hyperopt_graph.hpp).

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "ripple/common/json.hpp"
#include "ripple/common/random.hpp"

namespace ripple::wf {

/// One tunable parameter.
struct ParamSpec {
  enum class Kind { real, log_real, integer, categorical };

  std::string name;
  Kind kind = Kind::real;
  double lo = 0.0;  ///< real/log_real/integer lower bound
  double hi = 1.0;  ///< upper bound (inclusive for integer)
  std::vector<std::string> choices;  ///< categorical values

  [[nodiscard]] static ParamSpec real(std::string name, double lo, double hi);
  [[nodiscard]] static ParamSpec log_real(std::string name, double lo,
                                          double hi);
  [[nodiscard]] static ParamSpec integer(std::string name, std::int64_t lo,
                                         std::int64_t hi);
  [[nodiscard]] static ParamSpec categorical(std::string name,
                                             std::vector<std::string> choices);

  /// Samples a value as a JSON scalar.
  [[nodiscard]] json::Value sample(common::Rng& rng) const;
};

struct Trial {
  std::size_t id = 0;
  json::Value params;  ///< object: name -> value
  double value = std::numeric_limits<double>::quiet_NaN();
  bool completed = false;
  bool pruned = false;
  std::size_t rung = 0;  ///< successive-halving rung that produced it
};

/// Uniform random search over the space.
class RandomSearch {
 public:
  RandomSearch(std::vector<ParamSpec> space, common::Rng rng);

  /// Draws the next trial (unlimited supply).
  [[nodiscard]] Trial suggest();

  /// Records a finished trial's objective value.
  void report(std::size_t trial_id, double value);

  [[nodiscard]] const std::vector<Trial>& trials() const noexcept {
    return trials_;
  }

  /// Best completed trial; throws when none completed.
  [[nodiscard]] const Trial& best() const;

  [[nodiscard]] std::size_t completed() const noexcept;

 private:
  std::vector<ParamSpec> space_;
  common::Rng rng_;
  std::vector<Trial> trials_;
};

/// Successive halving: `initial` configs at rung 0; after each rung the
/// best 1/eta fraction is promoted until one (or few) survive. Promoted
/// trials keep their params but receive new trial ids and higher rungs
/// (callers typically scale training budget with the rung).
class SuccessiveHalving {
 public:
  SuccessiveHalving(std::vector<ParamSpec> space, common::Rng rng,
                    std::size_t initial, std::size_t eta = 2);

  /// The trials of the current rung that still need results.
  [[nodiscard]] std::vector<Trial> pending() const;

  void report(std::size_t trial_id, double value);

  /// True when the current rung is fully reported.
  [[nodiscard]] bool rung_complete() const;

  /// Promotes the best 1/eta to the next rung. Returns the number of
  /// promoted trials; 0 means the search is finished.
  std::size_t advance_rung();

  [[nodiscard]] std::size_t current_rung() const noexcept { return rung_; }
  [[nodiscard]] bool finished() const noexcept { return finished_; }
  [[nodiscard]] const Trial& best() const;
  [[nodiscard]] const std::vector<Trial>& all_trials() const noexcept {
    return history_;
  }

 private:
  std::vector<ParamSpec> space_;
  common::Rng rng_;
  std::size_t eta_;
  std::size_t rung_ = 0;
  std::size_t next_id_ = 0;
  bool finished_ = false;
  std::vector<Trial> current_;
  std::vector<Trial> history_;
};

}  // namespace ripple::wf
