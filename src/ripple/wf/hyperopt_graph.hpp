#pragma once

/// \file hyperopt_graph.hpp
/// Successive-halving hyperparameter optimization as a dynamically
/// spawned workflow graph (the DAG rebuild of the hand-rolled rung
/// recursion in examples/cell_painting.cpp; strategies live in
/// hyperopt.hpp).
///
/// The submitted graph holds a single `search` seed node. When it
/// completes, its hook spawns one tolerant trial node per rung-0
/// config plus a task-less `rung-0` collector joining on all of them
/// — a fan-in. Each trial reports its objective from its completion
/// hook; the collector's hook advances the SuccessiveHalving rung and
/// spawns the next wave (trials depending on the collector, collector
/// `rung-k+1` joining them) until the search finishes. Every wave runs
/// concurrently across the run's pilots, trial failures score the
/// penalty objective without failing the graph, and the whole
/// expansion is deterministic: same seed, same trial keys, same
/// release order, same graph-event hash.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ripple/common/random.hpp"
#include "ripple/core/descriptions.hpp"
#include "ripple/wf/hyperopt.hpp"
#include "ripple/wf/workflow_manager.hpp"

namespace ripple::wf {

class HyperoptGraph {
 public:
  struct Config {
    std::string name = "hyperopt";
    std::vector<ParamSpec> space;
    std::size_t initial = 8;  ///< rung-0 configs
    std::size_t eta = 2;      ///< halving factor

    /// Builds the trial's (single) task — typically a "modeled" train
    /// task whose budget grows with `trial.rung`.
    std::function<core::TaskDescription(const Trial&)> make_task;

    /// Minimized objective of a finished trial. `outcome.ok` is false
    /// when the trial's task failed; return a penalty value then.
    std::function<double(const Trial&, const NodeOutcome&)> objective;
  };

  /// What the search found, delivered once to `on_done`.
  struct Report {
    std::string name;
    bool ok = false;     ///< graph healthy and at least one trial done
    Trial best;          ///< valid when `ok`
    std::vector<Trial> trials;  ///< full history across rungs
    std::size_t rungs = 0;      ///< rungs actually executed
    GraphResult graph;          ///< the underlying run's result
  };

  /// Starts the search on `manager` and returns the live run's Handle
  /// (the graph keeps growing through it until the search converges).
  /// `rng` drives config sampling — fork it from the session rng for
  /// reproducibility.
  static std::shared_ptr<WorkflowManager::Handle> run(
      WorkflowManager& manager, core::Pilot& pilot, Config config,
      common::Rng rng, std::function<void(const Report&)> on_done);
};

}  // namespace ripple::wf
