#include "ripple/wf/hyperopt_graph.hpp"

#include <utility>

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::wf {

namespace {

/// Shared between the seed node, every spawned trial/collector hook,
/// and the final report — alive as long as the run's callbacks are.
struct SearchState {
  HyperoptGraph::Config config;
  SuccessiveHalving search;
  std::shared_ptr<WorkflowManager::Handle> handle;
  std::string anchor;         ///< node the next wave hangs off
  std::size_t rungs = 0;      ///< waves actually spawned

  SearchState(HyperoptGraph::Config cfg, common::Rng rng)
      : config(std::move(cfg)),
        search(config.space, std::move(rng), config.initial, config.eta) {}
};

std::string trial_key(const SearchState& state, const Trial& trial) {
  return strutil::cat(state.config.name, ".trial-", trial.id);
}

/// Spawns the current rung's trial nodes plus the rung's collector
/// join node; the collector's hook advances the search and recurses.
void spawn_wave(const std::shared_ptr<SearchState>& state) {
  const auto pending = state->search.pending();
  if (pending.empty()) return;
  const std::size_t rung = state->search.current_rung();
  ++state->rungs;

  std::vector<std::string> trial_keys;
  trial_keys.reserve(pending.size());
  for (const Trial& trial : pending) {
    GraphNode node;
    node.stage.name = trial_key(*state, trial);
    node.stage.tasks.push_back(state->config.make_task(trial));
    // A bad config (or a failure-injected task) scores its penalty
    // objective; it must not fail the whole search.
    node.tolerate_failures = true;
    node.on_complete = [state, trial](const NodeOutcome& outcome) {
      state->search.report(trial.id,
                           state->config.objective(trial, outcome));
    };
    state->handle->spawn(state->anchor, std::move(node), {state->anchor});
    trial_keys.push_back(trial_key(*state, trial));
  }

  // Fan-in: the collector joins on every trial of the rung, so by the
  // time its hook runs all objectives of the rung are reported.
  GraphNode collector;
  collector.stage.name = strutil::cat(state->config.name, ".rung-", rung);
  collector.on_complete = [state](const NodeOutcome&) {
    if (!state->search.rung_complete()) return;
    if (state->search.advance_rung() > 0 && !state->search.finished()) {
      spawn_wave(state);
    }
  };
  const std::string collector_name = collector.stage.name;
  state->handle->spawn(state->anchor, std::move(collector), trial_keys);
  state->anchor = collector_name;
}

}  // namespace

std::shared_ptr<WorkflowManager::Handle> HyperoptGraph::run(
    WorkflowManager& manager, core::Pilot& pilot, Config config,
    common::Rng rng, std::function<void(const Report&)> on_done) {
  ensure(static_cast<bool>(config.make_task), Errc::invalid_argument,
         "HyperoptGraph: make_task is required");
  ensure(static_cast<bool>(config.objective), Errc::invalid_argument,
         "HyperoptGraph: objective is required");
  ensure(static_cast<bool>(on_done), Errc::invalid_argument,
         "HyperoptGraph: empty callback");
  ensure(!config.space.empty(), Errc::invalid_argument,
         "HyperoptGraph: empty parameter space");

  auto state = std::make_shared<SearchState>(std::move(config), std::move(rng));
  state->anchor = "search";

  Graph graph(state->config.name);
  GraphNode seed;
  seed.stage.name = "search";
  // The seed samples the rung-0 configs "at runtime": a short modeled
  // task anchors the timeline so its completion hook — the first
  // spawn wave — fires inside the event loop, after the run's Handle
  // exists.
  core::TaskDescription sample;
  sample.name = "sample-configs";
  sample.duration = common::Distribution::constant(1.0);
  seed.stage.tasks.push_back(std::move(sample));
  seed.on_complete = [state](const NodeOutcome&) { spawn_wave(state); };
  graph.add(std::move(seed));

  state->handle = manager.run_graph(
      std::move(graph), pilot,
      [state, on_done = std::move(on_done)](const GraphResult& result) {
        Report report;
        report.name = state->config.name;
        report.graph = result;
        report.trials = state->search.all_trials();
        report.rungs = state->rungs;
        bool any_completed = false;
        for (const auto& trial : report.trials) {
          any_completed = any_completed || trial.completed;
        }
        report.ok = result.ok && any_completed;
        if (any_completed) report.best = state->search.best();
        on_done(report);
      });
  return state->handle;
}

}  // namespace ripple::wf
