#include "ripple/wf/hyperopt.hpp"

#include <algorithm>
#include <cmath>

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::wf {

ParamSpec ParamSpec::real(std::string name, double lo, double hi) {
  ensure(lo < hi, Errc::invalid_argument, "real param: lo must be < hi");
  ParamSpec p;
  p.name = std::move(name);
  p.kind = Kind::real;
  p.lo = lo;
  p.hi = hi;
  return p;
}

ParamSpec ParamSpec::log_real(std::string name, double lo, double hi) {
  ensure(lo > 0.0 && lo < hi, Errc::invalid_argument,
         "log_real param: need 0 < lo < hi");
  ParamSpec p;
  p.name = std::move(name);
  p.kind = Kind::log_real;
  p.lo = lo;
  p.hi = hi;
  return p;
}

ParamSpec ParamSpec::integer(std::string name, std::int64_t lo,
                             std::int64_t hi) {
  ensure(lo <= hi, Errc::invalid_argument, "integer param: lo must be <= hi");
  ParamSpec p;
  p.name = std::move(name);
  p.kind = Kind::integer;
  p.lo = static_cast<double>(lo);
  p.hi = static_cast<double>(hi);
  return p;
}

ParamSpec ParamSpec::categorical(std::string name,
                                 std::vector<std::string> choices) {
  ensure(!choices.empty(), Errc::invalid_argument,
         "categorical param needs choices");
  ParamSpec p;
  p.name = std::move(name);
  p.kind = Kind::categorical;
  p.choices = std::move(choices);
  return p;
}

json::Value ParamSpec::sample(common::Rng& rng) const {
  switch (kind) {
    case Kind::real: return json::Value(rng.uniform(lo, hi));
    case Kind::log_real:
      return json::Value(
          std::exp(rng.uniform(std::log(lo), std::log(hi))));
    case Kind::integer:
      return json::Value(rng.uniform_int(static_cast<std::int64_t>(lo),
                                         static_cast<std::int64_t>(hi)));
    case Kind::categorical: {
      const auto index = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(choices.size()) - 1));
      return json::Value(choices[index]);
    }
  }
  return json::Value();
}

namespace {

json::Value sample_params(const std::vector<ParamSpec>& space,
                          common::Rng& rng) {
  json::Value params = json::Value::object();
  for (const auto& spec : space) params.set(spec.name, spec.sample(rng));
  return params;
}

}  // namespace

// ---------------------------------------------------------------------------
// RandomSearch
// ---------------------------------------------------------------------------

RandomSearch::RandomSearch(std::vector<ParamSpec> space, common::Rng rng)
    : space_(std::move(space)), rng_(rng) {
  ensure(!space_.empty(), Errc::invalid_argument,
         "search space must not be empty");
}

Trial RandomSearch::suggest() {
  Trial trial;
  trial.id = trials_.size();
  trial.params = sample_params(space_, rng_);
  trials_.push_back(trial);
  return trial;
}

void RandomSearch::report(std::size_t trial_id, double value) {
  ensure(trial_id < trials_.size(), Errc::not_found,
         strutil::cat("unknown trial ", trial_id));
  Trial& trial = trials_[trial_id];
  ensure(!trial.completed, Errc::invalid_state,
         strutil::cat("trial ", trial_id, " already reported"));
  trial.value = value;
  trial.completed = true;
}

const Trial& RandomSearch::best() const {
  const Trial* best = nullptr;
  for (const auto& trial : trials_) {
    if (!trial.completed) continue;
    if (best == nullptr || trial.value < best->value) best = &trial;
  }
  ensure(best != nullptr, Errc::invalid_state, "no completed trials");
  return *best;
}

std::size_t RandomSearch::completed() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(trials_.begin(), trials_.end(),
                    [](const Trial& t) { return t.completed; }));
}

// ---------------------------------------------------------------------------
// SuccessiveHalving
// ---------------------------------------------------------------------------

SuccessiveHalving::SuccessiveHalving(std::vector<ParamSpec> space,
                                     common::Rng rng, std::size_t initial,
                                     std::size_t eta)
    : space_(std::move(space)), rng_(rng), eta_(eta) {
  ensure(!space_.empty(), Errc::invalid_argument,
         "search space must not be empty");
  ensure(initial > 0, Errc::invalid_argument,
         "successive halving needs >= 1 initial config");
  ensure(eta_ >= 2, Errc::invalid_argument, "eta must be >= 2");
  current_.reserve(initial);
  for (std::size_t i = 0; i < initial; ++i) {
    Trial trial;
    trial.id = next_id_++;
    trial.params = sample_params(space_, rng_);
    trial.rung = 0;
    current_.push_back(std::move(trial));
  }
}

std::vector<Trial> SuccessiveHalving::pending() const {
  std::vector<Trial> out;
  for (const auto& trial : current_) {
    if (!trial.completed) out.push_back(trial);
  }
  return out;
}

void SuccessiveHalving::report(std::size_t trial_id, double value) {
  for (auto& trial : current_) {
    if (trial.id == trial_id) {
      ensure(!trial.completed, Errc::invalid_state,
             strutil::cat("trial ", trial_id, " already reported"));
      trial.value = value;
      trial.completed = true;
      return;
    }
  }
  raise(Errc::not_found,
        strutil::cat("trial ", trial_id, " not in the current rung"));
}

bool SuccessiveHalving::rung_complete() const {
  return std::all_of(current_.begin(), current_.end(),
                     [](const Trial& t) { return t.completed; });
}

std::size_t SuccessiveHalving::advance_rung() {
  ensure(rung_complete(), Errc::invalid_state,
         "advance_rung before all trials reported");
  ensure(!finished_, Errc::invalid_state, "search already finished");

  std::sort(current_.begin(), current_.end(),
            [](const Trial& a, const Trial& b) { return a.value < b.value; });
  for (auto& trial : history_) (void)trial;
  const std::size_t survivors =
      std::max<std::size_t>(1, current_.size() / eta_);
  for (std::size_t i = survivors; i < current_.size(); ++i) {
    current_[i].pruned = true;
  }
  history_.insert(history_.end(), current_.begin(), current_.end());

  if (current_.size() <= 1) {
    finished_ = true;
    current_.clear();
    return 0;
  }
  std::vector<Trial> promoted;
  promoted.reserve(survivors);
  ++rung_;
  for (std::size_t i = 0; i < survivors; ++i) {
    Trial next;
    next.id = next_id_++;
    next.params = current_[i].params;
    next.rung = rung_;
    promoted.push_back(std::move(next));
  }
  current_ = std::move(promoted);
  return current_.size();
}

const Trial& SuccessiveHalving::best() const {
  const Trial* best = nullptr;
  for (const auto& trial : history_) {
    if (!trial.completed) continue;
    if (best == nullptr || trial.value < best->value) best = &trial;
  }
  ensure(best != nullptr, Errc::invalid_state, "no completed trials");
  return *best;
}

}  // namespace ripple::wf
