#include "ripple/wf/workflow_manager.hpp"

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"
#include "ripple/data/placement_advisor.hpp"
#include "ripple/platform/cluster.hpp"

namespace ripple::wf {

WorkflowManager::WorkflowManager(core::Session& session)
    : session_(session),
      log_(session.runtime().make_logger("workflow_manager")) {}

void WorkflowManager::run_pipeline(
    Pipeline pipeline, core::Pilot& pilot,
    std::function<void(const PipelineResult&)> on_done) {
  run_pipeline(std::move(pipeline), std::vector<core::Pilot*>{&pilot},
               std::move(on_done));
}

void WorkflowManager::run_pipeline(
    Pipeline pipeline, std::vector<core::Pilot*> pilots,
    std::function<void(const PipelineResult&)> on_done) {
  ensure(!pipeline.stages.empty(), Errc::invalid_argument,
         strutil::cat("pipeline '", pipeline.name, "' has no stages"));
  ensure(!pilots.empty(), Errc::invalid_argument,
         strutil::cat("pipeline '", pipeline.name, "' has no pilots"));
  ensure(static_cast<bool>(on_done), Errc::invalid_argument,
         "run_pipeline: empty callback");

  auto run = std::make_shared<PipelineRun>();
  run->name = pipeline.name;
  run->pilots = std::move(pilots);
  run->placement = pipeline.placement;
  run->on_done = std::move(on_done);
  run->started_at = session_.now();
  run->retries_left = pipeline.task_retry_budget;
  run->stages.reserve(pipeline.stages.size());
  for (auto& stage : pipeline.stages) {
    // Lineage: every stage that reads a dataset holds one reference;
    // the catalog keeps the dataset evict-proof until they all finish.
    for (const auto& name : stage.consumes) {
      session_.data().catalog().add_consumers(name, 1);
    }
    StageRun stage_run;
    stage_run.stage = std::move(stage);
    run->stages.push_back(std::move(stage_run));
  }
  log_.info(strutil::cat("pipeline '", run->name, "' started (",
                         run->stages.size(), " stages, ",
                         run->pilots.size(), " pilots)"));
  session_.counters().add("wf.pipelines");
  if (session_.tracer().enabled()) {
    run->trace = session_.tracer().begin(
        run->name, "wf", run->name, run->started_at, 0,
        {{"stages", std::to_string(run->stages.size())},
         {"pilots", std::to_string(run->pilots.size())}});
  }
  start_stage(run, 0);
}

void WorkflowManager::start_stage(const std::shared_ptr<PipelineRun>& run,
                                  std::size_t index) {
  if (index >= run->stages.size()) return;
  StageRun& stage_run = run->stages[index];
  stage_run.started_at = session_.now();

  stage_run.pilot = predict_pilot(*run, stage_run.stage);
  const std::string zone = stage_run.pilot->cluster().name();
  log_.info(strutil::cat("pipeline '", run->name, "': stage '",
                         stage_run.stage.name, "' starting on ", zone));
  session_.counters().add("wf.stages");
  if (session_.tracer().enabled()) {
    stage_run.trace = session_.tracer().begin(
        stage_run.stage.name, "wf", run->name, stage_run.started_at,
        run->trace, {{"zone", zone}});
  }

  // Stage-level data staging overlaps service bootstrap; tasks launch
  // once both have cleared.
  if (stage_run.stage.consumes.empty()) {
    stage_run.data_ready = true;
  } else {
    stage_run.stage_batch = session_.data().stage_all_tracked(
        stage_run.stage.consumes, zone,
        [this, run, index, zone](bool ok,
                                 const std::string& failed_dataset) {
          StageRun& sr = run->stages[index];
          sr.stage_batch.reset();
          // The stage may have completed already (service bootstrap
          // failure); a late-landing pin would leak.
          if (sr.completed) return;
          if (!ok) {
            run->failed = true;
            log_.error(strutil::cat("pipeline '", run->name,
                                    "': staging '", failed_dataset,
                                    "' into ", zone, " failed"));
            complete_stage(run, index);
            return;
          }
          for (const auto& name : sr.stage.consumes) {
            session_.data().catalog().pin(name, zone);
          }
          sr.data_pinned = true;
          sr.data_ready = true;
          maybe_launch_tasks(run, index);
        });
  }

  if (stage_run.stage.services.empty()) {
    stage_run.services_ready = true;
    maybe_launch_tasks(run, index);
    return;
  }
  const auto on_services_ready = [this, run, index](bool ok) {
    if (!ok) {
      run->failed = true;
      log_.error(strutil::cat("pipeline '", run->name,
                              "': stage services failed"));
      complete_stage(run, index);
      return;
    }
    run->stages[index].services_ready = true;
    maybe_launch_tasks(run, index);
  };
  if (stage_run.stage.autoscale.enabled) {
    // Elastic stage: every service description seeds a replica group.
    const StageAutoscale& as = stage_run.stage.autoscale;
    ml::AutoscalerConfig config;
    config.min_replicas = as.min_replicas;
    config.max_replicas = as.max_replicas;
    config.scale_up_outstanding = as.scale_up_outstanding;
    config.scale_down_outstanding = as.scale_down_outstanding;
    config.poll_interval = as.poll_interval;
    config.cooldown = as.cooldown;
    config.target_p95 = as.target_p95;
    config.headroom_fraction = as.headroom_fraction;
    config.down_sustain = as.down_sustain;
    auto ready = std::make_shared<std::size_t>(
        stage_run.stage.services.size());
    auto all_ok = std::make_shared<bool>(true);
    for (const auto& desc : stage_run.stage.services) {
      stage_run.autoscalers.push_back(std::make_unique<ml::Autoscaler>(
          session_, *stage_run.pilot, desc, config));
      stage_run.autoscalers.back()->start(
          [ready, all_ok, on_services_ready](bool ok) {
            *all_ok = *all_ok && ok;
            if (--(*ready) == 0) on_services_ready(*all_ok);
          });
    }
    // The initial replicas double as the tasks' readiness barrier.
    for (const auto& scaler : stage_run.autoscalers) {
      const auto& uids = scaler->replicas();
      stage_run.service_uids.insert(stage_run.service_uids.end(),
                                    uids.begin(), uids.end());
    }
    return;
  }
  // One submit_all batch: priorities are enacted across the whole
  // stage and the pilot's wait queue is scanned once, not N times.
  stage_run.service_uids = session_.services().submit_all(
      *stage_run.pilot, stage_run.stage.services);
  session_.services().when_ready(stage_run.service_uids,
                                 on_services_ready);
}

core::Pilot* WorkflowManager::predict_pilot(const PipelineRun& run,
                                            const Stage& stage) const {
  if (run.placement != Placement::locality) return run.pilots.front();
  const data::PlacementAdvisor advisor(session_.data().catalog(),
                                       &session_.data().engine(),
                                       &session_.scheduler());
  return advisor.best(run.pilots, stage.consumes);
}

void WorkflowManager::prefetch_next_stage(
    const std::shared_ptr<PipelineRun>& run, std::size_t index) {
  if (index + 1 >= run->stages.size() || run->failed) return;
  const StageRun& next = run->stages[index + 1];
  if (next.started_at >= 0 || next.stage.consumes.empty()) return;
  // Replication-ahead: while this stage computes, idle links push the
  // next stage's inputs toward where it will probably run. A wrong
  // prediction costs only budgeted idle-link bytes — the next stage's
  // own staging re-resolves placement when it actually starts.
  core::Pilot* predicted = predict_pilot(*run, next.stage);
  if (predicted == nullptr) return;
  const std::size_t started = session_.data().prefetch(
      next.stage.consumes, predicted->cluster().name());
  if (started > 0) {
    log_.info(strutil::cat("pipeline '", run->name, "': prefetching ",
                           started, " dataset(s) for stage '",
                           next.stage.name, "' toward ",
                           predicted->cluster().name()));
  }
}

void WorkflowManager::maybe_launch_tasks(
    const std::shared_ptr<PipelineRun>& run, std::size_t index) {
  StageRun& stage_run = run->stages[index];
  if (stage_run.tasks_launched || stage_run.completed) return;
  if (!stage_run.services_ready || !stage_run.data_ready) return;
  stage_run.tasks_launched = true;
  launch_stage_tasks(run, index);
  prefetch_next_stage(run, index);
}

void WorkflowManager::launch_stage_tasks(
    const std::shared_ptr<PipelineRun>& run, std::size_t index) {
  StageRun& stage_run = run->stages[index];
  if (stage_run.stage.tasks.empty()) {
    complete_stage(run, index);
    return;
  }
  stage_run.task_uids.resize(stage_run.stage.tasks.size());
  for (std::size_t i = 0; i < stage_run.stage.tasks.size(); ++i) {
    submit_stage_task(run, index, i);
  }
}

void WorkflowManager::submit_stage_task(
    const std::shared_ptr<PipelineRun>& run, std::size_t index,
    std::size_t task_index) {
  StageRun& stage_run = run->stages[index];
  core::TaskDescription desc = stage_run.stage.tasks[task_index];
  // Stage tasks implicitly require the stage's services.
  for (const auto& svc : stage_run.service_uids) {
    desc.requires_services.push_back(svc);
  }
  const std::string uid = session_.tasks().submit(*stage_run.pilot, desc);
  stage_run.task_uids[task_index] = uid;
  session_.tasks().when_done({uid}, [this, run, index, task_index](bool ok) {
    on_task_terminal(run, index, task_index, ok);
  });
}

void WorkflowManager::on_task_terminal(
    const std::shared_ptr<PipelineRun>& run, std::size_t index,
    std::size_t task_index, bool ok) {
  StageRun& stage_run = run->stages[index];
  if (!ok && run->retries_left > 0 && !stage_run.completed) {
    // Workflow-level backstop above the TaskManager's in-place
    // restarts: the attempt is terminally FAILED, but the pipeline's
    // retry budget buys a fresh submission from the same description.
    --run->retries_left;
    ++run->tasks_retried;
    session_.counters().add("wf.retries");
    log_.info(strutil::cat("pipeline '", run->name, "': retrying task ",
                           task_index, " of stage '", stage_run.stage.name,
                           "' (", run->retries_left, " retries left)"));
    submit_stage_task(run, index, task_index);
    return;
  }
  if (ok) {
    ++stage_run.tasks_done;
  } else {
    ++stage_run.tasks_failed;
    run->failed = true;
  }
  const std::size_t terminal = stage_run.tasks_done + stage_run.tasks_failed;
  if (terminal == stage_run.task_uids.size()) {
    // Full completion releases the next stage through complete_stage,
    // after the output contract has been checked.
    complete_stage(run, index);
  } else {
    maybe_release_next(run, index);
  }
}

void WorkflowManager::maybe_release_next(
    const std::shared_ptr<PipelineRun>& run, std::size_t index) {
  StageRun& stage_run = run->stages[index];
  if (stage_run.next_released || run->failed) return;
  if (stage_run.tasks_done < stage_run.stage.unblock_threshold()) return;
  stage_run.next_released = true;
  if (index + 1 < run->stages.size()) {
    log_.info(strutil::cat("pipeline '", run->name, "': stage '",
                           stage_run.stage.name, "' reached threshold, ",
                           "releasing next stage asynchronously"));
    start_stage(run, index + 1);
  }
}

void WorkflowManager::release_stage_data(StageRun& stage_run) {
  if (stage_run.lineage_released) return;
  stage_run.lineage_released = true;
  auto& catalog = session_.data().catalog();
  const std::string zone = stage_run.pilot->cluster().name();
  for (const auto& name : stage_run.stage.consumes) {
    if (stage_run.data_pinned) catalog.unpin(name, zone);
    // This stage's read is over; when every consuming stage has
    // finished, the intermediate becomes evictable.
    catalog.consume_done(name);
  }
}

void WorkflowManager::complete_stage(const std::shared_ptr<PipelineRun>& run,
                                     std::size_t index) {
  StageRun& stage_run = run->stages[index];
  if (stage_run.completed) return;
  stage_run.completed = true;
  stage_run.finished_at = session_.now();
  ++run->finished_stages;
  if (stage_run.stage_batch) {
    // Completing with transfers still in flight (service bootstrap
    // failed): abandon them so they stop consuming link bandwidth.
    session_.data().cancel_batch(stage_run.stage_batch);
    stage_run.stage_batch.reset();
  }
  release_stage_data(stage_run);
  // Declared outputs are a contract: completing without having
  // registered one is a failure the downstream stages would otherwise
  // hit as a confusing missing-dataset error.
  if (!run->failed) {
    const std::string zone = stage_run.pilot->cluster().name();
    for (const auto& name : stage_run.stage.produces) {
      if (!session_.data().has(name)) {
        run->failed = true;
        log_.error(strutil::cat("pipeline '", run->name, "': stage '",
                                stage_run.stage.name,
                                "' declared output '", name,
                                "' but never produced it"));
      } else if (session_.data().available_in(name, zone)) {
        // Freshly produced: mark recently used so store pressure does
        // not evict it before its consumers run.
        session_.data().catalog().touch(name, zone);
      }
    }
  }
  session_.metrics().add_duration(
      strutil::cat("pipeline.", run->name, ".stage.", stage_run.stage.name),
      stage_run.finished_at - stage_run.started_at);
  if (stage_run.trace != 0) {
    auto& tracer = session_.tracer();
    tracer.arg(stage_run.trace, "tasks_done",
               std::to_string(stage_run.tasks_done));
    tracer.arg(stage_run.trace, "tasks_failed",
               std::to_string(stage_run.tasks_failed));
    tracer.end(stage_run.trace, stage_run.finished_at);
    stage_run.trace = 0;
  }
  log_.info(strutil::cat("pipeline '", run->name, "': stage '",
                         stage_run.stage.name, "' complete (",
                         stage_run.tasks_done, " done, ",
                         stage_run.tasks_failed, " failed)"));

  if (stage_run.stage.stop_services_after) {
    // Elastic stages drain through their autoscalers (which also stop
    // any scaled-up replicas the stage's uid list never saw).
    for (auto& scaler : stage_run.autoscalers) scaler->stop();
    if (stage_run.autoscalers.empty()) {
      for (const auto& uid : stage_run.service_uids) {
        session_.services().stop(uid);
      }
    }
  }

  if (run->failed) {
    finish_pipeline(run);
    return;
  }
  if (!stage_run.next_released) {
    stage_run.next_released = true;
    if (index + 1 < run->stages.size()) {
      start_stage(run, index + 1);
      return;
    }
  }
  if (run->finished_stages == run->stages.size()) finish_pipeline(run);
}

void WorkflowManager::finish_pipeline(
    const std::shared_ptr<PipelineRun>& run) {
  if (run->reported) return;
  // With async coupling a failure may surface while later stages are
  // still running; report once, when every started stage completed.
  for (const auto& stage_run : run->stages) {
    if (stage_run.started_at >= 0 && !stage_run.completed) return;
  }
  run->reported = true;

  // Stages that never started (failure upstream) still hold the
  // lineage references taken at submission; drop them, or the catalog
  // would keep their datasets evict-proof forever.
  for (auto& stage_run : run->stages) {
    if (stage_run.started_at >= 0 || stage_run.lineage_released) continue;
    stage_run.lineage_released = true;
    for (const auto& name : stage_run.stage.consumes) {
      session_.data().catalog().consume_done(name);
    }
  }

  PipelineResult result;
  result.pipeline = run->name;
  result.ok = !run->failed;
  result.makespan = session_.now() - run->started_at;
  for (const auto& stage_run : run->stages) {
    if (stage_run.started_at < 0) continue;
    result.stage_names.push_back(stage_run.stage.name);
    result.stage_durations.push_back(stage_run.finished_at -
                                     stage_run.started_at);
    result.tasks_done += stage_run.tasks_done;
    result.tasks_failed += stage_run.tasks_failed;
  }
  result.tasks_retried = run->tasks_retried;
  if (run->trace != 0) {
    session_.tracer().arg(run->trace, "ok", result.ok ? "true" : "false");
    session_.tracer().end(run->trace, session_.now());
    run->trace = 0;
  }
  results_[run->name] = result;
  session_.metrics().add_duration(
      strutil::cat("pipeline.", run->name, ".makespan"), result.makespan);
  log_.info(strutil::cat("pipeline '", run->name, "' ",
                         result.ok ? "completed" : "FAILED", " in ",
                         strutil::format_duration(result.makespan)));
  session_.loop().post(
      [on_done = run->on_done, result] { on_done(result); });
}

}  // namespace ripple::wf
