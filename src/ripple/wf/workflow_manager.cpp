#include "ripple/wf/workflow_manager.hpp"

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::wf {

WorkflowManager::WorkflowManager(core::Session& session)
    : session_(session),
      log_(session.runtime().make_logger("workflow_manager")) {}

void WorkflowManager::run_pipeline(
    Pipeline pipeline, core::Pilot& pilot,
    std::function<void(const PipelineResult&)> on_done) {
  ensure(!pipeline.stages.empty(), Errc::invalid_argument,
         strutil::cat("pipeline '", pipeline.name, "' has no stages"));
  ensure(static_cast<bool>(on_done), Errc::invalid_argument,
         "run_pipeline: empty callback");

  auto run = std::make_shared<PipelineRun>();
  run->name = pipeline.name;
  run->pilot = &pilot;
  run->on_done = std::move(on_done);
  run->started_at = session_.now();
  run->stages.reserve(pipeline.stages.size());
  for (auto& stage : pipeline.stages) {
    StageRun stage_run;
    stage_run.stage = std::move(stage);
    run->stages.push_back(std::move(stage_run));
  }
  log_.info(strutil::cat("pipeline '", run->name, "' started (",
                         run->stages.size(), " stages)"));
  start_stage(run, 0);
}

void WorkflowManager::start_stage(const std::shared_ptr<PipelineRun>& run,
                                  std::size_t index) {
  if (index >= run->stages.size()) return;
  StageRun& stage_run = run->stages[index];
  stage_run.started_at = session_.now();
  log_.info(strutil::cat("pipeline '", run->name, "': stage '",
                         stage_run.stage.name, "' starting"));

  if (stage_run.stage.services.empty()) {
    launch_stage_tasks(run, index);
    return;
  }
  const auto on_services_ready = [this, run, index](bool ok) {
    if (!ok) {
      run->failed = true;
      log_.error(strutil::cat("pipeline '", run->name,
                              "': stage services failed"));
      complete_stage(run, index);
      return;
    }
    launch_stage_tasks(run, index);
  };
  if (stage_run.stage.autoscale.enabled) {
    // Elastic stage: every service description seeds a replica group.
    const StageAutoscale& as = stage_run.stage.autoscale;
    ml::AutoscalerConfig config;
    config.min_replicas = as.min_replicas;
    config.max_replicas = as.max_replicas;
    config.scale_up_outstanding = as.scale_up_outstanding;
    config.scale_down_outstanding = as.scale_down_outstanding;
    config.poll_interval = as.poll_interval;
    config.cooldown = as.cooldown;
    auto ready = std::make_shared<std::size_t>(
        stage_run.stage.services.size());
    auto all_ok = std::make_shared<bool>(true);
    for (const auto& desc : stage_run.stage.services) {
      stage_run.autoscalers.push_back(std::make_unique<ml::Autoscaler>(
          session_, *run->pilot, desc, config));
      stage_run.autoscalers.back()->start(
          [this, run, index, ready, all_ok, on_services_ready](bool ok) {
            *all_ok = *all_ok && ok;
            if (--(*ready) == 0) on_services_ready(*all_ok);
          });
    }
    // The initial replicas double as the tasks' readiness barrier.
    for (const auto& scaler : stage_run.autoscalers) {
      const auto& uids = scaler->replicas();
      stage_run.service_uids.insert(stage_run.service_uids.end(),
                                    uids.begin(), uids.end());
    }
    return;
  }
  // One submit_all batch: priorities are enacted across the whole
  // stage and the pilot's wait queue is scanned once, not N times.
  stage_run.service_uids = session_.services().submit_all(
      *run->pilot, stage_run.stage.services);
  session_.services().when_ready(stage_run.service_uids,
                                 on_services_ready);
}

void WorkflowManager::launch_stage_tasks(
    const std::shared_ptr<PipelineRun>& run, std::size_t index) {
  StageRun& stage_run = run->stages[index];
  if (stage_run.stage.tasks.empty()) {
    complete_stage(run, index);
    return;
  }
  for (auto desc : stage_run.stage.tasks) {
    // Stage tasks implicitly require the stage's services.
    for (const auto& svc : stage_run.service_uids) {
      desc.requires_services.push_back(svc);
    }
    const std::string uid = session_.tasks().submit(*run->pilot, desc);
    stage_run.task_uids.push_back(uid);
    session_.tasks().when_done({uid}, [this, run, index](bool ok) {
      on_task_terminal(run, index, ok);
    });
  }
}

void WorkflowManager::on_task_terminal(
    const std::shared_ptr<PipelineRun>& run, std::size_t index, bool ok) {
  StageRun& stage_run = run->stages[index];
  if (ok) {
    ++stage_run.tasks_done;
  } else {
    ++stage_run.tasks_failed;
    run->failed = true;
  }
  maybe_release_next(run, index);
  const std::size_t terminal = stage_run.tasks_done + stage_run.tasks_failed;
  if (terminal == stage_run.task_uids.size()) complete_stage(run, index);
}

void WorkflowManager::maybe_release_next(
    const std::shared_ptr<PipelineRun>& run, std::size_t index) {
  StageRun& stage_run = run->stages[index];
  if (stage_run.next_released || run->failed) return;
  if (stage_run.tasks_done < stage_run.stage.unblock_threshold()) return;
  stage_run.next_released = true;
  if (index + 1 < run->stages.size()) {
    log_.info(strutil::cat("pipeline '", run->name, "': stage '",
                           stage_run.stage.name, "' reached threshold, ",
                           "releasing next stage asynchronously"));
    start_stage(run, index + 1);
  }
}

void WorkflowManager::complete_stage(const std::shared_ptr<PipelineRun>& run,
                                     std::size_t index) {
  StageRun& stage_run = run->stages[index];
  if (stage_run.completed) return;
  stage_run.completed = true;
  stage_run.finished_at = session_.now();
  ++run->finished_stages;
  session_.metrics().add_duration(
      strutil::cat("pipeline.", run->name, ".stage.", stage_run.stage.name),
      stage_run.finished_at - stage_run.started_at);
  log_.info(strutil::cat("pipeline '", run->name, "': stage '",
                         stage_run.stage.name, "' complete (",
                         stage_run.tasks_done, " done, ",
                         stage_run.tasks_failed, " failed)"));

  if (stage_run.stage.stop_services_after) {
    // Elastic stages drain through their autoscalers (which also stop
    // any scaled-up replicas the stage's uid list never saw).
    for (auto& scaler : stage_run.autoscalers) scaler->stop();
    if (stage_run.autoscalers.empty()) {
      for (const auto& uid : stage_run.service_uids) {
        session_.services().stop(uid);
      }
    }
  }

  if (run->failed) {
    finish_pipeline(run);
    return;
  }
  if (!stage_run.next_released) {
    stage_run.next_released = true;
    if (index + 1 < run->stages.size()) {
      start_stage(run, index + 1);
      return;
    }
  }
  if (run->finished_stages == run->stages.size()) finish_pipeline(run);
}

void WorkflowManager::finish_pipeline(
    const std::shared_ptr<PipelineRun>& run) {
  if (run->reported) return;
  // With async coupling a failure may surface while later stages are
  // still running; report once, when every started stage completed.
  for (const auto& stage_run : run->stages) {
    if (stage_run.started_at >= 0 && !stage_run.completed) return;
  }
  run->reported = true;

  PipelineResult result;
  result.pipeline = run->name;
  result.ok = !run->failed;
  result.makespan = session_.now() - run->started_at;
  for (const auto& stage_run : run->stages) {
    if (stage_run.started_at < 0) continue;
    result.stage_names.push_back(stage_run.stage.name);
    result.stage_durations.push_back(stage_run.finished_at -
                                     stage_run.started_at);
    result.tasks_done += stage_run.tasks_done;
    result.tasks_failed += stage_run.tasks_failed;
  }
  results_[run->name] = result;
  session_.metrics().add_duration(
      strutil::cat("pipeline.", run->name, ".makespan"), result.makespan);
  log_.info(strutil::cat("pipeline '", run->name, "' ",
                         result.ok ? "completed" : "FAILED", " in ",
                         strutil::format_duration(result.makespan)));
  session_.loop().post(
      [on_done = run->on_done, result] { on_done(result); });
}

}  // namespace ripple::wf
