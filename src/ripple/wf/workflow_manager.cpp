#include "ripple/wf/workflow_manager.hpp"

#include <algorithm>
#include <set>

#include "ripple/common/error.hpp"
#include "ripple/common/hash.hpp"
#include "ripple/common/strutil.hpp"
#include "ripple/data/placement_advisor.hpp"
#include "ripple/platform/cluster.hpp"

namespace ripple::wf {

namespace {
std::string event_time(double time) { return strutil::format_fixed(time, 3); }
}  // namespace

WorkflowManager::WorkflowManager(core::Session& session)
    : session_(session),
      log_(session.runtime().make_logger("workflow_manager")) {}

// --- entry points ----------------------------------------------------------

std::shared_ptr<WorkflowManager::Handle> WorkflowManager::run_graph(
    Graph graph, core::Pilot& pilot,
    std::function<void(const GraphResult&)> on_done) {
  return run_graph(std::move(graph), std::vector<core::Pilot*>{&pilot},
                   std::move(on_done));
}

std::shared_ptr<WorkflowManager::Handle> WorkflowManager::run_graph(
    Graph graph, std::vector<core::Pilot*> pilots,
    std::function<void(const GraphResult&)> on_done) {
  ensure(static_cast<bool>(on_done), Errc::invalid_argument,
         "run_graph: empty callback");
  // Reject cycles and consumed-but-never-produced datasets up front;
  // datasets the session already knows count as external inputs.
  graph.validate(
      [this](const std::string& name) { return session_.data().has(name); });
  return launch_graph(std::move(graph), std::move(pilots), false,
                      std::move(on_done), {});
}

void WorkflowManager::run_pipeline(
    Pipeline pipeline, core::Pilot& pilot,
    std::function<void(const PipelineResult&)> on_done) {
  run_pipeline(std::move(pipeline), std::vector<core::Pilot*>{&pilot},
               std::move(on_done));
}

void WorkflowManager::run_pipeline(
    Pipeline pipeline, std::vector<core::Pilot*> pilots,
    std::function<void(const PipelineResult&)> on_done) {
  ensure(!pipeline.stages.empty(), Errc::invalid_argument,
         strutil::cat("pipeline '", pipeline.name, "' has no stages"));
  ensure(static_cast<bool>(on_done), Errc::invalid_argument,
         "run_pipeline: empty callback");
  // The adapter skips Graph::validate's producer check: pipelines have
  // always been free to consume datasets registered after submission
  // or produced by task stage-out without a declared contract (a chain
  // cannot have cycles either way).
  launch_graph(Graph::from_pipeline(pipeline), std::move(pilots), true, {},
               std::move(on_done));
}

std::shared_ptr<WorkflowManager::Handle> WorkflowManager::launch_graph(
    Graph graph, std::vector<core::Pilot*> pilots, bool pipeline_mode,
    std::function<void(const GraphResult&)> on_done,
    std::function<void(const PipelineResult&)> pipeline_done) {
  ensure(!graph.nodes().empty(), Errc::invalid_argument,
         strutil::cat("graph '", graph.name, "' has no nodes"));
  ensure(!pilots.empty(), Errc::invalid_argument,
         strutil::cat("graph '", graph.name, "' has no pilots"));

  auto run = std::make_shared<GraphRun>();
  run->name = graph.name;
  run->pilots = std::move(pilots);
  run->placement = graph.placement;
  run->tenant = graph.tenant;
  run->on_done = std::move(on_done);
  run->pipeline_done = std::move(pipeline_done);
  run->pipeline_mode = pipeline_mode;
  run->started_at = session_.now();
  run->retries_left = graph.task_retry_budget;
  run->event_hash = common::kFnvOffsetBasis;
  for (const GraphNode& graph_node : graph.nodes()) {
    NodeRun node;
    node.node = graph_node;
    node.seq = run->nodes.size();
    // Lineage: every node that reads a dataset holds one reference;
    // the catalog keeps the dataset evict-proof until all consuming
    // nodes have finished (or been pruned).
    for (const auto& name : node.node.stage.consumes) {
      session_.data().catalog().add_consumers(name, 1, run->tenant);
    }
    run->index.emplace(node.node.stage.name, node.seq);
    run->nodes.push_back(std::move(node));
  }
  for (const GraphEdge& graph_edge : graph.edges()) {
    EdgeRun edge;
    edge.from = graph_edge.from;
    edge.to = graph_edge.to;
    edge.after_tasks = graph_edge.after_tasks;
    edge.conditional = graph_edge.conditional;
    const std::size_t edge_index = run->edges.size();
    run->edges.push_back(edge);
    run->nodes[edge.from].out_edges.push_back(edge_index);
    run->nodes[edge.to].in_edges.push_back(edge_index);
    ++run->nodes[edge.to].preds_unsatisfied;
  }

  log_.info(strutil::cat(pipeline_mode ? "pipeline '" : "graph '", run->name,
                         "' started (", run->nodes.size(), " nodes, ",
                         run->edges.size(), " edges, ", run->pilots.size(),
                         " pilots)"));
  session_.counters().add(pipeline_mode ? "wf.pipelines" : "wf.graphs");
  if (session_.tracer().enabled()) {
    run->trace = session_.tracer().begin(
        run->name, "wf", run->name, run->started_at, 0,
        {{pipeline_mode ? "stages" : "nodes",
          std::to_string(run->nodes.size())},
         {"pilots", std::to_string(run->pilots.size())}});
    if (!run->tenant.empty()) {
      session_.tracer().arg(run->trace, "tenant", run->tenant);
    }
  }

  // The initial frontier: every node with no dependency edges.
  std::vector<std::size_t> roots;
  for (const auto& node : run->nodes) {
    if (node.preds_unsatisfied == 0) roots.push_back(node.seq);
  }
  release_ready(run, std::move(roots));
  return std::shared_ptr<Handle>(new Handle(this, std::move(run)));
}

// --- bookkeeping -----------------------------------------------------------

void WorkflowManager::record_event(GraphRun& run, const std::string& line) {
  run.event_log.push_back(line);
  run.event_hash = common::fnv1a(run.event_hash, line);
}

const std::string& WorkflowManager::display_name(const NodeRun& node) {
  return node.node.display.empty() ? node.node.stage.name : node.node.display;
}

core::Pilot* WorkflowManager::predict_pilot(const GraphRun& run,
                                            const Stage& stage) const {
  if (run.placement != Placement::locality) return run.pilots.front();
  const data::PlacementAdvisor advisor(session_.data().catalog(),
                                       &session_.data().engine(),
                                       &session_.scheduler());
  return advisor.best(run.pilots, stage.consumes);
}

// --- frontier release ------------------------------------------------------

void WorkflowManager::release_ready(const std::shared_ptr<GraphRun>& run,
                                    std::vector<std::size_t> ready) {
  if (run->failed || run->reported) return;
  // Deterministic ready order: same release time, ascending node
  // sequence — bit-identical across reruns and shard counts.
  std::sort(ready.begin(), ready.end());
  for (const std::size_t seq : ready) release_node(run, seq);
}

void WorkflowManager::satisfy_edge(const std::shared_ptr<GraphRun>& run,
                                   std::size_t edge_index,
                                   std::vector<std::size_t>& ready) {
  EdgeRun& edge = run->edges[edge_index];
  if (edge.satisfied) return;
  edge.satisfied = true;
  NodeRun& to = run->nodes[edge.to];
  if (to.pruned || to.released) return;
  if (--to.preds_unsatisfied == 0) ready.push_back(edge.to);
}

void WorkflowManager::release_node(const std::shared_ptr<GraphRun>& run,
                                   std::size_t seq) {
  NodeRun& node = run->nodes[seq];
  if (node.released || node.pruned || run->failed || run->reported) return;
  node.released = true;
  node.started_at = session_.now();
  node.pilot = predict_pilot(*run, node.node.stage);
  const std::string zone = node.pilot->cluster().name();
  if (!run->tenant.empty()) {
    // Tasks and services without their own tenant inherit the run's —
    // stamped once at release so every later copy (retries included)
    // carries it.
    for (auto& task : node.node.stage.tasks) {
      if (task.tenant.empty()) task.tenant = run->tenant;
    }
    for (auto& service : node.node.stage.services) {
      if (service.tenant.empty()) service.tenant = run->tenant;
    }
  }
  record_event(*run, strutil::cat(event_time(node.started_at), " release ",
                                  node.node.stage.name));
  log_.info(strutil::cat("graph '", run->name, "': node '",
                         node.node.stage.name, "' released on ", zone));
  session_.counters().add(run->pipeline_mode ? "wf.stages" : "wf.nodes");
  if (session_.tracer().enabled()) {
    node.trace = session_.tracer().begin(display_name(node), "wf", run->name,
                                         node.started_at, run->trace,
                                         {{"zone", zone}});
    if (node.in_edges.size() >= 2) {
      // Fan-in join: every predecessor edge has delivered.
      session_.tracer().instant(
          "join", "wf", run->name, node.started_at, run->trace,
          {{"node", node.node.stage.name},
           {"preds", std::to_string(node.in_edges.size())}});
    }
  }

  // Node-level data staging overlaps service bootstrap; tasks launch
  // once both have cleared.
  if (node.node.stage.consumes.empty()) {
    node.data_ready = true;
  } else {
    node.stage_batch = session_.data().stage_all_tracked(
        node.node.stage.consumes, zone,
        [this, run, seq, zone](bool ok, const std::string& failed_dataset) {
          NodeRun& staged = run->nodes[seq];
          staged.stage_batch.reset();
          // The node may have completed already (service bootstrap
          // failure); a late-landing pin would leak.
          if (staged.completed) return;
          if (!ok) {
            run->failed = true;
            log_.error(strutil::cat("graph '", run->name, "': staging '",
                                    failed_dataset, "' into ", zone,
                                    " failed"));
            complete_node(run, seq);
            return;
          }
          for (const auto& name : staged.node.stage.consumes) {
            session_.data().catalog().pin(name, zone, run->tenant);
          }
          staged.data_pinned = true;
          staged.data_ready = true;
          maybe_launch_tasks(run, seq);
        },
        run->tenant);
  }

  if (node.node.stage.services.empty()) {
    node.services_ready = true;
    maybe_launch_tasks(run, seq);
    return;
  }
  const auto on_services_ready = [this, run, seq](bool ok) {
    if (!ok) {
      run->failed = true;
      log_.error(
          strutil::cat("graph '", run->name, "': node services failed"));
      complete_node(run, seq);
      return;
    }
    run->nodes[seq].services_ready = true;
    maybe_launch_tasks(run, seq);
  };
  if (node.node.stage.autoscale.enabled) {
    // Elastic node: every service description seeds a replica group.
    const StageAutoscale& as = node.node.stage.autoscale;
    ml::AutoscalerConfig config;
    config.min_replicas = as.min_replicas;
    config.max_replicas = as.max_replicas;
    config.scale_up_outstanding = as.scale_up_outstanding;
    config.scale_down_outstanding = as.scale_down_outstanding;
    config.poll_interval = as.poll_interval;
    config.cooldown = as.cooldown;
    config.target_p95 = as.target_p95;
    config.headroom_fraction = as.headroom_fraction;
    config.down_sustain = as.down_sustain;
    auto pending =
        std::make_shared<std::size_t>(node.node.stage.services.size());
    auto all_ok = std::make_shared<bool>(true);
    for (const auto& desc : node.node.stage.services) {
      node.autoscalers.push_back(std::make_unique<ml::Autoscaler>(
          session_, *node.pilot, desc, config));
      node.autoscalers.back()->start(
          [pending, all_ok, on_services_ready](bool ok) {
            *all_ok = *all_ok && ok;
            if (--(*pending) == 0) on_services_ready(*all_ok);
          });
    }
    // The initial replicas double as the tasks' readiness barrier.
    for (const auto& scaler : node.autoscalers) {
      const auto& uids = scaler->replicas();
      node.service_uids.insert(node.service_uids.end(), uids.begin(),
                               uids.end());
    }
    return;
  }
  // One submit_all batch: priorities are enacted across the whole node
  // and the pilot's wait queue is scanned once, not N times.
  node.service_uids =
      session_.services().submit_all(*node.pilot, node.node.stage.services);
  session_.services().when_ready(node.service_uids, on_services_ready);
}

// --- frontier prefetch -----------------------------------------------------

void WorkflowManager::prefetch_frontier(const std::shared_ptr<GraphRun>& run,
                                        std::size_t seq) {
  if (run->failed || prefetch_depth_ == 0) return;
  // BFS over successor edges: candidates are ordered by (steps until
  // consumption, node sequence), so data a nearer successor needs
  // claims the idle-link prefetch budget first; link slack is the
  // DataManager's idle-links-only, budget-bounded rule.
  std::vector<std::pair<std::size_t, std::size_t>> candidates;
  std::set<std::size_t> seen{seq};
  std::deque<std::pair<std::size_t, std::size_t>> queue{{seq, 0}};
  while (!queue.empty()) {
    const auto [at, depth] = queue.front();
    queue.pop_front();
    if (depth == prefetch_depth_) continue;
    for (const std::size_t edge_index : run->nodes[at].out_edges) {
      const std::size_t next = run->edges[edge_index].to;
      if (!seen.insert(next).second) continue;
      const NodeRun& successor = run->nodes[next];
      if (successor.pruned) continue;
      if (!successor.released) candidates.emplace_back(depth + 1, next);
      queue.emplace_back(next, depth + 1);
    }
  }
  std::sort(candidates.begin(), candidates.end());
  for (const auto& [depth, next] : candidates) {
    NodeRun& successor = run->nodes[next];
    if (successor.node.stage.consumes.empty()) continue;
    // Replication-ahead: while this node computes, idle links push a
    // coming successor's inputs toward where it will probably run. A
    // wrong prediction costs only budgeted idle-link bytes — the
    // successor's own staging re-resolves placement when it starts.
    core::Pilot* predicted = predict_pilot(*run, successor.node.stage);
    if (predicted == nullptr) continue;
    const std::string predicted_zone = predicted->cluster().name();
    const std::size_t started = session_.data().prefetch(
        successor.node.stage.consumes, predicted_zone, run->tenant);
    // Remember what was speculated for whom: if the successor is later
    // pruned, its in-flight prefetches are abandoned instead of landing
    // bytes nobody will read (see prune_node).
    for (const auto& name : successor.node.stage.consumes) {
      successor.prefetched.emplace_back(name, predicted_zone);
    }
    if (started > 0) {
      log_.info(strutil::cat("graph '", run->name, "': prefetching ",
                             started, " dataset(s) for node '",
                             successor.node.stage.name, "' toward ",
                             predicted->cluster().name(), " (", depth,
                             " step(s) ahead)"));
    }
  }
}

// --- task launch and completion --------------------------------------------

void WorkflowManager::maybe_launch_tasks(const std::shared_ptr<GraphRun>& run,
                                         std::size_t seq) {
  NodeRun& node = run->nodes[seq];
  if (node.tasks_launched || node.completed) return;
  if (!node.services_ready || !node.data_ready) return;
  node.tasks_launched = true;
  launch_node_tasks(run, seq);
  prefetch_frontier(run, seq);
}

void WorkflowManager::launch_node_tasks(const std::shared_ptr<GraphRun>& run,
                                        std::size_t seq) {
  NodeRun& node = run->nodes[seq];
  if (node.node.stage.tasks.empty()) {
    complete_node(run, seq);
    return;
  }
  node.task_uids.resize(node.node.stage.tasks.size());
  for (std::size_t i = 0; i < node.node.stage.tasks.size(); ++i) {
    submit_node_task(run, seq, i);
  }
}

void WorkflowManager::submit_node_task(const std::shared_ptr<GraphRun>& run,
                                       std::size_t seq,
                                       std::size_t task_index) {
  NodeRun& node = run->nodes[seq];
  core::TaskDescription desc = node.node.stage.tasks[task_index];
  // Node tasks implicitly require the node's services.
  for (const auto& svc : node.service_uids) {
    desc.requires_services.push_back(svc);
  }
  const std::string uid = session_.tasks().submit(*node.pilot, desc);
  node.task_uids[task_index] = uid;
  session_.tasks().when_done({uid}, [this, run, seq, task_index](bool ok) {
    on_task_terminal(run, seq, task_index, ok);
  });
}

void WorkflowManager::on_task_terminal(const std::shared_ptr<GraphRun>& run,
                                       std::size_t seq,
                                       std::size_t task_index, bool ok) {
  NodeRun& node = run->nodes[seq];
  if (!ok && run->retries_left > 0 && !node.completed) {
    // Workflow-level backstop above the TaskManager's in-place
    // restarts: the attempt is terminally FAILED, but the graph's
    // retry budget buys a fresh submission from the same description.
    --run->retries_left;
    ++run->tasks_retried;
    session_.counters().add("wf.retries");
    log_.info(strutil::cat("graph '", run->name, "': retrying task ",
                           task_index, " of node '", node.node.stage.name,
                           "' (", run->retries_left, " retries left)"));
    submit_node_task(run, seq, task_index);
    return;
  }
  if (ok) {
    ++node.tasks_done;
  } else {
    ++node.tasks_failed;
    // Tolerant nodes (ensemble members, hyperopt trials) record the
    // failure in their outcome but leave the graph healthy.
    if (!node.node.tolerate_failures) run->failed = true;
  }
  const std::size_t terminal = node.tasks_done + node.tasks_failed;
  if (terminal == node.task_uids.size()) {
    // Full completion delivers the remaining out-edges through
    // complete_node, after the output contract has been checked.
    complete_node(run, seq);
    return;
  }
  if (run->failed || !ok) return;
  // Threshold (asynchronously coupled) edges deliver early, before the
  // node completes.
  std::vector<std::size_t> ready;
  for (const std::size_t edge_index : node.out_edges) {
    EdgeRun& edge = run->edges[edge_index];
    if (edge.satisfied || edge.conditional) continue;
    if (node.tasks_done < edge.after_tasks) continue;
    record_event(*run, strutil::cat(event_time(session_.now()), " unblock ",
                                    node.node.stage.name, " -> ",
                                    run->nodes[edge.to].node.stage.name));
    log_.info(strutil::cat("graph '", run->name, "': node '",
                           node.node.stage.name,
                           "' reached its threshold, releasing '",
                           run->nodes[edge.to].node.stage.name,
                           "' asynchronously"));
    satisfy_edge(run, edge_index, ready);
  }
  release_ready(run, std::move(ready));
}

void WorkflowManager::release_node_data(NodeRun& node,
                                        const std::string& tenant) {
  if (node.lineage_released) return;
  node.lineage_released = true;
  auto& catalog = session_.data().catalog();
  for (const auto& name : node.node.stage.consumes) {
    if (node.data_pinned) {
      catalog.unpin(name, node.pilot->cluster().name(), tenant);
    }
    // This node's read is over; when every consuming node has finished
    // (or been pruned), the intermediate becomes evictable.
    catalog.consume_done(name, tenant);
  }
}

void WorkflowManager::prune_node(const std::shared_ptr<GraphRun>& run,
                                 std::size_t seq) {
  NodeRun& node = run->nodes[seq];
  if (node.pruned || node.released) return;
  node.pruned = true;
  ++run->pruned_nodes;
  record_event(*run, strutil::cat(event_time(session_.now()), " prune ",
                                  node.node.stage.name));
  log_.info(strutil::cat("graph '", run->name, "': node '",
                         node.node.stage.name, "' pruned"));
  session_.counters().add("wf.pruned");
  if (session_.tracer().enabled()) {
    session_.tracer().instant("prune", "wf", run->name, session_.now(),
                              run->trace,
                              {{"node", node.node.stage.name}});
  }
  // The branch will never run: drop its lineage references now, or its
  // inputs would stay evict-proof forever (the pruned-branch leak).
  release_node_data(node, run->tenant);
  // Speculation for this node is now pointless: abandon its in-flight
  // frontier prefetches — unless another (unpruned) consumer still
  // holds a lineage reference, in which case the bytes are wanted and
  // the flight keeps going. abandon_prefetch is a safe no-op for
  // flights that completed, were never started, or gained demand
  // waiters in the meantime.
  auto& catalog = session_.data().catalog();
  for (const auto& [name, zone] : node.prefetched) {
    if (catalog.consumers_left(name) > 0) continue;
    if (session_.data().abandon_prefetch(name, zone)) {
      record_event(*run, strutil::cat(event_time(session_.now()),
                                      " abandon_prefetch ", name, " ", zone));
      log_.info(strutil::cat("graph '", run->name,
                             "': abandoned prefetch of '", name, "' into ",
                             zone, " (consumer pruned)"));
      session_.counters().add("wf.prefetch_abandoned");
    }
  }
  node.prefetched.clear();
  // Descendants that still needed this node can never be satisfied.
  for (const std::size_t edge_index : node.out_edges) {
    if (!run->edges[edge_index].satisfied) {
      prune_node(run, run->edges[edge_index].to);
    }
  }
}

void WorkflowManager::complete_node(const std::shared_ptr<GraphRun>& run,
                                    std::size_t seq) {
  NodeRun& node = run->nodes[seq];
  if (node.completed) return;
  node.completed = true;
  node.finished_at = session_.now();
  ++run->finished_nodes;
  if (node.stage_batch) {
    // Completing with transfers still in flight (service bootstrap
    // failed): abandon them so they stop consuming link bandwidth.
    session_.data().cancel_batch(node.stage_batch);
    node.stage_batch.reset();
  }
  release_node_data(node, run->tenant);
  // Declared outputs are a contract: completing without having
  // registered one is a failure the downstream nodes would otherwise
  // hit as a confusing missing-dataset error.
  bool contract_ok = true;
  if (!run->failed) {
    const std::string zone = node.pilot->cluster().name();
    for (const auto& name : node.node.stage.produces) {
      if (!session_.data().has(name)) {
        run->failed = true;
        contract_ok = false;
        log_.error(strutil::cat("graph '", run->name, "': node '",
                                node.node.stage.name, "' declared output '",
                                name, "' but never produced it"));
      } else if (session_.data().available_in(name, zone)) {
        // Freshly produced: mark recently used so store pressure does
        // not evict it before its consumers run.
        session_.data().catalog().touch(name, zone);
      }
    }
  }
  const bool node_ok = node.tasks_failed == 0 && contract_ok;
  record_event(*run,
               strutil::cat(event_time(node.finished_at), " complete ",
                            node.node.stage.name, " ok=", node_ok ? 1 : 0,
                            " done=", node.tasks_done,
                            " failed=", node.tasks_failed));
  session_.metrics().add_duration(
      run->pipeline_mode
          ? strutil::cat("pipeline.", run->name, ".stage.",
                         display_name(node))
          : strutil::cat("graph.", run->name, ".node.", display_name(node)),
      node.finished_at - node.started_at);
  if (node.trace != 0) {
    auto& tracer = session_.tracer();
    tracer.arg(node.trace, "tasks_done", std::to_string(node.tasks_done));
    tracer.arg(node.trace, "tasks_failed",
               std::to_string(node.tasks_failed));
    tracer.end(node.trace, node.finished_at);
    node.trace = 0;
  }
  log_.info(strutil::cat("graph '", run->name, "': node '",
                         node.node.stage.name, "' complete (",
                         node.tasks_done, " done, ", node.tasks_failed,
                         " failed)"));

  if (node.node.stage.stop_services_after) {
    // Elastic nodes drain through their autoscalers (which also stop
    // any scaled-up replicas the node's uid list never saw).
    for (auto& scaler : node.autoscalers) scaler->stop();
    if (node.autoscalers.empty()) {
      for (const auto& uid : node.service_uids) {
        session_.services().stop(uid);
      }
    }
  }

  NodeOutcome outcome;
  outcome.node = node.node.stage.name;
  outcome.ok = node_ok;
  outcome.tasks_done = node.tasks_done;
  outcome.tasks_failed = node.tasks_failed;
  outcome.started_at = node.started_at;
  outcome.finished_at = node.finished_at;
  outcome.task_uids = node.task_uids;

  std::vector<std::size_t> ready;
  if (!run->failed) {
    std::vector<std::string> selected;
    const bool have_selector = static_cast<bool>(node.node.select);
    if (have_selector) selected = node.node.select(outcome);
    // Snapshot: pruning and completion hooks may grow the edge list.
    const std::vector<std::size_t> out_edges = node.out_edges;
    for (const std::size_t edge_index : out_edges) {
      EdgeRun& edge = run->edges[edge_index];
      if (edge.satisfied) continue;
      if (edge.conditional && have_selector) {
        const std::string& to_key = run->nodes[edge.to].node.stage.name;
        if (std::find(selected.begin(), selected.end(), to_key) ==
            selected.end()) {
          prune_node(run, edge.to);
          continue;
        }
      }
      satisfy_edge(run, edge_index, ready);
    }
    if (ready.size() >= 2 && session_.tracer().enabled()) {
      session_.tracer().instant(
          "fan-out", "wf", run->name, node.finished_at, run->trace,
          {{"node", node.node.stage.name},
           {"released", std::to_string(ready.size())}});
    }
  }
  // The completion hook runs before the successor wave so anything it
  // spawns joins the same deterministic release round.
  if (node.node.on_complete) node.node.on_complete(outcome);
  release_ready(run, std::move(ready));
  maybe_finish(run);
}

void WorkflowManager::maybe_finish(const std::shared_ptr<GraphRun>& run) {
  if (run->reported) return;
  // With concurrent branches a failure may surface while other nodes
  // are still running; report once, when every released node completed.
  for (const auto& node : run->nodes) {
    if (node.released && !node.completed) return;
  }
  if (!run->failed &&
      run->finished_nodes + run->pruned_nodes < run->nodes.size()) {
    // Unreleased nodes are still waiting on edges a running spawner
    // will deliver.
    return;
  }
  finish_graph(run);
}

void WorkflowManager::finish_graph(const std::shared_ptr<GraphRun>& run) {
  run->reported = true;

  // Nodes that never released (failure upstream) still hold the
  // lineage references taken at submission; drop them, or the catalog
  // would keep their datasets evict-proof forever.
  for (auto& node : run->nodes) {
    if (node.released || node.lineage_released) continue;
    node.lineage_released = true;
    for (const auto& name : node.node.stage.consumes) {
      session_.data().catalog().consume_done(name, run->tenant);
    }
  }

  GraphResult result;
  result.graph = run->name;
  result.ok = !run->failed;
  result.makespan = session_.now() - run->started_at;
  for (const auto& node : run->nodes) {
    if (node.started_at < 0) continue;
    result.node_names.push_back(display_name(node));
    result.node_durations.push_back(node.finished_at - node.started_at);
    result.tasks_done += node.tasks_done;
    result.tasks_failed += node.tasks_failed;
  }
  result.tasks_retried = run->tasks_retried;
  result.nodes_spawned = run->spawned_nodes;
  result.nodes_pruned = run->pruned_nodes;
  record_event(*run, strutil::cat(event_time(session_.now()),
                                  " finish ok=", result.ok ? 1 : 0));
  result.event_log = run->event_log;
  result.event_hash = run->event_hash;

  if (run->trace != 0) {
    session_.tracer().arg(run->trace, "ok", result.ok ? "true" : "false");
    session_.tracer().end(run->trace, session_.now());
    run->trace = 0;
  }
  session_.metrics().add_duration(
      strutil::cat(run->pipeline_mode ? "pipeline." : "graph.", run->name,
                   ".makespan"),
      result.makespan);
  log_.info(strutil::cat(run->pipeline_mode ? "pipeline '" : "graph '",
                         run->name, "' ", result.ok ? "completed" : "FAILED",
                         " in ", strutil::format_duration(result.makespan)));

  if (run->pipeline_mode) {
    PipelineResult pipeline_result;
    pipeline_result.pipeline = result.graph;
    pipeline_result.ok = result.ok;
    pipeline_result.makespan = result.makespan;
    pipeline_result.stage_durations = result.node_durations;
    pipeline_result.stage_names = result.node_names;
    pipeline_result.tasks_done = result.tasks_done;
    pipeline_result.tasks_failed = result.tasks_failed;
    pipeline_result.tasks_retried = result.tasks_retried;
    results_[run->name] = pipeline_result;
    session_.loop().post([on_done = run->pipeline_done, pipeline_result] {
      on_done(pipeline_result);
    });
  } else {
    graph_results_[run->name] = result;
    session_.loop().post(
        [on_done = run->on_done, result] { on_done(result); });
  }
}

// --- dynamic expansion -----------------------------------------------------

std::size_t WorkflowManager::spawn_node(const std::shared_ptr<GraphRun>& run,
                                        const std::string& parent,
                                        GraphNode child,
                                        const std::vector<std::string>& deps) {
  ensure(!run->reported, Errc::invalid_state,
         strutil::cat("graph '", run->name, "': spawn after finish"));
  const auto parent_it = run->index.find(parent);
  ensure(parent_it != run->index.end(), Errc::not_found,
         strutil::cat("graph '", run->name, "': no node '", parent, "'"));
  const std::size_t parent_seq = parent_it->second;
  const std::string key = child.stage.name;
  ensure(!key.empty(), Errc::invalid_argument,
         strutil::cat("graph '", run->name, "': spawned node needs a name"));
  if (const auto it = run->index.find(key); it != run->index.end()) {
    // Idempotent spawn: a spawning task the failure injector killed
    // and restarted re-runs its payload; the same (parent, key) spawn
    // returns the live child instead of double-spawning it.
    ensure(run->nodes[it->second].spawned_by == parent_seq,
           Errc::invalid_argument,
           strutil::cat("graph '", run->name, "': node '", key,
                        "' already exists"));
    return it->second;
  }

  const std::size_t seq = run->nodes.size();
  NodeRun node;
  node.node = std::move(child);
  node.seq = seq;
  node.spawned_by = parent_seq;
  run->index.emplace(key, seq);
  run->nodes.push_back(std::move(node));
  ++run->spawned_nodes;
  for (const auto& name : run->nodes[seq].node.stage.consumes) {
    session_.data().catalog().add_consumers(name, 1, run->tenant);
  }
  record_event(*run, strutil::cat(event_time(session_.now()), " spawn ",
                                  parent, " -> ", key));
  log_.info(strutil::cat("graph '", run->name, "': node '", parent,
                         "' spawned '", key, "'"));
  session_.counters().add("wf.spawned");
  if (session_.tracer().enabled()) {
    session_.tracer().instant("spawn", "wf", run->name, session_.now(),
                              run->trace,
                              {{"parent", parent}, {"child", key}});
  }

  bool unsatisfiable = false;
  for (const auto& dep : deps) {
    const auto dep_it = run->index.find(dep);
    ensure(dep_it != run->index.end(), Errc::not_found,
           strutil::cat("graph '", run->name, "': no node '", dep,
                        "' to depend on"));
    EdgeRun edge;
    edge.from = dep_it->second;
    edge.to = seq;
    const NodeRun& dep_node = run->nodes[dep_it->second];
    if (dep_node.completed) {
      edge.satisfied = true;  // already delivered
    } else if (dep_node.pruned) {
      unsatisfiable = true;
    }
    const std::size_t edge_index = run->edges.size();
    run->edges.push_back(edge);
    run->nodes[dep_it->second].out_edges.push_back(edge_index);
    run->nodes[seq].in_edges.push_back(edge_index);
    if (!edge.satisfied) ++run->nodes[seq].preds_unsatisfied;
  }
  if (unsatisfiable) {
    prune_node(run, seq);
  } else if (run->nodes[seq].preds_unsatisfied == 0) {
    release_ready(run, {seq});
  }
  return seq;
}

std::size_t WorkflowManager::Handle::spawn(
    const std::string& parent, GraphNode child,
    const std::vector<std::string>& deps) {
  return manager_->spawn_node(run_, parent, std::move(child), deps);
}

bool WorkflowManager::Handle::finished() const noexcept {
  return run_->reported;
}

}  // namespace ripple::wf
