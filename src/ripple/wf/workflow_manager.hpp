#pragma once

/// \file workflow_manager.hpp
/// Executes Pipelines over a Session (the workflow-orchestration layer
/// of the paper's Fig. 1 stack).
///
/// Stages run in order with optional asynchronous overlap: stage s+1 is
/// released when stage s reaches its `unblock_next_after` threshold.
/// Stage services are submitted before stage tasks — as one batch, so
/// the scheduler enacts priorities across the whole stage — and awaited
/// via the ServiceManager's readiness barrier; tasks automatically
/// receive `requires_services` on the stage's services. Stages with
/// `autoscale.enabled` run their services as elastic replica groups
/// (one ml::Autoscaler per description), started/stopped with the
/// stage.

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ripple/core/session.hpp"
#include "ripple/ml/autoscaler.hpp"
#include "ripple/wf/pipeline.hpp"

namespace ripple::wf {

class WorkflowManager {
 public:
  explicit WorkflowManager(core::Session& session);

  /// Starts `pipeline` on `pilot`. Several pipelines may run
  /// concurrently. `on_done` fires once with the result.
  void run_pipeline(Pipeline pipeline, core::Pilot& pilot,
                    std::function<void(const PipelineResult&)> on_done);

  /// Results of completed pipelines, keyed by pipeline name.
  [[nodiscard]] const std::map<std::string, PipelineResult>& results()
      const noexcept {
    return results_;
  }

 private:
  struct StageRun {
    Stage stage;
    std::vector<std::string> service_uids;
    std::vector<std::unique_ptr<ml::Autoscaler>> autoscalers;
    std::vector<std::string> task_uids;
    double started_at = -1.0;
    double finished_at = -1.0;
    std::size_t tasks_done = 0;
    std::size_t tasks_failed = 0;
    bool next_released = false;
    bool completed = false;
  };

  struct PipelineRun {
    std::string name;
    core::Pilot* pilot = nullptr;
    std::vector<StageRun> stages;
    std::function<void(const PipelineResult&)> on_done;
    double started_at = 0.0;
    std::size_t finished_stages = 0;
    bool failed = false;
    bool reported = false;
  };

  void start_stage(const std::shared_ptr<PipelineRun>& run,
                   std::size_t index);
  void launch_stage_tasks(const std::shared_ptr<PipelineRun>& run,
                          std::size_t index);
  void on_task_terminal(const std::shared_ptr<PipelineRun>& run,
                        std::size_t index, bool ok);
  void maybe_release_next(const std::shared_ptr<PipelineRun>& run,
                          std::size_t index);
  void complete_stage(const std::shared_ptr<PipelineRun>& run,
                      std::size_t index);
  void finish_pipeline(const std::shared_ptr<PipelineRun>& run);

  core::Session& session_;
  common::Logger log_;
  std::map<std::string, PipelineResult> results_;
};

}  // namespace ripple::wf
