#pragma once

/// \file workflow_manager.hpp
/// Executes Pipelines over a Session (the workflow-orchestration layer
/// of the paper's Fig. 1 stack).
///
/// Stages run in order with optional asynchronous overlap: stage s+1 is
/// released when stage s reaches its `unblock_next_after` threshold.
/// While stage s computes, stage s+1's `consumes` are prefetched toward
/// the pilot the contention-aware PlacementAdvisor predicts for it
/// (replication-ahead): the DataManager copies them on idle links only,
/// within its per-store prefetch budget, so speculation never competes
/// with demand transfers or evicts protected data.
/// Stage services are submitted before stage tasks — as one batch, so
/// the scheduler enacts priorities across the whole stage — and awaited
/// via the ServiceManager's readiness barrier; tasks automatically
/// receive `requires_services` on the stage's services. Stages with
/// `autoscale.enabled` run their services as elastic replica groups
/// (one ml::Autoscaler per description), started/stopped with the
/// stage.

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ripple/core/session.hpp"
#include "ripple/metrics/tracer.hpp"
#include "ripple/ml/autoscaler.hpp"
#include "ripple/wf/pipeline.hpp"

namespace ripple::wf {

class WorkflowManager {
 public:
  explicit WorkflowManager(core::Session& session);

  /// Starts `pipeline` on `pilot`. Several pipelines may run
  /// concurrently. `on_done` fires once with the result.
  void run_pipeline(Pipeline pipeline, core::Pilot& pilot,
                    std::function<void(const PipelineResult&)> on_done);

  /// Multi-pilot run: each stage is placed on one of `pilots` according
  /// to `pipeline.placement` — by the bytes its `consumes` datasets
  /// must move (locality) or always the first pilot (first). Stage
  /// datasets are staged into the chosen zone overlapping service
  /// bootstrap, pinned for the stage's duration, and released through
  /// lineage reference counts when their last consuming stage finishes.
  void run_pipeline(Pipeline pipeline, std::vector<core::Pilot*> pilots,
                    std::function<void(const PipelineResult&)> on_done);

  /// Results of completed pipelines, keyed by pipeline name.
  [[nodiscard]] const std::map<std::string, PipelineResult>& results()
      const noexcept {
    return results_;
  }

 private:
  struct StageRun {
    Stage stage;
    core::Pilot* pilot = nullptr;  ///< chosen at stage start
    /// The stage's `consumes` staging batch; cancelled if the stage
    /// completes while transfers are still in flight.
    core::DataManager::BatchHandle stage_batch;
    std::vector<std::string> service_uids;
    std::vector<std::unique_ptr<ml::Autoscaler>> autoscalers;
    std::vector<std::string> task_uids;
    double started_at = -1.0;
    double finished_at = -1.0;
    std::size_t tasks_done = 0;
    std::size_t tasks_failed = 0;
    bool services_ready = false;  ///< bootstrap barrier passed
    bool data_ready = false;      ///< `consumes` staged into the zone
    bool data_pinned = false;     ///< consumed replicas pinned in zone
    bool lineage_released = false;
    bool tasks_launched = false;
    bool next_released = false;
    bool completed = false;
    /// Stage span ("wf" category, child of the pipeline span); 0 while
    /// closed or tracing is disabled.
    metrics::SpanId trace = 0;
  };

  struct PipelineRun {
    std::string name;
    std::vector<core::Pilot*> pilots;
    std::vector<StageRun> stages;
    Placement placement = Placement::locality;
    std::function<void(const PipelineResult&)> on_done;
    double started_at = 0.0;
    std::size_t finished_stages = 0;
    std::size_t retries_left = 0;  ///< Pipeline::task_retry_budget
    std::size_t tasks_retried = 0;
    bool failed = false;
    bool reported = false;
    /// Pipeline root span; 0 while closed or tracing is disabled.
    metrics::SpanId trace = 0;
  };

  void start_stage(const std::shared_ptr<PipelineRun>& run,
                   std::size_t index);
  /// The pilot a stage would be placed on right now (contention-aware
  /// advisor under Placement::locality, first pilot otherwise).
  [[nodiscard]] core::Pilot* predict_pilot(const PipelineRun& run,
                                           const Stage& stage) const;
  /// Stage lookahead: prefetch stage index+1's `consumes` toward its
  /// predicted pilot's zone while stage `index` computes.
  void prefetch_next_stage(const std::shared_ptr<PipelineRun>& run,
                           std::size_t index);
  /// Launches tasks once both the service barrier and the stage's
  /// dataset staging have cleared.
  void maybe_launch_tasks(const std::shared_ptr<PipelineRun>& run,
                          std::size_t index);
  void launch_stage_tasks(const std::shared_ptr<PipelineRun>& run,
                          std::size_t index);
  /// Unpins the stage's consumed replicas and drops one lineage
  /// reference per consumed dataset (idempotent).
  void release_stage_data(StageRun& stage_run);
  /// Submits stage task `task_index` (from its original description)
  /// and watches its completion; used for the first launch and for
  /// budgeted retries alike.
  void submit_stage_task(const std::shared_ptr<PipelineRun>& run,
                         std::size_t index, std::size_t task_index);
  void on_task_terminal(const std::shared_ptr<PipelineRun>& run,
                        std::size_t index, std::size_t task_index, bool ok);
  void maybe_release_next(const std::shared_ptr<PipelineRun>& run,
                          std::size_t index);
  void complete_stage(const std::shared_ptr<PipelineRun>& run,
                      std::size_t index);
  void finish_pipeline(const std::shared_ptr<PipelineRun>& run);

  core::Session& session_;
  common::Logger log_;
  std::map<std::string, PipelineResult> results_;
};

}  // namespace ripple::wf
