#pragma once

/// \file workflow_manager.hpp
/// Executes workflow Graphs — and Pipelines, as linear graphs — over a
/// Session (the workflow-orchestration layer of the paper's Fig. 1
/// stack).
///
/// A GraphRun is a frontier scheduler: it tracks how many dependency
/// edges of each node are still unsatisfied and releases every node
/// that reaches zero, so independent branches run concurrently across
/// the run's pilots while fan-in joins wait for all of theirs.
/// Released nodes behave exactly like the old pipeline stages: data
/// staging overlaps service bootstrap, tasks launch when both have
/// cleared, consumed replicas stay pinned for the node's duration and
/// are released through lineage reference counts held by *every*
/// consuming node. Threshold edges (`EdgeOptions::after_tasks`) release
/// a successor before the predecessor completes — the DAG form of
/// asynchronous stage coupling — and conditional edges let a node's
/// BranchSelector prune unselected subtrees at completion (their
/// lineage references are dropped immediately, so pruned inputs become
/// evictable). A running node may also spawn() children into the live
/// graph through the run's Handle; spawns are idempotent per node key,
/// so a spawning task the FailureInjector kills and restarts cannot
/// double-spawn.
///
/// Prefetch generalizes the pipeline's stage-k+1 lookahead to the
/// frontier of ready successors: when a node's tasks launch, the
/// consumed datasets of its not-yet-released successors (up to
/// `set_prefetch_depth` edges ahead, nearest first, so data needed
/// sooner claims the idle-link budget first) are pushed toward their
/// predicted pilots on idle links only.
///
/// Determinism: ready nodes are released in (release time, node
/// sequence) order, and every run keeps a release/complete/spawn/prune
/// event log with an FNV-1a fingerprint that is bit-identical across
/// same-seed reruns and scheduler shard counts.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ripple/core/session.hpp"
#include "ripple/metrics/tracer.hpp"
#include "ripple/ml/autoscaler.hpp"
#include "ripple/wf/graph.hpp"
#include "ripple/wf/pipeline.hpp"

namespace ripple::wf {

class WorkflowManager {
 public:
  class Handle;

  explicit WorkflowManager(core::Session& session);

  /// Starts `graph` on `pilot` (or `pilots`, placing each node by the
  /// graph's Placement). Several graphs and pipelines may run
  /// concurrently. `on_done` fires once with the result. The returned
  /// Handle lets running nodes spawn children into the live graph.
  std::shared_ptr<Handle> run_graph(
      Graph graph, core::Pilot& pilot,
      std::function<void(const GraphResult&)> on_done);
  std::shared_ptr<Handle> run_graph(
      Graph graph, std::vector<core::Pilot*> pilots,
      std::function<void(const GraphResult&)> on_done);

  /// Starts `pipeline` on `pilot`: the thin linear-graph adapter.
  /// Stage i depends on stage i-1 with the stage's
  /// `unblock_next_after` threshold; results and metrics keep their
  /// pipeline names.
  void run_pipeline(Pipeline pipeline, core::Pilot& pilot,
                    std::function<void(const PipelineResult&)> on_done);
  void run_pipeline(Pipeline pipeline, std::vector<core::Pilot*> pilots,
                    std::function<void(const PipelineResult&)> on_done);

  /// Results of completed pipelines, keyed by pipeline name.
  [[nodiscard]] const std::map<std::string, PipelineResult>& results()
      const noexcept {
    return results_;
  }

  /// Results of completed graphs, keyed by graph name.
  [[nodiscard]] const std::map<std::string, GraphResult>& graph_results()
      const noexcept {
    return graph_results_;
  }

  /// How many dependency edges ahead of a launching node the frontier
  /// prefetch looks (default 2).
  void set_prefetch_depth(std::size_t depth) noexcept {
    prefetch_depth_ = depth;
  }

 private:
  struct EdgeRun {
    std::size_t from = 0;
    std::size_t to = 0;
    std::size_t after_tasks = kAfterAllTasks;
    bool conditional = false;
    bool satisfied = false;
  };

  struct NodeRun {
    GraphNode node;
    std::size_t seq = 0;
    /// Sequence of the node that spawn()ed this one; SIZE_MAX for
    /// nodes the graph was submitted with.
    std::size_t spawned_by = SIZE_MAX;
    std::vector<std::size_t> in_edges;   ///< indices into GraphRun::edges
    std::vector<std::size_t> out_edges;
    std::size_t preds_unsatisfied = 0;
    bool released = false;
    bool pruned = false;

    /// Frontier prefetches this node fired: (dataset, predicted zone)
    /// pairs, recorded so prune can revoke speculation whose consumer
    /// subtree was unselected (see prune_node).
    std::vector<std::pair<std::string, std::string>> prefetched;

    core::Pilot* pilot = nullptr;  ///< chosen at release
    /// The node's `consumes` staging batch; cancelled if the node
    /// completes while transfers are still in flight.
    core::DataManager::BatchHandle stage_batch;
    std::vector<std::string> service_uids;
    std::vector<std::unique_ptr<ml::Autoscaler>> autoscalers;
    std::vector<std::string> task_uids;
    double started_at = -1.0;
    double finished_at = -1.0;
    std::size_t tasks_done = 0;
    std::size_t tasks_failed = 0;
    bool services_ready = false;  ///< bootstrap barrier passed
    bool data_ready = false;      ///< `consumes` staged into the zone
    bool data_pinned = false;     ///< consumed replicas pinned in zone
    bool lineage_released = false;
    bool tasks_launched = false;
    bool completed = false;
    /// Node span ("wf" category, child of the graph span); 0 while
    /// closed or tracing is disabled.
    metrics::SpanId trace = 0;
  };

  struct GraphRun {
    std::string name;
    std::vector<core::Pilot*> pilots;
    /// deque: spawn() appends while callbacks hold references.
    std::deque<NodeRun> nodes;
    std::vector<EdgeRun> edges;
    std::map<std::string, std::size_t> index;
    Placement placement = Placement::locality;
    /// Tenant every pin, lineage reference, stage reservation, task and
    /// service of this run is accounted to (Graph::tenant).
    std::string tenant;
    /// Exactly one of these is set (pipeline adapter vs graph API).
    std::function<void(const GraphResult&)> on_done;
    std::function<void(const PipelineResult&)> pipeline_done;
    bool pipeline_mode = false;
    double started_at = 0.0;
    std::size_t finished_nodes = 0;
    std::size_t pruned_nodes = 0;
    std::size_t spawned_nodes = 0;
    std::size_t retries_left = 0;  ///< Graph::task_retry_budget
    std::size_t tasks_retried = 0;
    bool failed = false;
    bool reported = false;
    /// Graph root span; 0 while closed or tracing is disabled.
    metrics::SpanId trace = 0;
    std::vector<std::string> event_log;
    std::uint64_t event_hash = 0;
  };

  std::shared_ptr<Handle> launch_graph(
      Graph graph, std::vector<core::Pilot*> pilots, bool pipeline_mode,
      std::function<void(const GraphResult&)> on_done,
      std::function<void(const PipelineResult&)> pipeline_done);
  /// Appends to the run's deterministic event stream and rolls its
  /// FNV-1a fingerprint (recorded whether or not tracing is on).
  void record_event(GraphRun& run, const std::string& line);
  [[nodiscard]] static const std::string& display_name(const NodeRun& node);

  /// Releases `seq` into the running frontier: places it, starts data
  /// staging overlapped with service bootstrap.
  void release_node(const std::shared_ptr<GraphRun>& run, std::size_t seq);
  /// Releases every ready node in ascending sequence order (the
  /// deterministic tie-break for same-time releases).
  void release_ready(const std::shared_ptr<GraphRun>& run,
                     std::vector<std::size_t> ready);
  /// Marks `edge` delivered; when its target reaches zero unsatisfied
  /// predecessors, the target joins `ready`.
  void satisfy_edge(const std::shared_ptr<GraphRun>& run,
                    std::size_t edge_index,
                    std::vector<std::size_t>& ready);
  /// The pilot a node would be placed on right now (contention-aware
  /// advisor under Placement::locality, first pilot otherwise).
  [[nodiscard]] core::Pilot* predict_pilot(const GraphRun& run,
                                           const Stage& stage) const;
  /// Frontier lookahead: prefetch the consumed datasets of `seq`'s
  /// not-yet-released successors (nearest first) toward their
  /// predicted pilots while `seq` computes.
  void prefetch_frontier(const std::shared_ptr<GraphRun>& run,
                         std::size_t seq);
  /// Launches tasks once both the service barrier and the node's
  /// dataset staging have cleared.
  void maybe_launch_tasks(const std::shared_ptr<GraphRun>& run,
                          std::size_t seq);
  void launch_node_tasks(const std::shared_ptr<GraphRun>& run,
                         std::size_t seq);
  /// Submits node task `task_index` (from its original description)
  /// and watches its completion; used for the first launch and for
  /// budgeted retries alike.
  void submit_node_task(const std::shared_ptr<GraphRun>& run,
                        std::size_t seq, std::size_t task_index);
  void on_task_terminal(const std::shared_ptr<GraphRun>& run,
                        std::size_t seq, std::size_t task_index, bool ok);
  /// Unpins the node's consumed replicas and drops one lineage
  /// reference per consumed dataset (idempotent), both under the run's
  /// tenant — releases must pair with the tenant that pinned.
  void release_node_data(NodeRun& node, const std::string& tenant);
  /// Removes an unselected (or unsatisfiable) node from the run before
  /// it starts, releasing its lineage references, and cascades to every
  /// descendant that depended on it.
  void prune_node(const std::shared_ptr<GraphRun>& run, std::size_t seq);
  void complete_node(const std::shared_ptr<GraphRun>& run, std::size_t seq);
  void maybe_finish(const std::shared_ptr<GraphRun>& run);
  void finish_graph(const std::shared_ptr<GraphRun>& run);
  /// Handle::spawn backend; see Handle for semantics.
  std::size_t spawn_node(const std::shared_ptr<GraphRun>& run,
                         const std::string& parent, GraphNode child,
                         const std::vector<std::string>& deps);

  core::Session& session_;
  common::Logger log_;
  std::size_t prefetch_depth_ = 2;
  std::map<std::string, PipelineResult> results_;
  std::map<std::string, GraphResult> graph_results_;
};

/// Live interface into a running graph, returned by run_graph. Nodes
/// (task payloads, completion hooks) use it to grow the graph while it
/// executes.
class WorkflowManager::Handle {
 public:
  /// Inserts `child` into the live graph as a child of `parent`, with
  /// full-completion dependency edges on `deps` (each must name an
  /// existing node; already-completed dependencies count as
  /// satisfied, and a node with none outstanding releases
  /// immediately). Returns the child's sequence number.
  ///
  /// Idempotent per child key: spawning an existing key from the same
  /// parent returns the existing node's sequence without re-adding it
  /// — a restarted spawning task re-runs its payload without
  /// double-spawning. A key collision from a *different* parent (or
  /// with a statically-added node) throws.
  std::size_t spawn(const std::string& parent, GraphNode child,
                    const std::vector<std::string>& deps = {});

  /// True once the run's result has been reported.
  [[nodiscard]] bool finished() const noexcept;

 private:
  friend class WorkflowManager;
  Handle(WorkflowManager* manager, std::shared_ptr<GraphRun> run)
      : manager_(manager), run_(std::move(run)) {}

  WorkflowManager* manager_;
  std::shared_ptr<GraphRun> run_;
};

}  // namespace ripple::wf
