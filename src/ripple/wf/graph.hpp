#pragma once

/// \file graph.hpp
/// Dependency-graph workflow structures (the DAG generalization of
/// pipeline.hpp's linear stage chain).
///
/// A Graph is a set of named nodes — each node carries a Stage as its
/// work body (services, consumes/produces contracts, tasks, autoscale)
/// — connected by explicit dependency edges. The WorkflowManager
/// executes it frontier-at-a-time: every node whose predecessors have
/// delivered runs concurrently, so independent branches of a hybrid
/// AI-HPC workflow overlap instead of barrier-stepping through stages.
///
/// Edges come in three flavors:
///   - full (default): the successor releases when the predecessor
///     completes with all tasks done;
///   - threshold (`after_tasks = n`): the successor releases once `n`
///     predecessor tasks are DONE — the DAG form of the pipeline's
///     asynchronous stage coupling (`unblock_next_after`);
///   - conditional (`conditional = true`): the predecessor's
///     BranchSelector picks, at completion time, which conditional
///     successors actually run; unselected branches are pruned along
///     with every descendant that depended on them.
///
/// A running graph may also grow: WorkflowManager::Handle::spawn()
/// inserts child nodes into the live graph (hyperopt search nodes
/// emitting one trial per sampled config). Spawns are idempotent by
/// node key, so a spawning task killed and restarted by the failure
/// injector cannot double-spawn its children.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "ripple/wf/pipeline.hpp"

namespace ripple::wf {

/// Edge threshold meaning "every task of the predecessor" (full
/// completion, the default coupling).
inline constexpr std::size_t kAfterAllTasks =
    std::numeric_limits<std::size_t>::max();

/// What a finished node looked like — handed to its BranchSelector and
/// completion hook.
struct NodeOutcome {
  std::string node;  ///< graph key of the finished node
  bool ok = false;   ///< no failed tasks, output contract satisfied
  std::size_t tasks_done = 0;
  std::size_t tasks_failed = 0;
  double started_at = 0.0;
  double finished_at = 0.0;
  /// Uids of the node's tasks (submission order); completion hooks use
  /// them to read task results for aggregation or objectives.
  std::vector<std::string> task_uids;
};

/// Picks which *conditional* successors run, by graph key. Called once
/// when the node completes; conditional out-edges whose target is not
/// in the returned list are pruned (with their dependent subtrees).
using BranchSelector =
    std::function<std::vector<std::string>(const NodeOutcome&)>;

/// Observer invoked once when the node completes (after the selector).
/// The hook may spawn children through the run's Handle.
using CompletionHook = std::function<void(const NodeOutcome&)>;

struct GraphNode {
  /// The node's work body: services, data contracts, tasks.
  Stage stage;

  /// Task failures fail the whole graph by default (pipeline
  /// semantics). Tolerant nodes — ensemble members, hyperopt trials —
  /// record failures in their outcome but leave the graph healthy.
  bool tolerate_failures = false;

  BranchSelector select;       ///< conditional-branch choice, optional
  CompletionHook on_complete;  ///< completion observer, optional

  /// Name used in results/metrics when it differs from the graph key
  /// (pipeline adapter with duplicate stage names). Empty: use the key.
  std::string display;
};

/// Per-edge coupling options (designated-initializer friendly).
struct EdgeOptions {
  /// Release the successor once this many predecessor tasks are DONE
  /// (clamped to the predecessor's task count). Default: all of them.
  /// Ignored on conditional edges, which resolve only at completion.
  std::size_t after_tasks = kAfterAllTasks;

  /// Subject to the predecessor's BranchSelector.
  bool conditional = false;
};

struct GraphEdge {
  std::size_t from = 0;  ///< node sequence numbers
  std::size_t to = 0;
  std::size_t after_tasks = kAfterAllTasks;
  bool conditional = false;
};

/// A workflow DAG. Nodes are keyed by their stage name (unique within
/// the graph); sequence numbers (insertion order) provide the
/// deterministic tie-break for frontier release order.
class Graph {
 public:
  std::string name = "graph";
  Placement placement = Placement::locality;
  /// Graph-wide budget of task resubmissions (see
  /// Pipeline::task_retry_budget).
  std::size_t task_retry_budget = 0;
  /// Tenant the run is accounted to (see Pipeline::tenant). Tasks and
  /// services without their own tenant inherit it.
  std::string tenant;

  Graph() = default;
  explicit Graph(std::string graph_name) : name(std::move(graph_name)) {}

  /// Adds a node; its key is `node.stage.name`, which must be unique.
  /// Returns the node's sequence number.
  std::size_t add(GraphNode node);
  std::size_t add(Stage stage);

  /// Declares `to` dependent on `from` (both must already exist).
  void depend(const std::string& from, const std::string& to,
              EdgeOptions options = {});

  [[nodiscard]] const std::vector<GraphNode>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] const std::vector<GraphEdge>& edges() const noexcept {
    return edges_;
  }
  [[nodiscard]] bool has_node(const std::string& key) const;
  /// Sequence number of `key`; throws when absent.
  [[nodiscard]] std::size_t index_of(const std::string& key) const;

  /// Rejects dependency cycles (error names the cycle path, e.g.
  /// "a -> b -> a") and nodes consuming a dataset no ancestor produces
  /// (error names a root -> node path). `external` says whether a
  /// dataset exists outside the graph (typically
  /// `session.data().has(name)`); when empty, every consumed dataset
  /// must be produced by an ancestor node.
  void validate(
      const std::function<bool(const std::string&)>& external = {}) const;

  /// A linear chain: stage i depends on stage i-1 with
  /// `after_tasks = stages[i-1].unblock_next_after`. This is the
  /// adapter that keeps Pipeline callers running unchanged on the
  /// graph engine. Duplicate stage names get "#<seq>"-suffixed keys
  /// (reported names stay as authored).
  [[nodiscard]] static Graph from_pipeline(const Pipeline& pipeline);

 private:
  std::vector<GraphNode> nodes_;
  std::vector<GraphEdge> edges_;
  std::map<std::string, std::size_t> index_;
};

/// Outcome of a graph run, reported to the completion callback and
/// queryable from the WorkflowManager afterwards.
struct GraphResult {
  std::string graph;
  bool ok = false;
  double makespan = 0.0;  ///< first release to last completion
  /// Started nodes in sequence order (never-released nodes — pruned or
  /// downstream of a failure — are absent).
  std::vector<std::string> node_names;
  std::vector<double> node_durations;
  std::size_t tasks_done = 0;
  std::size_t tasks_failed = 0;
  std::size_t tasks_retried = 0;
  std::size_t nodes_spawned = 0;  ///< dynamically added at runtime
  std::size_t nodes_pruned = 0;   ///< unselected branches + descendants
  /// The release/complete/spawn/prune stream in commit order, and its
  /// FNV-1a fingerprint — the determinism oracle benches and suites
  /// compare across reruns and shard counts.
  std::vector<std::string> event_log;
  std::uint64_t event_hash = 0;
};

}  // namespace ripple::wf
