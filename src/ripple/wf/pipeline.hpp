#pragma once

/// \file pipeline.hpp
/// Pipeline/Stage workflow structures (EnTK role).
///
/// A Pipeline is an ordered list of Stages; each Stage bundles the
/// services it needs (started first, per the paper's readiness
/// relations) and the tasks that do the work. Asynchronous stage
/// coupling — "data preparation and model training operate
/// asynchronously" (use case II-A) — is expressed with
/// `unblock_next_after`: the next stage may start once that many of
/// this stage's tasks are DONE, instead of waiting for all of them.
///
/// Pipelines execute as linear graphs: the WorkflowManager converts a
/// Pipeline through `Graph::from_pipeline` (graph.hpp) and runs it on
/// the DAG frontier scheduler, with `unblock_next_after` becoming the
/// chain edge's `after_tasks` threshold. Workflows with fan-out,
/// joins, conditional branches, or runtime-spawned nodes use
/// wf::Graph directly.

#include <cstddef>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "ripple/core/descriptions.hpp"

namespace ripple::wf {

/// Optional elastic serving for a stage: when enabled, each of the
/// stage's service descriptions becomes the replica template of an
/// ml::Autoscaler-managed group instead of a fixed instance. Stage
/// tasks that watch the group name (client config `watch`) then follow
/// replicas as the pool breathes with the stage's request backlog.
struct StageAutoscale {
  bool enabled = false;
  std::size_t min_replicas = 1;
  std::size_t max_replicas = 4;
  double scale_up_outstanding = 8.0;
  double scale_down_outstanding = 1.0;
  sim::Duration poll_interval = 0.25;
  sim::Duration cooldown = 1.0;

  /// Latency SLO for the stage's serving groups: when > 0, replicas
  /// scale on the windowed p95 request latency against this target
  /// (seconds) instead of queue depth — see ml::AutoscalerConfig.
  double target_p95 = 0.0;
  double headroom_fraction = 0.5;
  std::size_t down_sustain = 4;
};

struct Stage {
  std::string name = "stage";

  /// Datasets this stage's tasks read. They are staged into the chosen
  /// pilot's zone as soon as the stage starts (overlapping service
  /// bootstrap), pinned there while the stage runs, and feed the
  /// locality-aware pilot ranking of multi-pilot runs.
  std::vector<std::string> consumes;

  /// Output contract: datasets this stage must register (via task
  /// stage-out or payload put) before it completes — a missing one
  /// fails the pipeline. Produced replicas in the stage's zone are
  /// LRU-touched so store pressure does not immediately evict them;
  /// eviction *protection* is driven by later stages' `consumes`
  /// (lineage reference counts).
  std::vector<std::string> produces;

  /// Services started (and readiness-awaited) before this stage's tasks.
  std::vector<core::ServiceDescription> services;

  /// Elastic replica management for this stage's services.
  StageAutoscale autoscale;

  /// The stage's compute tasks.
  std::vector<core::TaskDescription> tasks;

  /// Number of DONE tasks after which the *next* stage may begin.
  /// Default: all tasks (strictly sequential stages).
  std::size_t unblock_next_after = std::numeric_limits<std::size_t>::max();

  /// Stop this stage's services once the stage completes (dynamic
  /// resource release, paper section II-A).
  bool stop_services_after = false;

  [[nodiscard]] std::size_t unblock_threshold() const noexcept {
    return std::min(unblock_next_after, tasks.size());
  }
};

/// How a multi-pilot run picks the pilot of each stage.
enum class Placement {
  first,     ///< data-blind: every stage runs on the first pilot
  locality,  ///< rank pilots by bytes-that-must-move (PlacementAdvisor)
};

struct Pipeline {
  std::string name = "pipeline";
  std::vector<Stage> stages;
  Placement placement = Placement::locality;

  /// Tenant the run is accounted to: fair-share scheduling weight,
  /// store/link quotas, per-tenant pins and lineage. Tasks and services
  /// without their own tenant inherit it. Empty (default): untenanted,
  /// all multi-tenant machinery stays out of the way.
  std::string tenant;

  /// Pipeline-wide budget of task resubmissions: a stage task that ends
  /// FAILED (payload error, restart budget exhausted, pilot lost) is
  /// submitted again from its original description while budget
  /// remains, instead of failing the pipeline. Complements the
  /// TaskManager's in-place restarts, which re-place the *same* task
  /// after transient node/pilot failures; this is the workflow-level
  /// backstop above them. Default 0: any task failure is pipeline-fatal.
  std::size_t task_retry_budget = 0;
};

/// Outcome of a pipeline run, reported to the completion callback and
/// queryable from the WorkflowManager afterwards.
struct PipelineResult {
  std::string pipeline;
  bool ok = false;
  double makespan = 0.0;  ///< first submission to last completion
  std::vector<double> stage_durations;
  std::vector<std::string> stage_names;
  std::size_t tasks_done = 0;
  std::size_t tasks_failed = 0;
  /// Resubmissions drawn from Pipeline::task_retry_budget.
  std::size_t tasks_retried = 0;
};

}  // namespace ripple::wf
