#include "ripple/common/strutil.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <iomanip>

namespace ripple::strutil {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string pad_left(std::string_view text, std::size_t width) {
  if (text.size() >= width) return std::string(text);
  return std::string(width - text.size(), ' ') + std::string(text);
}

std::string pad_right(std::string_view text, std::size_t width) {
  if (text.size() >= width) return std::string(text);
  return std::string(text) + std::string(width - text.size(), ' ');
}

std::string format_duration(double seconds) {
  const double magnitude = std::fabs(seconds);
  if (magnitude < 1e-6) return format_fixed(seconds * 1e9, 1) + " ns";
  if (magnitude < 1e-3) return format_fixed(seconds * 1e6, 1) + " us";
  if (magnitude < 1.0) return format_fixed(seconds * 1e3, 2) + " ms";
  if (magnitude < 120.0) return format_fixed(seconds, 2) + " s";
  if (magnitude < 7200.0) return format_fixed(seconds / 60.0, 1) + " min";
  return format_fixed(seconds / 3600.0, 2) + " h";
}

std::string format_bytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  return format_fixed(bytes, unit == 0 ? 0 : 1) + " " + kUnits[unit];
}

std::string format_fixed(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string zero_pad(std::uint64_t value, int width) {
  std::ostringstream os;
  os << std::setw(width) << std::setfill('0') << value;
  return os.str();
}

}  // namespace ripple::strutil
