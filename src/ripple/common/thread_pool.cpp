#include "ripple/common/thread_pool.hpp"

#include <algorithm>

namespace ripple::common {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] {
      while (auto work = queue_.pop()) {
        (*work)();
      }
    });
  }
}

ThreadPool::~ThreadPool() {
  queue_.close();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              std::size_t chunks_per_worker) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t chunks = std::min(
      total, workers_.size() * std::max<std::size_t>(1, chunks_per_worker));
  const std::size_t chunk_size = (total + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    futures.push_back(submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  for (auto& future : futures) future.get();
}

}  // namespace ripple::common
