#pragma once

/// \file concurrent_queue.hpp
/// A bounded-optional, closable MPMC blocking queue.
///
/// Used by the thread pool and by example workloads that pump real work
/// across threads. `close()` wakes all waiters and makes further pops
/// drain remaining items before reporting exhaustion — the standard
/// producer/consumer shutdown idiom.

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "ripple/common/error.hpp"

namespace ripple::common {

template <typename T>
class ConcurrentQueue {
 public:
  /// `capacity` == 0 means unbounded.
  explicit ConcurrentQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  ConcurrentQueue(const ConcurrentQueue&) = delete;
  ConcurrentQueue& operator=(const ConcurrentQueue&) = delete;

  /// Blocks while the queue is full; returns false if closed meanwhile.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] {
      return closed_ || capacity_ == 0 || items_.size() < capacity_;
    });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; fails when full or closed.
  bool try_push(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_) return false;
      if (capacity_ != 0 && items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::unique_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Closes the queue: pushes fail, pops drain then return nullopt.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace ripple::common
