#pragma once

/// \file statistics.hpp
/// Streaming and sample-based statistics used by the metrics layer.
///
/// The paper reports averages, distributions, outliers and long tails of
/// its BT/RT/IT metrics; these classes compute exactly those summaries.

#include <cstddef>
#include <limits>
#include <vector>

#include "ripple/common/json.hpp"

namespace ripple::common {

/// Linear-interpolation quantile of an already-sorted vector — the one
/// definition of the quantile convention, shared by Summary and the
/// metrics layer's windowed quantiles so the two can never diverge.
/// Throws when `sorted` is empty or q is outside [0, 1].
[[nodiscard]] double quantile_sorted(const std::vector<double>& sorted,
                                     double q);

/// Numerically stable (Welford) streaming moments: O(1) memory.
class OnlineStats {
 public:
  void add(double x);

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const OnlineStats& other);

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * count_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Retains all samples; provides quantiles and tail statistics.
class Summary {
 public:
  void add(double x);
  void add_all(const std::vector<double>& xs);

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] double mean() const noexcept { return stats_.mean(); }
  [[nodiscard]] double stddev() const noexcept { return stats_.stddev(); }
  [[nodiscard]] double min() const noexcept { return stats_.min(); }
  [[nodiscard]] double max() const noexcept { return stats_.max(); }
  [[nodiscard]] double sum() const noexcept { return stats_.sum(); }

  /// Linear-interpolation quantile, q in [0, 1]. Throws when empty.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double p95() const { return quantile(0.95); }
  [[nodiscard]] double p99() const { return quantile(0.99); }

  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }

  /// {"count":..,"mean":..,"std":..,"min":..,"p50":..,"p95":..,"max":..}
  [[nodiscard]] json::Value to_json() const;

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;  // lazily sorted cache
  mutable bool sorted_valid_ = false;
  OnlineStats stats_;

  void ensure_sorted() const;
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples land in
/// saturating edge bins so no observation is lost.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;

  /// Text rendering (one line per non-empty bin), handy in reports.
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace ripple::common
