#pragma once

/// \file thread_pool.hpp
/// A fixed-size worker pool with futures and a blocking parallel_for.
///
/// Originally the pool only served *payload* computation (example
/// workloads that genuinely crunch data); since the runtime core was
/// sharded it also underpins common::ShardExecutor, which runs
/// scheduler placement and transfer re-planning shards on it. Work
/// items are move-only common::UniqueFunction slots with inline
/// storage, so submit() enqueues a packaged_task directly instead of
/// boxing it in a shared_ptr — one allocation (the task's shared
/// state) instead of two (see bench/micro_runtime's submit pair).

#include <functional>
#include <future>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "ripple/common/concurrent_queue.hpp"
#include "ripple/common/unique_function.hpp"

namespace ripple::common {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers after draining queued work.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future for its result. The task moves
  /// into the queue slot's inline storage — no shared_ptr box.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    std::packaged_task<Result()> task(std::forward<Fn>(fn));
    std::future<Result> future = task.get_future();
    const bool accepted = queue_.push(UniqueFunction(std::move(task)));
    ensure(accepted, Errc::invalid_state, "submit on a stopped thread pool");
    return future;
  }

  /// Runs body(i) for i in [begin, end) across the pool; blocks until
  /// done. Work is divided into contiguous chunks pulled dynamically by
  /// the workers; `chunks_per_worker` sets the granularity (more,
  /// smaller chunks smooth skewed bodies where one contiguous block
  /// per worker would leave stragglers — see the load-imbalance
  /// regression in tests/test_threads.cpp).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t chunks_per_worker = 4);

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

 private:
  ConcurrentQueue<UniqueFunction> queue_;
  std::vector<std::thread> workers_;
};

}  // namespace ripple::common
