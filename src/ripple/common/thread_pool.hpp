#pragma once

/// \file thread_pool.hpp
/// A fixed-size worker pool with futures and a blocking parallel_for.
///
/// The Ripple control plane is single-threaded and deterministic; the
/// thread pool exists for *payload* computation — example workloads that
/// genuinely crunch data (image augmentation, enrichment statistics) use
/// it, and it is exercised by real-thread tests.

#include <functional>
#include <future>
#include <thread>
#include <type_traits>
#include <vector>

#include "ripple/common/concurrent_queue.hpp"

namespace ripple::common {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers after draining queued work.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future for its result.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    const bool accepted = queue_.push([task] { (*task)(); });
    ensure(accepted, Errc::invalid_state, "submit on a stopped thread pool");
    return future;
  }

  /// Runs body(i) for i in [begin, end) across the pool; blocks until done.
  /// Work is divided into contiguous chunks, one per worker.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

 private:
  ConcurrentQueue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
};

}  // namespace ripple::common
