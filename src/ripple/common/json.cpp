#include "ripple/common/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::json {

const char* to_string(Type type) noexcept {
  switch (type) {
    case Type::null: return "null";
    case Type::boolean: return "boolean";
    case Type::integer: return "integer";
    case Type::real: return "real";
    case Type::string: return "string";
    case Type::array: return "array";
    case Type::object: return "object";
  }
  return "?";
}

Value Value::object(
    std::initializer_list<std::pair<const std::string, Value>> items) {
  Object out;
  for (const auto& [key, value] : items) out.emplace(key, value);
  return Value(std::move(out));
}

Value Value::array(std::initializer_list<Value> items) {
  return Value(Array(items));
}

Type Value::type() const noexcept {
  return static_cast<Type>(data_.index());
}

namespace {
[[noreturn]] void type_mismatch(Type actual, const char* wanted) {
  raise(Errc::invalid_state, strutil::cat("json value is ", to_string(actual),
                                          ", wanted ", wanted));
}
}  // namespace

bool Value::as_bool() const {
  if (const auto* b = std::get_if<bool>(&data_)) return *b;
  type_mismatch(type(), "boolean");
}

std::int64_t Value::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&data_)) return *i;
  if (const auto* d = std::get_if<double>(&data_)) {
    return static_cast<std::int64_t>(*d);
  }
  type_mismatch(type(), "number");
}

double Value::as_double() const {
  if (const auto* d = std::get_if<double>(&data_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&data_)) {
    return static_cast<double>(*i);
  }
  type_mismatch(type(), "number");
}

const std::string& Value::as_string() const {
  if (const auto* s = std::get_if<std::string>(&data_)) return *s;
  type_mismatch(type(), "string");
}

const Array& Value::as_array() const {
  if (const auto* a = std::get_if<Array>(&data_)) return *a;
  type_mismatch(type(), "array");
}

Array& Value::as_array() {
  if (auto* a = std::get_if<Array>(&data_)) return *a;
  type_mismatch(type(), "array");
}

const Object& Value::as_object() const {
  if (const auto* o = std::get_if<Object>(&data_)) return *o;
  type_mismatch(type(), "object");
}

Object& Value::as_object() {
  if (auto* o = std::get_if<Object>(&data_)) return *o;
  type_mismatch(type(), "object");
}

Value& Value::operator[](const std::string& key) {
  if (is_null()) data_ = Object{};
  return as_object()[key];
}

const Value& Value::at(const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) {
    raise(Errc::not_found, strutil::cat("json object has no member '", key, "'"));
  }
  return it->second;
}

const Value& Value::at(std::size_t index) const {
  const auto& arr = as_array();
  if (index >= arr.size()) {
    raise(Errc::not_found, strutil::cat("json array index ", index,
                                        " out of range (size ", arr.size(), ")"));
  }
  return arr[index];
}

bool Value::contains(const std::string& key) const {
  if (!is_object()) return false;
  return as_object().count(key) != 0;
}

Value Value::get_or(const std::string& key, Value fallback) const {
  if (!is_object()) return fallback;
  const auto& obj = as_object();
  const auto it = obj.find(key);
  return it == obj.end() ? fallback : it->second;
}

std::size_t Value::size() const noexcept {
  if (const auto* a = std::get_if<Array>(&data_)) return a->size();
  if (const auto* o = std::get_if<Object>(&data_)) return o->size();
  return 0;
}

void Value::push_back(Value element) {
  if (is_null()) data_ = Array{};
  as_array().push_back(std::move(element));
}

void Value::set(const std::string& key, Value element) {
  if (is_null()) data_ = Object{};
  as_object()[key] = std::move(element);
}

bool Value::operator==(const Value& other) const {
  // Numeric values compare by magnitude across integer/real representations.
  if (is_number() && other.is_number()) {
    if (is_int() && other.is_int()) return as_int() == other.as_int();
    return as_double() == other.as_double();
  }
  return data_ == other.data_;
}

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string render_double(double d) {
  if (std::isnan(d) || std::isinf(d)) return "null";  // strict JSON
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  // Keep a decimal marker so the value round-trips as a real.
  std::string s(buf);
  if (s.find_first_of(".eE") == std::string::npos) s += ".0";
  return s;
}

}  // namespace

void Value::dump_impl(std::string& out, int indent, int depth) const {
  const auto newline = [&](int level) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * level, ' ');
  };
  switch (type()) {
    case Type::null: out += "null"; return;
    case Type::boolean: out += (as_bool() ? "true" : "false"); return;
    case Type::integer: out += std::to_string(as_int()); return;
    case Type::real: out += render_double(std::get<double>(data_)); return;
    case Type::string:
      out += '"';
      out += escape(as_string());
      out += '"';
      return;
    case Type::array: {
      const auto& arr = as_array();
      if (arr.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (i != 0) out += indent > 0 ? "," : ",";
        newline(depth + 1);
        arr[i].dump_impl(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      return;
    }
    case Type::object: {
      const auto& obj = as_object();
      if (obj.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : obj) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        out += '"';
        out += escape(key);
        out += "\":";
        if (indent > 0) out += ' ';
        value.dump_impl(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      return;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_impl(out, indent, 0);
  return out;
}

std::size_t Value::estimate_size() const noexcept {
  switch (type()) {
    case Type::null: return 4;
    case Type::boolean: return 5;
    case Type::integer: return 12;
    case Type::real: return 16;
    case Type::string: return 2 + std::get<std::string>(data_).size();
    case Type::array: {
      std::size_t n = 2;
      for (const auto& v : std::get<Array>(data_)) n += v.estimate_size() + 1;
      return n;
    }
    case Type::object: {
      std::size_t n = 2;
      for (const auto& [k, v] : std::get<Object>(data_)) {
        n += k.size() + 4 + v.estimate_size();
      }
      return n;
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Parser: recursive descent over a string_view with line/column tracking.
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse() {
    skip_whitespace();
    Value v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    raise(Errc::parse_error, strutil::cat("json: ", message, " at line ", line,
                                          " column ", column));
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }

  [[nodiscard]] char peek() const {
    if (eof()) fail("unexpected end of input");
    return text_[pos_];
  }

  char advance() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (peek() != c) fail(strutil::cat("expected '", c, "'"));
    ++pos_;
  }

  void skip_whitespace() {
    while (!eof()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  Value parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
      case 'f': return parse_bool();
      case 'n': return parse_null();
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object out;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(out));
    }
    while (true) {
      skip_whitespace();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      skip_whitespace();
      out[std::move(key)] = parse_value();
      skip_whitespace();
      const char c = advance();
      if (c == '}') return Value(std::move(out));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    Array out;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(out));
    }
    while (true) {
      skip_whitespace();
      out.push_back(parse_value());
      skip_whitespace();
      const char c = advance();
      if (c == ']') return Value(std::move(out));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = advance();
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = advance();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = advance();
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("invalid \\u escape");
              }
            }
            // Encode the code point as UTF-8 (basic multilingual plane only;
            // surrogate pairs are passed through as two encoded values).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("invalid escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      } else {
        out += c;
      }
    }
  }

  Value parse_bool() {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      return Value(true);
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return Value(false);
    }
    fail("invalid literal");
  }

  Value parse_null() {
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return Value(nullptr);
    }
    fail("invalid literal");
  }

  Value parse_number() {
    const std::size_t start = pos_;
    bool is_real = false;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("invalid number");
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (!eof() && text_[pos_] == '.') {
      is_real = true;
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("invalid number: missing fraction digits");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (!eof() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_real = true;
      ++pos_;
      if (!eof() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("invalid number: missing exponent digits");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (is_real) {
      return Value(std::strtod(token.c_str(), nullptr));
    }
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(token.c_str(), &end, 10);
    if (errno == ERANGE) {
      // Fall back to a real for integers beyond 64-bit range.
      return Value(std::strtod(token.c_str(), nullptr));
    }
    return Value(static_cast<std::int64_t>(v));
  }
};

}  // namespace

Value Value::parse(std::string_view text) {
  Parser parser(text);
  return parser.parse();
}

}  // namespace ripple::json
