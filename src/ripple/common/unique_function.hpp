#pragma once

/// \file unique_function.hpp
/// Small-buffer-optimized, move-only callable.
///
/// A `std::function<void()>`'s copyability forces a heap allocation for
/// any capture larger than the implementation's tiny inline buffer
/// (typically 16-24 bytes — less than `this` plus one uid string). Two
/// hot paths pay that cost at scale: event-loop events (millions of
/// grant callbacks, pub/sub deliveries and reply dispatches per run)
/// and thread-pool work items (which additionally used to wrap every
/// task in a `shared_ptr<packaged_task>` just to make it copyable).
///
/// UniqueFunction is move-only, so a capture only needs to be movable,
/// and it reserves enough inline storage for the common "component
/// pointer + a couple of uids" closure shape. Larger captures fall back
/// to the heap transparently. `sim::UniqueCallback` (the event-loop
/// callback type) and the thread pool's queue slot are both aliases of
/// this type.

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace ripple::common {

class UniqueFunction {
 public:
  /// Inline capture budget. 64 bytes holds `this` plus two
  /// `std::string` uids (or one string and a couple of scalars), which
  /// covers the runtime's hot callbacks; bigger closures heap-allocate.
  static constexpr std::size_t inline_capacity = 64;

  UniqueFunction() noexcept = default;
  UniqueFunction(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  UniqueFunction(F&& f) {  // NOLINT(runtime/explicit)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= inline_capacity &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.storage_, storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move the callable from `from` into `to` and destroy the source.
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* storage) { (*std::launder(static_cast<Fn*>(storage)))(); },
      [](void* from, void* to) noexcept {
        Fn* source = std::launder(static_cast<Fn*>(from));
        ::new (to) Fn(std::move(*source));
        source->~Fn();
      },
      [](void* storage) noexcept {
        std::launder(static_cast<Fn*>(storage))->~Fn();
      }};

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* storage) { (**std::launder(static_cast<Fn**>(storage)))(); },
      [](void* from, void* to) noexcept {
        ::new (to) Fn*(*std::launder(static_cast<Fn**>(from)));
      },
      [](void* storage) noexcept {
        delete *std::launder(static_cast<Fn**>(storage));
      }};

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[inline_capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace ripple::common
