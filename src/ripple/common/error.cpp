#include "ripple/common/error.hpp"

namespace ripple {

const char* to_string(Errc code) noexcept {
  switch (code) {
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::invalid_state: return "invalid_state";
    case Errc::not_found: return "not_found";
    case Errc::timeout: return "timeout";
    case Errc::capacity: return "capacity";
    case Errc::parse_error: return "parse_error";
    case Errc::io_error: return "io_error";
    case Errc::internal: return "internal";
  }
  return "unknown";
}

Error::Error(Errc code, const std::string& message)
    : std::runtime_error(std::string(to_string(code)) + ": " + message),
      code_(code) {}

void raise(Errc code, const std::string& message) {
  throw Error(code, message);
}

void ensure(bool condition, Errc code, const std::string& message) {
  if (!condition) raise(code, message);
}

}  // namespace ripple
