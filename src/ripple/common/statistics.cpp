#include "ripple/common/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::common {

void OnlineStats::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void Summary::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
  stats_.add(x);
}

void Summary::add_all(const std::vector<double>& xs) {
  for (const double x : xs) add(x);
}

void Summary::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
  ensure(!sorted.empty(), Errc::invalid_state,
         "quantile of an empty sample set");
  ensure(q >= 0.0 && q <= 1.0, Errc::invalid_argument,
         "quantile q must be in [0, 1]");
  if (sorted.size() == 1) return sorted.front();
  const double position = q * static_cast<double>(sorted.size() - 1);
  const auto below = static_cast<std::size_t>(position);
  const double fraction = position - static_cast<double>(below);
  if (below + 1 >= sorted.size()) return sorted.back();
  return sorted[below] * (1.0 - fraction) + sorted[below + 1] * fraction;
}

double Summary::quantile(double q) const {
  ensure_sorted();
  return quantile_sorted(sorted_, q);
}

json::Value Summary::to_json() const {
  json::Value out = json::Value::object();
  out.set("count", static_cast<std::int64_t>(count()));
  if (!empty()) {
    out.set("mean", mean());
    out.set("std", stddev());
    out.set("min", min());
    out.set("p50", median());
    out.set("p95", p95());
    out.set("max", max());
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)) {
  ensure(hi > lo, Errc::invalid_argument, "histogram range must be non-empty");
  ensure(bins > 0, Errc::invalid_argument, "histogram needs at least one bin");
  counts_.resize(bins, 0);
}

void Histogram::add(double x) {
  std::size_t bin = 0;
  if (x <= lo_) {
    bin = 0;
  } else if (x >= hi_) {
    bin = counts_.size() - 1;
  } else {
    bin = static_cast<std::size_t>((x - lo_) / bin_width_);
    bin = std::min(bin, counts_.size() - 1);
  }
  ++counts_[bin];
  ++total_;
}

std::size_t Histogram::count(std::size_t bin) const {
  ensure(bin < counts_.size(), Errc::invalid_argument,
         "histogram bin out of range");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  ensure(bin < counts_.size(), Errc::invalid_argument,
         "histogram bin out of range");
  return lo_ + bin_width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin) + bin_width_; }

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 0;
  for (const std::size_t c : counts_) peak = std::max(peak, c);
  if (peak == 0) return "(empty histogram)\n";
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto bar_length = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out += strutil::cat(
        strutil::pad_left(strutil::format_fixed(bin_lo(i), 4), 12), " .. ",
        strutil::pad_left(strutil::format_fixed(bin_hi(i), 4), 12), " | ",
        std::string(std::max<std::size_t>(bar_length, 1), '#'), " ",
        counts_[i], "\n");
  }
  return out;
}

}  // namespace ripple::common
