#pragma once

/// \file error.hpp
/// Error codes and the exception type used throughout Ripple.
///
/// Ripple follows the C++ Core Guidelines error model: exceptions signal
/// errors that cannot be handled locally, and `ensure()` documents
/// preconditions at API boundaries.

#include <stdexcept>
#include <string>

namespace ripple {

/// Coarse error classification carried by every ripple::Error.
enum class Errc {
  invalid_argument,  ///< caller passed a value outside the documented domain
  invalid_state,     ///< operation not legal in the entity's current state
  not_found,         ///< a named entity (task, service, host, ...) is unknown
  timeout,           ///< an operation exceeded its deadline
  capacity,          ///< a resource request exceeds what can ever be granted
  parse_error,       ///< malformed textual input (JSON, config, ...)
  io_error,          ///< file system or transport failure
  internal,          ///< invariant violation inside the library
};

/// Human-readable name of an error code (stable, lowercase).
[[nodiscard]] const char* to_string(Errc code) noexcept;

/// The exception type thrown by all Ripple components.
class Error : public std::runtime_error {
 public:
  Error(Errc code, const std::string& message);

  /// The machine-readable classification of this error.
  [[nodiscard]] Errc code() const noexcept { return code_; }

 private:
  Errc code_;
};

/// Throws ripple::Error with the given code and message.
[[noreturn]] void raise(Errc code, const std::string& message);

/// Precondition / invariant check: throws ripple::Error when `condition`
/// is false. Used at public API boundaries instead of assert() so that
/// misuse is diagnosable in release builds.
void ensure(bool condition, Errc code, const std::string& message);

}  // namespace ripple
