#include "ripple/common/ids.hpp"

#include "ripple/common/strutil.hpp"

namespace ripple::common {

std::string IdGenerator::next(const std::string& prefix) {
  std::lock_guard lock(mutex_);
  const std::uint64_t n = counters_[prefix]++;
  return prefix + "." + strutil::zero_pad(n, 6);
}

std::uint64_t IdGenerator::count(const std::string& prefix) const {
  std::lock_guard lock(mutex_);
  const auto it = counters_.find(prefix);
  return it == counters_.end() ? 0 : it->second;
}

void IdGenerator::reset() {
  std::lock_guard lock(mutex_);
  counters_.clear();
}

IdGenerator& IdGenerator::global() {
  static IdGenerator instance;
  return instance;
}

std::string make_uid(const std::string& prefix) {
  return IdGenerator::global().next(prefix);
}

}  // namespace ripple::common
