#pragma once

/// \file config.hpp
/// Hierarchical configuration over JSON with dotted-path access.
///
/// Platform profiles, model specs and experiment parameters are all plain
/// JSON documents; Config adds typed lookups with defaults and deep
/// overlay merging (experiment overrides on top of platform defaults).

#include <string>

#include "ripple/common/json.hpp"

namespace ripple::common {

class Config {
 public:
  Config() : root_(json::Value::object()) {}
  explicit Config(json::Value root);

  /// Parses a JSON document into a Config.
  [[nodiscard]] static Config from_string(const std::string& text);

  /// Reads and parses a JSON file; throws io_error when unreadable.
  [[nodiscard]] static Config from_file(const std::string& path);

  /// Dotted-path lookup ("platform.network.latency_ms"); null when absent.
  [[nodiscard]] const json::Value* find(const std::string& path) const;

  [[nodiscard]] bool has(const std::string& path) const {
    return find(path) != nullptr;
  }

  [[nodiscard]] double get_double(const std::string& path,
                                  double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& path,
                                     std::int64_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& path, bool fallback) const;
  [[nodiscard]] std::string get_string(const std::string& path,
                                       const std::string& fallback) const;

  /// Sets a value at a dotted path, creating intermediate objects.
  void set(const std::string& path, json::Value value);

  /// Deep-merges `overlay` on top of this config: objects merge
  /// recursively, everything else is replaced.
  void merge(const Config& overlay);

  [[nodiscard]] const json::Value& root() const noexcept { return root_; }
  [[nodiscard]] std::string dump(int indent = 2) const {
    return root_.dump(indent);
  }

 private:
  json::Value root_;
};

}  // namespace ripple::common
