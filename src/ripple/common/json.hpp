#pragma once

/// \file json.hpp
/// A self-contained JSON value type, parser and writer.
///
/// Ripple uses JSON for RPC payloads, configuration and metric dumps, so
/// the implementation favours deterministic output (ordered object keys)
/// and precise error reporting over raw throughput. The parser accepts
/// strict JSON; the writer emits either compact or pretty text.

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace ripple::json {

class Value;

using Array = std::vector<Value>;
/// std::map keeps keys sorted so serialized output is deterministic.
using Object = std::map<std::string, Value>;

enum class Type { null, boolean, integer, real, string, array, object };

[[nodiscard]] const char* to_string(Type type) noexcept;

/// A dynamically-typed JSON value.
class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(int i) : data_(static_cast<std::int64_t>(i)) {}
  Value(unsigned i) : data_(static_cast<std::int64_t>(i)) {}
  Value(std::int64_t i) : data_(i) {}
  Value(std::uint64_t i) : data_(static_cast<std::int64_t>(i)) {}
  Value(double d) : data_(d) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(std::string_view s) : data_(std::string(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  /// Builds an object from key/value pairs: Value::object({{"a", 1}}).
  [[nodiscard]] static Value object(
      std::initializer_list<std::pair<const std::string, Value>> items = {});

  /// Builds an array from values: Value::array({1, 2, 3}).
  [[nodiscard]] static Value array(std::initializer_list<Value> items = {});

  [[nodiscard]] Type type() const noexcept;
  [[nodiscard]] bool is_null() const noexcept { return type() == Type::null; }
  [[nodiscard]] bool is_bool() const noexcept { return type() == Type::boolean; }
  [[nodiscard]] bool is_int() const noexcept { return type() == Type::integer; }
  [[nodiscard]] bool is_real() const noexcept { return type() == Type::real; }
  [[nodiscard]] bool is_number() const noexcept {
    return is_int() || is_real();
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type() == Type::string;
  }
  [[nodiscard]] bool is_array() const noexcept { return type() == Type::array; }
  [[nodiscard]] bool is_object() const noexcept {
    return type() == Type::object;
  }

  /// Typed accessors. Throw ripple::Error(invalid_state) on type mismatch;
  /// numeric accessors convert freely between integer and real.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Object& as_object();

  /// Object member access; inserts a null member if absent (object only).
  Value& operator[](const std::string& key);

  /// Const object member lookup; throws not_found when absent.
  [[nodiscard]] const Value& at(const std::string& key) const;

  /// Array element access; throws not_found when out of range.
  [[nodiscard]] const Value& at(std::size_t index) const;

  [[nodiscard]] bool contains(const std::string& key) const;

  /// Member lookup with a fallback default (object only; null otherwise).
  [[nodiscard]] Value get_or(const std::string& key, Value fallback) const;

  /// Number of elements (array/object) or 0 for scalars.
  [[nodiscard]] std::size_t size() const noexcept;

  /// Appends to an array value (throws for non-arrays).
  void push_back(Value element);

  /// Inserts or replaces an object member (throws for non-objects).
  void set(const std::string& key, Value element);

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Serializes compactly, or with `indent` spaces per level when > 0.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Parses strict JSON text; throws ripple::Error(parse_error) with
  /// line/column context on malformed input.
  [[nodiscard]] static Value parse(std::string_view text);

  /// Rough serialized size in bytes, used by the network model to derive
  /// transfer times without serializing.
  [[nodiscard]] std::size_t estimate_size() const noexcept;

 private:
  using Data = std::variant<std::nullptr_t, bool, std::int64_t, double,
                            std::string, Array, Object>;
  Data data_;

  void dump_impl(std::string& out, int indent, int depth) const;
};

/// Escapes a string for embedding in JSON output (without quotes).
[[nodiscard]] std::string escape(std::string_view text);

}  // namespace ripple::json
