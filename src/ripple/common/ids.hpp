#pragma once

/// \file ids.hpp
/// Entity UID generation, mirroring RADICAL-Pilot's `prefix.000042` scheme.
///
/// UIDs are strings so that logs, metrics and JSON payloads stay readable.
/// A process-wide generator hands out monotonically increasing counters per
/// prefix; tests can reset it for reproducible fixtures.

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace ripple::common {

/// Thread-safe per-prefix counter, producing uids like "task.000007".
class IdGenerator {
 public:
  /// Returns the next uid for `prefix` (e.g. "task" -> "task.000000").
  [[nodiscard]] std::string next(const std::string& prefix);

  /// Number of uids handed out so far for `prefix`.
  [[nodiscard]] std::uint64_t count(const std::string& prefix) const;

  /// Resets all counters. Intended for test fixtures only.
  void reset();

  /// The process-wide generator used by `make_uid`.
  static IdGenerator& global();

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::uint64_t> counters_;
};

/// Convenience wrapper over IdGenerator::global().
[[nodiscard]] std::string make_uid(const std::string& prefix);

}  // namespace ripple::common
