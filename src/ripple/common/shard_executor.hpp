#pragma once

/// \file shard_executor.hpp
/// Sharded execution of control-plane kernels with a deterministic merge.
///
/// The Ripple control plane is a single deterministic event loop; at
/// O(10k) nodes and millions of queued requests the loop itself becomes
/// the bottleneck. The ShardExecutor lets the two hottest kernels —
/// scheduler placement and transfer fair-share re-planning — run their
/// *computation* on worker threads while every *observable effect*
/// stays on the calling (event-loop) thread:
///
///   1. partition: the caller splits disjoint state into shard groups
///      (pilots for the scheduler, zone-pair links for the transfer
///      engine) — shard s owns items s, s+S, s+2S, ...;
///   2. compute: run(S, fn) executes fn(s) concurrently; each shard
///      mutates only its own groups' state and appends candidate
///      results to its own buffer — no locks, no shared writes;
///   3. merge: the caller flattens the buffers and commits them in
///      logical MergeKey (time, sequence, shard) order — sequences are
///      globally unique, so the committed order is a pure function of
///      the records, independent of shard count or thread timing.
///
/// That merge is what preserves the house determinism rule: a run at
/// shards=N is bit-identical to shards=1 under the same seed, which
/// every sharded suite and ablation bench asserts via FNV fingerprints
/// (the parallel==serial hash oracle).
///
/// run() blocks until all shards finish; the calling thread executes
/// shard 0 itself, so a ShardExecutor(S) uses S-1 pool workers and
/// shards<=1 degrades to a plain inline loop (no threads anywhere —
/// the default, which all existing determinism suites run under).

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ripple/common/thread_pool.hpp"

namespace ripple::common {

/// Commit-order key for records produced by concurrent shards: logical
/// time first, then a globally unique sequence, then the shard id as a
/// final (normally unreachable) tiebreak. Strictly ordered, so the
/// merged order never depends on thread scheduling.
struct MergeKey {
  double time = 0.0;
  std::uint64_t sequence = 0;
  std::uint32_t shard = 0;

  bool operator<(const MergeKey& other) const noexcept {
    if (time != other.time) return time < other.time;
    if (sequence != other.sequence) return sequence < other.sequence;
    return shard < other.shard;
  }
};

class ShardExecutor {
 public:
  /// `shards` == 0 picks the hardware concurrency; 1 means fully
  /// inline (no worker threads are created).
  explicit ShardExecutor(std::size_t shards = 0);
  ~ShardExecutor();

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }

  /// Invokes fn(s) for every s in [0, tasks), concurrently across the
  /// shard workers (the caller runs shard 0), and blocks until all
  /// return. `tasks` is typically min(shards(), item_count). Exceptions
  /// are deterministic: the lowest-indexed shard's exception is
  /// rethrown after every shard has finished.
  void run(std::size_t tasks, const std::function<void(std::size_t)>& fn);

 private:
  std::size_t shards_ = 1;
  std::unique_ptr<ThreadPool> pool_;  ///< shards_ - 1 workers; null if <= 1
};

/// Flattens per-shard record buffers and sorts them into MergeKey
/// order — the deterministic commit order. `key_of` projects a record
/// to its MergeKey.
template <typename Record, typename KeyOf>
std::vector<Record> merge_shards(std::vector<std::vector<Record>> buffers,
                                 KeyOf key_of) {
  std::vector<Record> merged;
  std::size_t total = 0;
  for (const auto& buffer : buffers) total += buffer.size();
  merged.reserve(total);
  for (auto& buffer : buffers) {
    for (auto& record : buffer) merged.push_back(std::move(record));
  }
  std::sort(merged.begin(), merged.end(),
            [&](const Record& a, const Record& b) {
              return key_of(a) < key_of(b);
            });
  return merged;
}

}  // namespace ripple::common
