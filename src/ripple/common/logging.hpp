#pragma once

/// \file logging.hpp
/// Lightweight, thread-safe, leveled logging.
///
/// Every Ripple component owns a named Logger. Records flow to a global
/// sink which defaults to stderr; tests install a MemorySink to assert on
/// log output. Loggers may carry a clock callback so that records are
/// stamped with *simulation* time instead of wall time.

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ripple::common {

enum class LogLevel { trace = 0, debug, info, warn, error, off };

[[nodiscard]] const char* to_string(LogLevel level) noexcept;

/// One emitted log record.
struct LogRecord {
  LogLevel level = LogLevel::info;
  std::string logger;   ///< name of the emitting Logger
  double time = -1.0;   ///< simulation (or wall) time, -1 when unknown
  std::string message;
};

/// Receives formatted records; implementations must be thread-safe.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void write(const LogRecord& record) = 0;
};

/// Formats records as text lines on stderr.
class StderrSink final : public LogSink {
 public:
  void write(const LogRecord& record) override;

 private:
  std::mutex mutex_;
};

/// Formats each record as one compact JSON object per line (JSONL),
/// sim-time stamped, so logs can be interleaved with trace spans by
/// time. Lines are buffered in memory (for tests and programmatic
/// consumers) and optionally appended to a file as they arrive.
class JsonLinesSink final : public LogSink {
 public:
  /// `path` empty keeps the sink memory-only.
  explicit JsonLinesSink(std::string path = "");

  void write(const LogRecord& record) override;

  /// Every line written so far (without trailing newlines).
  [[nodiscard]] std::vector<std::string> lines() const;

  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
  std::string path_;
};

/// Buffers records in memory for inspection by tests.
class MemorySink final : public LogSink {
 public:
  void write(const LogRecord& record) override;

  [[nodiscard]] std::vector<LogRecord> records() const;
  [[nodiscard]] std::size_t count(LogLevel level) const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<LogRecord> records_;
};

/// Global logging configuration: threshold level and active sink.
class LogConfig {
 public:
  static LogConfig& global();

  void set_level(LogLevel level);
  [[nodiscard]] LogLevel level() const;

  /// Installs `sink`; passing nullptr restores the default stderr sink.
  void set_sink(std::shared_ptr<LogSink> sink);
  [[nodiscard]] std::shared_ptr<LogSink> sink() const;

 private:
  LogConfig();
  mutable std::mutex mutex_;
  LogLevel level_ = LogLevel::warn;
  std::shared_ptr<LogSink> sink_;
};

/// A named logging facade. Cheap to copy.
class Logger {
 public:
  using ClockFn = std::function<double()>;

  explicit Logger(std::string name, ClockFn clock = nullptr);

  void log(LogLevel level, const std::string& message) const;

  void trace(const std::string& message) const { log(LogLevel::trace, message); }
  void debug(const std::string& message) const { log(LogLevel::debug, message); }
  void info(const std::string& message) const { log(LogLevel::info, message); }
  void warn(const std::string& message) const { log(LogLevel::warn, message); }
  void error(const std::string& message) const { log(LogLevel::error, message); }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  ClockFn clock_;
};

}  // namespace ripple::common
