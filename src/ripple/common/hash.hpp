#pragma once

/// \file hash.hpp
/// FNV-1a — the house fingerprint for determinism oracles.
///
/// Every subsystem that promises bit-reproducible behavior exposes a
/// rolling FNV-1a hash over its observable event stream (grant order,
/// transfer completions, batch traces). Suites and ablation benches
/// compare fingerprints across same-seed runs — and, for the sharded
/// runtime core, between the parallel and single-threaded paths — so a
/// determinism regression fails loudly instead of drifting silently.

#include <cstdint>
#include <string_view>

namespace ripple::common {

inline constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Folds `text` into a running FNV-1a hash.
[[nodiscard]] inline std::uint64_t fnv1a(std::uint64_t hash,
                                         std::string_view text) noexcept {
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

/// Folds an integer (its 8 little-endian bytes) into a running hash.
[[nodiscard]] inline std::uint64_t fnv1a(std::uint64_t hash,
                                         std::uint64_t value) noexcept {
  for (int shift = 0; shift < 64; shift += 8) {
    hash ^= (value >> shift) & 0xffu;
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace ripple::common
