#include "ripple/common/random.hpp"

#include <algorithm>
#include <cmath>

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::common {

namespace {

/// FNV-1a, used to mix fork tags into child seeds.
std::uint64_t hash_tag(std::string_view tag) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : tag) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// splitmix64 finalizer: decorrelates derived seeds.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97f4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed), engine_(mix(seed)) {}

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  ensure(lo <= hi, Errc::invalid_argument, "uniform_int: lo > hi");
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Rng::lognormal(double median, double sigma) {
  ensure(median > 0.0, Errc::invalid_argument, "lognormal median must be > 0");
  std::lognormal_distribution<double> dist(std::log(median), sigma);
  return dist(engine_);
}

double Rng::exponential(double mean) {
  ensure(mean > 0.0, Errc::invalid_argument, "exponential mean must be > 0");
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform(0.0, 1.0) < p;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  ensure(!weights.empty(), Errc::invalid_argument,
         "weighted_index: empty weights");
  double total = 0.0;
  for (const double w : weights) {
    ensure(w >= 0.0, Errc::invalid_argument,
           "weighted_index: negative weight");
    total += w;
  }
  ensure(total > 0.0, Errc::invalid_argument, "weighted_index: zero total");
  double pick = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    pick -= weights[i];
    if (pick < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork(std::string_view tag) {
  return Rng(mix(seed_ ^ hash_tag(tag)));
}

const char* to_string(Distribution::Kind kind) noexcept {
  switch (kind) {
    case Distribution::Kind::constant: return "constant";
    case Distribution::Kind::uniform: return "uniform";
    case Distribution::Kind::normal: return "normal";
    case Distribution::Kind::lognormal: return "lognormal";
    case Distribution::Kind::exponential: return "exponential";
  }
  return "?";
}

Distribution Distribution::constant(double value) {
  Distribution d;
  d.kind_ = Kind::constant;
  d.a_ = value;
  return d;
}

Distribution Distribution::uniform(double lo, double hi) {
  ensure(lo <= hi, Errc::invalid_argument, "uniform distribution: lo > hi");
  Distribution d;
  d.kind_ = Kind::uniform;
  d.a_ = lo;
  d.b_ = hi;
  return d;
}

Distribution Distribution::normal(double mean, double stddev, double floor) {
  ensure(stddev >= 0.0, Errc::invalid_argument,
         "normal distribution: negative stddev");
  Distribution d;
  d.kind_ = Kind::normal;
  d.a_ = mean;
  d.b_ = stddev;
  d.floor_ = floor;
  return d;
}

Distribution Distribution::lognormal(double median, double sigma,
                                     double floor) {
  ensure(median > 0.0, Errc::invalid_argument,
         "lognormal distribution: median must be > 0");
  Distribution d;
  d.kind_ = Kind::lognormal;
  d.a_ = median;
  d.b_ = sigma;
  d.floor_ = floor;
  return d;
}

Distribution Distribution::exponential(double mean, double floor) {
  ensure(mean > 0.0, Errc::invalid_argument,
         "exponential distribution: mean must be > 0");
  Distribution d;
  d.kind_ = Kind::exponential;
  d.a_ = mean;
  d.floor_ = floor;
  return d;
}

Distribution Distribution::from_json(const json::Value& spec) {
  if (spec.is_number()) return constant(spec.as_double());
  const std::string kind = spec.at("kind").as_string();
  if (kind == "constant") return constant(spec.at("value").as_double());
  if (kind == "uniform") {
    return uniform(spec.at("lo").as_double(), spec.at("hi").as_double());
  }
  if (kind == "normal") {
    return normal(spec.at("mean").as_double(), spec.at("stddev").as_double(),
                  spec.get_or("floor", 0.0).as_double());
  }
  if (kind == "lognormal") {
    return lognormal(spec.at("median").as_double(),
                     spec.at("sigma").as_double(),
                     spec.get_or("floor", 0.0).as_double());
  }
  if (kind == "exponential") {
    return exponential(spec.at("mean").as_double(),
                       spec.get_or("floor", 0.0).as_double());
  }
  raise(Errc::parse_error,
        strutil::cat("unknown distribution kind '", kind, "'"));
}

json::Value Distribution::to_json() const {
  json::Value out = json::Value::object();
  out.set("kind", to_string(kind_));
  switch (kind_) {
    case Kind::constant: out.set("value", a_); break;
    case Kind::uniform:
      out.set("lo", a_);
      out.set("hi", b_);
      break;
    case Kind::normal:
      out.set("mean", a_);
      out.set("stddev", b_);
      out.set("floor", floor_);
      break;
    case Kind::lognormal:
      out.set("median", a_);
      out.set("sigma", b_);
      out.set("floor", floor_);
      break;
    case Kind::exponential:
      out.set("mean", a_);
      out.set("floor", floor_);
      break;
  }
  return out;
}

double Distribution::sample(Rng& rng) const {
  double value = 0.0;
  switch (kind_) {
    case Kind::constant: value = a_; break;
    case Kind::uniform: value = rng.uniform(a_, b_); break;
    case Kind::normal: value = rng.normal(a_, b_); break;
    case Kind::lognormal: value = rng.lognormal(a_, b_); break;
    case Kind::exponential: value = rng.exponential(a_); break;
  }
  return std::max(value, floor_);
}

double Distribution::mean() const {
  switch (kind_) {
    case Kind::constant: return a_;
    case Kind::uniform: return (a_ + b_) / 2.0;
    case Kind::normal: return a_;
    case Kind::lognormal: return a_ * std::exp(b_ * b_ / 2.0);
    case Kind::exponential: return a_;
  }
  return 0.0;
}

Distribution Distribution::scaled(double factor) const {
  ensure(factor > 0.0, Errc::invalid_argument,
         "distribution scale factor must be > 0");
  Distribution d = *this;
  switch (kind_) {
    case Kind::constant: d.a_ *= factor; break;
    case Kind::uniform:
      d.a_ *= factor;
      d.b_ *= factor;
      break;
    case Kind::normal:
      d.a_ *= factor;
      d.b_ *= factor;
      break;
    case Kind::lognormal: d.a_ *= factor; break;
    case Kind::exponential: d.a_ *= factor; break;
  }
  d.floor_ *= factor;
  return d;
}

}  // namespace ripple::common
