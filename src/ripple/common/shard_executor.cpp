#include "ripple/common/shard_executor.hpp"

#include <exception>
#include <thread>

#include "ripple/common/error.hpp"

namespace ripple::common {

ShardExecutor::ShardExecutor(std::size_t shards) {
  if (shards == 0) {
    shards = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  shards_ = shards;
  if (shards_ > 1) {
    pool_ = std::make_unique<ThreadPool>(shards_ - 1);
  }
}

ShardExecutor::~ShardExecutor() = default;

void ShardExecutor::run(std::size_t tasks,
                        const std::function<void(std::size_t)>& fn) {
  ensure(static_cast<bool>(fn), Errc::invalid_argument,
         "ShardExecutor::run: empty shard function");
  if (tasks == 0) return;
  if (pool_ == nullptr || tasks == 1) {
    for (std::size_t s = 0; s < tasks; ++s) fn(s);
    return;
  }

  // Shards 1..tasks-1 go to the pool; the caller runs shard 0 so a
  // ShardExecutor(S) saturates exactly S threads. Exceptions are
  // collected per shard and the lowest-indexed one is rethrown after
  // every shard has finished — deterministic regardless of which
  // worker faulted first.
  std::vector<std::exception_ptr> errors(tasks);
  std::vector<std::future<void>> futures;
  futures.reserve(tasks - 1);
  for (std::size_t s = 1; s < tasks; ++s) {
    futures.push_back(pool_->submit([&fn, &errors, s] {
      try {
        fn(s);
      } catch (...) {
        errors[s] = std::current_exception();
      }
    }));
  }
  try {
    fn(0);
  } catch (...) {
    errors[0] = std::current_exception();
  }
  for (auto& future : futures) future.get();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace ripple::common
