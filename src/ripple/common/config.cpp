#include "ripple/common/config.hpp"

#include <fstream>
#include <sstream>

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::common {

Config::Config(json::Value root) : root_(std::move(root)) {
  ensure(root_.is_object(), Errc::invalid_argument,
         "config root must be a JSON object");
}

Config Config::from_string(const std::string& text) {
  return Config(json::Value::parse(text));
}

Config Config::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) raise(Errc::io_error, strutil::cat("cannot open '", path, "'"));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_string(buffer.str());
}

const json::Value* Config::find(const std::string& path) const {
  const json::Value* node = &root_;
  for (const auto& part : strutil::split(path, '.')) {
    if (!node->is_object() || !node->contains(part)) return nullptr;
    node = &node->at(part);
  }
  return node;
}

double Config::get_double(const std::string& path, double fallback) const {
  const auto* v = find(path);
  return (v != nullptr && v->is_number()) ? v->as_double() : fallback;
}

std::int64_t Config::get_int(const std::string& path,
                             std::int64_t fallback) const {
  const auto* v = find(path);
  return (v != nullptr && v->is_number()) ? v->as_int() : fallback;
}

bool Config::get_bool(const std::string& path, bool fallback) const {
  const auto* v = find(path);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : fallback;
}

std::string Config::get_string(const std::string& path,
                               const std::string& fallback) const {
  const auto* v = find(path);
  return (v != nullptr && v->is_string()) ? v->as_string() : fallback;
}

void Config::set(const std::string& path, json::Value value) {
  const auto parts = strutil::split(path, '.');
  ensure(!parts.empty() && !parts.front().empty(), Errc::invalid_argument,
         "config path must not be empty");
  json::Value* node = &root_;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    json::Value& child = (*node)[parts[i]];
    if (!child.is_object()) child = json::Value::object();
    node = &child;
  }
  (*node)[parts.back()] = std::move(value);
}

namespace {

void deep_merge(json::Value& base, const json::Value& overlay) {
  if (!base.is_object() || !overlay.is_object()) {
    base = overlay;
    return;
  }
  for (const auto& [key, value] : overlay.as_object()) {
    if (base.contains(key) && base.at(key).is_object() && value.is_object()) {
      deep_merge(base[key], value);
    } else {
      base[key] = value;
    }
  }
}

}  // namespace

void Config::merge(const Config& overlay) { deep_merge(root_, overlay.root()); }

}  // namespace ripple::common
