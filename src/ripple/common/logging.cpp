#include "ripple/common/logging.hpp"

#include <cstdio>
#include <fstream>

#include "ripple/common/json.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::common {

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO";
    case LogLevel::warn: return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF";
  }
  return "?";
}

void StderrSink::write(const LogRecord& record) {
  std::lock_guard lock(mutex_);
  if (record.time >= 0.0) {
    std::fprintf(stderr, "[%12.6f] %-5s %s: %s\n", record.time,
                 to_string(record.level), record.logger.c_str(),
                 record.message.c_str());
  } else {
    std::fprintf(stderr, "%-5s %s: %s\n", to_string(record.level),
                 record.logger.c_str(), record.message.c_str());
  }
}

JsonLinesSink::JsonLinesSink(std::string path) : path_(std::move(path)) {}

void JsonLinesSink::write(const LogRecord& record) {
  json::Value line = json::Value::object();
  line.set("time", record.time);
  line.set("level", to_string(record.level));
  line.set("logger", record.logger);
  line.set("message", record.message);
  std::string text = line.dump();
  std::lock_guard lock(mutex_);
  if (!path_.empty()) {
    std::ofstream out(path_, std::ios::app);
    if (out.good()) out << text << "\n";
  }
  lines_.push_back(std::move(text));
}

std::vector<std::string> JsonLinesSink::lines() const {
  std::lock_guard lock(mutex_);
  return lines_;
}

std::size_t JsonLinesSink::size() const {
  std::lock_guard lock(mutex_);
  return lines_.size();
}

void JsonLinesSink::clear() {
  std::lock_guard lock(mutex_);
  lines_.clear();
}

void MemorySink::write(const LogRecord& record) {
  std::lock_guard lock(mutex_);
  records_.push_back(record);
}

std::vector<LogRecord> MemorySink::records() const {
  std::lock_guard lock(mutex_);
  return records_;
}

std::size_t MemorySink::count(LogLevel level) const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.level == level) ++n;
  }
  return n;
}

void MemorySink::clear() {
  std::lock_guard lock(mutex_);
  records_.clear();
}

LogConfig::LogConfig() : sink_(std::make_shared<StderrSink>()) {}

LogConfig& LogConfig::global() {
  static LogConfig instance;
  return instance;
}

void LogConfig::set_level(LogLevel level) {
  std::lock_guard lock(mutex_);
  level_ = level;
}

LogLevel LogConfig::level() const {
  std::lock_guard lock(mutex_);
  return level_;
}

void LogConfig::set_sink(std::shared_ptr<LogSink> sink) {
  std::lock_guard lock(mutex_);
  sink_ = sink ? std::move(sink) : std::make_shared<StderrSink>();
}

std::shared_ptr<LogSink> LogConfig::sink() const {
  std::lock_guard lock(mutex_);
  return sink_;
}

Logger::Logger(std::string name, ClockFn clock)
    : name_(std::move(name)), clock_(std::move(clock)) {}

void Logger::log(LogLevel level, const std::string& message) const {
  auto& config = LogConfig::global();
  if (level < config.level()) return;
  LogRecord record;
  record.level = level;
  record.logger = name_;
  record.time = clock_ ? clock_() : -1.0;
  record.message = message;
  config.sink()->write(record);
}

}  // namespace ripple::common
