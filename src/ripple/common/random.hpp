#pragma once

/// \file random.hpp
/// Deterministic random number generation and duration distributions.
///
/// Every stochastic quantity in Ripple (network latency, model load time,
/// launch overhead, token counts, ...) is drawn from a named Distribution
/// through an explicitly seeded Rng, so each simulation run is exactly
/// reproducible. Rng::fork derives independent child streams from stable
/// string tags, which keeps component behaviour independent of the order
/// in which other components consume randomness.

#include <cstdint>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "ripple/common/json.hpp"

namespace ripple::common {

/// A seeded wrapper over mt19937_64 with convenience samplers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42);

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Gaussian with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev);

  /// Log-normal parameterized by its median and shape sigma.
  [[nodiscard]] double lognormal(double median, double sigma);

  /// Exponential with the given mean (not rate).
  [[nodiscard]] double exponential(double mean);

  /// True with probability p.
  [[nodiscard]] bool chance(double p);

  /// Index drawn proportionally to non-negative weights.
  [[nodiscard]] std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child generator from this one and a stable tag.
  [[nodiscard]] Rng fork(std::string_view tag);

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

/// A small algebra of duration distributions, parseable from JSON config.
/// All samples are clamped at `floor` (default 0) because durations,
/// latencies and sizes must stay non-negative.
class Distribution {
 public:
  enum class Kind { constant, uniform, normal, lognormal, exponential };

  Distribution() = default;

  [[nodiscard]] static Distribution constant(double value);
  [[nodiscard]] static Distribution uniform(double lo, double hi);
  [[nodiscard]] static Distribution normal(double mean, double stddev,
                                           double floor = 0.0);
  [[nodiscard]] static Distribution lognormal(double median, double sigma,
                                              double floor = 0.0);
  [[nodiscard]] static Distribution exponential(double mean,
                                                double floor = 0.0);

  /// Parses {"kind":"normal","mean":1.0,"stddev":0.1} style specs.
  [[nodiscard]] static Distribution from_json(const json::Value& spec);

  [[nodiscard]] json::Value to_json() const;

  [[nodiscard]] double sample(Rng& rng) const;

  /// Analytic mean of the distribution (ignoring the floor clamp).
  [[nodiscard]] double mean() const;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

  /// Returns a copy of this distribution scaled by `factor` (> 0).
  [[nodiscard]] Distribution scaled(double factor) const;

 private:
  Kind kind_ = Kind::constant;
  double a_ = 0.0;  ///< constant value | lo | mean | median | mean
  double b_ = 0.0;  ///< unused | hi | stddev | sigma | unused
  double floor_ = 0.0;
};

[[nodiscard]] const char* to_string(Distribution::Kind kind) noexcept;

}  // namespace ripple::common
