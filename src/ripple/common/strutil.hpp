#pragma once

/// \file strutil.hpp
/// Small string helpers shared across Ripple (no external dependencies).

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace ripple::strutil {

/// Concatenates all arguments through an ostringstream. The building block
/// for log and error messages (GCC 12 lacks std::format).
template <typename... Args>
[[nodiscard]] std::string cat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}

/// Splits `text` on `sep`, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// Joins `parts` with `sep` between consecutive elements.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string trim(std::string_view text);

[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view text, std::string_view suffix);

/// Lowercases ASCII characters only.
[[nodiscard]] std::string to_lower(std::string_view text);

/// Left-pads `text` with spaces to at least `width` characters.
[[nodiscard]] std::string pad_left(std::string_view text, std::size_t width);

/// Right-pads `text` with spaces to at least `width` characters.
[[nodiscard]] std::string pad_right(std::string_view text, std::size_t width);

/// Formats a duration in seconds with an adaptive unit (ns/us/ms/s/min/h).
[[nodiscard]] std::string format_duration(double seconds);

/// Formats a byte count with binary units (B/KiB/MiB/GiB/TiB).
[[nodiscard]] std::string format_bytes(double bytes);

/// Fixed-precision decimal formatting (std::to_string has fixed 6 digits).
[[nodiscard]] std::string format_fixed(double value, int precision);

/// Zero-padded decimal rendering of `value` at `width` digits.
[[nodiscard]] std::string zero_pad(std::uint64_t value, int width);

}  // namespace ripple::strutil
