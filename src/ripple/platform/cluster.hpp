#pragma once

/// \file cluster.hpp
/// A platform instance: named nodes registered on the network, node
/// reservation for pilots, and the platform's Launcher.
///
/// One Cluster is created per PlatformProfile added to a Session. Its
/// zone name equals the profile name; links to other clusters use the
/// profiles' WAN models unless explicitly overridden.

#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ripple/common/random.hpp"
#include "ripple/platform/launcher.hpp"
#include "ripple/platform/node.hpp"
#include "ripple/platform/profiles.hpp"
#include "ripple/sim/network.hpp"

namespace ripple::platform {

class Cluster {
 public:
  Cluster(sim::EventLoop& loop, sim::Network& network,
          PlatformProfile profile, common::Rng rng);

  [[nodiscard]] const std::string& name() const noexcept {
    return profile_.name;
  }
  [[nodiscard]] const PlatformProfile& profile() const noexcept {
    return profile_;
  }

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t free_node_count() const noexcept;

  /// Reserves `count` whole nodes for a pilot; throws Errc::capacity when
  /// not enough free nodes exist. Grants the lowest-indexed free nodes
  /// via an ordered free-index set — O(count log nodes), not a scan of
  /// the whole node table.
  [[nodiscard]] std::vector<Node*> reserve_nodes(std::size_t count);

  /// Returns nodes reserved by reserve_nodes.
  void release_nodes(const std::vector<Node*>& nodes);

  [[nodiscard]] Node& node(std::size_t index);

  /// O(1) lookup by node id; nullptr when unknown.
  [[nodiscard]] Node* find_node(const std::string& node_id);

  /// Crashes a node (Node::fail). A free node is parked out of the
  /// reservation pool until restore_node; a reserved node stays with
  /// its pilot, which observes the capacity drop through the index.
  void fail_node(Node& node);

  /// Rejoins a crashed node (Node::restore); a parked free node
  /// re-enters the reservation pool at its original index.
  void restore_node(Node& node);

  [[nodiscard]] Launcher& launcher() noexcept { return launcher_; }

  /// The host id of this cluster's head/login node (used for manager
  /// endpoints and remote service fronts).
  [[nodiscard]] const sim::HostId& head_host() const noexcept {
    return head_host_;
  }

 private:
  PlatformProfile profile_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unordered_set<const Node*> reserved_;
  std::unordered_map<std::string, Node*> by_id_;
  /// Free node indices, ordered — reservation pops from the front,
  /// preserving the legacy linear scan's lowest-index-first grants.
  std::set<std::size_t> free_indices_;
  /// Crashed nodes not reserved by any pilot: parked here instead of
  /// free_indices_ so reserve_nodes never hands out a dead node.
  std::set<std::size_t> dead_free_;
  /// Node -> index, so release_nodes restores free_indices_ in O(log N).
  std::unordered_map<const Node*, std::size_t> index_of_;
  Launcher launcher_;
  sim::HostId head_host_;
};

/// Wires the network links for a set of clusters: intra-zone links from
/// each profile's internode model, inter-zone links from the max of the
/// two profiles' WAN latencies (conservative) and min bandwidth.
void connect_clusters(sim::Network& network,
                      const std::vector<Cluster*>& clusters);

}  // namespace ripple::platform
