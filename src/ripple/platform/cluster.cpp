#include "ripple/platform/cluster.hpp"

#include <algorithm>

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::platform {

Cluster::Cluster(sim::EventLoop& loop, sim::Network& network,
                 PlatformProfile profile, common::Rng rng)
    : profile_(std::move(profile)),
      launcher_(loop, rng.fork("launcher"), profile_.launch) {
  ensure(profile_.max_nodes > 0, Errc::invalid_argument,
         "cluster needs at least one node");
  nodes_.reserve(profile_.max_nodes);
  by_id_.reserve(profile_.max_nodes);
  index_of_.reserve(profile_.max_nodes);
  for (std::size_t i = 0; i < profile_.max_nodes; ++i) {
    const std::string node_id =
        strutil::cat(profile_.name, ":node", strutil::zero_pad(i, 4));
    network.register_host(node_id, profile_.name);
    nodes_.push_back(std::make_unique<Node>(node_id, profile_.node, node_id));
    by_id_.emplace(node_id, nodes_.back().get());
    index_of_.emplace(nodes_.back().get(), i);
    free_indices_.insert(free_indices_.end(), i);
  }
  head_host_ = strutil::cat(profile_.name, ":head");
  network.register_host(head_host_, profile_.name);
  // Intra-zone link (inter-node); also covers head <-> node traffic.
  network.set_link(profile_.name, profile_.name,
                   sim::LinkModel{profile_.internode_latency,
                                  profile_.internode_bandwidth_bytes_per_s});
  // Node-local messaging still crosses the TCP/ZeroMQ stack: charge a
  // slightly discounted inter-node latency instead of a free loopback.
  network.set_zone_loopback(
      profile_.name,
      sim::LinkModel{profile_.internode_latency.scaled(0.8),
                     profile_.internode_bandwidth_bytes_per_s});
}

std::size_t Cluster::free_node_count() const noexcept {
  return free_indices_.size();
}

std::vector<Node*> Cluster::reserve_nodes(std::size_t count) {
  ensure(count > 0, Errc::invalid_argument, "reserve_nodes: zero nodes");
  ensure(count <= free_node_count(), Errc::capacity,
         strutil::cat("cluster ", profile_.name, ": requested ", count,
                      " nodes, only ", free_node_count(), " free"));
  std::vector<Node*> out;
  out.reserve(count);
  while (out.size() < count) {
    const auto first = free_indices_.begin();
    Node* node = nodes_[*first].get();
    free_indices_.erase(first);
    reserved_.insert(node);
    out.push_back(node);
  }
  return out;
}

void Cluster::release_nodes(const std::vector<Node*>& nodes) {
  for (const Node* node : nodes) {
    if (reserved_.erase(node) > 0) {
      const std::size_t index = index_of_.find(node)->second;
      (node->alive() ? free_indices_ : dead_free_).insert(index);
    }
  }
}

void Cluster::fail_node(Node& node) {
  node.fail();
  const std::size_t index = index_of_.find(&node)->second;
  if (free_indices_.erase(index) > 0) dead_free_.insert(index);
}

void Cluster::restore_node(Node& node) {
  node.restore();
  const std::size_t index = index_of_.find(&node)->second;
  if (dead_free_.erase(index) > 0) free_indices_.insert(index);
}

Node& Cluster::node(std::size_t index) {
  ensure(index < nodes_.size(), Errc::invalid_argument,
         strutil::cat("node index ", index, " out of range"));
  return *nodes_[index];
}

Node* Cluster::find_node(const std::string& node_id) {
  const auto it = by_id_.find(node_id);
  return it == by_id_.end() ? nullptr : it->second;
}

void connect_clusters(sim::Network& network,
                      const std::vector<Cluster*>& clusters) {
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    for (std::size_t j = i + 1; j < clusters.size(); ++j) {
      const auto& a = clusters[i]->profile();
      const auto& b = clusters[j]->profile();
      // Conservative WAN model: the slower of the two profiles governs.
      const common::Distribution latency =
          a.wan_latency.mean() >= b.wan_latency.mean() ? a.wan_latency
                                                       : b.wan_latency;
      const double bandwidth = std::min(a.wan_bandwidth_bytes_per_s,
                                        b.wan_bandwidth_bytes_per_s);
      network.set_link(a.name, b.name, sim::LinkModel{latency, bandwidth});
    }
  }
}

}  // namespace ripple::platform
