#pragma once

/// \file node.hpp
/// Compute node model: core/GPU/memory slot bookkeeping.
///
/// Tasks and services are placed onto single nodes (the RADICAL-Pilot
/// agent-scheduler granularity this paper uses: "self-contained processes
/// placed on specific HPC nodes"). A Node tracks free capacity; the
/// scheduler does first-fit across a pilot's nodes.

#include <cstddef>
#include <string>

#include "ripple/common/json.hpp"
#include "ripple/sim/network.hpp"

namespace ripple::platform {

/// Static node shape.
struct NodeSpec {
  std::size_t cores = 64;
  std::size_t gpus = 8;
  double mem_gb = 512.0;

  [[nodiscard]] json::Value to_json() const;
};

/// A placement on a node: the unit the scheduler grants and the executor
/// releases.
struct Slot {
  std::string node_id;
  std::size_t cores = 0;
  std::size_t gpus = 0;
  double mem_gb = 0.0;

  /// The node incarnation that granted this slot. A crash bumps the
  /// node's incarnation, so slots from a previous life are recognized
  /// (and ignored) when released after the node restarts.
  std::uint64_t incarnation = 0;

  [[nodiscard]] bool valid() const noexcept { return !node_id.empty(); }
};

class Node;

/// Observes free-capacity changes on a Node. The scheduler's
/// CapacityIndex registers itself so allocate/release keep the index
/// current without rescans.
class CapacityListener {
 public:
  virtual ~CapacityListener() = default;
  virtual void on_capacity_changed(const Node& node) = 0;
};

class Node {
 public:
  Node(std::string id, NodeSpec spec, sim::HostId host);

  [[nodiscard]] const std::string& id() const noexcept { return id_; }
  [[nodiscard]] const sim::HostId& host() const noexcept { return host_; }
  [[nodiscard]] const NodeSpec& spec() const noexcept { return spec_; }

  [[nodiscard]] std::size_t free_cores() const noexcept { return free_cores_; }
  [[nodiscard]] std::size_t free_gpus() const noexcept { return free_gpus_; }
  [[nodiscard]] double free_mem_gb() const noexcept { return free_mem_gb_; }

  [[nodiscard]] bool alive() const noexcept { return alive_; }
  [[nodiscard]] std::uint64_t incarnation() const noexcept {
    return incarnation_;
  }

  /// Execution-speed multiplier on modeled payload durations (> 1 means
  /// slower — the straggler model). Reset to 1 by fail()/restore().
  [[nodiscard]] double speed_factor() const noexcept { return speed_factor_; }
  void set_speed_factor(double factor);

  /// Crashes the node: free capacity drops to zero (the listener —
  /// i.e. the scheduler's CapacityIndex — sees the change and stops
  /// placing here) and the incarnation advances so outstanding slots
  /// become stale. Idempotent.
  void fail();

  /// Rejoins after a crash with full capacity; slots from the previous
  /// incarnation stay dead. Idempotent.
  void restore();

  /// True when a request of this shape fits right now (dead nodes fit
  /// nothing).
  [[nodiscard]] bool can_fit(std::size_t cores, std::size_t gpus,
                             double mem_gb) const noexcept;

  /// Claims capacity; throws invalid_state if it does not fit.
  [[nodiscard]] Slot allocate(std::size_t cores, std::size_t gpus,
                              double mem_gb);

  /// Returns a slot's capacity; throws invalid_state on double release.
  /// Slots granted by a previous incarnation (the node crashed since)
  /// are ignored: their capacity died with the node.
  void release(const Slot& slot);

  /// At most one listener at a time; pass nullptr to clear.
  void set_capacity_listener(CapacityListener* listener) noexcept {
    listener_ = listener;
  }
  [[nodiscard]] CapacityListener* capacity_listener() const noexcept {
    return listener_;
  }

 private:
  void notify() {
    if (listener_ != nullptr) listener_->on_capacity_changed(*this);
  }

  std::string id_;
  NodeSpec spec_;
  sim::HostId host_;
  std::size_t free_cores_;
  std::size_t free_gpus_;
  double free_mem_gb_;
  bool alive_ = true;
  std::uint64_t incarnation_ = 0;
  double speed_factor_ = 1.0;
  CapacityListener* listener_ = nullptr;
};

}  // namespace ripple::platform
