#pragma once

/// \file node.hpp
/// Compute node model: core/GPU/memory slot bookkeeping.
///
/// Tasks and services are placed onto single nodes (the RADICAL-Pilot
/// agent-scheduler granularity this paper uses: "self-contained processes
/// placed on specific HPC nodes"). A Node tracks free capacity; the
/// scheduler does first-fit across a pilot's nodes.

#include <cstddef>
#include <string>

#include "ripple/common/json.hpp"
#include "ripple/sim/network.hpp"

namespace ripple::platform {

/// Static node shape.
struct NodeSpec {
  std::size_t cores = 64;
  std::size_t gpus = 8;
  double mem_gb = 512.0;

  [[nodiscard]] json::Value to_json() const;
};

/// A placement on a node: the unit the scheduler grants and the executor
/// releases.
struct Slot {
  std::string node_id;
  std::size_t cores = 0;
  std::size_t gpus = 0;
  double mem_gb = 0.0;

  [[nodiscard]] bool valid() const noexcept { return !node_id.empty(); }
};

class Node;

/// Observes free-capacity changes on a Node. The scheduler's
/// CapacityIndex registers itself so allocate/release keep the index
/// current without rescans.
class CapacityListener {
 public:
  virtual ~CapacityListener() = default;
  virtual void on_capacity_changed(const Node& node) = 0;
};

class Node {
 public:
  Node(std::string id, NodeSpec spec, sim::HostId host);

  [[nodiscard]] const std::string& id() const noexcept { return id_; }
  [[nodiscard]] const sim::HostId& host() const noexcept { return host_; }
  [[nodiscard]] const NodeSpec& spec() const noexcept { return spec_; }

  [[nodiscard]] std::size_t free_cores() const noexcept { return free_cores_; }
  [[nodiscard]] std::size_t free_gpus() const noexcept { return free_gpus_; }
  [[nodiscard]] double free_mem_gb() const noexcept { return free_mem_gb_; }

  /// True when a request of this shape fits right now.
  [[nodiscard]] bool can_fit(std::size_t cores, std::size_t gpus,
                             double mem_gb) const noexcept;

  /// Claims capacity; throws invalid_state if it does not fit.
  [[nodiscard]] Slot allocate(std::size_t cores, std::size_t gpus,
                              double mem_gb);

  /// Returns a slot's capacity; throws invalid_state on double release.
  void release(const Slot& slot);

  /// At most one listener at a time; pass nullptr to clear.
  void set_capacity_listener(CapacityListener* listener) noexcept {
    listener_ = listener;
  }
  [[nodiscard]] CapacityListener* capacity_listener() const noexcept {
    return listener_;
  }

 private:
  void notify() {
    if (listener_ != nullptr) listener_->on_capacity_changed(*this);
  }

  std::string id_;
  NodeSpec spec_;
  sim::HostId host_;
  std::size_t free_cores_;
  std::size_t free_gpus_;
  double free_mem_gb_;
  CapacityListener* listener_ = nullptr;
};

}  // namespace ripple::platform
