#pragma once

/// \file profiles.hpp
/// Calibrated platform profiles: OLCF Frontier, NCSA Delta, R3 cloud.
///
/// The calibration constants come from the paper's own measurements
/// (section IV): Delta inter-node latency 0.063 +/- 0.014 ms, Delta<->R3
/// 0.47 +/- 0.04 ms, launch overhead flat to 160 concurrent instances,
/// llama-8b model init dominating bootstrap time. Absolute values are
/// approximations; the benches validate *shape* (who dominates, where
/// the elbow falls), not testbed-exact numbers.

#include <cstddef>
#include <string>

#include "ripple/common/json.hpp"
#include "ripple/common/random.hpp"
#include "ripple/platform/launcher.hpp"
#include "ripple/platform/node.hpp"

namespace ripple::platform {

struct PlatformProfile {
  std::string name;          ///< also the network zone name
  NodeSpec node;
  std::size_t max_nodes = 1;

  /// Intra-platform inter-node one-way latency.
  common::Distribution internode_latency =
      common::Distribution::constant(100e-6);
  double internode_bandwidth_bytes_per_s = 12.5e9;  ///< 100 Gb/s default

  LaunchModel launch;

  /// Endpoint-publication overhead beyond the registry round-trip
  /// (ZeroMQ socket setup, registry persistence, ...). Fig. 3 "publish".
  common::Distribution endpoint_publish =
      common::Distribution::lognormal(0.15, 0.25, 1e-3);

  /// Shared-filesystem contention: model-load time is multiplied by
  /// (1 + fs_contention_coeff * max(0, loaders - fs_contention_threshold)).
  double fs_contention_coeff = 0.0;
  std::size_t fs_contention_threshold = 64;

  /// Wide-area latency used for links from this platform to others when
  /// no explicit pair link is configured.
  common::Distribution wan_latency =
      common::Distribution::normal(0.47e-3, 0.04e-3, 1e-6);
  double wan_bandwidth_bytes_per_s = 1.25e9;  ///< 10 Gb/s default

  [[nodiscard]] json::Value to_json() const;
};

/// OLCF Frontier: 8 GPUs (MI250X GCDs) and 64 cores per node. Used by
/// Experiment 1 at up to 640 one-GPU service instances (80 nodes).
[[nodiscard]] PlatformProfile frontier_profile(std::size_t nodes = 80);

/// NCSA Delta: 4-way A100 nodes, 64 cores. Experiments 2-3 use a
/// 256-core / 16-GPU pilot (4 nodes).
[[nodiscard]] PlatformProfile delta_profile(std::size_t nodes = 4);

/// R3: a cloud host exposing persistent ML services over REST/ZeroMQ.
[[nodiscard]] PlatformProfile r3_profile(std::size_t nodes = 2);

/// Looks up a built-in profile by name ("frontier", "delta", "r3").
[[nodiscard]] PlatformProfile profile_by_name(const std::string& name,
                                              std::size_t nodes = 0);

}  // namespace ripple::platform
