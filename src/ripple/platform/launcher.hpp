#pragma once

/// \file launcher.hpp
/// Process launch-time models (FORK / SSH / MPIEXEC / PRRTE).
///
/// Experiment 1 of the paper observes that service launch time is nearly
/// constant up to ~160 concurrent instances and then grows, attributed
/// to MPI startup. LaunchModel captures exactly that: a base duration
/// distribution plus a contention term that activates above a
/// concurrency threshold. Launcher tracks in-flight launches so the
/// contention term sees the actual concurrency.

#include <cstdint>
#include <functional>
#include <string>

#include "ripple/common/random.hpp"
#include "ripple/sim/event_loop.hpp"

namespace ripple::platform {

enum class LaunchMethod { fork, ssh, mpiexec, prrte };

[[nodiscard]] const char* to_string(LaunchMethod method) noexcept;
[[nodiscard]] LaunchMethod launch_method_from_string(const std::string& name);

/// Parameterized launch-duration model.
struct LaunchModel {
  LaunchMethod method = LaunchMethod::fork;
  common::Distribution base = common::Distribution::constant(0.1);

  /// Concurrency above which system-level startup overhead appears.
  std::size_t contention_threshold = 160;

  /// Seconds of extra launch time per concurrent launch beyond the
  /// threshold, applied as coeff * (concurrency - threshold)^exponent.
  double contention_coeff = 0.0;
  double contention_exponent = 1.0;

  /// Samples a launch duration at the given concurrency level.
  [[nodiscard]] sim::Duration sample(common::Rng& rng,
                                     std::size_t concurrency) const;

  /// Mean duration at a concurrency level (for capacity planning).
  [[nodiscard]] double mean(std::size_t concurrency) const;
};

/// Asynchronous launcher: counts in-flight launches and completes each
/// one after a sampled duration.
class Launcher {
 public:
  using Callback = std::function<void(sim::Duration actual)>;

  Launcher(sim::EventLoop& loop, common::Rng rng, LaunchModel model);

  /// Begins a launch; `done(duration)` fires when the process is up.
  /// The effective concurrency is max(in-flight launches,
  /// `concurrency_hint`); the hint lets a caller report the size of a
  /// submission wave before all of its launches have started.
  void launch(Callback done, std::size_t concurrency_hint = 0);

  [[nodiscard]] std::size_t in_flight() const noexcept { return in_flight_; }
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
  [[nodiscard]] const LaunchModel& model() const noexcept { return model_; }

 private:
  sim::EventLoop& loop_;
  common::Rng rng_;
  LaunchModel model_;
  std::size_t in_flight_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace ripple::platform
