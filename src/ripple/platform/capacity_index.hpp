#pragma once

/// \file capacity_index.hpp
/// Incrementally maintained free-capacity index over a fixed node set.
///
/// The scheduler's placement hot path needs "the lowest-indexed node
/// whose free cores, GPUs and memory all cover a request" — the same
/// node a linear first-fit scan would pick, but in O(log N). The index
/// is a segment tree over the nodes (leaf order = registration order)
/// whose inner nodes store per-dimension maxima of free capacity.
/// first_fit() descends left-first, pruning any subtree whose maximum
/// in some dimension is below the request: such a subtree cannot
/// contain a fitting node. Leaves hold exact free values, so the first
/// leaf reached is exactly the linear scan's answer.
///
/// Updates arrive through the CapacityListener hook on Node: every
/// allocate/release refreshes one leaf and its O(log N) ancestors —
/// no rescan, ever.

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "ripple/platform/node.hpp"

namespace ripple::platform {

class CapacityIndex final : public CapacityListener {
 public:
  CapacityIndex() = default;
  ~CapacityIndex() override;

  CapacityIndex(const CapacityIndex&) = delete;
  CapacityIndex& operator=(const CapacityIndex&) = delete;

  /// Builds the tree over `nodes` (their order defines first-fit order)
  /// and registers as their capacity listener. Replaces any previous
  /// attachment.
  void attach(const std::vector<Node*>& nodes);

  /// Unregisters from all nodes and clears the tree.
  void detach();

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

  /// The node a first-fit linear scan would pick, or nullptr when no
  /// node currently fits. O(log N) on typical shapes.
  [[nodiscard]] Node* first_fit(std::size_t cores, std::size_t gpus,
                                double mem_gb) const;

  /// O(1) necessary condition: false guarantees first_fit() == nullptr.
  [[nodiscard]] bool may_fit(std::size_t cores, std::size_t gpus,
                             double mem_gb) const noexcept;

  /// Largest free-core count over all attached nodes (0 when empty).
  [[nodiscard]] std::size_t max_free_cores() const noexcept;

  // CapacityListener
  void on_capacity_changed(const Node& node) override;

 private:
  /// Per-subtree maxima of free capacity, one dimension each.
  struct Maxima {
    std::size_t cores = 0;
    std::size_t gpus = 0;
    double mem_gb = 0.0;
  };

  [[nodiscard]] static bool covers(const Maxima& m, std::size_t cores,
                                   std::size_t gpus,
                                   double mem_gb) noexcept {
    return cores <= m.cores && gpus <= m.gpus && mem_gb <= m.mem_gb;
  }

  void pull_up(std::size_t tree_index);

  std::vector<Node*> nodes_;
  std::unordered_map<const Node*, std::size_t> leaf_of_;
  std::vector<Maxima> tree_;  ///< 1-based; leaves at [cap_, 2*cap_)
  std::size_t cap_ = 0;       ///< power-of-two leaf capacity
};

}  // namespace ripple::platform
