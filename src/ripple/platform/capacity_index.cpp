#include "ripple/platform/capacity_index.hpp"

#include "ripple/common/error.hpp"

namespace ripple::platform {

CapacityIndex::~CapacityIndex() { detach(); }

void CapacityIndex::attach(const std::vector<Node*>& nodes) {
  detach();
  nodes_ = nodes;
  leaf_of_.reserve(nodes_.size());
  cap_ = 1;
  while (cap_ < nodes_.size()) cap_ <<= 1;
  if (nodes_.empty()) cap_ = 0;
  tree_.assign(cap_ * 2, Maxima{});
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node* node = nodes_[i];
    ensure(node != nullptr, Errc::invalid_argument,
           "capacity index: null node");
    ensure(leaf_of_.emplace(node, i).second, Errc::invalid_argument,
           "capacity index: duplicate node");
    ensure(node->capacity_listener() == nullptr, Errc::invalid_state,
           "capacity index: node already has a listener");
    node->set_capacity_listener(this);
    tree_[cap_ + i] =
        Maxima{node->free_cores(), node->free_gpus(), node->free_mem_gb()};
  }
  for (std::size_t i = cap_; i-- > 1;) {
    const Maxima& left = tree_[i * 2];
    const Maxima& right = tree_[i * 2 + 1];
    tree_[i] = Maxima{std::max(left.cores, right.cores),
                      std::max(left.gpus, right.gpus),
                      std::max(left.mem_gb, right.mem_gb)};
  }
}

void CapacityIndex::detach() {
  for (Node* node : nodes_) {
    if (node->capacity_listener() == this) {
      node->set_capacity_listener(nullptr);
    }
  }
  nodes_.clear();
  leaf_of_.clear();
  tree_.clear();
  cap_ = 0;
}

bool CapacityIndex::may_fit(std::size_t cores, std::size_t gpus,
                            double mem_gb) const noexcept {
  return cap_ != 0 && covers(tree_[1], cores, gpus, mem_gb);
}

std::size_t CapacityIndex::max_free_cores() const noexcept {
  return cap_ == 0 ? 0 : tree_[1].cores;
}

Node* CapacityIndex::first_fit(std::size_t cores, std::size_t gpus,
                               double mem_gb) const {
  if (!may_fit(cores, gpus, mem_gb)) return nullptr;
  // Left-first descent. Per-dimension maxima give exact pruning per
  // dimension (max < request means no leaf below suffices), but a
  // subtree passing all three may still hold no single fitting node, so
  // the descent backtracks; leaves are exact.
  std::size_t index = 1;
  while (index < cap_) {
    const std::size_t left = index * 2;
    if (covers(tree_[left], cores, gpus, mem_gb)) {
      index = left;
      continue;
    }
    const std::size_t right = left + 1;
    if (covers(tree_[right], cores, gpus, mem_gb)) {
      index = right;
      continue;
    }
    // Both children fail although the parent passed: the parent's maxima
    // mix dimensions from different subtrees. Backtrack to the nearest
    // ancestor we entered as a left child and take its right sibling.
    while (index != 1 && ((index & 1u) == 1u ||
                          !covers(tree_[index + 1], cores, gpus, mem_gb))) {
      index /= 2;
    }
    if (index == 1) return nullptr;
    index += 1;
  }
  const std::size_t leaf = index - cap_;
  return leaf < nodes_.size() ? nodes_[leaf] : nullptr;
}

void CapacityIndex::on_capacity_changed(const Node& node) {
  const auto it = leaf_of_.find(&node);
  if (it == leaf_of_.end()) return;
  const std::size_t leaf = cap_ + it->second;
  tree_[leaf] =
      Maxima{node.free_cores(), node.free_gpus(), node.free_mem_gb()};
  pull_up(leaf / 2);
}

void CapacityIndex::pull_up(std::size_t tree_index) {
  while (tree_index >= 1) {
    const Maxima& left = tree_[tree_index * 2];
    const Maxima& right = tree_[tree_index * 2 + 1];
    tree_[tree_index] = Maxima{std::max(left.cores, right.cores),
                               std::max(left.gpus, right.gpus),
                               std::max(left.mem_gb, right.mem_gb)};
    tree_index /= 2;
  }
}

}  // namespace ripple::platform
