#include "ripple/platform/node.hpp"

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::platform {

json::Value NodeSpec::to_json() const {
  json::Value out = json::Value::object();
  out.set("cores", cores);
  out.set("gpus", gpus);
  out.set("mem_gb", mem_gb);
  return out;
}

Node::Node(std::string id, NodeSpec spec, sim::HostId host)
    : id_(std::move(id)),
      spec_(spec),
      host_(std::move(host)),
      free_cores_(spec.cores),
      free_gpus_(spec.gpus),
      free_mem_gb_(spec.mem_gb) {}

bool Node::can_fit(std::size_t cores, std::size_t gpus,
                   double mem_gb) const noexcept {
  return alive_ && cores <= free_cores_ && gpus <= free_gpus_ &&
         mem_gb <= free_mem_gb_;
}

void Node::set_speed_factor(double factor) {
  ensure(factor > 0.0, Errc::invalid_argument,
         strutil::cat("node ", id_, ": speed factor must be positive"));
  speed_factor_ = factor;
}

void Node::fail() {
  if (!alive_) return;
  alive_ = false;
  ++incarnation_;
  speed_factor_ = 1.0;
  free_cores_ = 0;
  free_gpus_ = 0;
  free_mem_gb_ = 0.0;
  notify();
}

void Node::restore() {
  if (alive_) return;
  alive_ = true;
  speed_factor_ = 1.0;
  free_cores_ = spec_.cores;
  free_gpus_ = spec_.gpus;
  free_mem_gb_ = spec_.mem_gb;
  notify();
}

Slot Node::allocate(std::size_t cores, std::size_t gpus, double mem_gb) {
  ensure(can_fit(cores, gpus, mem_gb), Errc::invalid_state,
         strutil::cat("node ", id_, ": allocation (", cores, "c/", gpus,
                      "g/", mem_gb, "GB) does not fit (free ", free_cores_,
                      "c/", free_gpus_, "g/", free_mem_gb_, "GB)"));
  free_cores_ -= cores;
  free_gpus_ -= gpus;
  free_mem_gb_ -= mem_gb;
  notify();
  return Slot{id_, cores, gpus, mem_gb, incarnation_};
}

void Node::release(const Slot& slot) {
  ensure(slot.node_id == id_, Errc::invalid_argument,
         strutil::cat("slot for node ", slot.node_id, " released on node ",
                      id_));
  // Stale slot from before a crash: its capacity died with the node.
  if (slot.incarnation != incarnation_) return;
  ensure(free_cores_ + slot.cores <= spec_.cores &&
             free_gpus_ + slot.gpus <= spec_.gpus,
         Errc::invalid_state,
         strutil::cat("double release on node ", id_));
  free_cores_ += slot.cores;
  free_gpus_ += slot.gpus;
  free_mem_gb_ += slot.mem_gb;
  notify();
}

}  // namespace ripple::platform
