#include "ripple/platform/launcher.hpp"

#include <algorithm>
#include <cmath>

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::platform {

const char* to_string(LaunchMethod method) noexcept {
  switch (method) {
    case LaunchMethod::fork: return "fork";
    case LaunchMethod::ssh: return "ssh";
    case LaunchMethod::mpiexec: return "mpiexec";
    case LaunchMethod::prrte: return "prrte";
  }
  return "?";
}

LaunchMethod launch_method_from_string(const std::string& name) {
  if (name == "fork") return LaunchMethod::fork;
  if (name == "ssh") return LaunchMethod::ssh;
  if (name == "mpiexec") return LaunchMethod::mpiexec;
  if (name == "prrte") return LaunchMethod::prrte;
  raise(Errc::parse_error,
        strutil::cat("unknown launch method '", name, "'"));
}

namespace {

double contention_extra(const LaunchModel& model, std::size_t concurrency) {
  if (concurrency <= model.contention_threshold ||
      model.contention_coeff <= 0.0) {
    return 0.0;
  }
  const double excess =
      static_cast<double>(concurrency - model.contention_threshold);
  return model.contention_coeff *
         std::pow(excess, model.contention_exponent);
}

}  // namespace

sim::Duration LaunchModel::sample(common::Rng& rng,
                                  std::size_t concurrency) const {
  return base.sample(rng) + contention_extra(*this, concurrency);
}

double LaunchModel::mean(std::size_t concurrency) const {
  return base.mean() + contention_extra(*this, concurrency);
}

Launcher::Launcher(sim::EventLoop& loop, common::Rng rng, LaunchModel model)
    : loop_(loop), rng_(rng), model_(model) {}

void Launcher::launch(Callback done, std::size_t concurrency_hint) {
  ensure(static_cast<bool>(done), Errc::invalid_argument,
         "launch: empty callback");
  ++in_flight_;
  const std::size_t concurrency = std::max(in_flight_, concurrency_hint);
  const sim::Duration duration = model_.sample(rng_, concurrency);
  loop_.call_after(duration, [this, duration, done = std::move(done)] {
    --in_flight_;
    ++completed_;
    done(duration);
  });
}

}  // namespace ripple::platform
