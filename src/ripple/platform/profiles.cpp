#include "ripple/platform/profiles.hpp"

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::platform {

json::Value PlatformProfile::to_json() const {
  json::Value out = json::Value::object();
  out.set("name", name);
  out.set("node", node.to_json());
  out.set("max_nodes", max_nodes);
  out.set("internode_latency", internode_latency.to_json());
  out.set("internode_bandwidth_bytes_per_s", internode_bandwidth_bytes_per_s);
  out.set("launch_method", to_string(launch.method));
  out.set("launch_base", launch.base.to_json());
  out.set("launch_contention_threshold", launch.contention_threshold);
  out.set("launch_contention_coeff", launch.contention_coeff);
  out.set("endpoint_publish", endpoint_publish.to_json());
  return out;
}

PlatformProfile frontier_profile(std::size_t nodes) {
  PlatformProfile p;
  p.name = "frontier";
  p.node = NodeSpec{64, 8, 512.0};
  p.max_nodes = nodes;
  // Slingshot-class fabric.
  p.internode_latency = common::Distribution::normal(2.0e-6, 0.4e-6, 0.5e-6);
  p.internode_bandwidth_bytes_per_s = 25e9;
  // PRRTE/MPI launch: ~2 s base, contention elbow past 160 concurrent
  // instances (paper section IV-B attributes the growth to MPI startup).
  p.launch.method = LaunchMethod::prrte;
  p.launch.base = common::Distribution::lognormal(2.0, 0.18, 0.2);
  p.launch.contention_threshold = 160;
  p.launch.contention_coeff = 0.016;
  p.launch.contention_exponent = 1.0;
  p.endpoint_publish = common::Distribution::lognormal(0.18, 0.30, 1e-3);
  // Lustre under many concurrent model loads slows down mildly.
  p.fs_contention_coeff = 0.0006;
  p.fs_contention_threshold = 64;
  p.wan_latency = common::Distribution::normal(18e-3, 2e-3, 1e-4);
  return p;
}

PlatformProfile delta_profile(std::size_t nodes) {
  PlatformProfile p;
  p.name = "delta";
  p.node = NodeSpec{64, 4, 256.0};
  p.max_nodes = nodes;
  // Paper section IV-C: inter-node latency 0.063 ms +/- 0.014 ms.
  p.internode_latency = common::Distribution::normal(63e-6, 14e-6, 5e-6);
  p.internode_bandwidth_bytes_per_s = 12.5e9;
  p.launch.method = LaunchMethod::mpiexec;
  p.launch.base = common::Distribution::lognormal(1.6, 0.20, 0.2);
  p.launch.contention_threshold = 160;
  p.launch.contention_coeff = 0.02;
  p.endpoint_publish = common::Distribution::lognormal(0.15, 0.25, 1e-3);
  p.fs_contention_coeff = 0.001;
  p.fs_contention_threshold = 32;
  // Paper section IV-C: Delta <-> R3 node-to-node 0.47 ms +/- 0.04 ms.
  p.wan_latency = common::Distribution::normal(0.47e-3, 0.04e-3, 1e-5);
  p.wan_bandwidth_bytes_per_s = 1.25e9;
  return p;
}

PlatformProfile r3_profile(std::size_t nodes) {
  PlatformProfile p;
  p.name = "r3";
  p.node = NodeSpec{48, 8, 384.0};
  p.max_nodes = nodes;
  p.internode_latency = common::Distribution::normal(80e-6, 20e-6, 5e-6);
  p.internode_bandwidth_bytes_per_s = 3.125e9;  // 25 Gb/s cloud fabric
  p.launch.method = LaunchMethod::ssh;
  p.launch.base = common::Distribution::lognormal(1.2, 0.25, 0.2);
  p.launch.contention_threshold = 64;
  p.launch.contention_coeff = 0.05;
  p.endpoint_publish = common::Distribution::lognormal(0.12, 0.25, 1e-3);
  p.wan_latency = common::Distribution::normal(0.47e-3, 0.04e-3, 1e-5);
  p.wan_bandwidth_bytes_per_s = 1.25e9;
  return p;
}

PlatformProfile profile_by_name(const std::string& name, std::size_t nodes) {
  if (name == "frontier") {
    return nodes ? frontier_profile(nodes) : frontier_profile();
  }
  if (name == "delta") return nodes ? delta_profile(nodes) : delta_profile();
  if (name == "r3") return nodes ? r3_profile(nodes) : r3_profile();
  raise(Errc::not_found,
        strutil::cat("unknown platform profile '", name, "'"));
}

}  // namespace ripple::platform
