#pragma once

/// \file message.hpp
/// The message envelope exchanged between tasks (clients) and services.
///
/// Every request/reply pair carries a Timestamps record which the router
/// and servers fill in as the message moves through the system. The
/// decomposition of the paper's Response Time metric (communication /
/// service / inference — Figs. 4-6) is computed from exactly these
/// stamps, so their meaning is documented precisely here.

#include <cstddef>
#include <string>

#include "ripple/common/json.hpp"

namespace ripple::msg {

/// Network-wide endpoint address, e.g. "svc.000002" or "client.000017".
using Address = std::string;

enum class MessageKind { request, reply, event };

[[nodiscard]] const char* to_string(MessageKind kind) noexcept;

/// Wall-clock (simulation-time) stamps along a request's life cycle.
/// Unset stamps are -1.
struct Timestamps {
  double sent = -1.0;            ///< request left the client
  double received = -1.0;        ///< request arrived at the service host
  double compute_start = -1.0;   ///< payload execution (inference) began
  double compute_end = -1.0;     ///< payload execution finished
  double reply_sent = -1.0;      ///< reply left the service
  double reply_received = -1.0;  ///< reply arrived back at the client

  [[nodiscard]] json::Value to_json() const;
  [[nodiscard]] static Timestamps from_json(const json::Value& v);
};

/// Derived per-request timing decomposition (seconds), the unit of the
/// paper's Figs. 4-6 stacked bars.
struct RequestTiming {
  double communication = 0.0;  ///< both network flight legs
  double service = 0.0;        ///< queueing + parse + serialize at the service
  double inference = 0.0;      ///< model compute (0 for NOOP)
  double total = 0.0;          ///< end-to-end response time

  /// Builds the decomposition from a completed request's stamps.
  /// Throws invalid_state if any required stamp is missing.
  [[nodiscard]] static RequestTiming from(const Timestamps& ts);
};

struct Message {
  std::string uid;            ///< unique message id ("msg.000042")
  MessageKind kind = MessageKind::request;
  std::string method;         ///< RPC method (request) or topic (event)
  Address sender;             ///< reply-to address
  Address target;             ///< destination address
  std::string corr_id;        ///< request uid this reply answers
  bool ok = true;             ///< reply status
  std::string error;          ///< reply error text when !ok
  json::Value payload;        ///< method arguments or reply body
  Timestamps ts;

  /// Estimated serialized size, used by the network bandwidth model.
  [[nodiscard]] std::size_t wire_size() const noexcept;

  [[nodiscard]] static Message request(std::string method, Address sender,
                                       Address target, json::Value payload);

  /// Builds the reply skeleton for `req`: swapped addresses, copied
  /// correlation id and accumulated timestamps.
  [[nodiscard]] static Message reply_to(const Message& req,
                                        json::Value payload);

  /// Builds an error reply for `req`.
  [[nodiscard]] static Message fail_reply_to(const Message& req,
                                             std::string error);
};

}  // namespace ripple::msg
