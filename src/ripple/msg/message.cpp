#include "ripple/msg/message.hpp"

#include "ripple/common/error.hpp"
#include "ripple/common/ids.hpp"

namespace ripple::msg {

const char* to_string(MessageKind kind) noexcept {
  switch (kind) {
    case MessageKind::request: return "request";
    case MessageKind::reply: return "reply";
    case MessageKind::event: return "event";
  }
  return "?";
}

json::Value Timestamps::to_json() const {
  json::Value out = json::Value::object();
  out.set("sent", sent);
  out.set("received", received);
  out.set("compute_start", compute_start);
  out.set("compute_end", compute_end);
  out.set("reply_sent", reply_sent);
  out.set("reply_received", reply_received);
  return out;
}

Timestamps Timestamps::from_json(const json::Value& v) {
  Timestamps ts;
  ts.sent = v.get_or("sent", -1.0).as_double();
  ts.received = v.get_or("received", -1.0).as_double();
  ts.compute_start = v.get_or("compute_start", -1.0).as_double();
  ts.compute_end = v.get_or("compute_end", -1.0).as_double();
  ts.reply_sent = v.get_or("reply_sent", -1.0).as_double();
  ts.reply_received = v.get_or("reply_received", -1.0).as_double();
  return ts;
}

RequestTiming RequestTiming::from(const Timestamps& ts) {
  ensure(ts.sent >= 0 && ts.received >= 0 && ts.compute_start >= 0 &&
             ts.compute_end >= 0 && ts.reply_sent >= 0 &&
             ts.reply_received >= 0,
         Errc::invalid_state,
         "request timing requires all six timestamps to be set");
  RequestTiming t;
  t.communication =
      (ts.received - ts.sent) + (ts.reply_received - ts.reply_sent);
  t.service =
      (ts.compute_start - ts.received) + (ts.reply_sent - ts.compute_end);
  t.inference = ts.compute_end - ts.compute_start;
  t.total = ts.reply_received - ts.sent;
  return t;
}

std::size_t Message::wire_size() const noexcept {
  // Envelope overhead approximates the framing ZeroMQ + JSON would add.
  constexpr std::size_t kEnvelope = 96;
  return kEnvelope + method.size() + sender.size() + target.size() +
         corr_id.size() + error.size() + payload.estimate_size();
}

Message Message::request(std::string method, Address sender, Address target,
                         json::Value payload) {
  Message m;
  m.uid = common::make_uid("msg");
  m.kind = MessageKind::request;
  m.method = std::move(method);
  m.sender = std::move(sender);
  m.target = std::move(target);
  m.payload = std::move(payload);
  return m;
}

Message Message::reply_to(const Message& req, json::Value payload) {
  Message m;
  m.uid = common::make_uid("msg");
  m.kind = MessageKind::reply;
  m.method = req.method;
  m.sender = req.target;
  m.target = req.sender;
  m.corr_id = req.uid;
  m.payload = std::move(payload);
  m.ts = req.ts;  // carry accumulated stamps back to the client
  return m;
}

Message Message::fail_reply_to(const Message& req, std::string error) {
  Message m = reply_to(req, json::Value::object());
  m.ok = false;
  m.error = std::move(error);
  return m;
}

}  // namespace ripple::msg
