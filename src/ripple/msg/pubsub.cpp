#include "ripple/msg/pubsub.hpp"

#include <algorithm>

#include "ripple/common/error.hpp"

namespace ripple::msg {

PubSub::SubscriptionId PubSub::subscribe(const std::string& topic,
                                         Subscriber subscriber) {
  ensure(static_cast<bool>(subscriber), Errc::invalid_argument,
         "subscribe: empty subscriber");
  const SubscriptionId id = next_id_++;
  topics_[topic].push_back(Entry{id, std::move(subscriber)});
  return id;
}

PubSub::SubscriptionId PubSub::subscribe_all(Subscriber subscriber) {
  ensure(static_cast<bool>(subscriber), Errc::invalid_argument,
         "subscribe_all: empty subscriber");
  const SubscriptionId id = next_id_++;
  wildcard_.push_back(Entry{id, std::move(subscriber)});
  return id;
}

void PubSub::unsubscribe(SubscriptionId id) {
  const auto remove_from = [id](std::vector<Entry>& entries) {
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [id](const Entry& e) { return e.id == id; }),
                  entries.end());
  };
  for (auto& [topic, entries] : topics_) remove_from(entries);
  remove_from(wildcard_);
}

void PubSub::publish(const std::string& topic, json::Value event) {
  ++published_;
  // Snapshot matching subscribers now; deliver asynchronously so that
  // publishing from within a subscriber cannot recurse.
  std::vector<Subscriber> matched;
  const auto it = topics_.find(topic);
  if (it != topics_.end()) {
    for (const auto& entry : it->second) matched.push_back(entry.subscriber);
  }
  for (const auto& entry : wildcard_) matched.push_back(entry.subscriber);
  if (matched.empty()) return;

  loop_.post([topic, event = std::move(event),
              matched = std::move(matched)] {
    for (const auto& subscriber : matched) subscriber(topic, event);
  });
}

}  // namespace ripple::msg
