#pragma once

/// \file rpc.hpp
/// Request/reply RPC over the Router, with correlation ids and timeouts.
///
/// This is the "well-defined interface (e.g., a REST API) exposed to
/// tasks (i.e., clients)" of the paper's Service Base Class. Handlers may
/// complete asynchronously through the Responder, which is what lets the
/// single-threaded inference server queue requests while earlier ones
/// are still computing.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "ripple/msg/message.hpp"
#include "ripple/msg/router.hpp"

namespace ripple::msg {

/// Outcome of an RPC call, delivered to the client callback.
struct CallResult {
  bool ok = false;
  std::string error;     ///< transport/timeout/application error text
  json::Value payload;   ///< reply body when ok
  Timestamps ts;         ///< full stamp record for metric decomposition

  /// RT decomposition; only valid for ok results.
  [[nodiscard]] RequestTiming timing() const { return RequestTiming::from(ts); }
};

/// Handed to server method handlers; reply exactly once.
class Responder {
 public:
  Responder(Router& router, sim::HostId host, Message request);

  /// Marks the start of payload computation (stamps ts.compute_start).
  void begin_compute();

  /// Marks the end of payload computation (stamps ts.compute_end).
  void end_compute();

  /// Sends a success reply. begin/end_compute default to "now" if unset,
  /// so trivial handlers stay correct.
  void reply(json::Value payload);

  /// Sends an error reply.
  void fail(std::string error);

  [[nodiscard]] const Message& request() const noexcept { return request_; }
  [[nodiscard]] bool replied() const noexcept { return replied_; }

 private:
  void finalize_stamps();

  Router* router_;
  sim::HostId host_;
  Message request_;
  bool replied_ = false;
};

/// Server side: binds an address and dispatches methods.
class RpcServer {
 public:
  /// A method handler; call responder.reply()/fail() exactly once,
  /// possibly after asynchronous work.
  using Method = std::function<void(std::shared_ptr<Responder>)>;

  RpcServer(Router& router, Address address, sim::HostId host);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  void bind_method(const std::string& name, Method handler);

  [[nodiscard]] const Address& address() const noexcept { return address_; }
  [[nodiscard]] const sim::HostId& host() const noexcept { return host_; }
  [[nodiscard]] std::uint64_t requests_received() const noexcept {
    return received_;
  }

 private:
  void dispatch(Message message);

  Router& router_;
  Address address_;
  sim::HostId host_;
  std::unordered_map<std::string, Method> methods_;
  std::uint64_t received_ = 0;
};

/// Client side: issues calls and matches replies by correlation id.
class RpcClient {
 public:
  using DoneCallback = std::function<void(CallResult)>;

  RpcClient(Router& router, Address address, sim::HostId host);
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Sends `method(args)` to `target`. `timeout` == 0 disables the timer.
  /// The callback always fires exactly once (reply, timeout, or
  /// unreachable target).
  void call(const Address& target, const std::string& method,
            json::Value args, DoneCallback on_done,
            sim::Duration timeout = 0.0);

  [[nodiscard]] std::size_t outstanding() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] const Address& address() const noexcept { return address_; }
  [[nodiscard]] std::uint64_t timed_out() const noexcept { return timeouts_; }
  [[nodiscard]] std::uint64_t late_replies() const noexcept { return late_; }

 private:
  struct Pending {
    DoneCallback on_done;
    sim::EventLoop::TimerHandle timer;
  };

  void on_message(Message message);

  Router& router_;
  Address address_;
  sim::HostId host_;
  std::unordered_map<std::string, Pending> pending_;  // corr_id -> pending
  std::uint64_t timeouts_ = 0;
  std::uint64_t late_ = 0;
};

}  // namespace ripple::msg
