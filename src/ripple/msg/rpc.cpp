#include "ripple/msg/rpc.hpp"

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::msg {

// ---------------------------------------------------------------------------
// Responder
// ---------------------------------------------------------------------------

Responder::Responder(Router& router, sim::HostId host, Message request)
    : router_(&router), host_(std::move(host)), request_(std::move(request)) {}

void Responder::begin_compute() {
  request_.ts.compute_start = router_->loop().now();
}

void Responder::end_compute() {
  request_.ts.compute_end = router_->loop().now();
}

void Responder::finalize_stamps() {
  // Trivial handlers never call begin/end_compute: treat compute as an
  // instantaneous step at reply time so RequestTiming stays well-formed.
  const double now = router_->loop().now();
  if (request_.ts.compute_start < 0) request_.ts.compute_start = now;
  if (request_.ts.compute_end < 0) request_.ts.compute_end = now;
}

void Responder::reply(json::Value payload) {
  ensure(!replied_, Errc::invalid_state, "responder already replied");
  replied_ = true;
  finalize_stamps();
  Message m = Message::reply_to(request_, std::move(payload));
  router_->send(host_, std::move(m));
}

void Responder::fail(std::string error) {
  ensure(!replied_, Errc::invalid_state, "responder already replied");
  replied_ = true;
  finalize_stamps();
  Message m = Message::fail_reply_to(request_, std::move(error));
  router_->send(host_, std::move(m));
}

// ---------------------------------------------------------------------------
// RpcServer
// ---------------------------------------------------------------------------

RpcServer::RpcServer(Router& router, Address address, sim::HostId host)
    : router_(router), address_(std::move(address)), host_(std::move(host)) {
  router_.bind(address_, host_,
               [this](Message message) { dispatch(std::move(message)); });
}

RpcServer::~RpcServer() { router_.unbind(address_); }

void RpcServer::bind_method(const std::string& name, Method handler) {
  ensure(static_cast<bool>(handler), Errc::invalid_argument,
         "bind_method: empty handler");
  methods_[name] = std::move(handler);
}

void RpcServer::dispatch(Message message) {
  if (message.kind != MessageKind::request) return;  // ignore stray replies
  ++received_;
  auto responder =
      std::make_shared<Responder>(router_, host_, std::move(message));
  const auto it = methods_.find(responder->request().method);
  if (it == methods_.end()) {
    responder->fail(strutil::cat("unknown method '",
                                 responder->request().method, "'"));
    return;
  }
  it->second(std::move(responder));
}

// ---------------------------------------------------------------------------
// RpcClient
// ---------------------------------------------------------------------------

RpcClient::RpcClient(Router& router, Address address, sim::HostId host)
    : router_(router), address_(std::move(address)), host_(std::move(host)) {
  router_.bind(address_, host_,
               [this](Message message) { on_message(std::move(message)); });
}

RpcClient::~RpcClient() { router_.unbind(address_); }

void RpcClient::call(const Address& target, const std::string& method,
                     json::Value args, DoneCallback on_done,
                     sim::Duration timeout) {
  ensure(static_cast<bool>(on_done), Errc::invalid_argument,
         "call: empty callback");
  Message request =
      Message::request(method, address_, target, std::move(args));
  const std::string corr_id = request.uid;

  Pending pending;
  pending.on_done = std::move(on_done);
  if (timeout > 0.0) {
    pending.timer = router_.loop().call_after(timeout, [this, corr_id] {
      const auto it = pending_.find(corr_id);
      if (it == pending_.end()) return;
      Pending expired = std::move(it->second);
      pending_.erase(it);
      ++timeouts_;
      CallResult result;
      result.ok = false;
      result.error = "timeout";
      expired.on_done(std::move(result));
    });
  }
  pending_.emplace(corr_id, std::move(pending));

  if (!router_.send(host_, std::move(request))) {
    // Target unbound: fail asynchronously for uniform callback ordering.
    router_.loop().post([this, corr_id] {
      const auto it = pending_.find(corr_id);
      if (it == pending_.end()) return;
      Pending failed = std::move(it->second);
      pending_.erase(it);
      if (failed.timer.valid()) router_.loop().cancel(failed.timer);
      CallResult result;
      result.ok = false;
      result.error = "target unreachable";
      failed.on_done(std::move(result));
    });
  }
}

void RpcClient::on_message(Message message) {
  if (message.kind != MessageKind::reply) return;
  const auto it = pending_.find(message.corr_id);
  if (it == pending_.end()) {
    ++late_;  // reply after timeout: drop
    return;
  }
  Pending pending = std::move(it->second);
  pending_.erase(it);
  if (pending.timer.valid()) router_.loop().cancel(pending.timer);

  CallResult result;
  result.ok = message.ok;
  result.error = message.error;
  result.payload = std::move(message.payload);
  result.ts = message.ts;
  pending.on_done(std::move(result));
}

}  // namespace ripple::msg
