#pragma once

/// \file router.hpp
/// Address-based message routing over the network model.
///
/// The Router plays the role ZeroMQ plays in the paper's implementation:
/// endpoints bind an address on a host; send() looks up the target,
/// samples the link delay between the two hosts and schedules the
/// handler at arrival time. It also centralizes the `sent`/`received`
/// (and `reply_sent`/`reply_received`) timestamping so the RT metric is
/// computed identically everywhere.

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "ripple/msg/message.hpp"
#include "ripple/sim/event_loop.hpp"
#include "ripple/sim/network.hpp"

namespace ripple::msg {

class Router {
 public:
  using Handler = std::function<void(Message)>;

  Router(sim::EventLoop& loop, sim::Network& network);

  /// Binds `address` on `host`; incoming messages invoke `handler`.
  /// Rebinding an existing address replaces its handler (service restart).
  void bind(const Address& address, const sim::HostId& host, Handler handler);

  /// Removes a binding; unknown addresses are ignored.
  void unbind(const Address& address);

  [[nodiscard]] bool bound(const Address& address) const;

  /// Host on which `address` is bound; throws not_found when unbound.
  [[nodiscard]] const sim::HostId& host_of(const Address& address) const;

  /// Sends `message` from `from_host`. Stamps ts.sent / ts.reply_sent,
  /// samples the link delay and schedules delivery. Returns false (and
  /// counts a drop) when the target is not bound.
  bool send(const sim::HostId& from_host, Message message);

  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  [[nodiscard]] sim::EventLoop& loop() noexcept { return loop_; }
  [[nodiscard]] sim::Network& network() noexcept { return network_; }

 private:
  struct Binding {
    sim::HostId host;
    Handler handler;
  };

  sim::EventLoop& loop_;
  sim::Network& network_;
  std::unordered_map<Address, Binding> bindings_;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace ripple::msg
