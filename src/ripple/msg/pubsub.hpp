#pragma once

/// \file pubsub.hpp
/// In-process publish/subscribe bus for control and state updates.
///
/// Plays the role of RADICAL-Pilot's state-update channels (Fig. 2 of
/// the paper, "Comm. Queue"). Delivery is asynchronous through the event
/// loop — subscribers run after the publisher's current event completes,
/// in subscription order — which keeps update handling deterministic.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ripple/common/json.hpp"
#include "ripple/sim/event_loop.hpp"

namespace ripple::msg {

class PubSub {
 public:
  using SubscriptionId = std::uint64_t;
  using Subscriber =
      std::function<void(const std::string& topic, const json::Value& event)>;

  explicit PubSub(sim::EventLoop& loop) : loop_(loop) {}

  /// Subscribes to an exact topic. Returns an id for unsubscribe.
  SubscriptionId subscribe(const std::string& topic, Subscriber subscriber);

  /// Subscribes to every topic (wildcard).
  SubscriptionId subscribe_all(Subscriber subscriber);

  void unsubscribe(SubscriptionId id);

  /// Publishes `event` to all matching subscribers asynchronously.
  void publish(const std::string& topic, json::Value event);

  [[nodiscard]] std::uint64_t published() const noexcept { return published_; }

 private:
  struct Entry {
    SubscriptionId id;
    Subscriber subscriber;
  };

  sim::EventLoop& loop_;
  std::map<std::string, std::vector<Entry>> topics_;
  std::vector<Entry> wildcard_;
  SubscriptionId next_id_ = 1;
  std::uint64_t published_ = 0;
};

}  // namespace ripple::msg
