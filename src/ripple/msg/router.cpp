#include "ripple/msg/router.hpp"

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::msg {

Router::Router(sim::EventLoop& loop, sim::Network& network)
    : loop_(loop), network_(network) {}

void Router::bind(const Address& address, const sim::HostId& host,
                  Handler handler) {
  ensure(!address.empty(), Errc::invalid_argument, "bind: empty address");
  ensure(static_cast<bool>(handler), Errc::invalid_argument,
         "bind: empty handler");
  ensure(network_.has_host(host), Errc::not_found,
         strutil::cat("bind: unknown host '", host, "'"));
  bindings_[address] = Binding{host, std::move(handler)};
}

void Router::unbind(const Address& address) { bindings_.erase(address); }

bool Router::bound(const Address& address) const {
  return bindings_.count(address) != 0;
}

const sim::HostId& Router::host_of(const Address& address) const {
  const auto it = bindings_.find(address);
  ensure(it != bindings_.end(), Errc::not_found,
         strutil::cat("address '", address, "' is not bound"));
  return it->second.host;
}

bool Router::send(const sim::HostId& from_host, Message message) {
  const auto it = bindings_.find(message.target);
  if (it == bindings_.end()) {
    ++dropped_;
    return false;
  }
  const sim::SimTime now = loop_.now();
  if (message.kind == MessageKind::reply) {
    message.ts.reply_sent = now;
  } else {
    message.ts.sent = now;
  }
  ++sent_;
  const sim::HostId& to_host = it->second.host;
  const std::size_t bytes = message.wire_size();
  network_.deliver(
      from_host, to_host, bytes,
      [this, message = std::move(message)]() mutable {
        // Re-resolve: the endpoint may have unbound while in flight.
        const auto target = bindings_.find(message.target);
        if (target == bindings_.end()) {
          ++dropped_;
          return;
        }
        if (message.kind == MessageKind::reply) {
          message.ts.reply_received = loop_.now();
        } else {
          message.ts.received = loop_.now();
        }
        target->second.handler(std::move(message));
      });
  return true;
}

}  // namespace ripple::msg
