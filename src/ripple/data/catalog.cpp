#include "ripple/data/catalog.hpp"

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::data {

namespace {

/// Accounting slack: the reserved/used pools accumulate ULP-scale
/// rounding from long chains of +=/-= on ~1e10-byte quantities, so
/// exact comparisons misfire. One byte (or a relative margin for
/// terabyte-scale datasets) is far below anything the model resolves.
double slack(double bytes) {
  return bytes * 1e-9 > 1.0 ? bytes * 1e-9 : 1.0;
}

}  // namespace

void ReplicaCatalog::add_store(const std::string& zone,
                               double capacity_bytes) {
  ensure(!zone.empty(), Errc::invalid_argument, "store needs a zone name");
  ensure(capacity_bytes >= 0.0, Errc::invalid_argument,
         "store capacity must be >= 0");
  Store& store = stores_[zone];
  // Same ULP tolerance as every other capacity comparison: the in-use
  // pools carry rounding dust from long +=/-= chains, and a shrink to
  // the exact nominal footprint must not misfire over it.
  const double in_use = store.info.used + store.info.reserved;
  ensure(capacity_bytes >= in_use - slack(in_use), Errc::invalid_state,
         strutil::cat("store '", zone, "' cannot shrink below ", in_use,
                      " bytes in use"));
  store.info.capacity = capacity_bytes;
}

void ReplicaCatalog::register_dataset(const std::string& name, double bytes,
                                      const std::string& zone) {
  ensure(!name.empty(), Errc::invalid_argument, "dataset needs a name");
  ensure(bytes >= 0.0, Errc::invalid_argument, "dataset bytes must be >= 0");
  auto [it, inserted] = datasets_.try_emplace(name);
  if (inserted) {
    it->second.info.name = name;
    it->second.info.bytes = bytes;
  }
  add_replica(it->second, zone);
}

bool ReplicaCatalog::has(const std::string& name) const {
  return datasets_.count(name) != 0;
}

const Dataset& ReplicaCatalog::dataset(const std::string& name) const {
  return entry_for(name).info;
}

bool ReplicaCatalog::available_in(const std::string& name,
                                  const std::string& zone) const {
  const auto it = datasets_.find(name);
  return it != datasets_.end() && it->second.replicas.count(zone) != 0;
}

// ---------------------------------------------------------------------------
// Transfer admission
// ---------------------------------------------------------------------------

bool ReplicaCatalog::reserve(const std::string& zone, double bytes) {
  ensure(bytes >= 0.0, Errc::invalid_argument,
         "reservation must be >= 0 bytes");
  Store& store = store_for(zone);
  if (!make_room(zone, bytes)) return false;
  store.info.reserved += bytes;
  return true;
}

void ReplicaCatalog::release_reservation(const std::string& zone,
                                         double bytes) {
  Store& store = store_for(zone);
  ensure(store.info.reserved >= bytes - slack(bytes), Errc::invalid_state,
         strutil::cat("store '", zone, "' releasing more than reserved"));
  store.info.reserved -= bytes;
  if (store.info.reserved < 0.0) store.info.reserved = 0.0;
}

void ReplicaCatalog::commit_replica(const std::string& name,
                                    const std::string& zone) {
  Entry& entry = entry_for(name);
  Store& store = store_for(zone);
  ensure(store.info.reserved >= entry.info.bytes - slack(entry.info.bytes),
         Errc::invalid_state,
         strutil::cat("committing '", name, "' in '", zone,
                      "' without a reservation"));
  store.info.reserved -= entry.info.bytes;
  if (store.info.reserved < 0.0) store.info.reserved = 0.0;
  if (entry.replicas.count(zone) != 0) return;  // landed twice: keep one
  entry.info.zones.insert(zone);
  Replica replica;
  replica.last_use = ++clock_;
  store.lru.insert({replica.last_use, name});
  store.info.used += entry.info.bytes;
  entry.replicas.emplace(zone, replica);
}

void ReplicaCatalog::touch(const std::string& name, const std::string& zone) {
  const auto it = datasets_.find(name);
  if (it == datasets_.end()) return;
  const auto rep = it->second.replicas.find(zone);
  if (rep == it->second.replicas.end()) return;
  Store& store = store_for(zone);
  remove_from_lru(store, rep->second.last_use, name);
  rep->second.last_use = ++clock_;
  store.lru.insert({rep->second.last_use, name});
}

bool ReplicaCatalog::drop_replica(const std::string& name,
                                  const std::string& zone) {
  const auto it = datasets_.find(name);
  if (it == datasets_.end()) return false;
  Entry& entry = it->second;
  const auto rep = entry.replicas.find(zone);
  if (rep == entry.replicas.end()) return false;
  if (protected_replica(entry, rep->second)) return false;
  Store& store = store_for(zone);
  remove_from_lru(store, rep->second.last_use, name);
  store.info.used -= entry.info.bytes;
  if (store.info.used < 0.0) store.info.used = 0.0;
  entry.replicas.erase(rep);
  entry.info.zones.erase(zone);
  return true;
}

// ---------------------------------------------------------------------------
// Pinning & lineage
// ---------------------------------------------------------------------------

void ReplicaCatalog::pin(const std::string& name, const std::string& zone) {
  Entry& entry = entry_for(name);
  const auto rep = entry.replicas.find(zone);
  ensure(rep != entry.replicas.end(), Errc::not_found,
         strutil::cat("pin: no replica of '", name, "' in '", zone, "'"));
  ++rep->second.pins;
}

void ReplicaCatalog::unpin(const std::string& name, const std::string& zone) {
  // A pin taken before the zone's store failed: the replica was
  // force-dropped, and the interrupted reader's release is tolerated.
  const auto lost = lost_pins_.find({zone, name});
  if (lost != lost_pins_.end()) {
    if (--lost->second == 0) lost_pins_.erase(lost);
    return;
  }
  Entry& entry = entry_for(name);
  const auto rep = entry.replicas.find(zone);
  ensure(rep != entry.replicas.end(), Errc::not_found,
         strutil::cat("unpin: no replica of '", name, "' in '", zone, "'"));
  ensure(rep->second.pins > 0, Errc::invalid_state,
         strutil::cat("unpin: '", name, "' in '", zone, "' is not pinned"));
  --rep->second.pins;
}

std::size_t ReplicaCatalog::pins(const std::string& name,
                                 const std::string& zone) const {
  const auto it = datasets_.find(name);
  if (it == datasets_.end()) return 0;
  const auto rep = it->second.replicas.find(zone);
  return rep == it->second.replicas.end() ? 0 : rep->second.pins;
}

void ReplicaCatalog::add_consumers(const std::string& name,
                                   std::size_t count) {
  if (count == 0) return;
  lineage_[name] += count;
}

void ReplicaCatalog::consume_done(const std::string& name) {
  const auto it = lineage_.find(name);
  ensure(it != lineage_.end() && it->second > 0, Errc::invalid_state,
         strutil::cat("consume_done: '", name, "' has no consumers left"));
  if (--it->second == 0) lineage_.erase(it);
}

std::size_t ReplicaCatalog::consumers_left(const std::string& name) const {
  const auto it = lineage_.find(name);
  return it == lineage_.end() ? 0 : it->second;
}

// ---------------------------------------------------------------------------
// Introspection & internals
// ---------------------------------------------------------------------------

StoreInfo ReplicaCatalog::store(const std::string& zone) const {
  const auto it = stores_.find(zone);
  return it == stores_.end() ? StoreInfo{} : it->second.info;
}

std::vector<std::string> ReplicaCatalog::store_zones() const {
  std::vector<std::string> zones;
  zones.reserve(stores_.size());
  for (const auto& [zone, store] : stores_) zones.push_back(zone);
  return zones;
}

std::vector<std::string> ReplicaCatalog::fail_store(const std::string& zone) {
  std::vector<std::string> lost;
  // Replicas may live in zones never declared via add_store (infinite
  // store), so walk the datasets rather than the store's LRU index.
  for (auto& [name, entry] : datasets_) {
    const auto rep = entry.replicas.find(zone);
    if (rep == entry.replicas.end()) continue;
    if (rep->second.pins > 0) {
      lost_pins_[{zone, name}] += rep->second.pins;
    }
    entry.replicas.erase(rep);
    entry.info.zones.erase(zone);
    lost.push_back(name);  // datasets_ is ordered: `lost` comes out sorted
  }
  stores_.erase(zone);
  return lost;
}

bool ReplicaCatalog::protected_replica(const Entry& entry,
                                       const Replica& replica) const {
  return replica.pins > 0 || consumers_left(entry.info.name) > 0;
}

bool ReplicaCatalog::make_room(const std::string& zone, double bytes) {
  Store& store = store_for(zone);
  // The same ULP tolerance as release/commit: after long +=/-= chains
  // an exact-fit reservation must neither evict one extra replica nor
  // fail admission over rounding dust.
  const double need = bytes - slack(bytes);
  if (store.info.free() >= need) return true;
  if (bytes > store.info.capacity + slack(bytes)) return false;
  // Walk the LRU index ascending, evicting every unprotected replica
  // until the reservation fits; set::erase returns the next iterator,
  // so the walk survives its own evictions.
  auto it = store.lru.begin();
  while (store.info.free() < need && it != store.lru.end()) {
    const std::string name = it->second;
    Entry& entry = entry_for(name);
    const Replica& replica = entry.replicas.at(zone);
    if (protected_replica(entry, replica)) {
      ++it;
      continue;
    }
    it = store.lru.erase(it);
    store.info.used -= entry.info.bytes;
    if (store.info.used < 0.0) store.info.used = 0.0;
    entry.replicas.erase(zone);
    entry.info.zones.erase(zone);
    ++total_evictions_;
    ++store.info.evictions;
    eviction_log_.push_back(strutil::cat(zone, "/", name));
  }
  return store.info.free() >= need;
}

void ReplicaCatalog::add_replica(Entry& entry, const std::string& zone) {
  ensure(!zone.empty(), Errc::invalid_argument, "replica needs a zone");
  if (entry.replicas.count(zone) != 0) {
    touch(entry.info.name, zone);
    return;
  }
  Store& store = store_for(zone);
  ensure(make_room(zone, entry.info.bytes), Errc::capacity,
         strutil::cat("store '", zone, "' cannot fit dataset '",
                      entry.info.name, "' (", entry.info.bytes, " bytes)"));
  entry.info.zones.insert(zone);
  Replica replica;
  replica.last_use = ++clock_;
  store.lru.insert({replica.last_use, entry.info.name});
  store.info.used += entry.info.bytes;
  entry.replicas.emplace(zone, replica);
}

void ReplicaCatalog::remove_from_lru(Store& store, std::uint64_t last_use,
                                     const std::string& name) {
  store.lru.erase({last_use, name});
}

ReplicaCatalog::Entry& ReplicaCatalog::entry_for(const std::string& name) {
  const auto it = datasets_.find(name);
  ensure(it != datasets_.end(), Errc::not_found,
         strutil::cat("unknown dataset '", name, "'"));
  return it->second;
}

const ReplicaCatalog::Entry& ReplicaCatalog::entry_for(
    const std::string& name) const {
  const auto it = datasets_.find(name);
  ensure(it != datasets_.end(), Errc::not_found,
         strutil::cat("unknown dataset '", name, "'"));
  return it->second;
}

ReplicaCatalog::Store& ReplicaCatalog::store_for(const std::string& zone) {
  return stores_[zone];
}

}  // namespace ripple::data
