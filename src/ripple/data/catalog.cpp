#include "ripple/data/catalog.hpp"

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::data {

namespace {

/// Accounting slack: the reserved/used pools accumulate ULP-scale
/// rounding from long chains of +=/-= on ~1e10-byte quantities, so
/// exact comparisons misfire. One byte (or a relative margin for
/// terabyte-scale datasets) is far below anything the model resolves.
double slack(double bytes) {
  return bytes * 1e-9 > 1.0 ? bytes * 1e-9 : 1.0;
}

}  // namespace

void ReplicaCatalog::add_store(const std::string& zone,
                               double capacity_bytes) {
  ensure(!zone.empty(), Errc::invalid_argument, "store needs a zone name");
  ensure(capacity_bytes >= 0.0, Errc::invalid_argument,
         "store capacity must be >= 0");
  Store& store = stores_[zone];
  // Same ULP tolerance as every other capacity comparison: the in-use
  // pools carry rounding dust from long +=/-= chains, and a shrink to
  // the exact nominal footprint must not misfire over it.
  const double in_use = store.info.used + store.info.reserved;
  ensure(capacity_bytes >= in_use - slack(in_use), Errc::invalid_state,
         strutil::cat("store '", zone, "' cannot shrink below ", in_use,
                      " bytes in use"));
  store.info.capacity = capacity_bytes;
}

void ReplicaCatalog::register_dataset(const std::string& name, double bytes,
                                      const std::string& zone,
                                      const std::string& content_id) {
  ensure(!name.empty(), Errc::invalid_argument, "dataset needs a name");
  ensure(bytes >= 0.0, Errc::invalid_argument, "dataset bytes must be >= 0");
  if (!content_id.empty()) {
    const auto cit = content_index_.find(content_id);
    if (cit != content_index_.end() && cit->second != canonical(name)) {
      // The content id already has a canonical dataset under another
      // name: `name` becomes an alias of it. A name that is already a
      // distinct dataset (or an alias of a different one) cannot be
      // re-bound — that would silently merge two different blobs.
      const std::string& canon = cit->second;
      ensure(datasets_.count(name) == 0, Errc::invalid_state,
             strutil::cat("dataset '", name,
                          "' already registered; cannot re-bind it to "
                          "content id '",
                          content_id, "'"));
      const auto ait = aliases_.find(name);
      ensure(ait == aliases_.end() || ait->second == canon,
             Errc::invalid_state,
             strutil::cat("dataset '", name, "' already aliases '",
                          ait == aliases_.end() ? "" : ait->second,
                          "'; cannot re-bind to '", canon, "'"));
      aliases_.emplace(name, canon);
      // Lineage recorded against the alias name before the alias
      // existed (consumers registered ahead of production) now
      // protects the canonical entry.
      const auto lit = lineage_.find(name);
      if (lit != lineage_.end()) {
        auto& merged = lineage_[canon];
        for (const auto& [tenant, count] : lit->second) {
          merged[tenant] += count;
        }
        lineage_.erase(name);
      }
      add_replica(datasets_.at(canon), zone);
      return;
    }
  }
  const std::string& canon = canonical(name);
  auto [it, inserted] = datasets_.try_emplace(canon);
  if (inserted) {
    it->second.info.name = canon;
    it->second.info.bytes = bytes;
  }
  if (!content_id.empty()) {
    if (it->second.info.content_id.empty()) {
      it->second.info.content_id = content_id;
      content_index_.emplace(content_id, canon);
    } else {
      ensure(it->second.info.content_id == content_id, Errc::invalid_state,
             strutil::cat("dataset '", canon, "' has content id '",
                          it->second.info.content_id,
                          "'; cannot re-register as '", content_id, "'"));
    }
  }
  add_replica(it->second, zone);
}

bool ReplicaCatalog::has(const std::string& name) const {
  return datasets_.count(canonical(name)) != 0;
}

const Dataset& ReplicaCatalog::dataset(const std::string& name) const {
  return entry_for(name).info;
}

bool ReplicaCatalog::available_in(const std::string& name,
                                  const std::string& zone) const {
  const auto it = datasets_.find(canonical(name));
  return it != datasets_.end() && it->second.replicas.count(zone) != 0;
}

const std::string& ReplicaCatalog::canonical(const std::string& name) const {
  const auto it = aliases_.find(name);
  return it == aliases_.end() ? name : it->second;
}

// ---------------------------------------------------------------------------
// Transfer admission
// ---------------------------------------------------------------------------

bool ReplicaCatalog::reserve(const std::string& zone, double bytes,
                             const std::string& tenant) {
  ensure(bytes >= 0.0, Errc::invalid_argument,
         "reservation must be >= 0 bytes");
  Store& store = store_for(zone);
  if (!tenant.empty()) {
    const auto q = store.quota.find(tenant);
    if (q != store.quota.end()) {
      double held = bytes;
      const auto u = store.used_by_tenant.find(tenant);
      if (u != store.used_by_tenant.end()) held += u->second;
      const auto r = store.reserved_by_tenant.find(tenant);
      if (r != store.reserved_by_tenant.end()) held += r->second;
      // Quota rejection happens before make_room: an over-quota tenant
      // must not evict other tenants' replicas on the way to a "no".
      if (held > q->second + slack(q->second)) return false;
    }
  }
  if (!make_room(zone, bytes)) return false;
  store.info.reserved += bytes;
  if (!tenant.empty()) store.reserved_by_tenant[tenant] += bytes;
  return true;
}

void ReplicaCatalog::release_reservation(const std::string& zone,
                                         double bytes,
                                         const std::string& tenant) {
  Store& store = store_for(zone);
  ensure(store.info.reserved >= bytes - slack(bytes), Errc::invalid_state,
         strutil::cat("store '", zone, "' releasing more than reserved"));
  store.info.reserved -= bytes;
  if (store.info.reserved < 0.0) store.info.reserved = 0.0;
  if (!tenant.empty()) {
    const auto it = store.reserved_by_tenant.find(tenant);
    if (it != store.reserved_by_tenant.end()) {
      it->second -= bytes;
      if (it->second <= slack(bytes)) store.reserved_by_tenant.erase(it);
    }
  }
}

void ReplicaCatalog::commit_replica(const std::string& name,
                                    const std::string& zone,
                                    const std::string& tenant) {
  Entry& entry = entry_for(name);
  Store& store = store_for(zone);
  ensure(store.info.reserved >= entry.info.bytes - slack(entry.info.bytes),
         Errc::invalid_state,
         strutil::cat("committing '", name, "' in '", zone,
                      "' without a reservation"));
  store.info.reserved -= entry.info.bytes;
  if (store.info.reserved < 0.0) store.info.reserved = 0.0;
  if (!tenant.empty()) {
    const auto it = store.reserved_by_tenant.find(tenant);
    if (it != store.reserved_by_tenant.end()) {
      it->second -= entry.info.bytes;
      if (it->second <= slack(entry.info.bytes)) {
        store.reserved_by_tenant.erase(it);
      }
    }
  }
  if (entry.replicas.count(zone) != 0) return;  // landed twice: keep one
  entry.info.zones.insert(zone);
  Replica replica;
  replica.last_use = ++clock_;
  replica.owner = tenant;
  store.lru.insert({replica.last_use, entry.info.name});
  store.info.used += entry.info.bytes;
  if (!tenant.empty()) store.used_by_tenant[tenant] += entry.info.bytes;
  entry.replicas.emplace(zone, replica);
}

void ReplicaCatalog::touch(const std::string& name, const std::string& zone) {
  const auto it = datasets_.find(canonical(name));
  if (it == datasets_.end()) return;
  const auto rep = it->second.replicas.find(zone);
  if (rep == it->second.replicas.end()) return;
  Store& store = store_for(zone);
  remove_from_lru(store, rep->second.last_use, it->first);
  rep->second.last_use = ++clock_;
  store.lru.insert({rep->second.last_use, it->first});
}

bool ReplicaCatalog::drop_replica(const std::string& name,
                                  const std::string& zone) {
  const auto it = datasets_.find(canonical(name));
  if (it == datasets_.end()) return false;
  Entry& entry = it->second;
  const auto rep = entry.replicas.find(zone);
  if (rep == entry.replicas.end()) return false;
  if (protected_replica(entry, rep->second)) return false;
  Store& store = store_for(zone);
  remove_from_lru(store, rep->second.last_use, it->first);
  store.info.used -= entry.info.bytes;
  if (store.info.used < 0.0) store.info.used = 0.0;
  uncharge_owner(store, rep->second, entry.info.bytes);
  entry.replicas.erase(rep);
  entry.info.zones.erase(zone);
  return true;
}

// ---------------------------------------------------------------------------
// Pinning & lineage
// ---------------------------------------------------------------------------

void ReplicaCatalog::pin(const std::string& name, const std::string& zone,
                         const std::string& tenant) {
  Entry& entry = entry_for(name);
  const auto rep = entry.replicas.find(zone);
  ensure(rep != entry.replicas.end(), Errc::not_found,
         strutil::cat("pin: no replica of '", name, "' in '", zone, "'"));
  ++rep->second.pins;
  if (!tenant.empty()) ++rep->second.pins_by_tenant[tenant];
}

void ReplicaCatalog::unpin(const std::string& name, const std::string& zone,
                           const std::string& tenant) {
  // A pin taken before the zone's store failed: the replica was
  // force-dropped, and the interrupted reader's release is tolerated
  // (whichever tenant held it — lost pins are tracked by total).
  const auto lost = lost_pins_.find({zone, canonical(name)});
  if (lost != lost_pins_.end()) {
    if (--lost->second == 0) lost_pins_.erase(lost);
    return;
  }
  Entry& entry = entry_for(name);
  const auto rep = entry.replicas.find(zone);
  ensure(rep != entry.replicas.end(), Errc::not_found,
         strutil::cat("unpin: no replica of '", name, "' in '", zone, "'"));
  ensure(rep->second.pins > 0, Errc::invalid_state,
         strutil::cat("unpin: '", name, "' in '", zone, "' is not pinned"));
  if (!tenant.empty()) {
    const auto held = rep->second.pins_by_tenant.find(tenant);
    ensure(held != rep->second.pins_by_tenant.end() && held->second > 0,
           Errc::invalid_state,
           strutil::cat("unpin: tenant '", tenant, "' holds no pin on '",
                        name, "' in '", zone, "'"));
    if (--held->second == 0) rep->second.pins_by_tenant.erase(held);
  }
  --rep->second.pins;
}

std::size_t ReplicaCatalog::pins(const std::string& name,
                                 const std::string& zone) const {
  const auto it = datasets_.find(canonical(name));
  if (it == datasets_.end()) return 0;
  const auto rep = it->second.replicas.find(zone);
  return rep == it->second.replicas.end() ? 0 : rep->second.pins;
}

void ReplicaCatalog::add_consumers(const std::string& name,
                                   std::size_t count,
                                   const std::string& tenant) {
  if (count == 0) return;
  lineage_[canonical(name)][tenant] += count;
}

void ReplicaCatalog::consume_done(const std::string& name,
                                  const std::string& tenant) {
  const auto it = lineage_.find(canonical(name));
  ensure(it != lineage_.end(), Errc::invalid_state,
         strutil::cat("consume_done: '", name, "' has no consumers left"));
  const auto held = it->second.find(tenant);
  ensure(held != it->second.end() && held->second > 0, Errc::invalid_state,
         strutil::cat("consume_done: tenant '", tenant,
                      "' holds no consumers of '", name, "'"));
  if (--held->second == 0) it->second.erase(held);
  if (it->second.empty()) lineage_.erase(it);
}

std::size_t ReplicaCatalog::consumers_left(const std::string& name) const {
  const auto it = lineage_.find(canonical(name));
  if (it == lineage_.end()) return 0;
  std::size_t total = 0;
  for (const auto& [tenant, count] : it->second) total += count;
  return total;
}

// ---------------------------------------------------------------------------
// Tenant quotas
// ---------------------------------------------------------------------------

void ReplicaCatalog::set_tenant_quota(const std::string& zone,
                                      const std::string& tenant,
                                      double bytes) {
  ensure(!tenant.empty(), Errc::invalid_argument, "quota needs a tenant");
  ensure(bytes >= 0.0, Errc::invalid_argument, "quota must be >= 0 bytes");
  store_for(zone).quota[tenant] = bytes;
}

double ReplicaCatalog::tenant_usage(const std::string& zone,
                                    const std::string& tenant) const {
  const auto it = stores_.find(zone);
  if (it == stores_.end()) return 0.0;
  double held = 0.0;
  const auto u = it->second.used_by_tenant.find(tenant);
  if (u != it->second.used_by_tenant.end()) held += u->second;
  const auto r = it->second.reserved_by_tenant.find(tenant);
  if (r != it->second.reserved_by_tenant.end()) held += r->second;
  return held;
}

// ---------------------------------------------------------------------------
// Introspection & internals
// ---------------------------------------------------------------------------

StoreInfo ReplicaCatalog::store(const std::string& zone) const {
  const auto it = stores_.find(zone);
  return it == stores_.end() ? StoreInfo{} : it->second.info;
}

std::vector<std::string> ReplicaCatalog::store_zones() const {
  std::vector<std::string> zones;
  zones.reserve(stores_.size());
  for (const auto& [zone, store] : stores_) zones.push_back(zone);
  return zones;
}

std::vector<std::string> ReplicaCatalog::fail_store(const std::string& zone) {
  std::vector<std::string> lost;
  // Replicas may live in zones never declared via add_store (infinite
  // store), so walk the datasets rather than the store's LRU index.
  for (auto& [name, entry] : datasets_) {
    const auto rep = entry.replicas.find(zone);
    if (rep == entry.replicas.end()) continue;
    if (rep->second.pins > 0) {
      lost_pins_[{zone, name}] += rep->second.pins;
    }
    entry.replicas.erase(rep);
    entry.info.zones.erase(zone);
    lost.push_back(name);  // datasets_ is ordered: `lost` comes out sorted
  }
  stores_.erase(zone);
  return lost;
}

bool ReplicaCatalog::protected_replica(const Entry& entry,
                                       const Replica& replica) const {
  // Protection is GLOBAL: pins and lineage consumers are summed across
  // every tenant, so one tenant's store pressure can never evict a
  // replica another tenant is still reading (or about to read).
  return replica.pins > 0 || consumers_left(entry.info.name) > 0;
}

bool ReplicaCatalog::make_room(const std::string& zone, double bytes) {
  Store& store = store_for(zone);
  // The same ULP tolerance as release/commit: after long +=/-= chains
  // an exact-fit reservation must neither evict one extra replica nor
  // fail admission over rounding dust.
  const double need = bytes - slack(bytes);
  if (store.info.free() >= need) return true;
  if (bytes > store.info.capacity + slack(bytes)) return false;
  // Walk the LRU index ascending, evicting every unprotected replica
  // until the reservation fits; set::erase returns the next iterator,
  // so the walk survives its own evictions.
  auto it = store.lru.begin();
  while (store.info.free() < need && it != store.lru.end()) {
    const std::string name = it->second;
    Entry& entry = entry_for(name);
    const Replica& replica = entry.replicas.at(zone);
    if (protected_replica(entry, replica)) {
      ++it;
      continue;
    }
    it = store.lru.erase(it);
    store.info.used -= entry.info.bytes;
    if (store.info.used < 0.0) store.info.used = 0.0;
    uncharge_owner(store, replica, entry.info.bytes);
    entry.replicas.erase(zone);
    entry.info.zones.erase(zone);
    ++total_evictions_;
    ++store.info.evictions;
    eviction_log_.push_back(strutil::cat(zone, "/", name));
  }
  return store.info.free() >= need;
}

void ReplicaCatalog::add_replica(Entry& entry, const std::string& zone) {
  ensure(!zone.empty(), Errc::invalid_argument, "replica needs a zone");
  if (entry.replicas.count(zone) != 0) {
    touch(entry.info.name, zone);
    return;
  }
  Store& store = store_for(zone);
  ensure(make_room(zone, entry.info.bytes), Errc::capacity,
         strutil::cat("store '", zone, "' cannot fit dataset '",
                      entry.info.name, "' (", entry.info.bytes, " bytes)"));
  entry.info.zones.insert(zone);
  Replica replica;
  replica.last_use = ++clock_;
  store.lru.insert({replica.last_use, entry.info.name});
  store.info.used += entry.info.bytes;
  entry.replicas.emplace(zone, replica);
}

void ReplicaCatalog::remove_from_lru(Store& store, std::uint64_t last_use,
                                     const std::string& name) {
  store.lru.erase({last_use, name});
}

void ReplicaCatalog::uncharge_owner(Store& store, const Replica& replica,
                                    double bytes) {
  if (replica.owner.empty()) return;
  const auto it = store.used_by_tenant.find(replica.owner);
  if (it == store.used_by_tenant.end()) return;
  it->second -= bytes;
  if (it->second <= slack(bytes)) store.used_by_tenant.erase(it);
}

ReplicaCatalog::Entry& ReplicaCatalog::entry_for(const std::string& name) {
  const auto it = datasets_.find(canonical(name));
  ensure(it != datasets_.end(), Errc::not_found,
         strutil::cat("unknown dataset '", name, "'"));
  return it->second;
}

const ReplicaCatalog::Entry& ReplicaCatalog::entry_for(
    const std::string& name) const {
  const auto it = datasets_.find(canonical(name));
  ensure(it != datasets_.end(), Errc::not_found,
         strutil::cat("unknown dataset '", name, "'"));
  return it->second;
}

ReplicaCatalog::Store& ReplicaCatalog::store_for(const std::string& zone) {
  return stores_[zone];
}

}  // namespace ripple::data
