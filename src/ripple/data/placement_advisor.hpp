#pragma once

/// \file placement_advisor.hpp
/// Contention-aware placement: rank candidate zones/pilots by the
/// estimated *time* it takes to start computing there — stage-in time
/// at the currently achievable transfer rate plus a scheduler
/// queue-depth penalty — so data movement trades off against compute
/// wait explicitly.
///
/// The scheduler places within a pilot; *which* pilot a task goes to
/// was previously the caller's guess. The advisor closes that gap. The
/// catalog-only constructor keeps the original bytes-that-must-move
/// metric (no live link or queue state); wiring a TransferEngine makes
/// the score rate-aware — a dataset replicated in several zones stripes
/// across its links, each contributing the fair share it would get if
/// the transfer joined now — and wiring a Scheduler adds the queue
/// penalty. Ties preserve caller order, so ranking is deterministic and
/// data-blind callers (everything in one zone, idle queues) keep their
/// existing placement.

#include <string>
#include <vector>

#include "ripple/data/catalog.hpp"
#include "ripple/data/transfer_engine.hpp"

namespace ripple::core {
class Pilot;
class Scheduler;
}  // namespace ripple::core

namespace ripple::data {

class PlacementAdvisor {
 public:
  /// Bytes-only ranking (no live contention state).
  explicit PlacementAdvisor(const ReplicaCatalog& catalog)
      : catalog_(catalog) {}

  /// Contention-aware ranking: `engine` supplies live per-link rates
  /// (striped-source stage-in time), `scheduler` the queue-depth
  /// penalty. Either may be null; absent state contributes nothing.
  PlacementAdvisor(const ReplicaCatalog& catalog,
                   const TransferEngine* engine,
                   const core::Scheduler* scheduler = nullptr)
      : catalog_(catalog), engine_(engine), scheduler_(scheduler) {}

  /// Seconds of estimated compute wait per already-queued request when
  /// scoring a pilot (default 0.5). Zero disables the queue penalty.
  void set_queue_penalty(double seconds_per_request);

  /// Bytes that must move into `zone` before `datasets` are all local.
  /// Unknown datasets cost nothing (they will be produced in place).
  [[nodiscard]] double bytes_to_move(
      const std::vector<std::string>& datasets,
      const std::string& zone) const;

  /// Estimated seconds to stage `datasets` into `zone` at the rate
  /// achievable right now: each missing dataset stripes across its
  /// replica links, each contributing
  /// TransferEngine::newcomer_rate(src, zone) — bandwidth discounted
  /// by the link's active and queued transfers. Falls back to bytes
  /// when no engine is wired (so ranking still orders by footprint).
  [[nodiscard]] double stage_in_time(
      const std::vector<std::string>& datasets,
      const std::string& zone) const;

  /// The full placement score of one candidate: stage-in time plus the
  /// queue-depth penalty of `pilot_uid`. The penalty (seconds) applies
  /// only when both engine and scheduler are wired — against the
  /// bytes-based fallback it would be unit-nonsense noise.
  [[nodiscard]] double score(const std::vector<std::string>& datasets,
                             const std::string& zone,
                             const std::string& pilot_uid) const;

  /// Candidates sorted by ascending score into their cluster's zone;
  /// stable (ties keep caller order).
  [[nodiscard]] std::vector<core::Pilot*> rank(
      std::vector<core::Pilot*> candidates,
      const std::vector<std::string>& datasets) const;

  /// The cheapest candidate; null when `candidates` is empty.
  [[nodiscard]] core::Pilot* best(
      const std::vector<core::Pilot*>& candidates,
      const std::vector<std::string>& datasets) const;

 private:
  const ReplicaCatalog& catalog_;
  const TransferEngine* engine_ = nullptr;
  const core::Scheduler* scheduler_ = nullptr;
  double queue_penalty_ = 0.5;
};

}  // namespace ripple::data
