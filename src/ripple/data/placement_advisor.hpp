#pragma once

/// \file placement_advisor.hpp
/// Data-locality-aware placement: rank candidate zones/pilots by the
/// bytes that must move to run there.
///
/// The scheduler places within a pilot; *which* pilot a task goes to
/// was previously the caller's guess. The advisor closes that gap: for
/// a task's input-dataset footprint it computes, per candidate zone,
/// the bytes the TransferEngine would have to haul in (datasets with no
/// replica in that zone), and ranks candidates ascending — compute goes
/// to the data. Ties preserve caller order, so ranking is deterministic
/// and data-blind callers (everything in one zone) keep their existing
/// placement.

#include <string>
#include <vector>

#include "ripple/data/catalog.hpp"

namespace ripple::core {
class Pilot;
}

namespace ripple::data {

class PlacementAdvisor {
 public:
  explicit PlacementAdvisor(const ReplicaCatalog& catalog)
      : catalog_(catalog) {}

  /// Bytes that must move into `zone` before `datasets` are all local.
  /// Unknown datasets cost nothing (they will be produced in place).
  [[nodiscard]] double bytes_to_move(
      const std::vector<std::string>& datasets,
      const std::string& zone) const;

  /// Candidates sorted by ascending bytes_to_move into their cluster's
  /// zone; stable (ties keep caller order).
  [[nodiscard]] std::vector<core::Pilot*> rank(
      std::vector<core::Pilot*> candidates,
      const std::vector<std::string>& datasets) const;

  /// The cheapest candidate; null when `candidates` is empty.
  [[nodiscard]] core::Pilot* best(
      const std::vector<core::Pilot*>& candidates,
      const std::vector<std::string>& datasets) const;

 private:
  const ReplicaCatalog& catalog_;
};

}  // namespace ripple::data
