#pragma once

/// \file transfer_engine.hpp
/// Contention-aware bulk transfer scheduling over zone-pair links.
///
/// The old DataManager modeled every transfer as an independent
/// bandwidth sample: ten concurrent 10 GB transfers over one 10 Gb/s
/// WAN link each finished as if they had the link to themselves. The
/// TransferEngine replaces that fiction with a progress-based fair-share
/// model: all transfers flowing over the same zone-pair link split its
/// bandwidth equally, and every join/leave re-plans the survivors —
/// remaining bytes are advanced at the old rate, a new rate is
/// assigned, and completion timers are rescheduled. The event loop's
/// (time, sequence) ordering makes the whole schedule bit-reproducible.
///
/// Links carry a per-link concurrency cap (queued transfers start FIFO
/// as slots free up) and an optional failure model with bounded retries.
/// Bandwidth resolution makes sim::Network the single source of truth:
/// an explicit per-pair override wins (for zones without a modeled
/// link, e.g. external archives), then the Network link model's
/// bandwidth, then the engine default.
///
/// A dataset replicated in several zones can move as one *striped*
/// transfer (transfer_striped): the bytes are split across the distinct
/// (src, dst) links proportionally to the rate each link would give a
/// newcomer right now (bandwidth discounted by its active and queued
/// transfers), and every stripe rides the ordinary fair-share
/// replanning of its own link. Stripes complete (and retry, and
/// cancel) independently; the parent transfer commits when the last
/// stripe lands and is the only thing the completion log records —
/// stripe order is deterministic (sources sorted), so same-seed
/// schedules stay bit-reproducible.
///
/// Multi-tenant links. Transfers carry an optional tenant id. Two
/// opt-in controls keep one tenant's burst from starving another's:
/// per-tenant *weights* (set_tenant_weight) turn the equal split into a
/// weighted fair share — a link's bandwidth divides across the tenants
/// flowing on it in weight proportion, then equally within each tenant
/// — and per-tenant *link quotas* (set_tenant_link_quota) cap the bytes
/// one tenant may have in flight per link, parking the excess in the
/// link queue (skip-scanned, so other tenants behind it are not
/// blocked; a tenant with nothing in flight on a link may always start
/// one transfer, so quotas throttle, never starve). With no weights
/// registered the split is exactly the historical bandwidth/flowing —
/// bit-identical, not just approximately equal — and with no quotas the
/// queue drains strictly FIFO as before.
///
/// Fair-share recomputation is *sharded* on the full-replan path:
/// replan_all() — the "telemetry tick", run after mid-simulation
/// bandwidth changes — partitions the links round-robin across a
/// common::ShardExecutor (set_shard_executor; null runs inline). Links
/// are disjoint: a transfer lives on exactly one (src, dst) link, so
/// the parallel half (progress advance + new rate assignment) touches
/// no shared state and never calls the event loop. Timer rescheduling
/// is then committed serially in merged (completion time, transfer id,
/// shard) order — transfer ids are globally unique, so the committed
/// timer sequence is a pure function of the plan, independent of shard
/// count: shards=N completion logs are bit-identical to shards=1
/// (completion_hash is the oracle). The per-link replan run by
/// join/leave events is unchanged and never touches the executor.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ripple/common/hash.hpp"
#include "ripple/common/random.hpp"
#include "ripple/common/shard_executor.hpp"
#include "ripple/common/statistics.hpp"
#include "ripple/metrics/counters.hpp"
#include "ripple/metrics/tracer.hpp"
#include "ripple/sim/event_loop.hpp"
#include "ripple/sim/network.hpp"

namespace ripple::data {

class TransferEngine {
 public:
  using TransferId = std::uint64_t;
  using Callback = std::function<void(bool ok, sim::Duration elapsed)>;

  TransferEngine(sim::EventLoop& loop, common::Rng rng);

  /// Wires the Network whose link models provide bandwidth (may be
  /// null: overrides/default only).
  void set_network(const sim::Network* network) noexcept {
    network_ = network;
  }

  /// Explicit per-pair bandwidth override (bytes/s, symmetric). Wins
  /// over the Network link model.
  void set_bandwidth(const std::string& zone_a, const std::string& zone_b,
                     double bytes_per_s);
  void set_default_bandwidth(double bytes_per_s);

  /// Transfer-service handshake latency per attempt (Globus-like).
  void set_setup_latency(common::Distribution dist) { setup_ = dist; }

  /// Concurrency cap of one link (default: default_concurrency()).
  void set_link_concurrency(const std::string& zone_a,
                            const std::string& zone_b, std::size_t cap);
  void set_default_concurrency(std::size_t cap);

  /// Per-attempt failure probability and the retry budget per transfer.
  void set_failure(double probability, int max_retries);

  /// Registers (or updates) a tenant's bandwidth weight; weight must be
  /// > 0. The first registration switches every link to the weighted
  /// split (see file comment). Tenants without a weight ride at 1.
  void set_tenant_weight(const std::string& tenant, double weight);

  /// Caps the bytes `tenant` may have in flight on any single link;
  /// excess transfers queue until the tenant's own traffic drains.
  void set_tenant_link_quota(const std::string& tenant, double bytes);

  /// Marks the (a, b) link down: every active or queued attempt on it
  /// fails *terminally* — retrying a dead link is pointless, so the
  /// retry budget is bypassed. Stripes die into their parent's normal
  /// failover path (the share moves to a surviving stripe on a live
  /// link); plain transfers fail. Attempts admitted while the link is
  /// down fail after their setup latency the same way. Idempotent.
  void fail_link(const std::string& zone_a, const std::string& zone_b);

  /// Brings a failed link back up and admits whatever queued on it in
  /// the meantime. Idempotent.
  void restore_link(const std::string& zone_a, const std::string& zone_b);

  [[nodiscard]] bool link_down(const std::string& zone_a,
                               const std::string& zone_b) const {
    return down_.count(key_for(zone_a, zone_b)) != 0;
  }

  /// Attaches the shard executor replan_all() runs its per-link
  /// planning passes on (null — the default — keeps them inline). See
  /// the file comment for the sharding/merge contract.
  void set_shard_executor(common::ShardExecutor* executor) noexcept {
    executor_ = executor;
  }

  /// Wires the runtime's tracer/counters in (either may be null). When
  /// tracing is enabled each transfer gets a span (stripes as children
  /// of their striped parent), replan_all() emits per-link lane spans
  /// merged shard-invariantly, and the transfer counters tick.
  void set_trace(metrics::Tracer* tracer,
                 metrics::Counters* counters) noexcept {
    tracer_ = tracer;
    counters_ = counters;
  }

  /// Recomputes the fair-share rate of every flowing transfer on every
  /// link against freshly resolved bandwidth — the "telemetry tick".
  /// Bandwidth setters stay config-only (existing schedules are
  /// untouched); a caller that changes bandwidth mid-run calls this to
  /// re-rate live flows. Link planning is sharded across the executor;
  /// the rescheduling commits serially in (completion time, transfer
  /// id) order, invariant under the shard count. Returns the number of
  /// flowing transfers replanned.
  std::size_t replan_all();

  /// Starts (or queues, when the link is at its cap) a transfer of
  /// `bytes` from `src_zone` to `dst_zone`. `on_done` fires exactly
  /// once with the outcome and the elapsed time since this call.
  TransferId transfer(const std::string& dataset,
                      const std::string& src_zone,
                      const std::string& dst_zone, double bytes,
                      Callback on_done, const std::string& tenant = "");

  /// Starts a multi-source striped transfer of `bytes` into `dst_zone`:
  /// one stripe per distinct source zone (duplicates collapse, sources
  /// equal to the destination are ignored), each carrying a share of
  /// the bytes proportional to the rate its link would give a newcomer
  /// now (newcomer_rate). Stripes are admitted in sorted source order,
  /// so the schedule is deterministic. `on_done` fires exactly once:
  /// success when the last stripe lands; a stripe that exhausts its
  /// retries fails over its share to the first surviving stripe, and
  /// the transfer fails only when the last stripe dies. A single
  /// usable source degrades to the plain transfer() path. Counters and
  /// the completion log see the parent once, never the stripes.
  TransferId transfer_striped(const std::string& dataset,
                              std::vector<std::string> src_zones,
                              const std::string& dst_zone, double bytes,
                              Callback on_done,
                              const std::string& tenant = "");

  /// Abandons a transfer; its callback never fires. Returns false when
  /// the id is unknown (already completed/cancelled). Cancelling a
  /// striped parent (or any of its stripes) abandons the whole set.
  bool cancel(TransferId id);

  /// Resolved bandwidth for a zone pair: override, then Network link
  /// model, then default.
  [[nodiscard]] double bandwidth_between(const std::string& zone_a,
                                         const std::string& zone_b) const;

  /// The rate a transfer joining the link right now could expect:
  /// resolved bandwidth discounted by the transfers already active or
  /// queued there. The single source of truth for both the striped
  /// split and the PlacementAdvisor's stage-in estimate.
  [[nodiscard]] double newcomer_rate(const std::string& src_zone,
                                     const std::string& dst_zone) const;

  [[nodiscard]] std::size_t active_on(const std::string& zone_a,
                                      const std::string& zone_b) const;
  [[nodiscard]] std::size_t queued_on(const std::string& zone_a,
                                      const std::string& zone_b) const;

  [[nodiscard]] std::uint64_t transfers_started() const noexcept {
    return started_;
  }
  [[nodiscard]] std::uint64_t transfers_completed() const noexcept {
    return completed_;
  }
  [[nodiscard]] std::uint64_t transfers_failed() const noexcept {
    return failed_;
  }
  [[nodiscard]] std::uint64_t transfers_cancelled() const noexcept {
    return cancelled_;
  }
  [[nodiscard]] std::uint64_t retries() const noexcept { return retries_; }
  /// Stripes admitted on behalf of striped transfers (>= 2 per parent).
  [[nodiscard]] std::uint64_t stripes_started() const noexcept {
    return stripes_started_;
  }
  /// Dead stripes whose share was reassigned to a surviving stripe.
  [[nodiscard]] std::uint64_t stripe_failovers() const noexcept {
    return stripe_failovers_;
  }
  /// Transfers started but not yet settled (plain transfers in flight
  /// plus striped parents whose last stripe has not landed). The fuzz
  /// suite asserts started == completed + failed + cancelled + live.
  [[nodiscard]] std::uint64_t live() const noexcept {
    std::uint64_t n = striped_.size();
    for (const auto& [id, t] : transfers_) {
      if (t.parent == 0) ++n;
    }
    return n;
  }

  [[nodiscard]] double bytes_moved() const noexcept { return bytes_moved_; }
  [[nodiscard]] const common::Summary& transfer_times() const noexcept {
    return transfer_times_;
  }

  /// Dataset names in completion order (successes only) — the
  /// determinism suite asserts this is bit-identical across same-seed
  /// runs.
  [[nodiscard]] const std::vector<std::string>& completion_log()
      const noexcept {
    return completion_log_;
  }

  /// FNV-1a fingerprint of the completion log — the parallel==serial
  /// determinism oracle for sharded replanning.
  [[nodiscard]] std::uint64_t completion_hash() const noexcept;

 private:
  using LinkKey = std::pair<std::string, std::string>;

  enum class Phase { queued, setup, flowing };

  struct Transfer {
    TransferId id = 0;
    std::string dataset;
    std::string src;
    std::string dst;
    double total_bytes = 0.0;
    double remaining = 0.0;
    double rate = 0.0;
    sim::SimTime last_update = 0.0;
    sim::SimTime started_at = 0.0;  ///< transfer() call time
    sim::EventLoop::TimerHandle timer;
    Phase phase = Phase::queued;
    int attempts = 0;
    bool attempt_fails = false;  ///< sampled at admission, per attempt
    TransferId parent = 0;       ///< striped parent; 0 for plain transfers
    std::string tenant;          ///< weighted share / quota bucket
    metrics::SpanId trace = 0;   ///< open tracer span, 0 when untraced
    Callback on_done;
  };

  /// A multi-source transfer: bookkeeping for the stripes in flight.
  /// Metrics and the completion log see the parent exactly once.
  struct StripedTransfer {
    TransferId id = 0;
    std::string dataset;
    double total_bytes = 0.0;
    sim::SimTime started_at = 0.0;
    std::vector<TransferId> stripes;  ///< still in flight
    std::string tenant;               ///< inherited by every stripe
    metrics::SpanId trace = 0;        ///< open tracer span, 0 when untraced
    Callback on_done;
  };

  struct Link {
    std::vector<TransferId> active;  ///< setup + flowing, admission order
    std::deque<TransferId> queued;
  };

  [[nodiscard]] static LinkKey key_for(const std::string& zone_a,
                                       const std::string& zone_b);
  [[nodiscard]] std::size_t cap_for(const LinkKey& key) const;

  void admit(Transfer& transfer);
  void begin_flow(TransferId id);
  void on_attempt_end(TransferId id);
  void leave_link(Transfer& transfer);

  /// Admits (or queues, at the link cap or the tenant's link quota) a
  /// transfer already registered in transfers_ — the shared tail of
  /// transfer()/transfer_striped().
  void enter_link(TransferId id);

  /// True when admitting `t` now would push its tenant past its
  /// per-link in-flight byte quota. Always false for tenants without a
  /// quota, and for a tenant with nothing active on the link (the
  /// starvation guard).
  [[nodiscard]] bool over_quota(const LinkKey& key, const Transfer& t) const;

  /// Admits queued transfers while capacity (and quota) allow,
  /// skip-scanning past quota-parked entries so they cannot block other
  /// tenants. With no quotas registered this is the old strict-FIFO
  /// drain. No-op while the link is down.
  void drain_queue(const LinkKey& key, Link& link);

  [[nodiscard]] double weight_for(const std::string& tenant) const;

  /// A stripe finished its last attempt: settle it against its parent.
  /// Success commits the parent when it was the last stripe; failure
  /// fails the parent and abandons the survivors. Idempotent: an id
  /// already settled (or an orphan whose parent is gone) is a no-op.
  void finish_stripe(TransferId id, bool ok);

  /// Fails an attempt terminally, bypassing the retry budget — the
  /// link-down path. Stripes settle through finish_stripe (failover);
  /// plain transfers fail their callback.
  void fail_attempt_terminal(TransferId id);

  /// Removes a stripe from its link/queue without callbacks or metric
  /// changes (the parent's outcome is accounted elsewhere).
  void abort_stripe(TransferId id);

  /// Ends an open transfer span with an `outcome` annotation; no-op on
  /// id 0 or without a wired tracer.
  void close_span(metrics::SpanId id, const char* outcome);

  /// Advances progress of every flowing transfer on the link to `now`,
  /// reassigns fair-share rates and reschedules completion timers.
  void replan(const LinkKey& key);

  /// One completion-timer reschedule produced by a planning pass.
  struct PlannedTimer {
    common::MergeKey key;  ///< (completion time, transfer id, shard)
    TransferId id = 0;
    sim::Duration eta = 0.0;
  };

  /// The loop-free half of replan(): advances progress and assigns the
  /// new fair-share rate of every flowing transfer on the link,
  /// buffering a timer record per transfer instead of touching the
  /// event loop. Mutates only link-local transfer fields — safe to run
  /// concurrently for distinct links.
  void plan_link(const LinkKey& key, Link& link,
                 std::vector<PlannedTimer>& sink);

  sim::EventLoop& loop_;
  common::Rng rng_;
  common::ShardExecutor* executor_ = nullptr;
  metrics::Tracer* tracer_ = nullptr;
  metrics::Counters* counters_ = nullptr;
  const sim::Network* network_ = nullptr;
  std::map<LinkKey, double> bandwidth_override_;
  std::map<LinkKey, std::size_t> concurrency_;
  std::map<std::string, double> tenant_weights_;  ///< tenant -> bw weight
  std::map<std::string, double> link_quota_;  ///< tenant -> bytes per link
  std::map<LinkKey, Link> links_;
  std::set<LinkKey> down_;  ///< links currently failed
  std::map<TransferId, Transfer> transfers_;
  std::map<TransferId, StripedTransfer> striped_;
  double default_bandwidth_ = 1.25e9;  ///< 10 Gb/s
  std::size_t default_concurrency_ = 32;
  common::Distribution setup_ =
      common::Distribution::lognormal(1.5, 0.3, 0.05);
  double failure_probability_ = 0.0;
  int max_retries_ = 2;
  TransferId next_id_ = 1;
  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t stripes_started_ = 0;
  std::uint64_t stripe_failovers_ = 0;
  double bytes_moved_ = 0.0;
  common::Summary transfer_times_;
  std::vector<std::string> completion_log_;
};

}  // namespace ripple::data
