#include "ripple/data/placement_advisor.hpp"

#include <algorithm>

#include "ripple/core/entities.hpp"
#include "ripple/platform/cluster.hpp"

namespace ripple::data {

double PlacementAdvisor::bytes_to_move(
    const std::vector<std::string>& datasets,
    const std::string& zone) const {
  double bytes = 0.0;
  for (const auto& name : datasets) {
    if (!catalog_.has(name)) continue;
    if (catalog_.available_in(name, zone)) continue;
    bytes += catalog_.dataset(name).bytes;
  }
  return bytes;
}

std::vector<core::Pilot*> PlacementAdvisor::rank(
    std::vector<core::Pilot*> candidates,
    const std::vector<std::string>& datasets) const {
  std::vector<std::pair<double, core::Pilot*>> scored;
  scored.reserve(candidates.size());
  for (core::Pilot* pilot : candidates) {
    scored.emplace_back(bytes_to_move(datasets, pilot->cluster().name()),
                        pilot);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  for (std::size_t i = 0; i < scored.size(); ++i) {
    candidates[i] = scored[i].second;
  }
  return candidates;
}

core::Pilot* PlacementAdvisor::best(
    const std::vector<core::Pilot*>& candidates,
    const std::vector<std::string>& datasets) const {
  if (candidates.empty()) return nullptr;
  return rank(candidates, datasets).front();
}

}  // namespace ripple::data
