#include "ripple/data/placement_advisor.hpp"

#include <algorithm>

#include "ripple/common/error.hpp"
#include "ripple/core/entities.hpp"
#include "ripple/core/scheduler.hpp"
#include "ripple/platform/cluster.hpp"

namespace ripple::data {

void PlacementAdvisor::set_queue_penalty(double seconds_per_request) {
  ensure(seconds_per_request >= 0.0, Errc::invalid_argument,
         "queue penalty must be >= 0");
  queue_penalty_ = seconds_per_request;
}

double PlacementAdvisor::bytes_to_move(
    const std::vector<std::string>& datasets,
    const std::string& zone) const {
  double bytes = 0.0;
  for (const auto& name : datasets) {
    if (!catalog_.has(name)) continue;
    if (catalog_.available_in(name, zone)) continue;
    bytes += catalog_.dataset(name).bytes;
  }
  return bytes;
}

double PlacementAdvisor::stage_in_time(
    const std::vector<std::string>& datasets,
    const std::string& zone) const {
  if (engine_ == nullptr) return bytes_to_move(datasets, zone);
  double seconds = 0.0;
  for (const auto& name : datasets) {
    if (!catalog_.has(name)) continue;
    if (catalog_.available_in(name, zone)) continue;
    const Dataset& ds = catalog_.dataset(name);
    // Achievable rate if the transfer joined now: the sum over the
    // dataset's replica links of TransferEngine::newcomer_rate — the
    // exact quantity the striped split hands each stripe at admission,
    // so the estimate and the actual schedule share one formula.
    double rate = 0.0;
    for (const auto& src : ds.zones) {
      if (src == zone) continue;
      rate += engine_->newcomer_rate(src, zone);
    }
    if (rate <= 0.0) continue;  // no usable replica: produced in place
    seconds += ds.bytes / rate;
  }
  return seconds;
}

double PlacementAdvisor::score(const std::vector<std::string>& datasets,
                               const std::string& zone,
                               const std::string& pilot_uid) const {
  double total = stage_in_time(datasets, zone);
  // The queue penalty is in seconds; without an engine stage_in_time
  // degrades to raw bytes, and adding seconds to bytes would drown the
  // penalty — skip it so the bytes-only mode stays purely data-driven.
  if (engine_ != nullptr && scheduler_ != nullptr) {
    total += queue_penalty_ *
             static_cast<double>(scheduler_->queue_length(pilot_uid));
  }
  return total;
}

std::vector<core::Pilot*> PlacementAdvisor::rank(
    std::vector<core::Pilot*> candidates,
    const std::vector<std::string>& datasets) const {
  std::vector<std::pair<double, core::Pilot*>> scored;
  scored.reserve(candidates.size());
  for (core::Pilot* pilot : candidates) {
    scored.emplace_back(
        score(datasets, pilot->cluster().name(), pilot->uid()), pilot);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  for (std::size_t i = 0; i < scored.size(); ++i) {
    candidates[i] = scored[i].second;
  }
  return candidates;
}

core::Pilot* PlacementAdvisor::best(
    const std::vector<core::Pilot*>& candidates,
    const std::vector<std::string>& datasets) const {
  if (candidates.empty()) return nullptr;
  return rank(candidates, datasets).front();
}

}  // namespace ripple::data
